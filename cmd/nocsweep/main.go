// Command nocsweep sweeps on-chip-network configurations and measures
// saturation throughput, sustainable chain length, and latency-throughput
// curves with the flit-level simulator — the measured companion to the
// paper's Table 3.
//
// Usage:
//
//	nocsweep [-mesh 4,6,8] [-width 64,128] [-freq 500e6] [-curve]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/panic-nic/panic/internal/analytic"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/stats"
)

func main() {
	meshes := flag.String("mesh", "4,6,8", "comma-separated mesh dimensions")
	widths := flag.String("width", "64,128", "comma-separated channel widths (bits)")
	freq := flag.Float64("freq", 500e6, "clock frequency (Hz)")
	msgBytes := flag.Int("msg", 64, "message size (bytes)")
	warmup := flag.Uint64("warmup", 2000, "warmup cycles")
	window := flag.Uint64("window", 20000, "measurement cycles")
	curve := flag.Bool("curve", false, "print a latency-throughput curve for each config")
	pattern := flag.String("pattern", "uniform", "traffic pattern: uniform, hotspot, transpose, neighbor")
	aggLine := flag.Float64("aggline", 400, "aggregate line rate for chain-length conversion (Gbps, both directions, all ports)")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	t := stats.NewTable("Topo", "Width", "Bisec(Gbps)", "Bound(Gbps)", "Sat(Gbps)", "Sat/Bound", "MeanLat(cyc)", "ChainLen@line")
	for _, k := range parseInts(*meshes) {
		for _, w := range parseInts(*widths) {
			cfg := noc.DefaultMeshConfig()
			cfg.Width, cfg.Height, cfg.FlitWidthBits = k, k, w
			m := noc.NewMesh(cfg)
			pat := noc.PatternByName(*pattern)
			if pat == nil {
				fmt.Fprintf(os.Stderr, "unknown pattern %q (known: %v)\n", *pattern, noc.PatternNames())
				os.Exit(2)
			}
			p := noc.MeasurePattern(m, pat, *freq, *msgBytes, 1.0, *warmup, *window, *seed)
			params := analytic.MeshParams{K: k, WidthBits: w, FreqHz: *freq}
			bound := params.UniformBisectionBoundGbps()
			chain := p.DeliveredGbps / *aggLine - analytic.OverheadTraversals
			t.AddRow(
				fmt.Sprintf("%dx%d", k, k), w,
				fmt.Sprintf("%.0f", params.BisectionGbps()),
				fmt.Sprintf("%.0f", bound),
				fmt.Sprintf("%.0f", p.DeliveredGbps),
				fmt.Sprintf("%.2f", p.DeliveredGbps/bound),
				fmt.Sprintf("%.1f", p.MeanLatencyCycles),
				fmt.Sprintf("%.2f", chain),
			)
			if *curve {
				printCurve(k, w, *freq, *msgBytes, *warmup, *window, *seed)
			}
		}
	}
	fmt.Print(t.String())
}

func printCurve(k, w int, freq float64, msgBytes int, warmup, window, seed uint64) {
	fmt.Printf("latency-throughput curve, %dx%d mesh, %d-bit channels:\n", k, k, w)
	build := func() *noc.Mesh {
		cfg := noc.DefaultMeshConfig()
		cfg.Width, cfg.Height, cfg.FlitWidthBits = k, k, w
		return noc.NewMesh(cfg)
	}
	t := stats.NewTable("offered", "delivered(Gbps)", "mean latency(cyc)")
	for _, load := range []float64{0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2, 0.5, 1.0} {
		p := noc.MeasureLoad(build(), freq, msgBytes, load, warmup, window, seed)
		t.AddRow(fmt.Sprintf("%.3f", load), fmt.Sprintf("%.1f", p.DeliveredGbps), fmt.Sprintf("%.1f", p.MeanLatencyCycles))
	}
	fmt.Print(t.String())
	fmt.Println()
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
