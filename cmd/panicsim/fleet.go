package main

import (
	"fmt"
	"os"
	"time"

	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/fleet"
	"github.com/panic-nic/panic/internal/invariant"
	"github.com/panic-nic/panic/internal/packet"
)

// fleetOpts carries the -fleet flag set into runFleet.
type fleetOpts struct {
	nics            int
	torLatency      uint64
	shards          int
	cross           float64
	torGbps         float64
	fingerprintPath string
	traceSample     int

	cycles     uint64
	freq, line float64
	meshK      int
	width      int
	pipelines  int
	rate       float64
	getRatio   float64
	valueBytes uint32
	keys       uint64
	seed       uint64
}

// fleetTenants spreads tenants round-robin across client NICs; the first
// round(cross*n) of them are homed one NIC over, so their traffic (and
// the responses) crosses the ToR. Rates are scaled so each NIC's client
// port carries roughly the -rate offered load.
func fleetTenants(o fleetOpts, n int) []fleet.TenantSpec {
	crossCount := int(o.cross*float64(n) + 0.5)
	perTenant := o.rate * float64(o.nics) / float64(n)
	specs := make([]fleet.TenantSpec, n)
	for i := range specs {
		t := uint16(i + 1)
		client := i % o.nics
		home := client
		if i < crossCount {
			home = (client + 1) % o.nics
		}
		specs[i] = fleet.TenantSpec{
			Tenant: t, Home: home, Client: client, Class: packet.ClassLatency,
			RateGbps: perTenant, Keys: o.keys, GetRatio: o.getRatio,
			ValueBytes: o.valueBytes, Poisson: true,
		}
	}
	return specs
}

// runFleet simulates the rack: o.nics PANIC NICs joined by the modeled
// ToR, advancing in epoch-synchronized shards.
func runFleet(o fleetOpts) {
	if o.cross < 0 || o.cross > 1 {
		fmt.Fprintf(os.Stderr, "-fleet-cross must be in [0,1] (got %v)\n", o.cross)
		os.Exit(2)
	}
	if o.torLatency == 0 {
		fmt.Fprintln(os.Stderr, "-tor-latency must be >= 1")
		os.Exit(2)
	}
	tmpl, _ := buildPanicConfig(o.freq, o.line, o.meshK, o.width, o.pipelines, o.seed)
	var plans map[int]*fault.Plan
	if tmpl.FaultPlan != nil {
		// -faultplan arms NIC 0; the chaos harness drives richer fleet-wide
		// plans programmatically.
		plans = map[int]*fault.Plan{0: tmpl.FaultPlan}
		tmpl.FaultPlan = nil
	}
	nT := *tenantsN
	if nT < o.nics {
		// Too few tenants to populate the rack: default to two per NIC.
		nT = 2 * o.nics
	}
	cfg := fleet.Config{
		NICs:       o.nics,
		TorLatency: o.torLatency,
		Shards:     o.shards,
		TorGbps:    o.torGbps,
		NIC:        tmpl,
		Tenants:    fleetTenants(o, nT),
		FaultPlans: plans,
		Invariants: &invariant.Config{Every: 2048},
	}
	if o.traceSample > 0 {
		cfg.Trace = true
		cfg.TraceSample = uint64(o.traceSample)
	}

	f := fleet.New(cfg)
	defer f.Close()
	start := time.Now()
	f.Run(o.cycles)
	wall := time.Since(start).Seconds()

	fmt.Print(f.Summary())
	fmt.Printf("tenants: %d (%.0f%% cross-homed)\n", nT, o.cross*100)
	simSec := float64(o.cycles) / o.freq
	fmt.Printf("wall: %.2fs (%.1f Mcycles/s aggregate)\n", wall, float64(o.cycles)*float64(o.nics)/wall/1e6)
	fmt.Printf("fleet msgs/s: %.0f (simulated time %.2f ms)\n", float64(f.Delivered())/simSec, simSec*1e3)

	if o.fingerprintPath != "" {
		if err := os.WriteFile(o.fingerprintPath, []byte(f.Fingerprint()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fingerprint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fingerprint written to %s\n", o.fingerprintPath)
	}
	if v := f.Violations(); len(v) > 0 {
		for _, viol := range v {
			fmt.Fprintf(os.Stderr, "invariant violation: cycle=%d %s: %v\n", viol.Cycle, viol.Check, viol.Err)
		}
		os.Exit(1)
	}
}
