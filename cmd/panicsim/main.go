// Command panicsim runs a NIC-architecture simulation: PANIC itself or one
// of the paper's Figure 2 baselines, against the multi-tenant KVS workload
// of §2.2, and prints a latency/throughput report.
//
// Usage:
//
//	panicsim -arch panic|pipeline|manycore|rmt [flags]
//
// Examples:
//
//	panicsim -arch panic -cycles 2000000 -rate 20 -wan 0.3
//	panicsim -arch manycore -cores 16
//	panicsim -arch panic -mesh 8 -width 128 -pipelines 2
//	panicsim -arch panic -workers 4 -fastforward -rate 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/panic-nic/panic/internal/baseline"
	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/stats"
	"github.com/panic-nic/panic/internal/trace"
	"github.com/panic-nic/panic/internal/workload"
)

var (
	tiles         *bool
	faultPlanPath *string
	health        *bool
	ipsecReplicas *int
	dmaReplicas   *int
	workers       *int
	fastForward   *bool
	tracePath     *string
	traceSample   *int
	tenantsN      *int
	tenantWeights *string
	noFlowCache   *bool
	heapQueue     *bool
	noEventEngine *bool
	serveMode     *bool
	listenAddr    *string
	serveQuantum  *uint64
	drainTimeout  *time.Duration
)

func main() {
	arch := flag.String("arch", "panic", "architecture: panic, pipeline, manycore, rmt")
	cycles := flag.Uint64("cycles", 2_000_000, "cycles to simulate")
	freq := flag.Float64("freq", 500e6, "clock frequency (Hz)")
	line := flag.Float64("line", 100, "line rate per port (Gbps)")
	rate := flag.Float64("rate", 10, "offered load per port (Gbps)")
	wan := flag.Float64("wan", 0.3, "fraction of requests arriving encrypted (WAN)")
	getRatio := flag.Float64("get", 0.9, "GET fraction")
	valueBytes := flag.Uint("value", 512, "value size (bytes)")
	keys := flag.Uint64("keys", 4096, "key-space size per tenant")
	warmKeys := flag.Uint64("warm", 1024, "keys pre-loaded into the on-NIC cache (panic only)")
	meshK := flag.Int("mesh", 6, "mesh dimension K (KxK, panic only)")
	width := flag.Int("width", 128, "mesh channel width in bits (panic only)")
	pipelines := flag.Int("pipelines", 2, "parallel RMT pipelines (panic only)")
	cores := flag.Int("cores", 8, "embedded cores (manycore only)")
	seed := flag.Uint64("seed", 1, "random seed")
	tiles = flag.Bool("tiles", false, "print per-tile statistics (panic only)")
	faultPlanPath = flag.String("faultplan", "", "fault-plan file to arm (panic only; see internal/fault)")
	health = flag.Bool("health", false, "enable the self-healing health monitor (panic only)")
	ipsecReplicas = flag.Int("ipsec-replicas", 0, "total IPSec engine instances (panic only)")
	dmaReplicas = flag.Int("dma-replicas", 0, "total RX-DMA engine instances (panic only)")
	workers = flag.Int("workers", 0, "Eval-phase worker goroutines (0 = sequential; panic only)")
	fastForward = flag.Bool("fastforward", false, "skip provably idle cycles (panic only)")
	tracePath = flag.String("trace", "", "write a Chrome trace_event / Perfetto JSON trace to this file (panic only)")
	traceSample = flag.Int("trace-sample", 1, "trace one message in N (1 = all; panic only)")
	tenantsN = flag.Int("tenants", 1, "number of tenants in the generated mix; -rate is split evenly across them")
	tenantWeights = flag.String("tenant-weights", "", "comma-separated scheduler weights for tenants 1..N, e.g. 4,1 (enables weighted-LSTF; panic only)")
	noFlowCache = flag.Bool("no-flowcache", false, "disable the RMT flow cache (bit-identical ablation; panic only)")
	heapQueue = flag.Bool("heap-queue", false, "use the heap scheduling queue instead of the calendar queue (bit-identical ablation; panic only)")
	noEventEngine = flag.Bool("no-event-engine", false, "run the ticked oracle kernel loop instead of the event-driven one (bit-identical ablation; panic only)")
	serveMode = flag.Bool("serve", false, "run as a long-lived HTTP control/ingest service instead of a batch run (panic only)")
	listenAddr = flag.String("listen", "127.0.0.1:8070", "serve mode listen address")
	serveQuantum = flag.Uint64("serve-quantum", 8192, "serve mode barrier quantum: cycles between reconfiguration points")
	drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "serve mode wall-clock cap on graceful drain at shutdown")
	fleetN := flag.Int("fleet", 0, "simulate a rack of N NICs joined by a modeled ToR switch (0 = single NIC; panic only)")
	torLatency := flag.Uint64("tor-latency", 64, "fleet mode inter-NIC one-way ToR latency in cycles (also the epoch length)")
	fleetShards := flag.Int("fleet-shards", 1, "fleet mode goroutine shards NICs are spread across (byte-identical results for any value)")
	fleetCross := flag.Float64("fleet-cross", 0.5, "fleet mode fraction of tenants homed on a different NIC than their clients")
	torGbps := flag.Float64("tor-gbps", 0, "fleet mode aggregate ToR fabric bandwidth cap in Gbps (0 = unlimited)")
	fleetFingerprint := flag.String("fleet-fingerprint", "", "fleet mode: write the byte-comparable rack fingerprint to this file")
	fleetTraceSample := flag.Int("fleet-trace-sample", 0, "fleet mode: embed per-NIC traces in the fingerprint, sampling one message in N (0 = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to `file`")
	// `panicsim serve [flags]` is sugar for -serve: strip the subcommand
	// before parsing, or the flag package would treat everything after it
	// as positional.
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "serve" {
		args = args[1:]
		*serveMode = true
	}
	flag.CommandLine.Parse(args)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *memProfile, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "write heap profile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}()

	if *tenantsN < 1 {
		fmt.Fprintf(os.Stderr, "-tenants must be >= 1 (got %d)\n", *tenantsN)
		os.Exit(2)
	}
	if *serveMode {
		if *arch != "panic" {
			fmt.Fprintf(os.Stderr, "-serve supports only -arch panic (got %q)\n", *arch)
			os.Exit(2)
		}
		runServe(*freq, *line, *meshK, *width, *pipelines, *warmKeys, *seed)
		return
	}
	if *fleetN > 0 {
		if *arch != "panic" {
			fmt.Fprintf(os.Stderr, "-fleet supports only -arch panic (got %q)\n", *arch)
			os.Exit(2)
		}
		if *tracePath != "" {
			fmt.Fprintln(os.Stderr, "-trace is per-NIC only; in fleet mode use -fleet-trace-sample (traces embed in the fingerprint)")
			os.Exit(2)
		}
		runFleet(fleetOpts{
			nics: *fleetN, torLatency: *torLatency, shards: *fleetShards,
			cross: *fleetCross, torGbps: *torGbps,
			fingerprintPath: *fleetFingerprint, traceSample: *fleetTraceSample,
			cycles: *cycles, freq: *freq, line: *line,
			meshK: *meshK, width: *width, pipelines: *pipelines,
			rate: *rate, getRatio: *getRatio, valueBytes: uint32(*valueBytes),
			keys: *keys, seed: *seed,
		})
		return
	}
	var src engine.Source
	if *tenantsN > 1 {
		specs := make([]workload.TenantSpec, *tenantsN)
		for i := range specs {
			specs[i] = workload.TenantSpec{
				Tenant: uint16(i + 1), Class: packet.ClassLatency,
				RateGbps: *rate / float64(*tenantsN),
				GetRatio: *getRatio, WANShare: *wan,
				ValueBytes: uint32(*valueBytes), Keys: *keys,
			}
		}
		src = workload.NewTenantMix(*freq, specs, *seed)
	} else {
		src = workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: *rate, FreqHz: *freq, Poisson: true,
			Keys: *keys, GetRatio: *getRatio, WANShare: *wan,
			ValueBytes: uint32(*valueBytes), Seed: *seed,
		})
	}

	switch *arch {
	case "panic":
		runPanic(*cycles, *freq, *line, *meshK, *width, *pipelines, *warmKeys, *seed, src)
	case "pipeline":
		runPipeline(*cycles, *freq, *line, *seed, src)
	case "manycore":
		runManycore(*cycles, *freq, *line, *cores, *seed, src)
	case "rmt":
		runRMTOnly(*cycles, *freq, *line, *seed, src)
	default:
		fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *arch)
		os.Exit(2)
	}
}

// buildPanicConfig assembles the PANIC core.Config from the shared flag
// set — one body for batch and serve modes, so the two cannot drift. The
// returned tracer is nil unless -trace was given.
func buildPanicConfig(freq, line float64, meshK, width, pipelines int, seed uint64) (core.Config, *trace.Tracer) {
	cfg := core.DefaultConfig()
	cfg.FreqHz = freq
	cfg.LineRateGbps = line
	cfg.Mesh.Width, cfg.Mesh.Height = meshK, meshK
	cfg.Mesh.FlitWidthBits = width
	cfg.RMTPipelines = pipelines
	cfg.Seed = seed
	if *ipsecReplicas > 5 || *dmaReplicas > 5 || *ipsecReplicas < 0 || *dmaReplicas < 0 {
		fmt.Fprintf(os.Stderr, "replica counts must be 0..5 (got ipsec=%d dma=%d)\n", *ipsecReplicas, *dmaReplicas)
		os.Exit(2)
	}
	cfg.IPSecReplicas = *ipsecReplicas
	cfg.DMAReplicas = *dmaReplicas
	cfg.Workers = *workers
	cfg.FastForward = *fastForward
	cfg.NoFlowCache = *noFlowCache
	cfg.HeapSchedQueue = *heapQueue
	cfg.NoEventEngine = *noEventEngine
	if *tenantsN > 1 {
		for i := 0; i < *tenantsN; i++ {
			cfg.Tenants = append(cfg.Tenants, uint16(i+1))
		}
	}
	if *tenantWeights != "" {
		weights, err := parseWeights(*tenantWeights, *tenantsN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tenant-weights: %v\n", err)
			os.Exit(2)
		}
		cfg.TenantWeights = weights
	}
	if *health {
		cfg.Health = core.DefaultHealthConfig()
	}
	var tracer *trace.Tracer
	if *tracePath != "" {
		if *traceSample < 1 {
			fmt.Fprintf(os.Stderr, "-trace-sample must be >= 1 (got %d)\n", *traceSample)
			os.Exit(2)
		}
		tracer = trace.New(trace.Options{FreqHz: freq, Sample: uint64(*traceSample)})
		cfg.Tracer = tracer
	}
	if *faultPlanPath != "" {
		f, err := os.Open(*faultPlanPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultplan: %v\n", err)
			os.Exit(2)
		}
		plan, err := fault.ParsePlan(f, core.EngineAddrs())
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultplan: %v\n", err)
			os.Exit(2)
		}
		cfg.FaultPlan = plan
	}
	return cfg, tracer
}

func runPanic(cycles uint64, freq, line float64, meshK, width, pipelines int, warmKeys, seed uint64, src engine.Source) {
	cfg, tracer := buildPanicConfig(freq, line, meshK, width, pipelines, seed)
	nic := core.NewNIC(cfg, []engine.Source{src})
	defer nic.Close()
	for k := uint64(0); k < warmKeys; k++ {
		nic.Cache.Warm(k, cfg.HostValueBytes)
	}
	nic.Run(cycles)
	fmt.Printf("PANIC: %dx%d mesh, %d-bit channels, %d RMT pipelines, %d ports @ %.0fG\n\n",
		meshK, meshK, width, pipelines, cfg.Ports, line)
	fmt.Print(nic.Summary(cycles))
	if len(cfg.Tenants) > 0 || len(cfg.TenantWeights) > 0 {
		fmt.Println()
		fmt.Print(nic.TenantReport())
	}
	if *tiles {
		fmt.Println()
		fmt.Print(nic.TileReport())
	}
	if events := nic.Events.Events(); len(events) > 0 {
		fmt.Println("\nfailure events:")
		fmt.Print(nic.Events.String())
		if mttr, ok := nic.Events.MTTR(core.AddrIPSec); ok {
			fmt.Printf("\nipsec MTTR: %d cycles (%.2f us)\n", mttr, float64(mttr)/freq*1e6)
		}
	}
	if tracer != nil {
		set := tracer.Set()
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		werr := set.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "trace: writing %s: %v\n", *tracePath, werr)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d spans -> %s (load in https://ui.perfetto.dev)\n", len(set.Spans), *tracePath)
		fmt.Println()
		fmt.Print(set.SummaryText())
	}
}

// parseWeights parses "w1,w2,..." into tenant IDs 1..n; the count must
// match -tenants so every generated tenant has an explicit weight.
func parseWeights(s string, n int) (map[uint16]uint64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("%d weights for %d tenants", len(parts), n)
	}
	out := make(map[uint16]uint64, len(parts))
	for i, p := range parts {
		w, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil || w == 0 {
			return nil, fmt.Errorf("bad weight %q (want a positive integer)", p)
		}
		out[uint16(i+1)] = w
	}
	return out, nil
}

func report(name string, cycles uint64, freq float64, lat *core.LatencyCollector, extra func(t *stats.Table)) {
	fmt.Printf("%s\n\n", name)
	t := stats.NewTable("metric", "value")
	ns := func(c float64) float64 { return c / freq * 1e9 }
	t.AddRow("cycles", cycles)
	t.AddRow("host deliveries", lat.Count)
	if lat.Count > 0 {
		t.AddRow("latency p50 (ns)", ns(lat.All.P50()))
		t.AddRow("latency p99 (ns)", ns(lat.All.P99()))
		t.AddRow("latency max (ns)", ns(lat.All.Max()))
	}
	seconds := float64(cycles) / freq
	t.AddRow("goodput (Gbps)", float64(lat.Bytes)*8/seconds/1e9)
	if extra != nil {
		extra(t)
	}
	fmt.Print(t.String())
}

func runPipeline(cycles uint64, freq, line float64, seed uint64, src engine.Source) {
	cfg := baseline.PipelineConfig{
		FreqHz: freq, LineRateGbps: line,
		Stages: []baseline.PipeStageSpec{
			{Eng: engine.NewChecksumEngine(64), Needs: baseline.NeedAll},
			{Eng: engine.NewIPSecEngine(engine.IPSecConfig{BytesPerCycle: 16, SetupCycles: 20}), Needs: baseline.NeedIPSec},
		},
		Recirculate: true,
		Seed:        seed,
	}
	p := baseline.NewPipelineNIC(cfg, src)
	p.Run(cycles)
	report("Pipeline NIC (Fig 2a): checksum -> ipsec, no bypass", cycles, freq, p.HostLat, func(t *stats.Table) {
		t.AddRow("recirculations", p.Recirculations)
		t.AddRow("entry drops", p.EntryDrops)
	})
}

func runManycore(cycles uint64, freq, line float64, cores int, seed uint64, src engine.Source) {
	cfg := baseline.ManycoreConfig{
		FreqHz: freq, LineRateGbps: line,
		Cores: cores, OrchestrationCycles: 5000, HopCycles: 2,
		Offloads: []baseline.PipeStageSpec{
			{Eng: engine.NewIPSecEngine(engine.IPSecConfig{BytesPerCycle: 16, SetupCycles: 20}), Needs: baseline.NeedIPSec},
		},
		Seed: seed,
	}
	m := baseline.NewManycoreNIC(cfg, src)
	m.Run(cycles)
	report(fmt.Sprintf("Manycore NIC (Fig 2b): %d cores, 10us orchestration", cores), cycles, freq, m.HostLat, func(t *stats.Table) {
		t.AddRow("dispatch drops", m.DispatchDrops)
	})
}

func runRMTOnly(cycles uint64, freq, line float64, seed uint64, src engine.Source) {
	cfg := baseline.RMTOnlyConfig{
		FreqHz: freq, LineRateGbps: line,
		NeedsComplex:       baseline.NeedIPSec,
		PCIeCycles:         300,
		HostCycles:         1000,
		HostComplexPerByte: 10,
		HostCores:          4,
		Seed:               seed,
	}
	r := baseline.NewRMTOnlyNIC(cfg, src)
	r.Run(cycles)
	report("RMT-only NIC (Fig 2c): complex offloads punted to host software", cycles, freq, r.HostLat, func(t *stats.Table) {
		t.AddRow("punted to host sw", r.Punted)
		t.AddRow("queue drops", r.QueueDrops)
	})
}
