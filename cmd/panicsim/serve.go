package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/serve"
	"github.com/panic-nic/panic/internal/trace"
)

// runServe is `panicsim serve`: a long-lived control-and-ingest service.
// The NIC starts idle (no generated workload); clients POST trace batches
// and bounded streams, hot-reload tenant weights and the RMT program, and
// read /statz — all applied at -serve-quantum cycle barriers. See
// SERVICE.md for the API and operations runbook.
func runServe(freq, line float64, meshK, width, pipelines int, warmKeys, seed uint64) {
	cfg, tracer := buildPanicConfig(freq, line, meshK, width, pipelines, seed)
	// Serve mode always builds the weighted-LSTF scheduler so tenant
	// weights are hot-reloadable; without -tenant-weights every tenant
	// starts at weight 1 (which ranks identically to plain LSTF).
	if len(cfg.TenantWeights) == 0 {
		cfg.TenantWeights = make(map[uint16]uint64)
		for i := 0; i < *tenantsN; i++ {
			cfg.TenantWeights[uint16(i+1)] = 1
		}
	}
	ports := serve.NewIngestSources(cfg.Ports)
	nic := core.NewNIC(cfg, serve.AsEngineSources(ports))
	defer nic.Close()
	for k := uint64(0); k < warmKeys; k++ {
		nic.Cache.Warm(k, cfg.HostValueBytes)
	}

	srv := serve.New(serve.Config{BarrierCycles: *serveQuantum}, nic, tracer, ports)
	ln, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen %s: %v\n", *listenAddr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("panicsim serve: listening on http://%s (%d ports, quantum %d cycles)\n",
		ln.Addr(), cfg.Ports, *serveQuantum)

	srv.Start()
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stopped := make(chan struct{})
	go func() { srv.Wait(); close(stopped) }()
	select {
	case err := <-httpErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("panicsim serve: %v: draining (cap %s; signal again to stop now)\n", s, *drainTimeout)
	case <-stopped:
		// A client-initiated POST /drain ran to completion.
	}

	// Graceful drain: stop admitting (readiness goes 503), run barriers
	// until the admitted work has delivered or the caps hit.
	srv.BeginDrain()
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "panicsim serve: second signal: stopping without drain")
		srv.Stop()
	}()
	drained := make(chan struct{})
	go func() { srv.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(*drainTimeout):
		fmt.Fprintln(os.Stderr, "panicsim serve: drain timed out; stopping")
		srv.Stop()
		srv.Wait()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)

	cycles := nic.Now()
	fmt.Printf("\npanicsim serve: stopped at cycle %d (%d barriers)\n\n", cycles, srv.Barrier())
	fmt.Print(nic.Summary(cycles))
	if len(cfg.Tenants) > 0 || len(cfg.TenantWeights) > 0 {
		fmt.Println()
		fmt.Print(nic.TenantReport())
	}
	if tracer != nil {
		dumpTrace(tracer)
	}
}

// dumpTrace writes the armed tracer's spans to -trace, exactly as a batch
// run does at exit.
func dumpTrace(tracer *trace.Tracer) {
	set := tracer.Set()
	f, err := os.Create(*tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	werr := set.WriteChrome(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "trace: writing %s: %v\n", *tracePath, werr)
		os.Exit(1)
	}
	fmt.Printf("\ntrace: %d spans -> %s (load in https://ui.perfetto.dev)\n", len(set.Spans), *tracePath)
}
