// Command benchgate is the CI performance-regression gate: it reruns the
// cmd/benchkernel measurement suite and compares the fresh numbers against
// the committed baseline (BENCH_kernel.json). The gate fails when any
// matched measurement's simulated-cycles/s throughput drops more than the
// tolerance below the baseline, when the saturated kernel-mode pair's
// msgs/s (ticked oracle or event engine) drops likewise, when the
// rack-scale fleet run's aggregate fleet_msgs_per_s drops likewise, or
// when a contractually allocation-free hot path starts allocating.
// Deliberately skipped worker sweeps (single-CPU hosts, or a baseline
// written with benchkernel -skip-worker-sweep) are noted, not failed.
//
// Benchmark throughput is hardware-dependent: a baseline committed from
// one machine is only directly comparable on similar hardware. When a
// runner change (not a code change) trips the gate, either refresh the
// baseline with -update and commit the new BENCH_kernel.json, or skip the
// gate for that run by setting BENCHGATE_SKIP=1 in the environment — the
// documented override for known-noisy or heterogeneous runners.
//
// Usage:
//
//	benchgate [-baseline BENCH_kernel.json] [-tolerance 0.25]
//	          [-cycles N] [-lowload-cycles N] [-update]
//
// Exit status: 0 when the gate passes (or is skipped), 1 on regression or
// error.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/panic-nic/panic/internal/benchmeas"
)

func main() {
	baseline := flag.String("baseline", "BENCH_kernel.json", "committed baseline to compare against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional throughput drop per measurement")
	cycles := flag.Uint64("cycles", 200_000, "simulated cycles per saturating run")
	lowCycles := flag.Uint64("lowload-cycles", 1_000_000, "simulated cycles per low-load run")
	fleetCycles := flag.Uint64("fleet-cycles", 150_000, "simulated cycles per rack-scale fleet run")
	update := flag.Bool("update", false, "write the fresh measurements over the baseline instead of gating")
	flag.Parse()

	if os.Getenv("BENCHGATE_SKIP") == "1" {
		fmt.Println("benchgate: skipped (BENCHGATE_SKIP=1)")
		return
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintf(os.Stderr, "benchgate: tolerance %v out of range [0, 1)\n", *tolerance)
		os.Exit(1)
	}

	fresh := benchmeas.Measure(benchmeas.Config{
		Cycles:        *cycles,
		LowLoadCycles: *lowCycles,
		FleetCycles:   *fleetCycles,
		Log:           os.Stdout,
	})
	if *update {
		if err := fresh.WriteFile(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: write %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: baseline %s updated\n", *baseline)
		return
	}

	base, err := benchmeas.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: load baseline: %v\n", err)
		os.Exit(1)
	}
	violations, notes := benchmeas.Compare(base, fresh, *tolerance)
	for _, n := range notes {
		fmt.Printf("benchgate: note: %s\n", n)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) vs %s:\n", len(violations), *baseline)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		fmt.Fprintln(os.Stderr, "benchgate: refresh the baseline with -update if this is an accepted change, "+
			"or set BENCHGATE_SKIP=1 for known-noisy runners")
		os.Exit(1)
	}
	fmt.Printf("benchgate: pass (%d measurements within %.0f%% of %s)\n",
		len(base.Saturating)+len(base.EventMode)+len(base.LowLoad)+len(base.Fleet)+len(base.ZeroAlloc), 100**tolerance, *baseline)
}
