// Command tracetool inspects trace files written by panicsim -trace
// (Chrome trace_event / Perfetto JSON with exact cycle values embedded in
// event args).
//
// Usage:
//
//	tracetool [flags] trace.json
//
// With no flags it prints the summary report (end-to-end latency plus the
// per-stage breakdown). Other views:
//
//	tracetool -list trace.json           list traced message IDs
//	tracetool -msg 281474976710659 t.json  one message's cycle timeline
//	tracetool -loc kvscache trace.json   summary restricted to one location
//	tracetool -flame trace.json          collapsed flamegraph stacks
//	tracetool -top 10 trace.json         the 10 slowest messages end to end
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/panic-nic/panic/internal/trace"
)

func main() {
	msgID := flag.Uint64("msg", 0, "print the cycle timeline for one trace ID")
	loc := flag.String("loc", "", "restrict the summary to spans at this location name (e.g. kvscache, rmt0)")
	flame := flag.Bool("flame", false, "print collapsed flamegraph stacks (feed to flamegraph.pl)")
	top := flag.Int("top", 0, "print the N slowest messages end to end")
	list := flag.Bool("list", false, "list traced message IDs")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracetool [flags] trace.json")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
	set, err := trace.ReadChrome(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *msgID != 0:
		fmt.Print(set.Timeline(*msgID))
	case *flame:
		fmt.Print(set.Flame())
	case *list:
		for _, id := range set.Messages() {
			fmt.Println(id)
		}
	case *top > 0:
		printTop(set, *top)
	case *loc != "":
		filtered := set.Filter(func(sp trace.Span) bool {
			return set.LocName(sp.LocKind, sp.Loc) == *loc
		})
		if len(filtered.Spans) == 0 {
			fmt.Fprintf(os.Stderr, "tracetool: no spans at location %q\n", *loc)
			os.Exit(1)
		}
		fmt.Print(filtered.SummaryText())
	default:
		fmt.Print(set.SummaryText())
	}
}

// printTop lists the n messages with the widest span footprint.
func printTop(set *trace.Set, n int) {
	type e2e struct {
		id     uint64
		lo, hi uint64
	}
	byMsg := make(map[uint64]*e2e)
	for _, sp := range set.Spans {
		if sp.Msg == 0 {
			continue
		}
		w, ok := byMsg[sp.Msg]
		if !ok {
			byMsg[sp.Msg] = &e2e{id: sp.Msg, lo: sp.Start, hi: sp.End}
			continue
		}
		if sp.Start < w.lo {
			w.lo = sp.Start
		}
		if sp.End > w.hi {
			w.hi = sp.End
		}
	}
	rows := make([]*e2e, 0, len(byMsg))
	for _, w := range byMsg {
		rows = append(rows, w)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := rows[i].hi-rows[i].lo, rows[j].hi-rows[j].lo
		if di != dj {
			return di > dj
		}
		return rows[i].id < rows[j].id
	})
	if n > len(rows) {
		n = len(rows)
	}
	for _, w := range rows[:n] {
		fmt.Printf("%-20d %8d cycles  (%d..%d)\n", w.id, w.hi-w.lo, w.lo, w.hi)
	}
}
