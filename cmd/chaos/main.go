// Command chaos is the seeded chaos/soak harness: it generates
// random-but-deterministic scenarios (fault plans, tenant mixes,
// workloads, ablation knobs), runs each with the runtime invariant
// monitor armed, and on a violation shrinks the scenario to a minimal
// reproducer written as a replayable scenario file (see ROBUSTNESS.md).
//
// Soak a seed range:
//
//	chaos -seeds 500 -cycles 20000
//
// Replay a reproducer:
//
//	chaos -replay chaos-seed42.repro
//
// Self-test the net (must fail and shrink):
//
//	chaos -seeds 50 -plant
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/panic-nic/panic/internal/chaos"
)

func main() {
	seeds := flag.Int("seeds", 100, "number of consecutive seeds to run")
	seedStart := flag.Uint64("seed-start", 0, "first seed of the range (nightly soaks advance this)")
	cycles := flag.Uint64("cycles", 20000, "horizon of each scenario in cycles")
	replay := flag.String("replay", "", "replay one scenario `file` instead of generating")
	plant := flag.Bool("plant", false, "arm the planted flow-cache invalidation-skip bug (harness self-test)")
	out := flag.String("out", ".", "directory shrunk reproducer files are written to")
	budget := flag.Int("shrink-budget", 60, "max candidate runs the shrinker may spend per failure")
	verbose := flag.Bool("v", false, "print every scenario as it runs")
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}
	os.Exit(runRange(*seedStart, *seeds, *cycles, *plant, *out, *budget, *verbose))
}

func runReplay(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer f.Close()
	s, err := chaos.ParseScenario(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if fail := chaos.Run(s); fail != nil {
		fmt.Printf("seed %d: FAIL %s\n", s.Seed, fail)
		return 1
	}
	fmt.Printf("seed %d: clean over %d cycles\n", s.Seed, s.Cycles)
	return 0
}

func runRange(start uint64, n int, cycles uint64, plant bool, out string, budget int, verbose bool) int {
	failures := 0
	for seed := start; seed < start+uint64(n); seed++ {
		s := chaos.Generate(seed, cycles)
		s.Plant = plant
		if verbose {
			fmt.Printf("seed %d: tenants=%d requests=%d queuecap=%d replicas=%d workers=%d ff=%v nocache=%v heapq=%v scoped=%v events=%d\n",
				seed, s.Tenants, s.Requests, s.QueueCap, s.Replicas, s.Workers,
				s.FastForward, s.NoFlowCache, s.HeapSchedQueue, s.TenantScoped, len(s.Plan.Events))
		}
		fail := chaos.Run(s)
		if fail == nil {
			continue
		}
		failures++
		fmt.Printf("seed %d: FAIL %s\n", seed, fail)
		shrunk, spent := chaos.Shrink(s, fail, budget)
		path := filepath.Join(out, fmt.Sprintf("chaos-seed%d.repro", seed))
		if err := os.WriteFile(path, []byte(shrunk.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("seed %d: shrunk to %d fault event(s) over %d cycles in %d runs -> %s\n",
			seed, len(shrunk.Plan.Events), shrunk.Cycles, spent, path)
		fmt.Print(shrunk.String())
	}
	if failures > 0 {
		fmt.Printf("%d/%d seeds failed\n", failures, n)
		return 1
	}
	fmt.Printf("%d seeds clean over %d cycles each\n", n, cycles)
	return 0
}
