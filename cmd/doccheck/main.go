// Command doccheck verifies that the repository's documentation stays in
// sync with the code: every backticked file or directory path in the
// checked markdown files must exist, and every backticked command flag
// must be defined by the command it belongs to. CI runs it so drift like a
// renamed flag or a deleted file fails the build instead of rotting in the
// docs.
//
// Usage:
//
//	doccheck [-root dir] [file.md ...]
//
// With no file arguments it checks the default set: README.md, DESIGN.md,
// OBSERVABILITY.md, EXPERIMENTS.md, ROBUSTNESS.md, ROADMAP.md, ISSUE.md,
// and SERVICE.md.
//
// Checked tokens, all inside backticks:
//
//   - A single-word token containing a "/" (or ending in ".md") is a path
//     and must exist relative to the repo root. Wildcards ("..."), URLs,
//     and placeholders ("<file>") are skipped.
//   - A token starting with "-", or any "-flag" word inside a token whose
//     first word names a command in cmd/, must match a flag.X("name", ...)
//     declaration in that command's sources (or any command's, for bare
//     "-flag" tokens).
//
// The check also runs in reverse for the main simulator binary: every
// flag cmd/panicsim declares must appear backticked somewhere in
// README.md, so adding a flag without documenting it fails CI the same
// way documenting a removed flag does.
//
// The serve plane gets the same treatment in both directions: every
// route internal/serve registers (the route literals in
// internal/serve/handlers.go) must appear as "METHOD /path" in
// SERVICE.md, and every "### `METHOD /path`" endpoint heading in
// SERVICE.md must name a registered route — so adding, renaming, or
// deleting an endpoint without updating the API reference fails CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
)

var (
	backtickRe  = regexp.MustCompile("`([^`]+)`")
	flagDeclRe  = regexp.MustCompile(`flag\.[A-Za-z0-9]+\(\s*"([^"]+)"`)
	flagWordRe  = regexp.MustCompile(`^-[a-z][a-z0-9-]*$`)
	routeDeclRe = regexp.MustCompile(`\{method:\s*"([A-Z]+)",\s*pattern:\s*"([^"]+)"`)
	routeDocRe  = regexp.MustCompile("^###+ `([A-Z]+ /[^`]*)`")

	// goToolFlags are flags of the go tool itself (`go test -race`, ...)
	// that legitimately appear backticked in the docs but are not declared
	// by any command in cmd/.
	goToolFlags = map[string]bool{
		"race": true, "short": true, "bench": true, "benchmem": true,
		"benchtime": true, "run": true, "v": true, "cover": true,
		"fuzz": true, "fuzztime": true,
	}
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		files = []string{"README.md", "DESIGN.md", "OBSERVABILITY.md", "EXPERIMENTS.md", "ROBUSTNESS.md", "ROADMAP.md", "ISSUE.md", "SERVICE.md"}
	}

	cmdFlags, err := collectFlags(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	allFlags := make(map[string]bool)
	for _, set := range cmdFlags {
		for f := range set {
			allFlags[f] = true
		}
	}

	bad := 0
	readmeFlags := make(map[string]bool)
	for _, md := range files {
		data, err := os.ReadFile(filepath.Join(*root, md))
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			bad++
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range backtickRe.FindAllStringSubmatch(line, -1) {
				if md == "README.md" {
					for _, w := range strings.Fields(m[1]) {
						if flagWordRe.MatchString(w) {
							readmeFlags[strings.TrimPrefix(w, "-")] = true
						}
					}
				}
				for _, problem := range checkToken(*root, m[1], cmdFlags, allFlags) {
					fmt.Fprintf(os.Stderr, "%s:%d: %s\n", md, i+1, problem)
					bad++
				}
			}
		}
	}

	// Reverse check: every flag the main simulator declares must be
	// documented (backticked) somewhere in README.md.
	if checksFile(files, "README.md") {
		for f := range cmdFlags["panicsim"] {
			if !readmeFlags[f] {
				fmt.Fprintf(os.Stderr, "README.md: cmd/panicsim flag `-%s` is not documented\n", f)
				bad++
			}
		}
	}
	// Route check, both directions: every registered serve route must be
	// documented in SERVICE.md, and every endpoint heading in SERVICE.md
	// must name a registered route.
	if checksFile(files, "SERVICE.md") {
		bad += checkRoutes(*root)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

// checkRoutes cross-checks the serve plane's route table (the one-line
// route literals in internal/serve/handlers.go) against SERVICE.md and
// returns the number of problems found.
func checkRoutes(root string) int {
	src, err := os.ReadFile(filepath.Join(root, "internal", "serve", "handlers.go"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	doc, err := os.ReadFile(filepath.Join(root, "SERVICE.md"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		return 1
	}
	declared := make(map[string]bool)
	for _, m := range routeDeclRe.FindAllStringSubmatch(string(src), -1) {
		declared[m[1]+" "+m[2]] = true
	}
	bad := 0
	if len(declared) == 0 {
		fmt.Fprintln(os.Stderr, "doccheck: no route literals found in internal/serve/handlers.go")
		bad++
	}
	for route := range declared {
		if !strings.Contains(string(doc), route) {
			fmt.Fprintf(os.Stderr, "SERVICE.md: serve route `%s` is not documented\n", route)
			bad++
		}
	}
	for i, line := range strings.Split(string(doc), "\n") {
		m := routeDocRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if !declared[m[1]] {
			fmt.Fprintf(os.Stderr, "SERVICE.md:%d: documented route `%s` is not registered in internal/serve/handlers.go\n", i+1, m[1])
			bad++
		}
	}
	return bad
}

// checksFile reports whether name is in the checked-file list.
func checksFile(files []string, name string) bool {
	for _, f := range files {
		if f == name {
			return true
		}
	}
	return false
}

// collectFlags maps each command under cmd/ to the set of flag names its
// sources declare.
func collectFlags(root string) (map[string]map[string]bool, error) {
	out := make(map[string]map[string]bool)
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		set := make(map[string]bool)
		srcs, _ := filepath.Glob(filepath.Join(root, "cmd", e.Name(), "*.go"))
		for _, src := range srcs {
			data, err := os.ReadFile(src)
			if err != nil {
				return nil, err
			}
			for _, m := range flagDeclRe.FindAllStringSubmatch(string(data), -1) {
				set[m[1]] = true
			}
		}
		out[e.Name()] = set
	}
	return out, nil
}

// checkToken validates one backticked token and returns the problems found.
func checkToken(root, tok string, cmdFlags map[string]map[string]bool, allFlags map[string]bool) []string {
	var problems []string
	words := strings.Fields(tok)
	if len(words) == 0 {
		return nil
	}

	// Path check: single-word tokens that look like repo paths. Absolute
	// paths point outside the repository and are not checked.
	if len(words) == 1 {
		w := words[0]
		isPath := (strings.Contains(w, "/") || strings.HasSuffix(w, ".md")) &&
			!strings.HasPrefix(w, "/") &&
			!strings.Contains(w, "...") && !strings.Contains(w, "://") &&
			!strings.ContainsAny(w, "<>*|$")
		if isPath {
			if _, err := os.Stat(filepath.Join(root, w)); err != nil {
				// Go standard-library packages (`container/heap`, ...) read
				// like repo paths; resolve them against GOROOT/src.
				if _, gerr := os.Stat(filepath.Join(runtime.GOROOT(), "src", w)); gerr != nil {
					problems = append(problems, fmt.Sprintf("path `%s` does not exist", w))
				}
			}
			return problems
		}
	}

	// Flag check: bare `-flag` tokens check against every command's flags;
	// `-flag` words inside a `somecmd ...` token check that command's.
	scope := allFlags
	scopeName := "any command"
	if set, ok := cmdFlags[words[0]]; ok {
		scope = set
		scopeName = "cmd/" + words[0]
	} else if !strings.HasPrefix(words[0], "-") {
		return problems // not a flag context (e.g. `go vet ./...`)
	}
	for _, w := range words {
		if !flagWordRe.MatchString(w) {
			continue
		}
		name := strings.TrimPrefix(w, "-")
		if scope[name] {
			continue
		}
		if scopeName == "any command" && goToolFlags[name] {
			continue // `go test -race` etc., not a cmd/ flag
		}
		problems = append(problems, fmt.Sprintf("flag `%s` not defined by %s", w, scopeName))
	}
	return problems
}
