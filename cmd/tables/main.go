// Command tables regenerates the paper's Tables 1, 2, and 3.
//
// Tables 2 and 3 are printed from the closed-form models in
// internal/analytic; -measure additionally validates Table 3 against the
// flit-level mesh simulator (slow: several seconds per row).
//
// Usage:
//
//	tables [-table 1|2|3|all] [-measure] [-warmup N] [-window N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/panic-nic/panic/internal/analytic"
	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/stats"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2, 3, or all")
	measure := flag.Bool("measure", false, "also measure Table 3 with the flit-level simulator")
	warmup := flag.Uint64("warmup", 2000, "simulator warmup cycles (with -measure)")
	window := flag.Uint64("window", 20000, "simulator measurement cycles (with -measure)")
	seed := flag.Uint64("seed", 1, "simulator seed (with -measure)")
	flag.Parse()

	switch *table {
	case "1":
		printTable1()
	case "2":
		printTable2()
	case "3":
		printTable3(*measure, *warmup, *window, *seed)
	case "all":
		printTable1()
		fmt.Println()
		printTable2()
		fmt.Println()
		printTable3(*measure, *warmup, *window, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

func printTable1() {
	fmt.Println("Table 1: offload types used by prior work")
	fmt.Print(core.Table1Render())
}

func printTable2() {
	fmt.Println("Table 2: PPS needed for line-rate forwarding of minimum-size packets (RX+TX)")
	t := stats.NewTable("Line-rate", "# Eth Ports", "PPS (paper)", "PPS (exact)")
	for _, r := range analytic.Table2() {
		t.AddRow(
			fmt.Sprintf("%.0fGbps", r.LineRateGbps),
			r.Ports,
			fmt.Sprintf("%.0fMpps", r.MppsPaper),
			fmt.Sprintf("%.1fMpps", r.MppsExact),
		)
	}
	fmt.Print(t.String())
}

func printTable3(measure bool, warmup, window, seed uint64) {
	fmt.Println("Table 3: on-chip mesh throughput and sustainable chain length")
	header := []string{"Line-rate", "Freq", "Bit Width", "Topo", "Bisec BW", "Capacity", "Chain Len"}
	if measure {
		header = append(header, "Sim Gbps", "Sim Chain")
	}
	t := stats.NewTable(header...)
	for _, r := range analytic.Table3() {
		p := r.Params
		row := []any{
			fmt.Sprintf("%.0fGbps x%d", p.LineRateGbps, p.Ports),
			fmt.Sprintf("%.0fMHz", p.FreqHz/1e6),
			p.WidthBits,
			p.Topology(),
			fmt.Sprintf("%.0fGbps", r.BisectionGbps),
			fmt.Sprintf("%.0fGbps", r.CapacityGbps),
			fmt.Sprintf("%.2f", r.ChainLen),
		}
		if measure {
			cfg := noc.DefaultMeshConfig()
			cfg.Width, cfg.Height, cfg.FlitWidthBits = p.K, p.K, p.WidthBits
			point := noc.MeasureSaturation(noc.NewMesh(cfg), p.FreqHz, 64, warmup, window, seed)
			simChain := point.DeliveredGbps/p.AggregateLineGbps() - analytic.OverheadTraversals
			row = append(row,
				fmt.Sprintf("%.0f", point.DeliveredGbps),
				fmt.Sprintf("%.2f", simChain),
			)
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	if measure {
		fmt.Println("\nSim columns: measured uniform-random saturation (single-VC wormhole,")
		fmt.Println("XY routing) and the chain length it sustains after the 4 overhead")
		fmt.Println("traversals; the paper's Capacity column is channel-capacity arithmetic.")
	}
}
