// Command trafficgen records synthetic workloads into replayable trace
// files and replays them against a PANIC NIC.
//
// Generate a 1 ms three-tenant KVS trace:
//
//	trafficgen -mode generate -cycles 500000 -out trace.txt
//
// Replay it:
//
//	trafficgen -mode replay -in trace.txt -cycles 600000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

func main() {
	mode := flag.String("mode", "generate", "generate or replay")
	cycles := flag.Uint64("cycles", 500_000, "cycles to record / simulate")
	out := flag.String("out", "trace.txt", "trace output file (generate)")
	in := flag.String("in", "trace.txt", "trace input file (replay)")
	rate := flag.Float64("rate", 8, "per-tenant offered load (Gbps, generate)")
	tenants := flag.Int("tenants", 3, "tenant count (generate)")
	wan := flag.Float64("wan", 0.2, "WAN share (generate)")
	seed := flag.Uint64("seed", 1, "seed (generate)")
	flag.Parse()

	switch *mode {
	case "generate":
		generate(*out, *cycles, *rate, *tenants, *wan, *seed)
	case "replay":
		replay(*in, *cycles)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func generate(path string, cycles uint64, rate float64, tenants int, wan float64, seed uint64) {
	var srcs []workload.Source
	for i := 0; i < tenants; i++ {
		class := packet.ClassLatency
		if i%2 == 1 {
			class = packet.ClassBulk
		}
		srcs = append(srcs, workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: uint16(i + 1), Class: class,
			RateGbps: rate, FreqHz: 500e6, Poisson: true,
			Keys: 4096, GetRatio: 0.85, WANShare: wan, ValueBytes: 512,
			Seed: seed + uint64(i),
		}))
	}
	records := workload.Record(workload.NewMerge(srcs...), cycles)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := workload.WriteTrace(f, records); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d cycles, %d tenants) to %s\n", len(records), cycles, tenants, path)
}

func replay(path string, cycles uint64) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	records, err := workload.ReadTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	src := workload.NewTraceSource(records)
	nic := core.NewNIC(core.DefaultConfig(), []engine.Source{src})
	nic.Run(cycles)
	fmt.Printf("replayed %d/%d records over %d cycles\n\n", len(records)-src.Remaining(), len(records), cycles)
	fmt.Print(nic.Summary(cycles))
}
