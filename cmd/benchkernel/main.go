// Command benchkernel measures the simulation kernel's execution-mode
// performance on the canonical PANIC NIC and writes the results to a JSON
// file (BENCH_kernel.json by default):
//
//   - a worker sweep under a saturating two-tenant workload (parallel Eval),
//     reporting simulated cycles/s, delivered msgs/s, and speedup vs one
//     worker;
//   - a low-load latency-curve run with idle-cycle fast-forward off and on,
//     reporting effective simulated cycles/s and the skip ratio;
//   - the zero-alloc hot paths' steady-state allocations per operation.
//
// The host's CPU count and GOMAXPROCS are recorded alongside the numbers:
// parallel-Eval speedup requires real cores, while the fast-forward speedup
// is algorithmic and shows up even on one core.
//
// The committed output is the baseline cmd/benchgate compares against.
//
// Usage:
//
//	benchkernel [-cycles N] [-lowload-cycles N] [-o BENCH_kernel.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/panic-nic/panic/internal/benchmeas"
)

func main() {
	cycles := flag.Uint64("cycles", 300_000, "simulated cycles per saturating run")
	lowCycles := flag.Uint64("lowload-cycles", 2_000_000, "simulated cycles per low-load run")
	out := flag.String("o", "BENCH_kernel.json", "output JSON path")
	flag.Parse()

	rep := benchmeas.Measure(benchmeas.Config{
		Cycles:        *cycles,
		LowLoadCycles: *lowCycles,
		Log:           os.Stdout,
	})
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
