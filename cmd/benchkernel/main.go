// Command benchkernel measures the simulation kernel's execution-mode
// performance on the canonical PANIC NIC and writes the results to a JSON
// file (BENCH_kernel.json by default):
//
//   - a worker sweep under a saturating two-tenant workload (parallel Eval),
//     reporting simulated cycles/s, delivered msgs/s, and speedup vs one
//     worker;
//   - a low-load latency-curve run with idle-cycle fast-forward off and on,
//     reporting effective simulated cycles/s and the skip ratio.
//
// The host's CPU count and GOMAXPROCS are recorded alongside the numbers:
// parallel-Eval speedup requires real cores, while the fast-forward speedup
// is algorithmic and shows up even on one core.
//
// Usage:
//
//	benchkernel [-cycles N] [-lowload-cycles N] [-o BENCH_kernel.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

type workerResult struct {
	Workers    int     `json:"workers"`
	SimCycles  uint64  `json:"sim_cycles"`
	WallSec    float64 `json:"wall_sec"`
	CyclesPerS float64 `json:"sim_cycles_per_sec"`
	MsgsPerS   float64 `json:"msgs_per_sec"`
	Speedup    float64 `json:"speedup_vs_1_worker"`
}

type ffResult struct {
	FastForward bool    `json:"fast_forward"`
	SimCycles   uint64  `json:"sim_cycles"`
	Skipped     uint64  `json:"skipped_cycles"`
	WallSec     float64 `json:"wall_sec"`
	CyclesPerS  float64 `json:"sim_cycles_per_sec"`
	Speedup     float64 `json:"speedup_vs_stepping"`
}

type report struct {
	NumCPU        int            `json:"num_cpu"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Note          string         `json:"note"`
	Saturating    []workerResult `json:"saturating_worker_sweep"`
	LowLoad       []ffResult     `json:"low_load_fast_forward"`
	BestFFSpeedup float64        `json:"best_ff_speedup"`
}

func buildNIC(workers int, fastForward bool, load float64) *core.NIC {
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	cfg.FastForward = fastForward
	srcs := []engine.Source{
		workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 100 * load, FreqHz: cfg.FreqHz,
			Keys: 1024, GetRatio: 0.9, WANShare: 0.2, ValueBytes: 256,
			Seed: 21,
		}),
		workload.NewFixedStream(workload.FixedStreamConfig{
			FrameBytes: 256, RateGbps: 100 * load, FreqHz: cfg.FreqHz,
			Tenant: 2, Class: packet.ClassBulk, Seed: 22,
		}),
	}
	return core.NewNIC(cfg, srcs)
}

func main() {
	cycles := flag.Uint64("cycles", 300_000, "simulated cycles per saturating run")
	lowCycles := flag.Uint64("lowload-cycles", 2_000_000, "simulated cycles per low-load run")
	out := flag.String("o", "BENCH_kernel.json", "output JSON path")
	flag.Parse()

	rep := report{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "parallel-Eval speedup scales with physical cores " +
			"(workers>1 on a single-core host only adds synchronization " +
			"overhead); fast-forward speedup is algorithmic and " +
			"core-count independent",
	}

	var base float64
	for _, w := range []int{1, 2, 4, 8} {
		nic := buildNIC(w, false, 0.9)
		nic.Run(2_000) // warm-up: fill the pipeline
		before := nic.WireLat.Count + nic.HostLat.Count
		start := time.Now()
		nic.Run(*cycles)
		wall := time.Since(start).Seconds()
		delivered := nic.WireLat.Count + nic.HostLat.Count - before
		nic.Close()
		r := workerResult{
			Workers:    w,
			SimCycles:  *cycles,
			WallSec:    wall,
			CyclesPerS: float64(*cycles) / wall,
			MsgsPerS:   float64(delivered) / wall,
		}
		if w == 1 {
			base = r.CyclesPerS
		}
		r.Speedup = r.CyclesPerS / base
		rep.Saturating = append(rep.Saturating, r)
		fmt.Printf("saturating workers=%d: %.0f simcycles/s, %.0f msgs/s (%.2fx)\n",
			w, r.CyclesPerS, r.MsgsPerS, r.Speedup)
	}

	var stepRate float64
	for _, ff := range []bool{false, true} {
		nic := buildNIC(0, ff, 0.001)
		start := time.Now()
		nic.Run(*lowCycles)
		wall := time.Since(start).Seconds()
		skipped := nic.Builder.Kernel.SkippedCycles()
		nic.Close()
		r := ffResult{
			FastForward: ff,
			SimCycles:   *lowCycles,
			Skipped:     skipped,
			WallSec:     wall,
			CyclesPerS:  float64(*lowCycles) / wall,
		}
		if !ff {
			stepRate = r.CyclesPerS
		}
		r.Speedup = r.CyclesPerS / stepRate
		rep.LowLoad = append(rep.LowLoad, r)
		if r.Speedup > rep.BestFFSpeedup {
			rep.BestFFSpeedup = r.Speedup
		}
		fmt.Printf("low-load fastforward=%v: %.0f simcycles/s, %d skipped (%.2fx)\n",
			ff, r.CyclesPerS, skipped, r.Speedup)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
