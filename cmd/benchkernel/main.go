// Command benchkernel measures the simulation kernel's execution-mode
// performance on the canonical PANIC NIC and writes the results to a JSON
// file (BENCH_kernel.json by default):
//
//   - a worker sweep under a saturating two-tenant workload (parallel Eval),
//     reporting simulated cycles/s, delivered msgs/s, and speedup vs one
//     worker (skippable with -skip-worker-sweep; auto-skipped on a
//     single-CPU host, where parallel Eval only measures synchronization
//     overhead);
//   - a saturated kernel-mode pair: the same single-worker workload under
//     the ticked oracle loop and the event-driven engine, back to back, so
//     the recorded speedup_vs_ticked isolates the event engine from host
//     speed;
//   - a low-load latency-curve run with idle-cycle fast-forward off and on,
//     reporting effective simulated cycles/s and the skip ratio;
//   - a rack-scale fleet run (4 NICs joined by the modeled ToR) at 1 and 4
//     shards, reporting aggregate fleet msgs/s and shard speedup;
//   - the zero-alloc hot paths' steady-state allocations per operation.
//
// The host's CPU count and GOMAXPROCS are recorded alongside the numbers:
// parallel-Eval speedup requires real cores, while the fast-forward speedup
// is algorithmic and shows up even on one core.
//
// The committed output is the baseline cmd/benchgate compares against.
//
// Usage:
//
//	benchkernel [-cycles N] [-lowload-cycles N] [-fleet-cycles N]
//	            [-o BENCH_kernel.json] [-cpuprofile FILE] [-memprofile FILE]
//	            [-ablation] [-fleet-only] [-skip-worker-sweep]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/panic-nic/panic/internal/benchmeas"
)

func main() {
	cycles := flag.Uint64("cycles", 300_000, "simulated cycles per saturating run")
	lowCycles := flag.Uint64("lowload-cycles", 2_000_000, "simulated cycles per low-load run")
	out := flag.String("o", "BENCH_kernel.json", "output JSON path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the measurement runs to `file`")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the runs to `file`")
	ablation := flag.Bool("ablation", false, "also run the hot-path ablation sweep (flow cache / bucket queue off)")
	fleetCycles := flag.Uint64("fleet-cycles", 200_000, "simulated cycles per rack-scale fleet run (0 skips the fleet stage)")
	fleetOnly := flag.Bool("fleet-only", false, "run only the fleet stage (the CI fleet-smoke artifact)")
	skipSweep := flag.Bool("skip-worker-sweep", false, "measure only the single-worker saturating entry (auto-enabled on a single-CPU host)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var rep benchmeas.Report
	if *fleetOnly {
		rep.NumCPU = runtime.NumCPU()
		rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
		rep.Note = "fleet stage only (-fleet-only); not a full baseline"
		rep.Fleet = benchmeas.MeasureFleet(benchmeas.Config{
			FleetCycles: *fleetCycles,
			Log:         os.Stdout,
		})
	} else {
		rep = benchmeas.Measure(benchmeas.Config{
			Cycles:          *cycles,
			LowLoadCycles:   *lowCycles,
			FleetCycles:     *fleetCycles,
			Ablation:        *ablation,
			SkipWorkerSweep: *skipSweep,
			Log:             os.Stdout,
		})
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *memProfile, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "write heap profile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
