// Kvstore: the paper's §2.2/§3.2 running example at full scale — a
// geodistributed, multi-tenant, DynamoDB-style key-value store served by a
// PANIC NIC. Three tenants share the NIC: a local latency-sensitive
// service, a bulk analytics tenant, and a remote (WAN) tenant whose
// traffic arrives encrypted. Hot keys are cached on the NIC and served
// with full CPU bypass.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/stats"
	"github.com/panic-nic/panic/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	const cycles = 2_000_000 // 4 ms at 500 MHz

	tenants := []workload.KVSTenantConfig{
		{ // tenant 1: latency-sensitive local service
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
			Keys: 2048, ZipfS: 1.2, GetRatio: 0.95, WANShare: 0,
			ValueBytes: 256, Seed: 11,
		},
		{ // tenant 2: bulk analytics scans
			Tenant: 2, Class: packet.ClassBulk,
			RateGbps: 8, FreqHz: cfg.FreqHz, Poisson: true,
			Keys: 65536, ZipfS: 1.01, GetRatio: 0.7, WANShare: 0,
			ValueBytes: 1024, ClientNet: 1, Seed: 12,
		},
		{ // tenant 3: geodistributed replica over the WAN (encrypted)
			Tenant: 3, Class: packet.ClassLatency,
			RateGbps: 4, FreqHz: cfg.FreqHz, Poisson: true,
			Keys: 2048, ZipfS: 1.2, GetRatio: 0.8, WANShare: 1.0,
			ValueBytes: 256, Seed: 13,
		},
	}
	// Tenants 1 and 3 share port 0; the bulk tenant gets port 1 (its
	// responses return through port 1, keeping port 0's egress free for
	// latency-sensitive replies).
	port0 := workload.NewMerge(
		workload.NewKVSStream(tenants[0]),
		workload.NewKVSStream(tenants[2]),
	)
	port1 := workload.NewKVSStream(tenants[1])
	nic := core.NewNIC(cfg, []engine.Source{port0, port1})

	// The cache warms itself from SET traffic; give the hot keys a head
	// start so the run reaches steady state quickly.
	for k := uint64(0); k < 512; k++ {
		nic.Cache.Warm(k, 256)
	}

	nic.Run(cycles)

	fmt.Println("Geodistributed multi-tenant KVS on a PANIC NIC")
	fmt.Printf("(2x100G ports, %d-key NIC cache, IPSec for WAN tenant, %.1f ms simulated)\n\n",
		cfg.CacheCapacity, float64(cycles)/cfg.FreqHz*1e3)

	hits, misses, sets := nic.Cache.Counts()
	dec, enc := nic.IPSec.Counts()
	rdmaIssued, rdmaReplies := nic.RDMA.Counts()
	hostGets, hostSets := nic.Host.Counts()
	fmt.Printf("cache: %d hits / %d misses (%.0f%% hit rate), %d SET updates\n",
		hits, misses, 100*float64(hits)/float64(hits+misses), sets)
	fmt.Printf("cpu bypass: %d replies built by the RDMA engine (%d DMA reads)\n", rdmaReplies, rdmaIssued)
	fmt.Printf("host: served %d GET misses, absorbed %d SETs\n", hostGets, hostSets)
	fmt.Printf("ipsec: %d decrypted in, %d encrypted out\n", dec, enc)
	notif, irqs := nic.PCIe.Counts()
	fmt.Printf("pcie: %d completions coalesced into %d interrupts\n\n", notif, irqs)

	t := stats.NewTable("tenant", "class", "responses", "p50 RTT (us)", "p99 RTT (us)")
	us := func(c float64) string { return fmt.Sprintf("%.2f", c/cfg.FreqHz*1e6) }
	for _, tc := range tenants {
		h := nic.WireLat.Tenant(tc.Tenant)
		t.AddRow(tc.Tenant, tc.Class.String(), h.Count(), us(h.P50()), us(h.P99()))
	}
	fmt.Print(t.String())

	fmt.Println("\nWhat to look for: tenant 1 (cached, plaintext) has the lowest RTT;")
	fmt.Println("tenant 3 pays the IPSec engine twice (decrypt + re-encrypt); tenant 2's")
	fmt.Println("bulk scans carry large slack values, so they never delay tenants 1/3 in")
	fmt.Println("any engine queue (the logical scheduler at work, §3.1.3).")
}
