// Dos: the paper's §6 open question made concrete — "What is the best way
// to ... ensure that other messages (e.g., packets from a DOS attack) are
// dropped as needed?" A victim tenant shares the NIC with an attacker
// flooding small GETs. The demo applies PANIC's three lines of defense in
// sequence:
//
//  1. nothing — the attacker's flood competes for every engine queue;
//  2. a SENIC-style per-tenant rate limit on the attacker;
//  3. an ACL drop rule in the RMT pipeline (cheapest: one pipeline pass).
//
// Run with:
//
//	go run ./examples/dos
package main

import (
	"fmt"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/stats"
	"github.com/panic-nic/panic/internal/workload"
)

const cycles = 1_000_000

func build(defense string) *core.NIC {
	cfg := core.DefaultConfig()
	// A modest host link so the flood actually hurts.
	cfg.PCIeGbps = 24

	victim := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 2, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 512, GetRatio: 0.9, ValueBytes: 256, Seed: 5,
	})
	// The attacker: tenant 66 from 203.99.0.0/16, flooding GETs.
	attacker := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 66, Class: packet.ClassBulk,
		RateGbps: 40, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 1 << 20, GetRatio: 1.0, ValueBytes: 64,
		ClientNet: 99, Seed: 6,
	})

	if defense == "ratelimit" {
		cfg.RateLimits = map[uint16]float64{66: 1}
	}
	nic := core.NewNIC(cfg, []engine.Source{workload.NewMerge(victim, attacker)})
	if defense == "acl" {
		// Drop the attacker's source prefix 10.99.0.0/16 in the pipeline.
		core.InstallDropRule(nic.Program, 10<<24|99<<16, 16, 100)
	}
	return nic
}

func main() {
	fmt.Println("DoS shedding on a PANIC NIC (§6)")
	fmt.Println("victim: 2 Gbps latency-sensitive; attacker: 40 Gbps GET flood;")
	fmt.Println("host link: 24 Gbps. Victim's host-delivery latency and goodput:")
	fmt.Println()
	t := stats.NewTable("defense", "victim p50 (us)", "victim p99 (us)", "victim served", "attacker served", "drops")
	for _, defense := range []string{"none", "ratelimit", "acl"} {
		nic := build(defense)
		nic.Run(cycles)
		us := func(c float64) string { return fmt.Sprintf("%.2f", c/nic.Cfg.FreqHz*1e6) }
		v := nic.HostLat.Tenant(1)
		a := nic.HostLat.Tenant(66)
		drops := nic.Drops.Value() + nic.RMTStats().Dropped
		t.AddRow(defense, us(v.P50()), us(v.P99()), v.Count(), a.Count(), drops)
	}
	fmt.Print(t.String())
	fmt.Println()
	fmt.Println("Without defenses the flood fills the DMA engine's queue and the")
	fmt.Println("victim's tail explodes. The rate limiter confines the attacker to its")
	fmt.Println("contract and sheds the excess at one engine. The ACL rule is cheapest:")
	fmt.Println("the RMT pipeline drops flood packets after a single pass, before they")
	fmt.Println("consume any engine or network bandwidth.")
}
