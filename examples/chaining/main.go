// Chaining: the Fig 2a comparison — a fixed offload pipeline vs PANIC's
// dynamic chaining through the logical switch. Two traffic classes share
// the NIC: encrypted WAN requests that need the (slow) IPSec engine, and
// plain LAN requests that do not. In the pipeline design the plain traffic
// is head-of-line blocked behind crypto; in PANIC it never visits the
// IPSec engine at all.
//
// Run with:
//
//	go run ./examples/chaining
package main

import (
	"fmt"

	"github.com/panic-nic/panic/internal/baseline"
	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/stats"
	"github.com/panic-nic/panic/internal/workload"
)

const (
	freq   = 500e6
	cycles = 1_000_000
)

// Crypto runs at 4 B/cycle = 16 Gbps — well below line rate, exactly the
// kind of offload §2.3 worries about.
func ipsecCfg() engine.IPSecConfig {
	return engine.IPSecConfig{BytesPerCycle: 4, SetupCycles: 50}
}

func sources(seed uint64) engine.Source {
	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 2, FreqHz: freq, Poisson: true,
		Keys: 256, GetRatio: 1.0, ValueBytes: 128, Seed: seed,
	})
	wan := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency,
		RateGbps: 8, FreqHz: freq, Poisson: true,
		Keys: 256, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Seed: seed + 1,
	})
	return workload.NewMerge(plain, wan)
}

func main() {
	// Fig 2a: every packet physically traverses the IPSec stage.
	pipe := baseline.NewPipelineNIC(baseline.PipelineConfig{
		FreqHz: freq, LineRateGbps: 100,
		Stages: []baseline.PipeStageSpec{
			{Eng: engine.NewIPSecEngine(ipsecCfg()), Needs: baseline.NeedIPSec},
		},
	}, sources(1))
	pipe.Run(cycles)

	// Fig 2a with bypass wires.
	pipeBypass := baseline.NewPipelineNIC(baseline.PipelineConfig{
		FreqHz: freq, LineRateGbps: 100,
		Stages: []baseline.PipeStageSpec{
			{Eng: engine.NewIPSecEngine(ipsecCfg()), Needs: baseline.NeedIPSec},
		},
		Bypass: true,
	}, sources(1))
	pipeBypass.Run(cycles)

	// PANIC: the RMT program chains only WAN packets through IPSec.
	cfg := core.DefaultConfig()
	cfg.IPSec = ipsecCfg()
	nic := core.NewNIC(cfg, []engine.Source{sources(1)})
	nic.Run(cycles)

	fmt.Println("Dynamic chaining vs a fixed pipeline (Fig 2a)")
	fmt.Println("2 Gbps plain tenant + 8 Gbps encrypted tenant; IPSec engine runs at")
	fmt.Println("16 Gbps. Host-delivery latency of the PLAIN tenant (never needs crypto):")
	fmt.Println()
	us := func(c float64) string { return fmt.Sprintf("%.2f", c/freq*1e6) }
	t := stats.NewTable("architecture", "plain p50 (us)", "plain p99 (us)")
	t.AddRow("pipeline (Fig 2a)", us(pipe.HostLat.Tenant(1).P50()), us(pipe.HostLat.Tenant(1).P99()))
	t.AddRow("pipeline + bypass wires", us(pipeBypass.HostLat.Tenant(1).P50()), us(pipeBypass.HostLat.Tenant(1).P99()))
	t.AddRow("PANIC (dynamic chains)", us(nic.HostLat.Tenant(1).P50()), us(nic.HostLat.Tenant(1).P99()))
	fmt.Print(t.String())

	fmt.Println()
	fmt.Println("In the fixed pipeline, plain packets queue behind encrypted ones at the")
	fmt.Println("IPSec stage (head-of-line blocking). Bypass wires fix that specific")
	fmt.Println("stage, but every stage needs its own wires and the topology stays")
	fmt.Println("static. PANIC's RMT program simply never includes the IPSec engine in")
	fmt.Println("the plain tenant's chain (§3).")
}
