// Isolation: the §3.1.3 experiment — a latency-sensitive tenant shares the
// NIC (and its DMA engine) with a bulk-throughput tenant. With FIFO queues
// the bulk tenant's large transfers head-of-line block the small requests;
// with PANIC's slack-based scheduler the latency tenant's tail collapses
// while bulk throughput is essentially unchanged.
//
// Run with:
//
//	go run ./examples/isolation
package main

import (
	"fmt"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/stats"
	"github.com/panic-nic/panic/internal/workload"
)

const cycles = 2_000_000

func run(rank sched.RankFunc, slackBulk uint32) (latP50, latP99 float64, bulkGbps float64, cfg core.Config) {
	cfg = core.DefaultConfig()
	cfg.Rank = rank
	if slackBulk > 0 {
		cfg.Program.SlackBulk = slackBulk
	}
	// An oversubscribed host link makes the DMA engine the shared
	// bottleneck, as in the paper's example ("the DMA engine has variable
	// performance and may become a bottleneck", §3.2): the bulk tenant
	// alone offers more than the link carries, so a standing queue forms.
	cfg.PCIeGbps = 16
	cfg.DMAJitter = 100
	cfg.QueueCap = 128

	mix := workload.NewIsolationMix(cfg.FreqHz, 1 /*Gbps latency*/, 20 /*Gbps bulk*/, 1500, 42)
	nic := core.NewNIC(cfg, []engine.Source{mix})
	nic.Run(cycles)

	lat := nic.HostLat.Tenant(1)
	bulk := nic.HostLat.Tenant(2)
	seconds := float64(cycles) / cfg.FreqHz
	bulkBytes := 0.0
	for i := 0; i < bulk.Count(); i++ {
		// Throughput from message count x frame size (all bulk frames
		// are 1500B).
		bulkBytes += 1500
	}
	return lat.P50(), lat.P99(), bulkBytes * 8 / seconds / 1e9, cfg
}

func main() {
	fifoP50, fifoP99, fifoBulk, cfg := run(sched.RankFIFO, 0)
	lstfP50, lstfP99, lstfBulk, _ := run(nil /* default LSTF */, 0)
	// LSTF with a very large bulk slack degenerates to strict priority:
	// bulk never ages into urgency within the run.
	strictP50, strictP99, strictBulk, _ := run(nil, 50_000_000)

	us := func(c float64) string { return fmt.Sprintf("%.2f", c/cfg.FreqHz*1e6) }
	fmt.Println("Performance isolation on a shared DMA engine (§3.1.3)")
	fmt.Println("1 Gbps latency-sensitive KVS tenant vs 20 Gbps bulk tenant, with the")
	fmt.Println("bulk tenant alone oversubscribing a 16 Gbps host link. Host-delivery")
	fmt.Println("latency of the latency-sensitive tenant:")
	fmt.Println()
	t := stats.NewTable("scheduler", "p50 (us)", "p99 (us)", "bulk goodput (Gbps)")
	t.AddRow("FIFO queues", us(fifoP50), us(fifoP99), fmt.Sprintf("%.1f", fifoBulk))
	t.AddRow("slack (LSTF, bulk slack 40us)", us(lstfP50), us(lstfP99), fmt.Sprintf("%.1f", lstfBulk))
	t.AddRow("slack (bulk slack 100ms)", us(strictP50), us(strictP99), fmt.Sprintf("%.1f", strictBulk))
	fmt.Print(t.String())
	fmt.Println()
	fmt.Printf("FIFO makes the latency tenant wait behind the full standing queue of\n")
	fmt.Printf("bulk transfers (%.0fx worse p99 than strict-priority slack). Moderate\n", fifoP99/strictP99)
	fmt.Println("bulk slack (40us) still lets long-waiting bulk age into urgency — the")
	fmt.Println("slack value is the policy knob the paper leaves to the RMT program")
	fmt.Println("(\"how slack values should be computed ... is ongoing work\", §3.1.3).")
}
