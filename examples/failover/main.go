// Failover: the robustness story. At cycle 200k a fault plan wedges the
// IPSec engine mid-stream. Three NICs face the same workload and fault:
//
//   - no-heal:  no replicas, no health monitor — encrypted tenants die with
//     the engine (and under lossless backpressure the outage would spread).
//   - punt:     health monitor, no replica — encrypted traffic is punted to
//     host software (the paper's Fig 2c degraded mode): alive but slow, and
//     wire responses stop because re-encryption needs the dead engine.
//   - replica:  health monitor + hot standby — steering is rewritten to the
//     replica within ~2k cycles and encrypted service barely blips.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/stats"
	"github.com/panic-nic/panic/internal/workload"
)

const (
	cycles  = 1_000_000
	wedgeAt = 200_000
)

type result struct {
	encServed  uint64 // encrypted-tenant wire responses
	encP99     float64
	plainServe uint64
	softDec    uint64
	mttr       uint64
	mttrOK     bool
	events     int
}

func run(replicas int, health bool) result {
	cfg := core.DefaultConfig()
	cfg.IPSecReplicas = replicas
	if health {
		cfg.Health = core.DefaultHealthConfig()
	}
	cfg.FaultPlan = (&fault.Plan{}).Add(fault.Event{At: wedgeAt, Kind: fault.Wedge, Engine: core.AddrIPSec})

	plain := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 6, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 1024, GetRatio: 1.0, ValueBytes: 256, Seed: 7,
	})
	encrypted := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassLatency,
		RateGbps: 6, FreqHz: cfg.FreqHz, Poisson: true,
		Keys: 1024, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 256, Seed: 8,
	})
	nic := core.NewNIC(cfg, []engine.Source{workload.NewMerge(plain, encrypted)})
	nic.Run(cycles)

	mttr, ok := nic.Events.MTTR(core.AddrIPSec)
	return result{
		encServed:  uint64(nic.WireLat.Tenant(2).Count()),
		encP99:     nic.WireLat.Tenant(2).P99(),
		plainServe: uint64(nic.WireLat.Tenant(1).Count()),
		softDec:    nic.Host.SoftDecrypts(),
		mttr:       mttr,
		mttrOK:     ok,
		events:     len(nic.Events.Events()),
	}
}

func main() {
	fmt.Printf("IPSec engine wedged at cycle %d of %d; 6 Gbps plain + 6 Gbps encrypted KVS GETs\n\n", wedgeAt, cycles)
	noHeal := run(0, false)
	punt := run(0, true)
	replica := run(2, true)

	t := stats.NewTable("scenario", "enc wire resp", "enc p99 (cyc)", "plain wire resp", "host soft-dec", "MTTR (cyc)")
	row := func(name string, r result) {
		mttr := "-"
		if r.mttrOK {
			mttr = fmt.Sprintf("%d", r.mttr)
		}
		t.AddRow(name, r.encServed, fmt.Sprintf("%.0f", r.encP99), r.plainServe, r.softDec, mttr)
	}
	row("wedge, no healing", noHeal)
	row("wedge, punt-to-host", punt)
	row("wedge, hot replica", replica)
	fmt.Print(t.String())

	fmt.Println()
	fmt.Println("no healing:   encrypted service stops at the wedge; the backlog is shed at the dead tile.")
	fmt.Println("punt-to-host: requests keep being SERVED (host decrypts in software) but responses can't")
	fmt.Println("              be re-encrypted, so wire responses stop — availability without performance.")
	fmt.Println("replica:      steering rewritten to the standby ~2k cycles after the wedge; encrypted")
	fmt.Println("              wire service continues (the p99 tail spans the ~2k-cycle outage window).")
}
