// Quickstart: build a PANIC NIC, push a handful of key-value requests
// through it, and print what happened to each one — which engines it
// visited, in what order, and how long the round trip took.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

func main() {
	// A PANIC NIC at the paper's operating point: two 100 Gbps ports,
	// 500 MHz clock, two RMT pipelines on a 6x6 mesh of 128-bit channels.
	cfg := core.DefaultConfig()
	cfg.Trace = true // record every engine visit on every message

	// One tenant sends eight GETs; 40% arrive encrypted over the WAN.
	src := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 2, FreqHz: cfg.FreqHz,
		Keys: 16, GetRatio: 1.0, WANShare: 0.4,
		ValueBytes: 256, Count: 8, Seed: 7,
	})

	nic := core.NewNIC(cfg, []engine.Source{src})

	// Pre-warm half the key space so some GETs are served entirely on
	// the NIC (cache -> RDMA -> DMA read -> response) without the host.
	for k := uint64(0); k < 8; k++ {
		nic.Cache.Warm(k, 256)
	}

	// Capture every response as it leaves on the wire.
	var responses []*packet.Message
	nic.WireLat.OnDeliver = func(m *packet.Message, _ uint64) {
		responses = append(responses, m)
	}

	nic.Run(100_000)

	hits, misses, _ := nic.Cache.Counts()
	dec, enc := nic.IPSec.Counts()
	fmt.Println("PANIC quickstart: 8 GET requests through a 2x100G NIC")
	fmt.Printf("  cache: %d hits, %d misses (hits bypass the host CPU entirely)\n", hits, misses)
	fmt.Printf("  ipsec: %d decrypted, %d responses re-encrypted\n\n", dec, enc)

	names := map[packet.Addr]string{
		core.AddrRMTBase: "rmt0", core.AddrRMTBase + 1: "rmt1",
		core.AddrEthBase: "eth0", core.AddrEthBase + 1: "eth1",
		core.AddrDMA: "dma", core.AddrPCIe: "pcie", core.AddrIPSec: "ipsec",
		core.AddrKVSCache: "cache", core.AddrRDMA: "rdma",
	}
	name := func(a packet.Addr) string {
		if n, ok := names[a]; ok {
			return n
		}
		return fmt.Sprintf("addr%d", a)
	}

	sort.Slice(responses, func(i, j int) bool { return responses[i].ID < responses[j].ID })
	fmt.Println("response paths (engine@enqueue-cycle, from message traces):")
	for _, m := range responses {
		fmt.Printf("  req#%-2d %-32s ", m.ID, m.Pkt.String())
		for i, v := range m.Trace {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Printf("%s@%d", name(v.Engine), v.Enqueued)
		}
		us := float64(m.Done-m.Inject) / cfg.FreqHz * 1e6
		fmt.Printf("   rtt=%.2fus\n", us)
	}

	fmt.Println("\nNote: a response message's trace begins where the response was")
	fmt.Println("created (RDMA engine for cache hits, DMA/host for misses); the")
	fmt.Println("request's inbound hops (eth -> rmt -> cache...) are on the request")
	fmt.Println("message, which the NIC consumed on delivery to the host.")
}
