package bench

import (
	"strconv"
	"testing"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/workload"
)

// BenchmarkSchedulerIsolation — §3.1.3: a latency-sensitive tenant shares
// an oversubscribed DMA engine with a bulk tenant. Reports the latency
// tenant's p99 (µs) under FIFO, LSTF with moderate bulk slack, and
// effectively-strict-priority slack.
func BenchmarkSchedulerIsolation(b *testing.B) {
	run := func(rank sched.RankFunc, slackBulk uint32) float64 {
		cfg := core.DefaultConfig()
		cfg.Rank = rank
		cfg.PCIeGbps = 16
		cfg.DMAJitter = 100
		cfg.QueueCap = 128
		if slackBulk > 0 {
			cfg.Program.SlackBulk = slackBulk
		}
		mix := workload.NewIsolationMix(cfg.FreqHz, 1, 20, 1500, 42)
		nic := core.NewNIC(cfg, []engine.Source{mix})
		nic.Run(1_000_000)
		return nic.HostLat.Tenant(1).P99() / freq * 1e6
	}
	b.Run("fifo", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			p99 = run(sched.RankFIFO, 0)
		}
		b.ReportMetric(p99, "latency_p99_us")
	})
	b.Run("lstf-40us-bulk-slack", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			p99 = run(nil, 0)
		}
		b.ReportMetric(p99, "latency_p99_us")
	})
	b.Run("lstf-strict", func(b *testing.B) {
		var p99 float64
		for i := 0; i < b.N; i++ {
			p99 = run(nil, 50_000_000)
		}
		b.ReportMetric(p99, "latency_p99_us")
	})
}

// BenchmarkTenantIsolation — the multi-tenant acceptance experiment: a
// 1 Gbps latency-sensitive victim shares a 16 Gbps host link with a
// 24 Gbps bulk aggressor, so a standing queue forms at the DMA tile.
// Reports the victim's p99 host-delivery latency inflation (contended /
// solo baseline) under FIFO admission, plain LSTF, and weighted LSTF at
// equal weights with per-tenant deficit credits. The matching correctness
// bound (weighted LSTF <= 2x) is TestTenantIsolationVictimP99Bounded in
// internal/core.
func BenchmarkTenantIsolation(b *testing.B) {
	type variant struct {
		name     string
		rank     sched.RankFunc
		weights  map[uint16]uint64
		aggClass packet.Class
	}
	equal := map[uint16]uint64{1: 1, 2: 1}
	variants := []variant{
		{"fifo", sched.RankFIFO, nil, packet.ClassBulk},
		{"lstf", nil, nil, packet.ClassBulk},
		// A slack-gaming aggressor declares itself latency class, so plain
		// LSTF ranks it level with the victim; only the per-tenant rate
		// credits can tell them apart.
		{"lstf-gamed-slack", nil, nil, packet.ClassLatency},
		{"wlstf-1to1", nil, equal, packet.ClassBulk},
		{"wlstf-1to1-gamed-slack", nil, equal, packet.ClassLatency},
	}
	run := func(v variant, aggressor bool) float64 {
		cfg := core.DefaultConfig()
		cfg.Rank = v.rank
		cfg.PCIeGbps = 16
		cfg.QueueCap = 128
		cfg.DMAJitter = 100
		cfg.Tenants = []uint16{1, 2}
		cfg.TenantWeights = v.weights
		cfg.TenantQuantumBytes = 128
		var src engine.Source
		if aggressor {
			src = workload.NewTenantMix(cfg.FreqHz, []workload.TenantSpec{
				workload.VictimSpec(1),
				{Tenant: 2, Class: v.aggClass, RateGbps: 24, Bulk: true, FrameBytes: 512},
			}, 21)
		} else {
			src = workload.NewTenantMix(cfg.FreqHz, []workload.TenantSpec{workload.VictimSpec(1)}, 21)
		}
		nic := core.NewNIC(cfg, []engine.Source{src})
		defer nic.Close()
		nic.Run(300_000)
		return nic.HostLat.Tenant(1).P99()
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var solo, cont float64
			for i := 0; i < b.N; i++ {
				solo = run(v, false)
				cont = run(v, true)
			}
			b.ReportMetric(solo/freq*1e6, "solo_p99_us")
			b.ReportMetric(cont/freq*1e6, "contended_p99_us")
			b.ReportMetric(cont/solo, "p99_inflation_x")
		})
	}
}

// BenchmarkRMTPerHopVsLightweight — §4.2/§3.1.2: if the heavyweight RMT
// pipeline had to switch the packet between every pair of offloads
// (instead of the lightweight per-engine tables following the chain
// header), each packet would consume chainlen+1 RMT passes, exhausting
// the pipeline's pass budget. Reports RMT passes per packet and the
// packet rate the pipelines could sustain at that pass count.
func BenchmarkRMTPerHopVsLightweight(b *testing.B) {
	for _, mode := range []string{"lightweight-tables", "rmt-every-hop"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var passesPerPkt, sustainableMpps float64
			for i := 0; i < b.N; i++ {
				passesPerPkt = measurePassesPerPacket(mode == "rmt-every-hop")
				// Two 500 MHz pipelines deliver 1000 Mpps of passes.
				sustainableMpps = 1000 / passesPerPkt
			}
			b.ReportMetric(passesPerPkt, "rmt_passes_per_pkt")
			b.ReportMetric(sustainableMpps, "sustainable_Mpps")
		})
	}
}

// measurePassesPerPacket runs a 3-offload chain through a small PANIC rig,
// either following the chain via lightweight tables or bouncing through
// the RMT pipeline between every hop.
func measurePassesPerPacket(rmtEveryHop bool) float64 {
	const (
		addrRMT  packet.Addr = 1
		offBase  packet.Addr = 10
		addrSink packet.Addr = 20
	)
	chainFor := func() []rmt.Op {
		var ops []rmt.Op
		for i := 0; i < 3; i++ {
			if rmtEveryHop && i > 0 {
				ops = append(ops, rmt.OpPushHop{Engine: addrRMT})
			}
			ops = append(ops, rmt.OpPushHop{Engine: offBase + packet.Addr(i)})
		}
		if rmtEveryHop {
			ops = append(ops, rmt.OpPushHop{Engine: addrRMT})
		}
		ops = append(ops, rmt.OpPushHop{Engine: addrSink})
		return ops
	}
	// Build a chain only for messages that do not already carry one:
	// re-entering packets (the rmt-every-hop mode) keep their chain and
	// are simply forwarded to the next hop, which is exactly the
	// "pipeline includes itself as a nexthop" pattern of §3.1.2.
	tbl := rmt.NewTable("steer", rmt.MatchExact, []rmt.FieldID{rmt.FieldChainRemaining}, 0,
		rmt.Action{Name: "pass"})
	tbl.Add(rmt.Entry{Values: []uint64{0}, Action: rmt.Action{Name: "chain", Ops: chainFor()}})
	prog := rmt.NewProgram(rmt.StandardParser(), []*rmt.Table{tbl})

	meshCfg := noc.DefaultMeshConfig()
	b := core.NewBuilder(freq, meshCfg, 1)
	rmtTile := b.PlaceRMT(addrRMT, 2, 2, rmt.NewPipeline(prog, 1, 1))
	for i := 0; i < 3; i++ {
		b.PlaceTile(offBase+packet.Addr(i), 1+i, 3, &forwardEngine{})
	}
	sink := engine.NewCollectorEngine("sink", 1, nil)
	b.PlaceTile(addrSink, 4, 1, sink)
	b.Routes.SetDefault(addrRMT)

	const n = 200
	injected := 0
	src := b.Mesh.NodeAt(0, 0)
	b.Kernel.Register(sim.TickFunc(func(uint64) {
		if injected < n && b.Mesh.CanInject(src, rmtTile.Node()) {
			b.Mesh.Inject(src, rmtTile.Node(), kvsMsg(1))
			injected++
		}
	}))
	b.Kernel.RunUntil(func() bool { return sink.Count() == n }, 2_000_000)
	return float64(rmtTile.Stats().Accepted) / float64(n)
}

// forwardEngine forwards along the chain after one cycle.
type forwardEngine struct{}

func (*forwardEngine) Name() string                         { return "fwd" }
func (*forwardEngine) ServiceCycles(*packet.Message) uint64 { return 1 }
func (*forwardEngine) Process(_ *engine.Ctx, m *packet.Message) []engine.Out {
	return []engine.Out{{Msg: m}}
}

// BenchmarkUnifiedVsSplitNetwork — §3.1 footnote 1: for the same aggregate
// bit width, one unified network beats two dedicated half-width networks
// because idle wires on one network cannot help the other. Traffic is
// 75/25 asymmetric (packet data vs control messages). Reports aggregate
// delivered Gbps.
func BenchmarkUnifiedVsSplitNetwork(b *testing.B) {
	const totalWidth = 128
	b.Run("unified-128bit", func(b *testing.B) {
		var gbps float64
		for i := 0; i < b.N; i++ {
			cfg := noc.DefaultMeshConfig()
			cfg.FlitWidthBits = totalWidth
			gbps = noc.MeasureSaturation(noc.NewMesh(cfg), freq, 64, 2000, 10_000, 3).DeliveredGbps
		}
		b.ReportMetric(gbps, "delivered_Gbps")
	})
	b.Run("split-2x64bit-75-25", func(b *testing.B) {
		var gbps float64
		for i := 0; i < b.N; i++ {
			mk := func() noc.MeshConfig {
				cfg := noc.DefaultMeshConfig()
				cfg.FlitWidthBits = totalWidth / 2
				return cfg
			}
			// Data network saturates at full offered load; the control
			// network runs at 1/3 the data load (25% of traffic), wasting
			// its idle capacity.
			data := noc.MeasureSaturation(noc.NewMesh(mk()), freq, 64, 2000, 10_000, 3)
			control := noc.MeasureLoad(noc.NewMesh(mk()), freq, 64, saturationLoadFraction/3, 2000, 10_000, 4)
			gbps = data.DeliveredGbps + control.DeliveredGbps
		}
		b.ReportMetric(gbps, "delivered_Gbps")
	})
}

// saturationLoadFraction approximates the per-node injection probability
// at which a 6x6/64-bit mesh saturates with 64-byte messages (measured in
// internal/noc tests: ~460 Gbps of ~9.2 Tbps offered).
const saturationLoadFraction = 0.05

// BenchmarkLossyVsLossless — §4.3/§6: overload one engine and compare the
// two admission policies. Lossless backpressure spreads the stall into the
// network (hurting an innocent bystander flow); lossy drop sheds the
// overload locally and never drops lossless control messages.
func BenchmarkLossyVsLossless(b *testing.B) {
	for _, policy := range []sched.Policy{sched.Backpressure, sched.DropLowestPriority} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			var victimP99us, drops float64
			for i := 0; i < b.N; i++ {
				victimP99us, drops = measureOverloadSpill(policy)
			}
			b.ReportMetric(victimP99us, "bystander_p99_us")
			b.ReportMetric(drops, "drops")
		})
	}
}

// measureOverloadSpill overloads the IPSec engine with encrypted traffic
// while a plain bystander tenant shares only the network path, and
// returns the bystander's p99 (µs) and total drops.
func measureOverloadSpill(policy sched.Policy) (float64, float64) {
	cfg := core.DefaultConfig()
	cfg.Policy = policy
	cfg.IPSec = engine.IPSecConfig{BytesPerCycle: 1, SetupCycles: 100} // 4 Gbps crypto
	cfg.QueueCap = 32
	overload := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 2, Class: packet.ClassBulk,
		RateGbps: 10, FreqHz: freq, Poisson: true,
		Keys: 64, GetRatio: 1.0, WANShare: 1.0, ValueBytes: 128, Seed: 9,
	})
	bystander := workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 2, FreqHz: freq, Poisson: true,
		Keys: 64, GetRatio: 1.0, ValueBytes: 128, Seed: 10,
	})
	nic := core.NewNIC(cfg, []engine.Source{workload.NewMerge(bystander, overload)})
	nic.Run(1_000_000)
	return nic.HostLat.Tenant(1).P99() / freq * 1e6, float64(nic.Drops.Value())
}

// BenchmarkChainedVsParallelRMT — §3.1.2: "flexible trade-offs between
// pipeline depth and parallelism, with more pipelines leading to more
// throughput." Chained engines form one deep pipeline (1 packet/cycle,
// higher latency); parallel engines double throughput at base latency.
func BenchmarkChainedVsParallelRMT(b *testing.B) {
	prog := core.BuildProgram(core.DefaultProgramConfig(2))
	msg := kvsMsg(1)
	measure := func(pipes []*rmt.Pipeline, cycles uint64) (mpps float64, latency float64) {
		done := uint64(0)
		latSum := uint64(0)
		type entry struct{ in uint64 }
		inflight := make(map[*rmt.Pipeline][]entry)
		for c := uint64(0); c < cycles; c++ {
			for _, p := range pipes {
				if _, ok := p.Tick(); ok {
					done++
					q := inflight[p]
					latSum += c - q[0].in
					inflight[p] = q[1:]
				}
				if p.CanAccept() {
					p.Accept(msg, c)
					inflight[p] = append(inflight[p], entry{in: c})
				}
			}
		}
		if done == 0 {
			return 0, 0
		}
		return float64(done) / (float64(cycles) / freq) / 1e6, float64(latSum) / float64(done)
	}
	b.Run("chained-2-engines", func(b *testing.B) {
		var mpps, lat float64
		for i := 0; i < b.N; i++ {
			// One pipeline spanning all stages plus an extra transfer
			// cycle per engine boundary (modeled by deparser+parser of
			// the second engine: +2 cycles).
			deep := rmt.NewPipeline(prog, 2, 2)
			mpps, lat = measure([]*rmt.Pipeline{deep}, 50_000)
		}
		b.ReportMetric(mpps, "Mpps")
		b.ReportMetric(lat, "latency_cycles")
	})
	b.Run("parallel-2-engines", func(b *testing.B) {
		var mpps, lat float64
		for i := 0; i < b.N; i++ {
			p1 := rmt.NewPipeline(prog, 1, 1)
			p2 := rmt.NewPipeline(prog, 1, 1)
			mpps, lat = measure([]*rmt.Pipeline{p1, p2}, 50_000)
		}
		b.ReportMetric(mpps, "Mpps")
		b.ReportMetric(lat, "latency_cycles")
	})
}

// BenchmarkCrossbarVsMesh — §3.1.2's wire-length argument: an idealized
// single crossbar has lower latency, but a physically realistic large
// crossbar pays long-wire latency that grows with port count, while the
// mesh's per-hop cost stays constant. Reports mean low-load latency.
func BenchmarkCrossbarVsMesh(b *testing.B) {
	const nodes = 36
	lowLoad := 0.02
	b.Run("mesh-6x6", func(b *testing.B) {
		var lat float64
		for i := 0; i < b.N; i++ {
			cfg := noc.DefaultMeshConfig()
			lat = noc.MeasureLoad(noc.NewMesh(cfg), freq, 64, lowLoad, 1000, 5000, 3).MeanLatencyCycles
		}
		b.ReportMetric(lat, "mean_latency_cycles")
	})
	for _, wire := range []int{0, 10, 30} {
		wire := wire
		b.Run("crossbar-wire"+strconv.Itoa(wire), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				x := noc.NewCrossbar(noc.CrossbarConfig{
					Nodes: nodes, FlitWidthBits: 64,
					TraversalLatency: wire, InjectDepth: 8, EjectDepth: 8,
				})
				lat = noc.MeasureLoad(x, freq, 64, lowLoad, 1000, 5000, 3).MeanLatencyCycles
			}
			b.ReportMetric(lat, "mean_latency_cycles")
		})
	}
}
