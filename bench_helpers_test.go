package bench

import "testing"

// The benchmark harness helpers are exercised here with small inputs so
// `go test .` validates them without running the full benchmark suite.

func TestMeasureRMTServiceRateMatchesModel(t *testing.T) {
	// One pipeline at 500 MHz serves one packet per cycle: 500 Mpps.
	got := measureRMTServiceRate(1, 20_000)
	if got < 490e6 || got > 500e6 {
		t.Errorf("1 pipeline = %.0f pps, want ~500e6", got)
	}
	if got2 := measureRMTServiceRate(2, 20_000); got2 < 1.9*got {
		t.Errorf("2 pipelines = %.0f pps, want ~2x one pipeline", got2)
	}
}

func TestMeasureHopLatencyIsOneCycle(t *testing.T) {
	for _, hops := range []int{1, 3} {
		if got := measureHopLatency(hops); got != 1 {
			t.Errorf("%d hops: %v cycles/hop, want 1", hops, got)
		}
	}
}

func TestMeasurePassesPerPacket(t *testing.T) {
	if got := measurePassesPerPacket(false); got != 1 {
		t.Errorf("lightweight tables: %v passes/pkt, want 1", got)
	}
	if got := measurePassesPerPacket(true); got != 4 {
		t.Errorf("rmt-every-hop: %v passes/pkt, want 4", got)
	}
}

func TestMeasureChainThroughputOrdering(t *testing.T) {
	full := measureChainThroughput(1024, 0, false)
	desc := measureChainThroughput(32, 0, true)
	touched := measureChainThroughput(32, 2, true)
	if desc <= full {
		t.Errorf("descriptors (%v) not above full packets (%v)", desc, full)
	}
	if touched >= desc {
		t.Errorf("payload-touching (%v) not below pure descriptors (%v)", touched, desc)
	}
}
