module github.com/panic-nic/panic

go 1.22
