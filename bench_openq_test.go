package bench

// Benchmarks for the open questions of the paper's §6: flow control
// (virtual channels), engine placement, and descriptor-vs-full-packet
// switching.

import (
	"strconv"
	"testing"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/workload"
)

// BenchmarkVirtualChannels — §6: "What is the best way to provide flow
// control for lossless forwarding so that neither the heavyweight RMT
// pipeline nor the on-chip network are ever stalled by a slow or
// overloaded engine?" Virtual channels let packets interleave past a
// blocked wormhole: saturation throughput rises with VC count.
func BenchmarkVirtualChannels(b *testing.B) {
	for _, vcs := range []int{1, 2, 4, 8} {
		vcs := vcs
		b.Run(strconv.Itoa(vcs)+"vc", func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				cfg := noc.DefaultMeshConfig()
				cfg.VirtualChannels = vcs
				gbps = noc.MeasureSaturation(noc.NewMesh(cfg), freq, 64, 2000, 10_000, 1).DeliveredGbps
			}
			b.ReportMetric(gbps, "saturation_Gbps")
		})
	}
}

// BenchmarkEnginePlacement — §6: "How should different engines be placed
// in this topology?" Spread placement distributes flows over the mesh;
// compact placement clusters every engine into one corner, concentrating
// all traffic on a few links.
func BenchmarkEnginePlacement(b *testing.B) {
	run := func(compact bool) (p99us float64, drops uint64) {
		cfg := core.DefaultConfig()
		cfg.CompactPlacement = compact
		src := workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 16, FreqHz: freq, Poisson: true,
			Keys: 4096, GetRatio: 0.9, WANShare: 0.3, ValueBytes: 512, Seed: 21,
		})
		nic := core.NewNIC(cfg, []engine.Source{src})
		for k := uint64(0); k < 1024; k++ {
			nic.Cache.Warm(k, 512)
		}
		nic.Run(500_000)
		return nic.WireLat.All.P99() / freq * 1e6, nic.Drops.Value()
	}
	b.Run("spread", func(b *testing.B) {
		var p99 float64
		var drops uint64
		for i := 0; i < b.N; i++ {
			p99, drops = run(false)
		}
		b.ReportMetric(p99, "rtt_p99_us")
		b.ReportMetric(float64(drops), "drops")
	})
	b.Run("compact-corner", func(b *testing.B) {
		var p99 float64
		var drops uint64
		for i := 0; i < b.N; i++ {
			p99, drops = run(true)
		}
		b.ReportMetric(p99, "rtt_p99_us")
		b.ReportMetric(float64(drops), "drops")
	})
}

// BenchmarkDescriptorVsFullPacket — §6: "Should entire packets always be
// passed from engines, or are there times when it is better to instead
// pass pointers to packet data located in a common packet buffer?"
//
// Full-packet mode moves 1 KB messages between engines. Descriptor mode
// moves 32 B descriptors and keeps payloads in a central buffer tile; an
// engine that needs the payload performs a read round trip to the buffer.
// Descriptors win when few hops touch payload; the central buffer becomes
// a serialization hotspot when every hop does.
func BenchmarkDescriptorVsFullPacket(b *testing.B) {
	const payload = 1024
	for _, mode := range []string{"full-packet", "descriptors-0-touch", "descriptors-2-touch"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var kmsgs float64
			for i := 0; i < b.N; i++ {
				switch mode {
				case "full-packet":
					kmsgs = measureChainThroughput(payload, 0, false)
				case "descriptors-0-touch":
					kmsgs = measureChainThroughput(32, 0, true)
				case "descriptors-2-touch":
					kmsgs = measureChainThroughput(32, 2, true)
				}
			}
			b.ReportMetric(kmsgs, "kmsg_per_ms")
		})
	}
}

// bufferReadEngine models the central packet buffer: payload reads occupy
// it for the transfer time and return the payload to the requester.
type bufferReadEngine struct {
	payloadBytes int
}

func (e *bufferReadEngine) Name() string { return "pktbuf" }
func (e *bufferReadEngine) ServiceCycles(msg *packet.Message) uint64 {
	// Serving a read occupies the buffer port for the payload transfer.
	return uint64(e.payloadBytes*8) / 128
}
func (e *bufferReadEngine) Process(ctx *engine.Ctx, msg *packet.Message) []engine.Out {
	if l := msg.Pkt.Layer(packet.LayerTypeDMA); l != nil {
		d := l.(*packet.DMA)
		resp := &packet.Message{
			ID: msg.ID, Class: packet.ClassControl, Port: -1, Inject: ctx.Now,
			Pkt: packet.NewPacket(e.payloadBytes,
				&packet.Ethernet{EtherType: packet.EtherTypeDMA},
				&packet.DMA{Op: packet.DMAReadCompl, Requester: d.Requester, Len: uint32(e.payloadBytes)},
			),
		}
		return []engine.Out{{Msg: resp, To: d.Requester}}
	}
	return nil
}

// touchEngine forwards along the chain; in descriptor mode with payload
// touches it first reads the payload from the buffer tile.
type touchEngine struct {
	addr      packet.Addr
	buf       packet.Addr
	needsRead bool
	waiting   map[uint64]*packet.Message
}

func (e *touchEngine) Name() string                         { return "touch" }
func (e *touchEngine) ServiceCycles(*packet.Message) uint64 { return 1 }
func (e *touchEngine) Process(ctx *engine.Ctx, msg *packet.Message) []engine.Out {
	if l := msg.Pkt.Layer(packet.LayerTypeDMA); l != nil {
		d := l.(*packet.DMA)
		if d.Op == packet.DMAReadCompl {
			orig := e.waiting[msg.ID]
			delete(e.waiting, msg.ID)
			if orig == nil {
				return nil
			}
			return []engine.Out{{Msg: orig}}
		}
		return nil
	}
	if e.needsRead {
		e.waiting[msg.ID] = msg
		read := &packet.Message{
			ID: msg.ID, Class: packet.ClassControl, Port: -1, Inject: ctx.Now,
			Pkt: packet.NewPacket(0,
				&packet.Ethernet{EtherType: packet.EtherTypeDMA},
				&packet.DMA{Op: packet.DMARead, Requester: e.addr, Len: 1024},
			),
		}
		return []engine.Out{{Msg: read, To: e.buf}}
	}
	return []engine.Out{{Msg: msg}}
}

// measureChainThroughput drives a 3-engine chain at saturation for a fixed
// window and returns delivered messages per simulated millisecond.
// msgBytes is the inter-engine message size; touches is how many of the
// chain's engines fetch the payload from the central buffer tile.
func measureChainThroughput(msgBytes, touches int, descriptors bool) float64 {
	const (
		addrBuf  packet.Addr = 30
		offBase  packet.Addr = 10
		addrSink packet.Addr = 20
	)
	meshCfg := noc.DefaultMeshConfig()
	meshCfg.FlitWidthBits = 128
	bld := core.NewBuilder(freq, meshCfg, 1)
	for i := 0; i < 3; i++ {
		eng := &touchEngine{
			addr: offBase + packet.Addr(i), buf: addrBuf,
			needsRead: descriptors && i < touches,
			waiting:   map[uint64]*packet.Message{},
		}
		bld.PlaceTile(offBase+packet.Addr(i), 1+i, 1+i, eng)
	}
	sink := engine.NewCollectorEngine("sink", 1, nil)
	bld.PlaceTile(addrSink, 4, 4, sink)
	if descriptors {
		bld.PlaceTile(addrBuf, 2, 4, &bufferReadEngine{payloadBytes: 1024})
	}
	bld.Routes.SetDefault(addrSink)

	src := bld.Mesh.NodeAt(0, 0)
	firstNode := bld.Routes.Lookup(offBase)
	id := uint64(0)
	bld.Kernel.Register(sim.TickFunc(func(cycle uint64) {
		for bld.Mesh.CanInject(src, firstNode) {
			id++
			m := &packet.Message{
				ID:     id,
				Inject: cycle,
				Pkt:    &packet.Packet{PayloadLen: msgBytes},
			}
			m.Pkt.Layers = []packet.Layer{&packet.Ethernet{EtherType: packet.EtherTypeIPv4}}
			m.Pkt.Serialize()
			m.Pkt.PayloadLen = msgBytes - 14
			m.InsertChain(&packet.Chain{Hops: []packet.Hop{
				{Engine: offBase}, {Engine: offBase + 1}, {Engine: offBase + 2}, {Engine: addrSink},
			}})
			bld.Mesh.Inject(src, firstNode, m)
		}
	}))
	const window = 100_000
	bld.Kernel.Run(window)
	ms := float64(window) / freq * 1e3
	return float64(sink.Count()) / 1e3 / ms
}
