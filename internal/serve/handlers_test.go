package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/trace"
)

// testServer builds a served NIC with the background loop running and
// returns it with its HTTP test frontend. The loop is stopped at cleanup.
func testServer(t *testing.T, withTracer bool) (*Server, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.FastForward = true
	cfg.TenantWeights = map[uint16]uint64{1: 1, 2: 1}
	var tracer *trace.Tracer
	if withTracer {
		tracer = trace.New(trace.Options{FreqHz: cfg.FreqHz, Sample: 1})
		cfg.Tracer = tracer
	}
	ports := NewIngestSources(cfg.Ports)
	nic := core.NewNIC(cfg, AsEngineSources(ports))
	s := New(Config{BarrierCycles: 2048, Spin: true}, nic, tracer, ports)
	ts := httptest.NewServer(s.Handler())
	s.Start()
	t.Cleanup(func() {
		ts.Close()
		s.Stop()
		s.Wait()
		nic.Close()
	})
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func do(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp, m
}

func TestIndexListsEveryRoute(t *testing.T) {
	_, ts := testServer(t, false)
	var idx []struct{ Method, Path, Summary string }
	if code := getJSON(t, ts.URL+"/", &idx); code != http.StatusOK {
		t.Fatalf("GET /: status %d", code)
	}
	if len(idx) != len(RoutePatterns()) {
		t.Fatalf("index has %d rows, route table has %d", len(idx), len(RoutePatterns()))
	}
	for _, row := range idx {
		if row.Method == "" || row.Path == "" || row.Summary == "" {
			t.Errorf("index row incomplete: %+v", row)
		}
	}
	// Unknown paths must not be swallowed by the root route.
	if code := getJSON(t, ts.URL+"/nope", nil); code != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", code)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := testServer(t, false)
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Errorf("readyz: %d", code)
	}
	resp, _ := do(t, "POST", ts.URL+"/drain", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	// Draining: not ready, still (briefly) alive; the idle server goes
	// quiet within a few barriers, after which both report stopped.
	s.Wait()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after stop: %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after stop: %d", code)
	}
	// Mutations after stop: 503.
	resp, _ = do(t, "PUT", ts.URL+"/tenants/1", `{"weight":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("mutation after stop: %d", resp.StatusCode)
	}
}

func TestStatzAdvances(t *testing.T) {
	_, ts := testServer(t, false)
	var a, b struct{ Barrier uint64 }
	getJSON(t, ts.URL+"/statz", &a)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, ts.URL+"/statz", &b)
		if b.Barrier > a.Barrier {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("barrier did not advance past %d", a.Barrier)
}

func TestIngestTraceEndToEnd(t *testing.T) {
	_, ts := testServer(t, false)
	batch := "0 1 1 1 42 0 0 0\n10 1 1 3 43 128 0 0\n20 2 1 1 44 0 1 0\n"
	resp, body := do(t, "POST", ts.URL+"/ingest/trace?port=0", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %d %v", resp.StatusCode, body)
	}
	if body["records"].(float64) != 3 {
		t.Fatalf("ingest reply: %v", body)
	}
	// The replayed requests must show up as deliveries.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var st Statz
		getJSON(t, ts.URL+"/statz", &st)
		if st.RxPackets >= 3 && st.HostDeliveries+st.WireDeliveries >= 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("ingested records never delivered")
}

func TestIngestValidation(t *testing.T) {
	_, ts := testServer(t, false)
	cases := []struct {
		name, method, url, body string
	}{
		{"bad op", "POST", "/ingest/trace?port=0", "0 1 1 9 1 0 0 0\n"},
		{"tenant 0", "POST", "/ingest/trace?port=0", "0 0 1 1 1 0 0 0\n"},
		{"bad port", "POST", "/ingest/trace?port=9", "0 1 1 1 1 0 0 0\n"},
		{"empty batch", "POST", "/ingest/trace?port=0", "# nothing\n"},
		{"non-monotone", "POST", "/ingest/trace?port=0", "10 1 1 1 1 0 0 0\n5 1 1 1 2 0 0 0\n"},
		{"unbounded stream", "POST", "/ingest/stream", `{"port":0,"tenant":1,"rate_gbps":1,"keys":8,"count":0}`},
		{"stream bad port", "POST", "/ingest/stream", `{"port":7,"tenant":1,"rate_gbps":1,"keys":8,"count":10}`},
		{"stream bad ratio", "POST", "/ingest/stream", `{"port":0,"tenant":1,"rate_gbps":1,"keys":8,"get_ratio":1.5,"count":10}`},
		{"stream bad class", "POST", "/ingest/stream", `{"port":0,"tenant":1,"class":"turbo","rate_gbps":1,"keys":8,"count":10}`},
		{"stream no keys", "POST", "/ingest/stream", `{"port":0,"tenant":1,"rate_gbps":1,"count":10}`},
	}
	for _, c := range cases {
		resp, body := do(t, c.method, ts.URL+c.url, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", c.name, resp.StatusCode, body)
		}
	}
}

// waitTenantWeight polls GET /tenants/{id} until the published snapshot
// catches up to a weight mutation — the op reply lands before the
// barrier's publish, so an immediate read may still see the old table.
func waitTenantWeight(t *testing.T, url string, want uint64) {
	t.Helper()
	var got struct {
		Tenant uint16 `json:"tenant"`
		Weight uint64 `json:"weight"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, url, &got); code != http.StatusOK {
			t.Fatalf("GET %s: %d", url, code)
		}
		if got.Weight == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: weight %d never became %d", url, got.Weight, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTenantWeightCRUD(t *testing.T) {
	_, ts := testServer(t, false)
	resp, body := do(t, "PUT", ts.URL+"/tenants/2", `{"weight":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: %d %v", resp.StatusCode, body)
	}
	waitTenantWeight(t, ts.URL+"/tenants/2", 5)
	resp, body = do(t, "DELETE", ts.URL+"/tenants/2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %v", resp.StatusCode, body)
	}
	waitTenantWeight(t, ts.URL+"/tenants/2", 1) // weighted-LSTF default weight
	// Deleting a weight that is not explicit: 400.
	resp, _ = do(t, "DELETE", ts.URL+"/tenants/2", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("double DELETE: %d, want 400", resp.StatusCode)
	}
	// Weight 0 and bad ids are rejected without reaching the barrier.
	resp, _ = do(t, "PUT", ts.URL+"/tenants/2", `{"weight":0}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("weight 0: %d", resp.StatusCode)
	}
	resp, _ = do(t, "PUT", ts.URL+"/tenants/zero", `{"weight":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: %d", resp.StatusCode)
	}
}

func TestReloadWeightsAndProgram(t *testing.T) {
	_, ts := testServer(t, false)
	resp, body := do(t, "POST", ts.URL+"/reload/weights", `{"weights":{"1":4,"2":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("weights: %d %v", resp.StatusCode, body)
	}
	w := body["weights"].(map[string]any)
	if w["1"].(float64) != 4 {
		t.Fatalf("weights reply: %v", body)
	}

	var before Statz
	getJSON(t, ts.URL+"/statz", &before)
	ops := `{"ops":[
		{"op":"acl-drop","src_prefix":"203.0.113.0","prefix_len":24,"priority":100},
		{"op":"steer","from":"ipsec","to":"ipsec"},
		{"op":"acl-clear"}
	]}`
	resp, body = do(t, "POST", ts.URL+"/reload/program", ops)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("program: %d %v", resp.StatusCode, body)
	}
	if n := len(body["applied"].([]any)); n != 3 {
		t.Fatalf("applied %d ops, want 3: %v", n, body)
	}
	// The reply's generation is computed after the edits land, so it must
	// be ahead of any snapshot taken before the POST.
	if gen := body["program_generation"].(float64); uint64(gen) <= before.ProgramGeneration {
		t.Errorf("program generation did not advance: %d -> %v", before.ProgramGeneration, gen)
	}

	// Validation failures never reach the barrier.
	for name, bad := range map[string]string{
		"unknown op":     `{"ops":[{"op":"reboot"}]}`,
		"bad prefix":     `{"ops":[{"op":"acl-drop","src_prefix":"nope","prefix_len":8}]}`,
		"bad prefix len": `{"ops":[{"op":"acl-drop","src_prefix":"10.0.0.0","prefix_len":40}]}`,
		"bad engine":     `{"ops":[{"op":"steer","from":"warp-core","to":"ipsec"}]}`,
		"no ops":         `{"ops":[]}`,
	} {
		resp, _ := do(t, "POST", ts.URL+"/reload/program", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestFaultInjection(t *testing.T) {
	_, ts := testServer(t, false)
	resp, body := do(t, "POST", ts.URL+"/faults", "at 100 slow ipsec x2 for 5000\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faults: %d %v", resp.StatusCode, body)
	}
	if body["events"].(float64) != 1 {
		t.Fatalf("faults reply: %v", body)
	}
	for name, bad := range map[string]string{
		"at 0":           "at 0 wedge ipsec\n",
		"unknown engine": "at 10 wedge flux-capacitor\n",
		"empty":          "# nothing\n",
		"garbage":        "wedge everything now\n",
	} {
		resp, _ := do(t, "POST", ts.URL+"/faults", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestTraceExport(t *testing.T) {
	_, ts := testServer(t, true)
	// Give the tracer something to record, then export.
	do(t, "POST", ts.URL+"/ingest/trace?port=0", "0 1 1 1 7 0 0 0\n")
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Statz
		getJSON(t, ts.URL+"/statz", &st)
		if st.HostDeliveries+st.WireDeliveries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingested record never delivered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("trace is not Chrome JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}

func TestTraceExportWithoutTracer(t *testing.T) {
	_, ts := testServer(t, false)
	if code := getJSON(t, ts.URL+"/trace", nil); code != http.StatusConflict {
		t.Fatalf("trace without tracer: %d, want 409", code)
	}
}

func TestBarrierPinning(t *testing.T) {
	s, ts := testServer(t, false)
	// Wait until some barriers completed, then pin to an old one: 409.
	deadline := time.Now().Add(5 * time.Second)
	for s.Barrier() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("loop is not advancing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body := do(t, "PUT", ts.URL+"/tenants/1?barrier=1", `{"weight":2}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("past barrier: %d %v, want 409", resp.StatusCode, body)
	}
	// A future barrier applies, and never before the pinned barrier. The
	// spinning idle loop can race past a small delta between reading
	// Barrier() and the enqueue, so grow the delta until the pin lands.
	// (Exact placement — barrier k is cycle k*quantum — is pinned by
	// TestBarrierPlacementInvariant, which drives barriers itself.)
	var target uint64
	applied := false
	for delta := uint64(1000); delta <= 1<<26 && !applied; delta *= 8 {
		target = s.Barrier() + delta
		resp, body = do(t, "PUT", fmt.Sprintf("%s/tenants/1?barrier=%d", ts.URL, target), `{"weight":2}`)
		switch resp.StatusCode {
		case http.StatusOK:
			applied = true
		case http.StatusConflict:
			// Loop outran the delta; retry bigger.
		default:
			t.Fatalf("future barrier: %d %v", resp.StatusCode, body)
		}
	}
	if !applied {
		t.Fatal("future-barrier op never applied")
	}
	log := s.Oplog()
	got := log[len(log)-1]
	if got.Barrier < target {
		t.Errorf("op applied at barrier %d, before its pin %d", got.Barrier, target)
	}
	if resp, _ := do(t, "PUT", ts.URL+"/tenants/1?barrier=x", `{"weight":2}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage barrier: %d", resp.StatusCode)
	}
}

func TestOplogRecordsMutations(t *testing.T) {
	s, ts := testServer(t, false)
	do(t, "POST", ts.URL+"/reload/weights", `{"weights":{"1":2}}`)
	var log []OplogEntry
	if code := getJSON(t, ts.URL+"/oplog", &log); code != http.StatusOK {
		t.Fatalf("oplog: %d", code)
	}
	if len(log) != 1 || !strings.HasPrefix(log[0].Name, "reload-weights") {
		t.Fatalf("oplog: %+v", log)
	}
	if log[0].Cycle != log[0].Barrier*2048 {
		t.Errorf("oplog cycle %d is not barrier %d * quantum", log[0].Cycle, log[0].Barrier)
	}
	_ = s
}
