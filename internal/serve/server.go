package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/trace"
)

// Config bounds the server. Zero values take the defaults noted per field.
type Config struct {
	// BarrierCycles is the quantum the loop runs between barriers
	// (default 8192). Every admitted mutation applies at a multiple of
	// this, which is the determinism contract of the whole plane.
	BarrierCycles uint64
	// MaxPendingOps caps the queued-but-unapplied operation backlog
	// (default 1024); beyond it submissions fail with ErrBacklog.
	MaxPendingOps int
	// MaxBatchRecords caps one trace batch (default 256k records);
	// MaxPendingRecords caps a port's total unreplayed backlog (default
	// 1M); MaxStreams caps concurrent streams per port (default 64);
	// MaxStreamCount caps one stream's bounded request count (default
	// 10M — unbounded streams are refused, a drain must terminate).
	MaxBatchRecords   int
	MaxPendingRecords int
	MaxStreams        int
	MaxStreamCount    uint64
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// OplogCap is the applied-operation ring size (default 1024).
	OplogCap int
	// DrainQuietBarriers is how many consecutive no-activity barriers end
	// a drain (default 2); DrainMaxCycles caps the cycles a drain may
	// consume before giving up on stragglers (default 4M).
	DrainQuietBarriers int
	DrainMaxCycles     uint64
	// IdleSleep is the wall-clock pause after a barrier in which nothing
	// happened (default 200µs), keeping an idle server off the CPU
	// without adding latency under load. Zero-capable via Spin.
	IdleSleep time.Duration
	// Spin disables IdleSleep (tests; benchmark loops).
	Spin bool
}

func (c *Config) fill() {
	if c.BarrierCycles == 0 {
		c.BarrierCycles = 8192
	}
	if c.MaxPendingOps == 0 {
		c.MaxPendingOps = 1024
	}
	if c.MaxBatchRecords == 0 {
		c.MaxBatchRecords = 256 << 10
	}
	if c.MaxPendingRecords == 0 {
		c.MaxPendingRecords = 1 << 20
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 64
	}
	if c.MaxStreamCount == 0 {
		c.MaxStreamCount = 10_000_000
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.OplogCap == 0 {
		c.OplogCap = 1024
	}
	if c.DrainQuietBarriers == 0 {
		c.DrainQuietBarriers = 2
	}
	if c.DrainMaxCycles == 0 {
		c.DrainMaxCycles = 4 << 20
	}
	if c.IdleSleep == 0 {
		c.IdleSleep = 200 * time.Microsecond
	}
	if c.Spin {
		c.IdleSleep = 0
	}
}

// Sentinel submission errors; handlers map them to HTTP statuses.
var (
	// ErrStopped: the loop has exited; no further operations apply.
	ErrStopped = errors.New("serve: server stopped")
	// ErrBacklog: the pending-operation queue is full.
	ErrBacklog = errors.New("serve: operation backlog full")
)

// BarrierError rejects an operation pinned to an already-completed
// barrier.
type BarrierError struct {
	Requested, Completed uint64
}

func (e *BarrierError) Error() string {
	return fmt.Sprintf("serve: barrier %d already completed (at barrier %d)", e.Requested, e.Completed)
}

// op is one queued mutation (or barrier-consistent read).
type op struct {
	seq     uint64
	name    string
	barrier uint64 // apply before running quantum `barrier`; 0 = earliest
	fn      func(n *core.NIC, now uint64) (any, error)
	reply   chan opResult
}

type opResult struct {
	val any
	err error
}

// OplogEntry records one applied operation: enough to replay the session
// deterministically (same ops at the same barriers reproduce the run).
type OplogEntry struct {
	Seq     uint64 `json:"seq"`
	Barrier uint64 `json:"barrier"`
	Cycle   uint64 `json:"cycle"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	Err     string `json:"error,omitempty"`
}

// Statz is the published snapshot behind GET /statz.
type Statz struct {
	core.StatsSnapshot
	Barrier       uint64        `json:"barrier"`
	BarrierCycles uint64        `json:"barrier_cycles"`
	Draining      bool          `json:"draining"`
	OpsApplied    uint64        `json:"ops_applied"`
	OpsPending    int           `json:"ops_pending"`
	Ingest        []IngestStats `json:"ingest"`
	UptimeSeconds float64       `json:"uptime_seconds"`
}

// Server drives one NIC in cycle quanta and brokers all external access to
// it. Construct with New, serve s.Handler() over HTTP, then either call
// Start for the background loop or RunBarriers to drive it synchronously.
type Server struct {
	cfg    Config
	nic    *core.NIC
	tracer *trace.Tracer // nil = tracing off; GET /trace then 409s
	ports  []*IngestSource

	mu         sync.Mutex
	pending    []*op
	seq        uint64
	oplog      []OplogEntry
	opsApplied uint64
	closed     bool

	snap     atomic.Pointer[Statz]
	barrier  atomic.Uint64 // completed barriers
	draining atomic.Bool
	started  atomic.Bool

	// Drain progress, touched only on the loop goroutine.
	drainBase  uint64 // cycle at which drain began
	quiet      int    // consecutive inactive barriers while draining
	drainArmed bool

	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	wallStart time.Time
}

// New wraps a NIC whose sources are the given ingest ports (built with
// NewIngestSources and fed to core.NewNIC). tracer may be nil.
func New(cfg Config, nic *core.NIC, tracer *trace.Tracer, ports []*IngestSource) *Server {
	cfg.fill()
	s := &Server{
		cfg:    cfg,
		nic:    nic,
		tracer: tracer,
		ports:  ports,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.publish()
	return s
}

// Barrier returns the number of completed barriers.
func (s *Server) Barrier() uint64 { return s.barrier.Load() }

// Start launches the background loop. Call once.
func (s *Server) Start() {
	s.wallStart = time.Now()
	s.started.Store(true)
	go s.loop()
}

// BeginDrain stops admitting work implicitly (readiness goes false) and
// makes the loop exit once DrainQuietBarriers consecutive barriers pass
// with no deliveries, drops, applied ops, or pending ingest — or when
// DrainMaxCycles have elapsed since the drain began.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Stop makes the loop exit at the next barrier without draining.
func (s *Server) Stop() { s.stopOnce.Do(func() { close(s.stop) }) }

// Wait blocks until the loop has exited.
func (s *Server) Wait() { <-s.done }

// Stopped reports whether the loop has exited.
func (s *Server) Stopped() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Draining reports whether a drain has been requested.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) loop() {
	defer s.shutdown()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		active := s.runBarrier()
		if s.draining.Load() {
			if !s.drainArmed {
				s.drainArmed = true
				s.drainBase = s.nic.Now()
				s.quiet = 0
			}
			if active {
				s.quiet = 0
			} else {
				s.quiet++
			}
			if s.quiet >= s.cfg.DrainQuietBarriers {
				return
			}
			if s.nic.Now()-s.drainBase >= s.cfg.DrainMaxCycles {
				return
			}
		} else if !active && s.cfg.IdleSleep > 0 {
			time.Sleep(s.cfg.IdleSleep)
		}
	}
}

// shutdown fails every queued operation, marks the server closed, and
// publishes a final snapshot.
func (s *Server) shutdown() {
	s.mu.Lock()
	s.closed = true
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, o := range pending {
		o.reply <- opResult{err: ErrStopped}
	}
	s.publish()
	close(s.done)
}

// RunBarriers drives n barriers synchronously on the caller's goroutine —
// the deterministic harness used by tests and batch replays. It is the
// exact code path Start's loop runs; do not mix the two.
func (s *Server) RunBarriers(n int) {
	for i := 0; i < n; i++ {
		s.runBarrier()
	}
}

// runBarrier applies due operations at the current barrier (kernel
// strictly between Run calls), advances one quantum, then publishes a
// fresh snapshot. Returns whether anything happened: an op applied, a
// counter moved, or ingest work remains.
func (s *Server) runBarrier() bool {
	applied := s.applyDue()
	before := s.activity()
	s.nic.Run(s.cfg.BarrierCycles)
	s.barrier.Add(1)
	s.publish()
	active := applied > 0 || s.activity() != before
	if !active {
		now := s.nic.Now()
		for _, p := range s.ports {
			if p.pending(now) {
				active = true
				break
			}
		}
	}
	return active
}

// activity is the monotone delivered-or-dropped-or-received counter used
// for quiet detection: any in-flight message eventually moves it.
func (s *Server) activity() uint64 {
	a := s.nic.HostLat.Count + s.nic.WireLat.Count + s.nic.Drops.Value()
	for _, m := range s.nic.MACs {
		a += m.RxCount() + m.TxCount()
	}
	return a
}

// applyDue pops every operation due at the current barrier and applies
// them in (target barrier, submission sequence) order.
func (s *Server) applyDue() int {
	b := s.barrier.Load()
	s.mu.Lock()
	var due, future []*op
	for _, o := range s.pending {
		if o.barrier <= b {
			due = append(due, o)
		} else {
			future = append(future, o)
		}
	}
	s.pending = future
	s.mu.Unlock()
	if len(due) == 0 {
		return 0
	}
	sort.SliceStable(due, func(i, j int) bool {
		if due[i].barrier != due[j].barrier {
			return due[i].barrier < due[j].barrier
		}
		return due[i].seq < due[j].seq
	})
	now := s.nic.Now()
	for _, o := range due {
		val, err := o.fn(s.nic, now)
		e := OplogEntry{Seq: o.seq, Barrier: b, Cycle: now, Name: o.name}
		if err != nil {
			e.Err = err.Error()
		} else if val != nil {
			e.Detail = fmt.Sprintf("%+v", val)
		}
		s.mu.Lock()
		s.oplog = append(s.oplog, e)
		if len(s.oplog) > s.cfg.OplogCap {
			s.oplog = s.oplog[len(s.oplog)-s.cfg.OplogCap:]
		}
		s.opsApplied++
		s.mu.Unlock()
		o.reply <- opResult{val: val, err: err}
	}
	return len(due)
}

// publish refreshes the snapshot handlers serve. Runs on the loop
// goroutine (or the constructor, before the loop exists).
func (s *Server) publish() {
	st := &Statz{
		StatsSnapshot: s.nic.Snapshot(),
		Barrier:       s.barrier.Load(),
		BarrierCycles: s.cfg.BarrierCycles,
		Draining:      s.draining.Load(),
	}
	now := s.nic.Now()
	for _, p := range s.ports {
		st.Ingest = append(st.Ingest, p.Stats(now))
	}
	s.mu.Lock()
	st.OpsApplied = s.opsApplied
	st.OpsPending = len(s.pending)
	s.mu.Unlock()
	if !s.wallStart.IsZero() {
		st.UptimeSeconds = time.Since(s.wallStart).Seconds()
	}
	s.snap.Store(st)
}

// Statz returns the latest published snapshot.
func (s *Server) Statz() *Statz { return s.snap.Load() }

// Oplog returns a copy of the applied-operation log.
func (s *Server) Oplog() []OplogEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]OplogEntry(nil), s.oplog...)
}

// enqueue queues an operation without waiting. atBarrier == 0 means the
// earliest barrier; a non-zero target must not have completed yet. An op
// whose target passes while it sits in the queue still applies — at the
// first barrier after it is seen — and the oplog records where it landed.
func (s *Server) enqueue(name string, atBarrier uint64, fn func(*core.NIC, uint64) (any, error)) (*op, error) {
	if atBarrier != 0 {
		if b := s.barrier.Load(); atBarrier <= b {
			return nil, &BarrierError{Requested: atBarrier, Completed: b}
		}
	}
	o := &op{name: name, barrier: atBarrier, fn: fn, reply: make(chan opResult, 1)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStopped
	}
	if len(s.pending) >= s.cfg.MaxPendingOps {
		return nil, ErrBacklog
	}
	s.seq++
	o.seq = s.seq
	s.pending = append(s.pending, o)
	return o, nil
}

// submit queues an operation and blocks until a barrier applies it.
func (s *Server) submit(name string, atBarrier uint64, fn func(*core.NIC, uint64) (any, error)) (any, error) {
	o, err := s.enqueue(name, atBarrier, fn)
	if err != nil {
		return nil, err
	}
	r := <-o.reply
	return r.val, r.err
}
