package serve

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// StreamDesc is the JSON body of POST /ingest/stream: one bounded
// open-loop KVS tenant stream (workload.KVSTenantConfig over the wire).
// Count is mandatory — the serve plane refuses unbounded streams because a
// drain must be able to terminate.
type StreamDesc struct {
	Port       int     `json:"port"`
	Tenant     uint16  `json:"tenant"`
	Class      string  `json:"class"` // "bulk", "latency", or "control"
	RateGbps   float64 `json:"rate_gbps"`
	Poisson    bool    `json:"poisson"`
	Keys       uint64  `json:"keys"`
	ZipfS      float64 `json:"zipf_s"`    // 0 = default skew (1.07)
	GetRatio   float64 `json:"get_ratio"` // fraction of GETs, in [0,1]
	WANShare   float64 `json:"wan_share"` // fraction arriving over IPSec, in [0,1]
	ValueBytes uint32  `json:"value_bytes"`
	Count      uint64  `json:"count"` // required; bounded request count
	Seed       uint64  `json:"seed"`
}

// parseClass maps the wire name to a traffic class.
func parseClass(s string) (packet.Class, error) {
	switch s {
	case "", "bulk":
		return packet.ClassBulk, nil
	case "latency":
		return packet.ClassLatency, nil
	case "control":
		return packet.ClassControl, nil
	}
	return 0, fmt.Errorf("unknown class %q (want bulk, latency, or control)", s)
}

// validateStream rejects descriptors that would panic the workload
// constructor or violate the server's admission bounds.
func (s *Server) validateStream(d *StreamDesc) error {
	if d.Port < 0 || d.Port >= len(s.ports) {
		return fmt.Errorf("port %d out of [0,%d)", d.Port, len(s.ports))
	}
	if d.Tenant < 1 {
		return fmt.Errorf("tenant must be >= 1")
	}
	if _, err := parseClass(d.Class); err != nil {
		return err
	}
	if !(d.RateGbps > 0) || d.RateGbps > 1000 {
		return fmt.Errorf("rate_gbps %v out of (0,1000]", d.RateGbps)
	}
	if d.Keys < 1 {
		return fmt.Errorf("keys must be >= 1")
	}
	if d.ZipfS != 0 && !(d.ZipfS > 1) {
		return fmt.Errorf("zipf_s %v must be > 1 (or 0 for the default)", d.ZipfS)
	}
	if d.GetRatio < 0 || d.GetRatio > 1 {
		return fmt.Errorf("get_ratio %v out of [0,1]", d.GetRatio)
	}
	if d.WANShare < 0 || d.WANShare > 1 {
		return fmt.Errorf("wan_share %v out of [0,1]", d.WANShare)
	}
	if d.ValueBytes > 1<<20 {
		return fmt.Errorf("value_bytes %d exceeds 1 MiB", d.ValueBytes)
	}
	if d.Count < 1 || d.Count > s.cfg.MaxStreamCount {
		return fmt.Errorf("count %d out of [1,%d] (unbounded streams are not admitted)", d.Count, s.cfg.MaxStreamCount)
	}
	return nil
}

// buildStream realizes the descriptor against the NIC's clock frequency.
// The client subnet is tied to the ingress port, matching how batch runs
// wire KVS tenants to ports.
func (d *StreamDesc) buildStream(freqHz float64) *workload.KVSStream {
	class, _ := parseClass(d.Class)
	return workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant:     d.Tenant,
		Class:      class,
		RateGbps:   d.RateGbps,
		FreqHz:     freqHz,
		Poisson:    d.Poisson,
		Keys:       d.Keys,
		ZipfS:      d.ZipfS,
		GetRatio:   d.GetRatio,
		WANShare:   d.WANShare,
		ValueBytes: d.ValueBytes,
		ClientNet:  byte(d.Port),
		Count:      d.Count,
		Seed:       d.Seed,
	})
}

// validateBatch checks an already-parsed trace batch against the port's
// admission bounds. Called at submission time for fast rejection and again
// under the barrier for the authoritative backlog check.
func (s *Server) validateBatch(port int, records []workload.TraceRecord) error {
	if port < 0 || port >= len(s.ports) {
		return fmt.Errorf("port %d out of [0,%d)", port, len(s.ports))
	}
	if len(records) == 0 {
		return fmt.Errorf("empty batch")
	}
	if len(records) > s.cfg.MaxBatchRecords {
		return fmt.Errorf("batch of %d records exceeds cap %d", len(records), s.cfg.MaxBatchRecords)
	}
	for i, r := range records {
		if r.Tenant < 1 {
			return fmt.Errorf("record %d: tenant must be >= 1", i)
		}
		if r.Class > packet.ClassControl {
			return fmt.Errorf("record %d: unknown class %d", i, r.Class)
		}
	}
	return nil
}

// checkBacklog is the barrier-time admission gate: the port's unreplayed
// backlog plus the new batch must fit MaxPendingRecords.
func (s *Server) checkBacklog(port, adding int) error {
	if p := s.ports[port].pendingRecords(); p+adding > s.cfg.MaxPendingRecords {
		return fmt.Errorf("port %d backlog %d + %d exceeds cap %d", port, p, adding, s.cfg.MaxPendingRecords)
	}
	return nil
}

// checkStreamSlot is the barrier-time gate on concurrent streams per port.
func (s *Server) checkStreamSlot(port int, now uint64) error {
	active := 0
	for _, st := range s.ports[port].streams {
		if _, ok := st.NextArrival(now); ok {
			active++
		}
	}
	if active >= s.cfg.MaxStreams {
		return fmt.Errorf("port %d already has %d active streams (cap %d)", port, active, s.cfg.MaxStreams)
	}
	return nil
}

// parseIPv4 parses a dotted-quad address into the uint64 field encoding
// the RMT ACL stage matches on.
func parseIPv4(s string) (uint64, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	var v uint64
	for _, p := range parts {
		o, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		v = v<<8 | o
	}
	return v, nil
}
