package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/trace"
	"github.com/panic-nic/panic/internal/workload"
)

// scenarioRecords builds the deterministic trace batch every mode replays:
// two tenants, a GET/SET mix, some WAN arrivals. Cycles are relative (the
// admitting op rebases them to its barrier).
func scenarioRecords() []workload.TraceRecord {
	var recs []workload.TraceRecord
	for i := 0; i < 400; i++ {
		op := packet.KVSGet
		vlen := uint32(0)
		if i%4 == 0 {
			op = packet.KVSSet
			vlen = 256
		}
		recs = append(recs, workload.TraceRecord{
			Cycle:  uint64(i * 13),
			Tenant: uint16(1 + i%2), Class: packet.ClassLatency,
			Op: op, Key: uint64(i % 64), ValueLen: vlen,
			WAN: i%5 == 0, ClientNet: 0,
		})
	}
	return recs
}

// mustEnqueue schedules an op pinned to a barrier; the test harness drives
// RunBarriers itself, so nothing waits on the reply channel (buffered).
func mustEnqueue(t *testing.T, s *Server, name string, barrier uint64, fn func(*core.NIC, uint64) (any, error)) {
	t.Helper()
	if _, err := s.enqueue(name, barrier, fn); err != nil {
		t.Fatalf("enqueue %s: %v", name, err)
	}
}

// reloadScenario runs the acceptance scenario for one kernel mode: ingest
// a trace batch and a bounded stream at barrier 1, swap tenant weights at
// barrier 4, edit the RMT program at barrier 6, inject a fault plan at
// barrier 8, then run to a fixed horizon. Returns (summary+tenant report,
// oplog JSON, Chrome trace JSON).
func reloadScenario(t *testing.T, workers int, fastForward bool) (string, string, string) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.Workers = workers
	cfg.FastForward = fastForward
	cfg.IPSecReplicas = 2
	cfg.TenantWeights = map[uint16]uint64{1: 1, 2: 1}
	tracer := trace.New(trace.Options{FreqHz: cfg.FreqHz, Sample: 1})
	cfg.Tracer = tracer
	ports := NewIngestSources(cfg.Ports)
	nic := core.NewNIC(cfg, AsEngineSources(ports))
	defer nic.Close()
	s := New(Config{BarrierCycles: 4096, Spin: true}, nic, tracer, ports)

	recs := scenarioRecords()
	mustEnqueue(t, s, "ingest-trace", 1, func(n *core.NIC, now uint64) (any, error) {
		rc := append([]workload.TraceRecord(nil), recs...)
		for i := range rc {
			rc[i].Cycle += now
		}
		ports[0].admitBatch(rc)
		return nil, nil
	})
	desc := &StreamDesc{
		Port: 1, Tenant: 2, Class: "latency",
		RateGbps: 8, Poisson: true, Keys: 512, GetRatio: 0.9,
		WANShare: 0.2, ValueBytes: 256, Count: 600, Seed: 11,
	}
	mustEnqueue(t, s, "ingest-stream", 1, func(n *core.NIC, now uint64) (any, error) {
		ports[1].admitStream(desc.buildStream(n.Cfg.FreqHz))
		return nil, nil
	})
	mustEnqueue(t, s, "reload-weights", 4, func(n *core.NIC, now uint64) (any, error) {
		return nil, n.SetTenantWeights(map[uint16]uint64{1: 4, 2: 1})
	})
	mustEnqueue(t, s, "reload-program", 6, func(n *core.NIC, now uint64) (any, error) {
		if err := n.InstallACLDrop(0xCB007100, 24, 100); err != nil { // 203.0.113.0/24
			return nil, err
		}
		addrs := core.EngineAddrs()
		if _, err := n.RewriteSteering(addrs["ipsec"], addrs["ipsec-alt0"]); err != nil {
			return nil, err
		}
		return nil, nil
	})
	mustEnqueue(t, s, "inject-faults", 8, func(n *core.NIC, now uint64) (any, error) {
		plan := (&fault.Plan{}).Add(fault.Event{
			At: 100, Kind: fault.Slow, Engine: core.AddrIPSec, Factor: 2, For: 30_000,
		})
		return nil, n.InjectFaultPlan(plan.Shifted(now))
	})

	s.RunBarriers(60)

	cycles := nic.Now()
	fp := nic.Summary(cycles) + "\n" + nic.TenantReport()
	oplog, err := json.Marshal(s.Oplog())
	if err != nil {
		t.Fatalf("marshal oplog: %v", err)
	}
	var sb strings.Builder
	if err := tracer.Set().WriteChrome(&sb); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	return fp, string(oplog), sb.String()
}

// TestHotReloadDeterminism is the serve plane's acceptance test: the same
// barrier-pinned reload sequence must produce byte-identical stats,
// oplog, and exported trace across the sequential kernel, 2- and 8-worker
// parallel kernels, and fast-forward — because every mutation lands at
// cycle barrier*quantum regardless of how the kernel covers the cycles in
// between.
func TestHotReloadDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode NIC runs are slow")
	}
	type mode struct {
		name    string
		workers int
		ff      bool
	}
	modes := []mode{
		{"sequential", 0, false},
		{"sequential+ff", 0, true},
		{"2-workers", 2, false},
		{"2-workers+ff", 2, true},
		{"8-workers", 8, false},
		{"8-workers+ff", 8, true},
	}
	wantFP, wantOplog, wantTrace := reloadScenario(t, modes[0].workers, modes[0].ff)
	if !strings.Contains(wantFP, "host deliveries") {
		t.Fatalf("summary looks empty:\n%s", wantFP)
	}
	if !strings.Contains(wantTrace, `"name"`) {
		t.Fatalf("trace contains no spans; tracing is not wired up")
	}
	if !strings.Contains(wantOplog, "inject-faults") {
		t.Fatalf("oplog missing scheduled ops:\n%s", wantOplog)
	}
	for _, m := range modes[1:] {
		fp, oplog, tr := reloadScenario(t, m.workers, m.ff)
		if fp != wantFP {
			t.Errorf("mode %s: stats diverged from sequential:\nwant:\n%s\ngot:\n%s", m.name, wantFP, fp)
		}
		if oplog != wantOplog {
			t.Errorf("mode %s: oplog diverged:\nwant: %s\ngot:  %s", m.name, wantOplog, oplog)
		}
		if tr != wantTrace {
			t.Errorf("mode %s: exported trace diverged from sequential (%d vs %d bytes)", m.name, len(tr), len(wantTrace))
		}
	}
}

// TestBarrierPlacementInvariant pins the contract everything above rests
// on: barrier k is always cycle k*quantum, in every kernel mode.
func TestBarrierPlacementInvariant(t *testing.T) {
	for _, ff := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.FastForward = ff
		cfg.TenantWeights = map[uint16]uint64{1: 1}
		ports := NewIngestSources(cfg.Ports)
		nic := core.NewNIC(cfg, AsEngineSources(ports))
		s := New(Config{BarrierCycles: 1000, Spin: true}, nic, nil, ports)
		var atCycles []uint64
		for _, b := range []uint64{1, 3, 7} {
			mustEnqueue(t, s, "probe", b, func(n *core.NIC, now uint64) (any, error) {
				atCycles = append(atCycles, now)
				return nil, nil
			})
		}
		s.RunBarriers(10)
		nic.Close()
		want := []uint64{1000, 3000, 7000}
		if len(atCycles) != len(want) {
			t.Fatalf("ff=%v: %d ops applied, want %d", ff, len(atCycles), len(want))
		}
		for i, c := range atCycles {
			if c != want[i] {
				t.Errorf("ff=%v: op %d applied at cycle %d, want %d", ff, i, c, want[i])
			}
		}
	}
}
