package serve

import (
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// IngestStats is one port's ingest counters, published in every Statz.
type IngestStats struct {
	Port            int    `json:"port"`
	BatchesAccepted uint64 `json:"batches_accepted"`
	RecordsAccepted uint64 `json:"records_accepted"`
	StreamsAccepted uint64 `json:"streams_accepted"`
	Replayed        uint64 `json:"replayed"`
	PendingRecords  int    `json:"pending_records"`
	ActiveStreams   int    `json:"active_streams"`
}

// IngestSource feeds one Ethernet port from work admitted over HTTP: a
// FIFO of trace batches (replayed in admission order, each batch's cycles
// already rebased to its admission barrier) plus a set of bounded
// open-loop KVS streams. It implements engine.ArrivalSource so idle-cycle
// fast-forward keeps working while the port waits for work.
//
// Concurrency: Poll and NextArrival run inside kernel cycles on the one
// worker evaluating the port's MAC; admitBatch, admitStream, and Stats run
// on the serve loop goroutine strictly between Run calls. No two of these
// ever overlap, so the type needs no locks — and reporting "exhausted" to
// the kernel is safe because admission only happens at barriers, after
// which the MAC re-queries the source.
type IngestSource struct {
	port    int
	batches []*workload.TraceSource
	streams []*workload.KVSStream
	stats   IngestStats
}

var (
	_ engine.Source        = (*IngestSource)(nil)
	_ engine.ArrivalSource = (*IngestSource)(nil)
)

// NewIngestSources builds one empty ingest source per port.
func NewIngestSources(ports int) []*IngestSource {
	out := make([]*IngestSource, ports)
	for p := range out {
		out[p] = &IngestSource{port: p}
	}
	return out
}

// AsEngineSources converts for core.NewNIC's sources argument.
func AsEngineSources(ports []*IngestSource) []engine.Source {
	out := make([]engine.Source, len(ports))
	for i, p := range ports {
		out[i] = p
	}
	return out
}

// admitBatch appends a trace batch. Records must already carry absolute
// cycles (rebased to the admission barrier) and be monotone.
func (g *IngestSource) admitBatch(records []workload.TraceRecord) {
	g.batches = append(g.batches, workload.NewTraceSource(records))
	g.stats.BatchesAccepted++
	g.stats.RecordsAccepted += uint64(len(records))
}

// admitStream adds a bounded open-loop stream.
func (g *IngestSource) admitStream(s *workload.KVSStream) {
	g.streams = append(g.streams, s)
	g.stats.StreamsAccepted++
}

// Poll implements engine.Source. Batches replay strictly FIFO — a later
// batch never overtakes an earlier one even if its rebased cycles are due —
// then streams are polled in admission order.
func (g *IngestSource) Poll(now uint64) *packet.Message {
	for len(g.batches) > 0 {
		b := g.batches[0]
		if m := b.Poll(now); m != nil {
			g.stats.Replayed++
			return m
		}
		if b.Remaining() == 0 {
			g.batches = g.batches[1:]
			continue
		}
		break
	}
	for _, s := range g.streams {
		if m := s.Poll(now); m != nil {
			g.stats.Replayed++
			return m
		}
	}
	return nil
}

// NextArrival implements engine.ArrivalSource: the earliest cycle at which
// Poll can succeed — the head batch's next record (later batches wait
// behind it, exactly as Poll drains them) or any stream's next due cycle.
func (g *IngestSource) NextArrival(now uint64) (uint64, bool) {
	for len(g.batches) > 0 && g.batches[0].Remaining() == 0 {
		g.batches = g.batches[1:]
	}
	best, ok := uint64(0), false
	if len(g.batches) > 0 {
		if at, o := g.batches[0].NextArrival(now); o {
			best, ok = at, true
		}
	}
	for _, s := range g.streams {
		if at, o := s.NextArrival(now); o && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// pendingRecords is the number of admitted-but-unreplayed trace records.
func (g *IngestSource) pendingRecords() int {
	n := 0
	for _, b := range g.batches {
		n += b.Remaining()
	}
	return n
}

// pending reports whether the port still has admitted work to emit.
func (g *IngestSource) pending(now uint64) bool {
	_, ok := g.NextArrival(now)
	return ok
}

// Stats returns the port's counters with the live backlog filled in.
func (g *IngestSource) Stats(now uint64) IngestStats {
	s := g.stats
	s.Port = g.port
	s.PendingRecords = g.pendingRecords()
	for _, st := range g.streams {
		if _, ok := st.NextArrival(now); ok {
			s.ActiveStreams++
		}
	}
	return s
}
