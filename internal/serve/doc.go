// Package serve is the control-and-ingest plane for a long-running PANIC
// simulation: a stdlib net/http server wrapped around one NIC whose kernel
// is driven in fixed cycle quanta by a single loop goroutine. HTTP clients
// never touch simulation state directly. Reads are served from an
// atomically published snapshot refreshed at every quantum boundary, and
// every mutation — trace or stream ingest, RMT program edits, tenant
// weight swaps, fault-plan injection — is queued as an operation that the
// loop applies at the next cycle-aligned barrier, strictly between Run
// calls. Because Run(n) always advances the clock by exactly n cycles
// (fast-forwarded or stepped), barrier k sits at cycle k*quantum in every
// kernel mode, so an operation pinned to a barrier lands on the same cycle
// whether the kernel is sequential, parallel, or skipping idle cycles —
// which is what keeps a live-reconfigured run bit-identical to a replay.
//
// Observability: the server is built to be watched. GET /statz returns the
// latest published core.StatsSnapshot extended with barrier position,
// per-port ingest counters, and operation backlog; GET /oplog returns the
// applied-operation log (sequence, barrier, cycle, result) that makes a
// live session replayable; GET /trace exports the deterministic span trace
// as Perfetto-loadable Chrome JSON without stopping the run. Liveness
// (/healthz) and readiness (/readyz) split "the loop is alive" from "the
// server accepts work": a draining server is alive but not ready, and
// drain itself is observable as barriers that deliver nothing.
package serve
