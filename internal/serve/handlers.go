package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"github.com/panic-nic/panic/internal/packet"
	"net/http"
	"sort"
	"strconv"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/trace"
	"github.com/panic-nic/panic/internal/workload"
)

// route is one row of the API surface. The table below is the single
// source of truth: the mux is built from it, GET / serves it, and
// cmd/doccheck scans it to hold SERVICE.md to the implemented routes.
// Keep each literal on one line — the doccheck scanner is line-based.
type route struct {
	method  string
	pattern string
	summary string
	h       func(*Server) http.HandlerFunc
}

// routes is filled by init (not a composite-literal initializer: the index
// handler reads the table, which would otherwise be an initialization
// cycle).
var routes []route

func init() {
	routes = []route{
		{method: "GET", pattern: "/", summary: "API index: every route with its one-line summary", h: (*Server).handleIndex},
		{method: "GET", pattern: "/healthz", summary: "liveness: 200 while the barrier loop runs", h: (*Server).handleHealthz},
		{method: "GET", pattern: "/readyz", summary: "readiness: 200 when started, not draining, not stopped", h: (*Server).handleReadyz},
		{method: "GET", pattern: "/statz", summary: "latest published metrics snapshot (JSON)", h: (*Server).handleStatz},
		{method: "GET", pattern: "/oplog", summary: "applied-operation log: seq, barrier, cycle, result", h: (*Server).handleOplog},
		{method: "GET", pattern: "/trace", summary: "deterministic span trace as Perfetto-loadable Chrome JSON", h: (*Server).handleTrace},
		{method: "GET", pattern: "/tenants", summary: "per-tenant weights and latency/throughput rows", h: (*Server).handleTenants},
		{method: "GET", pattern: "/tenants/{id}", summary: "one tenant's weight and stats, read at a barrier", h: (*Server).handleTenantGet},
		{method: "PUT", pattern: "/tenants/{id}", summary: "set one tenant's scheduler weight at a barrier", h: (*Server).handleTenantPut},
		{method: "DELETE", pattern: "/tenants/{id}", summary: "drop a tenant's explicit weight (revert to default)", h: (*Server).handleTenantDelete},
		{method: "POST", pattern: "/reload/weights", summary: "replace the whole weighted-LSTF weight table", h: (*Server).handleReloadWeights},
		{method: "POST", pattern: "/reload/program", summary: "apply RMT program edits: acl-drop, acl-clear, steer, steer-tenant", h: (*Server).handleReloadProgram},
		{method: "POST", pattern: "/faults", summary: "inject a fault plan (text format, cycles relative to the barrier)", h: (*Server).handleFaults},
		{method: "POST", pattern: "/ingest/trace", summary: "admit a trace batch (text format) for replay on ?port=N", h: (*Server).handleIngestTrace},
		{method: "POST", pattern: "/ingest/stream", summary: "admit a bounded open-loop KVS stream (JSON descriptor)", h: (*Server).handleIngestStream},
		{method: "POST", pattern: "/drain", summary: "begin graceful drain: finish admitted work, then stop", h: (*Server).handleDrain},
	}
}

// Handler builds the server's http.Handler from the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range routes {
		pat := rt.pattern
		if pat == "/" {
			pat = "/{$}" // exact-match root; bare "/" would swallow every path
		}
		mux.HandleFunc(rt.method+" "+pat, rt.h(s))
	}
	return http.MaxBytesHandler(mux, s.cfg.MaxBodyBytes)
}

// --- plumbing ---------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submitHTTP runs fn at the requested barrier (the ?barrier=k query
// parameter; absent = next) and maps submission failures onto statuses:
// 409 for an already-completed barrier, 429 for a full op queue, 503 once
// the loop has exited, 400 for anything the operation itself rejected.
func (s *Server) submitHTTP(w http.ResponseWriter, r *http.Request, name string, fn func(*core.NIC, uint64) (any, error)) (any, bool) {
	atBarrier := uint64(0)
	if q := r.URL.Query().Get("barrier"); q != "" {
		b, err := strconv.ParseUint(q, 10, 64)
		if err != nil || b == 0 {
			httpError(w, http.StatusBadRequest, "bad barrier %q", q)
			return nil, false
		}
		atBarrier = b
	}
	val, err := s.submit(name, atBarrier, fn)
	if err != nil {
		var be *BarrierError
		switch {
		case errors.As(err, &be):
			httpError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, ErrBacklog):
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrStopped):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return nil, false
	}
	return val, true
}

func tenantID(r *http.Request) (uint16, error) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 16)
	if err != nil || id == 0 {
		return 0, fmt.Errorf("bad tenant id %q", r.PathValue("id"))
	}
	return uint16(id), nil
}

// --- read endpoints ---------------------------------------------------

func (s *Server) handleIndex() http.HandlerFunc {
	type row struct {
		Method  string `json:"method"`
		Path    string `json:"path"`
		Summary string `json:"summary"`
	}
	var idx []row
	for _, rt := range routes {
		idx = append(idx, row{rt.method, rt.pattern, rt.summary})
	}
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, idx)
	}
}

func (s *Server) handleHealthz() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Stopped() {
			httpError(w, http.StatusServiceUnavailable, "stopped")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "barrier": s.Barrier()})
	}
}

func (s *Server) handleReadyz() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.Stopped():
			httpError(w, http.StatusServiceUnavailable, "stopped")
		case s.Draining():
			httpError(w, http.StatusServiceUnavailable, "draining")
		case !s.started.Load():
			httpError(w, http.StatusServiceUnavailable, "not started")
		default:
			writeJSON(w, http.StatusOK, map[string]any{"ready": true, "barrier": s.Barrier()})
		}
	}
}

func (s *Server) handleStatz() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Statz())
	}
}

func (s *Server) handleOplog() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Oplog())
	}
}

func (s *Server) handleTrace() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.tracer == nil {
			httpError(w, http.StatusConflict, "tracing is not armed (start the server with -trace)")
			return
		}
		val, ok := s.submitHTTP(w, r, "trace-export", func(n *core.NIC, now uint64) (any, error) {
			return s.tracer.Snapshot(), nil
		})
		if !ok {
			return
		}
		set := val.(*trace.Set)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", "attachment; filename=panic-trace.json")
		set.WriteChrome(w)
	}
}

func (s *Server) handleTenants() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Statz().Tenants)
	}
}

// --- tenant weight CRUD -----------------------------------------------

func (s *Server) handleTenantGet() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := tenantID(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for _, t := range s.Statz().Tenants {
			if t.Tenant == id {
				writeJSON(w, http.StatusOK, t)
				return
			}
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("tenant-get %d", id), func(n *core.NIC, now uint64) (any, error) {
			return core.TenantSnapshot{Tenant: id, Weight: n.TenantWeight(id)}, nil
		})
		if ok {
			writeJSON(w, http.StatusOK, val)
		}
	}
}

func (s *Server) handleTenantPut() http.HandlerFunc {
	type req struct {
		Weight uint64 `json:"weight"`
	}
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := tenantID(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		var body req
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		if body.Weight < 1 {
			httpError(w, http.StatusBadRequest, "weight must be >= 1")
			return
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("tenant-weight %d=%d", id, body.Weight), func(n *core.NIC, now uint64) (any, error) {
			weights := make(map[uint16]uint64, len(n.Cfg.TenantWeights)+1)
			for t, wt := range n.Cfg.TenantWeights {
				weights[t] = wt
			}
			weights[id] = body.Weight
			if err := n.SetTenantWeights(weights); err != nil {
				return nil, err
			}
			wr := weightsResult(n, now)
			wr.Barrier = s.Barrier()
			return wr, nil
		})
		if ok {
			writeJSON(w, http.StatusOK, val)
		}
	}
}

func (s *Server) handleTenantDelete() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := tenantID(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("tenant-weight-delete %d", id), func(n *core.NIC, now uint64) (any, error) {
			if _, explicit := n.Cfg.TenantWeights[id]; !explicit {
				return nil, fmt.Errorf("tenant %d has no explicit weight", id)
			}
			weights := make(map[uint16]uint64, len(n.Cfg.TenantWeights))
			for t, wt := range n.Cfg.TenantWeights {
				if t != id {
					weights[t] = wt
				}
			}
			if err := n.SetTenantWeights(weights); err != nil {
				return nil, err
			}
			wr := weightsResult(n, now)
			wr.Barrier = s.Barrier()
			return wr, nil
		})
		if ok {
			writeJSON(w, http.StatusOK, val)
		}
	}
}

// weightsReply is the response body of every weight mutation.
type weightsReply struct {
	Weights map[string]uint64 `json:"weights"`
	Barrier uint64            `json:"barrier"`
	Cycle   uint64            `json:"cycle"`
}

func weightsResult(n *core.NIC, now uint64) weightsReply {
	out := weightsReply{Weights: make(map[string]uint64, len(n.Cfg.TenantWeights)), Cycle: now}
	ids := make([]int, 0, len(n.Cfg.TenantWeights))
	for t := range n.Cfg.TenantWeights {
		ids = append(ids, int(t))
	}
	sort.Ints(ids)
	for _, t := range ids {
		out.Weights[strconv.Itoa(t)] = n.Cfg.TenantWeights[uint16(t)]
	}
	return out
}

// --- hot reload -------------------------------------------------------

func (s *Server) handleReloadWeights() http.HandlerFunc {
	type req struct {
		Weights map[string]uint64 `json:"weights"`
	}
	return func(w http.ResponseWriter, r *http.Request) {
		var body req
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		weights := make(map[uint16]uint64, len(body.Weights))
		for k, wt := range body.Weights {
			id, err := strconv.ParseUint(k, 10, 16)
			if err != nil || id == 0 {
				httpError(w, http.StatusBadRequest, "bad tenant id %q", k)
				return
			}
			if wt < 1 {
				httpError(w, http.StatusBadRequest, "tenant %s: weight must be >= 1", k)
				return
			}
			weights[uint16(id)] = wt
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("reload-weights n=%d", len(weights)), func(n *core.NIC, now uint64) (any, error) {
			if err := n.SetTenantWeights(weights); err != nil {
				return nil, err
			}
			wr := weightsResult(n, now)
			wr.Barrier = s.Barrier()
			return wr, nil
		})
		if ok {
			writeJSON(w, http.StatusOK, val)
		}
	}
}

// programOp is one edit in a POST /reload/program batch. The batch is a
// single operation: all edits land at the same barrier, in order.
type programOp struct {
	Op        string `json:"op"`                   // acl-drop | acl-clear | steer | steer-tenant
	SrcPrefix string `json:"src_prefix,omitempty"` // acl-drop: dotted-quad IPv4
	PrefixLen int    `json:"prefix_len,omitempty"` // acl-drop: 0..32
	Priority  int    `json:"priority,omitempty"`   // acl-drop: ternary priority
	From      string `json:"from,omitempty"`       // steer*: engine name or numeric address
	To        string `json:"to,omitempty"`
	Tenant    uint16 `json:"tenant,omitempty"` // steer-tenant
}

// programReply is the response body of POST /reload/program.
type programReply struct {
	Applied           []string `json:"applied"`
	ProgramGeneration uint64   `json:"program_generation"`
	Barrier           uint64   `json:"barrier"`
	Cycle             uint64   `json:"cycle"`
}

func (s *Server) handleReloadProgram() http.HandlerFunc {
	type req struct {
		Ops []programOp `json:"ops"`
	}
	return func(w http.ResponseWriter, r *http.Request) {
		var body req
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		if len(body.Ops) == 0 {
			httpError(w, http.StatusBadRequest, "no ops")
			return
		}
		// Validate the whole batch before queueing: program edits are not
		// transactional across the barrier, so reject what we can early.
		names := core.EngineAddrs()
		for i, op := range body.Ops {
			if err := validateProgramOp(op, names); err != nil {
				httpError(w, http.StatusBadRequest, "op %d: %v", i, err)
				return
			}
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("reload-program n=%d", len(body.Ops)), func(n *core.NIC, now uint64) (any, error) {
			reply := programReply{Cycle: now}
			for i, op := range body.Ops {
				detail, err := applyProgramOp(n, op, names)
				if err != nil {
					// Earlier edits in the batch have landed; say so.
					return nil, fmt.Errorf("op %d (%d applied): %w", i, len(reply.Applied), err)
				}
				reply.Applied = append(reply.Applied, detail)
			}
			reply.ProgramGeneration = n.ProgramGeneration()
			reply.Barrier = s.Barrier()
			return reply, nil
		})
		if ok {
			writeJSON(w, http.StatusOK, val)
		}
	}
}

func parseEngine(s string, names map[string]packet.Addr) (packet.Addr, error) {
	if a, ok := names[s]; ok {
		return a, nil
	}
	if v, err := strconv.ParseUint(s, 10, 32); err == nil {
		return packet.Addr(v), nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

func validateProgramOp(op programOp, names map[string]packet.Addr) error {
	switch op.Op {
	case "acl-drop":
		if _, err := parseIPv4(op.SrcPrefix); err != nil {
			return err
		}
		if op.PrefixLen < 0 || op.PrefixLen > 32 {
			return fmt.Errorf("prefix_len %d out of [0,32]", op.PrefixLen)
		}
	case "acl-clear":
	case "steer", "steer-tenant":
		if _, err := parseEngine(op.From, names); err != nil {
			return err
		}
		if _, err := parseEngine(op.To, names); err != nil {
			return err
		}
		if op.Op == "steer-tenant" && op.Tenant == 0 {
			return fmt.Errorf("steer-tenant needs a tenant >= 1")
		}
	default:
		return fmt.Errorf("unknown op %q (want acl-drop, acl-clear, steer, or steer-tenant)", op.Op)
	}
	return nil
}

func applyProgramOp(n *core.NIC, op programOp, names map[string]packet.Addr) (string, error) {
	switch op.Op {
	case "acl-drop":
		prefix, _ := parseIPv4(op.SrcPrefix)
		if err := n.InstallACLDrop(prefix, op.PrefixLen, op.Priority); err != nil {
			return "", err
		}
		return fmt.Sprintf("acl-drop %s/%d", op.SrcPrefix, op.PrefixLen), nil
	case "acl-clear":
		return fmt.Sprintf("acl-clear removed=%d", n.ClearACL()), nil
	case "steer":
		from, _ := parseEngine(op.From, names)
		to, _ := parseEngine(op.To, names)
		hops, err := n.RewriteSteering(from, to)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("steer %s->%s hops=%d", op.From, op.To, hops), nil
	case "steer-tenant":
		from, _ := parseEngine(op.From, names)
		to, _ := parseEngine(op.To, names)
		hops, err := n.RewriteSteeringTenant(from, to, op.Tenant)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("steer-tenant %d %s->%s hops=%d", op.Tenant, op.From, op.To, hops), nil
	}
	return "", fmt.Errorf("unknown op %q", op.Op)
}

// --- fault injection --------------------------------------------------

func (s *Server) handleFaults() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		plan, err := fault.ParsePlan(r.Body, core.EngineAddrs())
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if len(plan.Events) == 0 {
			httpError(w, http.StatusBadRequest, "empty plan")
			return
		}
		// Cycles in the body are relative to the admission barrier;
		// "at 0" would be the barrier cycle itself, which the kernel
		// cannot schedule — require at >= 1.
		for i, e := range plan.Events {
			if e.At == 0 {
				httpError(w, http.StatusBadRequest, "event %d: at must be >= 1 (cycles are relative to the admission barrier)", i)
				return
			}
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("inject-faults n=%d", len(plan.Events)), func(n *core.NIC, now uint64) (any, error) {
			if err := n.InjectFaultPlan(plan.Shifted(now)); err != nil {
				return nil, err
			}
			return map[string]any{"events": len(plan.Events), "base_cycle": now}, nil
		})
		if ok {
			writeJSON(w, http.StatusOK, val)
		}
	}
}

// --- ingest -----------------------------------------------------------

// ingestReply is the response body of both ingest endpoints.
type ingestReply struct {
	Port      int    `json:"port"`
	Records   int    `json:"records,omitempty"`
	Tenant    uint16 `json:"tenant,omitempty"`
	Count     uint64 `json:"count,omitempty"`
	BaseCycle uint64 `json:"base_cycle"`
	Barrier   uint64 `json:"barrier"`
}

func (s *Server) handleIngestTrace() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		port := 0
		if q := r.URL.Query().Get("port"); q != "" {
			p, err := strconv.Atoi(q)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad port %q", q)
				return
			}
			port = p
		}
		records, err := workload.ReadTrace(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := s.validateBatch(port, records); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("ingest-trace port=%d n=%d", port, len(records)), func(n *core.NIC, now uint64) (any, error) {
			if err := s.checkBacklog(port, len(records)); err != nil {
				return nil, err
			}
			for i := range records {
				records[i].Cycle += now
			}
			s.ports[port].admitBatch(records)
			return ingestReply{Port: port, Records: len(records), BaseCycle: now, Barrier: s.Barrier()}, nil
		})
		if ok {
			writeJSON(w, http.StatusAccepted, val)
		}
	}
}

func (s *Server) handleIngestStream() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var desc StreamDesc
		if err := json.NewDecoder(r.Body).Decode(&desc); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		if err := s.validateStream(&desc); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		val, ok := s.submitHTTP(w, r, fmt.Sprintf("ingest-stream port=%d tenant=%d n=%d", desc.Port, desc.Tenant, desc.Count), func(n *core.NIC, now uint64) (any, error) {
			if err := s.checkStreamSlot(desc.Port, now); err != nil {
				return nil, err
			}
			s.ports[desc.Port].admitStream(desc.buildStream(n.Cfg.FreqHz))
			return ingestReply{Port: desc.Port, Tenant: desc.Tenant, Count: desc.Count, BaseCycle: now, Barrier: s.Barrier()}, nil
		})
		if ok {
			writeJSON(w, http.StatusAccepted, val)
		}
	}
}

// --- lifecycle --------------------------------------------------------

func (s *Server) handleDrain() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.BeginDrain()
		writeJSON(w, http.StatusAccepted, map[string]any{"draining": true, "barrier": s.Barrier()})
	}
}

// RoutePatterns returns "METHOD pattern" for every route, in table order
// (used by tests and the doccheck gate).
func RoutePatterns() []string {
	out := make([]string, len(routes))
	for i, rt := range routes {
		out[i] = rt.method + " " + rt.pattern
	}
	return out
}
