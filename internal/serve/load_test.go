package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/workload"
)

// loadServer starts a served NIC on a real TCP listener (the httptest
// client pool caps concurrency, so the load tests speak raw TCP). The
// ConnState callback tracks the concurrent-connection high-water mark.
func loadServer(t *testing.T) (*Server, net.Addr, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.FastForward = true
	cfg.TenantWeights = map[uint16]uint64{1: 1, 2: 1}
	ports := NewIngestSources(cfg.Ports)
	nic := core.NewNIC(cfg, AsEngineSources(ports))
	s := New(Config{Spin: true}, nic, nil, ports)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var cur, peak atomic.Int64
	hs := &http.Server{
		Handler: s.Handler(),
		ConnState: func(c net.Conn, st http.ConnState) {
			switch st {
			case http.StateNew:
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
			case http.StateClosed, http.StateHijacked:
				cur.Add(-1)
			}
		},
	}
	go hs.Serve(ln)
	s.Start()
	t.Cleanup(func() {
		hs.Close()
		s.Stop()
		s.Wait()
		nic.Close()
	})
	return s, ln.Addr(), &cur, &peak
}

// TestLoadThousandConnections is the acceptance load harness: hold 1,000
// concurrent client connections open against the serve plane, then have
// every one of them fetch /statz and check the response. Logs the served
// request rate for EXPERIMENTS.md.
func TestLoadThousandConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("opens 1000 TCP connections")
	}
	const clients = 1000
	_, addr, cur, peak := loadServer(t)

	conns := make([]net.Conn, clients)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	var dialWG sync.WaitGroup
	dialErrs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			c, err := net.DialTimeout("tcp", addr.String(), 30*time.Second)
			if err != nil {
				dialErrs <- fmt.Errorf("dial %d: %w", i, err)
				return
			}
			c.SetDeadline(time.Now().Add(60 * time.Second))
			conns[i] = c
		}(i)
	}
	dialWG.Wait()
	close(dialErrs)
	for err := range dialErrs {
		t.Fatal(err)
	}
	// All dials succeeded; wait until the server has accepted every one,
	// so the high-water mark counts truly concurrent connections.
	deadline := time.Now().Add(30 * time.Second)
	for cur.Load() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("server accepted %d/%d connections", cur.Load(), clients)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p := peak.Load(); p < clients {
		t.Fatalf("concurrent-connection high-water mark %d, want >= %d", p, clients)
	}

	// Every held connection now issues one request, all at once.
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			if _, err := io.WriteString(c, "GET /statz HTTP/1.1\r\nHost: load\r\nConnection: close\r\n\r\n"); err != nil {
				errs <- fmt.Errorf("conn %d: write: %w", i, err)
				return
			}
			br := bufio.NewReader(c)
			status, err := br.ReadString('\n')
			if err != nil {
				errs <- fmt.Errorf("conn %d: read status: %w", i, err)
				return
			}
			if !strings.HasPrefix(status, "HTTP/1.1 200") {
				errs <- fmt.Errorf("conn %d: status %q", i, strings.TrimSpace(status))
				return
			}
			body, err := io.ReadAll(br)
			if err != nil {
				errs <- fmt.Errorf("conn %d: read body: %w", i, err)
				return
			}
			if !strings.Contains(string(body), `"barrier"`) {
				errs <- fmt.Errorf("conn %d: body is not a statz snapshot", i)
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		if failed <= 5 {
			t.Error(err)
		}
	}
	if failed > 5 {
		t.Errorf("... and %d more connection errors", failed-5)
	}
	t.Logf("%d concurrent connections (peak %d): %d /statz requests in %v (%.0f req/s)",
		clients, peak.Load(), clients, elapsed.Round(time.Millisecond),
		float64(clients)/elapsed.Seconds())
}

// loadRecords builds one ingest batch: count records, 10 cycles apart,
// alternating tenants, all KVS GETs.
func loadRecords(count int) []workload.TraceRecord {
	recs := make([]workload.TraceRecord, count)
	for i := range recs {
		recs[i] = workload.TraceRecord{
			Cycle:  uint64(i * 10),
			Tenant: uint16(1 + i%2), Class: 1,
			Op: 1, Key: uint64(i % 128),
		}
	}
	return recs
}

func formatBatch(recs []workload.TraceRecord) string {
	var sb strings.Builder
	for _, r := range recs {
		wan := 0
		if r.WAN {
			wan = 1
		}
		fmt.Fprintf(&sb, "%d %d %d %d %d %d %d %d\n",
			r.Cycle, r.Tenant, r.Class, r.Op, r.Key, r.ValueLen, wan, r.ClientNet)
	}
	return sb.String()
}

// settled counts messages that have reached a terminal state: delivered
// to the host or wire, or dropped by an overfull scheduler/RMT queue (the
// replay is a deliberate burst, so some drops are legitimate).
func settled(st *Statz) uint64 {
	return st.HostDeliveries + st.WireDeliveries + st.SchedDrops + st.RMTDropped
}

// TestLoadIngestOverhead measures what the HTTP ingest path costs over
// direct barrier-time admission: the same record set is replayed once
// admitted in-process (RunBarriers harness) and once POSTed by concurrent
// HTTP clients, and the wall-clock to full delivery is compared. Logs
// replayed msgs/s for EXPERIMENTS.md.
func TestLoadIngestOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("replays large batches")
	}
	const (
		clients   = 16
		perClient = 1000
		total     = clients * perClient
	)

	// Direct: admit every batch at barrier 1, run to delivery.
	direct := func() time.Duration {
		cfg := core.DefaultConfig()
		cfg.FastForward = true
		cfg.TenantWeights = map[uint16]uint64{1: 1, 2: 1}
		ports := NewIngestSources(cfg.Ports)
		nic := core.NewNIC(cfg, AsEngineSources(ports))
		defer nic.Close()
		s := New(Config{Spin: true}, nic, nil, ports)
		for i := 0; i < clients; i++ {
			recs := loadRecords(perClient)
			mustEnqueue(t, s, "batch", 1, func(n *core.NIC, now uint64) (any, error) {
				rc := append([]workload.TraceRecord(nil), recs...)
				for j := range rc {
					rc[j].Cycle += now
				}
				ports[i%len(ports)].admitBatch(rc)
				return nil, nil
			})
		}
		start := time.Now()
		for {
			s.RunBarriers(8)
			if n := settled(s.Statz()); n >= total {
				return time.Since(start)
			} else if time.Since(start) > 60*time.Second {
				t.Fatalf("direct replay stalled: %d/%d settled", n, total)
			}
		}
	}()

	// HTTP: the same batches POSTed by concurrent clients against the
	// live loop, measured to the same full-delivery condition.
	s, addr, _, _ := loadServer(t)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := formatBatch(loadRecords(perClient))
			url := fmt.Sprintf("http://%s/ingest/trace?port=%d", addr, i%2)
			resp, err := client.Post(url, "text/plain", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("client %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if n := settled(s.Statz()); n >= total {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("http replay stalled: %d/%d settled", n, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	httpElapsed := time.Since(start)

	overhead := float64(httpElapsed-direct) / float64(direct) * 100
	t.Logf("replayed %d msgs: direct %v (%.0f msgs/s), http x%d clients %v (%.0f msgs/s), ingest overhead %+.0f%%",
		total, direct.Round(time.Millisecond), float64(total)/direct.Seconds(),
		clients, httpElapsed.Round(time.Millisecond), float64(total)/httpElapsed.Seconds(),
		overhead)
}
