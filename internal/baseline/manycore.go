package baseline

import (
	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// ManycoreConfig parameterizes the Fig 2b baseline.
type ManycoreConfig struct {
	FreqHz       float64
	LineRateGbps float64
	// Cores is the number of embedded processors.
	Cores int
	// OrchestrationCycles is the per-packet software cost of the
	// orchestrating core: parsing the packet and deciding which offloads
	// to invoke (§2.3.2 cites 10 µs or more; at 500 MHz that is 5000
	// cycles).
	OrchestrationCycles uint64
	// HopCycles is the on-chip network cost of one core↔offload
	// request or response hop.
	HopCycles uint64
	// Offloads are the shared hardware engines cores can invoke.
	Offloads []PipeStageSpec
	// QueueCap bounds per-core and per-offload queues.
	QueueCap int
	Seed     uint64
}

// ManycoreNIC is the Fig 2b architecture: a dispatcher sprays packets
// over embedded cores; each core runs the orchestration software, invokes
// shared offload engines over the on-chip network (blocking per request,
// as run-to-completion firmware does), then hands the packet to the host.
type ManycoreNIC struct {
	cfg    ManycoreConfig
	kernel *sim.Kernel
	pacer  *pacer
	cores  []*mcCore
	offs   []*mcOffload
	rr     int

	// HostLat collects wire-to-host-delivery latency.
	HostLat *core.LatencyCollector
	// DispatchDrops counts packets lost when every core queue was full.
	DispatchDrops uint64
	ctx           engine.Ctx
}

type mcCore struct {
	q    *sim.FIFO[*packet.Message]
	cur  *packet.Message
	busy uint64
	// waiting is set while a request is outstanding at an offload;
	// pendingResp carries the returning response across its hop delay.
	waiting     bool
	pendingResp *mcRequest
}

type mcOffload struct {
	spec PipeStageSpec
	q    *sim.FIFO[*mcRequest]
	cur  *mcRequest
	busy uint64
}

type mcRequest struct {
	msg   *packet.Message
	core  *mcCore
	delay uint64 // remaining response-hop delay after service
}

// NewManycoreNIC builds the baseline.
func NewManycoreNIC(cfg ManycoreConfig, src engine.Source) *ManycoreNIC {
	if cfg.Cores < 1 {
		panic("baseline: manycore with no cores")
	}
	if cfg.QueueCap < 2 {
		cfg.QueueCap = 16
	}
	k := sim.NewKernel(sim.Frequency(cfg.FreqHz))
	m := &ManycoreNIC{
		cfg:     cfg,
		kernel:  k,
		pacer:   newPacer(0, cfg.LineRateGbps, cfg.FreqHz, src),
		HostLat: core.NewLatencyCollector(),
		ctx:     engine.Ctx{RNG: sim.NewRNG(cfg.Seed)},
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &mcCore{q: sim.NewFIFO[*packet.Message](cfg.QueueCap)}
		k.Register(c.q)
		m.cores = append(m.cores, c)
	}
	for _, spec := range cfg.Offloads {
		o := &mcOffload{spec: spec, q: sim.NewFIFO[*mcRequest](cfg.QueueCap)}
		k.Register(o.q)
		m.offs = append(m.offs, o)
	}
	k.Register(sim.TickFunc(m.tick))
	return m
}

func (m *ManycoreNIC) offloadByName(name string) *mcOffload {
	for _, o := range m.offs {
		if o.spec.Eng.Name() == name {
			return o
		}
	}
	return nil
}

// unmet mirrors the pipeline baseline's needs derivation, but in offload
// declaration order (the manycore core can invoke offloads in any order,
// so layout mismatches cost nothing here — the cost is orchestration).
func (m *ManycoreNIC) unmet(msg *packet.Message) string {
	if msg.Needs == nil {
		needs := []string{}
		for _, o := range m.offs {
			if o.spec.Needs(msg) {
				needs = append(needs, o.spec.Eng.Name())
			}
		}
		msg.Needs = needs
	}
	if len(msg.Needs) == 0 {
		return ""
	}
	return msg.Needs[0]
}

func (m *ManycoreNIC) tick(cycle uint64) {
	m.ctx.Now = cycle

	// Offload engines serve queued requests.
	for _, o := range m.offs {
		if o.cur != nil {
			if o.busy > 0 {
				o.busy--
			}
			if o.busy == 0 {
				req := o.cur
				markDone(req.msg, o.spec.Eng.Name())
				if outs := o.spec.Eng.Process(&m.ctx, req.msg); len(outs) > 0 {
					req.msg = outs[0].Msg
				}
				// Response travels back to the core.
				req.delay = m.cfg.HopCycles
				req.core.pendingResp = req
				o.cur = nil
			}
		}
		if o.cur == nil && o.q.CanPop() {
			o.cur = o.q.Pop()
			// Request hop delay plus engine service time.
			o.busy = m.cfg.HopCycles + o.spec.Eng.ServiceCycles(o.cur.msg)
			if o.busy == 0 {
				o.busy = 1
			}
		}
	}

	// Cores run orchestration and blocking offload calls.
	for _, c := range m.cores {
		if c.pendingResp != nil {
			if c.pendingResp.delay > 0 {
				c.pendingResp.delay--
			}
			if c.pendingResp.delay == 0 {
				c.cur = c.pendingResp.msg
				c.pendingResp = nil
				c.waiting = false
				c.busy = 0 // continue orchestration: next need or finish
			}
		}
		if c.waiting {
			continue
		}
		if c.cur != nil {
			if c.busy > 0 {
				c.busy--
				continue
			}
			need := m.unmet(c.cur)
			if need == "" {
				c.cur.Done = cycle
				m.HostLat.Deliver(c.cur, cycle)
				c.cur = nil
			} else if o := m.offloadByName(need); o != nil && o.q.CanPush() {
				o.q.Push(&mcRequest{msg: c.cur, core: c, delay: m.cfg.HopCycles})
				c.waiting = true
				c.cur = nil
			}
			// Offload queue full: retry next cycle.
			continue
		}
		if c.q.CanPop() {
			c.cur = c.q.Pop()
			c.busy = m.cfg.OrchestrationCycles
			if c.busy == 0 {
				c.busy = 1
			}
		}
	}

	// Dispatcher: spray arrivals round-robin (the hardware classifier
	// cannot parse deeply enough to do more, §2.3.2).
	for _, msg := range m.pacer.poll(cycle) {
		placed := false
		for i := 0; i < len(m.cores); i++ {
			c := m.cores[(m.rr+i)%len(m.cores)]
			if c.q.CanPush() {
				c.q.Push(msg)
				m.rr = (m.rr + i + 1) % len(m.cores)
				placed = true
				break
			}
		}
		if !placed {
			m.DispatchDrops++
		}
	}
}

// Run advances the simulation.
func (m *ManycoreNIC) Run(cycles uint64) { m.kernel.Run(cycles) }

// Now returns the current cycle.
func (m *ManycoreNIC) Now() uint64 { return m.kernel.Now() }

// RxCount returns the number of packets admitted from the wire.
func (m *ManycoreNIC) RxCount() uint64 { return m.pacer.rx() }
