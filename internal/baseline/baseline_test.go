package baseline

import (
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

const testFreq = 500e6

// mixSource yields a blend of plain and ESP-encrypted small packets.
func mixSource(count uint64, wanShare float64, seed uint64) engine.Source {
	return workload.NewKVSStream(workload.KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: 5, FreqHz: testFreq,
		Keys: 64, GetRatio: 1.0, WANShare: wanShare,
		ValueBytes: 128, Count: count, Seed: seed,
	})
}

// slowIPSec is an IPSec-like engine slow enough to congest a pipeline.
func slowIPSec() PipeStageSpec {
	return PipeStageSpec{
		Eng:   engine.NewByteRateEngine("ipsec", 0.5, 50, nil), // 2 cycles/byte
		Needs: NeedIPSec,
	}
}

func fastChecksum() PipeStageSpec {
	return PipeStageSpec{Eng: engine.NewChecksumEngine(64), Needs: NeedAll}
}

func TestPipelineDeliversAll(t *testing.T) {
	cfg := PipelineConfig{
		FreqHz: testFreq, LineRateGbps: 40,
		Stages: []PipeStageSpec{fastChecksum(), slowIPSec()},
	}
	p := NewPipelineNIC(cfg, mixSource(30, 0.5, 1))
	p.Run(2_000_000)
	if p.HostLat.Count != 30 {
		t.Fatalf("delivered %d/30", p.HostLat.Count)
	}
	if p.Unservable != 0 {
		t.Errorf("unservable = %d", p.Unservable)
	}
}

func TestPipelineHOLBlocking(t *testing.T) {
	// Plain packets (tenant 1) share the pipeline with encrypted ones
	// (tenant 2): without bypass, the slow IPSec stage head-of-line
	// blocks traffic that does not need it; bypass wires remove the
	// penalty (§2.3.1).
	run := func(bypass bool) (plainP90 float64, delivered uint64) {
		mk := func(tenant uint16, wan float64, seed uint64) engine.Source {
			return workload.NewKVSStream(workload.KVSTenantConfig{
				Tenant: tenant, Class: packet.ClassLatency,
				RateGbps: 1, FreqHz: testFreq, Poisson: true,
				Keys: 64, GetRatio: 1.0, WANShare: wan,
				ValueBytes: 128, Seed: seed,
			})
		}
		cfg := PipelineConfig{
			FreqHz: testFreq, LineRateGbps: 40,
			Stages: []PipeStageSpec{slowIPSec()},
			Bypass: bypass,
		}
		p := NewPipelineNIC(cfg, workload.NewMerge(mk(1, 0, 9), mk(2, 1.0, 10)))
		p.Run(500_000)
		return p.HostLat.Tenant(1).Quantile(0.9), p.HostLat.Count
	}
	blocked, n1 := run(false)
	bypassed, n2 := run(true)
	if n1 < 100 || n2 < 100 {
		t.Fatalf("too few deliveries: %d, %d", n1, n2)
	}
	if bypassed*2 >= blocked {
		t.Errorf("bypass did not relieve HOL blocking: plain p90 %v (bypass) vs %v (blocked)", bypassed, blocked)
	}
}

func TestPipelineOrderMismatchRecirculates(t *testing.T) {
	// Pipeline order is A then B; packets requiring B before A must
	// recirculate through the whole pipeline.
	a := PipeStageSpec{Eng: engine.NewByteRateEngine("A", 64, 1, nil), Needs: NeedAll}
	bEng := engine.NewByteRateEngine("B", 64, 1, nil)
	b := PipeStageSpec{Eng: bEng, Needs: NeedAll}
	cfg := PipelineConfig{
		FreqHz: testFreq, LineRateGbps: 40,
		Stages:      []PipeStageSpec{a, b},
		Recirculate: true,
	}
	src := &taggedSource{inner: mixSource(20, 0, 3), chain: []string{"B", "A"}}
	p := NewPipelineNIC(cfg, src)
	p.Run(2_000_000)
	if p.HostLat.Count != 20 {
		t.Fatalf("delivered %d/20", p.HostLat.Count)
	}
	if p.Recirculations != 20 {
		t.Errorf("recirculations = %d, want 20 (one loop each)", p.Recirculations)
	}
}

func TestPipelineOrderMismatchWithoutRecirculationFails(t *testing.T) {
	a := PipeStageSpec{Eng: engine.NewByteRateEngine("A", 64, 1, nil), Needs: NeedAll}
	b := PipeStageSpec{Eng: engine.NewByteRateEngine("B", 64, 1, nil), Needs: NeedAll}
	cfg := PipelineConfig{
		FreqHz: testFreq, LineRateGbps: 40,
		Stages: []PipeStageSpec{a, b},
	}
	src := &taggedSource{inner: mixSource(10, 0, 3), chain: []string{"B", "A"}}
	p := NewPipelineNIC(cfg, src)
	p.Run(1_000_000)
	if p.Unservable != 10 {
		t.Errorf("unservable = %d, want 10", p.Unservable)
	}
}

// taggedSource pre-tags messages with an explicit required chain.
type taggedSource struct {
	inner engine.Source
	chain []string
}

func (s *taggedSource) Poll(now uint64) *packet.Message {
	m := s.inner.Poll(now)
	if m != nil {
		needs := make([]string, len(s.chain))
		copy(needs, s.chain)
		m.Needs = needs
	}
	return m
}

func TestManycoreOrchestrationLatencyFloor(t *testing.T) {
	// Even with idle cores and no offloads, every packet pays the
	// orchestration cost — the §2.3.2 limitation (10 µs = 5000 cycles at
	// 500 MHz).
	cfg := ManycoreConfig{
		FreqHz: testFreq, LineRateGbps: 40,
		Cores: 8, OrchestrationCycles: 5000, HopCycles: 2,
	}
	m := NewManycoreNIC(cfg, mixSource(20, 0, 5))
	m.Run(2_000_000)
	if m.HostLat.Count != 20 {
		t.Fatalf("delivered %d/20", m.HostLat.Count)
	}
	if p50 := m.HostLat.All.P50(); p50 < 5000 {
		t.Errorf("p50 = %v cycles, want >= orchestration floor 5000", p50)
	}
	if m.DispatchDrops != 0 {
		t.Errorf("dispatch drops = %d", m.DispatchDrops)
	}
}

func TestManycoreInvokesOffloads(t *testing.T) {
	ipsec := slowIPSec()
	cfg := ManycoreConfig{
		FreqHz: testFreq, LineRateGbps: 40,
		Cores: 4, OrchestrationCycles: 1000, HopCycles: 3,
		Offloads: []PipeStageSpec{ipsec},
	}
	m := NewManycoreNIC(cfg, mixSource(30, 1.0, 7)) // all encrypted
	m.Run(4_000_000)
	if m.HostLat.Count != 30 {
		t.Fatalf("delivered %d/30", m.HostLat.Count)
	}
	// Encrypted packets pay orchestration + request/response hops +
	// crypto service.
	if p50 := m.HostLat.All.P50(); p50 < 1000+6 {
		t.Errorf("p50 = %v, below orchestration+hops", p50)
	}
}

func TestManycoreThroughputScalesWithCores(t *testing.T) {
	run := func(cores int) uint64 {
		cfg := ManycoreConfig{
			FreqHz: testFreq, LineRateGbps: 40,
			Cores: cores, OrchestrationCycles: 5000, HopCycles: 2,
			QueueCap: 4,
		}
		m := NewManycoreNIC(cfg, mixSource(0, 0, 11)) // unlimited
		m.Run(200_000)
		return m.HostLat.Count
	}
	one, eight := run(1), run(8)
	if eight < 6*one {
		t.Errorf("8 cores served %d, 1 core %d; want ~8x scaling", eight, one)
	}
}

func TestRMTOnlyPuntsComplexWork(t *testing.T) {
	cfg := RMTOnlyConfig{
		FreqHz: testFreq, LineRateGbps: 40,
		NeedsComplex:       NeedIPSec,
		PCIeCycles:         300,
		HostCycles:         500,
		HostComplexPerByte: 10, // software crypto is slow
		HostCores:          2,
	}
	r := NewRMTOnlyNIC(cfg, mixSource(40, 0.5, 13))
	r.Run(4_000_000)
	if r.HostLat.Count != 40 {
		t.Fatalf("delivered %d/40", r.HostLat.Count)
	}
	if r.Punted < 10 || r.Punted > 30 {
		t.Errorf("punted = %d of 40 at 50%% WAN", r.Punted)
	}
	// Complex traffic pays the software-offload tax: overall p99 far
	// above the plain-path floor.
	floor := float64(cfg.PCIeCycles + cfg.HostCycles)
	if p99 := r.HostLat.All.P99(); p99 < floor+1000 {
		t.Errorf("p99 = %v, want software-crypto tax above %v", p99, floor)
	}
}

func TestRMTOnlyLineRateForSimpleTraffic(t *testing.T) {
	cfg := RMTOnlyConfig{
		FreqHz: testFreq, LineRateGbps: 40,
		HostCycles: 10, HostCores: 8,
	}
	r := NewRMTOnlyNIC(cfg, mixSource(100, 0, 17))
	r.Run(2_000_000)
	if r.HostLat.Count != 100 || r.QueueDrops != 0 {
		t.Errorf("delivered %d drops %d", r.HostLat.Count, r.QueueDrops)
	}
}

func TestBaselineValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"pipeline no stages": func() { NewPipelineNIC(PipelineConfig{FreqHz: 1e9, LineRateGbps: 1}, nil) },
		"manycore no cores":  func() { NewManycoreNIC(ManycoreConfig{FreqHz: 1e9, LineRateGbps: 1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
