package baseline

import (
	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// PipeStageSpec declares one offload of the fixed pipeline.
type PipeStageSpec struct {
	// Eng supplies the service-time model and transform.
	Eng engine.Engine
	// Needs decides whether a packet requires this offload.
	Needs Need
}

// PipelineConfig parameterizes the Fig 2a baseline.
type PipelineConfig struct {
	FreqHz       float64
	LineRateGbps float64
	// Stages is the fixed offload order between the wire and the host.
	Stages []PipeStageSpec
	// Bypass adds the bypass wires of §2.3.1: packets that do not need a
	// stage take a parallel path around it instead of queueing behind
	// packets in service.
	Bypass bool
	// Recirculate lets packets whose required offload order disagrees
	// with the pipeline layout loop back to the entrance, consuming
	// ingress bandwidth; without it such packets are delivered with
	// unmet needs and counted.
	Recirculate bool
	// QueueCap is the per-stage FIFO depth.
	QueueCap int
	Seed     uint64
}

// PipelineNIC is the Fig 2a pipelined architecture: a static chain of
// offloads between the wire and the host.
type PipelineNIC struct {
	cfg     PipelineConfig
	kernel  *sim.Kernel
	pacer   *pacer
	stages  []*pipeStage
	recircQ *sim.FIFO[*packet.Message]
	entryQ  *sim.FIFO[*packet.Message]
	exitQ   *sim.FIFO[*packet.Message]

	// HostLat collects wire-to-host-delivery latency.
	HostLat *core.LatencyCollector
	// Recirculations counts full-pipeline loops.
	Recirculations uint64
	// Unservable counts packets delivered with unmet offload needs.
	Unservable uint64
	// EntryDrops counts fresh arrivals lost because the entrance queue
	// was full (the wire outpacing the pipeline).
	EntryDrops uint64

	preferRecirc bool
	ctx          engine.Ctx
}

type pipeStage struct {
	spec      PipeStageSpec
	in        *sim.FIFO[*packet.Message]
	bypass    *sim.FIFO[*packet.Message] // nil without bypass wires
	cur       *packet.Message
	busy      uint64
	inService bool       // cur is being processed, not just forwarded
	next      *pipeStage // nil for the last stage
}

// NewPipelineNIC builds the baseline. src feeds the single modeled port.
func NewPipelineNIC(cfg PipelineConfig, src engine.Source) *PipelineNIC {
	if len(cfg.Stages) == 0 {
		panic("baseline: pipeline with no stages")
	}
	if cfg.QueueCap < 2 {
		cfg.QueueCap = 16
	}
	k := sim.NewKernel(sim.Frequency(cfg.FreqHz))
	p := &PipelineNIC{
		cfg:     cfg,
		kernel:  k,
		pacer:   newPacer(0, cfg.LineRateGbps, cfg.FreqHz, src),
		HostLat: core.NewLatencyCollector(),
		recircQ: sim.NewFIFO[*packet.Message](cfg.QueueCap),
		entryQ:  sim.NewFIFO[*packet.Message](cfg.QueueCap),
		exitQ:   sim.NewFIFO[*packet.Message](cfg.QueueCap),
		ctx:     engine.Ctx{RNG: sim.NewRNG(cfg.Seed)},
	}
	k.Register(p.recircQ, p.entryQ, p.exitQ)
	p.stages = make([]*pipeStage, len(cfg.Stages))
	for i := range cfg.Stages {
		s := &pipeStage{
			spec: cfg.Stages[i],
			in:   sim.NewFIFO[*packet.Message](cfg.QueueCap),
		}
		k.Register(s.in)
		if cfg.Bypass {
			s.bypass = sim.NewFIFO[*packet.Message](cfg.QueueCap)
			k.Register(s.bypass)
		}
		p.stages[i] = s
	}
	for i := 0; i+1 < len(p.stages); i++ {
		p.stages[i].next = p.stages[i+1]
	}
	k.Register(sim.TickFunc(p.tick))
	return p
}

// unmet returns the message's next required offload name, or "". Needs
// are derived lazily from the stage predicates, in pipeline order, unless
// the workload pre-tagged the message (out-of-order experiments).
func (p *PipelineNIC) unmet(m *packet.Message) string {
	if m.Needs == nil {
		needs := []string{}
		for _, s := range p.stages {
			if s.spec.Needs(m) {
				needs = append(needs, s.spec.Eng.Name())
			}
		}
		m.Needs = needs // non-nil even when empty: derived once
	}
	if len(m.Needs) == 0 {
		return ""
	}
	return m.Needs[0]
}

func markDone(m *packet.Message, name string) {
	if len(m.Needs) > 0 && m.Needs[0] == name {
		m.Needs = m.Needs[1:]
	}
}

func (p *PipelineNIC) tick(cycle uint64) {
	p.ctx.Now = cycle

	// Exit: finish, or recirculate when needs remain.
	for p.exitQ.CanPop() {
		m, _ := p.exitQ.Peek()
		if p.unmet(m) != "" && p.cfg.Recirculate {
			if !p.recircQ.CanPush() {
				break // recirculation path blocked: exit stalls
			}
			p.exitQ.Pop()
			p.Recirculations++
			p.recircQ.Push(m)
			continue
		}
		p.exitQ.Pop()
		if p.unmet(m) != "" {
			p.Unservable++
		}
		m.Done = cycle
		p.HostLat.Deliver(m, cycle)
	}

	// Stages, last to first.
	for i := len(p.stages) - 1; i >= 0; i-- {
		p.stageTick(p.stages[i])
	}

	// Fresh arrivals at line rate.
	for _, m := range p.pacer.poll(cycle) {
		if p.entryQ.CanPush() {
			p.entryQ.Push(m)
		} else {
			p.EntryDrops++
		}
	}

	// Entrance: one admission per cycle, alternating between fresh and
	// recirculated traffic when both wait (recirculation steals ingress
	// bandwidth, §2.3.1).
	var q *sim.FIFO[*packet.Message]
	switch {
	case p.preferRecirc && p.recircQ.CanPop():
		q = p.recircQ
	case p.entryQ.CanPop():
		q = p.entryQ
	case p.recircQ.CanPop():
		q = p.recircQ
	}
	if q != nil {
		m, _ := q.Peek()
		if p.admit(p.stages[0], m) {
			q.Pop()
			p.preferRecirc = !p.preferRecirc
		}
	}
}

// admit places a message into a stage's service or bypass queue.
func (p *PipelineNIC) admit(s *pipeStage, m *packet.Message) bool {
	if s.bypass != nil && p.unmet(m) != s.spec.Eng.Name() {
		if !s.bypass.CanPush() {
			return false
		}
		s.bypass.Push(m)
		return true
	}
	if !s.in.CanPush() {
		return false
	}
	s.in.Push(m)
	return true
}

// emit forwards a message beyond stage s.
func (p *PipelineNIC) emit(s *pipeStage, m *packet.Message) bool {
	if s.next == nil {
		if !p.exitQ.CanPush() {
			return false
		}
		p.exitQ.Push(m)
		return true
	}
	return p.admit(s.next, m)
}

func (p *PipelineNIC) stageTick(s *pipeStage) {
	// Bypass path forwards one message per cycle.
	if s.bypass != nil && s.bypass.CanPop() {
		m, _ := s.bypass.Peek()
		if p.emit(s, m) {
			s.bypass.Pop()
		}
	}
	// Service path.
	if s.cur != nil {
		if s.busy > 0 {
			s.busy--
		}
		if s.busy > 0 {
			return
		}
		m := s.cur
		if s.inService {
			markDone(m, s.spec.Eng.Name())
			if outs := s.spec.Eng.Process(&p.ctx, m); len(outs) > 0 {
				m = outs[0].Msg
			}
			s.inService = false
		}
		if !p.emit(s, m) {
			s.cur = m
			s.busy = 0 // retry emission next cycle: downstream HOL
			return
		}
		s.cur = nil
	}
	if s.cur == nil && s.in.CanPop() {
		m := s.in.Pop()
		s.cur = m
		if p.unmet(m) == s.spec.Eng.Name() {
			s.busy = s.spec.Eng.ServiceCycles(m)
			if s.busy == 0 {
				s.busy = 1
			}
			s.inService = true
		} else {
			s.busy = 1 // pure forwarding occupies the stage one cycle
			s.inService = false
		}
	}
}

// Run advances the simulation.
func (p *PipelineNIC) Run(cycles uint64) { p.kernel.Run(cycles) }

// Now returns the current cycle.
func (p *PipelineNIC) Now() uint64 { return p.kernel.Now() }

// RxCount returns the number of packets admitted from the wire.
func (p *PipelineNIC) RxCount() uint64 { return p.pacer.rx() }
