package baseline

import (
	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sim"
)

// RMTOnlyConfig parameterizes the Fig 2c (FlexNIC-style) baseline.
type RMTOnlyConfig struct {
	FreqHz       float64
	LineRateGbps float64
	// Program runs in the inline match+action pipeline (parse, steer,
	// simple rewrites — all at line rate).
	Program *rmt.Program
	// NeedsComplex marks traffic requiring an offload that cannot live
	// in an RMT pipeline (compression, encryption, DMA-waiting work,
	// §2.3.3); it is punted to host software.
	NeedsComplex Need
	// PCIeCycles is the DMA/PCIe round-trip cost of the punt.
	PCIeCycles uint64
	// HostCycles is the host software cost for ordinary packets;
	// HostComplexPerByte adds the software implementation of the missing
	// offload (e.g. software crypto) per payload byte.
	HostCycles         uint64
	HostComplexPerByte float64
	// HostCores bounds host-side parallelism.
	HostCores int
	// QueueCap bounds the host queue.
	QueueCap int
	Seed     uint64
}

// RMTOnlyNIC is the Fig 2c architecture: an inline RMT pipeline plus
// host-software fallback for everything the pipeline cannot express.
type RMTOnlyNIC struct {
	cfg    RMTOnlyConfig
	kernel *sim.Kernel
	pacer  *pacer
	pipe   *rmt.Pipeline
	hostQ  *sim.FIFO[*packet.Message]
	cores  []hostCore

	// HostLat collects wire-to-host-completion latency (including any
	// software offload work).
	HostLat *core.LatencyCollector
	// Punted counts packets that needed host software offloads.
	Punted uint64
	// QueueDrops counts host-queue overflows.
	QueueDrops uint64
}

type hostCore struct {
	cur  *packet.Message
	busy uint64
}

// NewRMTOnlyNIC builds the baseline.
func NewRMTOnlyNIC(cfg RMTOnlyConfig, src engine.Source) *RMTOnlyNIC {
	if cfg.Program == nil {
		// The program only needs to parse and pass; steering decisions
		// are modeled by NeedsComplex.
		cfg.Program = rmt.NewProgram(rmt.StandardParser(),
			[]*rmt.Table{rmt.NewTable("pass", rmt.MatchExact,
				[]rmt.FieldID{rmt.FieldMetaClass}, 0,
				rmt.NewAction("pass", rmt.OpPushHop{Engine: 1}))})
	}
	if cfg.NeedsComplex == nil {
		cfg.NeedsComplex = NeedNone
	}
	if cfg.HostCores < 1 {
		cfg.HostCores = 1
	}
	if cfg.QueueCap < 2 {
		cfg.QueueCap = 64
	}
	k := sim.NewKernel(sim.Frequency(cfg.FreqHz))
	r := &RMTOnlyNIC{
		cfg:     cfg,
		kernel:  k,
		pacer:   newPacer(0, cfg.LineRateGbps, cfg.FreqHz, src),
		pipe:    rmt.NewPipeline(cfg.Program, 1, 1),
		hostQ:   sim.NewFIFO[*packet.Message](cfg.QueueCap),
		cores:   make([]hostCore, cfg.HostCores),
		HostLat: core.NewLatencyCollector(),
	}
	k.Register(r.hostQ)
	k.Register(sim.TickFunc(r.tick))
	return r
}

func (r *RMTOnlyNIC) tick(cycle uint64) {
	// Host cores complete software work.
	for i := range r.cores {
		c := &r.cores[i]
		if c.cur != nil {
			c.busy--
			if c.busy == 0 {
				c.cur.Done = cycle
				r.HostLat.Deliver(c.cur, cycle)
				c.cur = nil
			}
		}
		if c.cur == nil && r.hostQ.CanPop() {
			m := r.hostQ.Pop()
			cycles := r.cfg.PCIeCycles + r.cfg.HostCycles
			if r.cfg.NeedsComplex(m) {
				r.Punted++
				cycles += uint64(r.cfg.HostComplexPerByte * float64(m.WireLen()))
			}
			if cycles == 0 {
				cycles = 1
			}
			c.cur = m
			c.busy = cycles
		}
	}

	// Pipeline output feeds the host queue.
	if res, ok := r.pipe.Tick(); ok {
		if r.hostQ.CanPush() {
			r.hostQ.Push(res.Msg)
		} else {
			r.QueueDrops++
		}
	}

	// Line-rate arrivals into the pipeline (1/cycle).
	for _, m := range r.pacer.poll(cycle) {
		if r.pipe.CanAccept() {
			r.pipe.Accept(m, cycle)
		} else {
			// A second same-cycle arrival waits in the MAC; this simple
			// model drops it instead (rare below line rate).
			r.QueueDrops++
		}
	}
}

// Run advances the simulation.
func (r *RMTOnlyNIC) Run(cycles uint64) { r.kernel.Run(cycles) }

// Now returns the current cycle.
func (r *RMTOnlyNIC) Now() uint64 { return r.kernel.Now() }

// RxCount returns the number of packets admitted from the wire.
func (r *RMTOnlyNIC) RxCount() uint64 { return r.pacer.rx() }
