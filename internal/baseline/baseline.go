// Package baseline implements the three existing programmable-NIC
// architectures of the paper's Figure 2, for quantifying the limitations
// PANIC overcomes (§2.3):
//
//   - PipelineNIC (Fig 2a): offloads in a fixed linear sequence — a
//     "bump-in-the-wire" chain. Every packet traverses every offload;
//     slow offloads head-of-line block unrelated traffic (unless bypass
//     wires are added), and chains whose order disagrees with the
//     physical layout must recirculate through the whole pipeline.
//
//   - ManycoreNIC (Fig 2b): packets are sprayed across embedded CPU
//     cores; a core orchestrates every offload interaction, adding ~10 µs
//     of per-packet latency (Firestone et al., cited in §2.3.2).
//
//   - RMTOnlyNIC (Fig 2c, FlexNIC-style): a line-rate match+action
//     pipeline that can parse and steer but cannot host offloads needing
//     buffering or DMA waits; such work is punted to host software.
//
// The baselines reuse the same engine service models, workload sources,
// and latency collectors as the PANIC assembly in internal/core, so
// comparisons isolate the architectural difference.
package baseline

import (
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
)

// Need reports whether a message needs a given offload on this pass.
type Need func(msg *packet.Message) bool

// NeedIPSec matches encrypted traffic.
func NeedIPSec(msg *packet.Message) bool {
	return msg.Pkt.Has(packet.LayerTypeESP)
}

// NeedNone matches nothing.
func NeedNone(*packet.Message) bool { return false }

// NeedAll matches everything.
func NeedAll(*packet.Message) bool { return true }

// pace wraps an engine.EthernetMAC's generator to pull line-rate-paced
// arrivals inside a baseline model.
type pacer struct {
	mac *engine.EthernetMAC
	ctx engine.Ctx
}

func newPacer(port int, lineRateGbps, freqHz float64, src engine.Source) *pacer {
	return &pacer{mac: engine.NewEthernetMAC(engine.MACConfig{
		Port: port, LineRateGbps: lineRateGbps, FreqHz: freqHz,
	}, src, nil)}
}

// poll returns the packets arriving this cycle, line-rate paced.
func (p *pacer) poll(now uint64) []*packet.Message {
	p.ctx.Now = now
	outs := p.mac.Generate(&p.ctx)
	if len(outs) == 0 {
		return nil
	}
	msgs := make([]*packet.Message, len(outs))
	for i, o := range outs {
		msgs[i] = o.Msg
	}
	return msgs
}

// rx returns the count of packets the pacer has admitted.
func (p *pacer) rx() uint64 { return p.mac.RxCount() }
