// Package analytic implements the closed-form performance models behind the
// paper's evaluation: Table 2 (packet rates needed for line-rate forwarding
// of minimum-size packets) and Table 3 (on-chip 2D-mesh bandwidth and
// sustainable offload-chain length), plus the RMT pipeline throughput model
// of §4.2 (F·P packets per second for P parallel pipelines at F Hz).
package analytic

import (
	"fmt"
	"math"
)

// MinWireBytes is the wire occupancy of a minimum-size Ethernet frame:
// 64-byte frame + 8-byte preamble/SFD + 12-byte inter-frame gap.
const MinWireBytes = 84

// MinPPS returns the aggregate packets per second needed to forward
// minimum-size packets at line rate in both RX and TX directions across the
// given number of ports (the paper's Table 2).
func MinPPS(lineRateGbps float64, ports int) float64 {
	perDirection := lineRateGbps * 1e9 / (MinWireBytes * 8)
	return perDirection * 2 * float64(ports)
}

// RoundSigFigs rounds v to n significant figures, matching the paper's
// presentation (238.1 Mpps -> 240 Mpps).
func RoundSigFigs(v float64, n int) float64 {
	if v == 0 {
		return 0
	}
	mag := math.Pow(10, float64(n)-math.Ceil(math.Log10(math.Abs(v))))
	return math.Round(v*mag) / mag
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	LineRateGbps float64
	Ports        int
	// MppsExact is the computed requirement; MppsPaper is the same value
	// rounded to two significant figures, as printed in the paper.
	MppsExact, MppsPaper float64
}

// Table2 returns the paper's Table 2 rows.
func Table2() []Table2Row {
	configs := []struct {
		rate  float64
		ports int
	}{{40, 2}, {40, 4}, {100, 1}, {100, 2}}
	rows := make([]Table2Row, len(configs))
	for i, c := range configs {
		mpps := MinPPS(c.rate, c.ports) / 1e6
		rows[i] = Table2Row{
			LineRateGbps: c.rate,
			Ports:        c.ports,
			MppsExact:    mpps,
			MppsPaper:    RoundSigFigs(mpps, 2),
		}
	}
	return rows
}

// RMTPipelinePPS returns the packet rate a heavyweight RMT pipeline can
// sustain: each pipeline accepts one packet per cycle, so P parallel
// pipelines at frequency freqHz process freqHz·P packets per second (§4.2).
func RMTPipelinePPS(freqHz float64, pipelines int) float64 {
	return freqHz * float64(pipelines)
}

// RMTPassBudget returns the average number of RMT-pipeline passes per
// packet that the pipeline configuration can afford while the NIC sustains
// line rate with minimum-size packets (§4.2: "the heavyweight RMT
// pipeline's throughput must be equal to or greater [than] the NIC's
// line-rate multiplied by the average number of times each packet is
// processed by the pipeline").
func RMTPassBudget(freqHz float64, pipelines int, lineRateGbps float64, ports int) float64 {
	return RMTPipelinePPS(freqHz, pipelines) / MinPPS(lineRateGbps, ports)
}

// MeshParams describes an on-chip 2D mesh configuration (the paper's
// Table 3 rows are k∈{6,8}, width∈{64,128} bits, 500 MHz).
type MeshParams struct {
	K            int     // mesh is K×K
	WidthBits    int     // channel width
	FreqHz       float64 // clock frequency
	LineRateGbps float64 // per-port Ethernet line rate
	Ports        int     // Ethernet port count
}

// ChannelGbps returns the bandwidth of one mesh channel.
func (m MeshParams) ChannelGbps() float64 {
	return float64(m.WidthBits) * m.FreqHz / 1e9
}

// BisectionGbps returns the mesh bisection bandwidth as the paper counts
// it: cutting a K×K mesh in half crosses K channels in each direction, so
// 2K channels total (Table 3: 6×6 at 64 bit, 500 MHz -> 384 Gbps).
func (m MeshParams) BisectionGbps() float64 {
	return 2 * float64(m.K) * m.ChannelGbps()
}

// CapacityGbps returns the all-to-all network throughput the paper's
// Table 3 chain lengths imply: 8K channel-bandwidth units, i.e. twice the
// one-axis bisection bound, which counts the bisections of both mesh axes
// (uniform traffic loads the vertical and horizontal cuts equally under
// dimension-order routing, and each provides 4K·w·f of one-axis capacity).
// All four Table 3 rows are reproduced exactly by this definition.
func (m MeshParams) CapacityGbps() float64 {
	return 8 * float64(m.K) * m.ChannelGbps()
}

// UniformBisectionBoundGbps returns the conservative single-axis
// uniform-random saturation bound: with half of all traffic crossing one
// bisection, aggregate injection cannot exceed twice the one-axis bisection
// bandwidth (4K·w·f). The flit-level simulator in internal/noc lands
// between this bound and CapacityGbps, depending on traffic locality.
func (m MeshParams) UniformBisectionBoundGbps() float64 {
	return 4 * float64(m.K) * m.ChannelGbps()
}

// OverheadTraversals is the number of non-offload network traversals every
// packet makes regardless of its chain (Ethernet MAC -> RMT pipeline,
// RMT -> first engine on RX, and the mirrored pair on TX). The paper's
// Table 3 chain lengths correspond to exactly 4 such traversals.
const OverheadTraversals = 4

// AggregateLineGbps returns the total line-rate traffic the NIC must carry:
// both directions across all ports.
func (m MeshParams) AggregateLineGbps() float64 {
	return 2 * m.LineRateGbps * float64(m.Ports)
}

// ChainLen returns the average offload-chain length a packet can be
// forwarded through while the mesh still sustains line rate in both
// directions (Table 3, "Chain Len"):
//
//	chainLen = capacity/aggregateLineRate − OverheadTraversals
func (m MeshParams) ChainLen() float64 {
	return m.CapacityGbps()/m.AggregateLineGbps() - OverheadTraversals
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Params        MeshParams
	BisectionGbps float64
	CapacityGbps  float64
	ChainLen      float64
}

// Table3 returns the paper's Table 3 rows (two 40 Gbps ports and two
// 100 Gbps ports over 6×6 and 8×8 meshes at 500 MHz).
func Table3() []Table3Row {
	configs := []MeshParams{
		{K: 6, WidthBits: 64, FreqHz: 500e6, LineRateGbps: 40, Ports: 2},
		{K: 8, WidthBits: 64, FreqHz: 500e6, LineRateGbps: 40, Ports: 2},
		{K: 6, WidthBits: 128, FreqHz: 500e6, LineRateGbps: 100, Ports: 2},
		{K: 8, WidthBits: 128, FreqHz: 500e6, LineRateGbps: 100, Ports: 2},
	}
	rows := make([]Table3Row, len(configs))
	for i, p := range configs {
		rows[i] = Table3Row{
			Params:        p,
			BisectionGbps: p.BisectionGbps(),
			CapacityGbps:  p.CapacityGbps(),
			ChainLen:      p.ChainLen(),
		}
	}
	return rows
}

// Topology label, e.g. "6x6 Mesh".
func (m MeshParams) Topology() string { return fmt.Sprintf("%dx%d Mesh", m.K, m.K) }

// AvgHops returns the mean hop distance between two uniformly random
// distinct nodes of the K×K mesh under dimension-order routing: per
// dimension the mean distance over ordered pairs is (K²−1)/(3K).
func (m MeshParams) AvgHops() float64 {
	k := float64(m.K)
	return 2 * (k*k - 1) / (3 * k)
}

// LinkCount returns the number of unidirectional mesh channels:
// 2 directions × 2 axes × K rows × (K−1) links.
func (m MeshParams) LinkCount() int { return 4 * m.K * (m.K - 1) }
