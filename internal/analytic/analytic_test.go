package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable2MatchesPaper verifies every row of the paper's Table 2.
func TestTable2MatchesPaper(t *testing.T) {
	want := []struct {
		rate  float64
		ports int
		mpps  float64
	}{
		{40, 2, 240},
		{40, 4, 480},
		{100, 1, 300},
		{100, 2, 600},
	}
	rows := Table2()
	if len(rows) != len(want) {
		t.Fatalf("Table2 has %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.LineRateGbps != w.rate || r.Ports != w.ports {
			t.Errorf("row %d config = %v/%d, want %v/%d", i, r.LineRateGbps, r.Ports, w.rate, w.ports)
		}
		if r.MppsPaper != w.mpps {
			t.Errorf("row %d: paper-rounded %v Mpps, want %v", i, r.MppsPaper, w.mpps)
		}
	}
	// Exact values: 40G one direction one port = 40e9/672 = 59.52 Mpps.
	if !almostEqual(rows[0].MppsExact, 238.095, 0.01) {
		t.Errorf("40Gx2 exact = %v, want ~238.095", rows[0].MppsExact)
	}
	if !almostEqual(rows[3].MppsExact, 595.238, 0.01) {
		t.Errorf("100Gx2 exact = %v, want ~595.238", rows[3].MppsExact)
	}
}

// TestTable3MatchesPaper verifies every row of the paper's Table 3.
func TestTable3MatchesPaper(t *testing.T) {
	want := []struct {
		k, width  int
		bisection float64
		chainLen  float64
	}{
		{6, 64, 384, 5.60},
		{8, 64, 512, 8.80},
		{6, 128, 768, 3.68},
		{8, 128, 1024, 6.24},
	}
	rows := Table3()
	if len(rows) != len(want) {
		t.Fatalf("Table3 has %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Params.K != w.k || r.Params.WidthBits != w.width {
			t.Errorf("row %d config = %dx%d/%db", i, r.Params.K, r.Params.K, r.Params.WidthBits)
		}
		if !almostEqual(r.BisectionGbps, w.bisection, 1e-9) {
			t.Errorf("row %d bisection = %v, want %v", i, r.BisectionGbps, w.bisection)
		}
		if !almostEqual(r.ChainLen, w.chainLen, 1e-9) {
			t.Errorf("row %d chain length = %v, want %v", i, r.ChainLen, w.chainLen)
		}
	}
}

// TestRMTThroughputClaims verifies the two §4.2 worked examples.
func TestRMTThroughputClaims(t *testing.T) {
	// "Two 500MHz pipelines can process packets at a rate of 1000Mpps."
	if got := RMTPipelinePPS(500e6, 2); got != 1000e6 {
		t.Errorf("2x500MHz = %v pps, want 1e9", got)
	}
	// "With two RMT pipelines and a 500 MHz clock frequency, PANIC can
	// forward every packet through the RMT pipeline at least once and
	// still sustain line-rate even for a two port 100 Gbps NIC."
	if budget := RMTPassBudget(500e6, 2, 100, 2); budget < 1 {
		t.Errorf("pass budget for 2x100G w/ 2 pipelines = %v, want >= 1", budget)
	}
	// "it would not be possible to send each packet to even a single
	// offload and sustain line-rate" if every chain hop needed an RMT
	// pass: one offload means >= 2 passes, and the budget is below 2.
	if budget := RMTPassBudget(500e6, 2, 100, 2); budget >= 2 {
		t.Errorf("pass budget = %v; paper claims < 2", budget)
	}
}

func TestMinPPSScaling(t *testing.T) {
	// Linear in both rate and ports.
	base := MinPPS(10, 1)
	if !almostEqual(MinPPS(20, 1), 2*base, 1) {
		t.Error("MinPPS not linear in rate")
	}
	if !almostEqual(MinPPS(10, 3), 3*base, 1) {
		t.Error("MinPPS not linear in ports")
	}
}

func TestRoundSigFigs(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{238.095, 240}, {476.19, 480}, {297.62, 300}, {595.24, 600},
		{0, 0}, {1.04, 1}, {-238.095, -240},
	}
	for _, c := range cases {
		if got := RoundSigFigs(c.in, 2); got != c.want {
			t.Errorf("RoundSigFigs(%v, 2) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeshGeometry(t *testing.T) {
	m := MeshParams{K: 6, WidthBits: 64, FreqHz: 500e6}
	if got := m.ChannelGbps(); got != 32 {
		t.Errorf("ChannelGbps = %v, want 32", got)
	}
	if got := m.LinkCount(); got != 120 {
		t.Errorf("LinkCount = %v, want 120", got)
	}
	// Per-dimension mean distance (k²−1)/3k = 35/18; two dimensions.
	if got := m.AvgHops(); !almostEqual(got, 2*35.0/18.0, 1e-12) {
		t.Errorf("AvgHops = %v, want %v", got, 2*35.0/18.0)
	}
	if m.Topology() != "6x6 Mesh" {
		t.Errorf("Topology = %q", m.Topology())
	}
}

func TestCapacityOrdering(t *testing.T) {
	// Conservative bound < paper capacity, both positive, for all rows.
	for _, r := range Table3() {
		lo, hi := r.Params.UniformBisectionBoundGbps(), r.Params.CapacityGbps()
		if lo <= 0 || hi <= 0 || lo >= hi {
			t.Errorf("%s: bound %v !< capacity %v", r.Params.Topology(), lo, hi)
		}
		if hi != 2*lo {
			t.Errorf("%s: capacity %v != 2x bound %v", r.Params.Topology(), hi, lo)
		}
	}
}

// TestPropertyChainLenMonotonicity: chain length grows with mesh size and
// channel width, shrinks with line rate, for arbitrary valid parameters.
func TestPropertyChainLenMonotonicity(t *testing.T) {
	prop := func(kSeed, widthSeed uint8, rateSeed uint8) bool {
		k := 2 + int(kSeed%14)
		width := 32 * (1 + int(widthSeed%8))
		rate := 10 * (1 + float64(rateSeed%39))
		m := MeshParams{K: k, WidthBits: width, FreqHz: 500e6, LineRateGbps: rate, Ports: 2}
		bigger := m
		bigger.K = k + 1
		wider := m
		wider.WidthBits = width + 32
		faster := m
		faster.LineRateGbps = rate + 10
		return bigger.ChainLen() > m.ChainLen() &&
			wider.ChainLen() > m.ChainLen() &&
			faster.ChainLen() < m.ChainLen()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPassBudgetConsistency: the pass budget equals pipeline pps
// over required pps for arbitrary parameters.
func TestPropertyPassBudgetConsistency(t *testing.T) {
	prop := func(freqSeed, pipeSeed, rateSeed, portSeed uint8) bool {
		freq := 100e6 * (1 + float64(freqSeed%20))
		pipes := 1 + int(pipeSeed%8)
		rate := 10 * (1 + float64(rateSeed%39))
		ports := 1 + int(portSeed%4)
		b := RMTPassBudget(freq, pipes, rate, ports)
		return almostEqual(b*MinPPS(rate, ports), RMTPipelinePPS(freq, pipes), 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
