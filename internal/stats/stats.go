// Package stats provides the measurement primitives used across the
// simulator: counters, rate meters, latency histograms with percentile
// queries, and aligned-table formatting for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Increments are atomic
// so a counter may be shared by components that Eval in parallel: addition
// commutes, so the end-of-cycle value is identical to sequential ticking
// regardless of increment interleaving. Reads are meant for between-cycle
// reporting, not mid-Eval decisions.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge tracks a running mean of sampled values (e.g. queue occupancy).
type Gauge struct {
	sum float64
	n   uint64
	max float64
}

// Sample records one observation.
func (g *Gauge) Sample(v float64) {
	g.sum += v
	g.n++
	if v > g.max {
		g.max = v
	}
}

// Mean returns the mean of all observations (0 when empty).
func (g *Gauge) Mean() float64 {
	if g.n == 0 {
		return 0
	}
	return g.sum / float64(g.n)
}

// Max returns the maximum observation (0 when empty).
func (g *Gauge) Max() float64 { return g.max }

// Count returns the number of observations.
func (g *Gauge) Count() uint64 { return g.n }

// Meter converts a byte/packet count observed over a cycle window into a
// rate at a given clock frequency.
type Meter struct {
	bits uint64
	pkts uint64
}

// Record adds one packet of the given size in bytes.
func (m *Meter) Record(bytes int) {
	m.bits += uint64(bytes) * 8
	m.pkts++
}

// Bits returns the accumulated bit count.
func (m *Meter) Bits() uint64 { return m.bits }

// Packets returns the accumulated packet count.
func (m *Meter) Packets() uint64 { return m.pkts }

// Gbps returns the average rate in gigabits per second over a window of
// `cycles` cycles at `freqHz`.
func (m *Meter) Gbps(cycles uint64, freqHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / freqHz
	return float64(m.bits) / seconds / 1e9
}

// Mpps returns the average packet rate in millions of packets per second
// over a window of `cycles` cycles at `freqHz`.
func (m *Meter) Mpps(cycles uint64, freqHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / freqHz
	return float64(m.pkts) / seconds / 1e6
}

// Histogram records latency samples (in cycles or nanoseconds — the unit is
// the caller's) and answers percentile queries. Samples are kept exactly;
// simulations here record at most a few million samples, for which exact
// percentiles are affordable and simpler to trust than sketches.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Quantile returns the q-quantile (q in [0,1]) using the nearest-rank
// method. It returns 0 when the histogram is empty and panics on q outside
// [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile(%v) out of [0,1]", q))
	}
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// P50 returns the median.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// P999 returns the 99.9th percentile.
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Summary formats count/mean/p50/p99/max with a unit suffix.
func (h *Histogram) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p99=%.1f%s max=%.1f%s",
		h.Count(), h.Mean(), unit, h.P50(), unit, h.P99(), unit, h.Max(), unit)
}

// Table renders rows of experiment output with aligned columns, in the style
// of the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
