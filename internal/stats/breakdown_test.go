package stats

import (
	"strings"
	"testing"
)

func TestBreakdownOrderAndStats(t *testing.T) {
	b := NewBreakdown()
	b.Observe("parse", 1)
	b.Observe("service", 10)
	b.Observe("parse", 3)
	b.Observe("transit", 8)

	if got := b.Stages(); len(got) != 3 || got[0] != "parse" || got[1] != "service" || got[2] != "transit" {
		t.Errorf("Stages() = %v, want first-observe order [parse service transit]", got)
	}
	if b.Len() != 3 {
		t.Errorf("Len() = %d, want 3", b.Len())
	}
	h := b.Hist("parse")
	if h == nil || h.Count() != 2 || h.Mean() != 2 {
		t.Errorf("parse hist = %+v, want n=2 mean=2", h)
	}
	if b.Hist("missing") != nil {
		t.Error("Hist on an unknown stage must return nil")
	}

	out := b.Table("cycles").String()
	for _, want := range []string{"stage", "p999 (cycles)", "parse", "service", "transit"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Rows render in first-observe order.
	if strings.Index(out, "parse") > strings.Index(out, "service") {
		t.Errorf("table rows out of order:\n%s", out)
	}
}
