package stats

import "fmt"

// Breakdown is an ordered collection of named histograms: one row per
// pipeline stage (or any other label), answering "where do the cycles
// go?" with p50/p99/p999 summaries per stage. Rows keep first-Observe
// order, so a journey-shaped insertion (parse, stages, queueing, service,
// transit, delivery) renders as a journey-shaped table.
type Breakdown struct {
	order []string
	hists map[string]*Histogram
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{hists: make(map[string]*Histogram)}
}

// Observe records one sample under the given stage label.
func (b *Breakdown) Observe(stage string, v float64) {
	h, ok := b.hists[stage]
	if !ok {
		h = NewHistogram()
		b.hists[stage] = h
		b.order = append(b.order, stage)
	}
	h.Observe(v)
}

// Stages returns the labels in first-Observe order.
func (b *Breakdown) Stages() []string { return b.order }

// Hist returns the histogram for a stage, or nil.
func (b *Breakdown) Hist(stage string) *Histogram { return b.hists[stage] }

// Len returns the number of stages.
func (b *Breakdown) Len() int { return len(b.order) }

// Table renders the breakdown with count, mean, p50, p99, p999, and max
// columns. unit labels the value columns (e.g. "cycles", "ns").
func (b *Breakdown) Table(unit string) *Table {
	t := NewTable("stage", "n",
		fmt.Sprintf("mean (%s)", unit), fmt.Sprintf("p50 (%s)", unit),
		fmt.Sprintf("p99 (%s)", unit), fmt.Sprintf("p999 (%s)", unit),
		fmt.Sprintf("max (%s)", unit))
	for _, stage := range b.order {
		h := b.hists[stage]
		t.AddRow(stage, h.Count(),
			fmt.Sprintf("%.1f", h.Mean()), h.P50(), h.P99(), h.P999(), h.Max())
	}
	return t
}
