package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Counter = %d, want 42", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Mean() != 0 || g.Max() != 0 {
		t.Error("empty gauge should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 10} {
		g.Sample(v)
	}
	if g.Mean() != 4 {
		t.Errorf("Mean = %v, want 4", g.Mean())
	}
	if g.Max() != 10 {
		t.Errorf("Max = %v, want 10", g.Max())
	}
	if g.Count() != 4 {
		t.Errorf("Count = %v, want 4", g.Count())
	}
}

func TestMeterRates(t *testing.T) {
	var m Meter
	// 1000 packets of 125 bytes = 1e6 bits over 1000 cycles at 1 GHz
	// = 1e6 bits / 1 µs = 1 Tbps = 1000 Gbps; packets: 1000/1µs = 1000 Mpps.
	for i := 0; i < 1000; i++ {
		m.Record(125)
	}
	if got := m.Gbps(1000, 1e9); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Gbps = %v, want 1000", got)
	}
	if got := m.Mpps(1000, 1e9); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Mpps = %v, want 1000", got)
	}
	if m.Gbps(0, 1e9) != 0 {
		t.Error("zero-cycle window should report 0")
	}
	if m.Bits() != 1000*125*8 || m.Packets() != 1000 {
		t.Error("raw accumulators wrong")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.5, 50}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v, want 50.5", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %v/%v, want 1/100", h.Min(), h.Max())
	}
	if h.P50() != 50 || h.P99() != 99 {
		t.Errorf("P50/P99 = %v/%v", h.P50(), h.P99())
	}
}

func TestHistogramEmptyAndPanics(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should return zeros")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile(1.5) did not panic")
		}
	}()
	h.Quantile(1.5)
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	// Interleaving Observe and Quantile must keep answers correct.
	h := NewHistogram()
	h.Observe(5)
	if h.Quantile(1) != 5 {
		t.Fatal("first quantile wrong")
	}
	h.Observe(1)
	if h.Quantile(0) != 1 {
		t.Error("histogram did not resort after new sample")
	}
}

// TestHistogramPropertyQuantiles: quantiles of arbitrary data match a direct
// nearest-rank computation on the sorted data, and are monotone in q.
func TestHistogramPropertyQuantiles(t *testing.T) {
	prop := func(vals []float64, qs []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range clean {
			h.Observe(v)
		}
		ref := append([]float64(nil), clean...)
		sort.Float64s(ref)
		prev := math.Inf(-1)
		for _, q := range qs {
			q = math.Abs(q)
			q -= math.Floor(q) // into [0,1)
			got := h.Quantile(q)
			idx := int(math.Ceil(q*float64(len(ref)))) - 1
			if idx < 0 {
				idx = 0
			}
			if got != ref[idx] {
				return false
			}
			_ = prev
		}
		// Monotonicity across a fixed ladder.
		prev = math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Line-rate", "# Eth Ports", "PPS")
	tb.AddRow("40Gbps", 2, "240Mpps")
	tb.AddRow("100Gbps", 1, "300Mpps")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Line-rate") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "40Gbps") || !strings.Contains(lines[3], "100Gbps") {
		t.Errorf("rows wrong:\n%s", out)
	}
	// Columns aligned: every row same length prefix structure.
	if len(lines[2]) == 0 || len(lines[3]) == 0 {
		t.Error("empty rows")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow(3.0)
	tb.AddRow(3.14159)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if got := strings.TrimSpace(lines[2]); got != "3" {
		t.Errorf("integral float rendered as %q, want 3", got)
	}
	if got := strings.TrimSpace(lines[3]); got != "3.14" {
		t.Errorf("float rendered as %q, want 3.14", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	s := h.Summary("ns")
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "mean=10.0ns") {
		t.Errorf("Summary = %q", s)
	}
}
