// Package invariant implements the runtime invariant monitor: a set of
// named, read-only checks evaluated at the simulation kernel's
// end-of-cycle barrier every sampling interval. The checks themselves are
// domain property audits registered by the NIC assembly (message
// conservation per tile and tenant, queue and credit bounds, flow-cache
// coherence, health-monitor legality, trace well-formedness — see
// internal/core/invariants.go and ROBUSTNESS.md); this package provides
// the machinery: sampling, violation capture, and kernel attachment.
//
// The monitor is opt-in. When it is not attached the simulation carries
// zero overhead — no observer is registered, no allocation is made — and
// when it is attached the cost is one integer comparison per stepped
// cycle plus the checks every sampling interval. Checks run after the
// Commit phase, so they see exactly the state the next cycle's Eval phase
// will; they must not mutate anything.
//
// Violations do not stop the simulation: deterministic runs must stay
// bit-identical with the monitor on or off, so the monitor records and
// the harness (cmd/chaos, tests) decides. FailFast panics instead, for
// interactive debugging where the first violation's cycle is what
// matters.
//
// Observability is pull-based, mirroring internal/trace: the monitor
// accumulates into Violations, Passes, and Total — plain values a harness
// reads after (or between) runs — and never writes to a log or stream of
// its own. Each Violation carries the check name, the cycle it fired at,
// and the check's error text; Err flattens the capped list into one error
// for test assertions. Capture is capped (beyond the cap only Total
// grows) so a check firing every interval cannot exhaust memory, and
// because checks run at the end-of-cycle barrier the recorded cycle
// numbers are identical across worker counts and fast-forward modes.
package invariant
