package invariant

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/sim"
)

// tick is a minimal ticker that keeps the kernel busy every cycle.
type tick struct{ n uint64 }

func (t *tick) Tick(uint64) { t.n++ }

// idle is a fully quiescent component: it never has work, so fast-forward
// may skip any cycle no event claims.
type idle struct{}

func (idle) Tick(uint64)                    {}
func (idle) NextWork(uint64) (uint64, bool) { return 0, true }

// TestSamplingCadence checks that checks run once per interval, at the
// interval boundary, and that RunNow is unthrottled.
func TestSamplingCadence(t *testing.T) {
	k := sim.NewKernel(sim.Frequency(500e6))
	k.Register(&tick{})
	m := New(Config{Every: 10})
	var cycles []uint64
	m.AddCheck("probe", func(c uint64) error {
		cycles = append(cycles, c)
		return nil
	})
	m.Attach(k)
	k.Run(25)
	want := []uint64{0, 10, 20}
	if fmt.Sprint(cycles) != fmt.Sprint(want) {
		t.Fatalf("check cycles = %v, want %v", cycles, want)
	}
	if m.Passes() != 3 {
		t.Fatalf("passes = %d, want 3", m.Passes())
	}
	m.RunNow(25)
	if m.Passes() != 4 {
		t.Fatalf("RunNow did not run a pass")
	}
}

// TestFastForwardStepsDueCheck checks the sampling schedule under
// fast-forward: the monitor's ObserverDue registration clamps idle jumps
// so a due pass lands on exactly the interval cycle — the kernel steps
// cycle 64 (a provably idle cycle, so nothing else happens in it) instead
// of jumping from 5 straight to 97 and deferring the pass.
func TestFastForwardStepsDueCheck(t *testing.T) {
	k := sim.NewKernel(sim.Frequency(500e6))
	k.SetFastForward(true)
	// Event-only load on a quiescent component: the kernel jumps between
	// events, stepping only the cycles they claim — plus, now, the cycles
	// the monitor's schedule claims.
	k.Register(idle{})
	for _, at := range []uint64{0, 5, 97, 130} {
		k.At(at, func() {})
	}
	m := New(Config{Every: 64})
	var cycles []uint64
	m.AddCheck("probe", func(c uint64) error {
		cycles = append(cycles, c)
		return nil
	})
	m.Attach(k)
	k.Run(200)
	want := []uint64{0, 64, 128, 192}
	if fmt.Sprint(cycles) != fmt.Sprint(want) {
		t.Fatalf("check cycles = %v, want %v", cycles, want)
	}
}

// TestViolationCaptureAndCap checks recording, the retention cap, and the
// Err summary.
func TestViolationCaptureAndCap(t *testing.T) {
	m := New(Config{Every: 1})
	boom := errors.New("ledger off by one")
	m.AddCheck("ok", func(uint64) error { return nil })
	m.AddCheck("bad", func(uint64) error { return boom })
	for c := uint64(0); c < 40; c++ {
		m.RunNow(c)
	}
	if m.Total() != 40 {
		t.Fatalf("total = %d, want 40", m.Total())
	}
	if len(m.Violations()) != maxViolations {
		t.Fatalf("retained = %d, want cap %d", len(m.Violations()), maxViolations)
	}
	v := m.Violations()[0]
	if v.Cycle != 0 || v.Check != "bad" || !errors.Is(v.Err, boom) {
		t.Fatalf("first violation = %+v", v)
	}
	err := m.Err()
	if err == nil || !strings.Contains(err.Error(), "40 violation(s)") || !strings.Contains(err.Error(), "ledger off by one") {
		t.Fatalf("Err() = %v", err)
	}
}

// TestErrNilWhenClean checks the healthy path.
func TestErrNilWhenClean(t *testing.T) {
	m := New(Config{})
	m.AddCheck("ok", func(uint64) error { return nil })
	m.RunNow(0)
	if err := m.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
	if m.every != DefaultEvery {
		t.Fatalf("default interval = %d, want %d", m.every, DefaultEvery)
	}
}

// TestFailFastPanics checks the interactive debugging mode.
func TestFailFastPanics(t *testing.T) {
	m := New(Config{FailFast: true})
	m.AddCheck("bad", func(uint64) error { return errors.New("boom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic in FailFast mode")
		}
	}()
	m.RunNow(7)
}

// TestStepZeroAllocs is the monitor's overhead gate at the kernel level:
// with no monitor attached the per-cycle step must not allocate, and with
// a monitor attached (alloc-free checks) it still must not — neither on
// the cheap off-interval rejection nor on the check passes themselves.
func TestStepZeroAllocs(t *testing.T) {
	measure := func(arm bool) float64 {
		k := sim.NewKernel(sim.Frequency(500e6))
		k.Register(&tick{})
		if arm {
			m := New(Config{Every: 8})
			m.AddCheck("noop", func(uint64) error { return nil })
			m.Attach(k)
		}
		k.Run(64) // warm up internal buffers
		return testing.AllocsPerRun(200, func() { k.Run(1) })
	}
	if got := measure(false); got != 0 {
		t.Errorf("unmonitored kernel step allocates %.1f/op, want 0", got)
	}
	if got := measure(true); got != 0 {
		t.Errorf("monitored kernel step allocates %.1f/op, want 0", got)
	}
}
