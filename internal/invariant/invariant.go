package invariant

import (
	"fmt"

	"github.com/panic-nic/panic/internal/sim"
)

// DefaultEvery is the default sampling interval in cycles. Checks walk
// every tile and queue, so the interval trades detection latency against
// overhead; 1024 keeps the monitor under a few percent of the hot path's
// cycle cost on the canonical assembly.
const DefaultEvery = 1024

// maxViolations bounds how many violations are retained verbatim; beyond
// it only the count grows. A buggy invariant firing every interval must
// not take the host down with it.
const maxViolations = 16

// Config parameterizes a Monitor.
type Config struct {
	// Every is the sampling interval in cycles (0 = DefaultEvery). The
	// monitor checks at the first stepped cycle at least Every cycles
	// after the previous check, so fast-forward jumps — during which no
	// state can change — defer a due check to the next stepped cycle
	// rather than losing it.
	Every uint64
	// FailFast panics on the first violation instead of recording it.
	FailFast bool
}

// A Check is one named invariant: fn returns nil when the property holds
// at the given cycle.
type Check struct {
	Name string
	Fn   func(cycle uint64) error
}

// Violation is one recorded invariant failure.
type Violation struct {
	Cycle uint64
	Check string
	Err   error
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %v", v.Cycle, v.Check, v.Err)
}

// Monitor evaluates registered checks at the kernel's end-of-cycle
// barrier.
type Monitor struct {
	every    uint64
	failFast bool

	checks      []Check
	lastChecked uint64
	ran         uint64 // check passes executed

	violations []Violation
	total      uint64 // violations seen, including those beyond the cap
}

// New builds a monitor from cfg.
func New(cfg Config) *Monitor {
	every := cfg.Every
	if every == 0 {
		every = DefaultEvery
	}
	return &Monitor{every: every, failFast: cfg.FailFast}
}

// AddCheck registers one invariant. Checks run in registration order.
func (m *Monitor) AddCheck(name string, fn func(cycle uint64) error) {
	m.checks = append(m.checks, Check{Name: name, Fn: fn})
}

// Attach hooks the monitor into the kernel's end-of-cycle barrier.
func (m *Monitor) Attach(k *sim.Kernel) {
	k.ObserveCycleEnd(m.observe)
}

// observe is the per-cycle hook: cheap rejection until a check is due.
func (m *Monitor) observe(cycle uint64) {
	// Interval arithmetic, not modulo: fast-forward may skip the exact
	// multiple, and the first stepped cycle after the gap is equivalent
	// (skipped cycles run no phases, so no state changed in between).
	if cycle-m.lastChecked < m.every && cycle != 0 {
		return
	}
	m.lastChecked = cycle
	m.RunNow(cycle)
}

// RunNow evaluates every check immediately, regardless of the sampling
// interval. The chaos runner calls it once more at the end of a scenario
// so violations in the final partial interval are not lost.
func (m *Monitor) RunNow(cycle uint64) {
	m.ran++
	for i := range m.checks {
		c := &m.checks[i]
		if err := c.Fn(cycle); err != nil {
			m.record(Violation{Cycle: cycle, Check: c.Name, Err: err})
		}
	}
}

func (m *Monitor) record(v Violation) {
	if m.failFast {
		panic("invariant: " + v.String())
	}
	m.total++
	if len(m.violations) < maxViolations {
		m.violations = append(m.violations, v)
	}
}

// Passes returns how many full check passes have run.
func (m *Monitor) Passes() uint64 { return m.ran }

// Violations returns the recorded violations (capped; see Total).
func (m *Monitor) Violations() []Violation { return m.violations }

// Total returns the number of violations observed, including any beyond
// the retention cap.
func (m *Monitor) Total() uint64 { return m.total }

// Err summarizes the monitor's verdict: nil when every check passed, or
// an error naming the first violation and the total count.
func (m *Monitor) Err() error {
	if m.total == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s); first: %s", m.total, m.violations[0])
}
