package invariant

import (
	"fmt"

	"github.com/panic-nic/panic/internal/sim"
)

// DefaultEvery is the default sampling interval in cycles. Checks walk
// every tile and queue, so the interval trades detection latency against
// overhead; 2048 keeps the monitor under a few percent of the hot path's
// cycle cost on the canonical assembly now that the saturated loop itself
// is event-driven (a faster base cycle makes the same fixed-cost pass
// relatively more expensive, so the interval doubled when the event
// engine landed).
const DefaultEvery = 2048

// maxViolations bounds how many violations are retained verbatim; beyond
// it only the count grows. A buggy invariant firing every interval must
// not take the host down with it.
const maxViolations = 16

// Config parameterizes a Monitor.
type Config struct {
	// Every is the sampling interval in cycles (0 = DefaultEvery). An
	// attached monitor registers its schedule with the kernel, which
	// steps the due cycle even when fast-forward or the event engine's
	// bulk advance would otherwise jump over it — passes land on exact
	// interval multiples in every kernel mode. (A kernel stepped outside
	// its Run loop still defers a due check to the next stepped cycle
	// rather than losing it.)
	Every uint64
	// FailFast panics on the first violation instead of recording it.
	FailFast bool
}

// A Check is one named invariant: fn returns nil when the property holds
// at the given cycle.
type Check struct {
	Name string
	Fn   func(cycle uint64) error
}

// Violation is one recorded invariant failure.
type Violation struct {
	Cycle uint64
	Check string
	Err   error
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %v", v.Cycle, v.Check, v.Err)
}

// Monitor evaluates registered checks at the kernel's end-of-cycle
// barrier.
type Monitor struct {
	every    uint64
	failFast bool

	checks      []Check
	lastChecked uint64
	ran         uint64 // check passes executed
	k           *sim.Kernel

	violations []Violation
	total      uint64 // violations seen, including those beyond the cap
}

// New builds a monitor from cfg.
func New(cfg Config) *Monitor {
	every := cfg.Every
	if every == 0 {
		every = DefaultEvery
	}
	return &Monitor{every: every, failFast: cfg.FailFast}
}

// AddCheck registers one invariant. Checks run in registration order.
func (m *Monitor) AddCheck(name string, fn func(cycle uint64) error) {
	m.checks = append(m.checks, Check{Name: name, Fn: fn})
}

// Attach hooks the monitor into the kernel's end-of-cycle barrier. The
// kernel is retained so a due pass can first pull the event engine's
// deferred bulk counters current (sim.Kernel.SyncAllAt) — checks then see
// exactly the state the ticked oracle would show at the same cycle. The
// monitor also registers its sampling schedule (sim.Kernel.ObserverDue),
// which clamps fast-forward jumps in both kernel modes so a due pass
// lands on exactly the interval cycle instead of the first stepped cycle
// after a jump — pass cycles are therefore identical under the ticked
// oracle, the event engine, and any fast-forward setting.
func (m *Monitor) Attach(k *sim.Kernel) {
	m.k = k
	k.ObserveCycleEnd(m.observe)
	k.ObserverDue(func(uint64) uint64 { return m.lastChecked + m.every })
}

// observe is the per-cycle hook: cheap rejection until a check is due.
func (m *Monitor) observe(cycle uint64) {
	// Interval arithmetic, not modulo: the ObserverDue clamp keeps due
	// passes on stepped cycles, but a kernel stepped directly (no Run
	// loop, so no clamp) may still jump past the exact multiple; the
	// first stepped cycle after the gap is equivalent (skipped cycles run
	// no phases, so no state changed in between — sleeping components'
	// deferred counters are reconciled by the sync below before any check
	// reads them).
	if cycle-m.lastChecked < m.every && cycle != 0 {
		return
	}
	m.lastChecked = cycle
	if m.k != nil {
		m.k.SyncAllAt(cycle)
	}
	m.RunNow(cycle)
}

// RunNow evaluates every check immediately, regardless of the sampling
// interval. The chaos runner calls it once more at the end of a scenario
// so violations in the final partial interval are not lost.
func (m *Monitor) RunNow(cycle uint64) {
	m.ran++
	for i := range m.checks {
		c := &m.checks[i]
		if err := c.Fn(cycle); err != nil {
			m.record(Violation{Cycle: cycle, Check: c.Name, Err: err})
		}
	}
}

func (m *Monitor) record(v Violation) {
	if m.failFast {
		panic("invariant: " + v.String())
	}
	m.total++
	if len(m.violations) < maxViolations {
		m.violations = append(m.violations, v)
	}
}

// Passes returns how many full check passes have run.
func (m *Monitor) Passes() uint64 { return m.ran }

// Violations returns the recorded violations (capped; see Total).
func (m *Monitor) Violations() []Violation { return m.violations }

// Total returns the number of violations observed, including any beyond
// the retention cap.
func (m *Monitor) Total() uint64 { return m.total }

// Err summarizes the monitor's verdict: nil when every check passed, or
// an error naming the first violation and the total count.
func (m *Monitor) Err() error {
	if m.total == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s); first: %s", m.total, m.violations[0])
}
