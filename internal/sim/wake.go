package sim

import (
	"math"
	"sync/atomic"
)

// WakeNever is the EndCycle return value meaning "I have no self-scheduled
// work: do not tick me again until something pokes me."
const WakeNever = math.MaxUint64

// EventAware is an optional refinement of Ticker for components that
// participate in the event-driven loaded path. Where Quiescer only lets the
// kernel skip *globally* idle cycles, EventAware lets it skip *individual
// components* while others stay busy: a tile 300 cycles into a 400-cycle
// encryption declares its completion cycle and sleeps through the silence.
//
// The contract extends Quiescer's, with the same strictness about
// observable state, but splits it in two because a sleeping component's
// statistics may lag:
//
//   - EndCycle(cycle) runs sequentially after the Commit phase of every
//     cycle in which the component ticked. It returns the next cycle at
//     which the component must tick: cycle+1 if it may act next cycle, a
//     later cycle for a self-scheduled wake (service completion, timed
//     fault window), or WakeNever to sleep until poked. Sleeping through
//     [cycle+1, wake) must be *reconcilable*: either those ticks would
//     change nothing, or their entire effect is a closed-form function of
//     the gap length that SyncTo can apply (e.g. BusyCycles += gap).
//   - SyncTo(cycle) brings all deferred bulk effects current through the
//     given cycle, as if the component had ticked every skipped cycle up
//     to and including it. It must be idempotent and cheap when already
//     current. The kernel calls it before any external observation point
//     (end of Run/RunUntil, RunUntil predicates, invariant passes) so the
//     event engine is byte-identical to the ticked oracle everywhere state
//     can leak out.
//
// Sleeping is only sound if every external input that could give the
// component work is paired with a Poke: the poke forces a tick on the next
// cycle, exactly when the staged input becomes visible. A missed poke is a
// lost wakeup and shows up as a fingerprint divergence against the ticked
// oracle, which is why the determinism matrix runs every configuration in
// both modes.
type EventAware interface {
	Ticker
	EndCycle(cycle uint64) uint64
	SyncTo(cycle uint64)
}

// DirtyCommitter is an optional refinement of Committer for staged state
// that can prove its Commit is a no-op. The flag is raised by any staging
// operation since the last commit and cleared by the kernel after calling
// Commit; while it is down the kernel skips the call entirely. It must be
// an atomic because staging happens on Eval worker goroutines. This is a
// pure optimization, active in both kernel modes: a clean committer's
// Commit must be provably side-effect free.
type DirtyCommitter interface {
	Committer
	DirtyFlag() *atomic.Bool
}

// DirtyRedirector is an optional refinement of DirtyCommitter for
// components that can re-home their dirty flag. At registration the kernel
// moves each such flag into a contiguous arena it owns: the Commit phase
// then scans a handful of cache lines instead of touching every clean
// committer's own line once per cycle — with hundreds of staged FIFOs that
// scan is otherwise a measurable slice of the saturated hot path. The
// component must copy its current flag value into the new slot and use the
// slot exclusively afterwards.
type DirtyRedirector interface {
	DirtyCommitter
	RedirectDirty(*atomic.Bool)
}

// dirtyArena hands out kernel-owned dirty-flag slots with stable addresses
// (fixed-size chunks are never reallocated, so redirected components can
// hold the pointer forever). Slots for committers registered together are
// adjacent, which is the whole point: the commit scan walks them linearly.
type dirtyArena struct {
	chunks [][]atomic.Bool
	used   int
}

const dirtyChunk = 512

func (a *dirtyArena) alloc() *atomic.Bool {
	if len(a.chunks) == 0 || a.used == dirtyChunk {
		a.chunks = append(a.chunks, make([]atomic.Bool, dirtyChunk))
		a.used = 0
	}
	p := &a.chunks[len(a.chunks)-1][a.used]
	a.used++
	return p
}

// Poker wakes one registered component of an event-driven kernel. Pokes are
// level-triggered flags, not queued messages: any number of pokes during a
// cycle mean "tick on the next cycle" (or this cycle, when poked by a
// start-of-cycle event callback). The zero Poker is a no-op, so wiring can
// be unconditional.
//
// Poke is safe to call from Eval shards, event callbacks, and Commit. The
// load-before-store keeps the hot already-poked case read-only; concurrent
// Stores of `true` are idempotent.
type Poker struct{ f *atomic.Bool }

// Poke marks the component as having pending external input.
func (p Poker) Poke() {
	if p.f != nil && !p.f.Load() {
		p.f.Store(true)
	}
}

// SetEventDriven switches the kernel between the ticked oracle loop
// (every Ticker, every cycle) and the event-driven loop (only components
// whose wake cycle has arrived or that were poked). The two are
// byte-identical in all observable state; event mode is the fast path under
// load. Enabling it forces a full tick on the next cycle so every
// component's wake schedule is rebuilt from live state.
func (k *Kernel) SetEventDriven(on bool) {
	if on == k.eventDriven {
		return
	}
	k.eventDriven = on
	if on {
		k.wakeAllNext = true
	}
}

// EventDriven reports whether the event-driven loop is active.
func (k *Kernel) EventDriven() bool { return k.eventDriven }

// PokerFor returns a Poker for a component previously passed to Register.
// It panics on an unregistered component: a poke wired to nothing is a
// lost-wakeup bug waiting for event mode to expose it. Serial tickers are
// never gated (they tick every cycle), so they have no pokers.
func (k *Kernel) PokerFor(c any) Poker {
	idx, ok := k.tickerIdx[c]
	if !ok {
		panic("sim: PokerFor on a component not registered as a parallel Ticker")
	}
	return Poker{f: k.pokes[idx]}
}

// BulkWaker is implemented by EventAware components that are internally a
// collection of sub-machines with their own liveness tracking (a mesh of
// routers). On a wake-all cycle — the first cycle of every Run — the
// kernel calls WakeAll before Begin so the component marks every
// sub-machine live for that cycle, matching the kernel-level guarantee
// that externally mutated state needs no pokes across Run boundaries.
type BulkWaker interface {
	WakeAll()
}

// sampleLiveness decides, sequentially and before Eval, which tickers run
// this cycle. A poke consumed here (the component will tick this cycle)
// is cleared; pokes that land later in the cycle stay up for endCycle.
// Start-of-cycle event callbacks have already run, so an event that pokes
// a sleeping component wakes it within the same cycle.
func (k *Kernel) sampleLiveness(cycle uint64) {
	wakeAll := k.wakeAllNext
	k.wakeAllNext = false
	if wakeAll {
		for _, a := range k.aware {
			if bw, ok := a.(BulkWaker); ok {
				bw.WakeAll()
			}
		}
	}
	for i := range k.liveNow {
		live := wakeAll || k.wakeAt[i] <= cycle
		if k.pokes[i].Load() {
			k.pokes[i].Store(false)
			live = true
		}
		k.liveNow[i] = live
	}
}

// endCycle runs after Commit: every ticker that ran declares its next wake
// cycle, and any poke that landed during the cycle (Eval, Serial, or
// Commit) forces a wake next cycle — the poked-about state commits at the
// end of this cycle, so next cycle is exactly when the component can see
// it. Waking a component that turns out to have nothing to do is always
// safe (its tick reconciles and it sleeps again); only a missed wake can
// diverge from the oracle.
func (k *Kernel) endCycle(cycle uint64) {
	for i := range k.liveNow {
		poked := k.pokes[i].Load()
		if !k.liveNow[i] && !poked {
			continue
		}
		wake := cycle + 1
		if k.liveNow[i] {
			if a := k.aware[i]; a != nil {
				wake = a.EndCycle(cycle)
			}
		}
		if poked {
			// The flag stays up for sampleLiveness to consume: a pending
			// poke also vetoes fast-forward, which matters because the
			// poked-about input may be invisible to the component's own
			// NextWork until it ticks.
			if wake > cycle+1 {
				wake = cycle + 1
			}
		}
		k.wakeAt[i] = wake
	}
}

// syncAll brings every EventAware component's deferred statistics current
// through the last executed cycle. Called at every external observation
// boundary; a no-op for components already current, and in ticked mode.
func (k *Kernel) syncAll() {
	if k.clock.cycle == 0 {
		return
	}
	k.SyncAllAt(k.clock.cycle - 1)
}

// SyncAll exposes syncAll for observers outside the kernel's own Run loop.
func (k *Kernel) SyncAll() { k.syncAll() }

// SyncAllAt brings deferred statistics current through the given cycle.
// End-of-cycle observers (the invariant monitor) call it with the cycle
// being observed: that cycle has fully executed but the clock has not
// advanced yet, so syncAll's clock-derived boundary would stop one cycle
// short. A no-op in ticked mode and for components already current.
func (k *Kernel) SyncAllAt(cycle uint64) {
	if !k.eventDriven {
		return
	}
	for _, a := range k.aware {
		if a != nil {
			a.SyncTo(cycle)
		}
	}
}

// skipIdleEvent is fast-forward for the event-driven loop: jump to the
// earliest wake among scheduled events, per-ticker wake cycles, and serial
// tickers' NextWork. Unlike the oracle's skipIdle it can jump *through* a
// busy component's silent service window — the wake array already encodes
// when each component next acts, and SyncTo reconciles the skipped
// accounting. A pending poke or a forced full tick vetoes the jump.
func (k *Kernel) skipIdleEvent(end uint64) {
	if k.wakeAllNext {
		return
	}
	now := k.clock.cycle
	target := end
	if !k.clampObserverDue(now, &target) {
		return // a sampling observer is due this cycle
	}
	if ec, ok := k.events.nextCycle(); ok {
		if ec <= now {
			return
		}
		if ec < target {
			target = ec
		}
	}
	for i, t := range k.tickers {
		if k.pokes[i].Load() {
			return
		}
		w := k.wakeAt[i]
		if k.aware[i] == nil || w <= now {
			// Either not event-aware, or scheduled to tick immediately —
			// which means "really has per-cycle work" for a sleeper but
			// only "conservatively awake" for a component that never
			// sleeps (a tile on a fabric with no waker path). NextWork
			// disambiguates; an opaque ticker pins every cycle live.
			// Trusting idle here is sound for the same reason legacy
			// skipIdle may: inputs invisible to the component (in-flight
			// fabric arrivals, staged sink flushes) keep their *source*
			// busy or leave a poke pending, both of which veto the jump.
			q, ok := t.(Quiescer)
			if !ok {
				return
			}
			next, idle := q.NextWork(now)
			if idle {
				continue
			}
			w = next
		}
		if w <= now {
			return
		}
		if w < target {
			target = w
		}
	}
	for _, t := range k.serial {
		q, ok := t.(Quiescer)
		if !ok {
			return
		}
		next, idle := q.NextWork(now)
		if idle {
			continue
		}
		if next <= now {
			return
		}
		if next < target {
			target = next
		}
	}
	if target > now {
		k.skipped += target - now
		k.clock.cycle = target
		k.clock.started = true
	}
}
