// Package sim provides a deterministic synchronous (cycle-level) simulation
// kernel used by every hardware model in this repository.
//
// The kernel advances a global clock one cycle at a time. Each cycle has two
// phases:
//
//  1. Eval: every registered Ticker observes the state committed at the end
//     of the previous cycle and stages its outputs.
//  2. Commit: every registered Link makes the staged writes visible.
//
// Because Eval never observes same-cycle writes, the result of a cycle is
// independent of the order in which components are ticked, which makes the
// simulation deterministic and lets hardware models be written as if all
// components evaluated in parallel, exactly like synchronous digital logic.
package sim

import (
	"fmt"
	"math"
)

// Ticker is a synchronous component evaluated once per cycle.
type Ticker interface {
	// Tick evaluates the component for the given cycle. It must read only
	// state committed in previous cycles and stage writes through Links (or
	// private double-buffered state) so that ordering between Tickers within
	// a cycle does not matter.
	Tick(cycle uint64)
}

// Committer is anything with staged state that becomes visible at the end of
// a cycle. Links implement it; components with private double-buffered state
// may register themselves too.
type Committer interface {
	Commit()
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(cycle uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(cycle uint64) { f(cycle) }

// Kernel drives a set of Tickers and Committers with a shared clock.
type Kernel struct {
	clock      Clock
	tickers    []Ticker
	committers []Committer
	events     eventList
	stopped    bool
}

// NewKernel returns a kernel whose clock runs at the given frequency.
func NewKernel(freq Frequency) *Kernel {
	return &Kernel{clock: Clock{freq: freq}}
}

// Clock returns the kernel's clock (current cycle plus frequency).
func (k *Kernel) Clock() *Clock { return &k.clock }

// Now returns the current cycle.
func (k *Kernel) Now() uint64 { return k.clock.cycle }

// Register adds components to the kernel. Arguments may implement Ticker,
// Committer, or both; anything else panics, since silently ignoring a
// component is a model bug.
func (k *Kernel) Register(components ...any) {
	for _, c := range components {
		ok := false
		if t, isT := c.(Ticker); isT {
			k.tickers = append(k.tickers, t)
			ok = true
		}
		if cm, isC := c.(Committer); isC {
			k.committers = append(k.committers, cm)
			ok = true
		}
		if !ok {
			panic(fmt.Sprintf("sim: Register(%T): neither Ticker nor Committer", c))
		}
	}
}

// At schedules fn to run at the start of the given absolute cycle, before
// Tickers are evaluated. Scheduling in the past (or the current cycle, which
// has already started) panics: time travel is a model bug.
func (k *Kernel) At(cycle uint64, fn func()) {
	if cycle <= k.clock.cycle && !(cycle == 0 && k.clock.cycle == 0 && !k.clock.started) {
		panic(fmt.Sprintf("sim: At(%d) scheduled at or before current cycle %d", cycle, k.clock.cycle))
	}
	k.events.push(event{cycle: cycle, seq: k.events.nextSeq(), fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d uint64, fn func()) {
	if d == 0 {
		panic("sim: After(0) would run in the current cycle")
	}
	k.events.push(event{cycle: k.clock.cycle + d, seq: k.events.nextSeq(), fn: fn})
}

// Stop makes Run return at the end of the current cycle.
func (k *Kernel) Stop() { k.stopped = true }

// Step advances the simulation by exactly one cycle.
func (k *Kernel) Step() {
	k.clock.started = true
	for k.events.ready(k.clock.cycle) {
		k.events.pop().fn()
	}
	for _, t := range k.tickers {
		t.Tick(k.clock.cycle)
	}
	for _, c := range k.committers {
		c.Commit()
	}
	k.clock.cycle++
}

// Run advances the simulation by n cycles, or until Stop is called.
func (k *Kernel) Run(n uint64) {
	k.stopped = false
	for i := uint64(0); i < n && !k.stopped; i++ {
		k.Step()
	}
}

// RunUntil advances the simulation until the predicate returns true at the
// start of a cycle, or until maxCycles have elapsed. It reports whether the
// predicate was satisfied.
func (k *Kernel) RunUntil(pred func() bool, maxCycles uint64) bool {
	for i := uint64(0); i < maxCycles; i++ {
		if pred() {
			return true
		}
		k.Step()
	}
	return pred()
}

// Frequency is a clock frequency in hertz.
type Frequency float64

// Common frequencies.
const (
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// String formats the frequency in the largest convenient unit.
func (f Frequency) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.6gGHz", float64(f/GHz))
	case f >= MHz:
		return fmt.Sprintf("%.6gMHz", float64(f/MHz))
	default:
		return fmt.Sprintf("%.6gHz", float64(f))
	}
}

// Clock tracks the current cycle and converts between cycles and wall time
// at a fixed frequency.
type Clock struct {
	cycle   uint64
	freq    Frequency
	started bool
}

// NewClock returns a standalone clock (useful outside a Kernel).
func NewClock(freq Frequency) *Clock { return &Clock{freq: freq} }

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.cycle }

// Freq returns the clock frequency.
func (c *Clock) Freq() Frequency { return c.freq }

// Nanos converts a cycle count to nanoseconds at the clock frequency.
func (c *Clock) Nanos(cycles uint64) float64 {
	return float64(cycles) / float64(c.freq) * 1e9
}

// Cycles converts nanoseconds to a cycle count (rounded up) at the clock
// frequency.
func (c *Clock) Cycles(nanos float64) uint64 {
	return uint64(math.Ceil(nanos * float64(c.freq) / 1e9))
}
