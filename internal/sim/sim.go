// Package sim provides a deterministic synchronous (cycle-level) simulation
// kernel used by every hardware model in this repository.
//
// The kernel advances a global clock one cycle at a time. Each cycle has
// these phases:
//
//  1. Events: callbacks scheduled with At/After run, in (cycle, seq) order.
//  2. Begin: registered Preparers observe the new cycle (cheap, sequential;
//     used to publish the cycle number to state shared read-only in Eval).
//  3. Eval: every registered Ticker observes the state committed at the end
//     of the previous cycle and stages its outputs. With Workers > 1 the
//     tickers are sharded across a persistent worker pool; because Eval
//     never observes same-cycle writes, the result is bit-identical to the
//     sequential order by construction.
//  4. Serial: Tickers registered with RegisterSerial run one by one in
//     registration order — the escape hatch for control-plane components
//     that read or rewrite state shared across many tiles (e.g. a health
//     monitor rewriting steering tables) and therefore must not run
//     concurrently with the Eval shards.
//  5. Commit: every registered Committer makes the staged writes visible,
//     in registration order.
//
// Because Eval never observes same-cycle writes, the result of a cycle is
// independent of the order in which components are ticked, which makes the
// simulation deterministic and lets hardware models be written as if all
// components evaluated in parallel, exactly like synchronous digital logic.
//
// When every registered Ticker also implements Quiescer, Run and RunUntil
// can fast-forward the clock over provably idle cycles (see Quiescer).
//
// Observability rides on the same phase structure: internal/trace's Tracer
// is a Committer registered last, so per-component span buffers filled
// during Eval (single writer each) drain into one deterministic stream
// after every other commit of the cycle — byte-identical across worker
// counts and with fast-forward on or off, because skipped cycles run no
// phases and so can emit nothing.
package sim

import (
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
)

// Ticker is a synchronous component evaluated once per cycle.
type Ticker interface {
	// Tick evaluates the component for the given cycle. It must read only
	// state committed in previous cycles and stage writes through Links (or
	// private double-buffered state) so that ordering between Tickers within
	// a cycle does not matter.
	Tick(cycle uint64)
}

// Committer is anything with staged state that becomes visible at the end of
// a cycle. Links implement it; components with private double-buffered state
// may register themselves too.
type Committer interface {
	Commit()
}

// Preparer is an optional component hook that runs sequentially at the start
// of every cycle, before Eval. It exists so a component can publish the
// cycle number (or other broadcast state) that its shards and neighboring
// tickers then read without racing the component's own Tick.
type Preparer interface {
	Begin(cycle uint64)
}

// Parallelizable is an optional refinement of Ticker for components that are
// internally a collection of independent sub-machines (e.g. a mesh of
// routers). When the kernel runs with Workers > 1 it calls TickShard for
// each shard instead of Tick, letting one registered component spread over
// several workers. Shards must be mutually order-independent, exactly like
// separate Tickers.
type Parallelizable interface {
	Ticker
	// ParallelShards returns the number of independent shards (>= 1).
	ParallelShards() int
	// TickShard evaluates one shard for the cycle.
	TickShard(cycle uint64, shard int)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(cycle uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(cycle uint64) { f(cycle) }

// KernelConfig parameterizes a Kernel beyond its clock frequency.
type KernelConfig struct {
	// Freq is the clock frequency.
	Freq Frequency
	// Workers is the Eval worker-pool size. 0 or 1 runs the classic
	// sequential loop; N > 1 shards Tickers (and Parallelizable shards)
	// across N goroutines with a barrier before the Serial and Commit
	// phases.
	Workers int
	// FastForward lets Run/RunUntil jump the clock over cycles in which no
	// registered component has work. It only ever engages when every
	// registered Ticker implements Quiescer; otherwise it is inert.
	FastForward bool
	// EventDriven selects the event-driven loop: each cycle only ticks
	// components whose declared wake cycle has arrived or that were poked,
	// instead of every registered Ticker. Byte-identical to the ticked
	// loop; see EventAware.
	EventDriven bool
	// EventCap pre-sizes the event heap (an allocation hint; 0 is fine).
	EventCap int
}

// Kernel drives a set of Tickers and Committers with a shared clock.
type Kernel struct {
	clock      Clock
	tickers    []Ticker
	serial     []Ticker
	preparers  []Preparer
	committers []Committer
	quiescers  []Quiescer
	// allQuiesce tracks whether every registered Ticker (parallel and
	// serial) implements Quiescer; fast-forward requires it.
	nonQuiescers int
	events       eventList
	stopped      bool

	workers     int
	pool        *workerPool
	poolStale   bool
	fastForward bool
	skipped     uint64

	// commitFlags parallels committers: non-nil entries are DirtyCommitter
	// flags letting the Commit phase skip provably clean committers. Active
	// in both kernel modes. DirtyRedirector flags live in dirtySlots, the
	// kernel-owned contiguous arena, so the per-cycle scan stays in a few
	// cache lines.
	commitFlags []*atomic.Bool
	dirtySlots  dirtyArena

	// Event-driven mode state; the four slices parallel tickers.
	eventDriven bool
	wakeAt      []uint64       // next cycle each ticker must run (0 = now)
	aware       []EventAware   // nil for tickers without deferred sync
	pokes       []*atomic.Bool // level-triggered external wake requests
	liveNow     []bool         // sampled once per cycle before Eval
	tickerIdx   map[any]int    // component -> index, for PokerFor
	// wakeAllNext forces every ticker live for one cycle. Raised on entry
	// to Run/RunUntil and when event mode switches on, it makes state
	// mutated from outside the kernel (between runs, from tests, by fleet
	// control planes) safe without pokes: the first cycle of any run
	// re-derives every wake schedule from committed state.
	wakeAllNext bool

	// observers run at the very end of every stepped cycle — after all
	// committers, before the clock advances — so they see exactly the state
	// the next cycle's Eval phase will. An empty list costs nothing.
	observers []func(cycle uint64)
	// obsDue holds observer schedules (see ObserverDue): fast-forward jumps
	// clamp to the earliest due cycle so sampled observer passes land on
	// deterministic cycles in every kernel mode.
	obsDue []func(now uint64) uint64
}

// NewKernel returns a sequential kernel whose clock runs at the given
// frequency.
func NewKernel(freq Frequency) *Kernel {
	return NewKernelWithConfig(KernelConfig{Freq: freq})
}

// NewKernelWithConfig returns a kernel with the given configuration.
func NewKernelWithConfig(cfg KernelConfig) *Kernel {
	k := &Kernel{clock: Clock{freq: cfg.Freq}, tickerIdx: make(map[any]int)}
	k.SetWorkers(cfg.Workers)
	k.fastForward = cfg.FastForward
	k.SetEventDriven(cfg.EventDriven)
	if cfg.EventCap > 0 {
		k.events.h = make(eventHeap, 0, cfg.EventCap)
	}
	return k
}

// Clock returns the kernel's clock (current cycle plus frequency).
func (k *Kernel) Clock() *Clock { return &k.clock }

// Now returns the current cycle.
func (k *Kernel) Now() uint64 { return k.clock.cycle }

// SetWorkers sets the Eval worker count; it takes effect on the next Step.
// 0 or 1 selects the sequential loop. Counts above 1 require every shared
// mutation between Tickers to be staged (the package contract) — the
// simulation result is bit-identical to the sequential order.
func (k *Kernel) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	if n == k.workers {
		return
	}
	k.workers = n
	k.poolStale = true
}

// Workers returns the configured Eval worker count (0 or 1 = sequential).
func (k *Kernel) Workers() int { return k.workers }

// SetFastForward enables or disables idle-cycle fast-forward for Run and
// RunUntil. It only ever engages when every registered Ticker implements
// Quiescer.
func (k *Kernel) SetFastForward(on bool) { k.fastForward = on }

// FastForwardEnabled reports whether fast-forward is configured on.
func (k *Kernel) FastForwardEnabled() bool { return k.fastForward }

// SkippedCycles returns how many cycles fast-forward has jumped over. Every
// skipped cycle is one the kernel proved no component would act in.
func (k *Kernel) SkippedCycles() uint64 { return k.skipped }

// Shutdown releases the worker pool's goroutines. It is safe to call on a
// sequential kernel and the kernel remains usable afterwards (a later Step
// with Workers > 1 restarts the pool).
func (k *Kernel) Shutdown() {
	if k.pool != nil {
		k.pool.stop()
		k.pool = nil
		k.poolStale = true
	}
}

// register adds one component to the given ticker slice (returned updated)
// and the committer/preparer/quiescer lists. Parallel (non-serial) tickers
// additionally get event-mode bookkeeping: a wake slot, a poke flag, and an
// index for PokerFor. wakeAt starts at 0 so a fresh component always runs
// on its first cycle and declares its own schedule.
func (k *Kernel) register(c any, tickers []Ticker, serial bool) []Ticker {
	ok := false
	if t, isT := c.(Ticker); isT {
		tickers = append(tickers, t)
		ok = true
		if q, isQ := c.(Quiescer); isQ {
			k.quiescers = append(k.quiescers, q)
		} else {
			k.nonQuiescers++
		}
		if !serial {
			// Function-typed tickers (TickFunc) are not hashable and cannot
			// be poked; every pokeable component is a pointer.
			if reflect.TypeOf(c).Comparable() {
				k.tickerIdx[c] = len(k.wakeAt)
			}
			k.wakeAt = append(k.wakeAt, 0)
			a, _ := c.(EventAware)
			k.aware = append(k.aware, a)
			k.pokes = append(k.pokes, new(atomic.Bool))
			k.liveNow = append(k.liveNow, false)
		}
	}
	if p, isP := c.(Preparer); isP {
		k.preparers = append(k.preparers, p)
		ok = true
	}
	if cm, isC := c.(Committer); isC {
		k.committers = append(k.committers, cm)
		var flag *atomic.Bool
		if dr, isR := c.(DirtyRedirector); isR {
			flag = k.dirtySlots.alloc()
			dr.RedirectDirty(flag)
		} else if dc, isD := c.(DirtyCommitter); isD {
			flag = dc.DirtyFlag()
		}
		if flag != nil {
			flag.Store(true) // commit once before the first skip
		}
		k.commitFlags = append(k.commitFlags, flag)
		ok = true
	}
	if !ok {
		panic(fmt.Sprintf("sim: Register(%T): neither Ticker, Preparer, nor Committer", c))
	}
	k.poolStale = true
	return tickers
}

// Register adds components to the kernel. Arguments may implement Ticker,
// Preparer, Committer, or any combination; anything else panics, since
// silently ignoring a component is a model bug.
func (k *Kernel) Register(components ...any) {
	for _, c := range components {
		k.tickers = k.register(c, k.tickers, false)
	}
}

// RegisterSerial adds components whose Tick must not run concurrently with
// other Tickers: they run after the Eval phase, one by one, in registration
// order. Use it for control-plane components that read or mutate state
// owned by many tiles (steering tables, cross-tile health probes). Serial
// tickers are never skipped by the event-driven loop.
func (k *Kernel) RegisterSerial(components ...any) {
	for _, c := range components {
		k.serial = k.register(c, k.serial, true)
	}
}

// ObserveCycleEnd registers fn to run at the end of every stepped cycle,
// after the Commit phase and before the clock advances: fn sees the fully
// committed state of the cycle, exactly what the next cycle's Eval phase
// will read. Observers run in registration order, after every Committer
// regardless of when the Committers were registered, and may read any
// state but must not mutate it — they are the kernel's invariant/audit
// barrier, not a modeling phase.
//
// Observers are not Tickers: they never affect quiescence, and they are
// not called for cycles fast-forward skips (no phase runs in a skipped
// cycle, so no state can have changed since the last stepped one).
func (k *Kernel) ObserveCycleEnd(fn func(cycle uint64)) {
	k.observers = append(k.observers, fn)
}

// ObserverDue registers a schedule for a sampling observer: fn returns the
// next cycle at which the observer needs the kernel to actually step (e.g.
// an invariant monitor's lastChecked + interval). Both fast-forward skips
// — the ticked oracle's global-idle jump and the event engine's bulk
// advance — clamp their jump target so that cycle is stepped rather than
// skipped. A due pass therefore lands on exactly the same cycle in every
// kernel mode instead of on whatever post-jump cycle happens to step
// next. Stepping a cycle inside a proven-idle window runs no component
// work (that is what the skip proved), so the clamp cannot perturb
// simulation state, only where the observer fires. A return value <= now
// means "due this very cycle" and vetoes the jump entirely.
func (k *Kernel) ObserverDue(fn func(now uint64) uint64) {
	k.obsDue = append(k.obsDue, fn)
}

// clampObserverDue narrows a fast-forward jump target to the earliest
// observer-due cycle. It reports false when an observer is due at the
// current cycle, which vetoes the jump.
func (k *Kernel) clampObserverDue(now uint64, target *uint64) bool {
	for _, fn := range k.obsDue {
		c := fn(now)
		if c <= now {
			return false
		}
		if c < *target {
			*target = c
		}
	}
	return true
}

// At schedules fn to run at the start of the given absolute cycle, before
// Tickers are evaluated. Scheduling in the past (or the current cycle, which
// has already started) panics: time travel is a model bug.
func (k *Kernel) At(cycle uint64, fn func()) {
	if cycle <= k.clock.cycle && !(cycle == 0 && k.clock.cycle == 0 && !k.clock.started) {
		panic(fmt.Sprintf("sim: At(%d) scheduled at or before current cycle %d", cycle, k.clock.cycle))
	}
	k.events.push(event{cycle: cycle, seq: k.events.nextSeq(), fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d uint64, fn func()) {
	if d == 0 {
		panic("sim: After(0) would run in the current cycle")
	}
	k.events.push(event{cycle: k.clock.cycle + d, seq: k.events.nextSeq(), fn: fn})
}

// Stop makes Run and RunUntil return at the end of the current cycle.
func (k *Kernel) Stop() { k.stopped = true }

// Step advances the simulation by exactly one cycle. In event-driven mode
// the Eval phase only runs tickers whose wake cycle has arrived or that
// were poked (liveness is sampled sequentially after start-of-cycle events,
// so an event callback's poke takes effect the same cycle); serial tickers,
// Begin, and observers always run, and the Commit phase skips committers
// whose dirty flag proves them clean in either mode.
func (k *Kernel) Step() {
	k.clock.started = true
	cycle := k.clock.cycle
	for k.events.ready(cycle) {
		k.events.pop().fn()
	}
	if k.eventDriven {
		k.sampleLiveness(cycle)
	}
	for _, p := range k.preparers {
		p.Begin(cycle)
	}
	if k.workers > 1 {
		if k.poolStale || k.pool == nil {
			k.rebuildPool()
		}
		k.pool.tick(cycle)
	} else if k.eventDriven {
		for i, t := range k.tickers {
			if k.liveNow[i] {
				t.Tick(cycle)
			}
		}
	} else {
		for _, t := range k.tickers {
			t.Tick(cycle)
		}
	}
	for _, t := range k.serial {
		t.Tick(cycle)
	}
	for i, c := range k.committers {
		if f := k.commitFlags[i]; f != nil {
			if !f.Load() {
				continue
			}
			c.Commit()
			f.Store(false)
			continue
		}
		c.Commit()
	}
	if k.eventDriven {
		k.endCycle(cycle)
	}
	for _, o := range k.observers {
		o(cycle)
	}
	k.clock.cycle++
}

// Run advances the simulation by n cycles, or until Stop is called. With
// fast-forward enabled, provably idle cycles inside the window are skipped
// (they still count toward n: the clock lands exactly where sequential
// stepping would).
//
// In event-driven mode the first cycle of every Run ticks all components
// (state mutated between runs needs no pokes) and deferred statistics are
// brought current before returning, so callers observe oracle-exact state.
func (k *Kernel) Run(n uint64) {
	k.stopped = false
	k.wakeAllNext = k.eventDriven
	end := k.clock.cycle + n
	for k.clock.cycle < end && !k.stopped {
		if k.fastForward {
			if k.eventDriven {
				k.skipIdleEvent(end)
			} else {
				k.skipIdle(end)
			}
			if k.clock.cycle >= end {
				break
			}
		}
		k.Step()
	}
	k.syncAll()
}

// RunUntil advances the simulation until the predicate returns true at the
// start of a cycle, until Stop is called, or until maxCycles have elapsed.
// It reports whether the predicate was satisfied. Deferred event-mode
// statistics are synchronized before every predicate evaluation, so
// predicates over component state read oracle-exact values.
//
// With fast-forward enabled the predicate is evaluated only at cycles the
// kernel actually steps; skipped cycles cannot change any component state,
// so a predicate over simulation state is unaffected. A predicate that
// watches the raw clock value may observe it later than with sequential
// stepping.
func (k *Kernel) RunUntil(pred func() bool, maxCycles uint64) bool {
	k.stopped = false
	k.wakeAllNext = k.eventDriven
	end := k.clock.cycle + maxCycles
	for k.clock.cycle < end && !k.stopped {
		k.syncAll()
		if pred() {
			return true
		}
		if k.fastForward {
			if k.eventDriven {
				k.skipIdleEvent(end)
			} else {
				k.skipIdle(end)
			}
			if k.clock.cycle >= end {
				break
			}
		}
		k.Step()
	}
	k.syncAll()
	return pred()
}

// Frequency is a clock frequency in hertz.
type Frequency float64

// Common frequencies.
const (
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// String formats the frequency in the largest convenient unit.
func (f Frequency) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.6gGHz", float64(f/GHz))
	case f >= MHz:
		return fmt.Sprintf("%.6gMHz", float64(f/MHz))
	default:
		return fmt.Sprintf("%.6gHz", float64(f))
	}
}

// Clock tracks the current cycle and converts between cycles and wall time
// at a fixed frequency.
type Clock struct {
	cycle   uint64
	freq    Frequency
	started bool
}

// NewClock returns a standalone clock (useful outside a Kernel).
func NewClock(freq Frequency) *Clock { return &Clock{freq: freq} }

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.cycle }

// Freq returns the clock frequency.
func (c *Clock) Freq() Frequency { return c.freq }

// Nanos converts a cycle count to nanoseconds at the clock frequency.
func (c *Clock) Nanos(cycles uint64) float64 {
	return float64(cycles) / float64(c.freq) * 1e9
}

// Cycles converts nanoseconds to a cycle count (rounded up) at the clock
// frequency.
func (c *Clock) Cycles(nanos float64) uint64 {
	return uint64(math.Ceil(nanos * float64(c.freq) / 1e9))
}
