package sim

import (
	"testing"
	"testing/quick"
)

// TestFIFOPropertyFIFOOrder drives a FIFO with an arbitrary schedule of
// push/pop/commit operations and checks the fundamental invariants: values
// come out in insertion order, nothing is lost or duplicated, and committed
// occupancy never exceeds capacity.
func TestFIFOPropertyFIFOOrder(t *testing.T) {
	prop := func(ops []uint8, capSeed uint8) bool {
		capacity := int(capSeed%7) + 1
		f := NewFIFO[int](capacity)
		next := 0
		var popped []int
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if f.CanPush() {
					f.Push(next)
					next++
				}
			case 1:
				if f.CanPop() {
					popped = append(popped, f.Pop())
				}
			case 2:
				f.Commit()
			}
			if f.Len() > capacity {
				return false
			}
		}
		// Drain everything still inside.
		for i := 0; i < 4*capacity; i++ {
			f.Commit()
			for f.CanPop() {
				popped = append(popped, f.Pop())
			}
		}
		if len(popped) != next {
			return false
		}
		for i, v := range popped {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRegPropertyNoLossNoDup checks that an arbitrary interleaving of
// sends, receives, and commits through a Reg neither loses nor duplicates
// nor reorders values.
func TestRegPropertyNoLossNoDup(t *testing.T) {
	prop := func(ops []uint8) bool {
		var r Reg[int]
		next := 0
		var got []int
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if r.CanSend() {
					r.Send(next)
					next++
				}
			case 1:
				if r.CanRecv() {
					got = append(got, r.Recv())
				}
			case 2:
				r.Commit()
			}
		}
		for i := 0; i < 4; i++ {
			r.Commit()
			if r.CanRecv() {
				got = append(got, r.Recv())
			}
		}
		if len(got) != next {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestEventHeapPropertyOrdering checks that events pop in (cycle, insertion)
// order for arbitrary schedules.
func TestEventHeapPropertyOrdering(t *testing.T) {
	prop := func(cycles []uint16) bool {
		var l eventList
		type tag struct {
			cycle uint64
			seq   int
		}
		fired := make([]tag, 0, len(cycles))
		for i, c := range cycles {
			c64, i := uint64(c), i
			l.push(event{cycle: c64, seq: l.nextSeq(), fn: func() {
				fired = append(fired, tag{c64, i})
			}})
		}
		for l.ready(1 << 20) {
			l.pop().fn()
		}
		if len(fired) != len(cycles) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.cycle > b.cycle || (a.cycle == b.cycle && a.seq > b.seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
