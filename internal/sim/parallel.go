package sim

import "sync"

// workUnit is one schedulable piece of the Eval phase: a whole Ticker, or
// one shard of a Parallelizable component. idx is the ticker's index in
// the kernel's liveness arrays (all shards of one component share it), so
// the event-driven loop can skip sleeping components inside a chunk.
type workUnit struct {
	t     Ticker
	p     Parallelizable // nil for plain tickers
	shard int
	idx   int
}

func (u workUnit) run(cycle uint64) {
	if u.p != nil {
		u.p.TickShard(cycle, u.shard)
		return
	}
	u.t.Tick(cycle)
}

// workerPool runs the Eval phase's work units across persistent goroutines.
// The pool is rebuilt whenever the ticker set or worker count changes.
//
// Scheduling is static: the unit list is split into contiguous chunks of
// near-equal unit count, one per worker, assigned once at build time. A
// static split keeps the per-cycle cost to one channel send and one
// WaitGroup wait per worker and — more importantly — keeps the assignment
// deterministic, so a data race introduced by a contract violation shows up
// identically on every run instead of flickering. Chunk 0 runs on the
// calling goroutine, saving one handoff.
type workerPool struct {
	k      *Kernel // liveness arrays; written only between ticks
	chunks [][]workUnit
	start  []chan uint64
	quit   chan struct{}
	wg     sync.WaitGroup
}

// runChunk executes one worker's units, honoring event-mode liveness. The
// kernel's eventDriven flag and liveNow slice are only written while the
// pool is quiescent (liveness is sampled before the tick barrier opens).
func (p *workerPool) runChunk(w int, cycle uint64) {
	if p.k.eventDriven {
		live := p.k.liveNow
		for _, u := range p.chunks[w] {
			if live[u.idx] {
				u.run(cycle)
			}
		}
		return
	}
	for _, u := range p.chunks[w] {
		u.run(cycle)
	}
}

// rebuildPool (re)creates the worker pool from the current ticker set.
func (k *Kernel) rebuildPool() {
	if k.pool != nil {
		k.pool.stop()
		k.pool = nil
	}
	k.poolStale = false
	var units []workUnit
	for i, t := range k.tickers {
		if p, ok := t.(Parallelizable); ok {
			n := p.ParallelShards()
			if n < 1 {
				n = 1
			}
			for s := 0; s < n; s++ {
				units = append(units, workUnit{t: t, p: p, shard: s, idx: i})
			}
			continue
		}
		units = append(units, workUnit{t: t, idx: i})
	}
	nw := k.workers
	if nw > len(units) {
		nw = len(units)
	}
	if nw < 1 {
		nw = 1
	}
	p := &workerPool{k: k, quit: make(chan struct{})}
	for w := 0; w < nw; w++ {
		lo, hi := w*len(units)/nw, (w+1)*len(units)/nw
		p.chunks = append(p.chunks, units[lo:hi])
	}
	p.start = make([]chan uint64, len(p.chunks))
	for w := 1; w < len(p.chunks); w++ {
		ch := make(chan uint64, 1)
		p.start[w] = ch
		go p.worker(w, ch)
	}
	k.pool = p
}

func (p *workerPool) worker(w int, start <-chan uint64) {
	for {
		select {
		case cycle := <-start:
			p.runChunk(w, cycle)
			p.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// tick runs one Eval phase: all units, full barrier before returning.
func (p *workerPool) tick(cycle uint64) {
	p.wg.Add(len(p.chunks) - 1)
	for w := 1; w < len(p.chunks); w++ {
		p.start[w] <- cycle
	}
	p.runChunk(0, cycle)
	p.wg.Wait()
}

// stop terminates the pool's goroutines. Must not be called concurrently
// with tick.
func (p *workerPool) stop() { close(p.quit) }
