package sim

import (
	"fmt"
	"sync/atomic"
)

// Reg is a single-producer single-consumer staged register: a value written
// during Eval becomes readable only after Commit, modeling a flow-controlled
// pipeline register between two synchronous components.
//
// Order independence: the writer's view (CanSend) depends only on the staged
// slot and the reader's view (CanRecv/Recv) only on the committed slot, so
// the cycle's outcome does not depend on which side ticks first. When the
// reader drains every cycle the register sustains one value per cycle; when
// the reader stalls, the staged value waits and the writer sees backpressure
// the next cycle. The zero value is an empty register.
type Reg[T any] struct {
	cur, next     T
	curOK, nextOK bool
	// dirty points at ownDirty until the kernel redirects it into its
	// contiguous flag arena (see DirtyRedirector); nil on a zero register
	// until the first mark.
	dirty    *atomic.Bool
	ownDirty atomic.Bool
}

// mark raises the dirty flag, resolving the zero register's unset pointer.
func (r *Reg[T]) mark() {
	d := r.dirty
	if d == nil {
		d = &r.ownDirty
		r.dirty = d
	}
	if !d.Load() {
		d.Store(true)
	}
}

// CanSend reports whether the register can accept a write this cycle.
func (r *Reg[T]) CanSend() bool { return !r.nextOK }

// Send stages a value. It panics if a value has already been staged this
// cycle: two writers racing for one register is a model bug.
func (r *Reg[T]) Send(v T) {
	if r.nextOK {
		panic("sim: Reg.Send on a register already written this cycle")
	}
	r.next = v
	r.nextOK = true
	r.mark()
}

// CanRecv reports whether a committed value is available.
func (r *Reg[T]) CanRecv() bool { return r.curOK }

// Peek returns the committed value without consuming it.
func (r *Reg[T]) Peek() (T, bool) { return r.cur, r.curOK }

// Recv consumes and returns the committed value. It panics when empty.
func (r *Reg[T]) Recv() T {
	if !r.curOK {
		panic("sim: Reg.Recv on empty register")
	}
	r.curOK = false
	var zero T
	v := r.cur
	r.cur = zero
	r.mark()
	return v
}

// Commit implements Committer: if the committed slot is free (the reader
// consumed it, or it was already empty), the staged value moves in;
// otherwise it stays staged and the writer stalls.
func (r *Reg[T]) Commit() {
	if r.nextOK && !r.curOK {
		r.cur, r.curOK = r.next, true
		var zero T
		r.next, r.nextOK = zero, false
	}
}

// DirtyFlag implements DirtyCommitter: the flag is raised by Send and Recv
// (a staged write may need moving; a consumed slot may unblock one) and
// cleared by the kernel after Commit. A clean register's Commit is a
// provable no-op: with no send or receive since the last commit, either
// nothing is staged or the committed slot is still occupied.
func (r *Reg[T]) DirtyFlag() *atomic.Bool {
	if r.dirty == nil {
		r.dirty = &r.ownDirty
	}
	return r.dirty
}

// RedirectDirty implements DirtyRedirector.
func (r *Reg[T]) RedirectDirty(p *atomic.Bool) {
	p.Store(r.DirtyFlag().Load())
	r.dirty = p
}

// FIFO is a single-producer single-consumer staged bounded queue: pushes
// become visible and pops take effect only at Commit, so within a cycle the
// producer and consumer may run in either order.
//
// Backpressure is conservative, as in a hardware credit loop: CanPush counts
// committed entries plus same-cycle pushes but does not observe same-cycle
// pops (credits return one cycle later). A capacity of at least 2 therefore
// sustains one value per cycle.
//
// Storage is a fixed ring: Commit advances the head pointer instead of
// shifting the backing array, so steady-state operation moves no memory —
// queue churn is the simulator's hottest path.
type FIFO[T any] struct {
	buf     []T // ring of len cap; [head, head+n) committed, then staged
	head    int // index of the oldest committed entry
	n       int // committed entries (staged pops not yet reclaimed)
	staged  int // pushes staged this cycle, stored after the committed run
	nPopped int
	cap     int
	// dirty points at ownDirty until the kernel redirects it into its
	// contiguous flag arena (see DirtyRedirector).
	dirty    *atomic.Bool
	ownDirty atomic.Bool
}

// NewFIFO returns a FIFO with the given capacity. Capacity must be positive.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: NewFIFO capacity %d", capacity))
	}
	f := &FIFO[T]{buf: make([]T, capacity), cap: capacity}
	f.dirty = &f.ownDirty
	return f
}

// idx maps a logical offset from head to a ring index. Offsets never exceed
// cap (CanPush bounds occupancy), so one conditional subtraction suffices.
func (f *FIFO[T]) idx(off int) int {
	i := f.head + off
	if i >= f.cap {
		i -= f.cap
	}
	return i
}

// Cap returns the FIFO capacity.
func (f *FIFO[T]) Cap() int { return f.cap }

// Len returns the number of committed entries not yet popped this cycle.
func (f *FIFO[T]) Len() int { return f.n - f.nPopped }

// CanPush reports whether a push this cycle is within capacity.
func (f *FIFO[T]) CanPush() bool { return f.n+f.staged < f.cap }

// Pending returns the conservative occupancy: committed entries plus
// same-cycle pushes, NOT observing same-cycle pops (credits return one
// cycle later, like CanPush). Use it — never Len — for capacity decisions
// made during Eval by a component other than the consumer, so the answer
// does not depend on whether the consumer ticked first.
func (f *FIFO[T]) Pending() int { return f.n + f.staged }

// Push stages a value for commit. Panics when full; use CanPush.
func (f *FIFO[T]) Push(v T) {
	if !f.CanPush() {
		panic("sim: FIFO.Push on full FIFO (writer ignored CanPush)")
	}
	f.buf[f.idx(f.n+f.staged)] = v
	f.staged++
	if !f.dirty.Load() {
		f.dirty.Store(true)
	}
}

// DirtyFlag implements DirtyCommitter: any Push or Pop since the last
// commit raises the flag (set from Eval shards, hence atomic); the kernel
// clears it after calling Commit. A clean FIFO's Commit is a provable
// no-op: nothing staged, nothing popped.
func (f *FIFO[T]) DirtyFlag() *atomic.Bool { return f.dirty }

// RedirectDirty implements DirtyRedirector.
func (f *FIFO[T]) RedirectDirty(p *atomic.Bool) {
	p.Store(f.dirty.Load())
	f.dirty = p
}

// CanPop reports whether a committed value is available this cycle.
func (f *FIFO[T]) CanPop() bool { return f.nPopped < f.n }

// Peek returns the oldest unconsumed committed value without consuming it.
func (f *FIFO[T]) Peek() (T, bool) {
	if !f.CanPop() {
		var zero T
		return zero, false
	}
	return f.buf[f.idx(f.nPopped)], true
}

// Pop consumes and returns the oldest committed value. The removal is staged
// until Commit so producers see conservative occupancy. Panics when empty.
func (f *FIFO[T]) Pop() T {
	if !f.CanPop() {
		panic("sim: FIFO.Pop on empty FIFO")
	}
	v := f.buf[f.idx(f.nPopped)]
	f.nPopped++
	if !f.dirty.Load() {
		f.dirty.Store(true)
	}
	return v
}

// Commit implements Committer: staged pops are reclaimed and staged pushes
// become visible.
func (f *FIFO[T]) Commit() {
	if f.nPopped > 0 {
		// Zero the reclaimed slots so popped pointers don't pin garbage.
		var zero T
		for i := 0; i < f.nPopped; i++ {
			f.buf[f.idx(i)] = zero
		}
		f.head = f.idx(f.nPopped)
		f.n -= f.nPopped
		f.nPopped = 0
	}
	f.n += f.staged
	f.staged = 0
	if f.n > f.cap {
		panic("sim: FIFO over capacity after commit")
	}
}
