package sim

import "fmt"

// Reg is a single-producer single-consumer staged register: a value written
// during Eval becomes readable only after Commit, modeling a flow-controlled
// pipeline register between two synchronous components.
//
// Order independence: the writer's view (CanSend) depends only on the staged
// slot and the reader's view (CanRecv/Recv) only on the committed slot, so
// the cycle's outcome does not depend on which side ticks first. When the
// reader drains every cycle the register sustains one value per cycle; when
// the reader stalls, the staged value waits and the writer sees backpressure
// the next cycle. The zero value is an empty register.
type Reg[T any] struct {
	cur, next     T
	curOK, nextOK bool
}

// CanSend reports whether the register can accept a write this cycle.
func (r *Reg[T]) CanSend() bool { return !r.nextOK }

// Send stages a value. It panics if a value has already been staged this
// cycle: two writers racing for one register is a model bug.
func (r *Reg[T]) Send(v T) {
	if r.nextOK {
		panic("sim: Reg.Send on a register already written this cycle")
	}
	r.next = v
	r.nextOK = true
}

// CanRecv reports whether a committed value is available.
func (r *Reg[T]) CanRecv() bool { return r.curOK }

// Peek returns the committed value without consuming it.
func (r *Reg[T]) Peek() (T, bool) { return r.cur, r.curOK }

// Recv consumes and returns the committed value. It panics when empty.
func (r *Reg[T]) Recv() T {
	if !r.curOK {
		panic("sim: Reg.Recv on empty register")
	}
	r.curOK = false
	var zero T
	v := r.cur
	r.cur = zero
	return v
}

// Commit implements Committer: if the committed slot is free (the reader
// consumed it, or it was already empty), the staged value moves in;
// otherwise it stays staged and the writer stalls.
func (r *Reg[T]) Commit() {
	if r.nextOK && !r.curOK {
		r.cur, r.curOK = r.next, true
		var zero T
		r.next, r.nextOK = zero, false
	}
}

// FIFO is a single-producer single-consumer staged bounded queue: pushes
// become visible and pops take effect only at Commit, so within a cycle the
// producer and consumer may run in either order.
//
// Backpressure is conservative, as in a hardware credit loop: CanPush counts
// committed entries plus same-cycle pushes but does not observe same-cycle
// pops (credits return one cycle later). A capacity of at least 2 therefore
// sustains one value per cycle.
type FIFO[T any] struct {
	buf     []T
	staged  []T
	nPopped int
	cap     int
}

// NewFIFO returns a FIFO with the given capacity. Capacity must be positive.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: NewFIFO capacity %d", capacity))
	}
	// Pre-size both buffers to capacity so steady-state operation never
	// grows them: queue churn is the simulator's hottest allocation site.
	return &FIFO[T]{
		buf:    make([]T, 0, capacity),
		staged: make([]T, 0, capacity),
		cap:    capacity,
	}
}

// Cap returns the FIFO capacity.
func (f *FIFO[T]) Cap() int { return f.cap }

// Len returns the number of committed entries not yet popped this cycle.
func (f *FIFO[T]) Len() int { return len(f.buf) - f.nPopped }

// CanPush reports whether a push this cycle is within capacity.
func (f *FIFO[T]) CanPush() bool { return len(f.buf)+len(f.staged) < f.cap }

// Pending returns the conservative occupancy: committed entries plus
// same-cycle pushes, NOT observing same-cycle pops (credits return one
// cycle later, like CanPush). Use it — never Len — for capacity decisions
// made during Eval by a component other than the consumer, so the answer
// does not depend on whether the consumer ticked first.
func (f *FIFO[T]) Pending() int { return len(f.buf) + len(f.staged) }

// Push stages a value for commit. Panics when full; use CanPush.
func (f *FIFO[T]) Push(v T) {
	if !f.CanPush() {
		panic("sim: FIFO.Push on full FIFO (writer ignored CanPush)")
	}
	f.staged = append(f.staged, v)
}

// CanPop reports whether a committed value is available this cycle.
func (f *FIFO[T]) CanPop() bool { return f.nPopped < len(f.buf) }

// Peek returns the oldest unconsumed committed value without consuming it.
func (f *FIFO[T]) Peek() (T, bool) {
	if !f.CanPop() {
		var zero T
		return zero, false
	}
	return f.buf[f.nPopped], true
}

// Pop consumes and returns the oldest committed value. The removal is staged
// until Commit so producers see conservative occupancy. Panics when empty.
func (f *FIFO[T]) Pop() T {
	if !f.CanPop() {
		panic("sim: FIFO.Pop on empty FIFO")
	}
	v := f.buf[f.nPopped]
	f.nPopped++
	return v
}

// Commit implements Committer: staged pops are reclaimed and staged pushes
// become visible.
func (f *FIFO[T]) Commit() {
	if f.nPopped > 0 {
		// Shift rather than reslice so the backing array does not grow
		// without bound over long simulations.
		copy(f.buf, f.buf[f.nPopped:])
		f.buf = f.buf[:len(f.buf)-f.nPopped]
		f.nPopped = 0
	}
	if len(f.staged) > 0 {
		f.buf = append(f.buf, f.staged...)
		f.staged = f.staged[:0]
		if len(f.buf) > f.cap {
			panic("sim: FIFO over capacity after commit")
		}
	}
}
