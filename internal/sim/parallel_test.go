package sim

import (
	"testing"
)

// chainStage is a pipeline stage: it moves values from its input FIFO to
// its output FIFO, one per cycle, counting what it forwarded. Stages obey
// the package contract (committed reads, staged writes), so any tick order
// — and any Eval sharding — must produce identical results.
type chainStage struct {
	in, out *FIFO[int]
	moved   uint64
	sum     uint64
}

func (s *chainStage) Tick(cycle uint64) {
	if s.in.CanPop() && s.out.CanPush() {
		v := s.in.Pop()
		s.out.Push(v)
		s.moved++
		s.sum += uint64(v)
	}
}

// buildChain wires nStages stages in a line feeding from a producer FIFO,
// registering everything with the kernel, and pre-loads the first FIFO via
// scheduled events (one value every other cycle).
func buildChain(k *Kernel, nStages, nValues int) []*chainStage {
	fifos := make([]*FIFO[int], nStages+1)
	for i := range fifos {
		fifos[i] = NewFIFO[int](4)
		k.Register(fifos[i])
	}
	stages := make([]*chainStage, nStages)
	for i := range stages {
		stages[i] = &chainStage{in: fifos[i], out: fifos[i+1]}
		k.Register(stages[i])
	}
	for v := 0; v < nValues; v++ {
		v := v
		k.At(uint64(1+2*v), func() {
			if fifos[0].CanPush() {
				fifos[0].Push(v + 1)
			}
		})
	}
	return stages
}

// runChain executes the chain under the given worker count and returns the
// per-stage (moved, sum) fingerprint.
func runChain(t *testing.T, workers int, cycles uint64) []uint64 {
	t.Helper()
	k := NewKernelWithConfig(KernelConfig{Freq: GHz, Workers: workers})
	defer k.Shutdown()
	stages := buildChain(k, 12, 40)
	k.Run(cycles)
	var fp []uint64
	for _, s := range stages {
		fp = append(fp, s.moved, s.sum)
	}
	return fp
}

// TestParallelEvalBitIdentical runs the same staged pipeline sequentially
// and under several worker counts: every counter must match exactly.
func TestParallelEvalBitIdentical(t *testing.T) {
	want := runChain(t, 0, 300)
	for _, w := range []int{2, 4, 8} {
		got := runChain(t, w, 300)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: fingerprint length %d != %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: fingerprint[%d] = %d, sequential = %d", w, i, got[i], want[i])
			}
		}
	}
}

// shardedCounter is a Parallelizable ticker: N independent cells that each
// count their own ticks.
type shardedCounter struct {
	cells []uint64
}

func (c *shardedCounter) Tick(cycle uint64) {
	for i := range c.cells {
		c.TickShard(cycle, i)
	}
}

func (c *shardedCounter) ParallelShards() int { return len(c.cells) }

func (c *shardedCounter) TickShard(cycle uint64, shard int) { c.cells[shard]++ }

// TestParallelizableShardsAllRun verifies every shard of a Parallelizable
// component runs exactly once per cycle at any worker count, including
// worker counts above and below the shard count.
func TestParallelizableShardsAllRun(t *testing.T) {
	for _, w := range []int{0, 1, 2, 3, 16} {
		k := NewKernelWithConfig(KernelConfig{Freq: GHz, Workers: w})
		c := &shardedCounter{cells: make([]uint64, 5)}
		k.Register(c)
		k.Run(50)
		k.Shutdown()
		for i, n := range c.cells {
			if n != 50 {
				t.Fatalf("workers=%d: shard %d ticked %d times, want 50", w, i, n)
			}
		}
	}
}

// TestSetWorkersMidRun flips the worker count between runs and checks the
// pool rebuild preserves results.
func TestSetWorkersMidRun(t *testing.T) {
	k := NewKernel(GHz)
	defer k.Shutdown()
	c := &shardedCounter{cells: make([]uint64, 3)}
	k.Register(c)
	k.Run(10)
	k.SetWorkers(4)
	k.Run(10)
	k.SetWorkers(0)
	k.Run(10)
	for i, n := range c.cells {
		if n != 30 {
			t.Fatalf("shard %d ticked %d times across worker changes, want 30", i, n)
		}
	}
}

// TestRunUntilHonorsStop is the regression test for RunUntil ignoring
// Stop(): a component that calls Stop mid-run must end RunUntil at that
// cycle even though the predicate never becomes true.
func TestRunUntilHonorsStop(t *testing.T) {
	k := NewKernel(GHz)
	ticks := 0
	k.Register(TickFunc(func(cycle uint64) {
		ticks++
		if cycle == 7 {
			k.Stop()
		}
	}))
	ok := k.RunUntil(func() bool { return false }, 1000)
	if ok {
		t.Fatal("predicate never true, RunUntil returned true")
	}
	if ticks != 8 {
		t.Fatalf("RunUntil ran %d cycles after Stop at cycle 7, want 8", ticks)
	}
	// A subsequent RunUntil must not see the stale stop flag.
	ok = k.RunUntil(func() bool { return k.Now() >= 20 }, 1000)
	if !ok {
		t.Fatal("second RunUntil saw stale stopped flag")
	}
}

// TestRunResetsStop mirrors the regression for Run: a Stop from a previous
// window must not shorten the next one.
func TestRunResetsStop(t *testing.T) {
	k := NewKernel(GHz)
	k.Register(TickFunc(func(cycle uint64) {
		if cycle == 3 {
			k.Stop()
		}
	}))
	k.Run(100)
	if k.Now() != 4 {
		t.Fatalf("first Run stopped at cycle %d, want 4", k.Now())
	}
	k.Run(100)
	if k.Now() != 104 {
		t.Fatalf("second Run ended at %d, want 104", k.Now())
	}
}

// idleTicker implements Quiescer: it works every `period` cycles and
// records which cycles it was actually ticked at.
type idleTicker struct {
	period uint64
	ticked []uint64
	work   uint64
}

func (i *idleTicker) Tick(cycle uint64) {
	i.ticked = append(i.ticked, cycle)
	if cycle%i.period == 0 {
		i.work++
	}
}

func (i *idleTicker) NextWork(now uint64) (uint64, bool) {
	if now%i.period == 0 {
		return now, false
	}
	return now + (i.period - now%i.period), false
}

// TestFastForwardSkipsIdleCycles checks the jump lands exactly on work
// cycles and that the end state matches a stepped run.
func TestFastForwardSkipsIdleCycles(t *testing.T) {
	k := NewKernelWithConfig(KernelConfig{Freq: GHz, FastForward: true})
	it := &idleTicker{period: 10}
	k.Register(it)
	k.Run(100)
	if k.Now() != 100 {
		t.Fatalf("clock at %d after Run(100), want 100", k.Now())
	}
	if it.work != 10 {
		t.Fatalf("work ran %d times, want 10 (cycles 0,10,...,90)", it.work)
	}
	for _, c := range it.ticked {
		if c%10 != 0 {
			t.Fatalf("ticked at idle cycle %d", c)
		}
	}
	if k.SkippedCycles() != 100-uint64(len(it.ticked)) {
		t.Fatalf("SkippedCycles = %d, ticked %d, want them to sum to 100",
			k.SkippedCycles(), len(it.ticked))
	}
}

// TestFastForwardBoundedByEvents checks a scheduled event interrupts an
// otherwise unbounded idle jump.
func TestFastForwardBoundedByEvents(t *testing.T) {
	k := NewKernelWithConfig(KernelConfig{Freq: GHz, FastForward: true})
	var tickedAt []uint64
	q := quiescentTicker{onTick: func(c uint64) { tickedAt = append(tickedAt, c) }}
	k.Register(&q)
	fired := uint64(0)
	k.At(500, func() { fired = k.Now() })
	k.Run(1000)
	if fired != 500 {
		t.Fatalf("event fired at %d, want 500", fired)
	}
	if k.Now() != 1000 {
		t.Fatalf("clock at %d, want 1000", k.Now())
	}
	// The fully idle ticker only runs at the event cycle.
	if len(tickedAt) != 1 || tickedAt[0] != 500 {
		t.Fatalf("idle ticker ran at %v, want exactly [500]", tickedAt)
	}
}

// quiescentTicker is always idle.
type quiescentTicker struct {
	onTick func(uint64)
}

func (q *quiescentTicker) Tick(cycle uint64) { q.onTick(cycle) }

func (q *quiescentTicker) NextWork(now uint64) (uint64, bool) { return 0, true }

// TestFastForwardInertWithOpaqueTicker: one Ticker without NextWork makes
// every cycle potentially live, so nothing is skipped.
func TestFastForwardInertWithOpaqueTicker(t *testing.T) {
	k := NewKernelWithConfig(KernelConfig{Freq: GHz, FastForward: true})
	n := 0
	k.Register(TickFunc(func(uint64) { n++ }))
	k.Run(64)
	if n != 64 {
		t.Fatalf("opaque ticker ran %d cycles of 64: fast-forward must be inert", n)
	}
	if k.SkippedCycles() != 0 {
		t.Fatalf("SkippedCycles = %d with an opaque ticker, want 0", k.SkippedCycles())
	}
}

// TestRunUntilFastForward: the predicate still terminates the run, and the
// clock lands exactly where stepping would have put it.
func TestRunUntilFastForward(t *testing.T) {
	k := NewKernelWithConfig(KernelConfig{Freq: GHz, FastForward: true})
	it := &idleTicker{period: 100}
	k.Register(it)
	ok := k.RunUntil(func() bool { return it.work >= 3 }, 10000)
	if !ok {
		t.Fatal("RunUntil did not satisfy the predicate")
	}
	// work hits 3 when cycle 200 has run; the predicate is checked at the
	// start of the next stepped cycle.
	if it.work != 3 {
		t.Fatalf("work = %d, want 3", it.work)
	}
}
