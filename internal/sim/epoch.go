package sim

import "sync"

// EpochSet advances a group of independent kernels in lockstep epochs:
// each Run(cycles) call lets every kernel free-run the window on its own
// shard goroutine, then waits for all of them at a barrier. This is the
// conservative-lookahead half of a parallel discrete-event simulation: as
// long as no state crosses between kernels except at the barriers (and
// the epoch never exceeds the minimum inter-kernel latency, so a message
// emitted inside one epoch cannot be due before the next begins), the
// combined simulation is deterministic for ANY shard count — unlike the
// per-cycle parallel Eval inside one kernel, shards here synchronize once
// per epoch, so this is the axis that scales on real cores.
//
// Kernel i runs on shard i % shards; shard 0 executes on the caller's
// goroutine, so shards <= 1 degenerates to a plain sequential loop with
// no goroutines and no channel traffic. Worker goroutines are persistent
// across epochs (started on first Run, released by Shutdown) because
// epochs are short — often tens of cycles — and per-epoch goroutine
// spawning would dominate.
type EpochSet struct {
	kernels []*Kernel
	shards  int

	started bool
	start   []chan uint64 // per worker shard (index 1..shards-1)
	wg      sync.WaitGroup
}

// NewEpochSet builds the runner. shards < 1 is treated as 1; shards above
// len(kernels) are clamped (an empty shard would only cost a goroutine).
func NewEpochSet(kernels []*Kernel, shards int) *EpochSet {
	if shards < 1 {
		shards = 1
	}
	if shards > len(kernels) {
		shards = len(kernels)
	}
	return &EpochSet{kernels: kernels, shards: shards}
}

// Shards returns the effective shard count.
func (e *EpochSet) Shards() int { return e.shards }

// Run advances every kernel by cycles and returns after all have reached
// the barrier. The caller may touch cross-kernel state (message exchange,
// placement changes) freely between Run calls: no kernel is mid-cycle.
func (e *EpochSet) Run(cycles uint64) {
	if cycles == 0 {
		return
	}
	if e.shards == 1 {
		for _, k := range e.kernels {
			k.Run(cycles)
		}
		return
	}
	if !e.started {
		e.start = make([]chan uint64, e.shards)
		for s := 1; s < e.shards; s++ {
			ch := make(chan uint64)
			e.start[s] = ch
			go func(shard int, ch chan uint64) {
				for n := range ch {
					for i := shard; i < len(e.kernels); i += e.shards {
						e.kernels[i].Run(n)
					}
					e.wg.Done()
				}
			}(s, ch)
		}
		e.started = true
	}
	e.wg.Add(e.shards - 1)
	for s := 1; s < e.shards; s++ {
		e.start[s] <- cycles
	}
	// Shard 0 runs inline: the caller's goroutine is otherwise idle until
	// the barrier anyway.
	for i := 0; i < len(e.kernels); i += e.shards {
		e.kernels[i].Run(cycles)
	}
	e.wg.Wait()
}

// Shutdown releases the shard goroutines (and each kernel's own worker
// pool). The set remains usable; a later Run restarts everything.
func (e *EpochSet) Shutdown() {
	if e.started {
		for s := 1; s < e.shards; s++ {
			close(e.start[s])
		}
		e.start = nil
		e.started = false
	}
	for _, k := range e.kernels {
		k.Shutdown()
	}
}
