package sim

// Quiescer is an optional refinement of Ticker for components that can
// prove when their next work arrives, enabling idle-cycle fast-forward.
//
// NextWork reports the earliest cycle at which the component might change
// any observable state if ticked. It is queried with the clock at `now`,
// BEFORE cycle now has run, so the answer covers cycle now itself. The
// contract:
//
//   - idle == true means the component is fully quiescent: ticking it at
//     any cycle before some external input arrives would change nothing —
//     no counter, no staged write, no internal countdown. The kernel may
//     skip it indefinitely (external inputs always come from other
//     components or scheduled events, both of which bound the jump).
//   - idle == false means the component needs to run at cycle `next`
//     (next >= now). Every cycle in [now, next) is guaranteed to be a
//     no-op for this component. A component with work this cycle returns
//     next = now, which vetoes any skip.
//
// "Would change nothing" is strict: statistics counters count. A tile
// accumulating BusyCycles every in-service cycle must report now+1 while
// busy, or fast-forwarded runs would diverge from stepped runs. The
// determinism regression tests compare the two byte for byte.
type Quiescer interface {
	Ticker
	NextWork(now uint64) (next uint64, idle bool)
}

// skipIdle advances the clock to the earliest cycle in (now, end] at which
// any component may act: the next scheduled event, or the minimum over all
// Quiescers' NextWork. It does nothing unless every registered Ticker
// implements Quiescer — one opaque component makes every cycle potentially
// live. Skipped cycles are, by construction, cycles in which Step would
// have changed no state at all (Eval a no-op everywhere, nothing staged,
// so Commit a no-op too); jumping the clock over them is therefore
// bit-identical to stepping through them.
func (k *Kernel) skipIdle(end uint64) {
	if k.nonQuiescers > 0 || len(k.quiescers) == 0 {
		return
	}
	now := k.clock.cycle
	target := end
	if !k.clampObserverDue(now, &target) {
		return // a sampling observer is due this cycle
	}
	if ec, ok := k.events.nextCycle(); ok {
		if ec <= now {
			return // an event is due this cycle
		}
		if ec < target {
			target = ec
		}
	}
	for _, q := range k.quiescers {
		next, idle := q.NextWork(now)
		if idle {
			continue
		}
		if next <= now {
			return // work this cycle: the skip is vetoed
		}
		if next < target {
			target = next
		}
	}
	if target > now {
		k.skipped += target - now
		k.clock.cycle = target
		k.clock.started = true
	}
}
