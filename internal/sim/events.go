package sim

import "container/heap"

// event is a callback scheduled at an absolute cycle. seq breaks ties so
// that events scheduled earlier run earlier, keeping the kernel
// deterministic.
type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

type eventList struct {
	h   eventHeap
	seq uint64
}

func (l *eventList) nextSeq() uint64 {
	l.seq++
	return l.seq
}

func (l *eventList) push(e event) { heap.Push(&l.h, e) }

func (l *eventList) ready(cycle uint64) bool {
	return len(l.h) > 0 && l.h[0].cycle <= cycle
}

// nextCycle returns the cycle of the earliest pending event.
func (l *eventList) nextCycle() (uint64, bool) {
	if len(l.h) == 0 {
		return 0, false
	}
	return l.h[0].cycle, true
}

func (l *eventList) pop() event { return heap.Pop(&l.h).(event) }

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
