package sim

// RNG is a small, fast, deterministic random number generator (SplitMix64).
// Every stochastic model in the simulator takes an explicit *RNG so that
// simulations are reproducible from a seed and independent of global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork returns a new independent generator derived from this one, for giving
// each component its own stream without correlated sequences.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
