package sim

import (
	"testing"
)

func TestClockConversions(t *testing.T) {
	c := NewClock(500 * MHz)
	if got := c.Nanos(1); got != 2 {
		t.Errorf("Nanos(1) at 500MHz = %v, want 2", got)
	}
	if got := c.Nanos(500); got != 1000 {
		t.Errorf("Nanos(500) = %v, want 1000", got)
	}
	if got := c.Cycles(2); got != 1 {
		t.Errorf("Cycles(2ns) = %v, want 1", got)
	}
	if got := c.Cycles(3); got != 2 {
		t.Errorf("Cycles(3ns) = %v, want 2 (rounded up)", got)
	}
}

func TestFrequencyString(t *testing.T) {
	cases := []struct {
		f    Frequency
		want string
	}{
		{500 * MHz, "500MHz"},
		{1 * GHz, "1GHz"},
		{250, "250Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestKernelTickOrderIndependence(t *testing.T) {
	// Two components communicating through a Reg must produce the same
	// per-cycle observations regardless of registration order.
	run := func(writerFirst bool) []int {
		k := NewKernel(1 * GHz)
		var link Reg[int]
		var seen []int
		n := 0
		writer := TickFunc(func(uint64) {
			if link.CanSend() {
				n++
				link.Send(n)
			}
		})
		reader := TickFunc(func(uint64) {
			if link.CanRecv() {
				seen = append(seen, link.Recv())
			}
		})
		if writerFirst {
			k.Register(writer, reader, &link)
		} else {
			k.Register(reader, writer, &link)
		}
		k.Run(10)
		return seen
	}
	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("tick order changed observation count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick order changed values at %d: %v vs %v", i, a, b)
		}
	}
	// Full throughput: after the 1-cycle fill latency, one value per cycle.
	if len(a) != 9 {
		t.Errorf("reader saw %d values in 10 cycles, want 9", len(a))
	}
	for i, v := range a {
		if v != i+1 {
			t.Fatalf("values out of order: %v", a)
		}
	}
}

func TestKernelEvents(t *testing.T) {
	k := NewKernel(1 * GHz)
	var fired []uint64
	k.At(3, func() { fired = append(fired, k.Now()) })
	k.At(1, func() { fired = append(fired, k.Now()) })
	k.At(1, func() {
		fired = append(fired, k.Now())
		k.After(2, func() { fired = append(fired, k.Now()) })
	})
	k.Run(10)
	want := []uint64{1, 1, 3, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestKernelEventInPastPanics(t *testing.T) {
	k := NewKernel(1 * GHz)
	k.Run(5)
	defer func() {
		if recover() == nil {
			t.Error("At(past) did not panic")
		}
	}()
	k.At(3, func() {})
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1 * GHz)
	k.Register(TickFunc(func(c uint64) {
		if c == 4 {
			k.Stop()
		}
	}))
	k.Run(100)
	if k.Now() != 5 {
		t.Errorf("stopped at cycle %d, want 5", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1 * GHz)
	ok := k.RunUntil(func() bool { return k.Now() >= 7 }, 100)
	if !ok || k.Now() != 7 {
		t.Errorf("RunUntil stopped at %d ok=%v, want 7 true", k.Now(), ok)
	}
	ok = k.RunUntil(func() bool { return false }, 10)
	if ok {
		t.Error("RunUntil reported success for unsatisfiable predicate")
	}
}

func TestKernelRegisterRejectsUnknown(t *testing.T) {
	k := NewKernel(1 * GHz)
	defer func() {
		if recover() == nil {
			t.Error("Register(42) did not panic")
		}
	}()
	k.Register(42)
}

func TestRegBackpressure(t *testing.T) {
	var r Reg[string]
	if !r.CanSend() || r.CanRecv() {
		t.Fatal("zero Reg should be sendable and empty")
	}
	r.Send("a")
	if r.CanSend() {
		t.Error("CanSend true after staging")
	}
	if r.CanRecv() {
		t.Error("staged value visible before commit")
	}
	r.Commit()
	if !r.CanRecv() {
		t.Fatal("committed value not visible")
	}
	// Stage another while cur is unconsumed: it must wait across Commit.
	r.Send("b")
	r.Commit()
	if got := r.Recv(); got != "a" {
		t.Errorf("Recv = %q, want a", got)
	}
	if r.CanRecv() {
		t.Error("b visible before its commit")
	}
	r.Commit()
	if got := r.Recv(); got != "b" {
		t.Errorf("Recv = %q, want b", got)
	}
}

func TestRegDoubleSendPanics(t *testing.T) {
	var r Reg[int]
	r.Send(1)
	defer func() {
		if recover() == nil {
			t.Error("double Send did not panic")
		}
	}()
	r.Send(2)
}

func TestFIFOOrderingAndBackpressure(t *testing.T) {
	f := NewFIFO[int](2)
	if !f.CanPush() {
		t.Fatal("empty FIFO rejects push")
	}
	f.Push(1)
	f.Push(2)
	if f.CanPush() {
		t.Error("FIFO accepts push beyond capacity within a cycle")
	}
	if f.CanPop() {
		t.Error("staged pushes visible before commit")
	}
	f.Commit()
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	if v := f.Pop(); v != 1 {
		t.Errorf("Pop = %d, want 1", v)
	}
	// Same-cycle pop does not free space until commit (credit delay).
	if f.CanPush() {
		t.Error("pop freed space before commit")
	}
	f.Commit()
	if !f.CanPush() {
		t.Error("space not reclaimed after commit")
	}
	f.Push(3)
	f.Commit()
	if v := f.Pop(); v != 2 {
		t.Errorf("Pop = %d, want 2", v)
	}
	if v := f.Pop(); v != 3 {
		t.Errorf("Pop = %d, want 3", v)
	}
	if f.CanPop() {
		t.Error("FIFO not empty after draining")
	}
}

func TestFIFOFullThroughputAtCapacityTwo(t *testing.T) {
	// A capacity-2 FIFO must sustain one value/cycle with a draining reader.
	f := NewFIFO[int](2)
	pushed, popped := 0, 0
	for cycle := 0; cycle < 100; cycle++ {
		if f.CanPop() {
			f.Pop()
			popped++
		}
		if f.CanPush() {
			pushed++
			f.Push(pushed)
		}
		f.Commit()
	}
	if popped < 98 {
		t.Errorf("popped %d values in 100 cycles, want >=98", popped)
	}
}

func TestFIFOInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFIFO(0) did not panic")
		}
	}()
	NewFIFO[int](0)
}

func TestRNGDeterminismAndFork(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	f1, f2 := NewRNG(1).Fork(), NewRNG(2).Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forks of different seeds collided (suspicious)")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, buckets = 100000, 10
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d count %d far from uniform %d", i, c, n/buckets)
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.23 || frac > 0.27 {
		t.Errorf("Bool(0.25) rate %v", frac)
	}
}

func TestKernelObserveCycleEnd(t *testing.T) {
	// Observers run after every Committer of the stepped cycle: a value
	// staged into a Reg during Eval must already be committed (readable)
	// when the observer fires for that same cycle.
	k := NewKernel(1 * GHz)
	var link Reg[int]
	k.Register(TickFunc(func(cycle uint64) {
		if link.CanSend() {
			link.Send(int(cycle) + 1)
		}
	}), &link)

	var cycles []uint64
	var committed []int
	k.ObserveCycleEnd(func(cycle uint64) {
		cycles = append(cycles, cycle)
		if v, ok := link.Peek(); ok {
			committed = append(committed, v)
			link.Recv()
		}
	})
	k.Run(3)
	if want := []uint64{0, 1, 2}; len(cycles) != 3 || cycles[0] != want[0] || cycles[2] != want[2] {
		t.Fatalf("observer cycles = %v, want %v", cycles, want)
	}
	for i, v := range committed {
		if v != i+1 {
			t.Errorf("observer saw committed value %d at step %d, want %d (Eval write not yet committed?)", v, i, i+1)
		}
	}
}
