package noc

import (
	"testing"

	"github.com/panic-nic/panic/internal/sim"
)

func TestPatternDestinations(t *testing.T) {
	rng := sim.NewRNG(1)
	// Uniform never targets self.
	for i := 0; i < 200; i++ {
		if PatternUniform(rng, 5, 36, 6, 6) == 5 {
			t.Fatal("uniform targeted self")
		}
	}
	// Hotspot(1.0) always targets node 0 from others.
	hot := PatternHotspot(1.0)
	if hot(rng, 7, 36, 6, 6) != 0 {
		t.Error("hotspot(1.0) missed the hotspot")
	}
	// Transpose swaps coordinates: (2,1) -> (1,2) in a 6x6.
	if got := PatternTranspose(rng, 1*6+2, 36, 6, 6); got != 2*6+1 {
		t.Errorf("transpose(2,1) = %d, want %d", got, 2*6+1)
	}
	// The diagonal maps to itself (sits out).
	if got := PatternTranspose(rng, 2*6+2, 36, 6, 6); got != 2*6+2 {
		t.Errorf("transpose diagonal = %d", got)
	}
	// Neighbor wraps east.
	if got := PatternNeighbor(rng, 0*6+5, 36, 6, 6); got != 0 {
		t.Errorf("neighbor wrap = %d, want 0", got)
	}
}

func TestPatternByName(t *testing.T) {
	for _, name := range PatternNames() {
		if PatternByName(name) == nil {
			t.Errorf("PatternByName(%q) = nil", name)
		}
	}
	if PatternByName("bogus") != nil {
		t.Error("unknown pattern resolved")
	}
}

// TestPatternThroughputOrdering: locality beats uniform beats adversarial
// patterns — the canonical NoC result, and the reason engine placement
// matters (§6).
func TestPatternThroughputOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("pattern sweep is slow")
	}
	measure := func(name string) float64 {
		m := NewMesh(DefaultMeshConfig())
		return MeasurePattern(m, PatternByName(name), 500e6, 64, 1.0, 2000, 8000, 5).DeliveredGbps
	}
	neighbor := measure("neighbor")
	uniform := measure("uniform")
	hotspot := measure("hotspot")
	transpose := measure("transpose")
	if !(neighbor > uniform) {
		t.Errorf("neighbor (%.0f) not above uniform (%.0f)", neighbor, uniform)
	}
	if !(uniform > hotspot) {
		t.Errorf("uniform (%.0f) not above hotspot (%.0f)", uniform, hotspot)
	}
	if !(uniform > transpose) {
		t.Errorf("uniform (%.0f) not above transpose (%.0f)", uniform, transpose)
	}
	// Hotspot saturates near the hot node's single ejection port:
	// ~64 Gbps of its own traffic bounds total roughly by eject/0.3.
	if hotspot > 64/0.3*1.3 {
		t.Errorf("hotspot throughput %.0f implausibly high", hotspot)
	}
}

func TestMeasurePatternNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil pattern did not panic")
		}
	}()
	MeasurePattern(NewMesh(DefaultMeshConfig()), nil, 1e9, 64, 1, 1, 1, 1)
}
