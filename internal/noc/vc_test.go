package noc

import (
	"testing"
	"testing/quick"

	"github.com/panic-nic/panic/internal/sim"
)

func vcMesh(w, h, vcs int) (*Mesh, *sim.Kernel) {
	cfg := DefaultMeshConfig()
	cfg.Width, cfg.Height, cfg.VirtualChannels = w, h, vcs
	m := NewMesh(cfg)
	k := sim.NewKernel(500 * sim.MHz)
	m.RegisterWith(k)
	return m, k
}

func TestVCDeliveryBasic(t *testing.T) {
	m, k := vcMesh(3, 3, 4)
	msg := testMsg(100)
	m.Inject(m.NodeAt(0, 0), m.NodeAt(2, 2), msg)
	if !k.RunUntil(func() bool { return m.Stats().Delivered == 1 }, 200) {
		t.Fatal("not delivered with 4 VCs")
	}
	if got, ok := m.TryEject(m.NodeAt(2, 2)); !ok || got != msg {
		t.Fatal("eject failed")
	}
}

func TestVCRaisesSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	measure := func(vcs int) float64 {
		cfg := DefaultMeshConfig()
		cfg.VirtualChannels = vcs
		return MeasureSaturation(NewMesh(cfg), 500e6, 64, 2000, 10000, 1).DeliveredGbps
	}
	one, four := measure(1), measure(4)
	if four <= one*1.05 {
		t.Errorf("4 VCs (%.0f Gbps) not clearly above 1 VC (%.0f Gbps)", four, one)
	}
}

func TestVCAvoidsHOLBlocking(t *testing.T) {
	// Long messages to a stalled destination (nobody drains its eject
	// queue) clog their path. A short message to a live destination that
	// shares the first link must still get through when it has its own
	// virtual channel, and must NOT get through with a single channel.
	run := func(vcs int) (delivered uint64) {
		m, k := vcMesh(4, 1, vcs)
		stalled, live := m.NodeAt(2, 0), m.NodeAt(3, 0)
		if vcs > 1 && int(stalled)%vcs == int(live)%vcs {
			t.Fatalf("test setup: destinations share a VC lane")
		}
		bigs, shortSent := 0, false
		k.Register(sim.TickFunc(func(uint64) {
			if bigs < 30 && m.CanInject(m.NodeAt(0, 0), stalled) {
				m.Inject(m.NodeAt(0, 0), stalled, testMsg(512))
				bigs++
			}
			// Send the short message once the stalled path is clogged.
			if !shortSent && bigs >= 10 && m.CanInject(m.NodeAt(0, 0), live) {
				m.Inject(m.NodeAt(0, 0), live, testMsg(8))
				shortSent = true
			}
			if msg, ok := m.TryEject(live); ok {
				delivered++
				_ = msg
			}
		}))
		k.Run(4000)
		if !shortSent {
			return 0
		}
		return delivered
	}
	if got := run(4); got != 1 {
		t.Errorf("with 4 VCs the live destination got %d messages, want 1", got)
	}
	if got := run(1); got != 0 {
		t.Errorf("with 1 VC the live message bypassed the stalled wormhole (%d delivered)", got)
	}
}

func TestVCPerPairOrderingPreserved(t *testing.T) {
	// Destination-hashed VC assignment keeps each (src,dst) pair on one
	// lane, so ordering holds even with many VCs.
	m, k := vcMesh(4, 4, 4)
	src, dst := m.NodeAt(0, 0), m.NodeAt(3, 2)
	const n = 30
	next := 0
	var order []uint64
	k.Register(sim.TickFunc(func(uint64) {
		if next < n && m.CanInject(src, dst) {
			msg := testMsg(8 + (next%4)*60) // mixed sizes
			msg.ID = uint64(next)
			m.Inject(src, dst, msg)
			next++
		}
		for {
			mm, ok := m.TryEject(dst)
			if !ok {
				break
			}
			order = append(order, mm.ID)
		}
	}))
	k.Run(3000)
	if len(order) != n {
		t.Fatalf("delivered %d/%d", len(order), n)
	}
	for i, id := range order {
		if id != uint64(i) {
			t.Fatalf("reordered: %v", order)
		}
	}
}

// TestPropertyVCMeshDeliversEverything mirrors the 1-VC delivery property
// across VC counts.
func TestPropertyVCMeshDeliversEverything(t *testing.T) {
	prop := func(vcSeed uint8, seed uint64, msgCount uint8) bool {
		vcs := 1 + int(vcSeed%4)
		cfg := MeshConfig{
			Width: 3, Height: 3, FlitWidthBits: 64,
			BufferDepth: 4, VirtualChannels: vcs,
			InjectDepth: 4, EjectDepth: 4,
		}
		m := NewMesh(cfg)
		k := sim.NewKernel(1 * sim.GHz)
		m.RegisterWith(k)
		rng := sim.NewRNG(seed)
		total := 1 + int(msgCount%40)
		injected := 0
		delivered := map[uint64]int{}
		k.Register(sim.TickFunc(func(uint64) {
			for node := 0; node < m.Nodes(); node++ {
				for {
					mm, ok := m.TryEject(NodeID(node))
					if !ok {
						break
					}
					delivered[mm.ID]++
				}
			}
			if injected < total {
				src := NodeID(rng.Intn(9))
				dst := NodeID(rng.Intn(9))
				if m.CanInject(src, dst) {
					msg := testMsg(1 + rng.Intn(100))
					injected++
					msg.ID = uint64(injected)
					m.Inject(src, dst, msg)
				}
			}
		}))
		k.Run(uint64(3000 + 200*total))
		if len(delivered) != total {
			return false
		}
		for _, c := range delivered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVCConfigValidation(t *testing.T) {
	cfg := DefaultMeshConfig()
	cfg.VirtualChannels = -1
	defer func() {
		if recover() == nil {
			t.Error("negative VC count did not panic")
		}
	}()
	NewMesh(cfg)
}
