package noc

import (
	"testing"

	"github.com/panic-nic/panic/internal/sim"
)

func TestSeveredLinkBlocksTraffic(t *testing.T) {
	m, k := newTestMesh(2, 1)
	src, dst := m.NodeAt(0, 0), m.NodeAt(1, 0)
	m.SetLinkFault(src, dst, LinkFault{Severed: true})

	m.Inject(src, dst, testMsg(8))
	delivered := false
	k.Register(sim.TickFunc(func(uint64) {
		if _, ok := m.TryEject(dst); ok {
			delivered = true
		}
	}))
	k.Run(200)
	if delivered {
		t.Fatal("message crossed a severed link")
	}

	// Lifting the fault releases the wedged traffic.
	m.SetLinkFault(src, dst, LinkFault{})
	k.Run(200)
	if !delivered {
		t.Fatal("message not delivered after fault lifted")
	}
}

func TestSeveredLinkIsDirectional(t *testing.T) {
	m, k := newTestMesh(2, 1)
	a, b := m.NodeAt(0, 0), m.NodeAt(1, 0)
	m.SetLinkFault(a, b, LinkFault{Severed: true})
	if !m.LinkFaultBetween(a, b).Severed {
		t.Fatal("fault not installed")
	}
	if !m.LinkFaultBetween(b, a).Clean() {
		t.Fatal("reverse direction should stay healthy")
	}

	// Reverse-direction traffic is unaffected.
	m.Inject(b, a, testMsg(8))
	k.Run(50)
	if _, ok := m.TryEject(a); !ok {
		t.Fatal("reverse-direction message blocked by forward fault")
	}
}

func TestDegradedLinkSlowsButDelivers(t *testing.T) {
	// An 8-flit message over a healthy link takes ~10 cycles; over a
	// pass-every-8 link the serialization alone takes >= 57 cycles.
	healthyCycles := func(pass int) uint64 {
		m, k := newTestMesh(2, 1)
		src, dst := m.NodeAt(0, 0), m.NodeAt(1, 0)
		if pass > 1 {
			m.SetLinkFault(src, dst, LinkFault{PassEveryN: pass})
		}
		m.Inject(src, dst, testMsg(64)) // 8 flits at 64-bit width
		var arrived uint64
		k.Register(sim.TickFunc(func(c uint64) {
			if arrived == 0 {
				if _, ok := m.TryEject(dst); ok {
					arrived = c
				}
			}
		}))
		k.Run(400)
		if arrived == 0 {
			t.Fatalf("message never delivered (pass=%d)", pass)
		}
		return arrived
	}
	fast := healthyCycles(0)
	slow := healthyCycles(8)
	if slow < fast+40 {
		t.Fatalf("degraded link arrival %d, healthy %d: want >= %d", slow, fast, fast+40)
	}
}

func TestLinkFaultRequiresAdjacency(t *testing.T) {
	m, _ := newTestMesh(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetLinkFault across non-adjacent nodes did not panic")
		}
	}()
	m.SetLinkFault(m.NodeAt(0, 0), m.NodeAt(2, 0), LinkFault{Severed: true})
}
