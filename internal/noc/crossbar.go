package noc

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// CrossbarConfig parameterizes the single-crossbar baseline fabric used for
// the paper's wire-length ablation (§3.1.2: "it is not feasible to build a
// single large switch ... when there are a large number of engines").
type CrossbarConfig struct {
	// Nodes is the number of attachment points.
	Nodes int
	// FlitWidthBits is the per-port serialization width.
	FlitWidthBits int
	// TraversalLatency is the extra fixed latency (cycles) of crossing
	// the crossbar, modeling the long wires of a large monolithic switch.
	// A physically plausible model grows this with port count; the
	// experiments sweep it.
	TraversalLatency int
	// InjectDepth and EjectDepth are the per-node message queue depths.
	InjectDepth, EjectDepth int
}

// Crossbar is a single monolithic switch: every input reaches every output
// in one arbitration step. Each output accepts one message at a time,
// serialized at flit width; each input feeds one output at a time.
//
// The crossbar Evals as a single unit (srcBusy couples all outputs), but
// its callers may run in parallel: Inject touches only the caller's own
// injection queue and per-node counter, and the cycle number is published
// by Begin before Eval starts, so no Inject races with crossbar state.
type Crossbar struct {
	cfg      CrossbarConfig
	injQ     []*sim.FIFO[injEntry]
	ejectQ   []*sim.FIFO[*packet.Message]
	srcBusy  []bool
	xfer     []xbarXfer
	rrNext   []int
	injected []uint64 // per source node; summed in Stats
	stats    Stats
	now      uint64
}

type xbarXfer struct {
	active    bool
	src       int
	remaining int
	msg       *packet.Message
	enqued    uint64
}

// NewCrossbar builds a crossbar fabric.
func NewCrossbar(cfg CrossbarConfig) *Crossbar {
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("noc: invalid crossbar size %d", cfg.Nodes))
	}
	if cfg.FlitWidthBits < 1 {
		panic("noc: flit width must be positive")
	}
	if cfg.InjectDepth < 1 || cfg.EjectDepth < 1 {
		panic("noc: local queue depths must be positive")
	}
	if cfg.TraversalLatency < 0 {
		panic("noc: negative traversal latency")
	}
	c := &Crossbar{
		cfg:      cfg,
		injQ:     make([]*sim.FIFO[injEntry], cfg.Nodes),
		ejectQ:   make([]*sim.FIFO[*packet.Message], cfg.Nodes),
		srcBusy:  make([]bool, cfg.Nodes),
		xfer:     make([]xbarXfer, cfg.Nodes),
		rrNext:   make([]int, cfg.Nodes),
		injected: make([]uint64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.injQ[i] = sim.NewFIFO[injEntry](cfg.InjectDepth)
		c.ejectQ[i] = sim.NewFIFO[*packet.Message](cfg.EjectDepth)
	}
	return c
}

// RegisterWith attaches the crossbar and its staged state to a kernel.
func (c *Crossbar) RegisterWith(k *sim.Kernel) {
	k.Register(c)
	for i := range c.injQ {
		k.Register(c.injQ[i], c.ejectQ[i])
	}
}

// Nodes implements Fabric.
func (c *Crossbar) Nodes() int { return c.cfg.Nodes }

// FlitsFor implements Fabric.
func (c *Crossbar) FlitsFor(msg *packet.Message) int {
	return flitsFor(msg.WireLen(), c.cfg.FlitWidthBits)
}

// CanInject implements Fabric.
func (c *Crossbar) CanInject(src, _ NodeID) bool { return c.injQ[src].CanPush() }

// Inject implements Fabric.
func (c *Crossbar) Inject(src, dst NodeID, msg *packet.Message) {
	if int(dst) < 0 || int(dst) >= c.cfg.Nodes {
		panic(fmt.Sprintf("noc: Inject to invalid node %d", dst))
	}
	c.injQ[src].Push(injEntry{msg: msg, dst: dst, flits: c.FlitsFor(msg), enqued: c.now})
	c.injected[src]++
}

// TryEject implements Fabric.
func (c *Crossbar) TryEject(node NodeID) (*packet.Message, bool) {
	q := c.ejectQ[node]
	if !q.CanPop() {
		return nil, false
	}
	return q.Pop(), true
}

// HasEjectable implements Fabric.
func (c *Crossbar) HasEjectable(node NodeID) bool {
	return c.ejectQ[node].CanPop()
}

// Stats returns a copy of the accumulated statistics.
func (c *Crossbar) Stats() Stats {
	s := c.stats
	for _, n := range c.injected {
		s.Injected += n
	}
	return s
}

// ResetStats zeroes the accumulated statistics.
func (c *Crossbar) ResetStats() {
	c.stats = Stats{}
	for i := range c.injected {
		c.injected[i] = 0
	}
}

// Begin implements sim.Preparer: it publishes the cycle number before Eval
// so concurrent injectors timestamp against a stable value.
func (c *Crossbar) Begin(cycle uint64) { c.now = cycle }

// NextWork implements sim.Quiescer. The crossbar reports busy while any
// message is anywhere inside it: a transfer in flight, an injection queue
// holding a message, or an eject queue awaiting a tile's TryEject. The
// eject check matters even though crossbar ticks don't drain those queues:
// tiles cannot see pending arrivals themselves, so the fabric vetoes the
// skip on their behalf.
func (c *Crossbar) NextWork(now uint64) (uint64, bool) {
	for o := range c.xfer {
		if c.xfer[o].active {
			return now, false
		}
	}
	for i := range c.injQ {
		if c.injQ[i].Len() > 0 || c.ejectQ[i].Len() > 0 {
			return now, false
		}
	}
	return 0, true
}

// Tick implements sim.Ticker.
func (c *Crossbar) Tick(cycle uint64) {
	for o := range c.xfer {
		x := &c.xfer[o]
		if x.active {
			x.remaining--
			c.stats.FlitHops++
			if x.remaining <= 0 {
				c.ejectQ[o].Push(x.msg)
				c.stats.Delivered++
				c.stats.TotalLatency += cycle - x.enqued
				c.srcBusy[x.src] = false
				x.active = false
			}
			continue
		}
		// Arbitrate: round-robin over sources whose head message targets o.
		for i := 0; i < c.cfg.Nodes; i++ {
			s := (c.rrNext[o] + i) % c.cfg.Nodes
			if c.srcBusy[s] {
				continue
			}
			e, ok := c.injQ[s].Peek()
			if !ok || int(e.dst) != o || !c.ejectQ[o].CanPush() {
				continue
			}
			c.injQ[s].Pop()
			c.srcBusy[s] = true
			c.xfer[o] = xbarXfer{active: true, src: s, remaining: e.flits + c.cfg.TraversalLatency, msg: e.msg, enqued: e.enqued}
			c.rrNext[o] = (s + 1) % c.cfg.Nodes
			break
		}
	}
}
