package noc

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

func testMsg(bytes int) *packet.Message {
	return &packet.Message{Pkt: &packet.Packet{PayloadLen: bytes}}
}

func newTestMesh(w, h int) (*Mesh, *sim.Kernel) {
	cfg := DefaultMeshConfig()
	cfg.Width, cfg.Height = w, h
	m := NewMesh(cfg)
	k := sim.NewKernel(500 * sim.MHz)
	m.RegisterWith(k)
	return m, k
}

func TestMeshGeometryHelpers(t *testing.T) {
	m, _ := newTestMesh(4, 3)
	if m.Nodes() != 12 {
		t.Fatalf("Nodes = %d, want 12", m.Nodes())
	}
	id := m.NodeAt(2, 1)
	if c := m.CoordOf(id); c != (Coord{2, 1}) {
		t.Errorf("CoordOf(NodeAt(2,1)) = %v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("NodeAt out of range did not panic")
		}
	}()
	m.NodeAt(4, 0)
}

func TestMeshFlitSegmentation(t *testing.T) {
	m, _ := newTestMesh(2, 2)
	cases := []struct{ bytes, want int }{
		{1, 1}, {8, 1}, {9, 2}, {64, 8}, {65, 9}, {0, 1},
	}
	for _, c := range cases {
		if got := m.FlitsFor(testMsg(c.bytes)); got != c.want {
			t.Errorf("FlitsFor(%dB @64bit) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestMeshSingleHopLatency(t *testing.T) {
	// One-flit message to an adjacent node: inject at cycle 0, router A
	// forwards at cycle 1, router B ejects at cycle 2, visible at cycle 3
	// — "routers add one cycle of latency at each hop".
	m, k := newTestMesh(2, 1)
	src, dst := m.NodeAt(0, 0), m.NodeAt(1, 0)
	msg := testMsg(8)
	m.Inject(src, dst, msg)
	var got *packet.Message
	arrived := uint64(0)
	k.Register(sim.TickFunc(func(c uint64) {
		if got == nil {
			if mm, ok := m.TryEject(dst); ok {
				got, arrived = mm, c
			}
		}
	}))
	k.Run(10)
	if got != msg {
		t.Fatal("message not delivered")
	}
	if arrived != 3 {
		t.Errorf("visible at cycle %d, want 3", arrived)
	}
	if s := m.Stats(); s.Delivered != 1 || s.Injected != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Recorded latency: delivered at cycle 2, injected at 0.
	if lat := m.Stats().MeanLatency(); lat != 2 {
		t.Errorf("mean latency = %v, want 2", lat)
	}
}

func TestMeshLatencyScalesWithHops(t *testing.T) {
	// Corner to corner of a 5x5 mesh: 8 hops. Latency = hops + ejection.
	m, k := newTestMesh(5, 5)
	m.Inject(m.NodeAt(0, 0), m.NodeAt(4, 4), testMsg(8))
	ok := k.RunUntil(func() bool { return m.Stats().Delivered == 1 }, 100)
	if !ok {
		t.Fatal("not delivered")
	}
	if lat := m.Stats().MeanLatency(); lat != 9 {
		t.Errorf("corner-to-corner latency = %v cycles, want 9 (8 hops + eject)", lat)
	}
}

func TestMeshMultiFlitSerialization(t *testing.T) {
	// A 64-byte message is 8 flits at 64-bit width: the tail arrives 7
	// cycles after the head, so latency = hops + eject + 7.
	m, k := newTestMesh(2, 1)
	m.Inject(m.NodeAt(0, 0), m.NodeAt(1, 0), testMsg(64))
	if !k.RunUntil(func() bool { return m.Stats().Delivered == 1 }, 100) {
		t.Fatal("not delivered")
	}
	if lat := m.Stats().MeanLatency(); lat != 9 {
		t.Errorf("8-flit 1-hop latency = %v, want 9", lat)
	}
}

func TestMeshSelfDelivery(t *testing.T) {
	m, k := newTestMesh(3, 3)
	mid := m.NodeAt(1, 1)
	m.Inject(mid, mid, testMsg(8))
	if !k.RunUntil(func() bool { return m.Stats().Delivered == 1 }, 20) {
		t.Fatal("self-addressed message not delivered")
	}
	if got, ok := m.TryEject(mid); !ok || got == nil {
		t.Error("TryEject failed after delivery")
	}
}

func TestMeshPerPairOrderingPreserved(t *testing.T) {
	// Messages between the same (src,dst) pair must arrive in injection
	// order (XY routing is single-path and wormhole is FIFO per link).
	m, k := newTestMesh(4, 4)
	src, dst := m.NodeAt(0, 0), m.NodeAt(3, 2)
	const n = 20
	sent := make([]*packet.Message, n)
	next := 0
	var order []int
	k.Register(sim.TickFunc(func(uint64) {
		if next < n && m.CanInject(src, dst) {
			msg := testMsg(16)
			msg.ID = uint64(next)
			sent[next] = msg
			m.Inject(src, dst, msg)
			next++
		}
		for {
			mm, ok := m.TryEject(dst)
			if !ok {
				break
			}
			order = append(order, int(mm.ID))
		}
	}))
	k.Run(500)
	if len(order) != n {
		t.Fatalf("delivered %d/%d", len(order), n)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("out of order delivery: %v", order)
		}
	}
}

func TestMeshNoLossUnderRandomTraffic(t *testing.T) {
	// Every injected message is delivered exactly once (lossless network).
	m, k := newTestMesh(4, 4)
	rng := sim.NewRNG(3)
	delivered := make(map[uint64]int)
	injected := uint64(0)
	k.Register(sim.TickFunc(func(uint64) {
		for node := 0; node < m.Nodes(); node++ {
			id := NodeID(node)
			for {
				mm, ok := m.TryEject(id)
				if !ok {
					break
				}
				delivered[mm.ID]++
			}
			if injected < 500 && rng.Bool(0.3) {
				dst := NodeID(rng.Intn(m.Nodes()))
				if m.CanInject(id, dst) {
					msg := testMsg(8 + rng.Intn(120))
					injected++
					msg.ID = injected
					m.Inject(id, dst, msg)
				}
			}
		}
	}))
	k.Run(3000)
	if m.Stats().Injected != injected {
		t.Fatalf("stats.Injected = %d, want %d", m.Stats().Injected, injected)
	}
	if uint64(len(delivered)) != injected {
		t.Fatalf("delivered %d unique, injected %d", len(delivered), injected)
	}
	for id, count := range delivered {
		if count != 1 {
			t.Fatalf("message %d delivered %d times", id, count)
		}
	}
}

func TestMeshBackpressureWithoutDrain(t *testing.T) {
	// Nobody drains eject queues: the network must fill and stall but
	// never drop or panic; total in-flight is bounded by buffer space.
	m, k := newTestMesh(3, 3)
	sent := 0
	k.Register(sim.TickFunc(func(uint64) {
		if m.CanInject(0, m.NodeAt(2, 2)) {
			m.Inject(0, m.NodeAt(2, 2), testMsg(8))
			sent++
		}
	}))
	k.Run(2000)
	s := m.Stats()
	if s.Delivered > uint64(m.Config().EjectDepth) {
		t.Errorf("delivered %d with nobody draining, eject depth %d", s.Delivered, m.Config().EjectDepth)
	}
	if sent > 100 {
		t.Errorf("injected %d messages into a stalled network (backpressure failed)", sent)
	}
}

func TestMeshDeterminism(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		m := NewMesh(DefaultMeshConfig())
		p := MeasureSaturation(m, 500e6, 64, 500, 1000, 42)
		s := m.Stats()
		return s.Delivered, s.FlitHops, p.MeanLatencyCycles
	}
	d1, f1, l1 := run()
	d2, f2, l2 := run()
	if d1 != d2 || f1 != f2 || l1 != l2 {
		t.Errorf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", d1, f1, l1, d2, f2, l2)
	}
}

func TestMeshConfigValidation(t *testing.T) {
	bad := []MeshConfig{
		{Width: 0, Height: 3, FlitWidthBits: 64, BufferDepth: 4, InjectDepth: 4, EjectDepth: 4},
		{Width: 3, Height: 3, FlitWidthBits: 0, BufferDepth: 4, InjectDepth: 4, EjectDepth: 4},
		{Width: 3, Height: 3, FlitWidthBits: 64, BufferDepth: 1, InjectDepth: 4, EjectDepth: 4},
		{Width: 3, Height: 3, FlitWidthBits: 64, BufferDepth: 4, InjectDepth: 0, EjectDepth: 4},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic: %+v", i, cfg)
				}
			}()
			NewMesh(cfg)
		}()
	}
}

func TestMeshInjectInvalidDstPanics(t *testing.T) {
	m, _ := newTestMesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("Inject to invalid node did not panic")
		}
	}()
	m.Inject(0, 99, testMsg(8))
}
