package noc

import (
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// LoadPoint is one measurement of a fabric under synthetic load.
type LoadPoint struct {
	// OfferedLoad is the per-node injection probability per cycle.
	OfferedLoad float64
	// DeliveredGbps is the aggregate goodput at the given frequency.
	DeliveredGbps float64
	// MeanLatencyCycles is the mean inject-to-eject latency.
	MeanLatencyCycles float64
	// Delivered is the raw message count in the measurement window.
	Delivered uint64
}

// uniformDriver injects fixed-size messages at every node with probability
// load per node per cycle, destination uniform over other nodes, and drains
// every eject queue. It implements sim.Ticker.
type uniformDriver struct {
	fab  Fabric
	rng  *sim.RNG
	load float64
	msg  *packet.Message
}

func newUniformDriver(fab Fabric, msgBytes int, load float64, seed uint64) *uniformDriver {
	// All messages share one template: the NoC model reads only WireLen
	// and never mutates message content, so identity does not matter and
	// allocation stays off the measurement path.
	msg := &packet.Message{Pkt: &packet.Packet{PayloadLen: msgBytes}}
	return &uniformDriver{fab: fab, rng: sim.NewRNG(seed), load: load, msg: msg}
}

// Tick implements sim.Ticker.
func (d *uniformDriver) Tick(uint64) {
	n := d.fab.Nodes()
	for node := 0; node < n; node++ {
		id := NodeID(node)
		for {
			if _, ok := d.fab.TryEject(id); !ok {
				break
			}
		}
		if d.rng.Float64() < d.load {
			dst := d.rng.Intn(n - 1)
			if dst >= node {
				dst++
			}
			if d.fab.CanInject(id, NodeID(dst)) {
				d.fab.Inject(id, NodeID(dst), d.msg)
			}
		}
	}
}

// resettable lets the measurement loop zero stats after warmup; both
// fabrics implement it.
type resettable interface {
	Fabric
	Stats() Stats
	ResetStats()
}

// registrable fabrics attach themselves to a kernel.
type registrable interface {
	RegisterWith(k *sim.Kernel)
}

// MeasureLoad runs uniform random traffic of msgBytes-sized messages at the
// given offered load (injection probability per node per cycle) and returns
// the delivered throughput and latency over the measurement window.
func MeasureLoad(fab resettable, freqHz float64, msgBytes int, load float64, warmup, window uint64, seed uint64) LoadPoint {
	k := sim.NewKernel(sim.Frequency(freqHz))
	if r, ok := fab.(registrable); ok {
		r.RegisterWith(k)
	} else {
		k.Register(fab)
	}
	k.Register(newUniformDriver(fab, msgBytes, load, seed))
	k.Run(warmup)
	fab.ResetStats()
	k.Run(window)
	s := fab.Stats()
	seconds := float64(window) / freqHz
	return LoadPoint{
		OfferedLoad:       load,
		DeliveredGbps:     float64(s.Delivered) * float64(msgBytes) * 8 / seconds / 1e9,
		MeanLatencyCycles: s.MeanLatency(),
		Delivered:         s.Delivered,
	}
}

// MeasureSaturation measures the fabric's uniform-random saturation
// throughput: every node injects whenever it can.
func MeasureSaturation(fab resettable, freqHz float64, msgBytes int, warmup, window uint64, seed uint64) LoadPoint {
	return MeasureLoad(fab, freqHz, msgBytes, 1.0, warmup, window, seed)
}

// SweepLoad measures a latency-throughput curve over the given offered
// loads. The fabric is rebuilt for each point via the build function, since
// fabrics carry state between runs.
func SweepLoad(build func() resettable, freqHz float64, msgBytes int, loads []float64, warmup, window uint64, seed uint64) []LoadPoint {
	points := make([]LoadPoint, len(loads))
	for i, l := range loads {
		points[i] = MeasureLoad(build(), freqHz, msgBytes, l, warmup, window, seed+uint64(i))
	}
	return points
}
