package noc

import (
	"testing"

	"github.com/panic-nic/panic/internal/analytic"
)

// table3Mesh builds the mesh for one Table 3 configuration.
func table3Mesh(k, widthBits int) *Mesh {
	cfg := DefaultMeshConfig()
	cfg.Width, cfg.Height, cfg.FlitWidthBits = k, k, widthBits
	return NewMesh(cfg)
}

// TestSaturationShapeMatchesTable3 checks that measured uniform-random
// saturation throughput follows the analytic model's shape across the
// paper's Table 3 configurations: it scales up with mesh size and channel
// width in the predicted ratios, and lands in the band expected for
// single-VC wormhole routing (roughly 40–100% of the single-axis
// bisection bound).
func TestSaturationShapeMatchesTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	const freq = 500e6
	measure := func(k, w int) float64 {
		return MeasureSaturation(table3Mesh(k, w), freq, 64, 2000, 10000, 7).DeliveredGbps
	}
	g6x64 := measure(6, 64)
	g8x64 := measure(8, 64)
	g6x128 := measure(6, 128)

	for _, c := range []struct {
		name string
		k, w int
		gbps float64
	}{{"6x6/64", 6, 64, g6x64}, {"8x8/64", 8, 64, g8x64}, {"6x6/128", 6, 128, g6x128}} {
		bound := analytic.MeshParams{K: c.k, WidthBits: c.w, FreqHz: freq}.UniformBisectionBoundGbps()
		if c.gbps > bound {
			t.Errorf("%s: measured %.0f Gbps exceeds theoretical bound %.0f", c.name, c.gbps, bound)
		}
		if c.gbps < 0.4*bound {
			t.Errorf("%s: measured %.0f Gbps below 40%% of bound %.0f", c.name, c.gbps, bound)
		}
	}
	// Shape: 8x8 vs 6x6 capacity ratio is 8/6; allow slack for routing
	// effects but require clear monotonicity.
	if g8x64 <= g6x64*1.1 {
		t.Errorf("8x8 (%.0f) not clearly above 6x6 (%.0f)", g8x64, g6x64)
	}
	// Doubling channel width should roughly double throughput.
	if r := g6x128 / g6x64; r < 1.7 || r > 2.4 {
		t.Errorf("width doubling ratio = %.2f, want ~2", r)
	}
}

// TestLatencyThroughputCurve checks the canonical NoC behaviour: latency is
// flat at low load and blows up near saturation; delivered throughput is
// monotone in offered load below saturation.
func TestLatencyThroughputCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("load sweep is slow")
	}
	build := func() resettable { return table3Mesh(6, 64) }
	// Offered load in Gbps is load × 36 nodes × 512 bits × 500 MHz ≈
	// load × 9.2 Tbps; saturation is near 460 Gbps (load ≈ 0.05).
	points := SweepLoad(build, 500e6, 64, []float64{0.005, 0.02, 0.9}, 1000, 6000, 11)
	low, mid, high := points[0], points[1], points[2]
	if low.DeliveredGbps >= mid.DeliveredGbps || mid.DeliveredGbps >= high.DeliveredGbps {
		t.Errorf("throughput not monotone: %.1f, %.1f, %.1f Gbps",
			low.DeliveredGbps, mid.DeliveredGbps, high.DeliveredGbps)
	}
	// At 2% load the mesh is uncongested: latency close to pure hop
	// latency (avg ~4.4 hops + eject + 7 serialization cycles for 8 flits).
	if low.MeanLatencyCycles > 30 {
		t.Errorf("low-load latency %.1f cycles, want near-minimal", low.MeanLatencyCycles)
	}
	if high.MeanLatencyCycles < 3*low.MeanLatencyCycles {
		t.Errorf("saturation latency %.1f not clearly above low-load %.1f",
			high.MeanLatencyCycles, low.MeanLatencyCycles)
	}
}

// TestCrossbarVsMeshTradeoff reproduces the paper's wire-length argument
// (§3.1.2): an idealized (zero-extra-latency) crossbar beats the mesh on
// latency, but once the crossbar pays a realistic long-wire traversal
// penalty the mesh wins at low load, which is why PANIC distributes the
// switch.
func TestCrossbarVsMeshTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric comparison is slow")
	}
	mesh := table3Mesh(6, 64)
	meshLat := MeasureLoad(mesh, 500e6, 64, 0.02, 1000, 5000, 3).MeanLatencyCycles

	ideal := NewCrossbar(CrossbarConfig{Nodes: 36, FlitWidthBits: 64, TraversalLatency: 0, InjectDepth: 8, EjectDepth: 8})
	idealLat := MeasureLoad(ideal, 500e6, 64, 0.02, 1000, 5000, 3).MeanLatencyCycles

	slow := NewCrossbar(CrossbarConfig{Nodes: 36, FlitWidthBits: 64, TraversalLatency: 30, InjectDepth: 8, EjectDepth: 8})
	slowLat := MeasureLoad(slow, 500e6, 64, 0.02, 1000, 5000, 3).MeanLatencyCycles

	if idealLat >= meshLat {
		t.Errorf("ideal crossbar latency %.1f not below mesh %.1f", idealLat, meshLat)
	}
	if slowLat <= meshLat {
		t.Errorf("long-wire crossbar latency %.1f not above mesh %.1f", slowLat, meshLat)
	}
}
