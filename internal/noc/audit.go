package noc

import "fmt"

// This file is the mesh's contribution to the runtime invariant monitor
// (internal/invariant): custody accounting over the occupancy counters
// that already drive fast-forward quiescence, cross-checked against the
// actual buffer occupancy of every router. The audits are read-only and
// meant to run at the kernel's end-of-cycle barrier, when all staged FIFO
// state is committed (Len is exact, Pending == Len).

// InFlight returns the number of messages currently inside the fabric:
// injected by a tile but not yet handed back out of TryEject. It is the
// same quantity the fast-forward quiescence check gates on.
func (m *Mesh) InFlight() uint64 {
	in, out := m.OccCounts()
	return in - out
}

// OccCounts returns the lifetime totals of messages injected into and
// ejected from the mesh. They are never reset, so the boundary
// cross-check "every tile emission is a mesh injection" holds over whole
// runs: sum of tile Emitted counters == in, sum of tile Ejected counters
// == out.
func (m *Mesh) OccCounts() (in, out uint64) {
	for _, r := range m.routers {
		in += r.stats.occIn
		out += r.stats.occOut
	}
	return in, out
}

// AuditConservation checks message custody inside the fabric and returns
// the first violation found:
//
//   - occIn >= occOut globally (a message cannot leave before it entered);
//   - per router, delivered − occOut == eject-queue occupancy (every
//     assembled message is either parked awaiting its tile or already
//     ejected) — skipped after ResetStats, which zeroes delivered;
//   - in-flight >= the whole messages visibly buffered (injection queues,
//     partial reassemblies, eject queues) — the remainder is flits in
//     transit. A message mid-serialization at its source lane is not
//     counted: its head flit is already in the network and may already
//     occupy the destination's assembly slot, so counting the source lane
//     too would double-count it;
//   - in-flight == 0 implies every buffer in the mesh is empty.
//
// Call it only between cycles (e.g. from sim.Kernel.ObserveCycleEnd);
// mid-cycle the staged FIFO state makes Len undefined.
func (m *Mesh) AuditConservation() error {
	var in, out, buffered uint64
	for _, r := range m.routers {
		in += r.stats.occIn
		out += r.stats.occOut
		if !m.statsReset && r.stats.delivered-r.stats.occOut != uint64(r.ejectQ.Len()) {
			return fmt.Errorf("noc: router %d delivered %d - ejected %d != eject queue occupancy %d",
				r.id, r.stats.delivered, r.stats.occOut, r.ejectQ.Len())
		}
		buffered += uint64(r.ejectQ.Len())
		for v := range r.inj.lanes {
			buffered += uint64(r.inj.lanes[v].q.Len())
		}
		for v := range r.assembly {
			if r.assembly[v].msg != nil {
				buffered++
			}
		}
	}
	if in < out {
		return fmt.Errorf("noc: ejected %d messages but only %d were injected", out, in)
	}
	inFlight := in - out
	if inFlight < buffered {
		return fmt.Errorf("noc: in-flight %d < visibly buffered %d (occupancy counters undercount)",
			inFlight, buffered)
	}
	if inFlight == 0 {
		for _, r := range m.routers {
			for p := range r.in {
				for _, q := range r.in[p] {
					if q != nil && q.Len() != 0 {
						return fmt.Errorf("noc: router %d holds %d flits while mesh reports empty",
							r.id, q.Len())
					}
				}
			}
		}
	}
	return nil
}

// NodeLinkFaulted reports whether any mesh link adjacent to n — incoming
// or outgoing, any direction — carries an injected fault. The health
// control plane reads it as a fabric health register when vetting
// failover targets: a replica behind a severed or degraded link is not a
// safe reroute destination even when the tile itself is healthy.
func (m *Mesh) NodeLinkFaulted(n NodeID) bool {
	r := m.routers[n]
	for p := portNorth; p < numPorts; p++ {
		nb := r.neighbor[p]
		if nb == nil {
			continue
		}
		if !r.linkFault[p].Clean() {
			return true
		}
		if !nb.linkFault[m.portToward(nb.id, n)].Clean() {
			return true
		}
	}
	return false
}
