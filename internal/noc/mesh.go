package noc

import (
	"fmt"
	"sync/atomic"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
)

// Port directions on a mesh router. Local is the tile attachment.
const (
	portLocal = iota
	portNorth
	portEast
	portSouth
	portWest
	numPorts
)

var oppositePort = [numPorts]int{portLocal, portSouth, portWest, portNorth, portEast}

// MeshConfig parameterizes a 2D mesh.
type MeshConfig struct {
	// Width and Height are the mesh dimensions in tiles.
	Width, Height int
	// FlitWidthBits is the channel width; a message of b bits occupies
	// ceil(b/FlitWidthBits) flits.
	FlitWidthBits int
	// BufferDepth is the per-input-port buffer depth in flits (per
	// virtual channel). Values below 2 halve channel throughput (the
	// credit loop needs a flit in flight plus one buffered); NewMesh
	// rejects them.
	BufferDepth int
	// VirtualChannels is the number of virtual channels per physical
	// link (0 or 1 = plain wormhole). Packets are assigned a VC at
	// injection and keep it end to end; flits of packets on different
	// VCs interleave on a link, so one blocked packet no longer stalls
	// the wire — the standard answer to the paper's §6 flow-control
	// question. XY routing stays deadlock-free with any VC count.
	VirtualChannels int
	// InjectDepth and EjectDepth are the per-node message queue depths at
	// the local ports.
	InjectDepth, EjectDepth int
}

// DefaultMeshConfig returns the paper's default operating point: a 6×6 mesh
// of 64-bit channels (Table 3, first row).
func DefaultMeshConfig() MeshConfig {
	return MeshConfig{Width: 6, Height: 6, FlitWidthBits: 64, BufferDepth: 8, VirtualChannels: 1, InjectDepth: 8, EjectDepth: 8}
}

// Mesh is a 2D mesh of wormhole routers. It implements Fabric, sim.Ticker,
// sim.Preparer (publishing the cycle before Eval), sim.Parallelizable (one
// shard per router, so a parallel kernel spreads the mesh across workers),
// and sim.Quiescer (reporting idleness for fast-forward); RegisterWith
// attaches it and all its staged queues to a kernel.
//
// All statistics are accumulated per router — each router's local port is
// owned by exactly one tile, so injection/ejection counters have a single
// writer even under a parallel kernel — and summed on demand by Stats.
type Mesh struct {
	cfg     MeshConfig
	vcs     int
	routers []*router
	now     uint64
	// statsReset records that ResetStats zeroed the delivered counters,
	// which disarms the delivered-vs-ejected audit (occIn/occOut survive).
	statsReset bool

	// Event-mode state (see sim.EventAware). eventOn mirrors the kernel's
	// mode each cycle; selfPoke raises the mesh's kernel-level wake flag
	// when a tile or control plane touches mesh state from outside a mesh
	// tick; tileWake[node] wakes the local tile when the mesh hands it an
	// arrival or returns an injection credit; tickAll forces every router
	// live for one cycle (the kernel's wake-all contract).
	k        *sim.Kernel
	eventOn  bool
	selfPoke sim.Poker
	tileWake []sim.Poker
	tickAll  bool
}

// injEntry is a message waiting at a local injection port.
type injEntry struct {
	msg    *packet.Message
	dst    NodeID
	flits  int
	enqued uint64
}

type router struct {
	m      *Mesh
	id     NodeID
	x, y   int
	in     [numPorts][]*sim.FIFO[Flit] // [port][vc]; in[portLocal] unused
	inj    injector
	ejectQ *sim.FIFO[*packet.Message]
	// nextPort[dst] is the precomputed XY-routing output port for every
	// destination node — the per-flit route computation reduced to one
	// table read, as a real router's route-compute stage would be a small
	// combinational lookup.
	nextPort []uint8
	// heads[p][v] caches the head flit of input (p, vc) for the duration
	// of one tick, so output arbitration reads an array instead of
	// re-peeking FIFOs O(outputs × inputs) times. Entries go stale only
	// after a pop, and consumed[p] already guards every read after a pop.
	heads [numPorts][]headState
	// assembly reassembles one message per VC at the local output.
	assembly []struct {
		msg    *packet.Message
		enqued uint64
	}
	// holder[out][vc] is the input port whose wormhole owns that VC lane
	// of the output, or -1.
	holder   [numPorts][]int
	rrIn     [numPorts]int // round-robin pointer over inputs, per output
	rrVC     [numPorts]int // round-robin pointer over VCs, per output
	consumed [numPorts]bool
	neighbor [numPorts]*router
	// linkFault[o] is the injected fault on the outgoing link at port o
	// (zero value = healthy). Local ports cannot fault.
	linkFault [numPorts]LinkFault
	// stats are this router's counters. injected/ejected are written by
	// the local tile (single writer); the rest by the router's own shard.
	stats routerStats
	// tb is this router's trace buffer (nil when tracing is off). One
	// buffer per router keeps span emission single-writer under the
	// parallel kernel's one-shard-per-router partitioning.
	tb *trace.Buffer

	// Event-mode liveness. A router whose tick moves no flit changes no
	// state at all (round-robin pointers, holders, assembly, and counters
	// only mutate on a send), so it can sleep until one of its inputs,
	// credits, or faults changes — each such edge pokes it. active means
	// the last tick moved a flit (stay awake); poked is the level-
	// triggered external wake, consumed into live by Mesh.Begin
	// (sequentially, so shard timing cannot affect liveness); faultWake is
	// the next cycle a PassEveryN-limited output with a waiting candidate
	// opens (0 = none): fault windows open by the clock, not by a poke.
	active    bool
	live      bool
	poked     atomic.Bool
	faultWake uint64
}

// poke marks the router live for the next cycle (or the current one if
// called from a start-of-cycle event, before Begin samples the flags).
func (r *router) poke() {
	if !r.poked.Load() {
		r.poked.Store(true)
	}
}

// headState is one input lane's cached head flit for the current tick.
type headState struct {
	f  Flit
	ok bool
}

// routerStats are one router's contribution to the mesh totals. occIn and
// occOut count every message ever injected at / ejected from this router
// and are never reset: summed over all routers their difference is the
// in-flight message count, which the fast-forward quiescence check uses.
type routerStats struct {
	injected     uint64
	occIn        uint64
	occOut       uint64
	delivered    uint64
	flitHops     uint64
	totalLatency uint64
}

// LinkFault is an injected condition on one directional mesh link. The
// zero value means healthy.
type LinkFault struct {
	// Severed blocks the link entirely: no flit crosses until the fault
	// is lifted. Under XY routing traffic for that turn wedges in place
	// (and backpressure spreads) — exactly the failure a health monitor
	// has to detect from the outside.
	Severed bool
	// PassEveryN >= 2 degrades the link to at most one flit every N
	// cycles (a flaky SerDes running with retries). 0 or 1 = full rate.
	PassEveryN int
}

// Clean reports whether the fault is the healthy zero state.
func (f LinkFault) Clean() bool { return !f.Severed && f.PassEveryN < 2 }

// blocks reports whether the fault gates the link shut at the given cycle.
func (f LinkFault) blocks(now uint64) bool {
	if f.Severed {
		return true
	}
	return f.PassEveryN >= 2 && now%uint64(f.PassEveryN) != 0
}

// injector serializes queued messages into flits at the local input port.
// Each virtual channel has an independent lane, so a backpressured packet
// does not block later packets on other VCs; the physical port still
// emits at most one flit per cycle. Packets are assigned to VCs by
// destination, which preserves per-(src,dst) ordering — packets to the
// same destination always share a lane and a single wormhole path.
type injector struct {
	lanes []injLane
}

type injLane struct {
	q     *sim.FIFO[injEntry]
	cur   injEntry
	sent  int
	valid bool
}

// vcFor maps a destination to its virtual channel.
func (i *injector) vcFor(dst NodeID) int { return int(dst) % len(i.lanes) }

// peek returns the candidate flit on the given VC lane, if any. An idle
// lane offers the head of its own message queue.
func (i *injector) peek(vc int) (Flit, bool) {
	l := &i.lanes[vc]
	if l.valid {
		last := l.sent == l.cur.flits-1
		return Flit{Dst: l.cur.dst, VC: vc, Head: false, Tail: last}, true
	}
	e, ok := l.q.Peek()
	if !ok {
		return Flit{}, false
	}
	return Flit{Msg: e.msg, Dst: e.dst, VC: vc, Head: true, Tail: e.flits == 1, Enq: e.enqued}, true
}

func (i *injector) pop(vc int) {
	l := &i.lanes[vc]
	if l.valid {
		l.sent++
		if l.sent == l.cur.flits {
			l.valid = false
		}
		return
	}
	e := l.q.Pop()
	if e.flits > 1 {
		l.cur, l.sent, l.valid = e, 1, true
	}
}

// NewMesh builds a Width×Height mesh.
func NewMesh(cfg MeshConfig) *Mesh {
	if cfg.Width < 1 || cfg.Height < 1 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.FlitWidthBits < 1 {
		panic("noc: flit width must be positive")
	}
	if cfg.BufferDepth < 2 {
		panic("noc: buffer depth below 2 cannot sustain wormhole throughput")
	}
	if cfg.InjectDepth < 1 || cfg.EjectDepth < 1 {
		panic("noc: local queue depths must be positive")
	}
	if cfg.VirtualChannels < 0 {
		panic("noc: negative virtual channel count")
	}
	vcs := cfg.VirtualChannels
	if vcs == 0 {
		vcs = 1
	}
	m := &Mesh{cfg: cfg, vcs: vcs}
	n := cfg.Width * cfg.Height
	m.routers = make([]*router, n)
	for id := range m.routers {
		r := &router{m: m, id: NodeID(id), x: id % cfg.Width, y: id / cfg.Width}
		for p := portNorth; p < numPorts; p++ {
			r.in[p] = make([]*sim.FIFO[Flit], vcs)
			for v := 0; v < vcs; v++ {
				r.in[p][v] = sim.NewFIFO[Flit](cfg.BufferDepth)
			}
		}
		r.inj.lanes = make([]injLane, vcs)
		for v := range r.inj.lanes {
			r.inj.lanes[v].q = sim.NewFIFO[injEntry](cfg.InjectDepth)
		}
		r.ejectQ = sim.NewFIFO[*packet.Message](cfg.EjectDepth)
		r.assembly = make([]struct {
			msg    *packet.Message
			enqued uint64
		}, vcs)
		for p := range r.holder {
			r.holder[p] = make([]int, vcs)
			for v := range r.holder[p] {
				r.holder[p][v] = -1
			}
		}
		for p := range r.heads {
			r.heads[p] = make([]headState, vcs)
		}
		m.routers[id] = r
	}
	for _, r := range m.routers {
		r.nextPort = make([]uint8, n)
		for dst := range r.nextPort {
			r.nextPort[dst] = uint8(r.route(NodeID(dst)))
		}
	}
	for _, r := range m.routers {
		if r.y > 0 {
			r.neighbor[portNorth] = m.routers[int(r.id)-cfg.Width]
		}
		if r.y < cfg.Height-1 {
			r.neighbor[portSouth] = m.routers[int(r.id)+cfg.Width]
		}
		if r.x > 0 {
			r.neighbor[portWest] = m.routers[int(r.id)-1]
		}
		if r.x < cfg.Width-1 {
			r.neighbor[portEast] = m.routers[int(r.id)+1]
		}
	}
	return m
}

// RegisterWith attaches the mesh and its staged state to a kernel. The mesh
// keeps the kernel handle so each cycle's Begin can mirror the kernel's
// event mode, and wires its own kernel-level poker for wakes originating
// outside mesh ticks (Inject, TryEject, SetLinkFault).
func (m *Mesh) RegisterWith(k *sim.Kernel) {
	k.Register(m)
	m.k = k
	m.selfPoke = k.PokerFor(m)
	for _, r := range m.routers {
		for p := portNorth; p < numPorts; p++ {
			for _, f := range r.in[p] {
				k.Register(f)
			}
		}
		for v := range r.inj.lanes {
			k.Register(r.inj.lanes[v].q)
		}
		k.Register(r.ejectQ)
	}
}

// SetNodeWaker wires the poker that wakes the tile attached at node when
// the mesh ejects a message to it or returns an injection credit. Unwired
// nodes keep the zero no-op Poker, which is only safe for tiles that never
// sleep; the builder wires every placed tile.
func (m *Mesh) SetNodeWaker(node NodeID, p sim.Poker) {
	if m.tileWake == nil {
		m.tileWake = make([]sim.Poker, len(m.routers))
	}
	m.tileWake[node] = p
}

// wakeTile pokes the tile attached at the given node, if wired.
func (m *Mesh) wakeTile(node NodeID) {
	if m.tileWake != nil {
		m.tileWake[node].Poke()
	}
}

// AttachTracer gives every router its own trace buffer, so hop and
// transit spans can be emitted from the parallel Eval phase without
// cross-shard writes. Buffers are created in router-ID order, which fixes
// their drain order at commit and keeps trace output deterministic.
func (m *Mesh) AttachTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	for _, r := range m.routers {
		name := "router" + m.CoordOf(r.id).String()
		tr.NameLoc(trace.LocNode, uint32(r.id), name)
		r.tb = tr.Buffer(name)
	}
}

// Config returns the mesh configuration.
func (m *Mesh) Config() MeshConfig { return m.cfg }

// Nodes implements Fabric.
func (m *Mesh) Nodes() int { return len(m.routers) }

// NodeAt returns the node at mesh coordinate (x, y).
func (m *Mesh) NodeAt(x, y int) NodeID {
	if x < 0 || x >= m.cfg.Width || y < 0 || y >= m.cfg.Height {
		panic(fmt.Sprintf("noc: NodeAt(%d,%d) outside %dx%d mesh", x, y, m.cfg.Width, m.cfg.Height))
	}
	return NodeID(y*m.cfg.Width + x)
}

// CoordOf returns the mesh coordinate of a node.
func (m *Mesh) CoordOf(id NodeID) Coord {
	return Coord{X: int(id) % m.cfg.Width, Y: int(id) / m.cfg.Width}
}

// FlitsFor implements Fabric.
func (m *Mesh) FlitsFor(msg *packet.Message) int {
	return flitsFor(msg.WireLen(), m.cfg.FlitWidthBits)
}

// CanInject implements Fabric.
func (m *Mesh) CanInject(src, dst NodeID) bool {
	inj := &m.routers[src].inj
	return inj.lanes[inj.vcFor(dst)].q.CanPush()
}

// Inject implements Fabric.
func (m *Mesh) Inject(src, dst NodeID, msg *packet.Message) {
	if int(dst) < 0 || int(dst) >= len(m.routers) {
		panic(fmt.Sprintf("noc: Inject to invalid node %d", dst))
	}
	r := m.routers[src]
	r.inj.lanes[r.inj.vcFor(dst)].q.Push(injEntry{msg: msg, dst: dst, flits: m.FlitsFor(msg), enqued: m.now})
	r.stats.injected++
	r.stats.occIn++
	// The staged entry commits at end of cycle; the router must look then.
	r.poke()
	m.selfPoke.Poke()
}

// TryEject implements Fabric.
func (m *Mesh) TryEject(node NodeID) (*packet.Message, bool) {
	r := m.routers[node]
	if !r.ejectQ.CanPop() {
		return nil, false
	}
	r.stats.occOut++
	// The freed eject slot may unblock a head flit the router reserved
	// against; the credit lands at commit, so the router looks next cycle.
	r.poke()
	m.selfPoke.Poke()
	return r.ejectQ.Pop(), true
}

// HasEjectable implements Fabric.
func (m *Mesh) HasEjectable(node NodeID) bool {
	return m.routers[node].ejectQ.CanPop()
}

// portToward returns the output port on from's router facing the adjacent
// node to; it panics when the nodes are not mesh neighbors (link faults
// are per physical link, not per path).
func (m *Mesh) portToward(from, to NodeID) int {
	r := m.routers[from]
	for p := portNorth; p < numPorts; p++ {
		if nb := r.neighbor[p]; nb != nil && nb.id == to {
			return p
		}
	}
	panic(fmt.Sprintf("noc: nodes %v and %v are not adjacent", m.CoordOf(from), m.CoordOf(to)))
}

// SetLinkFault installs (or, with the zero LinkFault, lifts) a fault on
// the directional link from -> to. The nodes must be adjacent.
func (m *Mesh) SetLinkFault(from, to NodeID, f LinkFault) {
	m.routers[from].linkFault[m.portToward(from, to)] = f
	// Lifting a fault can unblock a sleeping router's waiting candidate.
	m.routers[from].poke()
	m.selfPoke.Poke()
}

// LinkFaultBetween returns the installed fault on the directional link
// from -> to.
func (m *Mesh) LinkFaultBetween(from, to NodeID) LinkFault {
	return m.routers[from].linkFault[m.portToward(from, to)]
}

// Stats returns the accumulated statistics, summed over routers.
func (m *Mesh) Stats() Stats {
	var s Stats
	for _, r := range m.routers {
		s.Injected += r.stats.injected
		s.Delivered += r.stats.delivered
		s.FlitHops += r.stats.flitHops
		s.TotalLatency += r.stats.totalLatency
	}
	return s
}

// ResetStats zeroes the accumulated statistics (for measuring steady state
// after warmup). The occupancy counters behind fast-forward are preserved.
func (m *Mesh) ResetStats() {
	m.statsReset = true
	for _, r := range m.routers {
		r.stats = routerStats{occIn: r.stats.occIn, occOut: r.stats.occOut}
	}
}

// Begin implements sim.Preparer: the cycle number is published before Eval
// so routers and injecting tiles read a stable value however the Eval
// phase is ordered or sharded. Under an event-driven kernel Begin also
// fixes each router's liveness for the cycle — pokes are consumed here,
// sequentially, so the set of routers that tick can never depend on Eval
// shard timing. A poke landing later in this cycle keeps the mesh awake
// (EndCycle sees the flag) and is consumed by the next Begin.
func (m *Mesh) Begin(cycle uint64) {
	m.now = cycle
	m.eventOn = m.k != nil && m.k.EventDriven()
	if !m.eventOn {
		return
	}
	tickAll := m.tickAll
	m.tickAll = false
	for _, r := range m.routers {
		live := tickAll || r.active || (r.faultWake != 0 && cycle >= r.faultWake)
		if r.poked.Load() {
			r.poked.Store(false)
			live = true
		}
		r.live = live
	}
}

// WakeAll implements sim.BulkWaker: the next Begin marks every router live.
func (m *Mesh) WakeAll() { m.tickAll = true }

// Tick implements sim.Ticker: one cycle of every router.
func (m *Mesh) Tick(cycle uint64) {
	m.now = cycle
	if m.eventOn {
		for _, r := range m.routers {
			if r.live {
				r.tick()
			}
		}
		return
	}
	for _, r := range m.routers {
		r.tick()
	}
}

// ParallelShards implements sim.Parallelizable: one shard per router.
func (m *Mesh) ParallelShards() int { return len(m.routers) }

// TickShard implements sim.Parallelizable. Routers only read committed
// state from their neighbors' queues and stage writes into them, so shards
// are order-independent (the package contract for Tickers).
func (m *Mesh) TickShard(cycle uint64, shard int) {
	r := m.routers[shard]
	if m.eventOn && !r.live {
		return
	}
	r.tick()
}

// EndCycle implements sim.EventAware. The mesh must tick next cycle while
// any router is active or has a pending poke; otherwise the earliest
// fault-window opening (if any) bounds the sleep, and with none the mesh
// sleeps until poked. Nothing is deferred while asleep — an inactive,
// unpoked router's tick would change no state — so SyncTo is a no-op.
func (m *Mesh) EndCycle(cycle uint64) uint64 {
	wake := uint64(sim.WakeNever)
	for _, r := range m.routers {
		if r.active || r.poked.Load() {
			return cycle + 1
		}
		// A parked eject queue keeps the mesh awake even though no router
		// moves: the waiting tile cannot see the arrival in its own
		// NextWork, so the mesh must be the component that pins the cycle
		// live, exactly as NextWork does for the ticked loop's skip.
		if r.ejectQ.Len() > 0 {
			return cycle + 1
		}
		if r.faultWake != 0 && r.faultWake < wake {
			wake = r.faultWake
		}
	}
	return wake
}

// SyncTo implements sim.EventAware; see EndCycle.
func (m *Mesh) SyncTo(cycle uint64) {}

// NextWork implements sim.Quiescer: an empty mesh — every injected message
// handed to the local tile, nothing buffered anywhere — has no work until
// someone injects, and an injecting tile is never itself idle. While any
// message is in flight (including one parked in an eject queue awaiting a
// tile) the mesh vetoes the skip, covering tiles' blindness to pending
// arrivals.
func (m *Mesh) NextWork(now uint64) (uint64, bool) {
	var in, out uint64
	for _, r := range m.routers {
		in += r.stats.occIn
		out += r.stats.occOut
	}
	if in != out {
		return now, false
	}
	return 0, true
}

// peekIn returns the head flit at (input port, vc).
func (r *router) peekIn(p, vc int) (Flit, bool) {
	if p == portLocal {
		return r.inj.peek(vc)
	}
	return r.in[p][vc].Peek()
}

func (r *router) popIn(p, vc int) {
	if p == portLocal {
		if !r.inj.lanes[vc].valid {
			// This pop drains the lane's message queue, returning an
			// injection credit to the local tile at commit.
			r.m.wakeTile(r.id)
		}
		r.inj.pop(vc)
		return
	}
	r.in[p][vc].Pop()
	// The freed buffer slot is an upstream credit at commit: the neighbor
	// feeding this port may have a flit waiting on it.
	if nb := r.neighbor[p]; nb != nil {
		nb.poke()
	}
}

// route returns the output port for a flit under XY dimension-order
// routing.
func (r *router) route(dst NodeID) int {
	dx := int(dst)%r.m.cfg.Width - r.x
	dy := int(dst)/r.m.cfg.Width - r.y
	switch {
	case dx > 0:
		return portEast
	case dx < 0:
		return portWest
	case dy > 0:
		return portSouth
	case dy < 0:
		return portNorth
	default:
		return portLocal
	}
}

// canAccept reports whether output port o can take one more flit on the
// flit's VC.
func (r *router) canAccept(o int, f Flit) bool {
	if o == portLocal {
		if f.Head {
			// Reserve an eject slot: other VCs mid-assembly also hold
			// reservations. Occupancy is the conservative Pending count —
			// committed entries plus same-cycle pushes, blind to the local
			// tile's same-cycle pops — so the decision is identical whether
			// the tile has ticked yet or not (the order-independence
			// contract; same-cycle eject credits return next cycle).
			free := r.ejectQ.Cap() - r.ejectQ.Pending()
			reserved := 0
			for v := range r.assembly {
				if v != f.VC && r.assembly[v].msg != nil {
					reserved++
				}
			}
			return free > reserved
		}
		return true
	}
	nb := r.neighbor[o]
	if nb == nil {
		panic(fmt.Sprintf("noc: route to missing neighbor %d from %v", o, r.m.CoordOf(r.id)))
	}
	return nb.in[oppositePort[o]][f.VC].CanPush()
}

// deliver moves a flit out through output port o.
func (r *router) deliver(o int, f Flit) {
	if o == portLocal {
		a := &r.assembly[f.VC]
		if f.Head {
			a.msg, a.enqued = f.Msg, f.Enq
		}
		if f.Tail {
			msg := a.msg
			a.msg = nil
			r.ejectQ.Push(msg)
			r.m.wakeTile(r.id) // arrival visible to the tile at commit
			r.stats.delivered++
			r.stats.totalLatency += r.m.now - a.enqued
			if r.tb.Want(msg.TraceID) {
				// One mesh-transit span per message, from injection-queue
				// entry to tail-flit ejection at the destination router.
				r.tb.Emit(trace.Span{
					Msg: msg.TraceID, Kind: trace.KindEject,
					LocKind: trace.LocNode, Loc: uint32(r.id),
					Start: a.enqued, End: r.m.now,
					Tenant: msg.Tenant,
				})
			}
		}
		return
	}
	if f.Head && f.Msg != nil && r.tb.Want(f.Msg.TraceID) {
		r.tb.Emit(trace.Span{
			Msg: f.Msg.TraceID, Kind: trace.KindHop,
			LocKind: trace.LocNode, Loc: uint32(r.id),
			Start: r.m.now, End: r.m.now,
			A: uint64(o), B: uint64(f.Dst),
			Tenant: f.Msg.Tenant,
		})
	}
	r.neighbor[o].in[oppositePort[o]][f.VC].Push(f)
	r.neighbor[o].poke() // the flit is the neighbor's input next cycle
	r.stats.flitHops++
}

// laneReady reports whether input lane (p, vc) holds a committed flit (for
// the injector: a mid-serialization message or a queued one).
func (r *router) laneReady(p, vc int) bool {
	if p == portLocal {
		l := &r.inj.lanes[vc]
		return l.valid || l.q.CanPop()
	}
	return r.in[p][vc].CanPop()
}

// holderOf returns the output port whose VC-v wormhole is owned by input
// port p, or -1. A body flit is only ever forwarded by its holder, so this
// is the fast-path route lookup.
func (r *router) holderOf(p, v int) int {
	for o := 0; o < numPorts; o++ {
		if r.holder[o][v] == p {
			return o
		}
	}
	return -1
}

// streamOne forwards the cached head flit of input lane (p, v) through
// output o, exactly as the general arbitration below would when that lane
// is the only live input competing for o: the wormhole already owns the
// output, so the only questions left are the link fault gate and
// downstream acceptance. It reports whether the flit moved.
func (r *router) streamOne(o, p, v int) bool {
	if o != portLocal && r.linkFault[o].blocks(r.m.now) {
		if n := uint64(r.linkFault[o].PassEveryN); n >= 2 {
			next := r.m.now + n - r.m.now%n
			if r.faultWake == 0 || next < r.faultWake {
				r.faultWake = next
			}
		}
		return false
	}
	f := r.heads[p][v].f
	if !r.canAccept(o, f) {
		return false
	}
	r.popIn(p, v)
	r.deliver(o, f)
	if f.Tail {
		r.holder[o][v] = -1
	}
	r.rrVC[o] = (v + 1) % r.m.vcs
	return true
}

func (r *router) tick() {
	r.faultWake = 0
	vcs := r.m.vcs
	// Cache every input lane's head flit once: output arbitration below
	// would otherwise re-peek each input once per output port. consumed[p]
	// guards the cache after a pop (one pop per input port per cycle).
	// The same pass counts live lanes, so an idle router is proven idle
	// (and a lone mid-wormhole lane spotted) without a separate scan.
	inputs := 0
	headSeen := false
	var livePort [numPorts]int8
	for p := 0; p < numPorts; p++ {
		for v := 0; v < vcs; v++ {
			h := &r.heads[p][v]
			// Test emptiness before peeking: most lanes are empty in any
			// given cycle, and the occupancy test is two integer loads
			// where a peek copies out a whole flit.
			if !r.laneReady(p, v) {
				h.ok = false
				continue
			}
			h.f, h.ok = r.peekIn(p, v)
			headSeen = headSeen || h.f.Head
			if inputs < numPorts {
				livePort[inputs] = int8(p)
			}
			inputs++
		}
	}
	if inputs == 0 {
		r.active = false
		return
	}
	// Streaming fast path: every live lane is mid-wormhole (no head flit
	// needs allocating), and each wormhole owns a distinct output — then
	// arbitration degenerates to "move each flit if its output accepts it",
	// with no cross-lane interaction to order. Under saturation nearly
	// every hop qualifies (a 256-byte frame is 32 flits, 31 of them body).
	// Restricted to single-VC meshes so a lane is identified by its port.
	if !headSeen && vcs == 1 && inputs <= numPorts {
		var outOf [numPorts]int8
		var used [numPorts]bool
		ok := true
		for i := 0; i < inputs; i++ {
			o := r.holderOf(int(livePort[i]), 0)
			if o < 0 || used[o] {
				ok = false
				break
			}
			used[o] = true
			outOf[i] = int8(o)
		}
		if ok {
			moved := false
			for i := 0; i < inputs; i++ {
				if r.streamOne(int(outOf[i]), int(livePort[i]), 0) {
					moved = true
				}
			}
			r.active = moved
			return
		}
	}
	for p := range r.consumed {
		r.consumed[p] = false
	}
	// Build a conservative per-output candidate mask (a head flit routed
	// to o, or an active wormhole with flits waiting) so arbitration skips
	// outputs nothing can use this cycle.
	var cand [numPorts]bool
	for p := 0; p < numPorts; p++ {
		for v := 0; v < vcs; v++ {
			if h := &r.heads[p][v]; h.ok && h.f.Head {
				cand[r.nextPort[h.f.Dst]] = true
			}
		}
	}
	for o := 0; o < numPorts; o++ {
		if cand[o] {
			continue
		}
		for v := 0; v < vcs; v++ {
			if h := r.holder[o][v]; h >= 0 && r.heads[h][v].ok {
				cand[o] = true
				break
			}
		}
	}
	moved := false
	for o := 0; o < numPorts; o++ {
		if !cand[o] {
			continue
		}
		if o != portLocal && r.linkFault[o].blocks(r.m.now) {
			// A candidate is waiting on a fault-gated output. PassEveryN
			// windows open by the clock, with no poke to ride, so record
			// the next opening as a timed wake; a severed link only
			// reopens via SetLinkFault, which pokes.
			if n := uint64(r.linkFault[o].PassEveryN); n >= 2 {
				next := r.m.now + n - r.m.now%n
				if r.faultWake == 0 || next < r.faultWake {
					r.faultWake = next
				}
			}
			continue
		}
		// One flit per output per cycle; VCs take turns (round-robin),
		// letting packets interleave on the physical link.
		sent := false
		for vi := 0; vi < vcs && !sent; vi++ {
			v := (r.rrVC[o] + vi) % vcs
			if h := r.holder[o][v]; h >= 0 {
				hs := &r.heads[h][v]
				if !hs.ok || r.consumed[h] || !r.canAccept(o, hs.f) {
					continue
				}
				f := hs.f
				r.popIn(h, v)
				r.consumed[h] = true
				r.deliver(o, f)
				if f.Tail {
					r.holder[o][v] = -1
				}
				r.rrVC[o] = (v + 1) % vcs
				sent = true
				continue
			}
			// Allocate this VC lane to a waiting head flit.
			for ii := 0; ii < numPorts; ii++ {
				in := (r.rrIn[o] + ii) % numPorts
				if r.consumed[in] {
					continue
				}
				hs := &r.heads[in][v]
				if !hs.ok || !hs.f.Head || int(r.nextPort[hs.f.Dst]) != o || !r.canAccept(o, hs.f) {
					continue
				}
				f := hs.f
				r.popIn(in, v)
				r.consumed[in] = true
				r.deliver(o, f)
				if !f.Tail {
					r.holder[o][v] = in
				}
				r.rrIn[o] = (in + 1) % numPorts
				r.rrVC[o] = (v + 1) % vcs
				sent = true
				break
			}
		}
		if sent {
			moved = true
		}
	}
	// A tick that moved nothing changed nothing (the no-op proof behind
	// the idle early-return applies to a fully blocked router too:
	// round-robin state, holders, assembly, and stats only mutate on a
	// send), so the router sleeps until an input, credit, or fault edge
	// pokes it.
	r.active = moved
}
