package noc

import (
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// Pattern selects a destination for a source under a synthetic traffic
// pattern. Returning src means "skip this injection" (a node that does not
// participate).
type Pattern func(rng *sim.RNG, src, nodes, width, height int) int

// PatternUniform sends to a uniformly random other node — the assumption
// behind the paper's Table 3 analysis.
func PatternUniform(rng *sim.RNG, src, nodes, _, _ int) int {
	dst := rng.Intn(nodes - 1)
	if dst >= src {
		dst++
	}
	return dst
}

// PatternHotspot sends a fraction of traffic to node 0 (e.g. everyone
// talking to the DMA engine — the pattern a NIC actually exhibits) and the
// rest uniformly.
func PatternHotspot(hotFraction float64) Pattern {
	return func(rng *sim.RNG, src, nodes, w, h int) int {
		if src != 0 && rng.Float64() < hotFraction {
			return 0
		}
		return PatternUniform(rng, src, nodes, w, h)
	}
}

// PatternTranspose sends (x, y) -> (y, x): the classic adversarial pattern
// for dimension-order routing (all traffic crosses the diagonal).
func PatternTranspose(_ *sim.RNG, src, _, width, height int) int {
	x, y := src%width, src/width
	if x >= height || y >= width {
		return src // outside the square sub-mesh: sit out
	}
	return x*width + y
}

// PatternNeighbor sends to the east neighbor (wrapping): maximal locality,
// the upper bound on mesh throughput.
func PatternNeighbor(_ *sim.RNG, src, _, width, _ int) int {
	x, y := src%width, src/width
	return y*width + (x+1)%width
}

// PatternByName resolves a pattern from its configuration name; hotspot
// uses a 30% hot fraction. Unknown names return nil.
func PatternByName(name string) Pattern {
	switch name {
	case "uniform":
		return PatternUniform
	case "hotspot":
		return PatternHotspot(0.3)
	case "transpose":
		return PatternTranspose
	case "neighbor":
		return PatternNeighbor
	default:
		return nil
	}
}

// patternDriver generalizes uniformDriver to arbitrary patterns.
type patternDriver struct {
	fab     Fabric
	rng     *sim.RNG
	load    float64
	msg     *packet.Message
	pattern Pattern
	w, h    int
}

// Tick implements sim.Ticker.
func (d *patternDriver) Tick(uint64) {
	n := d.fab.Nodes()
	for node := 0; node < n; node++ {
		id := NodeID(node)
		for {
			if _, ok := d.fab.TryEject(id); !ok {
				break
			}
		}
		if d.rng.Float64() < d.load {
			dst := d.pattern(d.rng, node, n, d.w, d.h)
			if dst == node {
				continue
			}
			if d.fab.CanInject(id, NodeID(dst)) {
				d.fab.Inject(id, NodeID(dst), d.msg)
			}
		}
	}
}

// MeasurePattern measures delivered throughput and latency under an
// arbitrary traffic pattern at the given offered load (1.0 = saturation
// probing). The mesh dimensions are needed by coordinate-based patterns.
func MeasurePattern(m *Mesh, pattern Pattern, freqHz float64, msgBytes int, load float64, warmup, window uint64, seed uint64) LoadPoint {
	if pattern == nil {
		panic("noc: nil traffic pattern")
	}
	k := sim.NewKernel(sim.Frequency(freqHz))
	m.RegisterWith(k)
	k.Register(&patternDriver{
		fab: m, rng: sim.NewRNG(seed), load: load,
		msg:     &packet.Message{Pkt: &packet.Packet{PayloadLen: msgBytes}},
		pattern: pattern,
		w:       m.Config().Width, h: m.Config().Height,
	})
	k.Run(warmup)
	m.ResetStats()
	k.Run(window)
	s := m.Stats()
	seconds := float64(window) / freqHz
	return LoadPoint{
		OfferedLoad:       load,
		DeliveredGbps:     float64(s.Delivered) * float64(msgBytes) * 8 / seconds / 1e9,
		MeanLatencyCycles: s.MeanLatency(),
		Delivered:         s.Delivered,
	}
}

// PatternNames lists the built-in pattern names.
func PatternNames() []string { return []string{"uniform", "hotspot", "transpose", "neighbor"} }
