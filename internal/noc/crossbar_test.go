package noc

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

func newTestXbar(n, latency int) (*Crossbar, *sim.Kernel) {
	c := NewCrossbar(CrossbarConfig{Nodes: n, FlitWidthBits: 64, TraversalLatency: latency, InjectDepth: 8, EjectDepth: 8})
	k := sim.NewKernel(500 * sim.MHz)
	c.RegisterWith(k)
	return c, k
}

func TestCrossbarDelivery(t *testing.T) {
	c, k := newTestXbar(4, 0)
	msg := testMsg(8)
	c.Inject(0, 3, msg)
	var got *packet.Message
	k.Register(sim.TickFunc(func(uint64) {
		if got == nil {
			if mm, ok := c.TryEject(3); ok {
				got = mm
			}
		}
	}))
	k.Run(10)
	if got != msg {
		t.Fatal("message not delivered")
	}
	if s := c.Stats(); s.Delivered != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCrossbarTraversalLatency(t *testing.T) {
	// Latency = 1 arbitration cycle + flits + L extra wire cycles.
	for _, lat := range []int{0, 5, 20} {
		c, k := newTestXbar(4, lat)
		c.Inject(0, 1, testMsg(8))
		if !k.RunUntil(func() bool { return c.Stats().Delivered == 1 }, 200) {
			t.Fatalf("latency %d: not delivered", lat)
		}
		got := c.Stats().MeanLatency()
		want := float64(2 + lat)
		if got != want {
			t.Errorf("latency %d: measured %v, want %v", lat, got, want)
		}
	}
}

func TestCrossbarOutputContention(t *testing.T) {
	// Two sources to one destination: transfers serialize at the output.
	c, k := newTestXbar(4, 0)
	c.Inject(0, 3, testMsg(64)) // 8 flits
	c.Inject(1, 3, testMsg(64))
	if !k.RunUntil(func() bool { return c.Stats().Delivered == 2 }, 100) {
		t.Fatal("not all delivered")
	}
	// Output busy 8 cycles per message: second completes ~8 cycles later.
	s := c.Stats()
	if s.TotalLatency < 8+16 {
		t.Errorf("total latency %d implies no serialization", s.TotalLatency)
	}
}

func TestCrossbarSourceSerialization(t *testing.T) {
	// One source to two destinations: the source injection port feeds one
	// output at a time.
	c, k := newTestXbar(4, 0)
	c.Inject(0, 1, testMsg(64))
	c.Inject(0, 2, testMsg(64))
	if !k.RunUntil(func() bool { return c.Stats().Delivered == 2 }, 100) {
		t.Fatal("not all delivered")
	}
	if s := c.Stats(); s.TotalLatency < 8+16 {
		t.Errorf("total latency %d implies both transfers ran concurrently from one source", s.TotalLatency)
	}
}

func TestCrossbarNoLoss(t *testing.T) {
	c, k := newTestXbar(6, 2)
	rng := sim.NewRNG(5)
	injected := uint64(0)
	delivered := make(map[uint64]int)
	k.Register(sim.TickFunc(func(uint64) {
		for node := 0; node < c.Nodes(); node++ {
			id := NodeID(node)
			for {
				mm, ok := c.TryEject(id)
				if !ok {
					break
				}
				delivered[mm.ID]++
			}
			if injected < 300 && rng.Bool(0.4) && c.CanInject(id, id) {
				injected++
				msg := testMsg(8 + rng.Intn(56))
				msg.ID = injected
				c.Inject(id, NodeID(rng.Intn(c.Nodes())), msg)
			}
		}
	}))
	k.Run(5000)
	if uint64(len(delivered)) != injected {
		t.Fatalf("delivered %d unique of %d injected", len(delivered), injected)
	}
	for id, n := range delivered {
		if n != 1 {
			t.Fatalf("message %d delivered %d times", id, n)
		}
	}
}

func TestCrossbarConfigValidation(t *testing.T) {
	bad := []CrossbarConfig{
		{Nodes: 0, FlitWidthBits: 64, InjectDepth: 4, EjectDepth: 4},
		{Nodes: 4, FlitWidthBits: 0, InjectDepth: 4, EjectDepth: 4},
		{Nodes: 4, FlitWidthBits: 64, InjectDepth: 4, EjectDepth: 4, TraversalLatency: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewCrossbar(cfg)
		}()
	}
}
