package noc

import (
	"testing"
	"testing/quick"

	"github.com/panic-nic/panic/internal/sim"
)

// TestPropertyMeshDeliversEverything: for arbitrary small meshes, message
// sizes, and traffic, every injected message is delivered exactly once and
// per-(src,dst) order is preserved.
func TestPropertyMeshDeliversEverything(t *testing.T) {
	type key struct{ src, dst NodeID }
	prop := func(wSeed, hSeed, widthSeed uint8, seed uint64, msgCount uint8) bool {
		w := 1 + int(wSeed%4)
		h := 1 + int(hSeed%4)
		cfg := MeshConfig{
			Width: w, Height: h,
			FlitWidthBits: 32 * (1 + int(widthSeed%4)),
			BufferDepth:   2 + int(widthSeed%6),
			InjectDepth:   4, EjectDepth: 4,
		}
		m := NewMesh(cfg)
		k := sim.NewKernel(1 * sim.GHz)
		m.RegisterWith(k)
		rng := sim.NewRNG(seed)
		total := 1 + int(msgCount%60)

		next := 0
		seq := make(map[key][]uint64)
		got := make(map[key][]uint64)
		deliveredIDs := make(map[uint64]int)
		k.Register(sim.TickFunc(func(uint64) {
			for node := 0; node < m.Nodes(); node++ {
				id := NodeID(node)
				for {
					mm, ok := m.TryEject(id)
					if !ok {
						break
					}
					deliveredIDs[mm.ID]++
					kk := key{NodeID(mm.Tenant), id} // src smuggled in Tenant
					got[kk] = append(got[kk], mm.ID)
				}
			}
			if next < total {
				src := NodeID(rng.Intn(m.Nodes()))
				dst := NodeID(rng.Intn(m.Nodes()))
				if m.CanInject(src, dst) {
					msg := testMsg(1 + rng.Intn(100))
					next++
					msg.ID = uint64(next)
					msg.Tenant = uint16(src)
					m.Inject(src, dst, msg)
					seq[key{src, dst}] = append(seq[key{src, dst}], msg.ID)
				}
			}
		}))
		k.Run(uint64(3000 + 200*total))
		if len(deliveredIDs) != total {
			return false
		}
		for _, n := range deliveredIDs {
			if n != 1 {
				return false
			}
		}
		for kk, want := range seq {
			have := got[kk]
			if len(have) != len(want) {
				return false
			}
			for i := range want {
				if have[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFlitConservation: flit-hop count equals the sum over
// messages of flits × hop distance (XY routing takes exactly the Manhattan
// path, and the network neither creates nor destroys flits).
func TestPropertyFlitConservation(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		cfg := MeshConfig{Width: 4, Height: 4, FlitWidthBits: 64, BufferDepth: 4, InjectDepth: 64, EjectDepth: 64}
		m := NewMesh(cfg)
		k := sim.NewKernel(1 * sim.GHz)
		m.RegisterWith(k)
		rng := sim.NewRNG(seed)
		total := 1 + int(n%20)
		expectedHops := uint64(0)
		injected := 0
		k.Register(sim.TickFunc(func(uint64) {
			for node := 0; node < m.Nodes(); node++ {
				for {
					if _, ok := m.TryEject(NodeID(node)); !ok {
						break
					}
				}
			}
			if injected < total {
				src, dst := rng.Intn(16), rng.Intn(16)
				if m.CanInject(NodeID(src), NodeID(dst)) {
					msg := testMsg(1 + rng.Intn(64))
					injected++
					m.Inject(NodeID(src), NodeID(dst), msg)
					sc, dc := m.CoordOf(NodeID(src)), m.CoordOf(NodeID(dst))
					manhattan := abs(sc.X-dc.X) + abs(sc.Y-dc.Y)
					expectedHops += uint64(m.FlitsFor(msg) * manhattan)
				}
			}
		}))
		k.Run(5000)
		s := m.Stats()
		return s.Delivered == uint64(total) && s.FlitHops == expectedHops
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestPropertyCrossbarDeliversEverything mirrors the mesh property for the
// crossbar fabric.
func TestPropertyCrossbarDeliversEverything(t *testing.T) {
	prop := func(nSeed, latSeed uint8, seed uint64, msgCount uint8) bool {
		n := 2 + int(nSeed%8)
		c := NewCrossbar(CrossbarConfig{
			Nodes: n, FlitWidthBits: 64,
			TraversalLatency: int(latSeed % 10),
			InjectDepth:      4, EjectDepth: 4,
		})
		k := sim.NewKernel(1 * sim.GHz)
		c.RegisterWith(k)
		rng := sim.NewRNG(seed)
		total := 1 + int(msgCount%40)
		injected := 0
		delivered := make(map[uint64]int)
		k.Register(sim.TickFunc(func(uint64) {
			for node := 0; node < n; node++ {
				for {
					mm, ok := c.TryEject(NodeID(node))
					if !ok {
						break
					}
					delivered[mm.ID]++
				}
			}
			if injected < total {
				src := NodeID(rng.Intn(n))
				dst := NodeID(rng.Intn(n))
				if c.CanInject(src, dst) {
					msg := testMsg(1 + rng.Intn(100))
					injected++
					msg.ID = uint64(injected)
					c.Inject(src, dst, msg)
				}
			}
		}))
		k.Run(uint64(2000 + 100*total))
		if len(delivered) != total {
			return false
		}
		for _, cnt := range delivered {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
