// Package noc models PANIC's on-chip interconnect at flit granularity: a
// lossless 2D-mesh network of wormhole routers with credit-based flow
// control and XY dimension-order routing (§3.1.2 of the paper), plus a
// single central crossbar used as an ablation baseline for the paper's
// wire-length argument against large crossbars.
//
// Timing model, following the paper: "The routers add one cycle of latency
// at each hop." A flit moves from one router's input buffer to the next
// router's input buffer in exactly one cycle; ejection into the local
// port's delivery queue also takes one cycle. Messages are segmented into
// width-bit flits; a message of b bits occupies ceil(b/width) consecutive
// flits that travel as a wormhole: the head flit reserves each output port
// and the tail flit releases it.
//
// The network is lossless: routers never drop flits, and backpressure is
// credit-based — an upstream router forwards a flit only when the
// downstream input buffer has space. Drops, when policy requires them,
// happen in the logical scheduler (internal/sched), never here.
//
// With a tracer attached (Mesh.AttachTracer), every router owns a private
// span buffer and emits hop instants for forwarded head flits plus one
// mesh-transit span per delivered message (injection enqueue to tail-flit
// ejection) — see internal/trace for the determinism and cost contracts.
package noc

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// NodeID identifies a tile on the fabric.
type NodeID int

// Coord is a mesh coordinate.
type Coord struct{ X, Y int }

// String formats the coordinate.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Flit is the unit of flow control. Only the head flit carries the message
// pointer; body flits model wire occupancy.
type Flit struct {
	// Msg is non-nil on the head flit only.
	Msg *packet.Message
	// Dst is the destination node, present on every flit of the packet so
	// body flits can follow the wormhole.
	Dst NodeID
	// Head and Tail mark the first and last flit (both set for a
	// single-flit message).
	Head, Tail bool
	// Enq is the cycle the message was injected (head flit only), for
	// latency accounting.
	Enq uint64
	// VC is the virtual channel the packet was assigned at injection; it
	// selects the buffer lane at every hop.
	VC int
}

// Fabric is an interconnect that moves messages between tiles. Both the 2D
// mesh and the crossbar baseline implement it, so higher layers are
// topology-agnostic.
type Fabric interface {
	// Nodes returns the number of attachment points.
	Nodes() int
	// CanInject reports whether the source tile can start injecting a
	// message to dst this cycle (with virtual channels, each VC lane has
	// its own injection queue, so admission depends on the destination).
	CanInject(src, dst NodeID) bool
	// Inject queues a message for delivery; the caller must check
	// CanInject first. Latency and bandwidth are simulated by the fabric.
	Inject(src, dst NodeID, msg *packet.Message)
	// TryEject removes and returns the next message delivered to the
	// node, if any.
	TryEject(node NodeID) (*packet.Message, bool)
	// HasEjectable reports whether TryEject would currently succeed,
	// without consuming the message. Event-aware tiles use it to decide
	// whether a pending arrival forces them to stay awake.
	HasEjectable(node NodeID) bool
	// FlitsFor returns the number of flits a message occupies.
	FlitsFor(msg *packet.Message) int
}

// flitsFor segments a message of the given wire length into width-bit flits.
func flitsFor(wireBytes, widthBits int) int {
	bits := wireBytes * 8
	n := (bits + widthBits - 1) / widthBits
	if n < 1 {
		n = 1
	}
	return n
}

// Stats aggregates fabric-level measurements.
type Stats struct {
	// Injected and Delivered count messages.
	Injected, Delivered uint64
	// FlitHops counts flit-link traversals (for utilization).
	FlitHops uint64
	// TotalLatency accumulates inject-to-eject cycles over delivered
	// messages.
	TotalLatency uint64
}

// MeanLatency returns the mean delivery latency in cycles.
func (s Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}
