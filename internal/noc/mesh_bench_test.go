package noc

import (
	"testing"
)

// benchMesh runs uniform random traffic on a default 6x6 mesh for b.N
// cycles, exercising the router hot path (head caching, precomputed
// routes, idle skip-scan) at the given offered load.
func benchMesh(b *testing.B, load float64) {
	b.ReportAllocs()
	MeasureLoad(NewMesh(DefaultMeshConfig()), 1e9, 64, load, 1_000, uint64(b.N), 7)
}

func BenchmarkMeshSaturated(b *testing.B) { benchMesh(b, 1.0) }
func BenchmarkMeshModerate(b *testing.B)  { benchMesh(b, 0.1) }
func BenchmarkMeshIdle(b *testing.B)      { benchMesh(b, 0.0) }
