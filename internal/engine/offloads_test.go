package engine

import (
	"math"
	"testing"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// newValidationTile builds a throwaway tile for SetFault validation cases.
func newValidationTile() *Tile {
	return newRig(2, 1).place(7, 0, 0, &fixedEngine{name: "v", svc: 1})
}

func kvsGet(id uint64, tenant uint16, key uint64) *packet.Message {
	return &packet.Message{
		ID:     id,
		Tenant: tenant,
		Pkt: packet.NewPacket(0,
			&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 1}, Src: packet.MAC{2, 0, 0, 0, 0, 9}, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}},
			&packet.UDP{SrcPort: 5555, DstPort: packet.KVSPort},
			&packet.KVS{Op: packet.KVSGet, Tenant: tenant, Key: key},
		),
	}
}

func kvsSet(id uint64, key uint64, vlen uint32) *packet.Message {
	m := kvsGet(id, 1, key)
	k := m.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	k.Op = packet.KVSSet
	k.ValueLen = vlen
	m.Pkt.PayloadLen = int(vlen)
	m.Pkt.Serialize()
	return m
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	c.Put(1, 10)
	c.Put(2, 20)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatal("get 1 failed")
	}
	// 2 is now LRU; inserting 3 evicts it.
	if ev, did := c.Put(3, 30); !did || ev != 2 {
		t.Errorf("evicted %d (did=%v), want 2", ev, did)
	}
	if c.Contains(2) {
		t.Error("2 survived eviction")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("wrong survivors")
	}
	// Update refreshes without eviction.
	if _, did := c.Put(1, 11); did {
		t.Error("update evicted")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Error("update lost")
	}
	if !c.Delete(3) || c.Delete(3) {
		t.Error("delete semantics wrong")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLRUCacheSingleSlot(t *testing.T) {
	c := newLRUCache(1)
	c.Put(1, 1)
	if ev, did := c.Put(2, 2); !did || ev != 1 {
		t.Errorf("single-slot eviction wrong: %d %v", ev, did)
	}
	if v, ok := c.Get(2); !ok || v != 2 {
		t.Error("single-slot get failed")
	}
}

func TestMACTxSerialization(t *testing.T) {
	// 100G at 500MHz = 200 bits/cycle; a 64B frame (84B wire = 672 bits)
	// takes ceil(672/200) = 4 cycles.
	mac := NewEthernetMAC(MACConfig{Port: 0, LineRateGbps: 100, FreqHz: 500e6}, nil, nil)
	m := &packet.Message{Pkt: &packet.Packet{PayloadLen: 64}}
	if got := mac.ServiceCycles(m); got != 4 {
		t.Errorf("TX service = %d cycles, want 4", got)
	}
}

func TestMACTxStripsChain(t *testing.T) {
	var delivered *packet.Message
	mac := NewEthernetMAC(MACConfig{Port: 0, LineRateGbps: 100, FreqHz: 500e6}, nil,
		SinkFunc(func(m *packet.Message, _ uint64) { delivered = m }))
	m := kvsGet(1, 1, 1)
	m.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 1}}})
	mac.Process(&Ctx{Now: 10}, m)
	if delivered == nil || delivered.Pkt.Has(packet.LayerTypeChain) {
		t.Error("chain left the NIC")
	}
	if mac.TxCount() != 1 {
		t.Error("tx not counted")
	}
}

// queueSource feeds a fixed list of messages as fast as the MAC will take
// them.
type queueSource struct{ msgs []*packet.Message }

func (s *queueSource) Poll(uint64) *packet.Message {
	if len(s.msgs) == 0 {
		return nil
	}
	m := s.msgs[0]
	s.msgs = s.msgs[1:]
	return m
}

func TestMACRxLineRatePacing(t *testing.T) {
	// Offer 100 min-size packets instantly; at 40G/500MHz (80 bits/cycle)
	// each 84B (672-bit) frame takes 8.4 cycles of wire time, so 100
	// packets need ~840 cycles.
	src := &queueSource{}
	for i := 0; i < 100; i++ {
		src.msgs = append(src.msgs, &packet.Message{ID: uint64(i), Pkt: &packet.Packet{PayloadLen: 64}})
	}
	mac := NewEthernetMAC(MACConfig{Port: 0, LineRateGbps: 40, FreqHz: 500e6}, src, nil)
	ctx := &Ctx{}
	emitted := 0
	var finishedAt uint64
	for cycle := uint64(0); cycle < 2000 && emitted < 100; cycle++ {
		ctx.Now = cycle
		outs := mac.Generate(ctx)
		emitted += len(outs)
		if emitted == 100 && finishedAt == 0 {
			finishedAt = cycle
		}
	}
	if emitted != 100 {
		t.Fatalf("emitted %d/100", emitted)
	}
	// Expect ≈ 100 × 672/80 = 840 cycles, minus initial burst allowance.
	if finishedAt < 700 || finishedAt > 900 {
		t.Errorf("line-rate pacing finished at cycle %d, want ~840", finishedAt)
	}
	if mac.RxCount() != 100 {
		t.Errorf("rx count = %d", mac.RxCount())
	}
}

func TestDMAReadCompletion(t *testing.T) {
	dma := NewDMAEngine(DMAConfig{PCIeGbps: 128, FreqHz: 500e6, BaseLatencyCycles: 100}, nil, nil)
	req := &packet.Message{
		ID:    5,
		Class: packet.ClassControl,
		Pkt: packet.NewPacket(0,
			&packet.Ethernet{EtherType: packet.EtherTypeDMA},
			&packet.DMA{Op: packet.DMARead, Requester: 7, Len: 1024, HostAddr: 42},
		),
	}
	// 1024B at 256 bits/cycle = 32 cycles of occupancy.
	if got := dma.ServiceCycles(req); got != 32 {
		t.Errorf("service = %d, want 32", got)
	}
	outs := dma.Process(&Ctx{Now: 50, RNG: sim.NewRNG(1)}, req)
	if len(outs) != 1 {
		t.Fatalf("outs = %d", len(outs))
	}
	out := outs[0]
	if out.To != 7 || out.Delay != 100 {
		t.Errorf("completion to %d delay %d", out.To, out.Delay)
	}
	d := out.Msg.Pkt.Layer(packet.LayerTypeDMA).(*packet.DMA)
	if d.Op != packet.DMAReadCompl || d.HostAddr != 42 || d.Len != 1024 {
		t.Errorf("completion = %+v", d)
	}
	if out.Msg.WireLen() < 1024 {
		t.Error("completion does not carry the data size")
	}
	if !out.Msg.Lossless() {
		t.Error("DMA completion must be lossless")
	}
}

func TestDMAJitterBounded(t *testing.T) {
	dma := NewDMAEngine(DMAConfig{PCIeGbps: 128, FreqHz: 500e6, BaseLatencyCycles: 100, JitterCycles: 50}, nil, nil)
	rng := sim.NewRNG(3)
	sawVariation := false
	first := uint64(0)
	for i := 0; i < 50; i++ {
		req := &packet.Message{Pkt: packet.NewPacket(0,
			&packet.Ethernet{EtherType: packet.EtherTypeDMA},
			&packet.DMA{Op: packet.DMARead, Requester: 7, Len: 64},
		)}
		outs := dma.Process(&Ctx{RNG: rng}, req)
		d := outs[0].Delay
		if d < 100 || d > 150 {
			t.Fatalf("latency %d outside [100,150]", d)
		}
		if i == 0 {
			first = d
		} else if d != first {
			sawVariation = true
		}
	}
	if !sawVariation {
		t.Error("jitter produced no variation")
	}
}

func TestDMAHostDeliveryAndResponse(t *testing.T) {
	var delivered *packet.Message
	responder := responderFunc(func(msg *packet.Message, now uint64) (*packet.Message, uint64, bool) {
		return kvsGet(99, msg.Tenant, 1), 500, true
	})
	dma := NewDMAEngine(DMAConfig{PCIeGbps: 128, FreqHz: 500e6, BaseLatencyCycles: 10, NotifyAddr: 3},
		SinkFunc(func(m *packet.Message, _ uint64) { delivered = m }), responder)
	pkt := kvsGet(1, 2, 3)
	outs := dma.Process(&Ctx{Now: 7, RNG: sim.NewRNG(1)}, pkt)
	if delivered != pkt {
		t.Fatal("packet not delivered to host sink")
	}
	// The host observes delivery after the PCIe write latency (10).
	if pkt.Done != 7+10 {
		t.Errorf("Done = %d, want 17", pkt.Done)
	}
	if len(outs) != 2 {
		t.Fatalf("outs = %d, want notify + response", len(outs))
	}
	if outs[0].To != 3 {
		t.Errorf("notify to %d", outs[0].To)
	}
	if outs[1].Delay != 500 || outs[1].Msg.ID != 99 {
		t.Errorf("response out = %+v", outs[1])
	}
	_, _, hd := dma.Counts()
	if hd != 1 {
		t.Errorf("host deliveries = %d", hd)
	}
}

type responderFunc func(msg *packet.Message, now uint64) (*packet.Message, uint64, bool)

func (f responderFunc) Respond(msg *packet.Message, now uint64) (*packet.Message, uint64, bool) {
	return f(msg, now)
}

func TestPCIeCoalescing(t *testing.T) {
	p := NewPCIeEngine(PCIeConfig{CoalesceCount: 4, InterruptCycles: 2})
	ctx := &Ctx{}
	for i := 0; i < 12; i++ {
		ctx.Now = uint64(i)
		p.Process(ctx, &packet.Message{Pkt: &packet.Packet{}})
	}
	notif, irqs := p.Counts()
	if notif != 12 || irqs != 3 {
		t.Errorf("notifications=%d interrupts=%d, want 12/3", notif, irqs)
	}
}

func TestPCIeCoalesceTimeout(t *testing.T) {
	p := NewPCIeEngine(PCIeConfig{CoalesceCount: 100, CoalesceTimeoutCycles: 10})
	ctx := &Ctx{Now: 0}
	p.Process(ctx, &packet.Message{Pkt: &packet.Packet{}})
	_, irqs := p.Counts()
	if irqs != 0 {
		t.Fatal("premature interrupt")
	}
	ctx.Now = 50
	p.Process(ctx, &packet.Message{Pkt: &packet.Packet{}})
	if _, irqs = p.Counts(); irqs != 1 {
		t.Errorf("timeout interrupt not fired: %d", irqs)
	}
}

func TestIPSecDecryptSwapsInner(t *testing.T) {
	e := NewIPSecEngine(IPSecConfig{BytesPerCycle: 4, SetupCycles: 10})
	inner := kvsGet(1, 1, 7).Pkt
	enc := &packet.Message{
		ID:    1,
		Inner: inner,
		Pkt: packet.NewPacket(inner.WireLen()+12,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{Protocol: packet.ProtoESP, Src: packet.IP4{203, 0, 113, 1}, Dst: packet.IP4{10, 0, 0, 2}},
			&packet.ESP{SPI: 9, Seq: 1},
		),
	}
	enc.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 4, Slack: 5}, {Engine: 2, Slack: 9}}})
	svc := e.ServiceCycles(enc)
	if svc <= 10 {
		t.Errorf("service = %d, want setup+per-byte", svc)
	}
	outs := e.Process(&Ctx{Now: 1}, enc)
	if len(outs) != 1 || outs[0].To != packet.AddrInvalid {
		t.Fatalf("outs = %+v", outs)
	}
	m := outs[0].Msg
	if !m.Pkt.Has(packet.LayerTypeKVS) {
		t.Error("plaintext not restored")
	}
	c := m.Chain()
	if c == nil || !c.Reinjected() {
		t.Fatalf("chain = %+v, want reinjected flag", c)
	}
	if len(c.Hops) != 2 || c.Hops[0].Engine != 4 {
		t.Errorf("chain hops lost: %+v", c.Hops)
	}
	dec, _ := e.Counts()
	if dec != 1 {
		t.Error("decrypt not counted")
	}
}

func TestIPSecDecryptWithoutInner(t *testing.T) {
	e := NewIPSecEngine(IPSecConfig{BytesPerCycle: 4})
	enc := &packet.Message{Pkt: packet.NewPacket(100,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoESP},
		&packet.ESP{SPI: 1, Seq: 1},
	)}
	outs := e.Process(&Ctx{}, enc)
	m := outs[0].Msg
	if m.Pkt.Has(packet.LayerTypeESP) {
		t.Error("ESP layer survived decryption")
	}
}

func TestIPSecEncryptWrapsAndPreservesChain(t *testing.T) {
	e := NewIPSecEngine(IPSecConfig{BytesPerCycle: 4})
	m := kvsGet(3, 1, 9)
	origLen := m.WireLen()
	m.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 5, Slack: 2}, {Engine: 1, Slack: 3}}})
	outs := e.Process(&Ctx{Now: 2}, m)
	enc := outs[0].Msg
	if !enc.Pkt.Has(packet.LayerTypeESP) {
		t.Fatal("no ESP layer after encryption")
	}
	if enc.Inner == nil || !enc.Inner.Has(packet.LayerTypeKVS) {
		t.Error("plaintext not stashed")
	}
	if enc.Chain() == nil || len(enc.Chain().Hops) != 2 {
		t.Error("chain lost in encryption")
	}
	if enc.WireLen() <= origLen {
		t.Errorf("encryption did not add overhead: %d <= %d", enc.WireLen(), origLen)
	}
	_, encCount := e.Counts()
	if encCount != 1 {
		t.Error("encrypt not counted")
	}
}

func TestKVSCacheHitMissSet(t *testing.T) {
	e := NewKVSCacheEngine(KVSCacheConfig{Capacity: 4, LookupCycles: 2, RDMAAddr: 9})
	ctx := &Ctx{Now: 1}

	// Miss: continues along the chain with the miss flag.
	miss := kvsGet(1, 1, 100)
	outs := e.Process(ctx, miss)
	if len(outs) != 1 || outs[0].To != packet.AddrInvalid {
		t.Fatalf("miss outs = %+v", outs)
	}
	k := outs[0].Msg.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	if k.Flags&packet.KVSFlagMiss == 0 {
		t.Error("miss flag not set")
	}

	// Set: caches the key.
	e.Process(ctx, kvsSet(2, 100, 4096))
	if !e.cache.Contains(100) {
		t.Error("SET did not populate cache")
	}

	// Hit: diverted to the RDMA engine with the cached value length.
	hit := kvsGet(3, 1, 100)
	outs = e.Process(ctx, hit)
	if len(outs) != 1 || outs[0].To != 9 {
		t.Fatalf("hit outs = %+v", outs)
	}
	k = outs[0].Msg.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	if k.ValueLen != 4096 {
		t.Errorf("value len = %d", k.ValueLen)
	}
	hits, misses, sets := e.Counts()
	if hits != 1 || misses != 1 || sets != 1 {
		t.Errorf("counts = %d/%d/%d", hits, misses, sets)
	}
}

func TestKVSCachePassThroughNonKVS(t *testing.T) {
	e := NewKVSCacheEngine(KVSCacheConfig{Capacity: 4, RDMAAddr: 9})
	m := &packet.Message{Pkt: packet.NewPacket(64,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoTCP},
		&packet.TCP{SrcPort: 1, DstPort: 2},
	)}
	outs := e.Process(&Ctx{}, m)
	if len(outs) != 1 || outs[0].To != packet.AddrInvalid || outs[0].Msg != m {
		t.Errorf("non-KVS handling wrong: %+v", outs)
	}
}

func TestRDMAIssueAndReply(t *testing.T) {
	e := NewRDMAEngine(RDMAConfig{DMAAddr: 8, IssueCycles: 3})
	ctx := &Ctx{Now: 10, Addr: 9}
	req := kvsGet(21, 4, 777)
	req.Port = 1
	k := req.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	k.ValueLen = 2048
	req.Pkt.Serialize()

	outs := e.Process(ctx, req)
	if len(outs) != 1 || outs[0].To != 8 {
		t.Fatalf("issue outs = %+v", outs)
	}
	d := outs[0].Msg.Pkt.Layer(packet.LayerTypeDMA).(*packet.DMA)
	if d.Op != packet.DMARead || d.Len != 2048 || d.Requester != 9 {
		t.Errorf("read = %+v", d)
	}
	if e.PendingReads() != 1 {
		t.Error("no pending read")
	}

	// Completion returns; reply must be a proper GET response.
	compl := &packet.Message{Pkt: packet.NewPacket(2048,
		&packet.Ethernet{EtherType: packet.EtherTypeDMA},
		&packet.DMA{Op: packet.DMAReadCompl, Requester: 9, Len: 2048, HostAddr: d.HostAddr},
	)}
	outs = e.Process(ctx, compl)
	if len(outs) != 1 {
		t.Fatalf("reply outs = %+v", outs)
	}
	resp := outs[0].Msg
	rk := resp.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	if rk.Op != packet.KVSGetResp || rk.Key != 777 || rk.ValueLen != 2048 {
		t.Errorf("response KVS = %+v", rk)
	}
	rIP := resp.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	if rIP.Src.String() != "10.0.0.2" || rIP.Dst.String() != "10.0.0.1" {
		t.Errorf("response IPs not swapped: %v -> %v", rIP.Src, rIP.Dst)
	}
	rUDP := resp.Pkt.Layer(packet.LayerTypeUDP).(*packet.UDP)
	if rUDP.SrcPort != packet.KVSPort || rUDP.DstPort != 5555 {
		t.Errorf("response ports: %d -> %d", rUDP.SrcPort, rUDP.DstPort)
	}
	if resp.Port != 1 || resp.Inject != req.Inject {
		t.Error("response metadata not inherited")
	}
	if e.PendingReads() != 0 {
		t.Error("pending not cleared")
	}
	issued, replies := e.Counts()
	if issued != 1 || replies != 1 {
		t.Errorf("counts = %d/%d", issued, replies)
	}
}

func TestRDMAOverloadShedsToHostPath(t *testing.T) {
	e := NewRDMAEngine(RDMAConfig{DMAAddr: 8, MaxOutstanding: 2})
	ctx := &Ctx{Addr: 9}
	for i := 0; i < 2; i++ {
		e.Process(ctx, kvsGet(uint64(i), 1, uint64(i)))
	}
	outs := e.Process(ctx, kvsGet(9, 1, 9))
	if len(outs) != 1 || outs[0].To != packet.AddrInvalid {
		t.Fatalf("shed outs = %+v", outs)
	}
	k := outs[0].Msg.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	if k.Flags&packet.KVSFlagMiss == 0 {
		t.Error("shed request not marked for host path")
	}
}

func TestCompressionEngine(t *testing.T) {
	e := NewCompressionEngine(8, 0.5)
	m := &packet.Message{Pkt: &packet.Packet{PayloadLen: 1000}}
	if svc := e.ServiceCycles(m); svc != 2+125 {
		t.Errorf("service = %d", svc)
	}
	e.Process(&Ctx{}, m)
	if m.Pkt.PayloadLen != 500 {
		t.Errorf("payload = %d, want 500", m.Pkt.PayloadLen)
	}
}

func TestChecksumEngine(t *testing.T) {
	e := NewChecksumEngine(16)
	m := kvsGet(1, 1, 1)
	ip := m.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	ip.Checksum = 0
	m.Pkt.Serialize()
	e.Process(&Ctx{}, m)
	ip = m.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	if ip.Checksum == 0 || ip.Checksum != ip.ComputeChecksum() {
		t.Errorf("checksum = %#x", ip.Checksum)
	}
}

func TestRegexEngineDeterministicMatches(t *testing.T) {
	run := func() uint64 {
		e := NewRegexEngine(4, 0.3)
		for i := uint64(0); i < 1000; i++ {
			e.Process(&Ctx{}, &packet.Message{ID: i, Pkt: &packet.Packet{PayloadLen: 100}})
		}
		return e.Matches()
	}
	a, b := run(), run()
	if a != b {
		t.Error("regex matches not deterministic")
	}
	if a < 200 || a > 400 {
		t.Errorf("match count %d far from 30%% of 1000", a)
	}
}

func TestCPUCoreOrchestrationCost(t *testing.T) {
	// 10 µs at 500 MHz = 5000 cycles — the paper's manycore latency.
	core := NewCPUCoreEngine("core", 5000, 0, nil)
	m := &packet.Message{Pkt: &packet.Packet{PayloadLen: 64}}
	if svc := core.ServiceCycles(m); svc != 5000 {
		t.Errorf("service = %d, want 5000", svc)
	}
	outs := core.Process(&Ctx{}, m)
	if len(outs) != 1 || outs[0].Msg != m {
		t.Error("default handler should forward")
	}
	handled := false
	custom := NewCPUCoreEngine("core", 100, 0.5, func(_ *Ctx, msg *packet.Message) []Out {
		handled = true
		return nil
	})
	if svc := custom.ServiceCycles(m); svc != 100+32 {
		t.Errorf("per-byte service = %d, want 132", svc)
	}
	custom.Process(&Ctx{}, m)
	if !handled {
		t.Error("custom handler not invoked")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	nan := math.NaN()
	for name, fn := range map[string]func(){
		"mac rate":          func() { NewEthernetMAC(MACConfig{LineRateGbps: 0, FreqHz: 1}, nil, nil) },
		"mac freq":          func() { NewEthernetMAC(MACConfig{LineRateGbps: 100, FreqHz: 0}, nil, nil) },
		"mac rate nan":      func() { NewEthernetMAC(MACConfig{LineRateGbps: nan, FreqHz: 1}, nil, nil) },
		"dma rate":          func() { NewDMAEngine(DMAConfig{PCIeGbps: 0, FreqHz: 1}, nil, nil) },
		"dma freq":          func() { NewDMAEngine(DMAConfig{PCIeGbps: 128, FreqHz: 0}, nil, nil) },
		"dma rate nan":      func() { NewDMAEngine(DMAConfig{PCIeGbps: nan, FreqHz: 1}, nil, nil) },
		"dma rate inf":      func() { NewDMAEngine(DMAConfig{PCIeGbps: math.Inf(1), FreqHz: 1}, nil, nil) },
		"txdma rate":        func() { NewTxDMAEngine(0, 1e9, nil) },
		"txdma freq nan":    func() { NewTxDMAEngine(128, nan, nil) },
		"ipsec rate":        func() { NewIPSecEngine(IPSecConfig{BytesPerCycle: 0}) },
		"ipsec rate nan":    func() { NewIPSecEngine(IPSecConfig{BytesPerCycle: nan}) },
		"lso mss":           func() { NewLSOEngine(LSOConfig{MSS: 0, BytesPerCycle: 8}) },
		"lso rate":          func() { NewLSOEngine(LSOConfig{MSS: 1460, BytesPerCycle: 0}) },
		"lso rate nan":      func() { NewLSOEngine(LSOConfig{MSS: 1460, BytesPerCycle: nan}) },
		"ratelimit freq":    func() { NewRateLimiterEngine(RateLimiterConfig{FreqHz: 0}) },
		"ratelimit nan":     func() { NewRateLimiterEngine(RateLimiterConfig{FreqHz: nan}) },
		"ratelimit setnan":  func() { NewRateLimiterEngine(RateLimiterConfig{FreqHz: 1e9}).SetLimit(1, nan) },
		"kvs addr":          func() { NewKVSCacheEngine(KVSCacheConfig{Capacity: 1}) },
		"rdma addr":         func() { NewRDMAEngine(RDMAConfig{}) },
		"pcie count":        func() { NewPCIeEngine(PCIeConfig{CoalesceCount: 0}) },
		"lru cap":           func() { newLRUCache(0) },
		"compression":       func() { NewCompressionEngine(8, 0) },
		"compression big":   func() { NewCompressionEngine(8, 1.5) },
		"compression nan":   func() { NewCompressionEngine(8, nan) },
		"byterate":          func() { NewByteRateEngine("x", 0, 0, nil) },
		"byterate nan":      func() { NewByteRateEngine("x", nan, 0, nil) },
		"regex rate":        func() { NewRegexEngine(8, -0.1) },
		"regex rate nan":    func() { NewRegexEngine(8, nan) },
		"cpucore perbyte":   func() { NewCPUCoreEngine("c", 1, -1, nil) },
		"cpucore nan":       func() { NewCPUCoreEngine("c", 1, nan, nil) },
		"tile fault factor": func() { newValidationTile().SetFault(FaultState{SlowFactor: 0.5}) },
		"tile fault period": func() { newValidationTile().SetFault(FaultState{DropEveryN: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}
