package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// feed registers a ticker that injects n chain messages toward tile 1 as
// fast as the fabric accepts them.
func feed(r *rig, n int) {
	src, dst := r.mesh.NodeAt(1, 0), r.mesh.NodeAt(0, 0)
	next := 0
	r.k.Register(sim.TickFunc(func(uint64) {
		for next < n && r.mesh.CanInject(src, dst) {
			r.mesh.Inject(src, dst, chainMsg(uint64(next), packet.Hop{Engine: 1}))
			next++
		}
	}))
}

func TestWedgeFreezesServiceAndLiftResumes(t *testing.T) {
	r := newRig(2, 2)
	eng := &fixedEngine{name: "e", svc: 5}
	tile := r.place(1, 0, 0, eng)
	sinkEng := NewCollectorEngine("sink", 1, nil)
	r.place(2, 1, 1, sinkEng)
	r.routes.SetDefault(2)

	tile.SetFault(FaultState{Wedged: true})
	if tile.FaultState().Clean() {
		t.Fatal("fault state should be dirty")
	}
	for i := 0; i < 4; i++ {
		r.mesh.Inject(r.mesh.NodeAt(1, 0), r.mesh.NodeAt(0, 0), chainMsg(uint64(i), packet.Hop{Engine: 1}))
	}
	r.k.Run(300)
	if got := tile.Stats().Processed; got != 0 {
		t.Fatalf("wedged tile processed %d messages", got)
	}
	if tile.QueueLen() == 0 && tile.cur == nil {
		t.Fatal("wedged tile should hold the backlog")
	}

	tile.SetFault(FaultState{})
	if !r.k.RunUntil(func() bool { return sinkEng.Count() == 4 }, 500) {
		t.Fatalf("backlog not served after wedge lifted (sink %d)", sinkEng.Count())
	}
}

func TestSlowFaultStretchesService(t *testing.T) {
	served := func(slow float64) uint64 {
		r := newRig(2, 2)
		eng := &fixedEngine{name: "e", svc: 30}
		tile := r.place(1, 0, 0, eng)
		r.place(2, 1, 1, NewCollectorEngine("sink", 1, nil))
		r.routes.SetDefault(2)
		if slow > 1 {
			tile.SetFault(FaultState{SlowFactor: slow})
		}
		feed(r, 50)
		r.k.Run(600)
		return tile.Stats().Processed
	}
	fast, slow := served(0), served(4)
	if slow == 0 || fast < 3*slow {
		t.Fatalf("slow=4 served %d vs healthy %d: want ~4x fewer", slow, fast)
	}
}

func TestFlakeFaultsAreDeterministicAndConserved(t *testing.T) {
	r := newRig(2, 2)
	eng := &fixedEngine{name: "e", svc: 1}
	tile := r.place(1, 0, 0, eng)
	r.place(2, 1, 1, NewCollectorEngine("sink", 1, nil))
	var sunk uint64
	tile.DropSink = SinkFunc(func(*packet.Message, uint64) { sunk++ })
	r.routes.SetDefault(2)

	tile.SetFault(FaultState{DropEveryN: 3, CorruptEveryN: 5})
	const n = 30
	feed(r, n)
	r.k.Run(1000)

	st := tile.Stats()
	// Every arrival is either served or accounted as a fault discard.
	if st.Processed+st.Dropped != n {
		t.Fatalf("conservation: processed %d + dropped %d != %d", st.Processed, st.Dropped, n)
	}
	if st.Corrupted == 0 || st.FaultDropped == 0 {
		t.Fatalf("fault counters: corrupted %d, dropped %d", st.Corrupted, st.FaultDropped)
	}
	if st.Dropped != st.Corrupted+st.FaultDropped {
		t.Fatalf("Dropped %d != Corrupted %d + FaultDropped %d", st.Dropped, st.Corrupted, st.FaultDropped)
	}
	// Discards land in the DropSink, not the void.
	if sunk != st.Dropped {
		t.Fatalf("drop sink saw %d, stats dropped %d", sunk, st.Dropped)
	}
	// Deterministic: 30 arrivals, corrupt every 5th of those that reach the
	// drop check... the exact split is pinned by the every-Nth counters.
	if st.Corrupted != 6 {
		t.Fatalf("corrupted = %d, want 6 (every 5th of 30)", st.Corrupted)
	}
}

func TestResetDrainsToDefaultRoute(t *testing.T) {
	r := newRig(2, 2)
	eng := &fixedEngine{name: "e", svc: 10}
	tile := r.place(1, 0, 0, eng)
	rescue := NewCollectorEngine("rescue", 1, nil)
	r.place(2, 1, 1, rescue)
	r.routes.SetDefault(2)

	tile.SetFault(FaultState{Wedged: true})
	const n = 6
	for i := 0; i < n; i++ {
		r.mesh.Inject(r.mesh.NodeAt(1, 0), r.mesh.NodeAt(0, 0), chainMsg(uint64(i), packet.Hop{Engine: 1}))
	}
	r.k.Run(200)

	drained := tile.Reset(packet.AddrInvalid)
	if drained == 0 {
		t.Fatal("nothing drained from a wedged tile with backlog")
	}
	if got := tile.Stats().Drained; got != uint64(drained) {
		t.Fatalf("Drained stat %d != %d", got, drained)
	}
	// The drained messages re-enter the fabric (tile stays wedged) and land
	// at the default route.
	if !r.k.RunUntil(func() bool { return rescue.Count() == n }, 500) {
		t.Fatalf("rescued %d of %d drained messages", rescue.Count(), n)
	}
}
