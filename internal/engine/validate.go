package engine

import (
	"fmt"
	"math"
)

// requirePositive panics unless v is finite and strictly positive. A bare
// `v <= 0` guard lets NaN through (every comparison with NaN is false) and
// +Inf yields zero-cycle service times; both then surface as impossible
// timing far from the misconfigured constructor, so reject them here.
func requirePositive(what string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		panic(fmt.Sprintf("engine: %s %v (want finite > 0)", what, v))
	}
}

// requireNonNegative panics unless v is finite and >= 0.
func requireNonNegative(what string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		panic(fmt.Sprintf("engine: %s %v (want finite >= 0)", what, v))
	}
}

// requireFraction panics unless v is a finite value in (0, 1].
func requireFraction(what string, v float64) {
	if math.IsNaN(v) || v <= 0 || v > 1 {
		panic(fmt.Sprintf("engine: %s %v (want in (0, 1])", what, v))
	}
}
