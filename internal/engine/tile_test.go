package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
)

// rig is a minimal test bench: a mesh, a kernel, a route table, and
// helpers to place tiles.
type rig struct {
	k      *sim.Kernel
	mesh   *noc.Mesh
	routes *RouteTable
	rng    *sim.RNG
	tiles  []*Tile
}

func newRig(w, h int) *rig {
	cfg := noc.DefaultMeshConfig()
	cfg.Width, cfg.Height = w, h
	m := noc.NewMesh(cfg)
	k := sim.NewKernel(500 * sim.MHz)
	m.RegisterWith(k)
	return &rig{k: k, mesh: m, routes: NewRouteTable(), rng: sim.NewRNG(1)}
}

// place binds addr to (x,y) and builds a tile there.
func (r *rig) place(addr packet.Addr, x, y int, eng Engine, opts ...func(*TileConfig)) *Tile {
	node := r.mesh.NodeAt(x, y)
	r.routes.Bind(addr, node)
	cfg := TileConfig{Addr: addr, Node: node, QueueCap: 16, Policy: sched.Backpressure, TraceVisits: true}
	for _, o := range opts {
		o(&cfg)
	}
	t := NewTile(cfg, eng, r.mesh, r.routes, r.rng.Fork())
	r.k.Register(t)
	r.tiles = append(r.tiles, t)
	return t
}

// fixedEngine has constant service time and forwards along the chain.
type fixedEngine struct {
	name  string
	svc   uint64
	count uint64
}

func (f *fixedEngine) Name() string                            { return f.name }
func (f *fixedEngine) ServiceCycles(*packet.Message) uint64    { return f.svc }
func (f *fixedEngine) Process(_ *Ctx, m *packet.Message) []Out { f.count++; return []Out{{Msg: m}} }

func chainMsg(id uint64, hops ...packet.Hop) *packet.Message {
	m := &packet.Message{
		ID: id,
		Pkt: packet.NewPacket(64,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP},
			&packet.UDP{SrcPort: 1, DstPort: 2},
		),
	}
	if len(hops) > 0 {
		m.InsertChain(&packet.Chain{Hops: hops})
	}
	return m
}

func TestTileChainTraversal(t *testing.T) {
	r := newRig(3, 3)
	e1 := &fixedEngine{name: "a", svc: 3}
	e2 := &fixedEngine{name: "b", svc: 3}
	sinkEng := NewCollectorEngine("sink", 1, nil)
	r.place(1, 0, 0, e1)
	r.place(2, 2, 0, e2)
	sink := r.place(3, 2, 2, sinkEng)
	r.routes.SetDefault(3) // default route to the sink

	msg := chainMsg(7, packet.Hop{Engine: 1, Slack: 10}, packet.Hop{Engine: 2, Slack: 20}, packet.Hop{Engine: 3, Slack: 30})
	r.mesh.Inject(r.mesh.NodeAt(1, 1), r.mesh.NodeAt(0, 0), msg)

	if !r.k.RunUntil(func() bool { return sinkEng.Count() == 1 }, 500) {
		t.Fatal("message did not reach the sink")
	}
	if e1.count != 1 || e2.count != 1 {
		t.Errorf("engine visits: %d, %d", e1.count, e2.count)
	}
	// Trace records the visits in chain order.
	got := sinkEng.Last()
	if len(got.Trace) != 3 {
		t.Fatalf("trace = %+v", got.Trace)
	}
	for i, want := range []packet.Addr{1, 2, 3} {
		if got.Trace[i].Engine != want {
			t.Errorf("trace[%d] = %d, want %d", i, got.Trace[i].Engine, want)
		}
	}
	// The chain's cursor rests on the consuming engine's own hop.
	if c := got.Chain(); c == nil || c.Remaining() != 1 {
		t.Errorf("chain cursor wrong: %+v", got.Chain())
	} else if hop, _ := c.Current(); hop.Engine != 3 {
		t.Errorf("final hop = %d, want 3", hop.Engine)
	}
	_ = sink
}

func TestTileDefaultRouteForChainless(t *testing.T) {
	r := newRig(2, 2)
	fwd := &fixedEngine{name: "fwd", svc: 1}
	defEng := NewCollectorEngine("rmt", 1, nil)
	r.place(1, 0, 0, fwd)
	r.place(2, 1, 1, defEng)
	r.routes.SetDefault(2)
	r.mesh.Inject(r.mesh.NodeAt(0, 1), r.mesh.NodeAt(0, 0), chainMsg(1))
	if !r.k.RunUntil(func() bool { return defEng.Count() == 1 }, 200) {
		t.Fatal("chainless message did not take the default route")
	}
}

func TestTilePerTileDefaultOverride(t *testing.T) {
	r := newRig(2, 2)
	fwd := &fixedEngine{name: "fwd", svc: 1}
	a := NewCollectorEngine("a", 1, nil)
	b := NewCollectorEngine("b", 1, nil)
	r.place(1, 0, 0, fwd, func(c *TileConfig) { c.DefaultTo = 3 })
	r.place(2, 1, 0, a)
	r.place(3, 1, 1, b)
	r.routes.SetDefault(2)
	r.mesh.Inject(r.mesh.NodeAt(0, 1), r.mesh.NodeAt(0, 0), chainMsg(1))
	if !r.k.RunUntil(func() bool { return b.Count() == 1 }, 200) {
		t.Fatal("override default not used")
	}
	if a.Count() != 0 {
		t.Error("message also reached table default")
	}
}

func TestTileServiceTimeAndUtilization(t *testing.T) {
	r := newRig(2, 1)
	slow := &fixedEngine{name: "slow", svc: 10}
	sinkEng := NewCollectorEngine("sink", 1, nil)
	tile := r.place(1, 0, 0, slow)
	r.place(2, 1, 0, sinkEng)
	r.routes.SetDefault(2)
	for i := 0; i < 5; i++ {
		m := chainMsg(uint64(i), packet.Hop{Engine: 1})
		r.mesh.Inject(r.mesh.NodeAt(1, 0), r.mesh.NodeAt(0, 0), m)
	}
	if !r.k.RunUntil(func() bool { return sinkEng.Count() == 5 }, 500) {
		t.Fatal("not all messages processed")
	}
	s := tile.Stats()
	if s.Processed != 5 {
		t.Errorf("processed = %d", s.Processed)
	}
	if s.BusyCycles != 50 {
		t.Errorf("busy cycles = %d, want 50", s.BusyCycles)
	}
	// 5 back-to-back messages through a 10-cycle server: total queue wait
	// is 0+10+20+30+40 minus pipelining overlap of arrivals; at minimum
	// the later ones waited.
	if s.QueueWaitTotal == 0 {
		t.Error("no queueing recorded for serialized service")
	}
}

func TestTileSlackSchedulingOrdersQueue(t *testing.T) {
	// Two messages arrive while the engine is busy; the one with smaller
	// slack must be served first even though it arrived second.
	r := newRig(2, 1)
	eng := &fixedEngine{name: "e", svc: 30}
	collector := NewCollectorEngine("sink", 1, nil)
	var order []uint64
	sink := SinkFunc(func(m *packet.Message, _ uint64) { order = append(order, m.ID) })
	collector = NewCollectorEngine("sink", 1, sink)
	r.place(1, 0, 0, eng)
	r.place(2, 1, 0, collector)
	r.routes.SetDefault(2)

	src := r.mesh.NodeAt(1, 0)
	// Msg 1 arrives first and starts service. Msgs 2 (slack 1000) and 3
	// (slack 10) queue behind it; 3 must win.
	r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(1, packet.Hop{Engine: 1, Slack: 0}))
	r.k.Run(10)
	r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(2, packet.Hop{Engine: 1, Slack: 1000}))
	r.k.Run(3)
	r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(3, packet.Hop{Engine: 1, Slack: 10}))
	if !r.k.RunUntil(func() bool { return collector.Count() == 3 }, 1000) {
		t.Fatal("not all delivered")
	}
	want := []uint64{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestTileFIFORankIgnoresSlack(t *testing.T) {
	r := newRig(2, 1)
	eng := &fixedEngine{name: "e", svc: 30}
	var order []uint64
	collector := NewCollectorEngine("sink", 1, SinkFunc(func(m *packet.Message, _ uint64) { order = append(order, m.ID) }))
	r.place(1, 0, 0, eng, func(c *TileConfig) { c.Rank = sched.RankFIFO })
	r.place(2, 1, 0, collector)
	r.routes.SetDefault(2)
	src := r.mesh.NodeAt(1, 0)
	r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(1, packet.Hop{Engine: 1, Slack: 0}))
	r.k.Run(10)
	r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(2, packet.Hop{Engine: 1, Slack: 1000}))
	r.k.Run(3)
	r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(3, packet.Hop{Engine: 1, Slack: 10}))
	if !r.k.RunUntil(func() bool { return collector.Count() == 3 }, 1000) {
		t.Fatal("not all delivered")
	}
	want := []uint64{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestTileLossyDropsWorst(t *testing.T) {
	r := newRig(2, 1)
	eng := &fixedEngine{name: "e", svc: 1000} // effectively stuck
	tile := r.place(1, 0, 0, eng, func(c *TileConfig) {
		c.QueueCap = 2
		c.Policy = sched.DropLowestPriority
	})
	collector := NewCollectorEngine("sink", 1, nil)
	r.place(2, 1, 0, collector)
	r.routes.SetDefault(2)
	src := r.mesh.NodeAt(1, 0)
	for i := 0; i < 6; i++ {
		r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(uint64(i), packet.Hop{Engine: 1, Slack: uint32(100 * i)}))
	}
	r.k.Run(300)
	if tile.Stats().Dropped < 3 {
		t.Errorf("dropped = %d, want >= 3 (one in service, two queued)", tile.Stats().Dropped)
	}
	if tile.QueueLen() != 2 {
		t.Errorf("queue len = %d, want 2", tile.QueueLen())
	}
}

func TestTileBackpressureHoldsInNetwork(t *testing.T) {
	r := newRig(2, 1)
	eng := &fixedEngine{name: "e", svc: 100000}
	tile := r.place(1, 0, 0, eng, func(c *TileConfig) {
		c.QueueCap = 2
		c.Policy = sched.Backpressure
	})
	collector := NewCollectorEngine("sink", 1, nil)
	r.place(2, 1, 0, collector)
	r.routes.SetDefault(2)
	src := r.mesh.NodeAt(1, 0)
	sent := 0
	r.k.Register(sim.TickFunc(func(uint64) {
		if sent < 100 && r.mesh.CanInject(src, r.mesh.NodeAt(0, 0)) {
			r.mesh.Inject(src, r.mesh.NodeAt(0, 0), chainMsg(uint64(sent), packet.Hop{Engine: 1}))
			sent++
		}
	}))
	r.k.Run(2000)
	if tile.Stats().Dropped != 0 {
		t.Errorf("lossless tile dropped %d", tile.Stats().Dropped)
	}
	if tile.QueueLen() > 2 {
		t.Errorf("queue overfilled: %d", tile.QueueLen())
	}
	// The network clogs once every buffer fills: far fewer than 100 fit.
	if sent >= 60 {
		t.Errorf("backpressure did not reach the injector (sent %d)", sent)
	}
}

func TestTileValidation(t *testing.T) {
	r := newRig(2, 1)
	eng := &fixedEngine{name: "e", svc: 1}
	r.routes.Bind(1, r.mesh.NodeAt(0, 0))
	for name, cfg := range map[string]TileConfig{
		"zero queue": {Addr: 1, Node: r.mesh.NodeAt(0, 0), QueueCap: 0},
		"unbound":    {Addr: 9, Node: r.mesh.NodeAt(0, 0), QueueCap: 4},
		"wrong node": {Addr: 1, Node: r.mesh.NodeAt(1, 0), QueueCap: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			NewTile(cfg, eng, r.mesh, r.routes, r.rng)
		}()
	}
}

func TestRouteTableValidation(t *testing.T) {
	rt := NewRouteTable()
	rt.Bind(1, 5)
	if !rt.Has(1) || rt.Lookup(1) != 5 {
		t.Error("bind/lookup failed")
	}
	c := rt.Clone()
	c.Bind(2, 6)
	if rt.Has(2) {
		t.Error("clone not independent")
	}
	for name, fn := range map[string]func(){
		"rebind":        func() { rt.Bind(1, 7) },
		"bind invalid":  func() { rt.Bind(packet.AddrInvalid, 1) },
		"lookup absent": func() { rt.Lookup(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}
