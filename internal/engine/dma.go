package engine

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
)

// HostResponder lets a simulation model the host CPU behind the DMA
// engine: when a packet is delivered to host memory, the responder may
// produce a response packet that re-enters the NIC after a host processing
// delay (the simplified host loop: process, post TX descriptor, descriptor
// fetched, packet injected).
type HostResponder interface {
	Respond(msg *packet.Message, now uint64) (resp *packet.Message, delay uint64, ok bool)
}

// DMAConfig parameterizes the DMA engine.
type DMAConfig struct {
	// PCIeGbps is the transfer bandwidth toward host memory.
	PCIeGbps float64
	// FreqHz is the NIC clock.
	FreqHz float64
	// BaseLatencyCycles is the host round-trip latency for reads.
	BaseLatencyCycles uint64
	// JitterCycles adds uniform random extra latency, modeling memory
	// contention from host applications (§3.2: "the DMA engine has
	// variable performance and may become a bottleneck").
	JitterCycles uint64
	// NotifyAddr, when set, receives a small completion notification for
	// every host delivery (the PCIe/interrupt engine).
	NotifyAddr packet.Addr
}

// DMAEngine models the NIC's DMA block as an ordinary engine (§3.1.1:
// "even parts of the NIC that would not normally be thought of as offloads
// are implemented as engines"). It serves three kinds of messages:
//
//   - DMA-layer read requests: occupy the engine for the transfer time,
//     then return a read completion to the requester after memory latency.
//   - DMA-layer write requests: occupy for the transfer time; acked to the
//     requester when one is named.
//   - Ordinary packets (chain-terminated here): written to host memory and
//     delivered to the host sink, optionally generating a notification to
//     the PCIe engine and a host response.
type DMAEngine struct {
	cfg          DMAConfig
	hostSink     Sink
	responder    HostResponder
	bitsPerCycle float64

	reads, writes, hostDeliveries uint64
}

// NewDMAEngine builds the engine. hostSink receives packets written to
// host memory (nil discards); responder may be nil.
func NewDMAEngine(cfg DMAConfig, hostSink Sink, responder HostResponder) *DMAEngine {
	requirePositive("DMA PCIe rate Gbps", cfg.PCIeGbps)
	requirePositive("DMA clock freq Hz", cfg.FreqHz)
	if hostSink == nil {
		hostSink = NullSink{}
	}
	return &DMAEngine{cfg: cfg, hostSink: hostSink, responder: responder,
		bitsPerCycle: cfg.PCIeGbps * 1e9 / cfg.FreqHz}
}

// Name implements Engine.
func (d *DMAEngine) Name() string { return "dma" }

// transferBytes returns the payload size a message moves across PCIe.
func (d *DMAEngine) transferBytes(msg *packet.Message) int {
	if l := msg.Pkt.Layer(packet.LayerTypeDMA); l != nil {
		return int(l.(*packet.DMA).Len)
	}
	return msg.WireLen()
}

// ServiceCycles implements Engine: PCIe occupancy for the transfer.
func (d *DMAEngine) ServiceCycles(msg *packet.Message) uint64 {
	return uint64(math.Ceil(float64(d.transferBytes(msg)*8) / d.bitsPerCycle))
}

// latency returns the host memory round trip including contention jitter.
func (d *DMAEngine) latency(ctx *Ctx) uint64 {
	l := d.cfg.BaseLatencyCycles
	if d.cfg.JitterCycles > 0 {
		l += uint64(ctx.RNG.Intn(int(d.cfg.JitterCycles) + 1))
	}
	return l
}

// Process implements Engine.
func (d *DMAEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	if l := msg.Pkt.Layer(packet.LayerTypeDMA); l != nil {
		req := l.(*packet.DMA)
		switch req.Op {
		case packet.DMARead:
			d.reads++
			compl := &packet.Message{
				ID:      msg.ID,
				TraceID: msg.TraceID,
				Tenant:  msg.Tenant,
				Class:   packet.ClassControl,
				Port:    -1,
				Inject:  ctx.Now,
				Pkt: packet.NewPacket(int(req.Len),
					&packet.Ethernet{EtherType: packet.EtherTypeDMA},
					&packet.DMA{Op: packet.DMAReadCompl, Requester: req.Requester,
						Len: req.Len, HostAddr: req.HostAddr},
				),
			}
			return []Out{{Msg: compl, To: req.Requester, Delay: d.latency(ctx)}}
		case packet.DMAWrite:
			d.writes++
			if req.Requester == packet.AddrInvalid {
				return nil
			}
			ack := &packet.Message{
				ID:      msg.ID,
				TraceID: msg.TraceID,
				Tenant:  msg.Tenant,
				Class:   packet.ClassControl,
				Port:    -1,
				Inject:  ctx.Now,
				Pkt: packet.NewPacket(0,
					&packet.Ethernet{EtherType: packet.EtherTypeDMA},
					&packet.DMA{Op: packet.DMAWriteCompl, Requester: req.Requester,
						Len: req.Len, HostAddr: req.HostAddr},
				),
			}
			return []Out{{Msg: ack, To: req.Requester, Delay: d.latency(ctx)}}
		default:
			// Completions addressed to the DMA engine are a routing bug;
			// drop them visibly in traces by consuming.
			return nil
		}
	}

	// An ordinary packet whose chain ends here: deliver to host memory.
	// The host observes the data after the PCIe write latency.
	d.hostDeliveries++
	arrival := ctx.Now + d.latency(ctx)
	msg.Done = arrival
	d.hostSink.Deliver(msg, arrival)
	var outs []Out
	if d.cfg.NotifyAddr != packet.AddrInvalid {
		notify := &packet.Message{
			ID:      msg.ID,
			TraceID: msg.TraceID,
			Tenant:  msg.Tenant,
			Class:   packet.ClassControl,
			Port:    -1,
			Inject:  ctx.Now,
			Pkt: packet.NewPacket(0,
				&packet.Ethernet{EtherType: packet.EtherTypeDMA},
				&packet.DMA{Op: packet.DMAWriteCompl, Requester: d.cfg.NotifyAddr,
					Len: uint32(msg.WireLen())},
			),
		}
		outs = append(outs, Out{Msg: notify, To: d.cfg.NotifyAddr, Delay: d.latency(ctx)})
	}
	if d.responder != nil {
		if resp, delay, ok := d.responder.Respond(msg, ctx.Now); ok {
			resp.Port = -1
			outs = append(outs, Out{Msg: resp, Delay: delay})
		}
	}
	return outs
}

// Counts returns (reads, writes, host deliveries).
func (d *DMAEngine) Counts() (reads, writes, hostDeliveries uint64) {
	return d.reads, d.writes, d.hostDeliveries
}

// PCIeConfig parameterizes the PCIe/interrupt engine.
type PCIeConfig struct {
	// CoalesceCount fires an interrupt after this many completion
	// notifications (1 = every completion).
	CoalesceCount int
	// CoalesceTimeoutCycles fires a pending interrupt after this long
	// even when the count is not reached (0 = no timeout).
	CoalesceTimeoutCycles uint64
	// InterruptCycles is the service cost of raising an interrupt.
	InterruptCycles uint64
}

// PCIeEngine models interrupt generation with coalescing (§3.2: "the DMA
// engine will send a message to a PCIe engine that may generate an
// interrupt depending on the interrupt coalescing state").
type PCIeEngine struct {
	cfg        PCIeConfig
	pendingN   int
	pendingAt  uint64
	interrupts uint64
	notified   uint64
}

// NewPCIeEngine builds the engine.
func NewPCIeEngine(cfg PCIeConfig) *PCIeEngine {
	if cfg.CoalesceCount < 1 {
		panic(fmt.Sprintf("engine: PCIe coalesce count %d", cfg.CoalesceCount))
	}
	return &PCIeEngine{cfg: cfg}
}

// Name implements Engine.
func (p *PCIeEngine) Name() string { return "pcie" }

// ServiceCycles implements Engine.
func (p *PCIeEngine) ServiceCycles(*packet.Message) uint64 {
	if p.cfg.InterruptCycles == 0 {
		return 1
	}
	return p.cfg.InterruptCycles
}

// Process implements Engine: count notifications, fire on threshold.
func (p *PCIeEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	p.notified++
	if p.pendingN == 0 {
		p.pendingAt = ctx.Now
	}
	p.pendingN++
	fire := p.pendingN >= p.cfg.CoalesceCount
	if !fire && p.cfg.CoalesceTimeoutCycles > 0 && ctx.Now-p.pendingAt >= p.cfg.CoalesceTimeoutCycles {
		fire = true
	}
	if fire {
		p.interrupts++
		p.pendingN = 0
	}
	return nil
}

// Counts returns (notifications seen, interrupts raised).
func (p *PCIeEngine) Counts() (notifications, interrupts uint64) {
	return p.notified, p.interrupts
}
