package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// tenantMsg is chainMsg with an accounting tenant stamped on the message.
func tenantMsg(id uint64, tenant uint16, hops ...packet.Hop) *packet.Message {
	m := chainMsg(id, hops...)
	m.Tenant = tenant
	return m
}

func TestTileTenantTallies(t *testing.T) {
	r := newRig(2, 1)
	eng := &fixedEngine{name: "e", svc: 10}
	sinkEng := NewCollectorEngine("sink", 1, nil)
	tile := r.place(1, 0, 0, eng)
	r.place(2, 1, 0, sinkEng)
	r.routes.SetDefault(2)

	// Three tenant-1 and two tenant-2 messages back to back: the 10-cycle
	// server serializes them, so later arrivals accumulate queue wait.
	src := r.mesh.NodeAt(1, 0)
	for i, tenant := range []uint16{1, 2, 1, 2, 1} {
		r.mesh.Inject(src, r.mesh.NodeAt(0, 0), tenantMsg(uint64(i+1), tenant, packet.Hop{Engine: 1}))
	}
	if !r.k.RunUntil(func() bool { return sinkEng.Count() == 5 }, 1000) {
		t.Fatal("not all messages processed")
	}

	tt := tile.TenantStats()
	t1, t2 := tt[1], tt[2]
	if t1.Enqueued != 3 || t1.Processed != 3 || t2.Enqueued != 2 || t2.Processed != 2 {
		t.Fatalf("tallies: tenant1=%+v tenant2=%+v", t1, t2)
	}
	if t1.ServiceCycles != 30 || t2.ServiceCycles != 20 {
		t.Errorf("service cycles: tenant1=%d tenant2=%d, want 30/20", t1.ServiceCycles, t2.ServiceCycles)
	}
	if t1.QueueWaitTotal+t2.QueueWaitTotal == 0 {
		t.Error("no per-tenant queue wait recorded for serialized service")
	}
	if t1.Dropped != 0 || t2.Dropped != 0 {
		t.Errorf("drops: tenant1=%d tenant2=%d, want 0/0", t1.Dropped, t2.Dropped)
	}
	// The per-tenant tallies partition the tile totals exactly.
	st := tile.Stats()
	if t1.Processed+t2.Processed != st.Processed {
		t.Errorf("tenant processed %d+%d != tile %d", t1.Processed, t2.Processed, st.Processed)
	}
	if t1.ServiceCycles+t2.ServiceCycles != st.BusyCycles {
		t.Errorf("tenant service %d+%d != tile busy %d", t1.ServiceCycles, t2.ServiceCycles, st.BusyCycles)
	}
	if t1.QueueWaitTotal+t2.QueueWaitTotal != st.QueueWaitTotal {
		t.Errorf("tenant qwait %d+%d != tile %d", t1.QueueWaitTotal, t2.QueueWaitTotal, st.QueueWaitTotal)
	}
}

// TestTileTenantScopedDropFault checks the tenant-confined flake: only the
// named tenant's arrivals are dropped, and other tenants' arrivals do not
// advance the every-Nth counter.
func TestTileTenantScopedDropFault(t *testing.T) {
	r := newRig(2, 1)
	eng := &fixedEngine{name: "e", svc: 1}
	sinkEng := NewCollectorEngine("sink", 1, nil)
	tile := r.place(1, 0, 0, eng)
	r.place(2, 1, 0, sinkEng)
	r.routes.SetDefault(2)
	tile.SetFault(FaultState{DropEveryN: 2, DropTenantOnly: true, DropTenant: 2})

	// Interleave so that, were tenant-1 arrivals counted, the drop pattern
	// would shift: 4 tenant-2 arrivals must lose exactly every 2nd.
	src := r.mesh.NodeAt(1, 0)
	for i, tenant := range []uint16{1, 2, 1, 2, 2, 1, 2, 1} {
		r.mesh.Inject(src, r.mesh.NodeAt(0, 0), tenantMsg(uint64(i+1), tenant, packet.Hop{Engine: 1}))
	}
	if !r.k.RunUntil(func() bool { return sinkEng.Count() == 6 }, 1000) {
		t.Fatalf("delivered %d, want 6 (4 tenant-1 + 2 surviving tenant-2)", sinkEng.Count())
	}
	r.k.Run(50) // settle: nothing further may arrive

	tt := tile.TenantStats()
	if tt[1].Dropped != 0 || tt[1].Processed != 4 {
		t.Errorf("tenant 1: %+v, want 4 processed 0 dropped", tt[1])
	}
	if tt[2].Dropped != 2 || tt[2].Processed != 2 {
		t.Errorf("tenant 2: %+v, want 2 processed 2 dropped", tt[2])
	}
	if st := tile.Stats(); st.FaultDropped != 2 {
		t.Errorf("FaultDropped = %d, want 2", st.FaultDropped)
	}
}

func TestTileTenantDropFaultValidation(t *testing.T) {
	r := newRig(1, 1)
	tile := r.place(1, 0, 0, &fixedEngine{name: "e", svc: 1})
	defer func() {
		if recover() == nil {
			t.Error("tenant-scoped drop without a period did not panic")
		}
	}()
	tile.SetFault(FaultState{DropTenantOnly: true, DropTenant: 3})
}
