package engine

// lruCache is a fixed-capacity LRU map from key to value length, the
// on-NIC application cache of the paper's KVS example. Hand-rolled
// intrusive list to keep lookups allocation-free on the hot path.
type lruCache struct {
	cap   int
	items map[uint64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        uint64
	valueLen   uint32
	prev, next *lruNode
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		panic("engine: LRU capacity must be positive")
	}
	return &lruCache{cap: capacity, items: make(map[uint64]*lruNode, capacity)}
}

func (c *lruCache) Len() int { return len(c.items) }

// Get returns the value length and hit status, refreshing recency on hit.
func (c *lruCache) Get(key uint64) (uint32, bool) {
	n, ok := c.items[key]
	if !ok {
		return 0, false
	}
	c.moveToFront(n)
	return n.valueLen, true
}

// Contains reports presence without refreshing recency.
func (c *lruCache) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates a key, evicting the least recently used entry
// when full. It returns the evicted key and whether an eviction happened.
func (c *lruCache) Put(key uint64, valueLen uint32) (evicted uint64, didEvict bool) {
	if n, ok := c.items[key]; ok {
		n.valueLen = valueLen
		c.moveToFront(n)
		return 0, false
	}
	if len(c.items) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
		evicted, didEvict = lru.key, true
	}
	n := &lruNode{key: key, valueLen: valueLen}
	c.items[key] = n
	c.pushFront(n)
	return evicted, didEvict
}

// Delete removes a key if present.
func (c *lruCache) Delete(key uint64) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.items, key)
	return true
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
