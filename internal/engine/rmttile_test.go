package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sched"
)

// miniProgram steers KVS GETs through engine 10 then the collector at 11;
// everything else goes straight to 11.
func miniProgram() *rmt.Program {
	t := rmt.NewTable("steer", rmt.MatchExact, []rmt.FieldID{rmt.FieldKVSOp}, 0,
		rmt.NewAction("direct", rmt.OpPushHop{Engine: 11, SlackConst: 100}))
	t.Add(rmt.Entry{Values: []uint64{uint64(packet.KVSGet)},
		Action: rmt.NewAction("via-offload",
			rmt.OpPushHop{Engine: 10, SlackConst: 10},
			rmt.OpPushHop{Engine: 11, SlackConst: 200})})
	return rmt.NewProgram(rmt.StandardParser(), []*rmt.Table{t})
}

func (r *rig) placeRMT(addr packet.Addr, x, y int, prog *rmt.Program) *RMTTile {
	node := r.mesh.NodeAt(x, y)
	r.routes.Bind(addr, node)
	cfg := TileConfig{Addr: addr, Node: node, QueueCap: 16, Policy: sched.Backpressure}
	t := NewRMTTile(cfg, rmt.NewPipeline(prog, 1, 1), r.mesh, r.routes)
	r.k.Register(t)
	return t
}

func kvsGetWire(id uint64) *packet.Message {
	m := kvsGet(id, 1, id)
	m.ID = id
	return m
}

func TestRMTTileClassifiesAndRoutes(t *testing.T) {
	r := newRig(3, 3)
	rmtTile := r.placeRMT(1, 1, 1, miniProgram())
	off := &fixedEngine{name: "off", svc: 2}
	collector := NewCollectorEngine("sink", 1, nil)
	r.place(10, 0, 0, off)
	r.place(11, 2, 2, collector)
	r.routes.SetDefault(1)

	// Inject a chainless GET from a corner: default route -> RMT.
	r.mesh.Inject(r.mesh.NodeAt(2, 0), rmtTile.Node(), kvsGetWire(1))
	if !r.k.RunUntil(func() bool { return collector.Count() == 1 }, 500) {
		t.Fatal("GET did not reach collector")
	}
	if off.count != 1 {
		t.Error("GET skipped the offload hop")
	}
	got := collector.Last()
	c := got.Chain()
	if c == nil || len(c.Hops) != 2 || c.Hops[0].Engine != 10 || c.Hops[1].Engine != 11 {
		t.Fatalf("chain = %+v", c)
	}
	s := rmtTile.Stats()
	if s.Accepted != 1 || s.Emitted != 1 || s.Unrouted != 0 {
		t.Errorf("rmt stats = %+v", s)
	}
}

func TestRMTTileThroughputOnePerCycle(t *testing.T) {
	r := newRig(3, 1)
	rmtTile := r.placeRMT(1, 1, 0, miniProgram())
	collector := NewCollectorEngine("sink", 1, nil)
	// Direct route: SETs bypass the offload.
	r.place(11, 2, 0, collector)
	off := &fixedEngine{name: "off", svc: 1}
	r.place(10, 0, 0, off)
	r.routes.SetDefault(1)

	// Saturate the RMT queue with SETs (direct chain) and check the
	// pipeline drains one per cycle.
	const n = 64
	sent := 0
	r.k.Register(simTick(func(cycle uint64) {
		for sent < n && r.mesh.CanInject(r.mesh.NodeAt(0, 0), rmtTile.Node()) {
			m := kvsSet(uint64(sent), uint64(sent), 0)
			r.mesh.Inject(r.mesh.NodeAt(0, 0), rmtTile.Node(), m)
			sent++
		}
	}))
	if !r.k.RunUntil(func() bool { return collector.Count() == n }, 3000) {
		t.Fatalf("only %d/%d delivered", collector.Count(), n)
	}
	// The RMT pipeline itself accepts one message per cycle, so the
	// bottleneck must be the 64-bit mesh channels (a 58-byte message is 8
	// flits ≈ 8 cycles of link serialization each way), not the pipeline:
	// no stall cycles beyond transient backpressure, and the total run is
	// bounded by link serialization, not pipeline-latency × n.
	if r.k.Now() > 12*n {
		t.Errorf("draining %d messages took %d cycles", n, r.k.Now())
	}
	if s := rmtTile.Stats(); s.StallCycles > uint64(n) {
		t.Errorf("pipeline stalled %d cycles", s.StallCycles)
	}
}

// simTick adapts a func to sim.Ticker without importing sim in every test.
type simTick func(cycle uint64)

func (f simTick) Tick(c uint64) { f(c) }

func TestRMTTileUnroutedCounted(t *testing.T) {
	r := newRig(2, 1)
	// Program with an empty default action: builds no chain.
	tbl := rmt.NewTable("noop", rmt.MatchExact, []rmt.FieldID{rmt.FieldKVSOp}, 0, rmt.Action{})
	prog := rmt.NewProgram(rmt.StandardParser(), []*rmt.Table{tbl})
	rmtTile := r.placeRMT(1, 0, 0, prog)
	r.routes.SetDefault(1)
	r.mesh.Inject(r.mesh.NodeAt(1, 0), rmtTile.Node(), kvsGetWire(1))
	r.k.Run(100)
	if rmtTile.Stats().Unrouted != 1 {
		t.Errorf("unrouted = %d, want 1", rmtTile.Stats().Unrouted)
	}
}

func TestRMTTileSelfHopAdvances(t *testing.T) {
	// A program that lists the RMT tile itself as the first hop (the
	// §3.1.2 "includes itself as a nexthop" pattern): the tile must skip
	// its own hop when routing the output.
	r := newRig(2, 1)
	tbl := rmt.NewTable("self", rmt.MatchExact, []rmt.FieldID{rmt.FieldKVSOp}, 0,
		rmt.NewAction("self-then-sink",
			rmt.OpPushHop{Engine: 1, SlackConst: 0},
			rmt.OpPushHop{Engine: 11, SlackConst: 0}))
	prog := rmt.NewProgram(rmt.StandardParser(), []*rmt.Table{tbl})
	rmtTile := r.placeRMT(1, 0, 0, prog)
	collector := NewCollectorEngine("sink", 1, nil)
	r.place(11, 1, 0, collector)
	r.routes.SetDefault(1)
	r.mesh.Inject(r.mesh.NodeAt(1, 0), rmtTile.Node(), kvsGetWire(1))
	if !r.k.RunUntil(func() bool { return collector.Count() == 1 }, 300) {
		t.Fatal("self-hop chain did not deliver")
	}
}

func TestRMTTileIdle(t *testing.T) {
	r := newRig(2, 1)
	rmtTile := r.placeRMT(1, 0, 0, miniProgram())
	collector := NewCollectorEngine("sink", 1, nil)
	r.place(11, 1, 0, collector)
	r.routes.SetDefault(1)
	if !rmtTile.Idle() {
		t.Error("fresh tile not idle")
	}
	m := kvsSet(1, 1, 0)
	r.mesh.Inject(r.mesh.NodeAt(1, 0), rmtTile.Node(), m)
	if !r.k.RunUntil(func() bool { return rmtTile.Stats().Accepted == 1 }, 200) {
		t.Fatal("message never accepted")
	}
	if rmtTile.Idle() {
		t.Error("tile idle with a message inside the pipeline")
	}
	r.k.Run(200)
	if !rmtTile.Idle() {
		t.Error("tile not idle after drain")
	}
}
