package engine

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// This file implements the per-tile custody audits behind the runtime
// invariant monitor (internal/invariant). Every audit is read-only and
// valid only between cycles (the kernel's end-of-cycle barrier), when all
// staged state is committed.

// Occupancy returns how many messages the tile currently holds: queued,
// in service, staged for emission, or delay-pending.
func (t *Tile) Occupancy() int {
	n := t.queue.Len() + t.outLen() + len(t.pending)
	if t.cur != nil {
		n++
	}
	return n
}

// AuditConservation checks the tile's message-custody ledger: everything
// that ever entered custody (Ejected from the fabric, Generated, or
// produced by Process) either left it (Emitted, Processed, Dropped,
// Refused) or is still resident. It also audits the scheduling queue's
// own ledger and the per-tenant balance:
//
//	Enqueued_t = Processed_t + (Dropped_t − Rejected_t) + Drained_t
//	             + queued_t + inService_t
//
// (Dropped_t − Rejected_t is the tenant's evicted-from-queue count.)
// It returns the first violation found.
func (t *Tile) AuditConservation() error {
	if err := t.queue.Audit(); err != nil {
		return fmt.Errorf("tile %q: %w", t.eng.Name(), err)
	}
	s := &t.stats
	in := s.Ejected + s.Generated + s.ProcOut
	out := s.Emitted + s.Processed + s.Dropped + s.Refused
	occ := uint64(t.Occupancy())
	if in != out+occ {
		return fmt.Errorf(
			"tile %q: custody leak: in %d (ejected %d + generated %d + procOut %d) != out %d (emitted %d + processed %d + dropped %d + refused %d) + resident %d",
			t.eng.Name(), in, s.Ejected, s.Generated, s.ProcOut,
			out, s.Emitted, s.Processed, s.Dropped, s.Refused, occ)
	}

	// Per-tenant balance over queue custody. Resident occupancy per tenant
	// comes from walking the queue; the in-service message counts for its
	// tenant.
	if len(t.tenants) > 0 {
		queued := make(map[uint16]uint64, len(t.tenants))
		t.queue.Each(func(m *packet.Message, _ uint64) { queued[m.Tenant]++ })
		for id, ta := range t.tenants {
			resident := queued[id]
			if t.cur != nil && t.cur.Tenant == id {
				resident++
			}
			want := ta.Processed + (ta.Dropped - ta.Rejected) + ta.Drained + resident
			if ta.Enqueued != want {
				return fmt.Errorf(
					"tile %q tenant %d: enqueued %d != processed %d + evicted %d + drained %d + resident %d",
					t.eng.Name(), id, ta.Enqueued, ta.Processed,
					ta.Dropped-ta.Rejected, ta.Drained, resident)
			}
		}
		// A tenant in the queue that never got a tally would be invisible
		// above; Push goes through admit, which always tallies, so this is
		// a pure cross-check.
		for id, n := range queued {
			if _, ok := t.tenants[id]; !ok && n > 0 {
				return fmt.Errorf("tile %q tenant %d: %d queued messages but no tally", t.eng.Name(), id, n)
			}
		}
	}
	return nil
}

// Occupancy returns how many messages the RMT tile currently holds:
// queued, inside pipeline stages, or staged for emission.
func (t *RMTTile) Occupancy() int {
	return t.queue.Len() + t.pipe.Occupancy() + t.outLen()
}

// AuditConservation checks the RMT tile's custody ledger: every message
// pulled from the fabric either left (emitted onward, dropped by the
// program or the queue, unrouted, refused) or is still resident in the
// queue, a pipeline stage, or the outbox. It returns the first violation
// found.
func (t *RMTTile) AuditConservation() error {
	if err := t.queue.Audit(); err != nil {
		return fmt.Errorf("rmt tile %d: %w", t.cfg.Addr, err)
	}
	s := &t.stats
	out := s.Emitted + s.Dropped + s.Unrouted + s.QueueDropped + s.Refused
	occ := uint64(t.Occupancy())
	if s.Ejected != out+occ {
		return fmt.Errorf(
			"rmt tile %d: custody leak: ejected %d != out %d (emitted %d + dropped %d + unrouted %d + queueDropped %d + refused %d) + resident %d",
			t.cfg.Addr, s.Ejected, out, s.Emitted, s.Dropped, s.Unrouted,
			s.QueueDropped, s.Refused, occ)
	}
	return nil
}
