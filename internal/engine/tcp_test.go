package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

func largeTCPSend(id uint64, payload int) *packet.Message {
	return &packet.Message{
		ID: id,
		Pkt: packet.NewPacket(payload,
			&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 1}, Src: packet.MAC{2, 0, 0, 0, 0, 2}, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, ID: 100, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}},
			&packet.TCP{SrcPort: 80, DstPort: 5000, Seq: 1000, Ack: 7, Flags: packet.TCPFlagACK | packet.TCPFlagPSH, Window: 65535},
		),
	}
}

func TestLSOSegmentsLargeSend(t *testing.T) {
	e := NewLSOEngine(LSOConfig{MSS: 1460, BytesPerCycle: 64, SetupCycles: 10})
	msg := largeTCPSend(1, 4000) // 3 segments: 1460+1460+1080
	outs := e.Process(&Ctx{Now: 5}, msg)
	if len(outs) != 3 {
		t.Fatalf("segments = %d, want 3", len(outs))
	}
	wantSeq := uint32(1000)
	totalPayload := 0
	for i, o := range outs {
		tcp := o.Msg.Pkt.Layer(packet.LayerTypeTCP).(*packet.TCP)
		if tcp.Seq != wantSeq {
			t.Errorf("segment %d seq = %d, want %d", i, tcp.Seq, wantSeq)
		}
		wantSeq += uint32(o.Msg.Pkt.PayloadLen)
		totalPayload += o.Msg.Pkt.PayloadLen
		if o.Msg.Pkt.PayloadLen > 1460 {
			t.Errorf("segment %d payload %d exceeds MSS", i, o.Msg.Pkt.PayloadLen)
		}
		// PSH only on the final segment.
		isLast := i == len(outs)-1
		if (tcp.Flags&packet.TCPFlagPSH != 0) != isLast {
			t.Errorf("segment %d PSH flag wrong", i)
		}
		// IP header checksums must be valid.
		ip := o.Msg.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
		if ip.Checksum != ip.ComputeChecksum() {
			t.Errorf("segment %d IP checksum invalid", i)
		}
	}
	if totalPayload != 4000 {
		t.Errorf("segments carry %d bytes, want 4000", totalPayload)
	}
	sends, segs := e.Counts()
	if sends != 1 || segs != 3 {
		t.Errorf("counts = %d/%d", sends, segs)
	}
}

func TestLSOPassThroughSmallAndNonTCP(t *testing.T) {
	e := NewLSOEngine(LSOConfig{MSS: 1460, BytesPerCycle: 64})
	small := largeTCPSend(1, 500)
	if outs := e.Process(&Ctx{}, small); len(outs) != 1 || outs[0].Msg != small {
		t.Error("small TCP send should pass through")
	}
	udp := kvsGet(2, 1, 1)
	if outs := e.Process(&Ctx{}, udp); len(outs) != 1 || outs[0].Msg != udp {
		t.Error("non-TCP should pass through")
	}
}

func TestLSOSegmentsInheritChain(t *testing.T) {
	e := NewLSOEngine(LSOConfig{MSS: 1000, BytesPerCycle: 64})
	msg := largeTCPSend(1, 2000)
	msg.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 7, Slack: 5}, {Engine: 9, Slack: 6}}})
	outs := e.Process(&Ctx{}, msg)
	if len(outs) != 2 {
		t.Fatalf("segments = %d", len(outs))
	}
	for i, o := range outs {
		c := o.Msg.Chain()
		if c == nil || len(c.Hops) != 2 || c.Hops[0].Engine != 7 {
			t.Errorf("segment %d chain = %+v", i, c)
		}
	}
}

func TestLSOSegmentsTraverseFabric(t *testing.T) {
	// End-to-end: one big send through an LSO tile arrives as N segments.
	r := newRig(3, 1)
	lso := NewLSOEngine(LSOConfig{MSS: 1000, BytesPerCycle: 64})
	collector := NewCollectorEngine("sink", 1, nil)
	r.place(1, 0, 0, lso)
	r.place(2, 2, 0, collector)
	r.routes.SetDefault(2)
	msg := largeTCPSend(1, 3000)
	msg.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 1}, {Engine: 2}}})
	r.mesh.Inject(r.mesh.NodeAt(1, 0), r.mesh.NodeAt(0, 0), msg)
	if !r.k.RunUntil(func() bool { return collector.Count() == 3 }, 2000) {
		t.Fatalf("delivered %d/3 segments", collector.Count())
	}
}

func TestLSOValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"mss":  func() { NewLSOEngine(LSOConfig{MSS: 0, BytesPerCycle: 1}) },
		"rate": func() { NewLSOEngine(LSOConfig{MSS: 1, BytesPerCycle: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRateLimiterShapesTenant(t *testing.T) {
	// Tenant 1 limited to 8 Gbps at 500 MHz = 16 bits/cycle. Full-rate
	// arrivals of 1000B (8000-bit) messages should drain at one per ~500
	// cycles once the burst is spent.
	r := newRig(3, 1)
	rl := NewRateLimiterEngine(RateLimiterConfig{FreqHz: 500e6, BurstBytes: 2000})
	rl.SetLimit(1, 8)
	collector := NewCollectorEngine("sink", 1, nil)
	r.place(1, 0, 0, rl)
	r.place(2, 2, 0, collector)
	r.routes.SetDefault(2)

	sent := 0
	src := r.mesh.NodeAt(1, 0)
	dst := r.mesh.NodeAt(0, 0)
	r.k.Register(sim.TickFunc(func(uint64) {
		if sent < 40 && r.mesh.CanInject(src, dst) {
			m := &packet.Message{ID: uint64(sent), Tenant: 1, Pkt: &packet.Packet{PayloadLen: 1000}}
			m.Pkt.Layers = []packet.Layer{&packet.Ethernet{EtherType: 0x9999}}
			m.Pkt.Serialize()
			m.Pkt.PayloadLen = 986
			m.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 1}, {Engine: 2}}})
			r.mesh.Inject(src, dst, m)
			sent++
		}
	}))
	r.k.Run(10_000)
	// 10k cycles at 16 bits/cycle = 160k bits = 20 messages plus the
	// initial 2 KB burst (2 messages): ~22.
	got := collector.Count()
	if got < 18 || got > 26 {
		t.Errorf("shaped tenant delivered %d messages in 10k cycles, want ~22", got)
	}
	conformed, delayed := rl.Counts()
	if delayed == 0 {
		t.Error("no messages were delayed despite overload")
	}
	// Classification happens at service start, so the message in service
	// at the end of the window is counted but not yet delivered.
	if total := conformed + delayed; total < got || total > got+1 {
		t.Errorf("counts %d+%d vs delivered %d", conformed, delayed, got)
	}
}

func TestRateLimiterUnlimitedTenantPasses(t *testing.T) {
	rl := NewRateLimiterEngine(RateLimiterConfig{FreqHz: 500e6})
	m := kvsGet(1, 7, 1)
	if svc := rl.ServiceCycles(m); svc != 1 {
		t.Errorf("unlimited tenant service = %d", svc)
	}
	if svc := rl.ServiceCyclesAt(&Ctx{Now: 1}, m); svc != 1 {
		t.Errorf("unlimited tenant timed service = %d", svc)
	}
	outs := rl.Process(&Ctx{Now: 1}, m)
	if len(outs) != 1 {
		t.Fatal("unlimited tenant blocked")
	}
	conformed, _ := rl.Counts()
	if conformed != 1 {
		t.Error("conformed not counted")
	}
}

func TestRateLimiterSetAndClearLimit(t *testing.T) {
	rl := NewRateLimiterEngine(RateLimiterConfig{FreqHz: 500e6, BurstBytes: 100})
	rl.SetLimit(3, 1)
	m := kvsGet(1, 3, 1)
	rl.ServiceCyclesAt(&Ctx{Now: 0}, m)
	rl.Process(&Ctx{Now: 0}, m) // burns the 100-byte burst
	if svc := rl.ServiceCycles(kvsGet(2, 3, 1)); svc <= 1 {
		t.Errorf("limited tenant after burst service = %d, want > 1", svc)
	}
	rl.SetLimit(3, 0) // clear
	if svc := rl.ServiceCycles(kvsGet(3, 3, 1)); svc != 1 {
		t.Errorf("cleared tenant service = %d", svc)
	}
}

var _ = noc.NodeID(0) // rig helpers already import noc
