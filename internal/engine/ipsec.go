package engine

import (
	"math"

	"github.com/panic-nic/panic/internal/packet"
)

// IPSecConfig parameterizes the IPSec engine.
type IPSecConfig struct {
	// BytesPerCycle is the crypto datapath width (e.g. 4 bytes/cycle at
	// 500 MHz = 16 Gbps — deliberately below line rate, which is exactly
	// the kind of offload the paper says RMT pipelines cannot host).
	BytesPerCycle float64
	// SetupCycles is the fixed per-packet cost (SA lookup, IV handling).
	SetupCycles uint64
}

// IPSecEngine decrypts ESP packets and encrypts outbound packets. The
// paper's running example (§2.2, §3.2): only WAN traffic crosses it, and
// decrypted packets must make a second RMT pass because their chains could
// not be computed before decryption.
//
// Crypto itself is simulated (see DESIGN.md): an encrypted message carries
// its plaintext in Message.Inner, and "decrypting" swaps it in after the
// modeled per-byte latency. What the paper's claims depend on — service
// time, chaining, reinjection — is preserved exactly.
type IPSecEngine struct {
	cfg IPSecConfig

	decrypted, encrypted uint64
}

// ESPOverheadBytes is the added wire size of ESP tunneling in this model:
// 20 (outer IPv4) + 8 (ESP header) + 12 (ICV/trailer).
const ESPOverheadBytes = 40

// NewIPSecEngine builds the engine.
func NewIPSecEngine(cfg IPSecConfig) *IPSecEngine {
	requirePositive("IPSec bytes/cycle", cfg.BytesPerCycle)
	return &IPSecEngine{cfg: cfg}
}

// Name implements Engine.
func (e *IPSecEngine) Name() string { return "ipsec" }

// ServiceCycles implements Engine: per-byte crypto plus setup.
func (e *IPSecEngine) ServiceCycles(msg *packet.Message) uint64 {
	return e.cfg.SetupCycles + uint64(math.Ceil(float64(msg.WireLen())/e.cfg.BytesPerCycle))
}

// Process implements Engine. ESP packets are decrypted and continue along
// their chain (normally back to the RMT pipeline, flagged as reinjected so
// the program computes the remainder chain, §3.1.2). Non-ESP packets are
// encrypted for the WAN.
func (e *IPSecEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	if msg.Pkt.Has(packet.LayerTypeESP) {
		e.decrypt(msg)
	} else {
		e.encrypt(msg)
	}
	return []Out{{Msg: msg}}
}

func (e *IPSecEngine) decrypt(msg *packet.Message) {
	e.decrypted++
	chain := msg.Chain()
	if msg.Inner != nil {
		inner := msg.Inner
		msg.Inner = nil
		msg.Pkt = inner
	} else {
		// No stashed plaintext (synthetic traffic): strip the ESP layer
		// and keep the ciphertext length as payload.
		layers := make([]packet.Layer, 0, len(msg.Pkt.Layers))
		for _, l := range msg.Pkt.Layers {
			if l.LayerType() != packet.LayerTypeESP {
				layers = append(layers, l)
			}
		}
		if ip, ok := msg.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok {
			ip.Protocol = packet.ProtoUDP
		}
		msg.Pkt.Layers = layers
		if msg.Pkt.PayloadLen >= ESPOverheadBytes-20-8 {
			msg.Pkt.PayloadLen -= ESPOverheadBytes - 20 - 8
		}
		msg.Pkt.Serialize()
	}
	// Re-attach the chain (cursor preserved) and mark the second pass.
	if chain != nil {
		chain.Flags |= packet.ChainFlagReinjected
		reattach := &packet.Chain{Cursor: chain.Cursor, Flags: chain.Flags, Hops: chain.Hops}
		if msg.Chain() == nil {
			msg.InsertChain(reattach)
		} else {
			*msg.Chain() = *reattach
			msg.Pkt.Serialize()
		}
	}
}

func (e *IPSecEngine) encrypt(msg *packet.Message) {
	e.encrypted++
	chain := msg.Chain()
	if chain != nil {
		msg.StripChain()
	}
	inner := msg.Pkt
	var outerSrc, outerDst packet.IP4
	if ip, ok := inner.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok {
		outerSrc, outerDst = ip.Src, ip.Dst
	}
	eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
	if e0, ok := inner.Layers[0].(*packet.Ethernet); ok {
		eth.Dst, eth.Src = e0.Dst, e0.Src
	}
	ciphertext := inner.WireLen() - eth.HeaderLen() + (ESPOverheadBytes - 20 - 8)
	msg.Inner = inner
	msg.Pkt = packet.NewPacket(ciphertext,
		&eth,
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoESP, Src: outerSrc, Dst: outerDst},
		&packet.ESP{SPI: 1, Seq: uint32(msg.ID)},
	)
	if chain != nil {
		msg.InsertChain(&packet.Chain{Cursor: chain.Cursor, Flags: chain.Flags, Hops: chain.Hops})
	}
}

// Counts returns (decrypted, encrypted).
func (e *IPSecEngine) Counts() (decrypted, encrypted uint64) {
	return e.decrypted, e.encrypted
}
