package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// TestEngineNames pins every engine's identity string (they appear in
// traces and reports).
func TestEngineNames(t *testing.T) {
	cases := map[string]Engine{
		"eth3":      NewEthernetMAC(MACConfig{Port: 3, LineRateGbps: 10, FreqHz: 1e9}, nil, nil),
		"dma":       NewDMAEngine(DMAConfig{PCIeGbps: 1, FreqHz: 1e9}, nil, nil),
		"txdma":     NewTxDMAEngine(1, 1e9, nil),
		"pcie":      NewPCIeEngine(PCIeConfig{CoalesceCount: 1}),
		"ipsec":     NewIPSecEngine(IPSecConfig{BytesPerCycle: 1}),
		"kvscache":  NewKVSCacheEngine(KVSCacheConfig{Capacity: 1, RDMAAddr: 1}),
		"rdma":      NewRDMAEngine(RDMAConfig{DMAAddr: 1}),
		"tcp-lso":   NewLSOEngine(LSOConfig{MSS: 1, BytesPerCycle: 1}),
		"ratelimit": NewRateLimiterEngine(RateLimiterConfig{FreqHz: 1e9}),
		"compress":  NewCompressionEngine(1, 0.5),
		"checksum":  NewChecksumEngine(1),
		"regex":     NewRegexEngine(1, 0.1),
		"core0":     NewCPUCoreEngine("core0", 1, 0, nil),
		"sink":      NewCollectorEngine("sink", 1, nil),
	}
	for want, eng := range cases {
		if got := eng.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestDMAWriteAck(t *testing.T) {
	dma := NewDMAEngine(DMAConfig{PCIeGbps: 128, FreqHz: 500e6, BaseLatencyCycles: 20}, nil, nil)
	write := &packet.Message{Pkt: packet.NewPacket(0,
		&packet.Ethernet{EtherType: packet.EtherTypeDMA},
		&packet.DMA{Op: packet.DMAWrite, Requester: 5, Len: 512, HostAddr: 9},
	)}
	outs := dma.Process(&Ctx{Now: 1, RNG: sim.NewRNG(1)}, write)
	if len(outs) != 1 || outs[0].To != 5 {
		t.Fatalf("write ack outs = %+v", outs)
	}
	d := outs[0].Msg.Pkt.Layer(packet.LayerTypeDMA).(*packet.DMA)
	if d.Op != packet.DMAWriteCompl || d.HostAddr != 9 {
		t.Errorf("ack = %+v", d)
	}
	// Writes without a requester complete silently.
	anon2 := &packet.Message{Pkt: packet.NewPacket(0,
		&packet.Ethernet{EtherType: packet.EtherTypeDMA},
		&packet.DMA{Op: packet.DMAWrite, Len: 64},
	)}
	if outs := dma.Process(&Ctx{RNG: sim.NewRNG(1)}, anon2); len(outs) != 0 {
		t.Errorf("anonymous write produced outs: %+v", outs)
	}
	// Stray completions addressed to the DMA engine are consumed.
	stray := &packet.Message{Pkt: packet.NewPacket(0,
		&packet.Ethernet{EtherType: packet.EtherTypeDMA},
		&packet.DMA{Op: packet.DMAReadCompl, Len: 64},
	)}
	if outs := dma.Process(&Ctx{RNG: sim.NewRNG(1)}, stray); len(outs) != 0 {
		t.Errorf("stray completion produced outs: %+v", outs)
	}
	reads, writes, _ := dma.Counts()
	if reads != 0 || writes != 2 {
		t.Errorf("counts = %d/%d", reads, writes)
	}
}

func TestMACBitCounters(t *testing.T) {
	src := &queueSource{msgs: []*packet.Message{{Pkt: &packet.Packet{PayloadLen: 64}}}}
	var got *packet.Message
	mac := NewEthernetMAC(MACConfig{Port: 0, LineRateGbps: 100, FreqHz: 500e6}, src,
		SinkFunc(func(m *packet.Message, _ uint64) { got = m }))
	ctx := &Ctx{}
	var outs []Out
	for c := uint64(0); c < 20 && len(outs) == 0; c++ {
		ctx.Now = c
		outs = mac.Generate(ctx) // tokens accumulate per cycle
	}
	if len(outs) != 1 {
		t.Fatal("no rx")
	}
	if mac.RxBits() != (64+packet.WireOverheadBytes)*8 {
		t.Errorf("RxBits = %d", mac.RxBits())
	}
	mac.Process(ctx, outs[0].Msg)
	if mac.TxBits() == 0 || got == nil {
		t.Error("tx accounting failed")
	}
}

func TestSinkHelpers(t *testing.T) {
	NullSink{}.Deliver(nil, 0) // must not panic
	called := false
	SinkFunc(func(*packet.Message, uint64) { called = true }).Deliver(nil, 1)
	if !called {
		t.Error("SinkFunc not invoked")
	}
}

func TestByteRateProcessedCounter(t *testing.T) {
	e := NewByteRateEngine("x", 4, 0, nil)
	e.Process(&Ctx{}, &packet.Message{Pkt: &packet.Packet{PayloadLen: 8}})
	if e.Processed() != 1 {
		t.Error("Processed not counted")
	}
}

func TestCollectorAndCPUCounters(t *testing.T) {
	c := NewCollectorEngine("c", 0, nil) // zero service coerced to 1
	if c.ServiceCycles(nil) != 1 {
		t.Error("zero service not coerced")
	}
	cpu := NewCPUCoreEngine("p", 0, 0, nil) // zero per-packet coerced
	if cpu.ServiceCycles(&packet.Message{Pkt: &packet.Packet{}}) != 1 {
		t.Error("zero per-packet not coerced")
	}
	cpu.Process(&Ctx{}, &packet.Message{Pkt: &packet.Packet{}})
	if cpu.Processed() != 1 {
		t.Error("cpu Processed")
	}
}
