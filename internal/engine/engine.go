// Package engine implements PANIC's offload-engine tiles (Figure 3a of the
// paper): each tile couples an offload's compute model with the local
// pieces of the logical switch and logical scheduler — a lightweight lookup
// table for chain steering, a slack-ordered scheduling queue, and the
// router attachment to the on-chip network.
//
// The package provides the tile framework plus the offload library the
// paper discusses: Ethernet MACs, DMA and PCIe engines, IPSec,
// an on-NIC key-value cache, RDMA, compression, checksum, regex, and
// embedded-CPU engines.
//
// Every tile is an instrumentation point for internal/trace: with a trace
// buffer in its TileConfig it emits spans for queue enqueue/dequeue (with
// depth and slack), service occupancy, fabric injection, and drops; the
// RMT tile additionally reconstructs per-stage pipeline spans. A nil
// buffer costs one branch and zero allocations per point — the ingress MAC
// stamps TraceIDs unconditionally so enabling tracing never perturbs the
// simulation.
package engine

import (
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// Ctx is passed to engine callbacks.
type Ctx struct {
	// Now is the current cycle.
	Now uint64
	// RNG is the tile's private random stream (for variable-latency
	// models).
	RNG *sim.RNG
	// Addr is the tile's logical address.
	Addr packet.Addr
}

// Out is a message an engine wants to send.
type Out struct {
	Msg *packet.Message
	// To is an explicit destination engine; AddrInvalid means "follow
	// the message's chain, falling back to the default route" (§3.1.2:
	// a default route back to the heavyweight RMT pipeline).
	To packet.Addr
	// Delay defers the send by the given number of cycles (e.g. a DMA
	// completion arriving after host-memory latency).
	Delay uint64
}

// Engine is the offload compute model plugged into a Tile. Engines are
// self-contained (§3.1.1): the framework imposes no line-rate constraint.
type Engine interface {
	// Name identifies the engine in stats and traces.
	Name() string
	// ServiceCycles returns how long the engine occupies itself with the
	// message (its service time). Zero-cost engines still take one cycle.
	ServiceCycles(msg *packet.Message) uint64
	// Process runs when service completes. It may transform msg, emit it
	// onward, emit new messages, or consume it (return no Out carrying
	// it).
	Process(ctx *Ctx, msg *packet.Message) []Out
}

// Generator is implemented by engines that create messages spontaneously
// (the Ethernet MAC RX path). Generate is called once per cycle.
type Generator interface {
	Generate(ctx *Ctx) []Out
}

// TimedEngine is an optional refinement of Engine for service times that
// depend on the current cycle (e.g. token buckets). When implemented, the
// tile calls ServiceCyclesAt instead of ServiceCycles.
type TimedEngine interface {
	Engine
	ServiceCyclesAt(ctx *Ctx, msg *packet.Message) uint64
}

// Source supplies packets to an ingress engine. Poll returns a message
// whose arrival time is at or before now, or nil. Implementations pace
// arrivals (workload generators live in internal/workload).
type Source interface {
	Poll(now uint64) *packet.Message
}

// ArrivalSource is an optional refinement of Source for generators that
// know when their next packet becomes available, enabling idle-cycle
// fast-forward. NextArrival returns the earliest cycle at which Poll may
// return non-nil; ok == false means the source is exhausted and will never
// produce again. The returned cycle must exactly match the first cycle at
// which Poll succeeds: skipped polling cycles must be provable no-ops.
type ArrivalSource interface {
	Source
	NextArrival(now uint64) (cycle uint64, ok bool)
}

// IdleReporter is an optional refinement of Engine with the same contract
// as sim.Quiescer.NextWork, scoped to the engine's private state: the tile
// combines it with its own queue and service-loop occupancy to answer the
// kernel's quiescence query. Engines that hold no hidden time-dependent
// state (most of the library) need not implement it; the tile then treats
// the engine as quiescent whenever the tile itself is drained — except for
// Generators, which are assumed always-busy unless they report otherwise.
type IdleReporter interface {
	NextWork(now uint64) (next uint64, idle bool)
}

// Sink receives messages leaving the simulated NIC (host delivery, wire
// transmission). Implementations record latency and throughput.
type Sink interface {
	Deliver(msg *packet.Message, now uint64)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(msg *packet.Message, now uint64)

// Deliver implements Sink.
func (f SinkFunc) Deliver(msg *packet.Message, now uint64) { f(msg, now) }

// NullSink discards messages.
type NullSink struct{}

// Deliver implements Sink.
func (NullSink) Deliver(*packet.Message, uint64) {}
