package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
)

// loopFabric is a single-node fabric stub: everything injected comes
// straight back out of TryEject, so one tile can churn a message through
// its full hot path (eject -> enqueue -> dequeue -> service -> inject)
// forever with no allocations of its own.
type loopFabric struct {
	msg *packet.Message
}

func (f *loopFabric) Nodes() int                         { return 1 }
func (f *loopFabric) CanInject(src, dst noc.NodeID) bool { return f.msg == nil }
func (f *loopFabric) Inject(_, _ noc.NodeID, m *packet.Message) {
	if f.msg != nil {
		panic("loopFabric: inject while occupied")
	}
	f.msg = m
}
func (f *loopFabric) TryEject(noc.NodeID) (*packet.Message, bool) {
	m := f.msg
	f.msg = nil
	return m, m != nil
}
func (f *loopFabric) HasEjectable(noc.NodeID) bool { return f.msg != nil }
func (f *loopFabric) FlitsFor(*packet.Message) int { return 1 }

// echoEngine bounces every message back to its own tile through a reused
// Out slice, so Process itself is allocation-free.
type echoEngine struct {
	outs []Out
}

func (e *echoEngine) Name() string                         { return "echo" }
func (e *echoEngine) ServiceCycles(*packet.Message) uint64 { return 1 }
func (e *echoEngine) Process(_ *Ctx, m *packet.Message) []Out {
	e.outs[0] = Out{Msg: m, To: 1}
	return e.outs
}

// allocTile builds the loopback harness with the given trace buffer and
// primes it past its warm-up allocations (queue heap growth, outbox
// growth) so the steady state is measurable.
func allocTile(buf *trace.Buffer, traceID uint64) (*Tile, *uint64) {
	fab := &loopFabric{}
	routes := NewRouteTable()
	routes.Bind(1, 0)
	cfg := TileConfig{
		Addr: 1, Node: 0, QueueCap: 16, Policy: sched.Backpressure,
		Trace: buf,
	}
	tile := NewTile(cfg, &echoEngine{outs: make([]Out, 1)}, fab, routes, sim.NewRNG(1).Fork())
	msg := &packet.Message{
		ID:      1,
		TraceID: traceID,
		Pkt: packet.NewPacket(64,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP},
			&packet.UDP{SrcPort: 1, DstPort: 2},
		),
	}
	fab.msg = msg
	cycle := new(uint64)
	for ; *cycle < 64; *cycle++ {
		tile.Tick(*cycle)
	}
	return tile, cycle
}

// TestTileHotPathZeroAllocs is the cost-contract guard: with tracing
// disabled — no buffer at all, or a buffer whose sampling filter rejects
// the message — the tile's Tick hot path must not allocate.
func TestTileHotPathZeroAllocs(t *testing.T) {
	cases := []struct {
		name    string
		buf     func() *trace.Buffer
		traceID uint64
	}{
		{"nil-buffer", func() *trace.Buffer { return nil }, 5},
		{"sampled-out", func() *trace.Buffer {
			tr := trace.New(trace.Options{Sample: 2})
			return tr.Buffer("echo")
		}, 5}, // 5 % 2 != 0: Want is false on every instrumented point
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tile, cycle := allocTile(c.buf(), c.traceID)
			allocs := testing.AllocsPerRun(200, func() {
				tile.Tick(*cycle)
				*cycle++
			})
			if allocs != 0 {
				t.Errorf("tracing-disabled hot path allocates %.1f allocs/op, want 0", allocs)
			}
			if tile.Stats().Processed == 0 {
				t.Fatal("harness broken: tile processed nothing")
			}
		})
	}
}

// TestTileTraceSpansEmitted sanity-checks the same harness with sampling
// passing: the instrumented points must actually emit.
func TestTileTraceSpansEmitted(t *testing.T) {
	tr := trace.New(trace.Options{})
	tile, cycle := allocTile(tr.Buffer("echo"), 4)
	for i := 0; i < 32; i++ {
		tile.Tick(*cycle)
		*cycle++
	}
	tr.Commit()
	set := tr.Set()
	if len(set.Spans) == 0 {
		t.Fatal("no spans emitted on the traced loopback path")
	}
	kinds := make(map[trace.Kind]int)
	for _, sp := range set.Spans {
		kinds[sp.Kind]++
	}
	for _, want := range []trace.Kind{trace.KindEnq, trace.KindWait, trace.KindService, trace.KindInject} {
		if kinds[want] == 0 {
			t.Errorf("no %v spans emitted; kinds seen: %v", want, kinds)
		}
	}
}
