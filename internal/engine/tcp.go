package engine

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
)

// LSOConfig parameterizes the TCP segmentation-offload engine.
type LSOConfig struct {
	// MSS is the maximum segment payload in bytes.
	MSS int
	// BytesPerCycle is the segmentation datapath width.
	BytesPerCycle float64
	// SetupCycles is the fixed per-send cost (header template build).
	SetupCycles uint64
}

// LSOEngine is a TCP large-send-offload engine (the "TCP Offload Engines"
// row of the paper's Table 1, in its modern LSO/TSO form): the host hands
// the NIC one large TCP send, and the engine cuts it into MSS-sized wire
// segments with cloned headers and advancing sequence numbers. Each
// segment continues along the original message's chain, so segments can be
// chained through further offloads (checksum, encryption) like any other
// message.
type LSOEngine struct {
	cfg LSOConfig

	sends, segments uint64
}

// NewLSOEngine builds the engine.
func NewLSOEngine(cfg LSOConfig) *LSOEngine {
	if cfg.MSS < 1 {
		panic(fmt.Sprintf("engine: LSO MSS %d", cfg.MSS))
	}
	requirePositive("LSO bytes/cycle", cfg.BytesPerCycle)
	return &LSOEngine{cfg: cfg}
}

// Name implements Engine.
func (e *LSOEngine) Name() string { return "tcp-lso" }

// ServiceCycles implements Engine: the whole send streams through the
// segmentation datapath once.
func (e *LSOEngine) ServiceCycles(msg *packet.Message) uint64 {
	return e.cfg.SetupCycles + uint64(math.Ceil(float64(msg.WireLen())/e.cfg.BytesPerCycle))
}

// Process implements Engine: non-TCP messages and already-small segments
// pass through; large TCP sends are segmented.
func (e *LSOEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	tcpLayer := msg.Pkt.Layer(packet.LayerTypeTCP)
	if tcpLayer == nil || msg.Pkt.PayloadLen <= e.cfg.MSS {
		return []Out{{Msg: msg}}
	}
	e.sends++
	tcp := tcpLayer.(*packet.TCP)
	eth := msg.Pkt.Layer(packet.LayerTypeEthernet).(*packet.Ethernet)
	ip := msg.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	var chain *packet.Chain
	if c := msg.Chain(); c != nil {
		chain = c
	}

	total := msg.Pkt.PayloadLen
	var outs []Out
	seq := tcp.Seq
	for off := 0; off < total; off += e.cfg.MSS {
		size := e.cfg.MSS
		if off+size > total {
			size = total - off
		}
		flags := tcp.Flags &^ packet.TCPFlagPSH
		if off+size == total {
			flags = tcp.Flags // PSH/FIN only on the last segment
		}
		segIP := *ip
		segIP.TotalLen = uint16(20 + 20 + size)
		segIP.ID = ip.ID + uint16(off/e.cfg.MSS)
		segIP.Checksum = segIP.ComputeChecksum()
		seg := &packet.Message{
			ID:      msg.ID,
			TraceID: msg.TraceID,
			Tenant:  msg.Tenant,
			Class:   msg.Class,
			Port:    msg.Port,
			Inject:  msg.Inject,
			Pkt: packet.NewPacket(size,
				&packet.Ethernet{Dst: eth.Dst, Src: eth.Src, EtherType: packet.EtherTypeIPv4},
				&segIP,
				&packet.TCP{SrcPort: tcp.SrcPort, DstPort: tcp.DstPort,
					Seq: seq, Ack: tcp.Ack, Flags: flags, Window: tcp.Window},
			),
		}
		if chain != nil {
			// Each segment inherits the remaining chain so it visits the
			// same downstream offloads.
			hops := make([]packet.Hop, len(chain.Hops))
			copy(hops, chain.Hops)
			seg.InsertChain(&packet.Chain{Cursor: chain.Cursor, Flags: chain.Flags, Hops: hops})
		}
		seq += uint32(size)
		e.segments++
		outs = append(outs, Out{Msg: seg})
	}
	return outs
}

// Counts returns (large sends, segments emitted).
func (e *LSOEngine) Counts() (sends, segments uint64) { return e.sends, e.segments }
