package engine

import (
	"fmt"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
)

// RMTTile is an RMT engine (Figure 3b): a timed match+action pipeline
// attached to the fabric through the same scheduling queue and router
// interface as an offload tile. It accepts one message per cycle and holds
// each for the pipeline latency; when the downstream fabric stalls, the
// whole pipeline stalls.
type RMTTile struct {
	cfg    TileConfig
	pipe   *rmt.Pipeline
	fab    noc.Fabric
	routes *RouteTable
	queue  *sched.Queue
	rank   sched.RankFunc

	// outbox drains from outHead with amortized compaction, mirroring
	// Tile's scheme (a standing backlog must not pay a per-cycle copy).
	outbox  []resolvedOut
	outHead int
	stats   RMTStats

	// Event-driven sleep state, mirroring Tile's: the pipeline advances
	// every cycle it holds messages, so the only sleeps are full idleness
	// and an outbox frozen by fabric backpressure (whose per-cycle stall
	// accrual is captured and applied by SyncTo).
	eventOK       bool
	sleeping      bool
	sleepStall    bool
	syncedThrough uint64
}

// RMTStats are an RMT tile's counters.
type RMTStats struct {
	// Accepted counts messages admitted into the pipeline.
	Accepted uint64
	// Emitted counts messages sent onward into the fabric.
	Emitted uint64
	// Dropped counts program drops plus parse errors.
	Dropped uint64
	// Unrouted counts pipeline outputs whose program built no chain
	// (a program bug; they are discarded and counted).
	Unrouted uint64
	// StallCycles counts cycles the pipeline was frozen by fabric
	// backpressure.
	StallCycles uint64
	// QueueDropped counts messages shed by the scheduling queue.
	QueueDropped uint64
	// Ejected counts messages pulled from the fabric — the tile's only
	// custody entry point (see AuditConservation).
	Ejected uint64
	// Refused counts lossless arrivals a full lossy queue could not admit
	// (every resident also lossless); they are lost, mirroring
	// TileStats.Refused.
	Refused uint64
}

// NewRMTTile builds an RMT engine tile. The rank function defaults to FIFO
// — most traffic reaching the pipeline carries no slack yet.
func NewRMTTile(cfg TileConfig, pipe *rmt.Pipeline, fab noc.Fabric, routes *RouteTable) *RMTTile {
	if cfg.QueueCap < 1 {
		panic(fmt.Sprintf("engine: RMT tile queue capacity %d", cfg.QueueCap))
	}
	if !routes.Has(cfg.Addr) || routes.Lookup(cfg.Addr) != cfg.Node {
		panic("engine: RMT tile address not bound to its node")
	}
	rank := cfg.Rank
	if rank == nil {
		rank = sched.RankFIFO
	}
	return &RMTTile{
		cfg:    cfg,
		pipe:   pipe,
		fab:    fab,
		routes: routes,
		queue:  cfg.newQueue(),
		rank:   rank,
		outbox: make([]resolvedOut, 0, 8),
	}
}

// Name identifies the tile.
func (t *RMTTile) Name() string { return fmt.Sprintf("rmt@%d", t.cfg.Addr) }

// Addr returns the tile's logical address.
func (t *RMTTile) Addr() packet.Addr { return t.cfg.Addr }

// Node returns the tile's fabric node.
func (t *RMTTile) Node() noc.NodeID { return t.cfg.Node }

// Stats returns a copy of the counters.
func (t *RMTTile) Stats() RMTStats { return t.stats }

// Pipeline exposes the wrapped pipeline (for test inspection).
func (t *RMTTile) Pipeline() *rmt.Pipeline { return t.pipe }

// QueueLen returns the scheduling-queue occupancy.
func (t *RMTTile) QueueLen() int { return t.queue.Len() }

// Idle reports whether the tile has no work in flight.
func (t *RMTTile) Idle() bool {
	processed, _, _ := t.pipe.Stats()
	return t.queue.Len() == 0 && t.outLen() == 0 && t.stats.Accepted <= processed
}

// outLen returns the number of undelivered outbox entries.
func (t *RMTTile) outLen() int { return len(t.outbox) - t.outHead }

// compactOutbox reclaims the drained prefix (see Tile.compactOutbox).
func (t *RMTTile) compactOutbox() {
	if t.outHead == len(t.outbox) {
		t.outbox = t.outbox[:0]
		t.outHead = 0
	} else if t.outHead >= 64 {
		t.outbox = t.outbox[:copy(t.outbox, t.outbox[t.outHead:])]
		t.outHead = 0
	}
}

// NextWork implements sim.Quiescer: the RMT tile cannot predict gaps (the
// pipeline advances every cycle it holds a message), so it is either busy
// this cycle or fully idle. Pending fabric arrivals are vetoed by the
// fabric's own NextWork.
func (t *RMTTile) NextWork(now uint64) (uint64, bool) {
	if t.Idle() {
		return 0, true
	}
	return now, false
}

// EnableEventSleep lets EndCycle return real sleep wakes; the builder
// calls it only when the fabric pokes the tile about arrivals.
func (t *RMTTile) EnableEventSleep() { t.eventOK = true }

// EndCycle implements sim.EventAware.
func (t *RMTTile) EndCycle(cycle uint64) uint64 {
	if t.eventOK {
		if w := t.nextWake(cycle); w > cycle+1 {
			t.sleeping = true
			t.sleepStall = t.outLen() > 0
			t.syncedThrough = cycle + 1
			return w
		}
	}
	return cycle + 1
}

// nextWake: a blocked outbox freezes the whole pipeline, so the tile can
// sleep until the fabric credit pokes it, deferring one stall per cycle;
// anything else in flight advances every cycle.
func (t *RMTTile) nextWake(cycle uint64) uint64 {
	if t.outLen() > 0 {
		if t.fab.CanInject(t.cfg.Node, t.outbox[t.outHead].dst) {
			return cycle + 1
		}
	} else if !t.Idle() {
		return cycle + 1
	}
	if t.fab.HasEjectable(t.cfg.Node) {
		return cycle + 1
	}
	return sim.WakeNever
}

// SyncTo implements sim.EventAware: deferred stall cycles are applied
// through the given cycle.
func (t *RMTTile) SyncTo(cycle uint64) {
	if !t.sleeping || cycle+1 <= t.syncedThrough {
		return
	}
	if t.sleepStall {
		t.stats.StallCycles += cycle + 1 - t.syncedThrough
	}
	t.syncedThrough = cycle + 1
}

// wakeSync ends a sleep at the start of a live tick.
func (t *RMTTile) wakeSync(cycle uint64) {
	t.SyncTo(cycle - 1)
	t.sleeping = false
}

// Tick implements sim.Ticker.
func (t *RMTTile) Tick(cycle uint64) {
	if t.sleeping {
		t.wakeSync(cycle)
	}
	// 1. Drain the outbox; a blocked outbox freezes the pipeline below.
	for t.outHead < len(t.outbox) {
		o := t.outbox[t.outHead]
		if !t.fab.CanInject(t.cfg.Node, o.dst) {
			break
		}
		t.fab.Inject(t.cfg.Node, o.dst, o.msg)
		if t.cfg.Trace.Want(o.msg.TraceID) {
			t.cfg.Trace.Emit(trace.Span{
				Msg: o.msg.TraceID, Kind: trace.KindInject,
				LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
				Start: cycle, End: cycle,
				A: uint64(o.dst), B: uint64(t.fab.FlitsFor(o.msg)),
				Tenant: o.msg.Tenant,
			})
		}
		t.outbox[t.outHead] = resolvedOut{}
		t.outHead++
		t.stats.Emitted++
	}
	t.compactOutbox()

	// 2. Advance the pipeline unless backpressured.
	if t.outLen() == 0 {
		if res, ok := t.pipe.Tick(); ok {
			t.emitRMT(res, cycle)
			t.route(res.Msg)
		} else if res.Msg != nil && res.Drop {
			t.emitRMT(res, cycle)
			if t.cfg.Trace.Want(res.Msg.TraceID) {
				t.cfg.Trace.Emit(trace.Span{
					Msg: res.Msg.TraceID, Kind: trace.KindDrop,
					LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
					Start: cycle, End: cycle, A: trace.DropRMT,
					Tenant: res.Msg.Tenant,
				})
			}
		}
		// 3. Admit one message per cycle.
		if t.pipe.CanAccept() {
			depth := 0
			if t.cfg.Trace != nil {
				depth = t.queue.Len()
			}
			if msg, ok := t.queue.Pop(); ok {
				if t.cfg.Trace.Want(msg.TraceID) {
					t.cfg.Trace.Emit(trace.Span{
						Msg: msg.TraceID, Kind: trace.KindWait,
						LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
						Start: msg.EnqueuedAt, End: cycle,
						A: uint64(depth), B: uint64(chainSlack(msg, t.cfg.Addr)),
						Tenant: msg.Tenant,
					})
				}
				t.pipe.Accept(msg, cycle)
				t.stats.Accepted++
			}
		}
	} else {
		t.stats.StallCycles++
	}
	_, dropped, _ := t.pipe.Stats() // parse errors are counted as drops
	t.stats.Dropped = dropped

	// 4. Accept arrivals from the fabric.
	for {
		if t.queue.Full() && t.cfg.Policy == sched.Backpressure {
			break
		}
		msg, ok := t.fab.TryEject(t.cfg.Node)
		if !ok {
			break
		}
		t.stats.Ejected++
		slack := uint32(0)
		if c := msg.Chain(); c != nil {
			if hop, hok := c.Current(); hok && hop.Engine == t.cfg.Addr {
				slack = hop.Slack
			}
		}
		msg.EnqueuedAt = cycle
		if t.cfg.TraceVisits {
			msg.Trace = append(msg.Trace, packet.Visit{Engine: t.cfg.Addr, Enqueued: cycle})
		}
		rank := t.rank(msg, slack, cycle)
		res := t.queue.Push(msg, rank)
		if !res.Accepted {
			t.stats.Refused++
			continue
		}
		if res.Accepted && res.Dropped != msg && t.cfg.Trace.Want(msg.TraceID) {
			t.cfg.Trace.Emit(trace.Span{
				Msg: msg.TraceID, Kind: trace.KindEnq,
				LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
				Start: cycle, End: cycle,
				A: rank, B: uint64(t.queue.Len()),
				Tenant: msg.Tenant,
			})
		}
		if res.Dropped != nil {
			t.stats.QueueDropped++
			if t.cfg.Trace.Want(res.Dropped.TraceID) {
				t.cfg.Trace.Emit(trace.Span{
					Msg: res.Dropped.TraceID, Kind: trace.KindDrop,
					LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
					Start: cycle, End: cycle, A: trace.DropQueueShed,
					Tenant: res.Dropped.Tenant,
				})
			}
		}
	}
}

// emitRMT synthesizes the pipeline-phase spans for a message exiting the
// RMT pipeline at cycle. The timed pipeline is a shift register, so the
// phase boundaries are reconstructed from the accept cycle (res.Enq) and
// the fixed phase lengths; an exit later than Enq + Latency means fabric
// backpressure froze the pipeline, which becomes an explicit stall span.
func (t *RMTTile) emitRMT(res rmt.Result, cycle uint64) {
	if res.Msg == nil || !t.cfg.Trace.Want(res.Msg.TraceID) {
		return
	}
	id := res.Msg.TraceID
	tenant := res.Msg.Tenant
	loc := uint32(t.cfg.Addr)
	pc := uint64(t.pipe.ParserCycles())
	dc := uint64(t.pipe.DeparserCycles())
	lat := uint64(t.pipe.Latency())
	stages := lat - pc - dc
	enq := res.Enq
	var hit uint64
	if res.CacheHit {
		hit = 1
	}
	t.cfg.Trace.Emit(trace.Span{
		Msg: id, Kind: trace.KindRMTParse, LocKind: trace.LocEngine, Loc: loc,
		Start: enq, End: enq + pc, A: hit, Tenant: tenant,
	})
	for i := uint64(0); i < stages; i++ {
		t.cfg.Trace.Emit(trace.Span{
			Msg: id, Kind: trace.KindRMTStage, LocKind: trace.LocEngine, Loc: loc,
			Start: enq + pc + i, End: enq + pc + i + 1, A: i, Tenant: tenant,
		})
	}
	t.cfg.Trace.Emit(trace.Span{
		Msg: id, Kind: trace.KindRMTDeparse, LocKind: trace.LocEngine, Loc: loc,
		Start: enq + pc + stages, End: enq + lat, Tenant: tenant,
	})
	if cycle > enq+lat {
		t.cfg.Trace.Emit(trace.Span{
			Msg: id, Kind: trace.KindRMTStall, LocKind: trace.LocEngine, Loc: loc,
			Start: enq + lat, End: cycle, Tenant: tenant,
		})
	}
}

// route forwards a pipeline output toward its chain's current hop. If the
// chain's current hop is this RMT tile itself (the pipeline listed itself
// to regenerate a chain remainder later, §3.1.2), the cursor advances past
// it first.
func (t *RMTTile) route(msg *packet.Message) {
	c := msg.Chain()
	if c == nil {
		t.stats.Unrouted++
		return
	}
	hop, ok := c.Current()
	if ok && hop.Engine == t.cfg.Addr {
		hop, ok = c.Advance()
		msg.Pkt.Serialize()
	}
	if !ok {
		t.stats.Unrouted++
		return
	}
	t.outbox = append(t.outbox, resolvedOut{msg: msg, dst: t.routes.Lookup(hop.Engine)})
}
