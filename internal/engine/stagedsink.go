package engine

import (
	"github.com/panic-nic/panic/internal/packet"
)

// StagedSink decouples a producing tile from a shared Sink so tiles can
// Eval in parallel: Deliver calls made during Eval are buffered privately
// and flushed to the wrapped target during the kernel's Commit phase.
//
// Determinism: give each producing tile its OWN StagedSink and register it
// with the kernel immediately after that tile. Commit runs in registration
// order, so the shared target observes deliveries in exactly the order a
// sequential kernel would have produced them — the flush order IS the tick
// order. Two tiles sharing one StagedSink would race on the buffer; two
// StagedSinks registered out of tile order would reorder deliveries.
//
// Timestamps pass through untouched: a producer delivering with a future
// timestamp (e.g. DMA host-latency completions) reaches the target with
// that same timestamp.
type StagedSink struct {
	target Sink
	buf    []stagedDelivery
}

type stagedDelivery struct {
	msg *packet.Message
	now uint64
}

// NewStagedSink wraps target. The caller must register the result with the
// kernel (it implements sim.Committer) adjacent to its producing tile.
func NewStagedSink(target Sink) *StagedSink {
	return &StagedSink{target: target, buf: make([]stagedDelivery, 0, 8)}
}

// Deliver implements Sink: the delivery is buffered until Commit.
func (s *StagedSink) Deliver(msg *packet.Message, now uint64) {
	s.buf = append(s.buf, stagedDelivery{msg: msg, now: now})
}

// Commit implements sim.Committer: buffered deliveries reach the target in
// arrival order.
func (s *StagedSink) Commit() {
	for i := range s.buf {
		s.target.Deliver(s.buf[i].msg, s.buf[i].now)
		s.buf[i].msg = nil
	}
	s.buf = s.buf[:0]
}
