package engine

import (
	"sync/atomic"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// StagedSink decouples a producing tile from a shared Sink so tiles can
// Eval in parallel: Deliver calls made during Eval are buffered privately
// and flushed to the wrapped target during the kernel's Commit phase.
//
// Determinism: give each producing tile its OWN StagedSink and register it
// with the kernel immediately after that tile. Commit runs in registration
// order, so the shared target observes deliveries in exactly the order a
// sequential kernel would have produced them — the flush order IS the tick
// order. Two tiles sharing one StagedSink would race on the buffer; two
// StagedSinks registered out of tile order would reorder deliveries.
//
// Timestamps pass through untouched: a producer delivering with a future
// timestamp (e.g. DMA host-latency completions) reaches the target with
// that same timestamp.
type StagedSink struct {
	target Sink
	buf    []stagedDelivery
	// dirty points at ownDirty until the kernel redirects it into its
	// contiguous flag arena (sim.DirtyRedirector).
	dirty    *atomic.Bool
	ownDirty atomic.Bool
	wake     sim.Poker
}

type stagedDelivery struct {
	msg *packet.Message
	now uint64
}

// NewStagedSink wraps target. The caller must register the result with the
// kernel (it implements sim.Committer) adjacent to its producing tile.
func NewStagedSink(target Sink) *StagedSink {
	s := &StagedSink{target: target, buf: make([]stagedDelivery, 0, 8)}
	s.dirty = &s.ownDirty
	return s
}

// SetWaker wires the poker of the tile whose engine the wrapped target
// feeds. Flushing a delivery at Commit mutates that engine's input after
// its EndCycle already ran, so without the poke a sleeping consumer would
// miss the work; Commit fires it whenever anything flushed.
func (s *StagedSink) SetWaker(p sim.Poker) { s.wake = p }

// Deliver implements Sink: the delivery is buffered until Commit.
func (s *StagedSink) Deliver(msg *packet.Message, now uint64) {
	s.buf = append(s.buf, stagedDelivery{msg: msg, now: now})
	if !s.dirty.Load() {
		s.dirty.Store(true)
	}
}

// Commit implements sim.Committer: buffered deliveries reach the target in
// arrival order.
func (s *StagedSink) Commit() {
	if len(s.buf) == 0 {
		return
	}
	s.wake.Poke()
	for i := range s.buf {
		s.target.Deliver(s.buf[i].msg, s.buf[i].now)
		s.buf[i].msg = nil
	}
	s.buf = s.buf[:0]
}

// DirtyFlag implements sim.DirtyCommitter.
func (s *StagedSink) DirtyFlag() *atomic.Bool { return s.dirty }

// RedirectDirty implements sim.DirtyRedirector.
func (s *StagedSink) RedirectDirty(p *atomic.Bool) {
	p.Store(s.dirty.Load())
	s.dirty = p
}
