package engine

import (
	"github.com/panic-nic/panic/internal/packet"
)

// KVSCacheConfig parameterizes the on-NIC key-value cache engine.
type KVSCacheConfig struct {
	// Capacity is the number of cached key locations (the paper: "the
	// NIC can cache the location of values for hot keys").
	Capacity int
	// LookupCycles is the fixed cost of a cache probe.
	LookupCycles uint64
	// RDMAAddr is where cache hits are forwarded: the RDMA engine builds
	// and sends the reply, fully bypassing the host CPU.
	RDMAAddr packet.Addr
}

// KVSCacheEngine is the paper's on-NIC application cache (§2.2): GET
// requests that hit are diverted to the RDMA engine for a CPU-bypass
// reply; misses continue along their chain to the DMA engine and host.
// SETs update the cache and continue to the host (the log append).
type KVSCacheEngine struct {
	cfg   KVSCacheConfig
	cache *lruCache

	hits, misses, sets uint64
}

// NewKVSCacheEngine builds the engine.
func NewKVSCacheEngine(cfg KVSCacheConfig) *KVSCacheEngine {
	if cfg.RDMAAddr == packet.AddrInvalid {
		panic("engine: KVS cache requires an RDMA engine address")
	}
	return &KVSCacheEngine{cfg: cfg, cache: newLRUCache(cfg.Capacity)}
}

// Name implements Engine.
func (e *KVSCacheEngine) Name() string { return "kvscache" }

// ServiceCycles implements Engine.
func (e *KVSCacheEngine) ServiceCycles(*packet.Message) uint64 {
	if e.cfg.LookupCycles == 0 {
		return 1
	}
	return e.cfg.LookupCycles
}

// Process implements Engine.
func (e *KVSCacheEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	l := msg.Pkt.Layer(packet.LayerTypeKVS)
	if l == nil {
		// Not a KVS message: pass through along the chain.
		return []Out{{Msg: msg}}
	}
	kvs := l.(*packet.KVS)
	switch kvs.Op {
	case packet.KVSGet:
		if vlen, ok := e.cache.Get(kvs.Key); ok {
			e.hits++
			kvs.ValueLen = vlen
			// Advance past this engine's own chain hop before diverting:
			// if the RDMA engine is saturated and sheds the request back
			// along the chain, it must continue to the DMA/host hop, not
			// loop back here.
			if c := msg.Chain(); c != nil {
				if hop, chainOK := c.Current(); chainOK && hop.Engine == ctx.Addr {
					c.Advance()
				}
			}
			msg.Pkt.Serialize()
			return []Out{{Msg: msg, To: e.cfg.RDMAAddr}}
		}
		e.misses++
		kvs.Flags |= packet.KVSFlagMiss
		msg.Pkt.Serialize()
		return []Out{{Msg: msg}}
	case packet.KVSSet:
		e.sets++
		e.cache.Put(kvs.Key, kvs.ValueLen)
		return []Out{{Msg: msg}}
	default:
		return []Out{{Msg: msg}}
	}
}

// Warm pre-populates the cache (test and experiment setup).
func (e *KVSCacheEngine) Warm(key uint64, valueLen uint32) {
	e.cache.Put(key, valueLen)
}

// Counts returns (hits, misses, sets).
func (e *KVSCacheEngine) Counts() (hits, misses, sets uint64) {
	return e.hits, e.misses, e.sets
}

// CacheLen returns the current number of cached keys.
func (e *KVSCacheEngine) CacheLen() int { return e.cache.Len() }

// RDMAConfig parameterizes the RDMA engine.
type RDMAConfig struct {
	// DMAAddr is the DMA engine serving the value reads.
	DMAAddr packet.Addr
	// IssueCycles is the per-request cost of building a DMA descriptor
	// or a reply header.
	IssueCycles uint64
	// MaxOutstanding bounds in-flight DMA reads; further hits queue in
	// the scheduling queue by occupying the engine.
	MaxOutstanding int
}

// RDMAEngine serves cache-hit GETs without the host CPU (§3.2): it issues
// a DMA read for the value, and on completion builds the response packet
// and injects it toward the wire via the RMT pipeline.
type RDMAEngine struct {
	cfg     RDMAConfig
	pending map[uint64]*packet.Message
	nextTag uint64

	issued, replies uint64
}

// NewRDMAEngine builds the engine.
func NewRDMAEngine(cfg RDMAConfig) *RDMAEngine {
	if cfg.DMAAddr == packet.AddrInvalid {
		panic("engine: RDMA requires a DMA engine address")
	}
	if cfg.MaxOutstanding < 1 {
		cfg.MaxOutstanding = 64
	}
	return &RDMAEngine{cfg: cfg, pending: make(map[uint64]*packet.Message)}
}

// Name implements Engine.
func (e *RDMAEngine) Name() string { return "rdma" }

// ServiceCycles implements Engine.
func (e *RDMAEngine) ServiceCycles(*packet.Message) uint64 {
	if e.cfg.IssueCycles == 0 {
		return 1
	}
	return e.cfg.IssueCycles
}

// Process implements Engine.
func (e *RDMAEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	if l := msg.Pkt.Layer(packet.LayerTypeDMA); l != nil {
		d := l.(*packet.DMA)
		if d.Op != packet.DMAReadCompl {
			return nil
		}
		orig, ok := e.pending[d.HostAddr]
		if !ok {
			return nil
		}
		delete(e.pending, d.HostAddr)
		e.replies++
		return []Out{{Msg: e.buildReply(ctx, orig, d.Len)}}
	}

	kvsLayer := msg.Pkt.Layer(packet.LayerTypeKVS)
	if kvsLayer == nil {
		return nil
	}
	if len(e.pending) >= e.cfg.MaxOutstanding {
		// Saturated: shed back along the chain (to the host path) so the
		// request is still served, just without CPU bypass.
		k := kvsLayer.(*packet.KVS)
		k.Flags |= packet.KVSFlagMiss
		msg.Pkt.Serialize()
		return []Out{{Msg: msg}}
	}
	k := kvsLayer.(*packet.KVS)
	e.nextTag++
	tag := e.nextTag
	e.pending[tag] = msg
	e.issued++
	read := &packet.Message{
		ID:      msg.ID,
		TraceID: msg.TraceID,
		Tenant:  msg.Tenant,
		Class:   packet.ClassControl,
		Port:    -1,
		Inject:  ctx.Now,
		Pkt: packet.NewPacket(0,
			&packet.Ethernet{EtherType: packet.EtherTypeDMA},
			&packet.DMA{Op: packet.DMARead, Requester: ctx.Addr, Len: k.ValueLen, HostAddr: tag},
		),
	}
	return []Out{{Msg: read, To: e.cfg.DMAAddr}}
}

// buildReply constructs the GET response from the original request:
// swapped addresses and ports, response opcode, the value as payload, and
// no chain — the default route sends it through the RMT pipeline, whose TX
// program steers it to an Ethernet port.
func (e *RDMAEngine) buildReply(ctx *Ctx, req *packet.Message, valueLen uint32) *packet.Message {
	reqEth := req.Pkt.Layer(packet.LayerTypeEthernet).(*packet.Ethernet)
	reqIP := req.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	reqUDP := req.Pkt.Layer(packet.LayerTypeUDP).(*packet.UDP)
	reqKVS := req.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	resp := &packet.Message{
		ID:      req.ID,
		TraceID: req.TraceID,
		Tenant:  req.Tenant,
		Class:   req.Class,
		Port:    req.Port, // reply leaves through the arrival port
		Inject:  req.Inject,
		Pkt: packet.NewPacket(int(valueLen),
			&packet.Ethernet{Dst: reqEth.Src, Src: reqEth.Dst, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: reqIP.Dst, Dst: reqIP.Src},
			&packet.UDP{SrcPort: reqUDP.DstPort, DstPort: reqUDP.SrcPort},
			&packet.KVS{Op: packet.KVSGetResp, Tenant: reqKVS.Tenant, Key: reqKVS.Key, ValueLen: valueLen},
		),
	}
	return resp
}

// Counts returns (DMA reads issued, replies sent).
func (e *RDMAEngine) Counts() (issued, replies uint64) {
	return e.issued, e.replies
}

// PendingReads returns the number of in-flight value reads.
func (e *RDMAEngine) PendingReads() int { return len(e.pending) }
