package engine

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/trace"
)

// FaultState is the injectable fault condition on a tile. The zero value
// is a healthy tile. Faults model a misbehaving or broken offload engine
// from the fabric's point of view: the tile keeps its fabric contract
// (arrivals are still accepted per policy, staged output still drains) but
// the compute behind it misbehaves, which is exactly what the health
// monitor must detect from liveness signals alone.
type FaultState struct {
	// Wedged freezes the engine: no new service starts, in-progress
	// service stops advancing, and generators stop generating. Queued and
	// in-flight messages are stranded until the control plane drains the
	// tile or the fault is lifted.
	Wedged bool
	// SlowFactor > 1 multiplies every service time (a thermally throttled
	// or grey-failing engine). 0 or 1 means nominal speed.
	SlowFactor float64
	// DropEveryN >= 1 silently discards every Nth arriving message before
	// it reaches the scheduling queue (a flaky input path). Discards are
	// counted in TileStats.FaultDropped and delivered to DropSink so
	// conservation accounting still holds.
	DropEveryN int
	// DropTenantOnly restricts DropEveryN to arrivals whose accounting
	// tenant is DropTenant; other tenants pass unharmed and do not advance
	// the every-Nth counter. This models a fault confined to one tenant's
	// flow state (a poisoned per-tenant context) rather than the whole
	// engine, and drives the tenant-scoped failover tests.
	DropTenantOnly bool
	DropTenant     uint16
	// CorruptEveryN >= 1 corrupts every Nth arriving message; the engine
	// front-end detects the bad checksum and discards it (counted in
	// TileStats.Corrupted, delivered to DropSink).
	CorruptEveryN int
}

// Clean reports whether the state is the healthy zero value.
func (f FaultState) Clean() bool {
	return !f.Wedged && (f.SlowFactor == 0 || f.SlowFactor == 1) && f.DropEveryN == 0 && f.CorruptEveryN == 0 &&
		!f.DropTenantOnly && f.DropTenant == 0
}

// SetFault installs (or, with the zero FaultState, lifts) a fault on the
// tile. It validates the state so fault plans fail loudly.
func (t *Tile) SetFault(f FaultState) {
	if f.SlowFactor != 0 && (math.IsNaN(f.SlowFactor) || math.IsInf(f.SlowFactor, 0) || f.SlowFactor < 1) {
		panic(fmt.Sprintf("engine: tile %q fault slow factor %v (want >= 1, or 0 for nominal)", t.eng.Name(), f.SlowFactor))
	}
	if f.DropEveryN < 0 || f.CorruptEveryN < 0 {
		panic(fmt.Sprintf("engine: tile %q negative fault period", t.eng.Name()))
	}
	if f.DropTenantOnly && f.DropEveryN < 1 {
		panic(fmt.Sprintf("engine: tile %q tenant-scoped drop without a drop period", t.eng.Name()))
	}
	t.fault = f
	// A sleeping tile must re-evaluate its schedule under the new fault
	// state (wedging freezes service; lifting it resumes). Deferred
	// counters stay correct without a sync here: the accrual rates were
	// captured at the sleep decision, so the cycles that elapsed before
	// this call are charged under the old state when the poked tick's
	// catch-up runs.
	t.wake.Poke()
}

// FaultState returns the tile's current fault condition.
func (t *Tile) FaultState() FaultState { return t.fault }

// Reset is the control plane's drain-and-reset action on a failed tile:
// the in-service message (aborted mid-flight) and everything in the
// scheduling queue are re-addressed to drainTo and staged for emission, so
// they re-enter the fabric and get reclassified — with whatever steering
// the control plane has installed by then. drainTo == AddrInvalid drains
// toward the tile's default route (the RMT pipelines). It returns the
// number of messages drained. Reset does not clear the fault: a wedged
// tile stays wedged (and its outbox still drains) until the fault is
// lifted, but it no longer holds messages hostage.
func (t *Tile) Reset(drainTo packet.Addr) int {
	dst := drainTo
	if dst == packet.AddrInvalid {
		dst = t.defaultRoute()
	}
	n := 0
	if t.cur != nil {
		t.traceDrained(t.cur)
		t.tally(t.cur.Tenant).Drained++
		t.outbox = append(t.outbox, resolvedOut{msg: t.cur, dst: t.routes.Lookup(dst)})
		t.cur = nil
		t.busyLeft = 0
		n++
	}
	for {
		msg, ok := t.queue.Pop()
		if !ok {
			break
		}
		t.traceDrained(msg)
		t.tally(msg.Tenant).Drained++
		t.outbox = append(t.outbox, resolvedOut{msg: msg, dst: t.routes.Lookup(dst)})
		n++
	}
	t.stats.Drained += uint64(n)
	// The drained outbox needs a tick to start flowing; on a sleeping tile
	// the poke provides it (the pre-Reset sleep cycles are charged under
	// the rates captured when the sleep began, see SetFault).
	t.wake.Poke()
	return n
}

// traceDrained marks a message evicted by a control-plane drain. Reset
// runs from the serial phase, so on a tile ticking every cycle ctx.Now is
// the current cycle; a sleeping tile's ctx.Now is stale, so the kernel
// clock (wired with event sleep) supplies the stamp the oracle would use.
func (t *Tile) traceDrained(msg *packet.Message) {
	now := t.ctx.Now
	if t.sleeping && t.clk != nil {
		now = t.clk.Now()
	}
	if t.cfg.Trace.Want(msg.TraceID) {
		t.cfg.Trace.Emit(trace.Span{
			Msg: msg.TraceID, Kind: trace.KindDrop,
			LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
			Start: now, End: now, A: trace.DropDrained,
			Tenant: msg.Tenant,
		})
	}
}

// shedFaulted applies the flake faults to an arriving message; it reports
// whether the message was consumed (dropped or corrupted-and-discarded).
func (t *Tile) shedFaulted(msg *packet.Message, cycle uint64) bool {
	if n := t.fault.CorruptEveryN; n >= 1 {
		t.corruptSeen++
		if t.corruptSeen%uint64(n) == 0 {
			t.stats.Corrupted++
			t.stats.Dropped++
			ta := t.tally(msg.Tenant)
			ta.Dropped++
			ta.Rejected++
			t.traceShed(msg, cycle, trace.DropCorrupt)
			if t.DropSink != nil {
				t.DropSink.Deliver(msg, cycle)
			}
			return true
		}
	}
	if n := t.fault.DropEveryN; n >= 1 {
		if t.fault.DropTenantOnly && msg.Tenant != t.fault.DropTenant {
			return false
		}
		t.dropSeen++
		if t.dropSeen%uint64(n) == 0 {
			t.stats.FaultDropped++
			t.stats.Dropped++
			ta := t.tally(msg.Tenant)
			ta.Dropped++
			ta.Rejected++
			t.traceShed(msg, cycle, trace.DropFault)
			if t.DropSink != nil {
				t.DropSink.Deliver(msg, cycle)
			}
			return true
		}
	}
	return false
}

// traceShed marks a fault-injected discard.
func (t *Tile) traceShed(msg *packet.Message, cycle uint64, reason uint64) {
	if t.cfg.Trace.Want(msg.TraceID) {
		t.cfg.Trace.Emit(trace.Span{
			Msg: msg.TraceID, Kind: trace.KindDrop,
			LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
			Start: cycle, End: cycle, A: reason,
			Tenant: msg.Tenant,
		})
	}
}

// scaleService applies the slow-factor fault to a service time.
func (t *Tile) scaleService(svc uint64) uint64 {
	if f := t.fault.SlowFactor; f > 1 {
		scaled := math.Ceil(float64(svc) * f)
		if scaled >= math.MaxUint64 {
			return math.MaxUint64
		}
		svc = uint64(scaled)
	}
	return svc
}
