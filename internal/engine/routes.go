package engine

import (
	"fmt"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
)

// RouteTable is the lightweight lookup table replicated at every engine
// (§3.1.2): it resolves logical engine addresses from chain headers to
// on-chip network nodes without a heavyweight RMT traversal, at a cost the
// paper models as one cycle (included in the tile's send path).
//
// All tiles share one table object in this model; per-tile divergence is
// not needed because the mapping is global configuration, but the type
// supports cloning if an experiment wants inconsistent tables.
type RouteTable struct {
	nodes map[packet.Addr]noc.NodeID
	// defaultTo is where chainless (or chain-exhausted) messages go:
	// the heavyweight RMT pipeline.
	defaultTo packet.Addr
}

// NewRouteTable creates an empty table.
func NewRouteTable() *RouteTable {
	return &RouteTable{nodes: make(map[packet.Addr]noc.NodeID)}
}

// Bind maps an engine address to a fabric node. Rebinding an address
// panics: addresses are global configuration.
func (r *RouteTable) Bind(addr packet.Addr, node noc.NodeID) {
	if addr == packet.AddrInvalid {
		panic("engine: cannot bind the invalid address")
	}
	if _, dup := r.nodes[addr]; dup {
		panic(fmt.Sprintf("engine: address %d already bound", addr))
	}
	r.nodes[addr] = node
}

// SetDefault installs the default route (normally the RMT pipeline's
// address; with multiple parallel pipelines, a dispatcher address).
func (r *RouteTable) SetDefault(addr packet.Addr) { r.defaultTo = addr }

// Default returns the default route address.
func (r *RouteTable) Default() packet.Addr { return r.defaultTo }

// Lookup resolves an address. Unknown addresses panic: a chain referencing
// an unbound engine is a control-plane bug.
func (r *RouteTable) Lookup(addr packet.Addr) noc.NodeID {
	n, ok := r.nodes[addr]
	if !ok {
		panic(fmt.Sprintf("engine: no route for address %d", addr))
	}
	return n
}

// Has reports whether an address is bound.
func (r *RouteTable) Has(addr packet.Addr) bool {
	_, ok := r.nodes[addr]
	return ok
}

// Clone returns an independent copy (for experiments with per-tile
// tables).
func (r *RouteTable) Clone() *RouteTable {
	c := NewRouteTable()
	for a, n := range r.nodes {
		c.nodes[a] = n
	}
	c.defaultTo = r.defaultTo
	return c
}
