package engine

import (
	"math"

	"github.com/panic-nic/panic/internal/packet"
)

// TxDMAEngine is the transmit-side DMA engine: it fetches host-produced
// packets (TX descriptors plus payload reads) and injects them into the
// NIC. Splitting RX and TX DMA into separate engines mirrors real NIC
// datapaths and the paper's Figure 3c, where DMA and PCIe are independent
// tiles — and it keeps a busy receive path from starving transmissions of
// port bandwidth.
type TxDMAEngine struct {
	src          Source
	bitsPerCycle float64
	tokens       float64
	maxTokens    float64
	waiting      *packet.Message
	fetched      uint64
}

// NewTxDMAEngine builds the engine. src is polled for host transmissions
// (e.g. core.KVSHost); pcieGbps paces fetches at PCIe bandwidth.
func NewTxDMAEngine(pcieGbps, freqHz float64, src Source) *TxDMAEngine {
	requirePositive("TxDMA PCIe rate Gbps", pcieGbps)
	requirePositive("TxDMA clock freq Hz", freqHz)
	bpc := pcieGbps * 1e9 / freqHz
	return &TxDMAEngine{src: src, bitsPerCycle: bpc, maxTokens: math.Max(bpc*4, 1538*8)}
}

// Name implements Engine.
func (t *TxDMAEngine) Name() string { return "txdma" }

// ServiceCycles implements Engine: stray messages routed here are consumed
// in one cycle (nothing should target the TX engine).
func (t *TxDMAEngine) ServiceCycles(*packet.Message) uint64 { return 1 }

// Process implements Engine.
func (t *TxDMAEngine) Process(*Ctx, *packet.Message) []Out { return nil }

// Generate implements Generator: fetch host transmissions at PCIe rate.
func (t *TxDMAEngine) Generate(ctx *Ctx) []Out {
	if t.src == nil {
		return nil
	}
	t.tokens += t.bitsPerCycle
	if t.tokens > t.maxTokens {
		t.tokens = t.maxTokens
	}
	var outs []Out
	for {
		if t.waiting == nil {
			t.waiting = t.src.Poll(ctx.Now)
			if t.waiting == nil {
				return outs
			}
		}
		bits := float64(t.waiting.WireLen() * 8)
		// Oversized sends (bigger than the bucket) go when the bucket is
		// full and drive it negative, which stalls subsequent fetches for
		// the remainder of their serialization time.
		need := bits
		if need > t.maxTokens {
			need = t.maxTokens
		}
		if t.tokens < need {
			return outs
		}
		t.tokens -= bits
		t.fetched++
		outs = append(outs, Out{Msg: t.waiting})
		t.waiting = nil
	}
}

// NextWork implements IdleReporter with the same rules as the MAC RX
// path: quiescent only with no fetch mid-pacing, the token bucket
// saturated at its clamp, and the host source exhausted or not ready
// until a known future cycle.
func (t *TxDMAEngine) NextWork(now uint64) (uint64, bool) {
	if t.src == nil {
		return 0, true
	}
	if t.waiting != nil || t.tokens < t.maxTokens {
		return now, false
	}
	if as, ok := t.src.(ArrivalSource); ok {
		a, ok := as.NextArrival(now)
		if !ok {
			return 0, true
		}
		if a <= now {
			return now, false
		}
		return a, false
	}
	return now, false
}

// Fetched returns the number of host transmissions injected.
func (t *TxDMAEngine) Fetched() uint64 { return t.fetched }
