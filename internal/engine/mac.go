package engine

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
)

// MACConfig parameterizes an Ethernet MAC engine.
type MACConfig struct {
	// Port is the Ethernet port index.
	Port int
	// LineRateGbps is the port speed.
	LineRateGbps float64
	// FreqHz is the NIC clock, for converting line rate to bits/cycle.
	FreqHz float64
}

// EthernetMAC is an Ethernet port tile. In PANIC the MACs are ordinary
// engines on the fabric edge (Figure 3c): the RX side paces packets from a
// Source onto the on-chip network at line rate, and the TX side serializes
// departing messages back onto the wire, stripping the chain shim.
type EthernetMAC struct {
	cfg  MACConfig
	src  Source
	sink Sink

	bitsPerCycle float64
	tokens       float64
	maxTokens    float64
	waiting      *packet.Message
	traceSeq     uint64

	rx, tx       uint64
	rxBits       uint64
	txBits       uint64
	rxStallCount uint64
}

// NewEthernetMAC builds a MAC. src may be nil (TX-only port); sink may be
// nil (RX-only port, transmissions are counted and discarded).
func NewEthernetMAC(cfg MACConfig, src Source, sink Sink) *EthernetMAC {
	requirePositive("MAC line rate Gbps", cfg.LineRateGbps)
	requirePositive("MAC clock freq Hz", cfg.FreqHz)
	bpc := cfg.LineRateGbps * 1e9 / cfg.FreqHz
	if sink == nil {
		sink = NullSink{}
	}
	return &EthernetMAC{
		cfg:          cfg,
		src:          src,
		sink:         sink,
		bitsPerCycle: bpc,
		// Allow one max-size frame of burst so pacing doesn't starve.
		maxTokens: math.Max(bpc*4, 1538*8),
	}
}

// Name implements Engine.
func (m *EthernetMAC) Name() string { return fmt.Sprintf("eth%d", m.cfg.Port) }

// wireBits returns the wire occupancy of a message including preamble/IFG.
func wireBits(msg *packet.Message) float64 {
	return float64((msg.WireLen() + packet.WireOverheadBytes) * 8)
}

// ServiceCycles implements Engine: TX serialization time at line rate.
func (m *EthernetMAC) ServiceCycles(msg *packet.Message) uint64 {
	return uint64(math.Ceil(wireBits(msg) / m.bitsPerCycle))
}

// Process implements Engine: transmit. The chain shim never leaves the
// NIC.
func (m *EthernetMAC) Process(ctx *Ctx, msg *packet.Message) []Out {
	msg.StripChain()
	m.tx++
	m.txBits += uint64(wireBits(msg))
	msg.Done = ctx.Now
	m.sink.Deliver(msg, ctx.Now)
	return nil
}

// Generate implements Generator: receive from the wire at line rate.
func (m *EthernetMAC) Generate(ctx *Ctx) []Out {
	if m.src == nil {
		return nil
	}
	m.tokens += m.bitsPerCycle
	if m.tokens > m.maxTokens {
		m.tokens = m.maxTokens
	}
	var outs []Out
	for {
		if m.waiting == nil {
			m.waiting = m.src.Poll(ctx.Now)
			if m.waiting == nil {
				return outs
			}
			m.waiting.Port = m.cfg.Port
			m.waiting.Inject = ctx.Now
			if m.waiting.TraceID == 0 {
				// Stamp a globally unique trace ID: workload message IDs
				// are per-source and collide across ports. Stamping is
				// unconditional (not gated on a tracer) so pooled and
				// fresh shells stay byte-identical and sampling decisions
				// are a pure function of arrival order.
				m.traceSeq++
				m.waiting.TraceID = uint64(m.cfg.Port+1)<<48 | m.traceSeq
			}
		}
		bits := wireBits(m.waiting)
		need := bits
		if need > m.maxTokens {
			need = m.maxTokens // jumbo frames drain the bucket negative
		}
		if m.tokens < need {
			m.rxStallCount++
			return outs
		}
		m.tokens -= bits
		m.rx++
		m.rxBits += uint64(bits)
		outs = append(outs, Out{Msg: m.waiting})
		m.waiting = nil
	}
}

// NextWork implements IdleReporter for the RX path (the TX path is plain
// tile service, which the tile accounts for itself). The MAC is quiescent
// only when every Generate call would provably change nothing: no frame
// mid-pacing, the token bucket saturated at its clamp (a refill below the
// clamp mutates tokens, so partial buckets veto the skip), and the source
// either exhausted or not due until a known future cycle. A source that
// cannot report its next arrival pins the MAC busy.
func (m *EthernetMAC) NextWork(now uint64) (uint64, bool) {
	if m.src == nil {
		return 0, true
	}
	if m.waiting != nil || m.tokens < m.maxTokens {
		return now, false
	}
	if as, ok := m.src.(ArrivalSource); ok {
		a, ok := as.NextArrival(now)
		if !ok {
			return 0, true
		}
		if a <= now {
			return now, false
		}
		return a, false
	}
	return now, false
}

// RxCount and TxCount return packet counters; RxBits/TxBits the wire-bit
// counters (including preamble/IFG, matching Table 2 accounting).
func (m *EthernetMAC) RxCount() uint64 { return m.rx }

// TxCount returns the transmitted packet count.
func (m *EthernetMAC) TxCount() uint64 { return m.tx }

// RxBits returns received wire bits.
func (m *EthernetMAC) RxBits() uint64 { return m.rxBits }

// TxBits returns transmitted wire bits.
func (m *EthernetMAC) TxBits() uint64 { return m.txBits }
