package engine

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
)

// ByteRateEngine is the common shape of streaming offloads (compression,
// checksum, regex, dedup...): a fixed setup cost plus a per-byte datapath
// cost, then a transform.
type ByteRateEngine struct {
	name          string
	bytesPerCycle float64
	setupCycles   uint64
	transform     func(ctx *Ctx, msg *packet.Message)
	processed     uint64
}

// NewByteRateEngine builds a streaming engine. transform may be nil
// (pure-delay offload).
func NewByteRateEngine(name string, bytesPerCycle float64, setupCycles uint64, transform func(ctx *Ctx, msg *packet.Message)) *ByteRateEngine {
	requirePositive(name+" bytes/cycle", bytesPerCycle)
	return &ByteRateEngine{name: name, bytesPerCycle: bytesPerCycle, setupCycles: setupCycles, transform: transform}
}

// Name implements Engine.
func (e *ByteRateEngine) Name() string { return e.name }

// ServiceCycles implements Engine.
func (e *ByteRateEngine) ServiceCycles(msg *packet.Message) uint64 {
	return e.setupCycles + uint64(math.Ceil(float64(msg.WireLen())/e.bytesPerCycle))
}

// Process implements Engine: transform and continue along the chain.
func (e *ByteRateEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	e.processed++
	if e.transform != nil {
		e.transform(ctx, msg)
	}
	return []Out{{Msg: msg}}
}

// Processed returns the message count.
func (e *ByteRateEngine) Processed() uint64 { return e.processed }

// NewCompressionEngine returns a compression offload that shrinks the
// payload by ratio (0.5 = halve) at the given datapath width.
func NewCompressionEngine(bytesPerCycle, ratio float64) *ByteRateEngine {
	requireFraction("compression ratio", ratio)
	return NewByteRateEngine("compress", bytesPerCycle, 2, func(_ *Ctx, msg *packet.Message) {
		msg.Pkt.PayloadLen = int(float64(msg.Pkt.PayloadLen) * ratio)
	})
}

// NewChecksumEngine returns a checksum offload that recomputes the IPv4
// header checksum at the given datapath width.
func NewChecksumEngine(bytesPerCycle float64) *ByteRateEngine {
	return NewByteRateEngine("checksum", bytesPerCycle, 0, func(_ *Ctx, msg *packet.Message) {
		if ip, ok := msg.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok {
			ip.Checksum = ip.ComputeChecksum()
			msg.Pkt.Serialize()
		}
	})
}

// RegexEngine scans payloads against a pattern set; matching is simulated
// deterministically from the flow key so experiments are reproducible.
type RegexEngine struct {
	*ByteRateEngine
	matches uint64
}

// NewRegexEngine builds the engine; matchRate is the fraction of packets
// that "match" (simulated — see DESIGN.md).
func NewRegexEngine(bytesPerCycle float64, matchRate float64) *RegexEngine {
	if math.IsNaN(matchRate) || matchRate < 0 || matchRate > 1 {
		panic(fmt.Sprintf("engine: regex match rate %v (want in [0, 1])", matchRate))
	}
	e := &RegexEngine{}
	e.ByteRateEngine = NewByteRateEngine("regex", bytesPerCycle, 4, func(_ *Ctx, msg *packet.Message) {
		h := msg.ID * 0x9e3779b97f4a7c15
		if float64(h>>40)/float64(1<<24) < matchRate {
			e.matches++
		}
	})
	return e
}

// Matches returns the simulated match count.
func (e *RegexEngine) Matches() uint64 { return e.matches }

// CPUCoreEngine models an embedded processor tile: a fixed per-packet
// software cost plus an optional programmable handler. In the manycore
// baseline this is the orchestrating core whose latency the paper holds
// against that design (§2.3.2, ~10 µs per packet); in PANIC it is just
// another offload choice.
type CPUCoreEngine struct {
	name        string
	perPacket   uint64
	perByteNano float64 // additional cycles per byte of payload touched
	handler     func(ctx *Ctx, msg *packet.Message) []Out
	processed   uint64
}

// NewCPUCoreEngine builds a core. handler nil forwards along the chain.
func NewCPUCoreEngine(name string, perPacketCycles uint64, perByteCycles float64, handler func(ctx *Ctx, msg *packet.Message) []Out) *CPUCoreEngine {
	requireNonNegative(name+" cycles/byte", perByteCycles)
	if perPacketCycles == 0 {
		perPacketCycles = 1
	}
	return &CPUCoreEngine{name: name, perPacket: perPacketCycles, perByteNano: perByteCycles, handler: handler}
}

// Name implements Engine.
func (e *CPUCoreEngine) Name() string { return e.name }

// ServiceCycles implements Engine.
func (e *CPUCoreEngine) ServiceCycles(msg *packet.Message) uint64 {
	return e.perPacket + uint64(math.Ceil(e.perByteNano*float64(msg.WireLen())))
}

// Process implements Engine.
func (e *CPUCoreEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	e.processed++
	if e.handler != nil {
		return e.handler(ctx, msg)
	}
	return []Out{{Msg: msg}}
}

// Processed returns the packet count.
func (e *CPUCoreEngine) Processed() uint64 { return e.processed }

// CollectorEngine consumes every message into a sink — a terminal engine
// for tests and for modeling host delivery points.
type CollectorEngine struct {
	name    string
	cycles  uint64
	sink    Sink
	count   uint64
	lastMsg *packet.Message
}

// NewCollectorEngine builds a consuming engine.
func NewCollectorEngine(name string, serviceCycles uint64, sink Sink) *CollectorEngine {
	if sink == nil {
		sink = NullSink{}
	}
	if serviceCycles == 0 {
		serviceCycles = 1
	}
	return &CollectorEngine{name: name, cycles: serviceCycles, sink: sink}
}

// Name implements Engine.
func (e *CollectorEngine) Name() string { return e.name }

// ServiceCycles implements Engine.
func (e *CollectorEngine) ServiceCycles(*packet.Message) uint64 { return e.cycles }

// Process implements Engine.
func (e *CollectorEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	e.count++
	e.lastMsg = msg
	msg.Done = ctx.Now
	e.sink.Deliver(msg, ctx.Now)
	return nil
}

// Count returns the number of consumed messages.
func (e *CollectorEngine) Count() uint64 { return e.count }

// Last returns the most recently consumed message.
func (e *CollectorEngine) Last() *packet.Message { return e.lastMsg }
