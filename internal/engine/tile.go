package engine

import (
	"fmt"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
)

// TileConfig parameterizes a tile.
type TileConfig struct {
	// Addr is the tile's logical engine address (must be bound in the
	// route table).
	Addr packet.Addr
	// Node is the tile's attachment point on the fabric.
	Node noc.NodeID
	// QueueCap is the scheduling queue capacity in messages.
	QueueCap int
	// Policy is the queue's overflow policy (lossless backpressure or
	// priority drop).
	Policy sched.Policy
	// Rank orders the scheduling queue; nil means LSTF on chain slack.
	Rank sched.RankFunc
	// DefaultTo overrides the route table's default route for this tile;
	// AddrInvalid uses the table default.
	DefaultTo packet.Addr
	// DefaultSpread, when non-empty, sprays chainless traffic across the
	// given addresses round-robin per message — how ingress hardware
	// load-balances across parallel RMT pipelines. Takes precedence over
	// DefaultTo.
	DefaultSpread []packet.Addr
	// TraceVisits records per-engine Visit entries on messages (tests
	// and examples; costs an append per hop).
	TraceVisits bool
	// Trace, when non-nil, receives cycle-stamped span records for
	// sampled messages (see internal/trace): queue enqueue/dequeue with
	// depth and slack, service occupancy, fabric injections, and drops.
	// Nil disables tracing at zero cost on the hot path.
	Trace *trace.Buffer
	// HeapSchedQueue backs the scheduling queue with the reference
	// container/heap PIFO instead of the bucketed calendar queue — the
	// ablation baseline. Decisions are identical; only speed differs.
	HeapSchedQueue bool
}

// newQueue builds the tile's scheduling queue per the ablation knob.
func (c *TileConfig) newQueue() *sched.Queue {
	if c.HeapSchedQueue {
		return sched.NewHeapQueue(c.QueueCap, c.Policy)
	}
	return sched.NewQueue(c.QueueCap, c.Policy)
}

// TileStats are one tile's counters.
type TileStats struct {
	// Processed counts messages whose service completed.
	Processed uint64
	// BusyCycles counts cycles the engine was serving a message.
	BusyCycles uint64
	// Dropped counts messages shed by the scheduling queue.
	Dropped uint64
	// Emitted counts messages sent into the fabric.
	Emitted uint64
	// QueueWaitTotal accumulates enqueue-to-service-start cycles.
	QueueWaitTotal uint64
	// StallCycles counts cycles the tile wanted to inject but the
	// fabric had no space.
	StallCycles uint64
	// FaultDropped counts arrivals discarded by an injected drop fault
	// (included in Dropped).
	FaultDropped uint64
	// Corrupted counts arrivals discarded by an injected corruption fault
	// (included in Dropped).
	Corrupted uint64
	// Drained counts messages evicted by a control-plane Reset.
	Drained uint64

	// Custody counters for the conservation audit: every message enters
	// the tile's custody through exactly one of Ejected (pulled from the
	// fabric), Generated (spontaneous generation), or ProcOut (emitted by
	// Process), and leaves through Emitted, Processed, Dropped, or
	// Refused. See AuditConservation.
	Ejected   uint64
	Generated uint64
	ProcOut   uint64
	// Refused counts lossless arrivals a full lossy queue could not admit
	// (every resident also lossless): the push is refused and the message
	// is lost without reaching the DropSink. Kept out of Dropped so the
	// existing drop accounting is unchanged; the conservation audit counts
	// it as an exit.
	Refused uint64
}

// MeanQueueWait returns the mean scheduling-queue wait in cycles.
func (s TileStats) MeanQueueWait() float64 {
	if s.Processed == 0 {
		return 0
	}
	return float64(s.QueueWaitTotal) / float64(s.Processed)
}

// TenantTally is one tenant's share of a tile's work: how much of the
// queue and the service pipeline that tenant consumed. The control plane
// reads these to check isolation (an aggressor's ServiceCycles should not
// grow at a victim's expense beyond its weight share).
type TenantTally struct {
	// Enqueued counts messages accepted into the scheduling queue.
	Enqueued uint64
	// Processed counts messages whose service completed.
	Processed uint64
	// ServiceCycles accumulates cycles spent serving this tenant.
	ServiceCycles uint64
	// QueueWaitTotal accumulates enqueue-to-service-start cycles.
	QueueWaitTotal uint64
	// Dropped counts messages shed by queue policy or injected faults
	// (drains re-inject rather than discard, so they are not counted).
	Dropped uint64
	// Rejected counts the subset of Dropped that died before entering the
	// scheduling queue: fault sheds and overflow self-drops. Dropped −
	// Rejected is therefore the number of resident messages evicted from
	// the queue, which the per-tenant conservation audit balances against
	// Enqueued.
	Rejected uint64
	// Drained counts this tenant's messages evicted from the queue (or
	// mid-service) by a control-plane Reset.
	Drained uint64
}

// Tile is an offload engine attached to the fabric: scheduling queue +
// compute + lightweight route lookup (Figure 3a). It implements
// sim.Ticker.
type Tile struct {
	cfg    TileConfig
	eng    Engine
	fab    noc.Fabric
	routes *RouteTable
	queue  *sched.Queue
	rank   sched.RankFunc
	ctx    Ctx

	// Service state.
	cur      *packet.Message
	busyLeft uint64
	curStart uint64

	// Send state: resolved messages awaiting fabric space, plus delayed
	// emissions ordered by due cycle. The outbox drains from outHead
	// instead of compacting every tick: under backpressure the backlog can
	// run to hundreds of entries, and re-copying it each cycle (plus the
	// pointer-slice write barrier, even for a zero-length copy) was ~24%
	// of the saturated hot path. Sent slots are zeroed for the GC and
	// reclaimed in bulk.
	outbox     []resolvedOut
	outHead    int
	pending    []delayedOut
	spreadNext int

	stats TileStats
	// tenants maps tenant ID to its tally; entries are created lazily on
	// first sight of a tenant, so steady-state traffic never allocates.
	tenants map[uint16]*TenantTally
	// DropSink, when set, receives messages shed by the queue.
	DropSink Sink

	// Injected fault condition (zero = healthy) and the deterministic
	// arrival counters behind the every-Nth flake faults.
	fault       FaultState
	dropSeen    uint64
	corruptSeen uint64

	// Event-driven sleep state (see EndCycle). eventOK is set by the
	// builder only when the fabric pokes the tile about arrivals; wake and
	// clk let control-plane mutators (SetFault, Reset) force a tick and
	// stamp traces while the tile sleeps. While sleeping, the captured
	// sleepBusy/sleepStall rates plus the syncedThrough watermark defer the
	// per-cycle busy/stall accrual the ticked oracle would have made; the
	// flags are snapshots, so a mutation after the sleep decision cannot
	// corrupt the accounting for cycles that elapsed before it.
	eventOK       bool
	wake          sim.Poker
	clk           *sim.Clock
	sleeping      bool
	sleepBusy     bool
	sleepStall    bool
	syncedThrough uint64
}

type resolvedOut struct {
	msg *packet.Message
	dst noc.NodeID
}

type delayedOut struct {
	due uint64
	out Out
}

// NewTile builds a tile around an engine. The tile's address must already
// be bound to its node in the route table.
func NewTile(cfg TileConfig, eng Engine, fab noc.Fabric, routes *RouteTable, rng *sim.RNG) *Tile {
	if cfg.QueueCap < 1 {
		panic(fmt.Sprintf("engine: tile %q queue capacity %d", eng.Name(), cfg.QueueCap))
	}
	if !routes.Has(cfg.Addr) {
		panic(fmt.Sprintf("engine: tile %q address %d not bound in route table", eng.Name(), cfg.Addr))
	}
	if routes.Lookup(cfg.Addr) != cfg.Node {
		panic(fmt.Sprintf("engine: tile %q bound to node %d but configured at %d", eng.Name(), routes.Lookup(cfg.Addr), cfg.Node))
	}
	rank := cfg.Rank
	if rank == nil {
		rank = sched.RankLSTF
	}
	return &Tile{
		cfg:    cfg,
		eng:    eng,
		fab:    fab,
		routes: routes,
		queue:  cfg.newQueue(),
		rank:   rank,
		ctx:    Ctx{RNG: rng, Addr: cfg.Addr},
		// Pre-size the send-side buffers: outbox and delay-list churn is
		// per-message, and regrowing them is pure allocator noise.
		outbox:  make([]resolvedOut, 0, 8),
		pending: make([]delayedOut, 0, 8),
	}
}

// Name returns the engine name.
func (t *Tile) Name() string { return t.eng.Name() }

// Addr returns the tile's logical address.
func (t *Tile) Addr() packet.Addr { return t.cfg.Addr }

// Node returns the tile's fabric node.
func (t *Tile) Node() noc.NodeID { return t.cfg.Node }

// Engine returns the wrapped engine (for test inspection).
func (t *Tile) Engine() Engine { return t.eng }

// Stats returns a copy of the tile's counters.
func (t *Tile) Stats() TileStats { return t.stats }

// TenantStats returns a copy of the per-tenant tallies. Tiles that never
// saw traffic return an empty (possibly nil-backed) map.
func (t *Tile) TenantStats() map[uint16]TenantTally {
	out := make(map[uint16]TenantTally, len(t.tenants))
	for id, ta := range t.tenants {
		out[id] = *ta
	}
	return out
}

// tally returns the tenant's counter block, creating it on first use.
func (t *Tile) tally(tenant uint16) *TenantTally {
	if ta, ok := t.tenants[tenant]; ok {
		return ta
	}
	if t.tenants == nil {
		t.tenants = make(map[uint16]*TenantTally)
	}
	ta := &TenantTally{}
	t.tenants[tenant] = ta
	return ta
}

// QueueStats exposes the scheduling queue's counters.
func (t *Tile) QueueStats() (pushed, popped, drops, rejects uint64, highWater int) {
	return t.queue.Stats()
}

// QueueLen returns the current scheduling-queue occupancy.
func (t *Tile) QueueLen() int { return t.queue.Len() }

// Busy reports whether a message is in service (liveness probes need this
// to tell "wedged mid-service with an empty queue" from "idle").
func (t *Tile) Busy() bool { return t.cur != nil }

// Idle reports whether the tile has no work in flight (for drain checks).
func (t *Tile) Idle() bool {
	return t.cur == nil && t.queue.Len() == 0 && t.outLen() == 0 && len(t.pending) == 0
}

// outLen returns the number of undelivered outbox entries.
func (t *Tile) outLen() int { return len(t.outbox) - t.outHead }

// compactOutbox reclaims the drained prefix: free when the outbox empties,
// and amortized-O(1) per message otherwise (each entry moves at most once
// per 64 sends), so a standing backlog never pays a per-cycle copy.
func (t *Tile) compactOutbox() {
	if t.outHead == len(t.outbox) {
		t.outbox = t.outbox[:0]
		t.outHead = 0
	} else if t.outHead >= 64 {
		t.outbox = t.outbox[:copy(t.outbox, t.outbox[t.outHead:])]
		t.outHead = 0
	}
}

// NextWork implements sim.Quiescer. The tile accounts only for its own
// state: pending fabric arrivals are vetoed by the fabric's NextWork, so a
// drained tile need not (and cannot) see them. Counters make the rules
// strict — an outbox blocked on fabric backpressure accrues StallCycles
// and an in-service message accrues BusyCycles, so both veto the skip.
//
// A wedged tile is frozen by construction: generation and service are
// gated off and the queue is never popped, so its queued and in-service
// messages impose no work. Its outbox and delay list still drain, though,
// and those keep their usual rules.
func (t *Tile) NextWork(now uint64) (uint64, bool) {
	if t.outLen() > 0 {
		return now, false
	}
	if !t.fault.Wedged && (t.cur != nil || t.queue.Len() > 0) {
		return now, false
	}
	var next uint64
	have := false
	for _, d := range t.pending {
		if d.due <= now {
			return now, false
		}
		if !have || d.due < next {
			next, have = d.due, true
		}
	}
	if !t.fault.Wedged {
		if ir, ok := t.eng.(IdleReporter); ok {
			n, idle := ir.NextWork(now)
			if !idle {
				if n <= now {
					return now, false
				}
				if !have || n < next {
					next, have = n, true
				}
			}
		} else if _, ok := t.eng.(Generator); ok {
			// An opaque generator may produce any cycle: never skip it.
			return now, false
		}
	}
	if !have {
		return 0, true
	}
	return next, false
}

// EnableEventSleep lets EndCycle return real sleep wakes. The builder
// calls it only when the fabric can poke the tile about arrivals (a mesh
// with a node waker wired); on other fabrics the tile conservatively wakes
// every cycle and event mode degrades to the ticked schedule for it. The
// poker wakes the tile after control-plane mutations; the clock stamps
// trace spans emitted while the tile sleeps.
func (t *Tile) EnableEventSleep(wake sim.Poker, clk *sim.Clock) {
	t.eventOK = true
	t.wake = wake
	t.clk = clk
}

// EndCycle implements sim.EventAware: after each ticked cycle the tile
// declares the next cycle it must run. Sleeping is sound because every
// state change below is self-scheduled (service completion, delayed
// emissions, engine arrivals) or arrives with a poke (fabric deliveries
// and credits via the mesh node waker, control-plane mutations via the
// tile's own waker); the per-cycle busy/stall counters a sleeping tile
// would have accrued are captured as rates and applied by SyncTo.
func (t *Tile) EndCycle(cycle uint64) uint64 {
	if t.eventOK {
		if w := t.nextWake(cycle); w > cycle+1 {
			t.sleeping = true
			t.sleepBusy = t.cur != nil && !t.fault.Wedged
			t.sleepStall = t.outLen() > 0
			t.syncedThrough = cycle + 1
			return w
		}
	}
	return cycle + 1
}

// nextWake computes the earliest cycle at which a tick could change
// anything, mirroring NextWork's rules but with the event engine's extra
// powers: a blocked outbox or a mid-service engine no longer pins the tile
// awake, because stalls and busy cycles accrue in bulk and the completion
// cycle is known.
func (t *Tile) nextWake(cycle uint64) uint64 {
	wake := uint64(sim.WakeNever)
	if t.outLen() > 0 && t.fab.CanInject(t.cfg.Node, t.outbox[t.outHead].dst) {
		return cycle + 1
	}
	// A blocked outbox sleeps: stalls accrue via SyncTo and the freeing
	// fabric credit pokes the tile.
	if !t.fault.Wedged {
		if t.cur != nil {
			if w := cycle + t.busyLeft; w > cycle { // overflow → never
				wake = w
			}
		} else if t.queue.Len() > 0 {
			return cycle + 1
		}
	}
	for _, d := range t.pending {
		if d.due < wake {
			wake = d.due
		}
	}
	if !t.fault.Wedged {
		if ir, ok := t.eng.(IdleReporter); ok {
			if n, idle := ir.NextWork(cycle + 1); !idle && n < wake {
				wake = n
			}
		} else if _, ok := t.eng.(Generator); ok {
			// An opaque generator may produce any cycle: never sleep.
			return cycle + 1
		}
	}
	if t.fab.HasEjectable(t.cfg.Node) {
		return cycle + 1
	}
	return wake
}

// SyncTo implements sim.EventAware: it applies the bulk per-cycle counters
// a sleeping tile deferred, through the given cycle, using the rates
// captured at the sleep decision.
func (t *Tile) SyncTo(cycle uint64) {
	if !t.sleeping || cycle+1 <= t.syncedThrough {
		return
	}
	n := cycle + 1 - t.syncedThrough
	if t.sleepBusy {
		t.stats.BusyCycles += n
		t.busyLeft -= n
	}
	if t.sleepStall {
		t.stats.StallCycles += n
	}
	t.syncedThrough = cycle + 1
}

// wakeSync ends a sleep at the start of a live tick: deferred accounting
// is brought current through cycle-1; the tick itself covers cycle.
func (t *Tile) wakeSync(cycle uint64) {
	t.SyncTo(cycle - 1)
	t.sleeping = false
}

// Tick implements sim.Ticker.
func (t *Tile) Tick(cycle uint64) {
	if t.sleeping {
		t.wakeSync(cycle)
	}
	t.ctx.Now = cycle

	// 1. Spontaneous generation (ingress MACs). A wedged tile generates
	// nothing.
	if g, ok := t.eng.(Generator); ok && !t.fault.Wedged {
		for _, out := range g.Generate(&t.ctx) {
			t.stats.Generated++
			if t.cfg.Trace.Want(out.Msg.TraceID) {
				t.cfg.Trace.Emit(trace.Span{
					Msg: out.Msg.TraceID, Kind: trace.KindGen,
					LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
					Start: cycle, End: cycle, B: uint64(out.Msg.WireLen()),
					Tenant: out.Msg.Tenant,
				})
			}
			t.stage(out)
		}
	}

	// 2. Promote due delayed emissions, preserving emission order.
	kept := t.pending[:0]
	for _, d := range t.pending {
		if d.due <= cycle {
			d.out.Delay = 0
			t.stage(d.out)
		} else {
			kept = append(kept, d)
		}
	}
	t.pending = kept

	// 3. Drain the outbox into the fabric.
	for t.outHead < len(t.outbox) {
		o := t.outbox[t.outHead]
		if !t.fab.CanInject(t.cfg.Node, o.dst) {
			t.stats.StallCycles++
			break
		}
		t.fab.Inject(t.cfg.Node, o.dst, o.msg)
		if t.cfg.Trace.Want(o.msg.TraceID) {
			t.cfg.Trace.Emit(trace.Span{
				Msg: o.msg.TraceID, Kind: trace.KindInject,
				LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
				Start: cycle, End: cycle,
				A: uint64(o.dst), B: uint64(t.fab.FlitsFor(o.msg)),
				Tenant: o.msg.Tenant,
			})
		}
		t.outbox[t.outHead] = resolvedOut{}
		t.outHead++
		t.stats.Emitted++
	}
	t.compactOutbox()

	// 4. Advance service. A wedged engine freezes mid-service: the
	// in-flight message is held and no progress counter moves — the
	// liveness signature the health monitor keys on.
	if t.cur != nil && !t.fault.Wedged {
		t.stats.BusyCycles++
		t.busyLeft--
		if t.busyLeft == 0 {
			msg := t.cur
			t.cur = nil
			t.stats.Processed++
			ta := t.tally(msg.Tenant)
			ta.Processed++
			ta.ServiceCycles += cycle - t.curStart
			if t.cfg.Trace.Want(msg.TraceID) {
				t.cfg.Trace.Emit(trace.Span{
					Msg: msg.TraceID, Kind: trace.KindService,
					LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
					Start: t.curStart, End: cycle,
					Tenant: msg.Tenant,
				})
			}
			for _, out := range t.eng.Process(&t.ctx, msg) {
				t.stats.ProcOut++
				t.stage(out)
			}
		}
	}

	// 5. Start the next message (never on a wedged engine).
	if t.cur == nil && !t.fault.Wedged {
		depth := 0
		if t.cfg.Trace != nil {
			depth = t.queue.Len()
		}
		if msg, ok := t.queue.Pop(); ok {
			if t.cfg.Trace.Want(msg.TraceID) {
				t.cfg.Trace.Emit(trace.Span{
					Msg: msg.TraceID, Kind: trace.KindWait,
					LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
					Start: msg.EnqueuedAt, End: cycle,
					A: uint64(depth), B: uint64(chainSlack(msg, t.cfg.Addr)),
					Tenant: msg.Tenant,
				})
			}
			t.cur = msg
			t.curStart = cycle
			var svc uint64
			if te, ok := t.eng.(TimedEngine); ok {
				svc = te.ServiceCyclesAt(&t.ctx, msg)
			} else {
				svc = t.eng.ServiceCycles(msg)
			}
			if svc == 0 {
				svc = 1
			}
			t.busyLeft = t.scaleService(svc)
			if t.cfg.TraceVisits && len(msg.Trace) > 0 {
				msg.Trace[len(msg.Trace)-1].Started = cycle
			}
			t.stats.QueueWaitTotal += cycle - msg.EnqueuedAt
			t.tally(msg.Tenant).QueueWaitTotal += cycle - msg.EnqueuedAt
		}
	}

	// 6. Accept arrivals from the fabric into the scheduling queue. Under
	// backpressure policy a full queue leaves messages in the network
	// (lossless); under drop policy the queue sheds the worst-ranked.
	for {
		if t.queue.Full() && t.queue.Cap() > 0 && t.cfg.Policy == sched.Backpressure {
			break
		}
		msg, ok := t.fab.TryEject(t.cfg.Node)
		if !ok {
			break
		}
		t.stats.Ejected++
		t.admit(msg, cycle)
	}
}

// admit pushes an arrived message into the scheduling queue.
func (t *Tile) admit(msg *packet.Message, cycle uint64) {
	if t.shedFaulted(msg, cycle) {
		return
	}
	slack := chainSlack(msg, t.cfg.Addr)
	msg.EnqueuedAt = cycle
	if t.cfg.TraceVisits {
		msg.Trace = append(msg.Trace, packet.Visit{Engine: t.cfg.Addr, Enqueued: cycle})
	}
	rank := t.rank(msg, slack, cycle)
	res := t.queue.Push(msg, rank)
	if !res.Accepted {
		// Lossless arrival refused by a full lossy queue whose residents
		// are all lossless too: the message is lost (see TileStats.Refused).
		t.stats.Refused++
		return
	}
	if res.Dropped == msg {
		t.tally(msg.Tenant).Rejected++
	}
	if res.Accepted && res.Dropped != msg {
		t.tally(msg.Tenant).Enqueued++
		if t.cfg.Trace.Want(msg.TraceID) {
			t.cfg.Trace.Emit(trace.Span{
				Msg: msg.TraceID, Kind: trace.KindEnq,
				LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
				Start: cycle, End: cycle,
				A: rank, B: uint64(t.queue.Len()),
				Tenant: msg.Tenant,
			})
		}
	}
	if res.Dropped != nil {
		t.stats.Dropped++
		t.tally(res.Dropped.Tenant).Dropped++
		if t.cfg.Trace.Want(res.Dropped.TraceID) {
			t.cfg.Trace.Emit(trace.Span{
				Msg: res.Dropped.TraceID, Kind: trace.KindDrop,
				LocKind: trace.LocEngine, Loc: uint32(t.cfg.Addr),
				Start: cycle, End: cycle, A: trace.DropQueueShed,
				Tenant: res.Dropped.Tenant,
			})
		}
		if t.DropSink != nil {
			t.DropSink.Deliver(res.Dropped, cycle)
		}
	}
}

// chainSlack returns the slack the RMT program stamped for this engine's
// hop, or 0 when the message has no chain positioned here.
func chainSlack(msg *packet.Message, addr packet.Addr) uint32 {
	if c := msg.Chain(); c != nil {
		if hop, ok := c.Current(); ok && hop.Engine == addr {
			return hop.Slack
		}
	}
	return 0
}

// stage routes an Out and places it in the outbox (or the delay list).
func (t *Tile) stage(out Out) {
	if out.Delay > 0 {
		t.pending = append(t.pending, delayedOut{due: t.ctx.Now + out.Delay, out: Out{Msg: out.Msg, To: out.To}})
		return
	}
	to := out.To
	if to == packet.AddrInvalid {
		to = t.nextFromChain(out.Msg)
	}
	t.outbox = append(t.outbox, resolvedOut{msg: out.Msg, dst: t.routes.Lookup(to)})
}

// nextFromChain advances the message's chain past this tile's hop and
// returns the next engine, or the default route when the chain is absent,
// exhausted, or positioned elsewhere (§3.1.2: unknown continuations return
// to the heavyweight RMT pipeline).
func (t *Tile) nextFromChain(msg *packet.Message) packet.Addr {
	c := msg.Chain()
	if c == nil {
		return t.defaultRoute()
	}
	hop, ok := c.Current()
	if !ok {
		return t.defaultRoute()
	}
	if hop.Engine != t.cfg.Addr {
		// A chain built by the RMT pipeline whose first hop is not this
		// tile: forward toward that hop.
		return hop.Engine
	}
	next, ok := c.Advance()
	msg.Pkt.Serialize() // cursor moved; keep wire bytes consistent
	if !ok {
		return t.defaultRoute()
	}
	return next.Engine
}

func (t *Tile) defaultRoute() packet.Addr {
	if len(t.cfg.DefaultSpread) > 0 {
		a := t.cfg.DefaultSpread[t.spreadNext%len(t.cfg.DefaultSpread)]
		t.spreadNext++
		return a
	}
	if t.cfg.DefaultTo != packet.AddrInvalid {
		return t.cfg.DefaultTo
	}
	return t.routes.Default()
}
