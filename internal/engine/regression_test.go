package engine

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// TestCacheHitAdvancesChainBeforeDivert is a regression test: on a cache
// hit the engine diverts to the RDMA engine with an explicit destination,
// which bypasses the tile's chain advance. If the RDMA engine then sheds
// the request back along the chain (saturation), the chain cursor must
// already be past the cache hop — otherwise the request loops
// cache→rdma→cache forever.
func TestCacheHitAdvancesChainBeforeDivert(t *testing.T) {
	e := NewKVSCacheEngine(KVSCacheConfig{Capacity: 4, RDMAAddr: 9})
	e.Warm(5, 128)
	msg := kvsGet(1, 1, 5)
	msg.InsertChain(&packet.Chain{Hops: []packet.Hop{
		{Engine: 3 /* the cache tile's own address */},
		{Engine: 8 /* DMA */},
	}})
	outs := e.Process(&Ctx{Addr: 3}, msg)
	if len(outs) != 1 || outs[0].To != 9 {
		t.Fatalf("outs = %+v", outs)
	}
	c := outs[0].Msg.Chain()
	hop, ok := c.Current()
	if !ok || hop.Engine != 8 {
		t.Errorf("chain cursor at %v, want DMA hop (8) — shed path would loop", hop)
	}
}

// TestCacheHitShedByRDMAGoesToHost drives the full shed path: a saturated
// RDMA engine pushes the hit back along the chain, which must continue to
// the DMA hop.
func TestCacheHitShedByRDMAGoesToHost(t *testing.T) {
	cache := NewKVSCacheEngine(KVSCacheConfig{Capacity: 4, RDMAAddr: 9})
	cache.Warm(5, 128)
	rdma := NewRDMAEngine(RDMAConfig{DMAAddr: 8, MaxOutstanding: 1})
	ctxCache := &Ctx{Addr: 3}
	ctxRDMA := &Ctx{Addr: 9}

	// First hit occupies the RDMA engine's single slot.
	m1 := kvsGet(1, 1, 5)
	m1.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 3}, {Engine: 8}}})
	rdma.Process(ctxRDMA, cache.Process(ctxCache, m1)[0].Msg)

	// Second hit is shed; its chain must now point at the DMA hop.
	m2 := kvsGet(2, 1, 5)
	m2.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 3}, {Engine: 8}}})
	outs := rdma.Process(ctxRDMA, cache.Process(ctxCache, m2)[0].Msg)
	if len(outs) != 1 || outs[0].To != packet.AddrInvalid {
		t.Fatalf("shed outs = %+v", outs)
	}
	hop, ok := outs[0].Msg.Chain().Current()
	if !ok || hop.Engine != 8 {
		t.Errorf("shed request chain at %v, want DMA hop", hop)
	}
	k := outs[0].Msg.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	if k.Flags&packet.KVSFlagMiss == 0 {
		t.Error("shed request not marked for the host path")
	}
}

// TestTxDMAFetchesAtPCIeRate checks the TX-DMA generator paces fetches.
func TestTxDMAFetchesAtPCIeRate(t *testing.T) {
	src := &queueSource{}
	for i := 0; i < 50; i++ {
		src.msgs = append(src.msgs, &packet.Message{ID: uint64(i), Pkt: &packet.Packet{PayloadLen: 1000}})
	}
	// 8 Gbps at 500 MHz = 16 bits/cycle; 1000B = 8000 bits = 500
	// cycles/message; 50 messages ≈ 25k cycles.
	tx := NewTxDMAEngine(8, 500e6, src)
	ctx := &Ctx{}
	fetched := 0
	var doneAt uint64
	for c := uint64(0); c < 60_000 && fetched < 50; c++ {
		ctx.Now = c
		fetched += len(tx.Generate(ctx))
		doneAt = c
	}
	if fetched != 50 {
		t.Fatalf("fetched %d/50", fetched)
	}
	if doneAt < 20_000 || doneAt > 30_000 {
		t.Errorf("fetch pacing finished at %d, want ~25000", doneAt)
	}
	if tx.Fetched() != 50 {
		t.Errorf("Fetched = %d", tx.Fetched())
	}
}

// TestTxDMAConsumesStrays: messages misrouted to the TX engine are
// consumed without panicking.
func TestTxDMAConsumesStrays(t *testing.T) {
	tx := NewTxDMAEngine(8, 500e6, nil)
	if outs := tx.Process(&Ctx{}, kvsGet(1, 1, 1)); len(outs) != 0 {
		t.Errorf("stray produced outs: %+v", outs)
	}
	if tx.Generate(&Ctx{}) != nil {
		t.Error("nil-source generator produced output")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	NewTxDMAEngine(0, 1, nil)
}
