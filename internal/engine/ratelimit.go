package engine

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
)

// RateLimiterConfig parameterizes the per-tenant rate-limiting engine.
type RateLimiterConfig struct {
	// FreqHz is the NIC clock, for converting Gbps to bits/cycle.
	FreqHz float64
	// Default is the rate applied to tenants without an explicit limit
	// (0 = unlimited).
	DefaultGbps float64
	// BurstBytes is each tenant's token-bucket depth.
	BurstBytes int
}

// RateLimiterEngine enforces per-tenant token-bucket rate limits on the
// NIC — the SENIC row of the paper's Table 1 ("Infrastructure, Inline,
// Network"). Conforming messages continue along their chain immediately;
// non-conforming messages are held in the engine (head-of-line within the
// tenant) until their tokens accumulate, which is exactly the kind of
// variable-service-time behaviour PANIC's self-contained engines permit
// and RMT pipelines cannot host.
type RateLimiterEngine struct {
	cfg    RateLimiterConfig
	limits map[uint16]float64 // tenant -> bits/cycle
	bucket map[uint16]*tokenBucket

	conformed, delayed uint64
}

type tokenBucket struct {
	tokens      float64
	perCycle    float64
	maxTokens   float64
	lastRefresh uint64
}

// NewRateLimiterEngine builds the engine.
func NewRateLimiterEngine(cfg RateLimiterConfig) *RateLimiterEngine {
	requirePositive("rate limiter clock freq Hz", cfg.FreqHz)
	if cfg.BurstBytes < 1 {
		cfg.BurstBytes = 16 * 1024
	}
	return &RateLimiterEngine{
		cfg:    cfg,
		limits: make(map[uint16]float64),
		bucket: make(map[uint16]*tokenBucket),
	}
}

// SetLimit installs a tenant's rate limit in Gbps (0 removes it).
func (e *RateLimiterEngine) SetLimit(tenant uint16, gbps float64) {
	if math.IsNaN(gbps) || math.IsInf(gbps, 0) {
		panic(fmt.Sprintf("engine: rate limit %v Gbps for tenant %d", gbps, tenant))
	}
	if gbps <= 0 {
		delete(e.limits, tenant)
		delete(e.bucket, tenant)
		return
	}
	e.limits[tenant] = gbps * 1e9 / e.cfg.FreqHz
	delete(e.bucket, tenant)
}

// Name implements Engine.
func (e *RateLimiterEngine) Name() string { return "ratelimit" }

func (e *RateLimiterEngine) bucketFor(tenant uint16, now uint64) *tokenBucket {
	b := e.bucket[tenant]
	if b == nil {
		perCycle, ok := e.limits[tenant]
		if !ok {
			if e.cfg.DefaultGbps <= 0 {
				return nil // unlimited
			}
			perCycle = e.cfg.DefaultGbps * 1e9 / e.cfg.FreqHz
		}
		b = &tokenBucket{
			tokens:      float64(e.cfg.BurstBytes * 8),
			perCycle:    perCycle,
			maxTokens:   float64(e.cfg.BurstBytes * 8),
			lastRefresh: now,
		}
		e.bucket[tenant] = b
	}
	b.refresh(now)
	return b
}

func (b *tokenBucket) refresh(now uint64) {
	if now > b.lastRefresh {
		b.tokens += float64(now-b.lastRefresh) * b.perCycle
		if b.tokens > b.maxTokens {
			b.tokens = b.maxTokens
		}
		b.lastRefresh = now
	}
}

// ServiceCycles implements Engine with the bucket's last-known state; the
// tile uses the precise ServiceCyclesAt instead.
func (e *RateLimiterEngine) ServiceCycles(msg *packet.Message) uint64 {
	b := e.bucket[msg.Tenant]
	bits := float64(msg.WireLen() * 8)
	if b == nil || b.tokens >= bits {
		return 1
	}
	return 1 + uint64((bits-b.tokens)/b.perCycle)
}

// ServiceCyclesAt implements TimedEngine: refresh the tenant's bucket,
// classify, and quote the shaping delay. A conforming message passes in
// one cycle; a non-conforming one occupies the engine until its tokens
// accumulate (one shaping queue; per-tenant fan-out would use one engine
// instance per shaping class).
func (e *RateLimiterEngine) ServiceCyclesAt(ctx *Ctx, msg *packet.Message) uint64 {
	b := e.bucketFor(msg.Tenant, ctx.Now)
	if b == nil {
		e.conformed++
		return 1
	}
	bits := float64(msg.WireLen() * 8)
	if b.tokens >= bits {
		e.conformed++
		return 1
	}
	e.delayed++
	return 1 + uint64((bits-b.tokens)/b.perCycle)
}

// Process implements Engine: charge the bucket (refreshed to the end of
// the shaping wait, so the accrued tokens cover the shortfall) and
// forward.
func (e *RateLimiterEngine) Process(ctx *Ctx, msg *packet.Message) []Out {
	if b := e.bucketFor(msg.Tenant, ctx.Now); b != nil {
		b.tokens -= float64(msg.WireLen() * 8)
		if b.tokens < 0 {
			b.tokens = 0
		}
	}
	return []Out{{Msg: msg}}
}

// Counts returns (messages passed immediately, messages delayed).
func (e *RateLimiterEngine) Counts() (conformed, delayed uint64) {
	return e.conformed, e.delayed
}
