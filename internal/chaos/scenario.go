package chaos

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// Scenario is one randomized soak run: a NIC configuration envelope, a
// workload, and a fault plan. The zero value is not runnable; build one
// with Generate or ParseScenario.
type Scenario struct {
	// Seed drives the workload streams and the NIC's internal RNG.
	Seed uint64
	// Cycles is the run horizon.
	Cycles uint64
	// Tenants is the number of weighted tenants (1..3); tenant IDs are
	// 1..Tenants, split across the two Ethernet ports.
	Tenants int
	// Requests is the bounded per-tenant request count.
	Requests uint64
	// QueueCap is each tile's scheduling-queue capacity.
	QueueCap int
	// Replicas is the total IPSec instance count (1 = primary only).
	Replicas int
	// Workers is the kernel Eval worker-pool size (0 = sequential).
	Workers int
	// FastForward, NoFlowCache, and HeapSchedQueue are the ablation knobs;
	// results must be invariant-clean under any combination.
	FastForward    bool
	NoFlowCache    bool
	HeapSchedQueue bool
	// TenantScoped declares a tenant fault domain on the KVS cache engine
	// (tenant 1 only), so cache faults exercise the tenant-scoped failover
	// path (RewriteEngineTenant) instead of whole-engine rewrites.
	TenantScoped bool
	// Plant arms the deliberately planted flow-cache invalidation-skip bug
	// (rmt.Program.PlantSkipTenantInvalidate) — the harness's self-test:
	// a chaos run over planted scenarios must catch and shrink it.
	Plant bool
	// Fleet is the rack size: 0 (or 1) soaks a single NIC; >= 2 runs the
	// scenario as a multi-NIC fleet joined by the modeled ToR, with tenant
	// t homed on NIC (t-1)%Fleet and its clients attached to NIC t%Fleet,
	// so every tenant's traffic crosses the rack. Generate keeps this 0;
	// fleet scenarios are written explicitly (tests, replay files).
	Fleet int
	// TorLatency is the fleet's inter-NIC one-way latency in cycles (0
	// means the fleet default).
	TorLatency uint64
	// Shards spreads fleet NICs across goroutines; results are identical
	// for any value.
	Shards int
	// MigrateTenant schedules one tenant re-homing at MigrateCycle to NIC
	// MigrateTo (0 = no migration; fleet mode only).
	MigrateTenant int
	MigrateCycle  uint64
	MigrateTo     int
	// Plan is the fault schedule.
	Plan *fault.Plan
}

// Generate builds the scenario for a seed, deterministically: same seed
// and horizon, same scenario, on any platform.
func Generate(seed, cycles uint64) Scenario {
	if cycles < 2000 {
		panic("chaos: horizon too short for fault schedules and detection windows")
	}
	rng := sim.NewRNG(seed ^ 0x00c4_a05e_77a0_5e77)
	// Per-tenant request counts that keep traffic flowing for most of the
	// horizon (a 5 Gbps stream injects roughly every 65 cycles), so faults
	// landing anywhere in the schedule meet live load — and so do the
	// steering rewrites they trigger.
	base := cycles / 100
	s := Scenario{
		Seed:           seed,
		Cycles:         cycles,
		Tenants:        1 + rng.Intn(3),
		Requests:       base + uint64(rng.Intn(int(base))),
		QueueCap:       []int{64, 128, 256}[rng.Intn(3)],
		Replicas:       1 + rng.Intn(2),
		Workers:        []int{0, 2, 4}[rng.Intn(3)],
		FastForward:    rng.Bool(0.3),
		NoFlowCache:    rng.Bool(0.2),
		HeapSchedQueue: rng.Bool(0.2),
		TenantScoped:   rng.Bool(0.5),
	}
	tenants := make([]uint16, s.Tenants)
	for i := range tenants {
		tenants[i] = uint16(i + 1)
	}
	mesh := core.DefaultConfig().Mesh
	s.Plan = fault.RandomPlan(seed, fault.PlanSpec{
		Horizon:    cycles,
		Engines:    []packet.Addr{core.AddrIPSec, core.AddrKVSCache},
		MeshW:      mesh.Width,
		MeshH:      mesh.Height,
		Tenants:    tenants,
		MaxEvents:  4,
		AllowSever: rng.Bool(0.25),
	})
	return s
}

// String serializes the scenario in its replayable text format; a file
// holding it replays with `chaos -replay <file>`. ParseScenario is the
// exact inverse.
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# panic chaos scenario (replay: chaos -replay <file>)\n")
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	fmt.Fprintf(&b, "cycles %d\n", s.Cycles)
	fmt.Fprintf(&b, "tenants %d\n", s.Tenants)
	fmt.Fprintf(&b, "requests %d\n", s.Requests)
	fmt.Fprintf(&b, "queuecap %d\n", s.QueueCap)
	fmt.Fprintf(&b, "replicas %d\n", s.Replicas)
	fmt.Fprintf(&b, "workers %d\n", s.Workers)
	fmt.Fprintf(&b, "fastforward %v\n", s.FastForward)
	fmt.Fprintf(&b, "noflowcache %v\n", s.NoFlowCache)
	fmt.Fprintf(&b, "heapq %v\n", s.HeapSchedQueue)
	fmt.Fprintf(&b, "tenantscoped %v\n", s.TenantScoped)
	fmt.Fprintf(&b, "plant %v\n", s.Plant)
	fmt.Fprintf(&b, "fleet %d\n", s.Fleet)
	fmt.Fprintf(&b, "torlatency %d\n", s.TorLatency)
	fmt.Fprintf(&b, "shards %d\n", s.Shards)
	fmt.Fprintf(&b, "migratetenant %d\n", s.MigrateTenant)
	fmt.Fprintf(&b, "migratecycle %d\n", s.MigrateCycle)
	fmt.Fprintf(&b, "migrateto %d\n", s.MigrateTo)
	b.WriteString("plan:\n")
	if s.Plan != nil {
		b.WriteString(s.Plan.String())
	}
	return b.String()
}

// ParseScenario reads the text scenario format: `key value` lines, then a
// `plan:` marker, then fault-plan lines (see fault.ParsePlan). Engine
// names from core.EngineAddrs resolve in the plan section. Errors carry
// the offending 1-based line number.
func ParseScenario(r io.Reader) (Scenario, error) {
	var s Scenario
	sc := bufio.NewScanner(r)
	lineNo := 0
	var planText strings.Builder
	planStart := 0
	inPlan := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if inPlan {
			planText.WriteString(line + "\n")
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "plan:" {
			inPlan = true
			planStart = lineNo
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return s, fmt.Errorf("chaos: line %d: want %q, got %q", lineNo, "key value", line)
		}
		if err := s.setField(f[0], f[1]); err != nil {
			return s, fmt.Errorf("chaos: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return s, fmt.Errorf("chaos: line %d: %v", lineNo, err)
	}
	plan, err := fault.ParsePlan(strings.NewReader(planText.String()), core.EngineAddrs())
	if err != nil {
		var pe *fault.ParseError
		if errors.As(err, &pe) {
			// Re-base the plan-section line number onto the scenario file.
			return s, fmt.Errorf("chaos: line %d: %q: %v", planStart+pe.Line, pe.Input, pe.Unwrap())
		}
		return s, err
	}
	s.Plan = plan
	if err := s.validate(); err != nil {
		return s, err
	}
	return s, nil
}

func (s *Scenario) setField(key, val string) error {
	u64 := func(dst *uint64) error {
		v, err := strconv.ParseUint(val, 10, 64)
		*dst = v
		return err
	}
	i := func(dst *int) error {
		v, err := strconv.Atoi(val)
		*dst = v
		return err
	}
	b := func(dst *bool) error {
		v, err := strconv.ParseBool(val)
		*dst = v
		return err
	}
	var err error
	switch key {
	case "seed":
		err = u64(&s.Seed)
	case "cycles":
		err = u64(&s.Cycles)
	case "tenants":
		err = i(&s.Tenants)
	case "requests":
		err = u64(&s.Requests)
	case "queuecap":
		err = i(&s.QueueCap)
	case "replicas":
		err = i(&s.Replicas)
	case "workers":
		err = i(&s.Workers)
	case "fastforward":
		err = b(&s.FastForward)
	case "noflowcache":
		err = b(&s.NoFlowCache)
	case "heapq":
		err = b(&s.HeapSchedQueue)
	case "tenantscoped":
		err = b(&s.TenantScoped)
	case "plant":
		err = b(&s.Plant)
	case "fleet":
		err = i(&s.Fleet)
	case "torlatency":
		err = u64(&s.TorLatency)
	case "shards":
		err = i(&s.Shards)
	case "migratetenant":
		err = i(&s.MigrateTenant)
	case "migratecycle":
		err = u64(&s.MigrateCycle)
	case "migrateto":
		err = i(&s.MigrateTo)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	if err != nil {
		return fmt.Errorf("bad %s value %q", key, val)
	}
	return nil
}

func (s Scenario) validate() error {
	switch {
	case s.Cycles < 1000:
		return fmt.Errorf("chaos: cycles %d too short (want >= 1000)", s.Cycles)
	case s.Tenants < 1 || s.Tenants > 8:
		return fmt.Errorf("chaos: tenants %d out of range [1,8]", s.Tenants)
	case s.Requests < 1:
		return fmt.Errorf("chaos: no requests")
	case s.QueueCap < 1:
		return fmt.Errorf("chaos: queuecap %d (want >= 1)", s.QueueCap)
	case s.Replicas < 1 || s.Replicas > 5:
		return fmt.Errorf("chaos: replicas %d out of range [1,5]", s.Replicas)
	case s.Workers < 0:
		return fmt.Errorf("chaos: negative workers")
	case s.Fleet < 0 || s.Fleet > 8:
		return fmt.Errorf("chaos: fleet %d out of range [0,8]", s.Fleet)
	case s.Shards < 0:
		return fmt.Errorf("chaos: negative shards")
	case s.Fleet < 2 && (s.TorLatency != 0 || s.Shards != 0 || s.MigrateTenant != 0):
		return fmt.Errorf("chaos: fleet knobs (torlatency/shards/migrate*) need fleet >= 2")
	case s.MigrateTenant < 0 || s.MigrateTenant > s.Tenants:
		return fmt.Errorf("chaos: migratetenant %d out of range [0,%d]", s.MigrateTenant, s.Tenants)
	case s.MigrateTenant > 0 && (s.MigrateTo < 0 || s.MigrateTo >= s.Fleet):
		return fmt.Errorf("chaos: migrateto %d out of range [0,%d)", s.MigrateTo, s.Fleet)
	case s.MigrateTenant == 0 && (s.MigrateCycle != 0 || s.MigrateTo != 0):
		return fmt.Errorf("chaos: migratecycle/migrateto set without migratetenant")
	}
	return nil
}
