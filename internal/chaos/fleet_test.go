package chaos

import (
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/fault"
)

// fleetScenario is the canonical fleet soak fixture: a 3-NIC rack where
// every tenant's clients sit one NIC over from its home, a wedge fault on
// NIC 0's KVS cache, and a mid-run migration of tenant 1 onto its client
// NIC — the cross-NIC failover path.
func fleetScenario() Scenario {
	s := Generate(3, 30_000)
	s.Fleet = 3
	s.TorLatency = 64
	s.Shards = 3
	s.Tenants = 3
	s.Workers = 0
	s.MigrateTenant = 1
	s.MigrateCycle = 12_000
	s.MigrateTo = 1 // tenant 1's client NIC: traffic goes NIC-local after the move
	s.Plan = (&fault.Plan{}).Add(fault.Event{At: 6_000, Kind: fault.Wedge, Engine: 35, For: 4_000})
	return s
}

// TestFleetScenarioRoundTrip checks the fleet knobs survive the replay
// file format exactly — a shrunk fleet reproducer must replay as itself.
func TestFleetScenarioRoundTrip(t *testing.T) {
	s := fleetScenario()
	got, err := ParseScenario(strings.NewReader(s.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, s.String())
	}
	if got.String() != s.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", s.String(), got.String())
	}
}

// TestFleetScenarioValidation covers the fleet knob error paths.
func TestFleetScenarioValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Scenario){
		"fleet too big":            func(s *Scenario) { s.Fleet = 9 },
		"knobs without fleet":      func(s *Scenario) { s.Fleet = 0; s.Shards = 2 },
		"migrate unknown tenant":   func(s *Scenario) { s.MigrateTenant = s.Tenants + 1 },
		"migrate to outside rack":  func(s *Scenario) { s.MigrateTo = s.Fleet },
		"migrate cycle without id": func(s *Scenario) { s.MigrateTenant = 0; s.MigrateTo = 0 },
	} {
		s := fleetScenario()
		mutate(&s)
		if err := s.validate(); err == nil {
			t.Errorf("%s: validation accepted %+v", name, s)
		}
	}
	s := fleetScenario()
	if err := s.validate(); err != nil {
		t.Errorf("canonical fleet scenario rejected: %v", err)
	}
}

// TestFleetMigrationFailover is the cross-NIC failover soak: while NIC
// 0's KVS cache is wedged by the fault plan, tenant 1 is re-homed from
// NIC 0 to its client NIC — and the run must stay invariant-clean, with
// the migration recorded and the tenant served at its new home. It reuses
// the scenario plumbing end to end (render → reparse → run), the same
// path a replay file takes.
func TestFleetMigrationFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak runs are slow")
	}
	s, err := ParseScenario(strings.NewReader(fleetScenario().String()))
	if err != nil {
		t.Fatal(err)
	}
	rack := buildFleet(s)
	defer rack.Close()
	rack.Run(s.Cycles)

	if vs := rack.Violations(); len(vs) > 0 {
		t.Fatalf("invariant violations: %v", vs)
	}
	if home, ok := rack.Home(1); !ok || home != s.MigrateTo {
		t.Errorf("tenant 1 home = %d, %v; want %d", home, ok, s.MigrateTo)
	}
	if len(rack.Oplog) != 1 || !strings.Contains(rack.Oplog[0], "migrate tenant=1") {
		t.Errorf("oplog = %q, want one tenant-1 migration entry", rack.Oplog)
	}
	// The new home (NIC 1) serves tenant 1 locally after the move: its
	// wire deliveries include tenant 1's responses.
	if rack.NICs[1].WireLat.Count == 0 {
		t.Error("migration target NIC delivered nothing")
	}
	if rack.TorStats().Forwarded == 0 {
		t.Error("no cross-NIC traffic despite cross-homed tenants")
	}
}

// TestFleetRunClean runs the fleet scenario through the public Run entry
// point (panic recovery and all), as cmd/chaos would.
func TestFleetRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak runs are slow")
	}
	if f := Run(fleetScenario()); f != nil {
		t.Fatalf("fleet scenario failed: %s", f)
	}
}
