package chaos

import (
	"strings"
	"testing"
)

// FuzzScenarioRoundTrip is the render→reparse fixpoint gate for the
// replay file format: any input ParseScenario accepts must render to a
// string that reparses to the very same rendering. A knob added to the
// Scenario struct but missed in String, setField, or validate breaks the
// fixpoint and this target finds it — that is exactly how the fleet knobs
// (fleet/torlatency/shards/migrate*) are kept honest.
func FuzzScenarioRoundTrip(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(Generate(seed, 20_000).String())
	}
	fleetSeed := Generate(5, 30_000)
	fleetSeed.Fleet = 4
	fleetSeed.TorLatency = 96
	fleetSeed.Shards = 2
	fleetSeed.Tenants = 2
	fleetSeed.MigrateTenant = 1
	fleetSeed.MigrateCycle = 9_000
	fleetSeed.MigrateTo = 3
	f.Add(fleetSeed.String())
	f.Add("seed 1\ncycles 20000\ntenants 1\nrequests 10\nqueuecap 64\nreplicas 1\nworkers 0\nplan:\n")
	f.Add("seed 1\ncycles 20000\ntenants 2\nrequests 10\nqueuecap 64\nreplicas 1\nworkers 0\n" +
		"fleet 2\ntorlatency 32\nshards 2\nmigratetenant 2\nmigratecycle 5000\nmigrateto 1\nplan:\n")

	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseScenario(strings.NewReader(in))
		if err != nil {
			t.Skip() // malformed input: rejection is the correct outcome
		}
		rendered := s.String()
		got, err := ParseScenario(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("accepted scenario renders unparseable: %v\ninput:\n%s\nrendered:\n%s", err, in, rendered)
		}
		if again := got.String(); again != rendered {
			t.Fatalf("render→reparse not a fixpoint:\nfirst:\n%s\nsecond:\n%s", rendered, again)
		}
	})
}
