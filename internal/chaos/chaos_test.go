package chaos

import (
	"strings"
	"testing"
)

// TestGenerateDeterministic checks the seed contract: same seed and
// horizon, same scenario, rendered byte-identically.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := Generate(seed, 20_000)
		b := Generate(seed, 20_000)
		if a.String() != b.String() {
			t.Fatalf("seed %d: generation not deterministic:\n%s\nvs\n%s", seed, a.String(), b.String())
		}
		if err := a.validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
	}
}

// TestScenarioRoundTrip checks that the replay file format is the exact
// inverse of String for generated scenarios — what a shrunk reproducer
// depends on.
func TestScenarioRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := Generate(seed, 20_000)
		s.Plant = seed%2 == 0
		got, err := ParseScenario(strings.NewReader(s.String()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, s.String())
		}
		if got.String() != s.String() {
			t.Fatalf("seed %d: round trip mismatch:\n%s\nvs\n%s", seed, s.String(), got.String())
		}
	}
}

// TestParseScenarioErrors checks malformed files are rejected with line
// numbers, including plan-section lines re-based onto the file.
func TestParseScenarioErrors(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"bogus 1\n", "line 1"},
		{"seed x\n", "bad seed value"},
		{"seed 1\ncycles 20000\ntenants 1\nrequests 10\nqueuecap 64\nreplicas 1\nworkers 0\nplan:\nat 5 explode 34\n", "line 9"},
		{"seed 1\ncycles 10\nplan:\n", "cycles 10 too short"},
	} {
		_, err := ParseScenario(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("input %q: error = %v, want mention of %q", tc.in, err, tc.want)
		}
	}
}

// TestRunCleanSeeds is the in-tree slice of the nightly soak: a handful of
// generated scenarios must hold every invariant. (cmd/chaos runs the wide
// version; CI's nightly job runs 500 seeds.)
func TestRunCleanSeeds(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		s := Generate(seed, 20_000)
		if f := Run(s); f != nil {
			t.Errorf("seed %d: %s\nscenario:\n%s", seed, f, s.String())
		}
	}
}

// TestPlantedBugCaughtAndShrunk is the harness's acceptance self-test: the
// deliberately planted flow-cache invalidation-skip bug (skipping
// invalidation on RewriteEngineTenant) must be caught by the coherence
// invariant and shrunk to a reproducer whose fault plan is at most 5
// lines. Seed 16 is the first catching seed; the shrink must also strip
// the incidental scenario dimensions.
func TestPlantedBugCaughtAndShrunk(t *testing.T) {
	s := Generate(16, 20_000)
	s.Plant = true
	fail := Run(s)
	if fail == nil {
		t.Fatalf("planted bug not caught:\n%s", s.String())
	}
	if fail.Check != "flow-cache-coherence" {
		t.Fatalf("caught by %q, want flow-cache-coherence (%v)", fail.Check, fail.Err)
	}

	shrunk, runs := Shrink(s, fail, 40)
	if runs > 40 {
		t.Errorf("shrinker overspent its budget: %d runs", runs)
	}
	if got := len(shrunk.Plan.Events); got > 5 {
		t.Errorf("shrunk plan has %d events, want <= 5:\n%s", got, shrunk.Plan.String())
	}
	// The reproducer still fails the same check...
	again := Run(shrunk)
	if again == nil || again.Check != fail.Check {
		t.Fatalf("shrunk scenario does not reproduce: %v\n%s", again, shrunk.String())
	}
	// ...and survives the file round trip, so the artifact CI uploads
	// replays as-is.
	rt, err := ParseScenario(strings.NewReader(shrunk.String()))
	if err != nil {
		t.Fatalf("reproducer does not re-parse: %v\n%s", err, shrunk.String())
	}
	if f := Run(rt); f == nil || f.Check != fail.Check {
		t.Fatalf("re-parsed reproducer does not reproduce: %v", f)
	}
}

// TestRunRecoversPanics checks that a crashing scenario surfaces as a
// Failure (so the shrinker can minimize crashes, not just violations)
// rather than taking down the harness.
func TestRunRecoversPanics(t *testing.T) {
	s := Generate(0, 20_000)
	s.Replicas = 9 // NewNIC rejects > 5 with a panic
	if err := s.validate(); err == nil {
		t.Fatal("validate accepted 9 replicas")
	}
	f := Run(s)
	if f == nil || f.Check != "panic" {
		t.Fatalf("crashing scenario produced %v, want a panic Failure", f)
	}
}
