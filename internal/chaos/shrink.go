package chaos

import "github.com/panic-nic/panic/internal/fault"

// Shrink minimizes a failing scenario to a smaller one that still fails
// the same invariant check, by re-running candidates: drop fault events
// one at a time, shorten the horizon, reduce tenants and requests, and
// strip ablation knobs. budget caps the number of candidate runs (each is
// a full simulation); the original failure's check name anchors the search
// so shrinking never wanders onto a different bug. It returns the minimal
// scenario and the number of runs spent.
func Shrink(s Scenario, orig *Failure, budget int) (Scenario, int) {
	runs := 0
	fails := func(c Scenario) bool {
		if runs >= budget {
			return false
		}
		runs++
		f := Run(c)
		return f != nil && f.Check == orig.Check
	}

	// Pass 1: drop fault events, greedily, to a fixpoint. Restart after
	// every successful removal so later events are retried against the
	// smaller plan.
	for {
		removed := false
		for i := 0; i < len(s.Plan.Events); i++ {
			c := s
			c.Plan = &fault.Plan{}
			c.Plan.Events = append(append([]fault.Event{}, s.Plan.Events[:i]...), s.Plan.Events[i+1:]...)
			if fails(c) {
				s = c
				removed = true
				break
			}
		}
		if !removed {
			break
		}
	}

	// Pass 2: shorten the horizon by halving while the failure survives.
	for s.Cycles/2 >= 2000 {
		c := s
		c.Cycles = s.Cycles / 2
		if !fails(c) {
			break
		}
		s = c
	}

	// Pass 3: reduce tenants — try collapsing to one tenant first, then
	// decrementing.
	for s.Tenants > 1 {
		c := s
		c.Tenants = 1
		if fails(c) {
			s = c
			break
		}
		c.Tenants = s.Tenants - 1
		if !fails(c) {
			break
		}
		s = c
	}

	// Pass 4: reduce the workload by halving the request count.
	for s.Requests/2 >= 10 {
		c := s
		c.Requests = s.Requests / 2
		if !fails(c) {
			break
		}
		s = c
	}

	// Pass 5: strip ablation knobs back to the boring defaults so the
	// reproducer is as vanilla as the bug allows.
	knobs := []func(*Scenario){
		func(c *Scenario) { c.Workers = 0 },
		func(c *Scenario) { c.FastForward = false },
		func(c *Scenario) { c.HeapSchedQueue = false },
		func(c *Scenario) { c.Replicas = 1 },
	}
	for _, strip := range knobs {
		c := s
		strip(&c)
		if fails(c) {
			s = c
		}
	}
	return s, runs
}
