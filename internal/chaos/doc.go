// Package chaos is the seeded chaos/soak harness: it composes
// random-but-deterministic fault plans, tenant mixes, workloads, and
// ablation knobs (flow cache, queue backing, workers, fast-forward) into
// short scenarios, runs each with the runtime invariant monitor armed
// (internal/invariant), and on a violation shrinks the scenario to a
// minimal reproducer serialized as a replayable text file.
//
// The seed is the whole story: Generate(seed, cycles) always builds the
// same scenario, and a scenario file replays bit-identically, so every
// failure the nightly soak finds is a complete reproducer. Shrink
// preserves that property — each candidate it tries is itself a full
// scenario, re-run from scratch, and the minimal failing scenario it
// returns reproduces the original violation class, not merely some
// failure.
//
// Observability follows the repository's determinism contract: a run's
// outcome is a Failure value (seed, cycle, violated invariants, the
// scenario text) rather than a log stream, so harnesses decide what to
// print and CI output is stable across kernel modes. cmd/chaos renders
// Failures as progress lines plus a reproducer file per shrunk failure;
// replaying that file with -replay re-arms the same monitor and must
// reproduce the same violation at the same cycle. See ROBUSTNESS.md for
// the soak methodology and the invariant catalog the monitor enforces.
package chaos
