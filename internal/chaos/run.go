package chaos

import (
	"fmt"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/fleet"
	"github.com/panic-nic/panic/internal/invariant"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// Failure is what a scenario run produced when it was not clean: the
// first violated invariant check (or "panic"), and the detail.
type Failure struct {
	// Check is the name of the first violated invariant check, or "panic"
	// when the run crashed outright.
	Check string
	// Err summarizes all violations (or wraps the recovered panic value).
	Err error
}

func (f *Failure) String() string {
	return fmt.Sprintf("%s: %v", f.Check, f.Err)
}

// Run executes one scenario with the invariant monitor armed and returns
// nil when it held, or the Failure. A panicking run (a bug class the
// invariants themselves cannot express) is recovered and reported as a
// Failure too, so the shrinker works on crashes as well as violations.
func Run(s Scenario) (f *Failure) {
	defer func() {
		if r := recover(); r != nil {
			f = &Failure{Check: "panic", Err: fmt.Errorf("run panicked: %v", r)}
		}
	}()
	if s.Fleet >= 2 {
		return runFleet(s)
	}
	nic := buildNIC(s)
	defer nic.Close()
	nic.Run(s.Cycles)
	// One final unthrottled pass so end-of-run state is audited even when
	// the horizon is not a multiple of the sampling interval.
	nic.Invar.RunNow(nic.Now())
	if err := nic.Invar.Err(); err != nil {
		return &Failure{Check: nic.Invar.Violations()[0].Check, Err: err}
	}
	return nil
}

// runFleet soaks the scenario as a rack: s.Fleet NICs, every tenant's
// clients one NIC over from its home so all traffic crosses the ToR, the
// fault plan armed on NIC 0, and both the per-NIC and the fleet-level
// (ToR conservation) invariant monitors live. Called under Run's recover.
func runFleet(s Scenario) *Failure {
	rack := buildFleet(s)
	defer rack.Close()
	rack.Run(s.Cycles)
	if vs := rack.Violations(); len(vs) > 0 {
		return &Failure{
			Check: vs[0].Check,
			Err:   fmt.Errorf("%d fleet invariant violation(s); first: %v", len(vs), vs[0]),
		}
	}
	return nil
}

// buildFleet assembles the rack a fleet scenario describes. The per-NIC
// template reuses the same knobs buildNIC maps, so a fleet scenario is
// the single-NIC scenario multiplied — plus placement and migration.
func buildFleet(s Scenario) *fleet.Fleet {
	if err := s.validate(); err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.QueueCap = s.QueueCap
	cfg.Workers = s.Workers
	cfg.FastForward = s.FastForward
	cfg.NoFlowCache = s.NoFlowCache
	cfg.HeapSchedQueue = s.HeapSchedQueue
	cfg.IPSecReplicas = s.Replicas
	cfg.Health = core.DefaultHealthConfig()
	if s.TenantScoped {
		cfg.Health.TenantDomains = map[packet.Addr][]uint16{core.AddrKVSCache: {1}}
	}
	cfg.TenantWeights = make(map[uint16]uint64, s.Tenants)
	for t := 1; t <= s.Tenants; t++ {
		cfg.TenantWeights[uint16(t)] = uint64(1 + (t % 3))
	}

	specs := make([]fleet.TenantSpec, 0, s.Tenants)
	for t := 1; t <= s.Tenants; t++ {
		specs = append(specs, fleet.TenantSpec{
			Tenant: uint16(t),
			Home:   (t - 1) % s.Fleet,
			Client: t % s.Fleet,
			Class:  packet.ClassLatency,
			// Rack transit is plaintext, so unlike buildNIC no tenant
			// carries WAN share here.
			RateGbps: 5, Keys: 64, GetRatio: 0.9,
			ValueBytes: 256, Count: s.Requests,
			Seed: s.Seed*1000 + uint64(t),
		})
	}
	fc := fleet.Config{
		NICs:       s.Fleet,
		TorLatency: s.TorLatency,
		Shards:     s.Shards,
		NIC:        cfg,
		Tenants:    specs,
		Invariants: &invariant.Config{},
	}
	if s.Plan != nil {
		fc.FaultPlans = map[int]*fault.Plan{0: s.Plan}
	}
	if s.MigrateTenant > 0 {
		fc.Migrations = []fleet.Migration{{
			Cycle: s.MigrateCycle, Tenant: uint16(s.MigrateTenant), To: s.MigrateTo,
		}}
	}
	rack := fleet.New(fc)
	if s.Plant {
		rack.NICs[0].Program.PlantSkipTenantInvalidate()
	}
	return rack
}

// buildNIC assembles the NIC a scenario describes. Kept separate from Run
// so tests can inspect the assembly.
func buildNIC(s Scenario) *core.NIC {
	if err := s.validate(); err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.QueueCap = s.QueueCap
	cfg.Workers = s.Workers
	cfg.FastForward = s.FastForward
	cfg.NoFlowCache = s.NoFlowCache
	cfg.HeapSchedQueue = s.HeapSchedQueue
	cfg.IPSecReplicas = s.Replicas
	cfg.Health = core.DefaultHealthConfig()
	if s.TenantScoped {
		cfg.Health.TenantDomains = map[packet.Addr][]uint16{core.AddrKVSCache: {1}}
	}
	cfg.TenantWeights = make(map[uint16]uint64, s.Tenants)
	for t := 1; t <= s.Tenants; t++ {
		cfg.TenantWeights[uint16(t)] = uint64(1 + (t % 3))
	}
	cfg.Invariants = &invariant.Config{}
	cfg.FaultPlan = s.Plan

	// One bounded KVS stream per tenant, split across the two ports.
	// Tenant 1 carries WAN (encrypted) traffic so crypto faults bite; the
	// rest stay LAN so cache and fabric faults dominate their fate.
	perPort := make([][]workload.Source, cfg.Ports)
	for t := 1; t <= s.Tenants; t++ {
		wan := 0.0
		if t == 1 {
			wan = 0.5
		}
		src := workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: uint16(t), Class: packet.ClassLatency,
			RateGbps: 5, FreqHz: cfg.FreqHz,
			Keys: 64, GetRatio: 0.9, WANShare: wan,
			ValueBytes: 256, Count: s.Requests,
			Seed: s.Seed*1000 + uint64(t),
		})
		p := (t - 1) % cfg.Ports
		perPort[p] = append(perPort[p], src)
	}
	sources := make([]engine.Source, cfg.Ports)
	for p, srcs := range perPort {
		switch len(srcs) {
		case 0:
		case 1:
			sources[p] = srcs[0].(engine.Source)
		default:
			sources[p] = workload.NewMerge(srcs...)
		}
	}
	nic := core.NewNIC(cfg, sources)
	if s.Plant {
		nic.Program.PlantSkipTenantInvalidate()
	}
	return nic
}
