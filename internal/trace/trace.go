// Package trace is the simulator's opt-in, deterministic, per-message
// tracing subsystem: the observability layer over the cycle-level kernel.
//
// Every packet.Message carries a TraceID, stamped at ingress by the
// Ethernet MAC and propagated onto every derived message (DMA completions,
// host responses, LSO segments), so one wire request and everything it
// spawns share an identity. Instrumented points — RMT pipeline stages,
// mesh router hops and ejections, engine scheduling-queue enqueue/dequeue
// (with depth and slack), service occupancy, fabric injections, terminal
// deliveries, drops, and control-plane failover actions — emit
// cycle-stamped Span records describing the message's journey.
//
// # Determinism contract
//
// The kernel may run its Eval phase on a worker pool (sim.Kernel
// SetWorkers), so instrumented components cannot write into one shared
// stream without racing. Instead, every emitting component owns a private
// Buffer (one per tile, one per mesh router, one per sequential-phase
// group such as the staged terminal sinks or the control plane), obtained
// from the Tracer at assembly time. During a cycle each component appends
// spans only to its own buffer — single writer, program order. The Tracer
// itself is a sim.Committer registered LAST on the kernel: at the Commit
// phase, after every staged sink has flushed, it drains all buffers into
// the master span stream in buffer-creation order. Creation order is fixed
// by NIC assembly, so the resulting stream is byte-identical across
// sequential, 2-worker, and N-worker kernels, with idle-cycle fast-forward
// on or off (skipped cycles run no phases and can emit nothing — a
// component with a non-empty buffer is never quiescent, because it emitted
// while doing work).
//
// # Cost contract
//
// Tracing disabled (a nil *Buffer on the component, or a message whose
// TraceID fails the sampling filter) adds zero allocations and a single
// predictable branch per instrumented point; internal/engine's
// zero-allocation guard test enforces this. Enabled, a span is one struct
// append into a reused buffer — no formatting, no maps, no time.Now.
//
// # Analysis
//
// On top of the raw stream, Set provides a Chrome trace_event / Perfetto
// JSON exporter (WriteChrome/ReadChrome), per-stage and end-to-end latency
// breakdowns backed by stats histograms, a collapsed-stack flamegraph
// rendering, and a per-message timeline. cmd/tracetool filters and
// aggregates exported files; OBSERVABILITY.md documents the schema and
// workflow.
package trace

import (
	"fmt"
	"sort"
)

// Kind classifies a span: what happened to the message at this point.
type Kind uint8

// Span kinds. Instant kinds (Gen, Enq, Inject, Hop, Deliver, Drop,
// Control) have Start == End; the rest are closed cycle intervals.
const (
	// KindGen marks a message entering the simulation at a generating
	// engine (MAC RX, TX-DMA response fetch). B = wire length in bytes.
	KindGen Kind = iota
	// KindEnq marks a scheduling-queue push that was accepted.
	// A = rank, B = queue depth after the push.
	KindEnq
	// KindWait spans the scheduling-queue residency, enqueue to dequeue.
	// A = queue depth before the pop, B = chain slack at dequeue.
	KindWait
	// KindService spans engine service occupancy, start to completion.
	KindService
	// KindRMTParse spans the RMT pipeline's parser stage. A = 1 when the
	// pipeline's flow cache replayed the verdict instead of walking the
	// tables (timing is identical; this flags the fast path).
	KindRMTParse
	// KindRMTStage spans one match+action stage. A = stage index.
	KindRMTStage
	// KindRMTDeparse spans the RMT deparser stage.
	KindRMTDeparse
	// KindRMTStall spans the extra cycles a message sat frozen in the RMT
	// pipeline because the downstream fabric backpressured it.
	KindRMTStall
	// KindInject marks a fabric injection. A = destination node,
	// B = flit count.
	KindInject
	// KindHop marks a head flit forwarded by a mesh router toward a
	// neighbor. A = output port (see PortName), B = destination node.
	KindHop
	// KindEject spans fabric transit: injection enqueue to ejection at
	// the destination router.
	KindEject
	// KindDeliver marks a terminal sink delivery (host memory or wire).
	// B = wire length in bytes. The cycle may lie in the future relative
	// to emission: DMA writes deliver at now + host-memory latency.
	KindDeliver
	// KindDrop marks a message leaving the simulation involuntarily.
	// A = reason code (see DropReason).
	KindDrop
	// KindControl marks a control-plane event (fault injected/lifted,
	// failure detected, rerouted, punted, drained, recovered,
	// reintegrated). Msg is 0; Loc is the event code; A = engine address.
	KindControl
	numKinds
)

var kindNames = [numKinds]string{
	"gen", "enqueue", "queue-wait", "service",
	"rmt-parse", "rmt-stage", "rmt-deparse", "rmt-stall",
	"inject", "hop", "mesh-transit", "deliver", "drop", "control",
}

// String returns the kind's stable name (used in exports).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// kindByName is the reverse of String, for ReadChrome.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, n := range kindNames {
		m[n] = Kind(k)
	}
	return m
}()

// Instant reports whether the kind is a point event (Start == End).
func (k Kind) Instant() bool {
	switch k {
	case KindGen, KindEnq, KindInject, KindHop, KindDeliver, KindDrop, KindControl:
		return true
	}
	return false
}

// Drop reason codes carried in a KindDrop span's A field.
const (
	// DropQueueShed: evicted by a scheduling queue under the
	// drop-lowest-priority policy.
	DropQueueShed = iota
	// DropFault: discarded by an injected every-Nth drop fault.
	DropFault
	// DropCorrupt: discarded by an injected corruption fault (bad
	// checksum detected at the engine front end).
	DropCorrupt
	// DropRMT: dropped by the RMT program or a parse error.
	DropRMT
	// DropDrained: evicted by a control-plane drain-and-reset (the
	// message re-enters the fabric toward the drain target; the drop
	// span marks the eviction, not a loss).
	DropDrained
)

// DropReason names a drop reason code.
func DropReason(code uint64) string {
	switch code {
	case DropQueueShed:
		return "queue-shed"
	case DropFault:
		return "fault-drop"
	case DropCorrupt:
		return "corrupt"
	case DropRMT:
		return "rmt-drop"
	case DropDrained:
		return "drained"
	}
	return fmt.Sprintf("reason-%d", code)
}

// PortName names a mesh router output port carried in a KindHop span's A
// field (internal/noc's port order).
func PortName(port uint64) string {
	switch port {
	case 0:
		return "local"
	case 1:
		return "north"
	case 2:
		return "east"
	case 3:
		return "south"
	case 4:
		return "west"
	}
	return fmt.Sprintf("port-%d", port)
}

// LocKind is the namespace of a span's location.
type LocKind uint8

// Location kinds.
const (
	// LocEngine: Loc is a packet.Addr (a tile or RMT pipeline).
	LocEngine LocKind = iota
	// LocNode: Loc is a noc.NodeID (a mesh router).
	LocNode
	// LocSink: Loc is a terminal sink index (0 = host, 1 = wire).
	LocSink
	// LocControl: Loc is a control-plane event code.
	LocControl
	numLocKinds
)

var locPrefixes = [numLocKinds]string{"engine", "node", "sink", "ctl"}

// Span is one trace record: something happened to message Msg over the
// cycle interval [Start, End] at location (LocKind, Loc). A and B carry
// kind-specific detail (see the Kind constants). The struct is flat and
// pointer-free so buffers of spans cost the allocator nothing to grow and
// nothing to scan.
type Span struct {
	// Msg is the message's TraceID (0 for KindControl).
	Msg uint64
	// Start and End are cycles; Start == End for instant kinds.
	Start, End uint64
	// A and B are kind-specific details.
	A, B uint64
	// Kind classifies the span.
	Kind Kind
	// LocKind and Loc identify where it happened.
	LocKind LocKind
	Loc     uint32
	// Tenant is the message's accounting tenant at emission time (0 when
	// the emitting point has no tenant in hand, e.g. most control spans).
	// Tenant-scoped control-plane events carry the tenant they acted on.
	Tenant uint16
}

// Dur returns the span length in cycles.
func (s Span) Dur() uint64 { return s.End - s.Start }

type locKey struct {
	kind LocKind
	id   uint32
}

// Options parameterizes a Tracer.
type Options struct {
	// FreqHz converts cycles to wall time in exports. 0 means 500 MHz
	// (the paper's operating point).
	FreqHz float64
	// Sample keeps one message in N: a message is traced when
	// TraceID % Sample == 0. 0 or 1 traces everything. Sampling is a
	// pure function of the ID, so the same messages are traced on every
	// run and on every worker count.
	Sample uint64
	// MaxSpans caps the master stream; further spans are counted in
	// Set.Dropped instead of stored (no silent truncation: exports and
	// summaries surface the count). 0 means 2^21 (~118 MB of spans).
	MaxSpans int
	// NIC tags the span stream with a NIC identifier for multi-NIC fleet
	// runs: Chrome exports use it as the process id (pid = NIC+1) and
	// process name, so traces from several NICs load side by side in one
	// Perfetto view. Standalone runs leave it 0 (pid 1, unchanged output).
	NIC int
}

// Tracer owns the master span stream and hands out per-component buffers.
// It implements sim.Committer and must be registered on the kernel AFTER
// every instrumented component and staged sink (core.NewNIC does this), so
// each cycle's Commit drains every buffer filled that cycle.
type Tracer struct {
	set    Set
	sample uint64
	max    int
	bufs   []*Buffer
}

// New builds a Tracer.
func New(o Options) *Tracer {
	if o.FreqHz <= 0 {
		o.FreqHz = 500e6
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 1 << 21
	}
	return &Tracer{
		set:    Set{FreqHz: o.FreqHz, NIC: o.NIC, names: make(map[locKey]string)},
		sample: o.Sample,
		max:    o.MaxSpans,
	}
}

// Want reports whether spans for the given TraceID should be emitted.
// ID 0 (a message never stamped) is never traced. Safe on a nil Tracer.
func (t *Tracer) Want(id uint64) bool {
	if t == nil || id == 0 {
		return false
	}
	return t.sample <= 1 || id%t.sample == 0
}

// Buffer allocates a new per-component span buffer. Call order defines
// drain order, so assembly must create buffers deterministically. name
// labels the buffer for debugging only; span locations are named with
// NameLoc.
func (t *Tracer) Buffer(name string) *Buffer {
	b := &Buffer{tr: t, name: name, spans: make([]Span, 0, 16)}
	t.bufs = append(t.bufs, b)
	return b
}

// NameLoc registers a human-readable name for a span location, used by
// exporters ("eth0", "router(2,3)", "host").
func (t *Tracer) NameLoc(k LocKind, id uint32, name string) {
	t.set.names[locKey{k, id}] = name
}

// Commit implements sim.Committer: drain every buffer into the master
// stream in buffer-creation order.
func (t *Tracer) Commit() {
	for _, b := range t.bufs {
		if len(b.spans) == 0 {
			continue
		}
		take := b.spans
		if room := t.max - len(t.set.Spans); room < len(take) {
			t.set.Dropped += uint64(len(take) - room)
			take = take[:room]
		}
		t.set.Spans = append(t.set.Spans, take...)
		b.spans = b.spans[:0]
	}
}

// Set returns the collected spans. Valid any time; the stream grows until
// MaxSpans.
func (t *Tracer) Set() *Set { return &t.set }

// Snapshot returns a copy of the collected spans that stays stable while
// the simulation keeps running — the on-demand export hook for the serve
// control plane's trace download. The span slice is copied; the location
// name table is shared (it is written only during NIC assembly). Call it
// from the goroutine driving the kernel, between cycles (the serve loop
// does it at its command barrier), never concurrently with Commit.
func (t *Tracer) Snapshot() *Set {
	out := &Set{FreqHz: t.set.FreqHz, Dropped: t.set.Dropped, NIC: t.set.NIC, names: t.set.names}
	out.Spans = append([]Span(nil), t.set.Spans...)
	return out
}

// Buffer is one component's private span staging area. The owning
// component is the only writer during a cycle; the Tracer drains it at
// Commit. All methods are safe on a nil *Buffer (tracing disabled), which
// is how instrumented code avoids any cost when no tracer is attached.
type Buffer struct {
	tr    *Tracer
	name  string
	spans []Span
}

// Want reports whether spans for the TraceID should be emitted here.
func (b *Buffer) Want(id uint64) bool {
	return b != nil && b.tr.Want(id)
}

// Emit appends a span. Callers must gate on Want (Emit on a nil buffer
// panics, by design: an unguarded emission is an instrumentation bug).
func (b *Buffer) Emit(sp Span) { b.spans = append(b.spans, sp) }

// Set is a collection of spans plus the metadata needed to interpret
// them: the clock frequency and the location name table.
type Set struct {
	// FreqHz converts cycles to wall time.
	FreqHz float64
	// Spans is the stream, in commit order.
	Spans []Span
	// Dropped counts spans discarded after MaxSpans filled.
	Dropped uint64
	// NIC is the fleet NIC identifier the stream was recorded on (see
	// Options.NIC); 0 for standalone runs.
	NIC int

	names map[locKey]string
}

// LocName returns the registered name for a location, or a stable
// "engine34"-style fallback.
func (s *Set) LocName(k LocKind, id uint32) string {
	if n, ok := s.names[locKey{k, id}]; ok {
		return n
	}
	prefix := "loc"
	if int(k) < len(locPrefixes) {
		prefix = locPrefixes[k]
	}
	return fmt.Sprintf("%s%d", prefix, id)
}

// setName is ReadChrome's hook to rebuild the name table.
func (s *Set) setName(k LocKind, id uint32, name string) {
	if s.names == nil {
		s.names = make(map[locKey]string)
	}
	s.names[locKey{k, id}] = name
}

// Messages returns the distinct TraceIDs present, ascending.
func (s *Set) Messages() []uint64 {
	seen := make(map[uint64]bool)
	var ids []uint64
	for _, sp := range s.Spans {
		if sp.Msg != 0 && !seen[sp.Msg] {
			seen[sp.Msg] = true
			ids = append(ids, sp.Msg)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Filter returns a new Set holding only spans the predicate keeps,
// sharing the name table and frequency.
func (s *Set) Filter(keep func(Span) bool) *Set {
	out := &Set{FreqHz: s.FreqHz, names: s.names, Dropped: s.Dropped}
	for _, sp := range s.Spans {
		if keep(sp) {
			out.Spans = append(out.Spans, sp)
		}
	}
	return out
}
