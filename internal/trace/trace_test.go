package trace

import (
	"strings"
	"testing"
)

// emit fills a tracer with a small, hand-built two-message journey.
func emit(tr *Tracer) {
	eng := tr.Buffer("eng")
	node := tr.Buffer("node")
	tr.NameLoc(LocEngine, 7, "kvscache")
	tr.NameLoc(LocNode, 3, "router(1,0)")
	tr.NameLoc(LocSink, 1, "wire")
	// Message 10 belongs to tenant 9, message 20 to the default tenant 0:
	// the tenant ID must survive every round trip alongside the other args.
	eng.Emit(Span{Msg: 10, Kind: KindGen, LocKind: LocEngine, Loc: 7, Start: 5, End: 5, B: 64, Tenant: 9})
	eng.Emit(Span{Msg: 10, Kind: KindWait, LocKind: LocEngine, Loc: 7, Start: 5, End: 9, A: 2, B: 30, Tenant: 9})
	eng.Emit(Span{Msg: 10, Kind: KindService, LocKind: LocEngine, Loc: 7, Start: 9, End: 14, Tenant: 9})
	node.Emit(Span{Msg: 10, Kind: KindHop, LocKind: LocNode, Loc: 3, Start: 15, End: 15, A: 2, B: 9, Tenant: 9})
	node.Emit(Span{Msg: 10, Kind: KindEject, LocKind: LocNode, Loc: 3, Start: 14, End: 20, Tenant: 9})
	eng.Emit(Span{Msg: 20, Kind: KindDrop, LocKind: LocEngine, Loc: 7, Start: 8, End: 8, A: DropQueueShed})
	eng.Emit(Span{Msg: 10, Kind: KindDeliver, LocKind: LocSink, Loc: 1, Start: 22, End: 22, B: 64, Tenant: 9})
	tr.Commit()
}

func TestWantSampling(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Want(5) {
		t.Error("nil tracer must trace nothing")
	}
	all := New(Options{})
	if !all.Want(3) || !all.Want(1<<52) {
		t.Error("Sample 0 must trace every stamped message")
	}
	if all.Want(0) {
		t.Error("trace ID 0 (never stamped) must not be traced")
	}
	s4 := New(Options{Sample: 4})
	for id := uint64(1); id < 100; id++ {
		if got, want := s4.Want(id), id%4 == 0; got != want {
			t.Fatalf("Want(%d) with Sample 4 = %v, want %v", id, got, want)
		}
	}
	var nilBuf *Buffer
	if nilBuf.Want(12) {
		t.Error("nil buffer must trace nothing")
	}
}

func TestCommitDrainsInCreationOrder(t *testing.T) {
	tr := New(Options{})
	b2 := tr.Buffer("second-created")
	b1 := tr.Buffer("first-used")
	// Emission order is b1 then b2, but creation order is b2 then b1: the
	// stream must follow creation order.
	b1.Emit(Span{Msg: 2, Kind: KindGen})
	b2.Emit(Span{Msg: 1, Kind: KindGen})
	tr.Commit()
	set := tr.Set()
	if len(set.Spans) != 2 || set.Spans[0].Msg != 1 || set.Spans[1].Msg != 2 {
		t.Fatalf("spans drained out of creation order: %+v", set.Spans)
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr := New(Options{MaxSpans: 3})
	b := tr.Buffer("b")
	for i := 0; i < 5; i++ {
		b.Emit(Span{Msg: uint64(i + 1), Kind: KindGen})
	}
	tr.Commit()
	set := tr.Set()
	if len(set.Spans) != 3 {
		t.Errorf("kept %d spans, want 3", len(set.Spans))
	}
	if set.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", set.Dropped)
	}
	if !strings.Contains(set.SummaryText(), "2 spans dropped") {
		t.Error("summary does not surface the dropped-span count")
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := New(Options{FreqHz: 500e6})
	emit(tr)
	want := tr.Set()

	var sb strings.Builder
	if err := want.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChrome(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.FreqHz != want.FreqHz {
		t.Errorf("FreqHz = %v, want %v", got.FreqHz, want.FreqHz)
	}
	if len(got.Spans) != len(want.Spans) {
		t.Fatalf("round trip kept %d of %d spans", len(got.Spans), len(want.Spans))
	}
	for i, sp := range want.Spans {
		if got.Spans[i] != sp {
			t.Errorf("span %d: %+v != %+v", i, got.Spans[i], sp)
		}
	}
	for _, loc := range []struct {
		k    LocKind
		id   uint32
		name string
	}{{LocEngine, 7, "kvscache"}, {LocNode, 3, "router(1,0)"}, {LocSink, 1, "wire"}} {
		if got.LocName(loc.k, loc.id) != loc.name {
			t.Errorf("LocName(%v,%d) = %q, want %q", loc.k, loc.id, got.LocName(loc.k, loc.id), loc.name)
		}
	}
	// Writing the re-read set must reproduce the file byte for byte.
	var sb2 strings.Builder
	if err := got.WriteChrome(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Error("write -> read -> write is not byte-identical")
	}
}

// TestChromeNICDimension checks the fleet's NIC-id span dimension: a
// tracer tagged NIC 2 exports pid 3 with a per-NIC process name, the id
// survives the read-back losslessly, and a standalone (NIC 0) tracer's
// export stays byte-free of any nic marker so single-NIC traces are
// unchanged.
func TestChromeNICDimension(t *testing.T) {
	tr := New(Options{FreqHz: 500e6, NIC: 2})
	emit(tr)
	want := tr.Set()
	var sb strings.Builder
	if err := want.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"pid":3`) || !strings.Contains(out, "panicsim nic2") {
		t.Errorf("NIC 2 export missing pid 3 / process name:\n%.400s", out)
	}
	got, err := ReadChrome(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got.NIC != 2 {
		t.Errorf("read-back NIC = %d, want 2", got.NIC)
	}
	var sb2 strings.Builder
	if err := got.WriteChrome(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("NIC-tagged write -> read -> write is not byte-identical")
	}

	tr0 := New(Options{FreqHz: 500e6})
	emit(tr0)
	var sb0 strings.Builder
	if err := tr0.Set().WriteChrome(&sb0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb0.String(), `"nic"`) || strings.Contains(sb0.String(), "panicsim nic") {
		t.Error("standalone export carries a nic marker; single-NIC trace format must not change")
	}
}

func TestLocNameFallback(t *testing.T) {
	s := &Set{}
	if got := s.LocName(LocEngine, 34); got != "engine34" {
		t.Errorf("fallback = %q, want engine34", got)
	}
	if got := s.LocName(LocNode, 9); got != "node9" {
		t.Errorf("fallback = %q, want node9", got)
	}
}

func TestAnalysisViews(t *testing.T) {
	tr := New(Options{})
	emit(tr)
	set := tr.Set()

	b := set.Breakdown()
	for _, stage := range []string{"queue-wait@kvscache", "service@kvscache", "mesh-transit"} {
		if b.Hist(stage) == nil {
			t.Errorf("breakdown missing stage %q (have %v)", stage, b.Stages())
		}
	}
	if h := b.Hist("service@kvscache"); h != nil && h.Mean() != 5 {
		t.Errorf("service mean = %v, want 5", h.Mean())
	}

	e2e := set.EndToEnd()
	// msg 10 spans cycles 5..22, msg 20 is a point drop at 8.
	if e2e.Count() != 2 || e2e.Max() != 17 {
		t.Errorf("end-to-end n=%d max=%v, want n=2 max=17", e2e.Count(), e2e.Max())
	}

	flame := set.Flame()
	if !strings.Contains(flame, "kvscache;mesh ") {
		t.Errorf("flame output missing kvscache;mesh path:\n%s", flame)
	}

	tl := set.Timeline(10)
	for _, want := range []string{"gen", "queue-wait", "service", "mesh-transit", "deliver", "depth=2 slack=30"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	if !strings.Contains(set.Timeline(20), DropReason(DropQueueShed)) {
		t.Error("drop timeline missing the drop reason")
	}

	msgs := set.Messages()
	if len(msgs) != 2 || msgs[0] != 10 || msgs[1] != 20 {
		t.Errorf("Messages() = %v, want [10 20]", msgs)
	}

	only := set.Filter(func(sp Span) bool { return sp.Msg == 20 })
	if len(only.Spans) != 1 || only.Spans[0].Kind != KindDrop {
		t.Errorf("filter kept %+v", only.Spans)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if kindByName[name] != k {
			t.Errorf("kind name %q does not round-trip", name)
		}
	}
	if PortName(2) != "east" {
		t.Errorf("PortName(2) = %q", PortName(2))
	}
	if DropReason(DropFault) != "fault-drop" {
		t.Errorf("DropReason(DropFault) = %q", DropReason(DropFault))
	}
}
