package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/panic-nic/panic/internal/stats"
)

// stageLabel maps a span to its per-stage breakdown row, or "" for kinds
// that carry no duration worth aggregating.
func (s *Set) stageLabel(sp Span) string {
	switch sp.Kind {
	case KindWait:
		return "queue-wait@" + s.LocName(sp.LocKind, sp.Loc)
	case KindService:
		return "service@" + s.LocName(sp.LocKind, sp.Loc)
	case KindRMTParse:
		return "rmt-parse@" + s.LocName(sp.LocKind, sp.Loc)
	case KindRMTStage:
		return "rmt-stages@" + s.LocName(sp.LocKind, sp.Loc)
	case KindRMTDeparse:
		return "rmt-deparse@" + s.LocName(sp.LocKind, sp.Loc)
	case KindRMTStall:
		return "rmt-stall@" + s.LocName(sp.LocKind, sp.Loc)
	case KindEject:
		return "mesh-transit"
	}
	return ""
}

// Breakdown aggregates per-stage durations (cycles) into an ordered set
// of histograms: one row per engine queue, engine service, RMT phase, and
// mesh transit overall. Row order is first appearance in the stream.
// KindRMTStage spans are summed per (message, location) so the row
// reflects total match+action occupancy, not single one-cycle stages.
func (s *Set) Breakdown() *stats.Breakdown {
	b := stats.NewBreakdown()
	type stageKey struct {
		msg uint64
		loc uint32
	}
	stageSum := make(map[stageKey]uint64)
	var stageOrder []stageKey
	for _, sp := range s.Spans {
		label := s.stageLabel(sp)
		if label == "" {
			continue
		}
		if sp.Kind == KindRMTStage {
			k := stageKey{sp.Msg, sp.Loc}
			if _, seen := stageSum[k]; !seen {
				stageOrder = append(stageOrder, k)
			}
			stageSum[k] += sp.Dur()
			continue
		}
		b.Observe(label, float64(sp.Dur()))
	}
	for _, k := range stageOrder {
		b.Observe("rmt-stages@"+s.LocName(LocEngine, k.loc), float64(stageSum[k]))
	}
	return b
}

// EndToEnd histograms each message's span footprint: earliest Start to
// latest End over all its spans (including the possibly-future host
// delivery cycle), in cycles.
func (s *Set) EndToEnd() *stats.Histogram {
	type window struct {
		lo, hi uint64
	}
	spansByMsg := make(map[uint64]window)
	for _, sp := range s.Spans {
		if sp.Msg == 0 {
			continue
		}
		w, ok := spansByMsg[sp.Msg]
		if !ok {
			w = window{lo: sp.Start, hi: sp.End}
		} else {
			if sp.Start < w.lo {
				w.lo = sp.Start
			}
			if sp.End > w.hi {
				w.hi = sp.End
			}
		}
		spansByMsg[sp.Msg] = w
	}
	ids := make([]uint64, 0, len(spansByMsg))
	for id := range spansByMsg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := stats.NewHistogram()
	for _, id := range ids {
		w := spansByMsg[id]
		h.Observe(float64(w.hi - w.lo))
	}
	return h
}

// SummaryText renders the end-to-end histogram and the per-stage
// breakdown as the text report printed by panicsim -trace and
// tracetool -summary.
func (s *Set) SummaryText() string {
	var sb strings.Builder
	e2e := s.EndToEnd()
	fmt.Fprintf(&sb, "end-to-end (cycles): n=%d mean=%.1f p50=%.0f p99=%.0f p999=%.0f max=%.0f\n",
		e2e.Count(), e2e.Mean(), e2e.P50(), e2e.P99(), e2e.P999(), e2e.Max())
	if s.Dropped > 0 {
		fmt.Fprintf(&sb, "WARNING: %d spans dropped at the MaxSpans cap; aggregates are partial\n", s.Dropped)
	}
	sb.WriteString("\nper-stage latency:\n")
	sb.WriteString(s.Breakdown().Table("cycles").String())
	return sb.String()
}

// Flame renders collapsed flamegraph stacks: one line per distinct
// message path ("eth0;rmt0;mesh;kvscache;... <cycles>"), weighted by the
// total cycles messages spent on that path's stages, aggregated over all
// messages and sorted by weight (heaviest first, ties by path). The
// output feeds flamegraph.pl or any collapsed-stack viewer directly.
func (s *Set) Flame() string {
	type frame struct {
		start uint64
		seq   int
		name  string
		dur   uint64
	}
	frames := make(map[uint64][]frame)
	for i, sp := range s.Spans {
		if sp.Msg == 0 {
			continue
		}
		var name string
		switch sp.Kind {
		case KindWait, KindService, KindRMTParse, KindRMTStage, KindRMTDeparse, KindRMTStall:
			name = s.LocName(sp.LocKind, sp.Loc)
		case KindEject:
			name = "mesh"
		default:
			continue
		}
		frames[sp.Msg] = append(frames[sp.Msg], frame{start: sp.Start, seq: i, name: name, dur: sp.Dur()})
	}
	type pathWeight struct {
		path   string
		cycles uint64
		msgs   uint64
	}
	weights := make(map[string]*pathWeight)
	for _, fs := range frames {
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].start != fs[j].start {
				return fs[i].start < fs[j].start
			}
			return fs[i].seq < fs[j].seq
		})
		var path []string
		var cycles uint64
		for _, f := range fs {
			if len(path) == 0 || path[len(path)-1] != f.name {
				path = append(path, f.name)
			}
			cycles += f.dur
		}
		key := strings.Join(path, ";")
		w, ok := weights[key]
		if !ok {
			w = &pathWeight{path: key}
			weights[key] = w
		}
		w.cycles += cycles
		w.msgs++
	}
	rows := make([]*pathWeight, 0, len(weights))
	for _, w := range weights {
		rows = append(rows, w)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].path < rows[j].path
	})
	var sb strings.Builder
	for _, w := range rows {
		fmt.Fprintf(&sb, "%s %d\n", w.path, w.cycles)
	}
	return sb.String()
}

// Timeline renders one message's spans as a chronological table — the
// hop-by-hop journey used in OBSERVABILITY.md's worked example.
func (s *Set) Timeline(id uint64) string {
	var spans []Span
	var order []int
	for i, sp := range s.Spans {
		if sp.Msg == id {
			spans = append(spans, sp)
			order = append(order, i)
		}
	}
	if len(spans) == 0 {
		return fmt.Sprintf("no spans for trace ID %d\n", id)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return order[i] < order[j]
	})
	t := stats.NewTable("cycle", "dur", "event", "where", "detail")
	for _, sp := range spans {
		cycle := fmt.Sprintf("%d", sp.Start)
		dur := "-"
		if !sp.Kind.Instant() {
			cycle = fmt.Sprintf("%d..%d", sp.Start, sp.End)
			dur = fmt.Sprintf("%d", sp.Dur())
		}
		t.AddRow(cycle, dur, sp.Kind.String(), s.LocName(sp.LocKind, sp.Loc), s.detail(sp))
	}
	return t.String()
}

// detail renders a span's kind-specific A/B fields for timelines.
func (s *Set) detail(sp Span) string {
	switch sp.Kind {
	case KindGen:
		return fmt.Sprintf("%dB", sp.B)
	case KindEnq:
		return fmt.Sprintf("rank=%d depth=%d", sp.A, sp.B)
	case KindWait:
		return fmt.Sprintf("depth=%d slack=%d", sp.A, sp.B)
	case KindRMTStage:
		return fmt.Sprintf("stage=%d", sp.A)
	case KindInject:
		return fmt.Sprintf("dst=%s flits=%d", s.LocName(LocNode, uint32(sp.A)), sp.B)
	case KindHop:
		return fmt.Sprintf("out=%s dst=%s", PortName(sp.A), s.LocName(LocNode, uint32(sp.B)))
	case KindDeliver:
		return fmt.Sprintf("%dB", sp.B)
	case KindDrop:
		return DropReason(sp.A)
	case KindControl:
		return fmt.Sprintf("engine=%d", sp.A)
	}
	return ""
}
