package trace

import "fmt"

// ValidateSpan checks one span's well-formedness: a known kind and
// location namespace, a non-inverted cycle interval, instant kinds pinned
// to a single cycle, and a message ID present except on control-plane
// spans (the only kind emitted on behalf of no message). The invariant
// monitor runs it over every span the tracer commits; a violation means
// an instrumentation point, not the model, is buggy.
func ValidateSpan(sp Span) error {
	if sp.Kind >= numKinds {
		return fmt.Errorf("trace: span has unknown kind %d", uint8(sp.Kind))
	}
	if sp.LocKind >= numLocKinds {
		return fmt.Errorf("trace: %v span has unknown location namespace %d", sp.Kind, uint8(sp.LocKind))
	}
	if sp.End < sp.Start {
		return fmt.Errorf("trace: %v span at %s %d runs backwards: [%d, %d]",
			sp.Kind, locPrefixes[sp.LocKind], sp.Loc, sp.Start, sp.End)
	}
	if sp.Kind.Instant() && sp.End != sp.Start {
		return fmt.Errorf("trace: instant %v span at %s %d spans [%d, %d]",
			sp.Kind, locPrefixes[sp.LocKind], sp.Loc, sp.Start, sp.End)
	}
	if sp.Msg == 0 && sp.Kind != KindControl {
		return fmt.Errorf("trace: %v span at %s %d has no message ID",
			sp.Kind, locPrefixes[sp.LocKind], sp.Loc)
	}
	return nil
}
