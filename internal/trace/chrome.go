package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChrome renders the set in the Chrome trace_event JSON format
// (loadable in Perfetto and chrome://tracing). Each span location becomes
// a named thread track; interval kinds become complete ("X") events,
// instant kinds become instant ("i") events. Timestamps are microseconds
// (the format's unit) derived from cycles at FreqHz; the exact cycle
// values ride along in each event's args so ReadChrome round-trips
// losslessly and the determinism tests can compare output byte for byte.
//
// The output is deterministic: events appear in span-stream order, tracks
// are numbered by sorted location, and floats are formatted with
// strconv.FormatFloat's shortest representation.
func (s *Set) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	tids := s.assignTracks()

	// The fleet NIC id becomes the Chrome process: pid = NIC+1 keeps
	// standalone exports (NIC 0) byte-compatible while letting per-NIC
	// fleet exports merge into one multi-process Perfetto view.
	pid := s.NIC + 1
	procName := "panicsim"
	if s.NIC > 0 {
		procName = fmt.Sprintf("panicsim nic%d", s.NIC)
	}
	// The nic key appears only for fleet NICs (>0), so standalone exports
	// stay byte-identical to the pre-fleet format; ReadChrome treats an
	// absent key as NIC 0.
	nicData := ""
	if s.NIC > 0 {
		nicData = fmt.Sprintf(",\"nic\":\"%d\"", s.NIC)
	}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"tool\":\"panicsim\",\"freqHz\":%q,\"spans\":\"%d\",\"droppedSpans\":\"%d\"%s},\"traceEvents\":[\n",
		formatFloat(s.FreqHz), len(s.Spans), s.Dropped, nicData)
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}

	sep()
	fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`, pid, quote(procName))
	// Track metadata, in tid order. lk/loc in the args let ReadChrome
	// rebuild the location table.
	keys := make([]locKey, 0, len(tids))
	for k := range tids {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return tids[keys[i]] < tids[keys[j]] })
	for _, k := range keys {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s,"lk":%d,"loc":%d}}`,
			pid, tids[k], quote(s.LocName(k.kind, k.id)), k.kind, k.id)
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			pid, tids[k], tids[k])
	}

	usPerCycle := 1e6 / s.FreqHz
	for _, sp := range s.Spans {
		sep()
		tid := tids[locKey{sp.LocKind, sp.Loc}]
		ts := float64(sp.Start) * usPerCycle
		args := fmt.Sprintf(`{"msg":%d,"lk":%d,"loc":%d,"s":%d,"e":%d,"a":%d,"b":%d,"t":%d}`,
			sp.Msg, sp.LocKind, sp.Loc, sp.Start, sp.End, sp.A, sp.B, sp.Tenant)
		if sp.Kind.Instant() {
			fmt.Fprintf(bw, `{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%q,"args":%s}`,
				pid, tid, formatFloat(ts), sp.Kind.String(), args)
		} else {
			dur := float64(sp.Dur()) * usPerCycle
			fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":%s}`,
				pid, tid, formatFloat(ts), formatFloat(dur), sp.Kind.String(), args)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// assignTracks numbers every location appearing in the name table or the
// span stream, ordered by (LocKind, Loc), starting at tid 1.
func (s *Set) assignTracks() map[locKey]int {
	present := make(map[locKey]bool)
	for k := range s.names {
		present[k] = true
	}
	for _, sp := range s.Spans {
		present[locKey{sp.LocKind, sp.Loc}] = true
	}
	keys := make([]locKey, 0, len(present))
	for k := range present {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].id < keys[j].id
	})
	tids := make(map[locKey]int, len(keys))
	for i, k := range keys {
		tids[k] = i + 1
	}
	return tids
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func quote(s string) string { return strconv.Quote(s) }

// chromeFile mirrors the exported JSON for reading.
type chromeFile struct {
	OtherData   map[string]string `json:"otherData"`
	TraceEvents []chromeEvent     `json:"traceEvents"`
}

type chromeEvent struct {
	Ph   string          `json:"ph"`
	Name string          `json:"name"`
	Args json.RawMessage `json:"args"`
}

type chromeSpanArgs struct {
	Msg uint64 `json:"msg"`
	LK  uint8  `json:"lk"`
	Loc uint32 `json:"loc"`
	S   uint64 `json:"s"`
	E   uint64 `json:"e"`
	A   uint64 `json:"a"`
	B   uint64 `json:"b"`
	T   uint16 `json:"t"`
}

type chromeMetaArgs struct {
	Name string  `json:"name"`
	LK   *uint8  `json:"lk"`
	Loc  *uint32 `json:"loc"`
}

// ReadChrome parses a file written by WriteChrome back into a Set, using
// the exact cycle values embedded in event args (the microsecond
// timestamps are ignored). Events written by other tools are skipped when
// they lack the embedded args.
func ReadChrome(r io.Reader) (*Set, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: parsing chrome JSON: %w", err)
	}
	s := &Set{FreqHz: 500e6}
	if v, ok := f.OtherData["freqHz"]; ok {
		if hz, err := strconv.ParseFloat(v, 64); err == nil && hz > 0 {
			s.FreqHz = hz
		}
	}
	if v, ok := f.OtherData["droppedSpans"]; ok {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			s.Dropped = n
		}
	}
	if v, ok := f.OtherData["nic"]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			s.NIC = n
		}
	}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				continue
			}
			var m chromeMetaArgs
			if err := json.Unmarshal(ev.Args, &m); err != nil || m.LK == nil || m.Loc == nil {
				continue
			}
			s.setName(LocKind(*m.LK), *m.Loc, m.Name)
		case "X", "i":
			kind, ok := kindByName[ev.Name]
			if !ok {
				continue
			}
			var a chromeSpanArgs
			if err := json.Unmarshal(ev.Args, &a); err != nil {
				continue
			}
			s.Spans = append(s.Spans, Span{
				Msg: a.Msg, Start: a.S, End: a.E, A: a.A, B: a.B,
				Kind: kind, LocKind: LocKind(a.LK), Loc: a.Loc, Tenant: a.T,
			})
		}
	}
	return s, nil
}
