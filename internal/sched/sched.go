// Package sched implements PANIC's logical scheduler (§3.1.3): the
// per-engine priority queues that order competing messages by the slack
// values the heavyweight RMT pipeline computed and stamped into the chain
// header.
//
// Each queue is a PIFO (push-in-first-out) priority queue: an arriving
// message is inserted at the position given by its rank and the head is
// always the minimum rank, which is sufficient to express arbitrary
// scheduling algorithms (the paper cites Universal Packet Scheduling and
// the PIFO line of work). Rank = arrival + slack implements
// least-slack-time-first; rank = arrival implements FIFO; rank = class
// implements strict priority.
//
// Admission is a policy decision the paper leaves open (§6): Backpressure
// never drops (the queue fills and the fabric stalls — lossless), while
// DropLowestPriority sheds the worst-ranked droppable message on overflow,
// never dropping messages marked lossless (descriptor DMA and other
// control traffic).
//
// Scheduling decisions are observable through internal/trace: the owning
// tile records the rank and queue depth at every accepted push (enqueue
// spans), the depth and slack at every pop (queue-wait spans), and each
// overflow eviction (drop spans), so a trace shows exactly how the PIFO
// ordered competing messages.
package sched

import (
	"container/heap"
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// Policy is a queue's overflow behaviour.
type Policy int

// Policies.
const (
	// Backpressure rejects pushes when full; the caller must stall
	// (lossless forwarding).
	Backpressure Policy = iota
	// DropLowestPriority accepts the push if the incoming message ranks
	// better than the worst droppable occupant, which is then dropped.
	// Messages for which Lossless() is true are never dropped.
	DropLowestPriority
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Backpressure:
		return "backpressure"
	case DropLowestPriority:
		return "drop-lowest-priority"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PushResult reports what a Push did.
type PushResult struct {
	// Accepted is false when the message was refused (Backpressure and
	// full, or lossy and it ranked worse than everything present).
	Accepted bool
	// Dropped is the message evicted to make room, if any.
	Dropped *packet.Message
}

// Queue is one engine's scheduling queue.
type Queue struct {
	h      entryHeap
	cap    int
	policy Policy
	seq    uint64

	// Stats.
	pushed, popped, drops, rejects uint64
	highWater                      int
}

// NewQueue builds a queue with the given capacity and overflow policy.
func NewQueue(capacity int, policy Policy) *Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("sched: queue capacity %d", capacity))
	}
	return &Queue{cap: capacity, policy: policy}
}

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.h) }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.cap }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return len(q.h) >= q.cap }

// Push inserts a message with the given rank (lower = served sooner).
// Equal ranks are served in arrival order.
func (q *Queue) Push(msg *packet.Message, rank uint64) PushResult {
	if !q.Full() {
		q.seq++
		heap.Push(&q.h, entry{msg: msg, rank: rank, seq: q.seq})
		q.pushed++
		if len(q.h) > q.highWater {
			q.highWater = len(q.h)
		}
		return PushResult{Accepted: true}
	}
	if q.policy == Backpressure {
		q.rejects++
		return PushResult{}
	}
	// Lossy: evict the worst droppable occupant if the newcomer beats it.
	worst := q.worstDroppable()
	if worst < 0 {
		// Everything resident is lossless; the newcomer itself is shed
		// unless it is lossless too, in which case the push is refused
		// and the caller must stall.
		if msg.Lossless() {
			q.rejects++
			return PushResult{}
		}
		q.drops++
		return PushResult{Accepted: true, Dropped: msg}
	}
	w := q.h[worst]
	newcomerLoses := rank > w.rank || (rank == w.rank && !msg.Lossless())
	if newcomerLoses && !msg.Lossless() {
		q.drops++
		return PushResult{Accepted: true, Dropped: msg}
	}
	dropped := w.msg
	heap.Remove(&q.h, worst)
	q.seq++
	heap.Push(&q.h, entry{msg: msg, rank: rank, seq: q.seq})
	q.pushed++
	q.drops++
	return PushResult{Accepted: true, Dropped: dropped}
}

// worstDroppable returns the heap index of the highest-rank droppable
// entry, or -1. Ties prefer the youngest (largest seq), so older traffic
// survives.
func (q *Queue) worstDroppable() int {
	worst := -1
	for i, e := range q.h {
		if e.msg.Lossless() {
			continue
		}
		if worst < 0 || e.rank > q.h[worst].rank ||
			(e.rank == q.h[worst].rank && e.seq > q.h[worst].seq) {
			worst = i
		}
	}
	return worst
}

// Peek returns the best-ranked message without removing it.
func (q *Queue) Peek() (*packet.Message, bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	return q.h[0].msg, true
}

// PeekRank returns the best rank present.
func (q *Queue) PeekRank() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].rank, true
}

// Pop removes and returns the best-ranked message.
func (q *Queue) Pop() (*packet.Message, bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	e := heap.Pop(&q.h).(entry)
	q.popped++
	return e.msg, true
}

// Stats returns (pushed, popped, dropped, rejected, high-water mark).
func (q *Queue) Stats() (pushed, popped, drops, rejects uint64, highWater int) {
	return q.pushed, q.popped, q.drops, q.rejects, q.highWater
}

type entry struct {
	msg  *packet.Message
	rank uint64
	seq  uint64
}

type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }

func (h entryHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}

func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *entryHeap) Push(x any) { *h = append(*h, x.(entry)) }

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
