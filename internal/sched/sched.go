// Package sched implements PANIC's logical scheduler (§3.1.3): the
// per-engine priority queues that order competing messages by the slack
// values the heavyweight RMT pipeline computed and stamped into the chain
// header.
//
// Each queue is a PIFO (push-in-first-out) priority queue: an arriving
// message is inserted at the position given by its rank and the head is
// always the minimum rank, which is sufficient to express arbitrary
// scheduling algorithms (the paper cites Universal Packet Scheduling and
// the PIFO line of work). Rank = arrival + slack implements
// least-slack-time-first; rank = arrival implements FIFO; rank = class
// implements strict priority. The queue is backed by a bitmap calendar
// queue (O(1) push/peek/pop over the live rank window, exact-ordering
// fallback outside it — see bucketq.go), mirroring how hardware PIFOs
// achieve constant-time scheduling decisions.
//
// Admission is a policy decision the paper leaves open (§6): Backpressure
// never drops (the queue fills and the fabric stalls — lossless), while
// DropLowestPriority sheds the worst-ranked droppable message on overflow,
// never dropping messages marked lossless (descriptor DMA and other
// control traffic).
//
// Scheduling decisions are observable through internal/trace: the owning
// tile records the rank and queue depth at every accepted push (enqueue
// spans), the depth and slack at every pop (queue-wait spans), and each
// overflow eviction (drop spans), so a trace shows exactly how the PIFO
// ordered competing messages.
package sched

import (
	"container/heap"
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// Policy is a queue's overflow behaviour.
type Policy int

// Policies.
const (
	// Backpressure rejects pushes when full; the caller must stall
	// (lossless forwarding).
	Backpressure Policy = iota
	// DropLowestPriority accepts the push if the incoming message ranks
	// better than the worst droppable occupant, which is then dropped.
	// Messages for which Lossless() is true are never dropped.
	DropLowestPriority
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Backpressure:
		return "backpressure"
	case DropLowestPriority:
		return "drop-lowest-priority"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PushResult reports what a Push did.
type PushResult struct {
	// Accepted is false when the message was refused (Backpressure and
	// full, or lossy and it ranked worse than everything present).
	Accepted bool
	// Dropped is the message evicted to make room, if any.
	Dropped *packet.Message
}

// Queue is one engine's scheduling queue. The ordering structure behind it
// is a hierarchical-bitmap calendar queue (see bucketq.go) giving O(1)
// push/peek/pop for the clustered ranks real rank functions emit, with
// exact-ordering heaps absorbing outliers; NewHeapQueue builds the same
// queue over the reference container/heap implementation for ablation
// runs. Both produce bit-identical scheduling decisions.
type Queue struct {
	p      pifo
	cap    int
	policy Policy
	seq    uint64

	// Stats. evicted counts resident messages removed by lossy overflow
	// (the Dropped result of a winning push); self-drops shed before
	// insertion count only in drops. Len == pushed − popped − evicted is
	// the queue's conservation invariant (see Audit).
	pushed, popped, drops, rejects uint64
	evicted                        uint64
	highWater                      int
}

// NewQueue builds a queue with the given capacity and overflow policy,
// backed by the bucketed calendar queue.
func NewQueue(capacity int, policy Policy) *Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("sched: queue capacity %d", capacity))
	}
	return &Queue{p: &bucketQueue{}, cap: capacity, policy: policy}
}

// NewHeapQueue builds a queue backed by the reference container/heap
// implementation — the ablation baseline for the calendar queue, kept so
// cmd/benchkernel -ablation can quantify the bucketed queue's contribution
// against scheduling decisions that are identical by construction.
func NewHeapQueue(capacity int, policy Policy) *Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("sched: queue capacity %d", capacity))
	}
	return &Queue{p: &heapPifo{}, cap: capacity, policy: policy}
}

// Len returns the current occupancy.
func (q *Queue) Len() int { return q.p.size() }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.cap }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.p.size() >= q.cap }

// Push inserts a message with the given rank (lower = served sooner).
// Equal ranks are served in arrival order.
func (q *Queue) Push(msg *packet.Message, rank uint64) PushResult {
	if !q.Full() {
		q.seq++
		q.p.insert(entry{msg: msg, rank: rank, seq: q.seq})
		q.pushed++
		if n := q.p.size(); n > q.highWater {
			q.highWater = n
		}
		return PushResult{Accepted: true}
	}
	if q.policy == Backpressure {
		q.rejects++
		return PushResult{}
	}
	// Lossy: evict the worst droppable occupant if the newcomer beats it.
	w, loc, ok := q.p.worstDroppable()
	if !ok {
		// Everything resident is lossless; the newcomer itself is shed
		// unless it is lossless too, in which case the push is refused
		// and the caller must stall.
		if msg.Lossless() {
			q.rejects++
			return PushResult{}
		}
		q.drops++
		return PushResult{Accepted: true, Dropped: msg}
	}
	newcomerLoses := rank > w.rank || (rank == w.rank && !msg.Lossless())
	if newcomerLoses && !msg.Lossless() {
		q.drops++
		return PushResult{Accepted: true, Dropped: msg}
	}
	q.p.removeAt(loc)
	q.seq++
	q.p.insert(entry{msg: msg, rank: rank, seq: q.seq})
	q.pushed++
	q.drops++
	q.evicted++
	return PushResult{Accepted: true, Dropped: w.msg}
}

// Peek returns the best-ranked message without removing it.
func (q *Queue) Peek() (*packet.Message, bool) {
	e, ok := q.p.peekMin()
	if !ok {
		return nil, false
	}
	return e.msg, true
}

// PeekRank returns the best rank present.
func (q *Queue) PeekRank() (uint64, bool) {
	e, ok := q.p.peekMin()
	if !ok {
		return 0, false
	}
	return e.rank, true
}

// Pop removes and returns the best-ranked message.
func (q *Queue) Pop() (*packet.Message, bool) {
	e, ok := q.p.popMin()
	if !ok {
		return nil, false
	}
	q.popped++
	return e.msg, true
}

// Stats returns (pushed, popped, dropped, rejected, high-water mark).
func (q *Queue) Stats() (pushed, popped, drops, rejects uint64, highWater int) {
	return q.pushed, q.popped, q.drops, q.rejects, q.highWater
}

// Evicted returns how many resident messages lossy overflow removed.
func (q *Queue) Evicted() uint64 { return q.evicted }

// Each visits every resident message with its rank, in unspecified order.
// It exists for occupancy audits (per-tenant conservation); scheduling
// order comes only from Pop.
func (q *Queue) Each(fn func(msg *packet.Message, rank uint64)) {
	q.p.each(func(e entry) { fn(e.msg, e.rank) })
}

// Audit checks the queue's internal conservation and bound invariants:
// occupancy equals pushed − popped − evicted, occupancy and the high-water
// mark never exceed capacity. It returns the first violation found.
func (q *Queue) Audit() error {
	n := uint64(q.p.size())
	if want := q.pushed - q.popped - q.evicted; n != want {
		return fmt.Errorf("sched: occupancy %d != pushed %d - popped %d - evicted %d",
			n, q.pushed, q.popped, q.evicted)
	}
	if n > uint64(q.cap) {
		return fmt.Errorf("sched: occupancy %d exceeds capacity %d", n, q.cap)
	}
	if q.highWater > q.cap {
		return fmt.Errorf("sched: high-water %d exceeds capacity %d", q.highWater, q.cap)
	}
	// The iterator must agree with size(): a desynced bitmap or stale
	// bucket head would silently corrupt scheduling order.
	var visited uint64
	q.p.each(func(entry) { visited++ })
	if visited != n {
		return fmt.Errorf("sched: iterator visited %d entries, size reports %d", visited, n)
	}
	return nil
}

type entry struct {
	msg  *packet.Message
	rank uint64
	seq  uint64
}

// heapPifo is the original container/heap pifo, retained as the ablation
// baseline behind NewHeapQueue. Its heap.Push boxes each entry through
// interface{}, so unlike the calendar queue it allocates per push.
type heapPifo struct{ h entryHeap }

func (p *heapPifo) size() int      { return len(p.h) }
func (p *heapPifo) insert(e entry) { heap.Push(&p.h, e) }

func (p *heapPifo) peekMin() (entry, bool) {
	if len(p.h) == 0 {
		return entry{}, false
	}
	return p.h[0], true
}

func (p *heapPifo) popMin() (entry, bool) {
	if len(p.h) == 0 {
		return entry{}, false
	}
	return heap.Pop(&p.h).(entry), true
}

// worstDroppable returns the highest-rank droppable entry; ties prefer the
// youngest (largest seq), so older traffic survives.
func (p *heapPifo) worstDroppable() (entry, dropLoc, bool) {
	worst := -1
	for i, e := range p.h {
		if e.msg.Lossless() {
			continue
		}
		if worst < 0 || e.rank > p.h[worst].rank ||
			(e.rank == p.h[worst].rank && e.seq > p.h[worst].seq) {
			worst = i
		}
	}
	if worst < 0 {
		return entry{}, dropLoc{}, false
	}
	return p.h[worst], dropLoc{idx: worst}, true
}

func (p *heapPifo) removeAt(loc dropLoc) { heap.Remove(&p.h, loc.idx) }

func (p *heapPifo) each(fn func(e entry)) {
	for _, e := range p.h {
		fn(e)
	}
}

type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }

func (h entryHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}

func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *entryHeap) Push(x any) { *h = append(*h, x.(entry)) }

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
