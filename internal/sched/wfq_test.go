package sched

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

func wfqMsg(tenant uint16, bytes int) *packet.Message {
	return &packet.Message{Tenant: tenant, Pkt: &packet.Packet{PayloadLen: bytes}}
}

// drainShare pushes a backlog of messages from each tenant into a WFQ
// queue and returns how many of each tenant's messages appear in the first
// n pops.
func drainShare(t *testing.T, weights map[uint16]uint64, msgBytes map[uint16]int, perTenant, n int) map[uint16]int {
	t.Helper()
	rank := NewRankWFQ(weights, 1)
	q := NewQueue(1024, Backpressure)
	for i := 0; i < perTenant; i++ {
		for tenant, bytes := range msgBytes {
			m := wfqMsg(tenant, bytes)
			q.Push(m, rank(m, 0, 0))
		}
	}
	got := map[uint16]int{}
	for i := 0; i < n; i++ {
		m, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		got[m.Tenant]++
	}
	return got
}

func TestWFQEqualWeightsEqualShare(t *testing.T) {
	got := drainShare(t,
		map[uint16]uint64{1: 1, 2: 1},
		map[uint16]int{1: 1000, 2: 1000},
		100, 100)
	if got[1] < 45 || got[1] > 55 {
		t.Errorf("equal weights share = %v, want ~50/50", got)
	}
}

func TestWFQWeightedShare(t *testing.T) {
	// Weight 3 vs 1: tenant 1 should get ~75% of service.
	got := drainShare(t,
		map[uint16]uint64{1: 3, 2: 1},
		map[uint16]int{1: 1000, 2: 1000},
		200, 200)
	if got[1] < 140 || got[1] > 160 {
		t.Errorf("3:1 weights share = %v, want ~150/50", got)
	}
}

func TestWFQByteFairNotPacketFair(t *testing.T) {
	// Tenant 2 sends 4x larger messages at equal weight: it should get
	// ~1/4 the packet count (byte-fair sharing).
	got := drainShare(t,
		map[uint16]uint64{1: 1, 2: 1},
		map[uint16]int{1: 250, 2: 1000},
		300, 300)
	ratio := float64(got[1]) / float64(got[2])
	if ratio < 3.0 || ratio > 5.5 {
		t.Errorf("byte fairness ratio = %.2f (%v), want ~4", ratio, got)
	}
}

func TestWFQIdleTenantNotPenalized(t *testing.T) {
	// A tenant that was idle must not bank credit: its first message
	// after idling ranks from `now`, not from its ancient finish time —
	// and equally must not be punished for having been busy long ago.
	rank := NewRankWFQ(map[uint16]uint64{1: 1, 2: 1}, 1)
	// Tenant 1 active early.
	r1 := rank(wfqMsg(1, 1000), 0, 0)
	if r1 == 0 {
		t.Fatal("zero rank")
	}
	// Much later, both tenants send: their ranks must be comparable
	// (both restart from now), so neither dominates.
	now := uint64(1_000_000)
	a := rank(wfqMsg(1, 1000), 0, now)
	b := rank(wfqMsg(2, 1000), 0, now)
	if a != b {
		t.Errorf("post-idle ranks differ: %d vs %d", a, b)
	}
}

func TestWFQZeroWeightCoerced(t *testing.T) {
	rank := NewRankWFQ(map[uint16]uint64{1: 0}, 0)
	if r := rank(wfqMsg(1, 100), 0, 0); r == 0 {
		t.Error("zero-weight tenant got zero rank (division issue)")
	}
	if r := rank(wfqMsg(9, 100), 0, 0); r == 0 {
		t.Error("unknown tenant with zero default got zero rank")
	}
}
