package sched

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// WLSTFConfig parameterizes NewRankWeightedLSTF: least-slack-time-first
// over per-tenant weights, backed by a deficit-style byte-credit bucket
// per tenant so an aggressor cannot starve a victim's slack budget.
type WLSTFConfig struct {
	// Weights are the relative service weights. A tenant with weight 2
	// sees its chain slack shrink twice as slowly as a tenant with weight
	// 1, so under contention it is scheduled proportionally sooner.
	// Unknown tenants get DefaultWeight.
	Weights       map[uint16]uint64
	DefaultWeight uint64
	// RefillPeriod is the credit-refill granularity in cycles (0 = 64).
	RefillPeriod uint64
	// QuantumBytes is the byte credit granted per weight unit per refill
	// period (0 = 1024). A tenant's fair share per period is
	// QuantumBytes × weight.
	QuantumBytes uint64
	// BurstBytes caps each tenant's credit bucket (0 = 8 × its per-period
	// grant, floored at two max-size frames so a small quantum still lets
	// a compliant tenant pay for individual large frames), bounding how
	// far an idle tenant can burst ahead.
	BurstBytes uint64
	// ExhaustedPenalty is the slack inflation, in cycles, applied to a
	// message whose tenant has spent its credit (0 = 1<<20). Penalized
	// messages still drain — they are deprioritized, not dropped — so the
	// policy is work-conserving: an aggressor alone on the NIC runs at
	// full rate, but under contention it cannot outrank in-budget tenants.
	ExhaustedPenalty uint64
}

func (c WLSTFConfig) withDefaults() WLSTFConfig {
	if c.DefaultWeight == 0 {
		c.DefaultWeight = 1
	}
	if c.RefillPeriod == 0 {
		c.RefillPeriod = 64
	}
	if c.QuantumBytes == 0 {
		c.QuantumBytes = 1024
	}
	if c.ExhaustedPenalty == 0 {
		c.ExhaustedPenalty = 1 << 20
	}
	return c
}

// wlstfTenant is one tenant's scheduler state plus the lifetime ledger the
// credit-conservation audit checks against:
//
//	credit == burst(initial fill) + credited − spent
//	earned == credited + overflow
type wlstfTenant struct {
	weight     uint64
	credit     uint64
	burst      uint64
	lastRefill uint64

	earned   uint64 // raw grant: periods × quantum × weight, pre-cap
	credited uint64 // grant actually added (post burst cap)
	overflow uint64 // grant discarded by the burst cap
	spent    uint64 // credit actually removed by ranked messages
}

// WLSTF is the weighted-LSTF rank state machine: rank is the absolute
// cycle by which service should begin (as RankLSTF), but the message's
// chain slack is scaled by maxWeight/weight — a heavier tenant's deadline
// bites sooner — and a tenant that has exhausted its per-period byte
// credit has its effective slack inflated by ExhaustedPenalty. The credit
// bucket refills deficit-style: every RefillPeriod cycles each tenant
// earns QuantumBytes × weight, capped at BurstBytes, and each ranked
// message spends its wire length. Saturating the NIC therefore drains an
// aggressor's bucket within one period, after which its messages rank
// behind every in-budget tenant regardless of how much slack the RMT
// program stamped — the victim's slack budget is protected by
// construction, not by trusting the aggressor's traffic profile.
//
// The state is deterministic given the call sequence; give each engine
// its own instance (core.NewNIC does). Refill is computed lazily from
// cycle arithmetic, so Rank is a pure state machine — byte-identical
// across kernel worker counts and fast-forward.
type WLSTF struct {
	cfg     WLSTFConfig
	maxW    uint64
	tenants map[uint16]*wlstfTenant
}

// NewWLSTF builds the rank state machine. Use Rank as the queue's
// RankFunc; Audit checks credit conservation.
func NewWLSTF(cfg WLSTFConfig) *WLSTF {
	cfg = cfg.withDefaults()
	maxW := cfg.DefaultWeight
	for _, w := range cfg.Weights {
		if w > maxW {
			maxW = w
		}
	}
	return &WLSTF{cfg: cfg, maxW: maxW, tenants: make(map[uint16]*wlstfTenant)}
}

// NewRankWeightedLSTF returns a weighted-LSTF rank function — a fresh
// WLSTF instance's Rank method, for callers that only need the RankFunc.
func NewRankWeightedLSTF(cfg WLSTFConfig) RankFunc {
	return NewWLSTF(cfg).Rank
}

func (s *WLSTF) state(id uint16) *wlstfTenant {
	t := s.tenants[id]
	if t == nil {
		w := s.cfg.Weights[id]
		if w == 0 {
			w = s.cfg.DefaultWeight
		}
		grant := s.cfg.QuantumBytes * w
		burst := s.cfg.BurstBytes
		if burst == 0 {
			burst = 8 * grant
			// Two standard max-size Ethernet frames: a tenant within
			// its rate must be able to afford one frame at a time.
			if const2MTU := uint64(2 * 1538); burst < const2MTU {
				burst = const2MTU
			}
		}
		t = &wlstfTenant{weight: w, credit: burst, burst: burst}
		s.tenants[id] = t
	}
	return t
}

// SetWeights replaces the weight table — the hot-reload primitive behind
// the serve control plane's tenant-quota updates. The swap is safe
// mid-run: each tenant's credit bucket, burst cap, and lifetime ledger
// (earned/credited/overflow/spent) are untouched, so Audit's conservation
// equations keep holding across the swap; only the slack scaling and
// future refill grants change. Tenants absent from the new map fall back
// to DefaultWeight. Call it between kernel cycles (core.NIC.SetTenantWeights
// applies it at the serve loop's barrier), never concurrently with Rank.
func (s *WLSTF) SetWeights(weights map[uint16]uint64) {
	w2 := make(map[uint16]uint64, len(weights))
	maxW := s.cfg.DefaultWeight
	for id, w := range weights {
		if w == 0 {
			continue // weight 0 is "unset": the tenant reverts to default
		}
		w2[id] = w
		if w > maxW {
			maxW = w
		}
	}
	s.cfg.Weights = w2
	s.maxW = maxW
	for id, t := range s.tenants {
		w := w2[id]
		if w == 0 {
			w = s.cfg.DefaultWeight
		}
		t.weight = w
	}
}

// Weight returns the tenant's current effective weight.
func (s *WLSTF) Weight(id uint16) uint64 {
	if w := s.cfg.Weights[id]; w != 0 {
		return w
	}
	return s.cfg.DefaultWeight
}

// Rank implements RankFunc.
func (s *WLSTF) Rank(msg *packet.Message, slack uint32, now uint64) uint64 {
	t := s.state(msg.Tenant)
	// Lazy refill: whole periods elapsed since the last refill.
	if periods := (now - t.lastRefill) / s.cfg.RefillPeriod; periods > 0 {
		earned := periods * s.cfg.QuantumBytes * t.weight
		t.earned += earned
		if room := t.burst - t.credit; earned <= room {
			t.credit += earned
			t.credited += earned
		} else {
			t.credit = t.burst
			t.credited += room
			t.overflow += earned - room
		}
		t.lastRefill += periods * s.cfg.RefillPeriod
	}
	eff := uint64(slack) * s.maxW / t.weight
	cost := uint64(msg.WireLen())
	if t.credit >= cost {
		t.credit -= cost
		t.spent += cost
	} else {
		t.spent += t.credit
		t.credit = 0
		eff += s.cfg.ExhaustedPenalty
	}
	return now + eff
}

// Audit checks per-tenant deficit-credit conservation: every byte a tenant
// holds was granted (initial burst fill plus refills that fit under the
// cap) and not yet spent, the bucket never exceeds its burst cap, the
// lifetime ledger balances (earned == credited + overflow), and the refill
// clock stays period-aligned. It returns the first violation found.
func (s *WLSTF) Audit() error {
	for id, t := range s.tenants {
		if t.credit > t.burst {
			return fmt.Errorf("sched: wlstf tenant %d credit %d exceeds burst %d", id, t.credit, t.burst)
		}
		if t.earned != t.credited+t.overflow {
			return fmt.Errorf("sched: wlstf tenant %d earned %d != credited %d + overflow %d",
				id, t.earned, t.credited, t.overflow)
		}
		if want := t.burst + t.credited - t.spent; t.credit != want {
			return fmt.Errorf("sched: wlstf tenant %d credit %d != burst %d + credited %d - spent %d",
				id, t.credit, t.burst, t.credited, t.spent)
		}
		if t.lastRefill%s.cfg.RefillPeriod != 0 {
			return fmt.Errorf("sched: wlstf tenant %d refill clock %d not aligned to period %d",
				id, t.lastRefill, s.cfg.RefillPeriod)
		}
	}
	return nil
}
