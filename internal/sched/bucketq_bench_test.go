package sched

import (
	"testing"
)

// benchQueue measures the served path — push then pop at steady occupancy —
// with LSTF-shaped ranks (clustered around the advancing cycle).
func benchQueue(b *testing.B, mk func(int, Policy) *Queue) {
	b.ReportAllocs()
	q := mk(256, Backpressure)
	msg := bulkMsg(1)
	for i := 0; i < 128; i++ {
		q.Push(msg, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(msg, uint64(128+i%512))
		q.Pop()
	}
}

func BenchmarkQueueBucketed(b *testing.B) { benchQueue(b, NewQueue) }
func BenchmarkQueueHeap(b *testing.B)     { benchQueue(b, NewHeapQueue) }
