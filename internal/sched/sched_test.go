package sched

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/panic-nic/panic/internal/packet"
)

func bulkMsg(id uint64) *packet.Message {
	return &packet.Message{ID: id, Class: packet.ClassBulk, Pkt: &packet.Packet{}}
}

func controlMsg(id uint64) *packet.Message {
	return &packet.Message{ID: id, Class: packet.ClassControl, Pkt: &packet.Packet{}}
}

func TestQueuePIFOOrder(t *testing.T) {
	q := NewQueue(10, Backpressure)
	q.Push(bulkMsg(1), 30)
	q.Push(bulkMsg(2), 10)
	q.Push(bulkMsg(3), 20)
	want := []uint64{2, 3, 1}
	for _, id := range want {
		m, ok := q.Pop()
		if !ok || m.ID != id {
			t.Fatalf("pop = %v ok=%v, want id %d", m, ok, id)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop on empty queue succeeded")
	}
}

func TestQueueFIFOTieBreak(t *testing.T) {
	q := NewQueue(10, Backpressure)
	for id := uint64(1); id <= 5; id++ {
		q.Push(bulkMsg(id), 7)
	}
	for id := uint64(1); id <= 5; id++ {
		m, _ := q.Pop()
		if m.ID != id {
			t.Fatalf("equal ranks not FIFO: got %d want %d", m.ID, id)
		}
	}
}

func TestQueueBackpressureRejects(t *testing.T) {
	q := NewQueue(2, Backpressure)
	q.Push(bulkMsg(1), 1)
	q.Push(bulkMsg(2), 2)
	res := q.Push(bulkMsg(3), 0)
	if res.Accepted || res.Dropped != nil {
		t.Errorf("full backpressure queue accepted push: %+v", res)
	}
	_, _, drops, rejects, hw := q.Stats()
	if drops != 0 || rejects != 1 || hw != 2 {
		t.Errorf("stats drops=%d rejects=%d hw=%d", drops, rejects, hw)
	}
}

func TestQueueLossyEvictsWorst(t *testing.T) {
	q := NewQueue(2, DropLowestPriority)
	q.Push(bulkMsg(1), 10)
	q.Push(bulkMsg(2), 50)
	// Better-ranked newcomer evicts the rank-50 occupant.
	res := q.Push(bulkMsg(3), 20)
	if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 2 {
		t.Fatalf("eviction wrong: %+v", res)
	}
	// Worse-ranked newcomer is itself shed.
	res = q.Push(bulkMsg(4), 99)
	if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 4 {
		t.Fatalf("tail-drop wrong: %+v", res)
	}
	m, _ := q.Pop()
	if m.ID != 1 {
		t.Errorf("head = %d, want 1", m.ID)
	}
}

func TestQueueNeverDropsLossless(t *testing.T) {
	q := NewQueue(2, DropLowestPriority)
	q.Push(controlMsg(1), 100)
	q.Push(bulkMsg(2), 1)
	// Newcomer (bulk, rank 50) beats nobody droppable except msg 2
	// (rank 1 is better). Worst droppable is msg 2? No: rank 1 < 50, so
	// the newcomer loses and is shed.
	res := q.Push(bulkMsg(3), 50)
	if res.Dropped == nil || res.Dropped.ID != 3 {
		t.Fatalf("expected newcomer shed, got %+v", res)
	}
	// A better bulk newcomer evicts the bulk occupant, never control.
	res = q.Push(bulkMsg(4), 0)
	if res.Dropped == nil || res.Dropped.ID != 2 {
		t.Fatalf("expected bulk evicted, got %+v", res)
	}
	// Queue now holds control(rank 100) and bulk(rank 0). Fill with
	// control and verify a full-lossless queue rejects lossless pushes.
	res = q.Push(controlMsg(5), 0)
	if res.Dropped == nil || res.Dropped.ID != 4 {
		t.Fatalf("expected bulk 4 evicted, got %+v", res)
	}
	res = q.Push(controlMsg(6), 0)
	if res.Accepted {
		t.Errorf("lossless push into all-lossless full queue accepted: %+v", res)
	}
	// A droppable push into an all-lossless queue is shed.
	res = q.Push(bulkMsg(7), 0)
	if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 7 {
		t.Errorf("droppable push should be self-shed: %+v", res)
	}
}

func TestQueueValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewQueue(0) did not panic")
		}
	}()
	NewQueue(0, Backpressure)
}

func TestPeek(t *testing.T) {
	q := NewQueue(4, Backpressure)
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty succeeded")
	}
	q.Push(bulkMsg(1), 5)
	q.Push(bulkMsg(2), 3)
	m, ok := q.Peek()
	r, _ := q.PeekRank()
	if !ok || m.ID != 2 || r != 3 {
		t.Errorf("peek = %v rank=%d", m, r)
	}
	if q.Len() != 2 {
		t.Errorf("peek consumed: len=%d", q.Len())
	}
}

func TestRankLSTF(t *testing.T) {
	// Smaller slack = earlier rank at the same arrival time; earlier
	// arrival wins for equal slack.
	m := bulkMsg(1)
	if RankLSTF(m, 10, 100) != 110 {
		t.Error("LSTF rank wrong")
	}
	if RankLSTF(m, 10, 100) >= RankLSTF(m, 50, 100) {
		t.Error("smaller slack should rank earlier")
	}
	if RankLSTF(m, 10, 100) >= RankLSTF(m, 10, 200) {
		t.Error("earlier arrival should rank earlier")
	}
}

func TestRankStrictPriority(t *testing.T) {
	c, l, b := controlMsg(1), &packet.Message{Class: packet.ClassLatency, Pkt: &packet.Packet{}}, bulkMsg(3)
	rc := RankStrictPriority(c, 0, 1000)
	rl := RankStrictPriority(l, 0, 5)
	rb := RankStrictPriority(b, 0, 5)
	if !(rc < rl && rl < rb) {
		t.Errorf("priority ordering wrong: %d %d %d", rc, rl, rb)
	}
}

func TestRankByName(t *testing.T) {
	for _, name := range []string{"lstf", "slack", "fifo", "priority", "strict"} {
		if RankByName(name) == nil {
			t.Errorf("RankByName(%q) = nil", name)
		}
	}
	if RankByName("bogus") != nil {
		t.Error("unknown rank name resolved")
	}
}

// TestPropertyPopOrderIsSortedByRank: popping everything yields
// non-decreasing ranks, with FIFO among equals; nothing is lost.
func TestPropertyPopOrderIsSortedByRank(t *testing.T) {
	prop := func(ranks []uint16) bool {
		q := NewQueue(len(ranks)+1, Backpressure)
		for i, r := range ranks {
			q.Push(bulkMsg(uint64(i)), uint64(r))
		}
		prevRank := uint64(0)
		prevID := map[uint64]uint64{} // rank -> last ID seen
		n := 0
		for {
			m, ok := q.Pop()
			if !ok {
				break
			}
			n++
			r := uint64(ranks[m.ID])
			if r < prevRank {
				return false
			}
			if last, seen := prevID[r]; seen && m.ID < last {
				return false // FIFO violated within a rank
			}
			prevID[r] = m.ID
			prevRank = r
		}
		return n == len(ranks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLossyQueueKeepsBestRanks: after overload, the survivors are
// exactly the best-ranked messages (stable under arrival order).
func TestPropertyLossyQueueKeepsBestRanks(t *testing.T) {
	prop := func(ranks []uint16, capSeed uint8) bool {
		if len(ranks) == 0 {
			return true
		}
		capacity := 1 + int(capSeed%8)
		q := NewQueue(capacity, DropLowestPriority)
		for i, r := range ranks {
			q.Push(bulkMsg(uint64(i)), uint64(r))
		}
		var got []uint64
		for {
			m, ok := q.Pop()
			if !ok {
				break
			}
			got = append(got, uint64(ranks[m.ID]))
		}
		sorted := make([]uint64, len(ranks))
		for i, r := range ranks {
			sorted[i] = uint64(r)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		keep := len(sorted)
		if keep > capacity {
			keep = capacity
		}
		if len(got) != keep {
			return false
		}
		for i := range got {
			if got[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLosslessNeverDropped: under arbitrary mixed overload, no
// control-class message is ever in a Dropped result, and all accepted
// control messages eventually pop.
func TestPropertyLosslessNeverDropped(t *testing.T) {
	prop := func(ops []uint16, capSeed uint8) bool {
		capacity := 1 + int(capSeed%6)
		q := NewQueue(capacity, DropLowestPriority)
		acceptedControl := map[uint64]bool{}
		id := uint64(0)
		for _, op := range ops {
			id++
			rank := uint64(op >> 2)
			if op&1 == 0 {
				res := q.Push(bulkMsg(id), rank)
				if res.Dropped != nil && res.Dropped.Class == packet.ClassControl {
					return false
				}
			} else {
				res := q.Push(controlMsg(id), rank)
				if res.Dropped != nil && res.Dropped.Class == packet.ClassControl {
					return false
				}
				if res.Accepted && res.Dropped == nil || (res.Accepted && res.Dropped != nil && res.Dropped.ID != id) {
					acceptedControl[id] = true
				}
			}
			if op&2 == 2 {
				if m, ok := q.Pop(); ok {
					delete(acceptedControl, m.ID)
				}
			}
		}
		for {
			m, ok := q.Pop()
			if !ok {
				break
			}
			delete(acceptedControl, m.ID)
		}
		return len(acceptedControl) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
