package sched

import (
	"math/rand"
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// These tests pin down the exact Push/Pop/eviction semantics of Queue —
// worstDroppable tie-breaks, push-into-full behaviour under each Policy,
// and FIFO ordering among equal ranks — so the priority-queue
// implementation behind Queue can be replaced without shifting a single
// decision.

// TestWorstDroppableTieBreakYoungest: among equal worst ranks the youngest
// occupant (largest seq) is the eviction victim, so older traffic survives.
func TestWorstDroppableTieBreakYoungest(t *testing.T) {
	q := NewQueue(3, DropLowestPriority)
	q.Push(bulkMsg(1), 5)
	q.Push(bulkMsg(2), 5)
	q.Push(bulkMsg(3), 5)
	// A lossless newcomer at the same rank does not lose the tie; it
	// evicts the worst droppable, which among the three rank-5 occupants
	// is the youngest arrival (ID 3).
	res := q.Push(controlMsg(4), 5)
	if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 3 {
		t.Fatalf("tie eviction = %+v, want youngest occupant (3) dropped", res)
	}
	// Survivors pop oldest-first within the equal rank.
	for _, want := range []uint64{1, 2, 4} {
		m, ok := q.Pop()
		if !ok || m.ID != want {
			t.Fatalf("pop = %v ok=%v, want id %d", m, ok, want)
		}
	}
}

// TestWorstDroppableSkipsLossless: the victim search never lands on a
// lossless occupant even when it holds the worst rank.
func TestWorstDroppableSkipsLossless(t *testing.T) {
	q := NewQueue(3, DropLowestPriority)
	q.Push(controlMsg(1), 900) // worst rank, but lossless
	q.Push(bulkMsg(2), 100)
	q.Push(bulkMsg(3), 200)
	res := q.Push(bulkMsg(4), 50)
	if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 3 {
		t.Fatalf("eviction = %+v, want droppable worst (3), never control (1)", res)
	}
}

// TestPushIntoFullPerPolicy enumerates every push-into-full case.
func TestPushIntoFullPerPolicy(t *testing.T) {
	t.Run("backpressure-rejects-even-better-rank", func(t *testing.T) {
		q := NewQueue(2, Backpressure)
		q.Push(bulkMsg(1), 10)
		q.Push(bulkMsg(2), 20)
		res := q.Push(bulkMsg(3), 1) // better than everything present
		if res.Accepted || res.Dropped != nil {
			t.Fatalf("backpressure accepted into full queue: %+v", res)
		}
		res = q.Push(controlMsg(4), 1) // lossless gets no special pass
		if res.Accepted || res.Dropped != nil {
			t.Fatalf("backpressure accepted lossless into full queue: %+v", res)
		}
		if _, _, drops, rejects, _ := q.Stats(); drops != 0 || rejects != 2 {
			t.Fatalf("stats drops=%d rejects=%d, want 0/2", drops, rejects)
		}
	})
	t.Run("lossy-better-rank-evicts", func(t *testing.T) {
		q := NewQueue(2, DropLowestPriority)
		q.Push(bulkMsg(1), 10)
		q.Push(bulkMsg(2), 20)
		res := q.Push(bulkMsg(3), 15)
		if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 2 {
			t.Fatalf("better-ranked newcomer: %+v, want 2 evicted", res)
		}
	})
	t.Run("lossy-equal-rank-droppable-newcomer-sheds-itself", func(t *testing.T) {
		q := NewQueue(2, DropLowestPriority)
		q.Push(bulkMsg(1), 10)
		q.Push(bulkMsg(2), 20)
		res := q.Push(bulkMsg(3), 20) // ties the worst occupant
		if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 3 {
			t.Fatalf("equal-rank newcomer should lose the tie: %+v", res)
		}
	})
	t.Run("lossy-equal-rank-lossless-newcomer-wins", func(t *testing.T) {
		q := NewQueue(2, DropLowestPriority)
		q.Push(bulkMsg(1), 10)
		q.Push(bulkMsg(2), 20)
		res := q.Push(controlMsg(3), 20) // lossless wins the tie
		if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 2 {
			t.Fatalf("lossless tie newcomer should evict occupant: %+v", res)
		}
	})
	t.Run("lossy-worse-rank-newcomer-sheds-itself", func(t *testing.T) {
		q := NewQueue(2, DropLowestPriority)
		q.Push(bulkMsg(1), 10)
		q.Push(bulkMsg(2), 20)
		res := q.Push(bulkMsg(3), 99)
		if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 3 {
			t.Fatalf("worse-ranked newcomer should be shed: %+v", res)
		}
	})
	t.Run("lossy-all-lossless-occupants", func(t *testing.T) {
		q := NewQueue(2, DropLowestPriority)
		q.Push(controlMsg(1), 10)
		q.Push(controlMsg(2), 20)
		// A lossless push into an all-lossless full queue is refused (the
		// caller must stall); a droppable one is shed regardless of rank.
		res := q.Push(controlMsg(3), 1)
		if res.Accepted || res.Dropped != nil {
			t.Fatalf("lossless push into all-lossless full queue: %+v", res)
		}
		res = q.Push(bulkMsg(4), 1)
		if !res.Accepted || res.Dropped == nil || res.Dropped.ID != 4 {
			t.Fatalf("droppable push into all-lossless full queue: %+v", res)
		}
	})
}

// TestRankEqualFIFOSurvivesEviction: arrival order among equal ranks is
// preserved even after an eviction reshuffles the queue internals.
func TestRankEqualFIFOSurvivesEviction(t *testing.T) {
	q := NewQueue(4, DropLowestPriority)
	q.Push(bulkMsg(1), 7)
	q.Push(bulkMsg(2), 7)
	q.Push(bulkMsg(3), 99) // the victim
	q.Push(bulkMsg(4), 7)
	res := q.Push(bulkMsg(5), 7)
	if res.Dropped == nil || res.Dropped.ID != 3 {
		t.Fatalf("eviction = %+v, want 3", res)
	}
	for _, want := range []uint64{1, 2, 4, 5} {
		m, ok := q.Pop()
		if !ok || m.ID != want {
			t.Fatalf("pop = %v ok=%v, want id %d (FIFO among equal ranks)", m, ok, want)
		}
	}
}

// refQueue is an independent executable model of the Queue specification:
// a stable sorted list ordered by (rank, arrival). Used as the oracle in
// the differential test.
type refQueue struct {
	entries []refEntry
	cap     int
	policy  Policy
	seq     uint64
}

type refEntry struct {
	msg  *packet.Message
	rank uint64
	seq  uint64
}

func (r *refQueue) push(msg *packet.Message, rank uint64) PushResult {
	if len(r.entries) < r.cap {
		r.seq++
		r.entries = append(r.entries, refEntry{msg, rank, r.seq})
		return PushResult{Accepted: true}
	}
	if r.policy == Backpressure {
		return PushResult{}
	}
	worst := -1
	for i, e := range r.entries {
		if e.msg.Lossless() {
			continue
		}
		if worst < 0 || e.rank > r.entries[worst].rank ||
			(e.rank == r.entries[worst].rank && e.seq > r.entries[worst].seq) {
			worst = i
		}
	}
	if worst < 0 {
		if msg.Lossless() {
			return PushResult{}
		}
		return PushResult{Accepted: true, Dropped: msg}
	}
	w := r.entries[worst]
	if (rank > w.rank || (rank == w.rank && !msg.Lossless())) && !msg.Lossless() {
		return PushResult{Accepted: true, Dropped: msg}
	}
	r.entries = append(r.entries[:worst], r.entries[worst+1:]...)
	r.seq++
	r.entries = append(r.entries, refEntry{msg, rank, r.seq})
	return PushResult{Accepted: true, Dropped: w.msg}
}

func (r *refQueue) pop() (*packet.Message, bool) {
	if len(r.entries) == 0 {
		return nil, false
	}
	best := 0
	for i, e := range r.entries {
		if e.rank < r.entries[best].rank ||
			(e.rank == r.entries[best].rank && e.seq < r.entries[best].seq) {
			best = i
		}
	}
	m := r.entries[best].msg
	r.entries = append(r.entries[:best], r.entries[best+1:]...)
	return m, true
}

func (r *refQueue) peekRank() (uint64, bool) {
	if len(r.entries) == 0 {
		return 0, false
	}
	best := r.entries[0]
	for _, e := range r.entries[1:] {
		if e.rank < best.rank || (e.rank == best.rank && e.seq < best.seq) {
			best = e
		}
	}
	return best.rank, true
}

// TestQueueDifferentialVsReference drives Queue and the reference model
// with the same randomized operation stream — including the extreme rank
// spreads real rankers produce (wLSTF's exhausted penalty 1<<20, strict
// priority's level<<48) — and demands identical decisions throughout.
func TestQueueDifferentialVsReference(t *testing.T) {
	impls := []struct {
		name string
		make func(int, Policy) *Queue
	}{
		{"bucketed", NewQueue},
		{"heap", NewHeapQueue},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) { diffTest(t, impl.make) })
	}
}

func diffTest(t *testing.T, mk func(int, Policy) *Queue) {
	for _, policy := range []Policy{Backpressure, DropLowestPriority} {
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed))
			capacity := 1 + rng.Intn(16)
			q := mk(capacity, policy)
			ref := &refQueue{cap: capacity, policy: policy}
			id := uint64(0)
			for op := 0; op < 2000; op++ {
				if rng.Intn(3) < 2 { // push-biased to exercise overflow
					id++
					var msg *packet.Message
					if rng.Intn(4) == 0 {
						msg = controlMsg(id)
					} else {
						msg = bulkMsg(id)
					}
					rank := uint64(rng.Intn(32))
					switch rng.Intn(3) {
					case 1:
						rank += 1 << 20 // wLSTF exhausted-tenant penalty band
					case 2:
						rank |= uint64(rng.Intn(3)) << 48 // strict-priority bands
					}
					got := q.Push(msg, rank)
					want := ref.push(msg, rank)
					if got.Accepted != want.Accepted ||
						(got.Dropped == nil) != (want.Dropped == nil) ||
						(got.Dropped != nil && got.Dropped.ID != want.Dropped.ID) {
						t.Fatalf("policy=%v seed=%d op=%d: Push(%d, %d) = %+v, reference %+v",
							policy, seed, op, msg.ID, rank, got, want)
					}
				} else {
					gm, gok := q.Pop()
					wm, wok := ref.pop()
					if gok != wok || (gok && gm.ID != wm.ID) {
						t.Fatalf("policy=%v seed=%d op=%d: Pop() = %v/%v, reference %v/%v",
							policy, seed, op, gm, gok, wm, wok)
					}
				}
				gr, gok := q.PeekRank()
				wr, wok := ref.peekRank()
				if gok != wok || gr != wr {
					t.Fatalf("policy=%v seed=%d op=%d: PeekRank() = %d/%v, reference %d/%v",
						policy, seed, op, gr, gok, wr, wok)
				}
				if q.Len() != len(ref.entries) {
					t.Fatalf("policy=%v seed=%d op=%d: Len() = %d, reference %d",
						policy, seed, op, q.Len(), len(ref.entries))
				}
			}
		}
	}
}
