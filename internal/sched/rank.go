package sched

import "github.com/panic-nic/panic/internal/packet"

// RankFunc maps a message arriving at cycle `now` with chain slack `slack`
// to a queue rank. Lower ranks are served first. The paper's scheduler is
// programmed by choosing how the RMT pipeline computes slack and how the
// queue turns it into a rank; these are the canonical choices ("this
// approach is able to implement any arbitrary local scheduling algorithm").
type RankFunc func(msg *packet.Message, slack uint32, now uint64) uint64

// RankLSTF implements least-slack-time-first: rank is the absolute cycle
// by which service should begin. A message whose slack expires sooner is
// served sooner, and waiting naturally increases urgency relative to new
// arrivals with fresh slack.
func RankLSTF(_ *packet.Message, slack uint32, now uint64) uint64 {
	return now + uint64(slack)
}

// RankFIFO ignores slack: arrival order.
func RankFIFO(_ *packet.Message, _ uint32, now uint64) uint64 {
	return now
}

// RankStrictPriority serves by traffic class (control before latency
// before bulk), FIFO within a class. The class occupies the high bits, the
// arrival cycle the low bits.
func RankStrictPriority(msg *packet.Message, _ uint32, now uint64) uint64 {
	var level uint64
	switch msg.Class {
	case packet.ClassControl:
		level = 0
	case packet.ClassLatency:
		level = 1
	default:
		level = 2
	}
	return level<<48 | (now & 0xffffffffffff)
}

// RankByName resolves a rank function from its configuration name.
// Unknown names return nil.
func RankByName(name string) RankFunc {
	switch name {
	case "lstf", "slack":
		return RankLSTF
	case "fifo":
		return RankFIFO
	case "priority", "strict":
		return RankStrictPriority
	default:
		return nil
	}
}
