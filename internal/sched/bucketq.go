package sched

import "math/bits"

// This file implements the calendar-queue PIFO backing Queue: a
// hierarchical-bitmap bucket array over a sliding rank window, with exact
// (rank, seq) heaps catching the ranks that fall outside it. Push, peek,
// and pop are O(1) for ranks inside the window — a two-level
// find-first-set over the occupancy bitmap replaces the O(log n)
// container/heap walk — and the ordering produced is bit-identical to the
// reference heap: lower rank first, FIFO (by push sequence) among equals.
//
// The window exploits how real rank functions behave: LSTF-style ranks are
// "absolute cycle service should begin", so at any instant the live ranks
// cluster within a few hundred cycles of each other. Outliers exist —
// wLSTF inflates exhausted tenants by 1<<20 cycles and strict priority
// places classes 2^48 apart — so correctness cannot assume the window;
// out-of-window entries go to the exact low/high heaps and migrate into
// the window when it slides over them.

const (
	// numBuckets is the calendar window width in rank units (one bucket
	// per exact rank, so in-bucket FIFO order IS the equal-rank tie-break).
	// Power of two; 1024 covers the live rank spread of every shipped rank
	// function's in-budget band.
	numBuckets  = 1024
	bucketWords = numBuckets / 64
)

// dropLoc identifies one resident entry so a worstDroppable scan's victim
// can be removed without a second search. Fields are implementation
// coordinates of the owning pifo and are only valid until the next
// mutation.
type dropLoc struct {
	region int8 // bucketQueue: 0 = low heap, 1 = bucket, 2 = high heap
	idx    int  // heap index, or bucket number
	pos    int  // position within the bucket slice
}

// pifo is the priority-queue contract Queue delegates to: min-(rank, seq)
// ordering out, plus the victim-search/removal hooks the lossy overflow
// policy needs. Implemented by bucketQueue (the default) and heapPifo (the
// container/heap reference kept for ablation runs).
type pifo interface {
	size() int
	insert(e entry)
	peekMin() (entry, bool)
	popMin() (entry, bool)
	worstDroppable() (entry, dropLoc, bool)
	removeAt(loc dropLoc)
	// each visits every resident entry in unspecified order (audit use
	// only — occupancy tallies, not scheduling decisions).
	each(fn func(e entry))
}

// bucketQueue is the calendar-queue pifo.
type bucketQueue struct {
	n    int
	base uint64 // rank of bucket 0; meaningful only while entries reside

	// Two-level occupancy bitmap: summary bit w set iff words[w] != 0.
	summary uint64
	words   [bucketWords]uint64

	// buckets[i] holds the entries of rank base+i in push order; head[i]
	// indexes the first live element (popped slots are not compacted until
	// the bucket drains, keeping pop O(1)).
	head    [numBuckets]int32
	buckets [numBuckets][]entry

	low  eheap // rank < base (rare: the window rebased past a later push)
	high eheap // rank >= base+numBuckets (penalty/priority outliers)
}

func (b *bucketQueue) set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
	b.summary |= 1 << (uint(i) >> 6)
}

func (b *bucketQueue) clearBit(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
	if b.words[i>>6] == 0 {
		b.summary &^= 1 << (uint(i) >> 6)
	}
}

// firstBucket returns the lowest occupied bucket index; the caller
// guarantees the bitmap is non-empty.
func (b *bucketQueue) firstBucket() int {
	w := bits.TrailingZeros64(b.summary)
	return w<<6 | bits.TrailingZeros64(b.words[w])
}

func (b *bucketQueue) size() int { return b.n }

func (b *bucketQueue) insert(e entry) {
	if b.n == 0 {
		// Empty queue: slide the window to start at the newcomer's rank.
		b.base = e.rank
	}
	b.n++
	switch {
	case e.rank < b.base:
		b.low.push(e)
	case e.rank-b.base < numBuckets:
		i := int(e.rank - b.base)
		b.buckets[i] = append(b.buckets[i], e)
		b.set(i)
	default:
		b.high.push(e)
	}
}

// rebase slides the window forward onto the high heap's minimum and pulls
// every now-in-window entry out of the heap. Heap pops come out in
// (rank, seq) order, so same-rank entries land in their bucket in FIFO
// order. Each entry migrates at most once, so the amortized cost stays
// O(log n) per out-of-window entry. Caller guarantees the bitmap and low
// heap are empty and the high heap is not.
func (b *bucketQueue) rebase() {
	b.base = b.high[0].rank
	for len(b.high) > 0 && b.high[0].rank-b.base < numBuckets {
		e := b.high.pop()
		i := int(e.rank - b.base)
		b.buckets[i] = append(b.buckets[i], e)
		b.set(i)
	}
}

func (b *bucketQueue) peekMin() (entry, bool) {
	if b.n == 0 {
		return entry{}, false
	}
	if len(b.low) > 0 {
		return b.low[0], true
	}
	if b.summary == 0 {
		b.rebase()
	}
	i := b.firstBucket()
	return b.buckets[i][b.head[i]], true
}

func (b *bucketQueue) popMin() (entry, bool) {
	if b.n == 0 {
		return entry{}, false
	}
	b.n--
	if len(b.low) > 0 {
		return b.low.pop(), true
	}
	if b.summary == 0 {
		b.rebase()
	}
	i := b.firstBucket()
	h := b.head[i]
	e := b.buckets[i][h]
	b.buckets[i][h] = entry{} // drop the message reference
	if int(h)+1 == len(b.buckets[i]) {
		b.buckets[i] = b.buckets[i][:0]
		b.head[i] = 0
		b.clearBit(i)
	} else {
		b.head[i] = h + 1
	}
	return e, true
}

// worstDroppable scans all three regions for the entry the lossy overflow
// policy evicts: maximum rank, ties to the largest seq (youngest), never a
// lossless message. O(n), like the reference implementation — it runs only
// on overflow of a DropLowestPriority queue, not on the served path.
func (b *bucketQueue) worstDroppable() (entry, dropLoc, bool) {
	var best entry
	var loc dropLoc
	found := false
	worse := func(e entry) bool {
		return !found || e.rank > best.rank || (e.rank == best.rank && e.seq > best.seq)
	}
	for i, e := range b.low {
		if !e.msg.Lossless() && worse(e) {
			best, loc, found = e, dropLoc{region: 0, idx: i}, true
		}
	}
	s := b.summary
	for s != 0 {
		w := bits.TrailingZeros64(s)
		s &= s - 1
		word := b.words[w]
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			bk := b.buckets[i]
			for j := int(b.head[i]); j < len(bk); j++ {
				if e := bk[j]; !e.msg.Lossless() && worse(e) {
					best, loc, found = e, dropLoc{region: 1, idx: i, pos: j}, true
				}
			}
		}
	}
	for i, e := range b.high {
		if !e.msg.Lossless() && worse(e) {
			best, loc, found = e, dropLoc{region: 2, idx: i}, true
		}
	}
	return best, loc, found
}

// each visits the low heap, every live bucket slot, and the high heap.
func (b *bucketQueue) each(fn func(e entry)) {
	for _, e := range b.low {
		fn(e)
	}
	s := b.summary
	for s != 0 {
		w := bits.TrailingZeros64(s)
		s &= s - 1
		word := b.words[w]
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			bk := b.buckets[i]
			for j := int(b.head[i]); j < len(bk); j++ {
				fn(bk[j])
			}
		}
	}
	for _, e := range b.high {
		fn(e)
	}
}

func (b *bucketQueue) removeAt(loc dropLoc) {
	b.n--
	switch loc.region {
	case 0:
		b.low.removeAt(loc.idx)
	case 1:
		i := loc.idx
		bk := b.buckets[i]
		copy(bk[loc.pos:], bk[loc.pos+1:])
		bk[len(bk)-1] = entry{}
		b.buckets[i] = bk[:len(bk)-1]
		if int(b.head[i]) == len(b.buckets[i]) {
			b.buckets[i] = b.buckets[i][:0]
			b.head[i] = 0
			b.clearBit(i)
		}
	case 2:
		b.high.removeAt(loc.idx)
	}
}

// eheap is a binary min-heap of entries ordered by (rank, seq), written
// against the concrete type so pushes do not box through interface{} the
// way container/heap does (that boxing was the queue hot path's only
// steady-state allocation).
type eheap []entry

func eless(a, b entry) bool {
	return a.rank < b.rank || (a.rank == b.rank && a.seq < b.seq)
}

func (h *eheap) push(e entry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h eheap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !eless(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h eheap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eless(h[r], h[l]) {
			m = r
		}
		if !eless(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *eheap) pop() entry {
	old := *h
	n := len(old) - 1
	e := old[0]
	old[0] = old[n]
	old[n] = entry{}
	*h = old[:n]
	if n > 0 {
		old[:n].down(0)
	}
	return e
}

func (h *eheap) removeAt(i int) {
	old := *h
	n := len(old) - 1
	old[i] = old[n]
	old[n] = entry{}
	*h = old[:n]
	if i < n {
		old[:n].down(i)
		old[:n].up(i)
	}
}
