package sched

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

func wlstfMsg(tenant uint16, bytes int) *packet.Message {
	return &packet.Message{Tenant: tenant, Pkt: &packet.Packet{PayloadLen: bytes}}
}

func TestWLSTFWeightScalesSlack(t *testing.T) {
	rank := NewRankWeightedLSTF(WLSTFConfig{
		Weights: map[uint16]uint64{1: 4, 2: 1},
		// Large budgets so credits never bite in this test.
		QuantumBytes: 1 << 20,
	})
	now := uint64(100)
	heavy := rank(wlstfMsg(1, 64), 400, now)
	light := rank(wlstfMsg(2, 64), 400, now)
	// Weight 4 vs 1 with maxW 4: heavy sees slack 400*4/4 = 400, light
	// 400*4/1 = 1600. Lower rank = served first.
	if heavy != now+400 || light != now+1600 {
		t.Errorf("ranks = %d, %d; want %d, %d", heavy, light, now+400, now+1600)
	}
	if heavy >= light {
		t.Error("heavier tenant must outrank lighter at equal slack")
	}
}

func TestWLSTFUnknownTenantGetsDefaultWeight(t *testing.T) {
	rank := NewRankWeightedLSTF(WLSTFConfig{
		Weights:       map[uint16]uint64{1: 2},
		DefaultWeight: 1,
		QuantumBytes:  1 << 20,
	})
	known := rank(wlstfMsg(1, 64), 100, 0)
	unknown := rank(wlstfMsg(77, 64), 100, 0)
	if unknown <= known {
		t.Errorf("unknown tenant rank %d should trail known weighted tenant %d", unknown, known)
	}
}

func TestWLSTFCreditExhaustionPenalizesAggressor(t *testing.T) {
	cfg := WLSTFConfig{
		Weights:      map[uint16]uint64{1: 1, 2: 1},
		RefillPeriod: 64,
		QuantumBytes: 1024,
		BurstBytes:   2048,
	}
	rank := NewRankWeightedLSTF(cfg)
	// Aggressor (tenant 2) burns its 2048-byte burst with two 1024-byte
	// messages, all at cycle 0 so no refill happens.
	r1 := rank(wlstfMsg(2, 1024), 100, 0)
	r2 := rank(wlstfMsg(2, 1024), 100, 0)
	if r1 != r2 {
		t.Errorf("in-budget ranks differ: %d vs %d", r1, r2)
	}
	broke := rank(wlstfMsg(2, 1024), 100, 0)
	if broke < r1+(1<<20) {
		t.Errorf("exhausted tenant rank %d not penalized (in-budget %d)", broke, r1)
	}
	// The victim (tenant 1) still has credit: its message outranks the
	// aggressor's even with far less slack headroom.
	victim := rank(wlstfMsg(1, 64), 5000, 0)
	if victim >= broke {
		t.Errorf("victim rank %d must beat exhausted aggressor %d", victim, broke)
	}
}

func TestWLSTFCreditRefillsDeficitStyle(t *testing.T) {
	cfg := WLSTFConfig{
		Weights:      map[uint16]uint64{2: 1},
		RefillPeriod: 64,
		QuantumBytes: 1024,
		BurstBytes:   1024,
	}
	rank := NewRankWeightedLSTF(cfg)
	fresh := rank(wlstfMsg(2, 1024), 100, 0) // spends the full burst
	broke := rank(wlstfMsg(2, 1024), 100, 0)
	if broke <= fresh {
		t.Fatal("second message should have exhausted the bucket")
	}
	// One refill period later the tenant has earned a fresh quantum.
	healed := rank(wlstfMsg(2, 512), 100, 64)
	if healed != 64+100 {
		t.Errorf("post-refill rank = %d, want %d (un-penalized LSTF)", healed, 64+100)
	}
	// Idle periods cannot bank past the burst cap: after a very long idle
	// stretch the tenant still cannot pay for more than BurstBytes.
	rank(wlstfMsg(2, 1024), 100, 1_000_000) // drains the (capped) bucket
	over := rank(wlstfMsg(2, 1024), 100, 1_000_000)
	if over < 1_000_000+100+(1<<20) {
		t.Errorf("burst cap not enforced: rank %d after long idle", over)
	}
}

func TestWLSTFWorkConserving(t *testing.T) {
	// Penalized messages still get a finite rank: a saturating tenant
	// alone on the NIC keeps draining, just with inflated deadlines.
	rank := NewRankWeightedLSTF(WLSTFConfig{Weights: map[uint16]uint64{1: 1}})
	var last uint64
	for i := 0; i < 1000; i++ {
		last = rank(wlstfMsg(1, 1500), 100, uint64(i))
	}
	if last == 0 || last == ^uint64(0) {
		t.Errorf("penalized rank %d not a usable deadline", last)
	}
}

func TestWLSTFDeterministicAcrossInstances(t *testing.T) {
	cfg := WLSTFConfig{Weights: map[uint16]uint64{1: 3, 2: 1, 7: 5}}
	a := NewRankWeightedLSTF(cfg)
	b := NewRankWeightedLSTF(cfg)
	tenants := []uint16{1, 2, 7, 2, 1, 7, 7, 1}
	for i, tn := range tenants {
		now := uint64(i * 37)
		m := wlstfMsg(tn, 64+i*200)
		if ra, rb := a(m, uint32(i*11), now), b(m, uint32(i*11), now); ra != rb {
			t.Fatalf("call %d: instance ranks diverge: %d vs %d", i, ra, rb)
		}
	}
}
