package sched

import "github.com/panic-nic/panic/internal/packet"

// NewRankWFQ returns a weighted-fair-queueing rank function over tenants,
// demonstrating the paper's claim that the slack/PIFO mechanism "is able
// to implement any arbitrary local scheduling algorithm" (§3.1.3): rank is
// the tenant's virtual finish time — start-time fair queueing with
// per-tenant weights. A tenant with weight 2 receives twice the service
// share of a tenant with weight 1 under contention, and unused share flows
// to backlogged tenants.
//
// The returned function carries per-tenant state; give each engine its own
// instance (sharing one across engines couples their virtual clocks).
// Unknown tenants get defaultWeight.
func NewRankWFQ(weights map[uint16]uint64, defaultWeight uint64) RankFunc {
	if defaultWeight == 0 {
		defaultWeight = 1
	}
	w := make(map[uint16]uint64, len(weights))
	for t, v := range weights {
		if v == 0 {
			v = 1
		}
		w[t] = v
	}
	finish := make(map[uint16]uint64)
	return func(msg *packet.Message, _ uint32, now uint64) uint64 {
		weight := w[msg.Tenant]
		if weight == 0 {
			weight = defaultWeight
		}
		start := finish[msg.Tenant]
		// Virtual time advances with real time when the tenant is idle
		// (start-time fair queueing's max(arrival, lastFinish)).
		if now > start {
			start = now
		}
		f := start + uint64(msg.WireLen()*8)/weight
		if f == start {
			f = start + 1
		}
		finish[msg.Tenant] = f
		return f
	}
}
