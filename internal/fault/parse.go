package fault

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
)

// ParsePlan reads the text fault-plan format, one event per line:
//
//	# comments and blank lines are ignored
//	at <cycle> wedge <engine> [for <cycles>]
//	at <cycle> slow <engine> x<factor> [for <cycles>]
//	at <cycle> drop <engine> every <n> [tenant <t>] [for <cycles>]
//	at <cycle> corrupt <engine> every <n> [for <cycles>]
//	at <cycle> degrade <x>,<y>-><x>,<y> every <n> [for <cycles>]
//	at <cycle> sever <x>,<y>-><x>,<y> [for <cycles>]
//	at <cycle> heal <engine>
//	at <cycle> heal-link <x>,<y>-><x>,<y>
//
// <engine> is either a numeric address or a name resolved through names
// (e.g. core.EngineAddrs()); names may be nil for numeric-only plans. A
// "for" clause auto-heals the fault that many cycles later.
//
// Every malformed or semantically invalid line is rejected with a
// *ParseError carrying the 1-based line number and the offending text —
// nothing is skipped silently, and no input panics (FuzzParsePlan holds
// the parser to that).
func ParsePlan(r io.Reader, names map[string]packet.Addr) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line, names)
		if err == nil {
			// Semantic validation right here, so a bad operand value is
			// reported against its source line, not an event index.
			err = e.validate(len(p.Events))
		}
		if err != nil {
			return nil, &ParseError{Line: lineNo, Input: line, Err: err}
		}
		p.Add(e)
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: lineNo, Err: err}
	}
	return p, nil
}

// ParseError is a rejected fault-plan line: where it was, what it said,
// and why it was refused. It unwraps to the underlying cause.
type ParseError struct {
	// Line is the 1-based line number in the plan text.
	Line int
	// Input is the offending line, trimmed (empty when the failure was an
	// I/O error from the reader rather than a bad line).
	Input string
	// Err is the underlying cause.
	Err error
}

func (e *ParseError) Error() string {
	if e.Input == "" {
		return fmt.Sprintf("fault: line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("fault: line %d: %q: %v", e.Line, e.Input, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

func parseLine(line string, names map[string]packet.Addr) (Event, error) {
	f := strings.Fields(line)
	if len(f) < 3 || f[0] != "at" {
		return Event{}, fmt.Errorf("want %q, got %q", "at <cycle> <kind> ...", line)
	}
	at, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad cycle %q", f[1])
	}
	e := Event{At: at}
	rest := f[3:]

	// Optional trailing "for <cycles>".
	if len(rest) >= 2 && rest[len(rest)-2] == "for" {
		d, err := strconv.ParseUint(rest[len(rest)-1], 10, 64)
		if err != nil || d == 0 {
			return Event{}, fmt.Errorf("bad duration %q", rest[len(rest)-1])
		}
		e.For = d
		rest = rest[:len(rest)-2]
	}

	kind := f[2]
	switch kind {
	case "wedge", "heal":
		if kind == "wedge" {
			e.Kind = Wedge
		} else {
			e.Kind = Heal
		}
		if len(rest) != 1 {
			return Event{}, fmt.Errorf("%s wants one engine operand", kind)
		}
		if e.Engine, err = parseEngine(rest[0], names); err != nil {
			return Event{}, err
		}
	case "slow":
		e.Kind = Slow
		if len(rest) != 2 || !strings.HasPrefix(rest[1], "x") {
			return Event{}, fmt.Errorf("slow wants %q", "<engine> x<factor>")
		}
		if e.Engine, err = parseEngine(rest[0], names); err != nil {
			return Event{}, err
		}
		if e.Factor, err = strconv.ParseFloat(rest[1][1:], 64); err != nil {
			return Event{}, fmt.Errorf("bad factor %q", rest[1])
		}
	case "drop", "corrupt":
		if kind == "drop" {
			e.Kind = FlakeDrop
		} else {
			e.Kind = FlakeCorrupt
		}
		// Optional trailing "tenant <t>" (drop only; validate rejects it on
		// corrupt).
		if len(rest) >= 2 && rest[len(rest)-2] == "tenant" {
			t, terr := strconv.ParseUint(rest[len(rest)-1], 10, 16)
			if terr != nil {
				return Event{}, fmt.Errorf("bad tenant %q", rest[len(rest)-1])
			}
			e.Tenant = uint16(t)
			e.HasTenant = true
			rest = rest[:len(rest)-2]
		}
		if len(rest) != 3 || rest[1] != "every" {
			return Event{}, fmt.Errorf("%s wants %q", kind, "<engine> every <n>")
		}
		if e.Engine, err = parseEngine(rest[0], names); err != nil {
			return Event{}, err
		}
		if e.EveryN, err = strconv.Atoi(rest[2]); err != nil {
			return Event{}, fmt.Errorf("bad period %q", rest[2])
		}
	case "degrade":
		e.Kind = LinkDegrade
		if len(rest) != 3 || rest[1] != "every" {
			return Event{}, fmt.Errorf("degrade wants %q", "<x,y>-><x,y> every <n>")
		}
		if e.From, e.To, err = parseLink(rest[0]); err != nil {
			return Event{}, err
		}
		if e.EveryN, err = strconv.Atoi(rest[2]); err != nil {
			return Event{}, fmt.Errorf("bad period %q", rest[2])
		}
	case "sever", "heal-link":
		if kind == "sever" {
			e.Kind = LinkSever
		} else {
			e.Kind = HealLink
		}
		if len(rest) != 1 {
			return Event{}, fmt.Errorf("%s wants one link operand", kind)
		}
		if e.From, e.To, err = parseLink(rest[0]); err != nil {
			return Event{}, err
		}
	default:
		return Event{}, fmt.Errorf("unknown fault kind %q", kind)
	}
	return e, nil
}

func parseEngine(tok string, names map[string]packet.Addr) (packet.Addr, error) {
	if a, ok := names[strings.ToLower(tok)]; ok {
		return a, nil
	}
	n, err := strconv.ParseUint(tok, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("unknown engine %q", tok)
	}
	return packet.Addr(n), nil
}

func parseLink(tok string) (from, to noc.Coord, err error) {
	parts := strings.Split(tok, "->")
	if len(parts) != 2 {
		return from, to, fmt.Errorf("bad link %q (want x,y->x,y)", tok)
	}
	if from, err = parseCoord(parts[0]); err != nil {
		return from, to, err
	}
	to, err = parseCoord(parts[1])
	return from, to, err
}

func parseCoord(tok string) (noc.Coord, error) {
	parts := strings.Split(tok, ",")
	if len(parts) != 2 {
		return noc.Coord{}, fmt.Errorf("bad coordinate %q (want x,y)", tok)
	}
	x, err1 := strconv.Atoi(parts[0])
	y, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return noc.Coord{}, fmt.Errorf("bad coordinate %q (want x,y)", tok)
	}
	return noc.Coord{X: x, Y: y}, nil
}
