// Package fault provides deterministic, cycle-pinned fault injection for
// the PANIC fabric. A Plan is a list of timed events — wedge/slow/flake an
// engine tile, degrade or sever a NoC link — armed onto the simulation
// kernel before the clock starts. Injection is purely schedule-driven (no
// randomness beyond what the plan text pins down), so a run with the same
// seed and the same plan is bit-identical, which is what makes failover
// behavior testable at all.
package fault

import (
	"fmt"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// Kind identifies a fault event type.
type Kind int

// Fault kinds.
const (
	// Wedge freezes an engine tile (no service progress) until healed.
	Wedge Kind = iota
	// Slow multiplies an engine's service times by Factor.
	Slow
	// FlakeDrop makes an engine discard every Nth arriving message.
	FlakeDrop
	// FlakeCorrupt makes an engine corrupt (and discard) every Nth
	// arriving message.
	FlakeCorrupt
	// LinkDegrade throttles the directional mesh link From->To to one
	// flit every N cycles.
	LinkDegrade
	// LinkSever blocks the directional mesh link From->To entirely.
	LinkSever
	// Heal clears all engine faults on the target tile.
	Heal
	// HealLink clears the fault on the directional link From->To.
	HealLink
)

// String returns the plan-format keyword for the kind.
func (k Kind) String() string {
	switch k {
	case Wedge:
		return "wedge"
	case Slow:
		return "slow"
	case FlakeDrop:
		return "drop"
	case FlakeCorrupt:
		return "corrupt"
	case LinkDegrade:
		return "degrade"
	case LinkSever:
		return "sever"
	case Heal:
		return "heal"
	case HealLink:
		return "heal-link"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timed fault. Which fields are meaningful depends on Kind:
// engine faults use Engine (plus Factor for Slow, EveryN for flakes); link
// faults use From/To (plus EveryN for LinkDegrade).
type Event struct {
	// At is the cycle the event applies, at start-of-cycle before any
	// ticker runs.
	At uint64
	// Kind selects the fault type.
	Kind Kind
	// Engine is the target tile's logical address (engine faults).
	Engine packet.Addr
	// Factor is the service-time multiplier for Slow (>= 1).
	Factor float64
	// EveryN is the flake period (>= 1) or the LinkDegrade pass period
	// (>= 2).
	EveryN int
	// From and To are the link endpoints' mesh coordinates (link faults).
	From, To noc.Coord
	// Tenant, valid when HasTenant, restricts a FlakeDrop to arrivals
	// carrying that accounting tenant — the fault is confined to one
	// tenant's flow state instead of the whole engine.
	Tenant    uint16
	HasTenant bool
	// For, when non-zero, auto-heals the fault For cycles after At.
	For uint64
}

// String renders the event in plan format (one line, without trailing
// newline), so a parsed plan round-trips.
func (e Event) String() string {
	s := fmt.Sprintf("at %d %s", e.At, e.Kind)
	switch e.Kind {
	case Wedge, Heal:
		s += fmt.Sprintf(" %d", e.Engine)
	case Slow:
		s += fmt.Sprintf(" %d x%g", e.Engine, e.Factor)
	case FlakeDrop, FlakeCorrupt:
		s += fmt.Sprintf(" %d every %d", e.Engine, e.EveryN)
		if e.HasTenant {
			s += fmt.Sprintf(" tenant %d", e.Tenant)
		}
	case LinkDegrade:
		s += fmt.Sprintf(" %d,%d->%d,%d every %d", e.From.X, e.From.Y, e.To.X, e.To.Y, e.EveryN)
	case LinkSever, HealLink:
		s += fmt.Sprintf(" %d,%d->%d,%d", e.From.X, e.From.Y, e.To.X, e.To.Y)
	}
	if e.For > 0 {
		s += fmt.Sprintf(" for %d", e.For)
	}
	return s
}

// isLink reports whether the event targets a mesh link.
func (e Event) isLink() bool {
	switch e.Kind {
	case LinkDegrade, LinkSever, HealLink:
		return true
	}
	return false
}

// validate rejects ill-formed events with an index-bearing error.
func (e Event) validate(i int) error {
	switch e.Kind {
	case Wedge, Heal:
	case Slow:
		if !(e.Factor >= 1) { // NaN-safe
			return fmt.Errorf("fault: event %d: slow factor %v (want >= 1)", i, e.Factor)
		}
	case FlakeDrop, FlakeCorrupt:
		if e.EveryN < 1 {
			return fmt.Errorf("fault: event %d: flake period %d (want >= 1)", i, e.EveryN)
		}
		if e.HasTenant && e.Kind != FlakeDrop {
			return fmt.Errorf("fault: event %d: tenant scope is only supported on drop faults", i)
		}
	case LinkDegrade:
		if e.EveryN < 2 {
			return fmt.Errorf("fault: event %d: degrade period %d (want >= 2)", i, e.EveryN)
		}
	case LinkSever, HealLink:
	default:
		return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
	}
	if (e.Kind == Heal || e.Kind == HealLink) && e.For > 0 {
		return fmt.Errorf("fault: event %d: heal events cannot carry a duration", i)
	}
	return nil
}

// Plan is an ordered list of fault events. Events at the same cycle apply
// in plan order.
type Plan struct {
	Events []Event
}

// Add appends an event and returns the plan for chaining.
func (p *Plan) Add(e Event) *Plan {
	p.Events = append(p.Events, e)
	return p
}

// String renders the plan in its text format.
func (p *Plan) String() string {
	s := ""
	for _, e := range p.Events {
		s += e.String() + "\n"
	}
	return s
}

// Shifted returns a copy of the plan with every event's At advanced by
// base cycles. It is the live-injection adapter: a plan written with
// cycles relative to "now" (cycle 0 = the moment of injection) becomes an
// absolute-cycle plan that Arm can schedule mid-run. For-durations are
// relative already and are untouched.
func (p *Plan) Shifted(base uint64) *Plan {
	out := &Plan{Events: make([]Event, len(p.Events))}
	copy(out.Events, p.Events)
	for i := range out.Events {
		out.Events[i].At += base
	}
	return out
}

// Validate checks every event.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Hooks connects a plan to the simulated hardware it injects into.
type Hooks struct {
	// Tile resolves an engine address to its tile; returning nil makes
	// Arm fail (the plan names an engine the NIC does not have).
	Tile func(packet.Addr) *engine.Tile
	// Mesh is the fabric for link faults; nil makes link events fail.
	Mesh *noc.Mesh
	// Observe, when set, is called as each event (including synthesized
	// auto-heals) takes effect — the health monitor's event log taps in
	// here.
	Observe func(e Event, cycle uint64)
}

// Arm validates the plan and schedules every event on the kernel. Called
// before the clock starts it accepts any plan; called mid-run (live
// injection through the serve control plane) every event must lie strictly
// in the future — use Shifted to rebase a relative plan onto the current
// cycle. Events with a For duration schedule their own heal at At+For.
func (p *Plan) Arm(k *sim.Kernel, h Hooks) error {
	if err := p.Validate(); err != nil {
		return err
	}
	// Resolve all targets up front so a bad plan fails at arm time, not
	// mid-simulation.
	for i, e := range p.Events {
		if now := k.Now(); now > 0 && e.At <= now {
			return fmt.Errorf("fault: event %d: at %d is not after current cycle %d", i, e.At, now)
		}
		if e.isLink() {
			if h.Mesh == nil {
				return fmt.Errorf("fault: event %d: link fault without a mesh hook", i)
			}
			// NodeAt panics on out-of-range coordinates; surface as error.
			if err := checkCoord(h.Mesh, e.From); err != nil {
				return fmt.Errorf("fault: event %d: %v", i, err)
			}
			if err := checkCoord(h.Mesh, e.To); err != nil {
				return fmt.Errorf("fault: event %d: %v", i, err)
			}
			continue
		}
		if h.Tile == nil || h.Tile(e.Engine) == nil {
			return fmt.Errorf("fault: event %d: no tile at engine address %d", i, e.Engine)
		}
	}
	for _, e := range p.Events {
		e := e
		k.At(e.At, func() { apply(e, h, e.At) })
		if e.For > 0 {
			heal := healFor(e)
			k.At(heal.At, func() { apply(heal, h, heal.At) })
		}
	}
	return nil
}

// healFor returns the synthesized heal event ending a For-duration fault.
func healFor(e Event) Event {
	if e.isLink() {
		return Event{At: e.At + e.For, Kind: HealLink, From: e.From, To: e.To}
	}
	return Event{At: e.At + e.For, Kind: Heal, Engine: e.Engine}
}

// apply takes one event's effect on the hardware.
func apply(e Event, h Hooks, cycle uint64) {
	if e.isLink() {
		from := h.Mesh.NodeAt(e.From.X, e.From.Y)
		to := h.Mesh.NodeAt(e.To.X, e.To.Y)
		switch e.Kind {
		case LinkDegrade:
			h.Mesh.SetLinkFault(from, to, noc.LinkFault{PassEveryN: e.EveryN})
		case LinkSever:
			h.Mesh.SetLinkFault(from, to, noc.LinkFault{Severed: true})
		case HealLink:
			h.Mesh.SetLinkFault(from, to, noc.LinkFault{})
		}
	} else {
		t := h.Tile(e.Engine)
		f := t.FaultState()
		switch e.Kind {
		case Wedge:
			f.Wedged = true
		case Slow:
			f.SlowFactor = e.Factor
		case FlakeDrop:
			f.DropEveryN = e.EveryN
			f.DropTenantOnly = e.HasTenant
			f.DropTenant = e.Tenant
		case FlakeCorrupt:
			f.CorruptEveryN = e.EveryN
		case Heal:
			f = engine.FaultState{}
		}
		t.SetFault(f)
	}
	if h.Observe != nil {
		h.Observe(e, cycle)
	}
}

func checkCoord(m *noc.Mesh, c noc.Coord) (err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("coordinate (%d,%d) outside mesh", c.X, c.Y)
		}
	}()
	m.NodeAt(c.X, c.Y)
	return nil
}
