package fault

import (
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
)

const samplePlan = `
# wedge the ipsec engine at cycle 100 for 50 cycles
at 100 wedge 34 for 50
at 120 slow 35 x2.5
at 130 drop 35 every 7
at 135 drop 36 every 2 tenant 4 for 80
at 140 corrupt 36 every 3 for 10
at 150 degrade 1,0->0,0 every 4
at 160 sever 0,0->1,0 for 25
at 200 heal 35
at 210 heal-link 1,0->0,0
`

func TestParsePlanRoundTrips(t *testing.T) {
	p, err := ParsePlan(strings.NewReader(samplePlan), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 9 {
		t.Fatalf("parsed %d events, want 9", len(p.Events))
	}
	// The canonical rendering re-parses to the same plan.
	p2, err := ParsePlan(strings.NewReader(p.String()), nil)
	if err != nil {
		t.Fatalf("re-parse: %v (rendered:\n%s)", err, p.String())
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p.String(), p2.String())
	}
	e := p.Events[0]
	if e.At != 100 || e.Kind != Wedge || e.Engine != 34 || e.For != 50 {
		t.Fatalf("event 0 = %+v", e)
	}
	if p.Events[1].Factor != 2.5 {
		t.Fatalf("slow factor = %v", p.Events[1].Factor)
	}
	if e := p.Events[3]; e.Kind != FlakeDrop || e.Engine != 36 || e.EveryN != 2 ||
		!e.HasTenant || e.Tenant != 4 || e.For != 80 {
		t.Fatalf("tenant-scoped drop event = %+v", e)
	}
	if p.Events[2].HasTenant {
		t.Fatalf("unscoped drop gained a tenant: %+v", p.Events[2])
	}
	if p.Events[5].From != (noc.Coord{X: 1, Y: 0}) || p.Events[5].To != (noc.Coord{X: 0, Y: 0}) {
		t.Fatalf("degrade link = %v -> %v", p.Events[5].From, p.Events[5].To)
	}
}

func TestParsePlanNamesAndErrors(t *testing.T) {
	names := map[string]packet.Addr{"ipsec": 34}
	p, err := ParsePlan(strings.NewReader("at 5 wedge ipsec\n"), names)
	if err != nil {
		t.Fatal(err)
	}
	if p.Events[0].Engine != 34 {
		t.Fatalf("named engine resolved to %d", p.Events[0].Engine)
	}
	for _, bad := range []string{
		"wedge 34",                         // missing "at"
		"at x wedge 34",                    // bad cycle
		"at 5 wedge",                       // missing engine
		"at 5 wedge bogus",                 // unknown name
		"at 5 slow 34",                     // missing factor
		"at 5 slow 34 x0.5",                // factor < 1
		"at 5 drop 34 every 0",             // period < 1
		"at 5 degrade 0,0->1,0 every 1",    // degrade period < 2
		"at 5 sever 0,0-1,0",               // bad link syntax
		"at 5 explode 34",                  // unknown kind
		"at 5 heal 34 for 10",              // heal with duration
		"at 5 drop 34 tenant 2",            // tenant without a period
		"at 5 drop 34 every 2 tenant x",    // bad tenant
		"at 5 corrupt 34 every 3 tenant 2", // tenant scope is drop-only
	} {
		if _, err := ParsePlan(strings.NewReader(bad+"\n"), names); err == nil {
			t.Errorf("%q: parsed without error", bad)
		}
	}
}

// bench builds a 2x2 mesh with one tile and arms a plan against it.
func bench(t *testing.T, p *Plan) (*sim.Kernel, *engine.Tile, *noc.Mesh, *[]Event) {
	t.Helper()
	cfg := noc.DefaultMeshConfig()
	cfg.Width, cfg.Height = 2, 2
	m := noc.NewMesh(cfg)
	k := sim.NewKernel(500 * sim.MHz)
	m.RegisterWith(k)
	routes := engine.NewRouteTable()
	node := m.NodeAt(0, 0)
	routes.Bind(7, node)
	routes.SetDefault(7)
	tile := engine.NewTile(engine.TileConfig{Addr: 7, Node: node, QueueCap: 8, Policy: sched.Backpressure},
		engine.NewCollectorEngine("sink", 1, nil), m, routes, sim.NewRNG(1))
	k.Register(tile)
	seen := &[]Event{}
	err := p.Arm(k, Hooks{
		Tile: func(a packet.Addr) *engine.Tile {
			if a == 7 {
				return tile
			}
			return nil
		},
		Mesh:    m,
		Observe: func(e Event, cycle uint64) { *seen = append(*seen, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, tile, m, seen
}

func TestArmAppliesAndAutoHeals(t *testing.T) {
	p := (&Plan{}).Add(Event{At: 10, Kind: Wedge, Engine: 7, For: 20})
	k, tile, _, seen := bench(t, p)

	k.Run(15)
	if !tile.FaultState().Wedged {
		t.Fatal("tile not wedged at cycle 15")
	}
	k.Run(20) // now at cycle 35 > 30
	if !tile.FaultState().Clean() {
		t.Fatalf("tile not healed after duration: %+v", tile.FaultState())
	}
	if len(*seen) != 2 || (*seen)[0].Kind != Wedge || (*seen)[1].Kind != Heal {
		t.Fatalf("observed events = %+v", *seen)
	}
	if (*seen)[1].At != 30 {
		t.Fatalf("heal at cycle %d, want 30", (*seen)[1].At)
	}
}

func TestArmLinkFaults(t *testing.T) {
	p := (&Plan{}).
		Add(Event{At: 5, Kind: LinkSever, From: noc.Coord{X: 0, Y: 0}, To: noc.Coord{X: 1, Y: 0}}).
		Add(Event{At: 25, Kind: HealLink, From: noc.Coord{X: 0, Y: 0}, To: noc.Coord{X: 1, Y: 0}})
	k, _, m, _ := bench(t, p)
	a, b := m.NodeAt(0, 0), m.NodeAt(1, 0)

	k.Run(10)
	if !m.LinkFaultBetween(a, b).Severed {
		t.Fatal("link not severed at cycle 10")
	}
	k.Run(20)
	if !m.LinkFaultBetween(a, b).Clean() {
		t.Fatal("link not healed at cycle 30")
	}
}

func TestArmRejectsUnknownTargets(t *testing.T) {
	p := (&Plan{}).Add(Event{At: 10, Kind: Wedge, Engine: 99})
	cfg := noc.DefaultMeshConfig()
	cfg.Width, cfg.Height = 2, 2
	m := noc.NewMesh(cfg)
	k := sim.NewKernel(500 * sim.MHz)
	if err := p.Arm(k, Hooks{Tile: func(packet.Addr) *engine.Tile { return nil }, Mesh: m}); err == nil {
		t.Fatal("arming against a missing tile did not fail")
	}
	p2 := (&Plan{}).Add(Event{At: 10, Kind: LinkSever, From: noc.Coord{X: 5, Y: 5}, To: noc.Coord{X: 6, Y: 5}})
	if err := p2.Arm(k, Hooks{Mesh: m}); err == nil {
		t.Fatal("arming an out-of-mesh link did not fail")
	}
}

func TestFaultsCompose(t *testing.T) {
	p := (&Plan{}).
		Add(Event{At: 5, Kind: Slow, Engine: 7, Factor: 2}).
		Add(Event{At: 6, Kind: FlakeDrop, Engine: 7, EveryN: 4}).
		Add(Event{At: 20, Kind: Heal, Engine: 7})
	k, tile, _, _ := bench(t, p)
	k.Run(10)
	f := tile.FaultState()
	if f.SlowFactor != 2 || f.DropEveryN != 4 {
		t.Fatalf("composed fault state = %+v", f)
	}
	k.Run(15)
	if !tile.FaultState().Clean() {
		t.Fatal("heal did not clear composed faults")
	}
}

// TestArmTenantScopedDrop arms a tenant-scoped drop and requires the tile
// fault state to carry the scoping, and healing to clear it.
func TestArmTenantScopedDrop(t *testing.T) {
	p := (&Plan{}).Add(Event{At: 5, Kind: FlakeDrop, Engine: 7, EveryN: 3, Tenant: 9, HasTenant: true, For: 20})
	k, tile, _, _ := bench(t, p)

	k.Run(10)
	f := tile.FaultState()
	if f.DropEveryN != 3 || !f.DropTenantOnly || f.DropTenant != 9 {
		t.Fatalf("fault state = %+v, want every-3rd drop scoped to tenant 9", f)
	}
	k.Run(20) // auto-heal at 25
	if !tile.FaultState().Clean() {
		t.Fatalf("tenant-scoped drop not healed: %+v", tile.FaultState())
	}
}
