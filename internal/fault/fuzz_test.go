package fault

import (
	"errors"
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// TestParseErrorIsStructured checks that a rejected plan surfaces a
// *ParseError carrying the 1-based line number and the offending text, so
// tooling (cmd/chaos replay, CI logs) can point at the exact line instead
// of grepping a message.
func TestParseErrorIsStructured(t *testing.T) {
	in := "at 10 wedge 34\n\n# fine so far\nat 20 slow 34 x0.5\n"
	_, err := ParsePlan(strings.NewReader(in), nil)
	if err == nil {
		t.Fatal("invalid factor accepted")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("ParseError.Line = %d, want 4 (blank and comment lines still count)", pe.Line)
	}
	if pe.Input != "at 20 slow 34 x0.5" {
		t.Errorf("ParseError.Input = %q", pe.Input)
	}
	if pe.Unwrap() == nil {
		t.Error("ParseError does not unwrap to a cause")
	}
	if !strings.Contains(err.Error(), "line 4") || !strings.Contains(err.Error(), "x0.5") {
		t.Errorf("ParseError.Error() = %q, want line number and offending text", err)
	}
}

// TestRandomPlanDeterministicAndValid checks the chaos generator's
// contract: same seed, same plan, always valid, always self-healing
// inside the horizon.
func TestRandomPlanDeterministicAndValid(t *testing.T) {
	spec := PlanSpec{
		Horizon:    40_000,
		Engines:    []packet.Addr{34, 35, 36},
		MeshW:      4,
		MeshH:      4,
		Tenants:    []uint16{1, 2, 3},
		MaxEvents:  6,
		AllowSever: true,
	}
	for seed := uint64(0); seed < 200; seed++ {
		p := RandomPlan(seed, spec)
		if len(p.Events) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		for i, e := range p.Events {
			if e.For == 0 {
				t.Fatalf("seed %d event %d: no auto-heal duration: %+v", seed, i, e)
			}
			if e.At+e.For >= spec.Horizon {
				t.Fatalf("seed %d event %d: heals at %d, past horizon %d", seed, i, e.At+e.For, spec.Horizon)
			}
		}
		if p2 := RandomPlan(seed, spec); p2.String() != p.String() {
			t.Fatalf("seed %d: not deterministic:\n%s\nvs\n%s", seed, p.String(), p2.String())
		}
		// Generated plans survive the text format round trip, so a shrunk
		// reproducer file replays the exact same schedule.
		rt, err := ParsePlan(strings.NewReader(p.String()), nil)
		if err != nil {
			t.Fatalf("seed %d: generated plan does not re-parse: %v\n%s", seed, err, p.String())
		}
		if rt.String() != p.String() {
			t.Fatalf("seed %d: round trip mismatch:\n%s\nvs\n%s", seed, p.String(), rt.String())
		}
	}
}

// FuzzParsePlan holds the parser to its contract on arbitrary input: never
// panic, reject with a *ParseError carrying a plausible line number, and
// render accepted plans canonically — String() re-parses to the identical
// plan (the property every shrunk chaos reproducer file depends on).
func FuzzParsePlan(f *testing.F) {
	f.Add(samplePlan)
	f.Add("# only a comment\n")
	f.Add("at 0 wedge 34\n")
	f.Add("at 18446744073709551615 heal 0\n")
	f.Add("at 5 slow ipsec x1.0 for 1\n")
	f.Add("at 5 drop 34 every 3 tenant 65535 for 10\n")
	f.Add("at 5 degrade 0,0->1,0 every 2\nat 9 sever 1,0->1,1 for 7\nat 90 heal-link 0,0->1,0\n")
	f.Add("at 7 corrupt 36 every 9\r\nat 8 wedge 35\r\n")
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(RandomPlan(seed, PlanSpec{
			Horizon: 20_000, Engines: []packet.Addr{34, 35}, MeshW: 4, MeshH: 4,
			Tenants: []uint16{1, 2}, MaxEvents: 5, AllowSever: true,
		}).String())
	}
	names := map[string]packet.Addr{"ipsec": 34, "kvscache": 35}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParsePlan(strings.NewReader(in), names)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is %T (%v), want *ParseError", err, err)
			}
			if pe.Line < 0 || pe.Line > strings.Count(in, "\n")+1 {
				t.Fatalf("ParseError.Line = %d, input has %d lines", pe.Line, strings.Count(in, "\n")+1)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails validation: %v\ninput: %q", err, in)
		}
		out := p.String()
		p2, err := ParsePlan(strings.NewReader(out), names)
		if err != nil {
			t.Fatalf("canonical rendering does not re-parse: %v\nrendered: %q", err, out)
		}
		if p2.String() != out {
			t.Fatalf("round trip not a fixed point:\n%q\nvs\n%q", out, p2.String())
		}
	})
}
