package fault

import (
	"fmt"

	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// PlanSpec bounds the random plan generator: what the scenario's NIC
// actually has, and how harsh the generated faults may be. The generator
// only emits events inside these bounds, so every plan arms cleanly.
type PlanSpec struct {
	// Horizon is the run length in cycles the plan must fit inside. Faults
	// start in the first half and every one carries a For duration that
	// heals before the horizon, so a long enough run always ends with
	// clean hardware.
	Horizon uint64
	// Engines are the tile addresses eligible for engine faults.
	Engines []packet.Addr
	// MeshW and MeshH are the mesh dimensions; link faults target random
	// adjacent coordinate pairs inside them. Zero disables link faults.
	MeshW, MeshH int
	// Tenants, when non-empty, lets drop faults scope to a random member.
	Tenants []uint16
	// MaxEvents caps the number of fault events (at least one is emitted).
	MaxEvents int
	// AllowSever permits full link severs, the harshest fault: traffic
	// routed over a severed link stalls until the auto-heal.
	AllowSever bool
}

// RandomPlan builds a random-but-deterministic fault plan: the same seed
// and spec always produce the same plan, on any platform (the generator
// runs on sim.RNG, not math/rand). Chaos scenarios and soak tests derive
// their fault schedules from this, so a failing seed is a complete
// reproducer.
func RandomPlan(seed uint64, spec PlanSpec) *Plan {
	if spec.Horizon < 100 {
		panic("fault: RandomPlan horizon too short to schedule anything")
	}
	if len(spec.Engines) == 0 && (spec.MeshW < 2 || spec.MeshH < 1) {
		panic("fault: RandomPlan needs engines or a mesh to target")
	}
	if spec.MaxEvents < 1 {
		spec.MaxEvents = 1
	}
	rng := sim.NewRNG(seed ^ 0xfa17_94ab_3c01_d5e7) // domain-separate from workload seeds
	p := &Plan{}
	n := 1 + rng.Intn(spec.MaxEvents)
	for i := 0; i < n; i++ {
		p.Add(randomEvent(rng, spec))
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("fault: RandomPlan generated an invalid plan: %v", err))
	}
	return p
}

func randomEvent(rng *sim.RNG, spec PlanSpec) Event {
	// Start inside [Horizon/20, Horizon/2); heal after [Horizon/16,
	// Horizon/3) more cycles, so the tail of the run always observes
	// recovery and reintegration.
	at := spec.Horizon/20 + uint64(rng.Intn(int(spec.Horizon/2-spec.Horizon/20)))
	dur := spec.Horizon/16 + uint64(rng.Intn(int(spec.Horizon/3-spec.Horizon/16)))
	e := Event{At: at, For: dur}

	linkOK := spec.MeshW >= 2 && spec.MeshH >= 1
	engineOK := len(spec.Engines) > 0
	kinds := make([]Kind, 0, 6)
	if engineOK {
		// Wedge twice: it is the fault the failover machinery exists for.
		kinds = append(kinds, Wedge, Wedge, Slow, FlakeDrop, FlakeCorrupt)
	}
	if linkOK {
		kinds = append(kinds, LinkDegrade)
		if spec.AllowSever {
			kinds = append(kinds, LinkSever)
		}
	}
	e.Kind = kinds[rng.Intn(len(kinds))]

	switch e.Kind {
	case Wedge:
	case Slow:
		e.Engine = spec.Engines[rng.Intn(len(spec.Engines))]
		e.Factor = float64(2 + rng.Intn(7)) // x2..x8
		return e
	case FlakeDrop:
		e.Engine = spec.Engines[rng.Intn(len(spec.Engines))]
		e.EveryN = 2 + rng.Intn(9) // every 2nd..10th
		if len(spec.Tenants) > 0 && rng.Bool(0.4) {
			e.HasTenant = true
			e.Tenant = spec.Tenants[rng.Intn(len(spec.Tenants))]
		}
		return e
	case FlakeCorrupt:
		e.Engine = spec.Engines[rng.Intn(len(spec.Engines))]
		e.EveryN = 2 + rng.Intn(9)
		return e
	case LinkDegrade:
		e.From, e.To = randomLink(rng, spec.MeshW, spec.MeshH)
		e.EveryN = 2 + rng.Intn(5) // pass one flit every 2..6 cycles
		return e
	case LinkSever:
		e.From, e.To = randomLink(rng, spec.MeshW, spec.MeshH)
		return e
	}
	e.Engine = spec.Engines[rng.Intn(len(spec.Engines))]
	return e
}

// randomLink picks a random directional link between two adjacent mesh
// coordinates inside a WxH grid.
func randomLink(rng *sim.RNG, w, h int) (from, to noc.Coord) {
	from = noc.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
	// Collect the in-bounds neighbors and pick one.
	var nbs []noc.Coord
	if from.X > 0 {
		nbs = append(nbs, noc.Coord{X: from.X - 1, Y: from.Y})
	}
	if from.X < w-1 {
		nbs = append(nbs, noc.Coord{X: from.X + 1, Y: from.Y})
	}
	if from.Y > 0 {
		nbs = append(nbs, noc.Coord{X: from.X, Y: from.Y - 1})
	}
	if from.Y < h-1 {
		nbs = append(nbs, noc.Coord{X: from.X, Y: from.Y + 1})
	}
	to = nbs[rng.Intn(len(nbs))]
	return from, to
}
