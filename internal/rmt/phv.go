// Package rmt models PANIC's heavyweight reconfigurable match+action
// pipeline (§3.1.2): a programmable parser that turns packet bytes into a
// packet header vector (PHV), a sequence of match+action stages over the
// PHV with P4-style single-cycle action primitives and stateful registers,
// and a deparser that writes results — most importantly the offload chain
// and per-hop slack values — back into the packet as the chain shim header.
//
// Timing follows the paper's model: a pipeline accepts one packet per cycle
// (throughput F·P packets/s for P parallel pipelines at F Hz) with a fixed
// latency of parser + stages + deparser cycles.
package rmt

import "fmt"

// FieldID identifies a PHV container. Parsed header fields and per-packet
// metadata share one namespace, as in RMT hardware.
type FieldID uint8

// PHV fields.
const (
	// Ethernet.
	FieldEthDst FieldID = iota
	FieldEthSrc
	FieldEthType
	// PANIC chain shim (present on reinjected messages).
	FieldChainFlags
	FieldChainRemaining
	FieldChainInner
	// IPv4.
	FieldIPSrc
	FieldIPDst
	FieldIPProto
	FieldIPTOS
	FieldIPTTL
	// L4 (UDP and TCP share port containers).
	FieldL4Src
	FieldL4Dst
	// IPSec ESP.
	FieldESPSPI
	// KVS application header.
	FieldKVSOp
	FieldKVSFlags
	FieldKVSTenant
	FieldKVSKey
	FieldKVSValueLen
	// On-NIC DMA messages.
	FieldDMAOp
	FieldDMARequester
	FieldDMALen
	FieldDMAHostAddr
	// Per-packet metadata (not parsed from bytes; set by the engine).
	FieldMetaPort     // ingress port index
	FieldMetaWireLen  // message wire length in bytes
	FieldMetaClass    // packet.Class
	FieldMetaTenant   // accounting tenant
	FieldMetaNow      // cycle the packet entered the pipeline
	FieldMetaDeadline // absolute-cycle deadline (0 = none)
	FieldMetaQueue    // descriptor queue selected by load balancing
	FieldMetaNewFlags // chain flags for the outgoing chain header
	FieldMetaHash     // scratch for hash results
	FieldMetaScratch0 // general scratch
	FieldMetaScratch1 // general scratch
	FieldMetaScratch2 // general scratch
	NumFields         // sentinel
)

var fieldNames = [NumFields]string{
	"eth.dst", "eth.src", "eth.type",
	"chain.flags", "chain.remaining", "chain.inner",
	"ip.src", "ip.dst", "ip.proto", "ip.tos", "ip.ttl",
	"l4.src", "l4.dst",
	"esp.spi",
	"kvs.op", "kvs.flags", "kvs.tenant", "kvs.key", "kvs.vlen",
	"dma.op", "dma.requester", "dma.len", "dma.hostaddr",
	"meta.port", "meta.wirelen", "meta.class", "meta.tenant",
	"meta.now", "meta.deadline", "meta.queue", "meta.newflags",
	"meta.hash", "meta.scratch0", "meta.scratch1", "meta.scratch2",
}

// String returns the field name.
func (f FieldID) String() string {
	if f < NumFields {
		return fieldNames[f]
	}
	return fmt.Sprintf("field(%d)", uint8(f))
}

// PHV is a packet header vector: one 64-bit container per field plus a
// validity bitmap.
type PHV struct {
	vals  [NumFields]uint64
	valid uint64
}

// Set writes a field and marks it valid.
func (p *PHV) Set(f FieldID, v uint64) {
	p.vals[f] = v
	p.valid |= 1 << f
}

// Get returns a field's value; invalid fields read as zero (as in RMT
// hardware, where reading an invalid container yields an undefined-but-
// harmless value — zero here for determinism).
func (p *PHV) Get(f FieldID) uint64 { return p.vals[f] }

// Valid reports whether the field was set (parsed or assigned).
func (p *PHV) Valid(f FieldID) bool { return p.valid&(1<<f) != 0 }

// Invalidate clears a field.
func (p *PHV) Invalidate(f FieldID) {
	p.valid &^= 1 << f
	p.vals[f] = 0
}

// Reset clears the whole vector for reuse.
func (p *PHV) Reset() {
	p.vals = [NumFields]uint64{}
	p.valid = 0
}
