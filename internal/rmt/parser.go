package rmt

import (
	"encoding/binary"
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// Extract copies Width bytes at byte Offset within the current header into
// a PHV field (big-endian, right-aligned).
type Extract struct {
	Field  FieldID
	Offset int
	Width  int // 1..8 bytes
}

// Transition selects the next parse state when, for every select field i,
// (value[i] & Masks[i]) == Values[i].
type Transition struct {
	Values []uint64
	Masks  []uint64 // nil = exact match on all bits
	Next   string
}

// StateAccept ends parsing successfully.
const StateAccept = "accept"

// ParseState describes one header in the parse graph.
type ParseState struct {
	Name string
	// HdrLen is the fixed header length in bytes; if LenFunc is non-nil
	// it computes the length from the header bytes instead (for the
	// variable-length chain shim).
	HdrLen  int
	LenFunc func(hdr []byte) (int, error)
	// Extracts are applied to the header bytes.
	Extracts []Extract
	// Select lists the fields the transition keys match against.
	Select []FieldID
	// Transitions are evaluated in order; Default applies when none
	// match ("accept" to stop).
	Transitions []Transition
	Default     string
}

// Parser is a programmable parse graph, the front end of an RMT engine
// (Figure 3b).
type Parser struct {
	states map[string]*ParseState
	start  string
}

// NewParser builds a parser from states, starting at start. It validates
// that every referenced state exists.
func NewParser(start string, states ...*ParseState) (*Parser, error) {
	p := &Parser{states: make(map[string]*ParseState, len(states)), start: start}
	for _, s := range states {
		if _, dup := p.states[s.Name]; dup {
			return nil, fmt.Errorf("rmt: duplicate parse state %q", s.Name)
		}
		p.states[s.Name] = s
	}
	check := func(name string) error {
		if name != StateAccept {
			if _, ok := p.states[name]; !ok {
				return fmt.Errorf("rmt: parse graph references unknown state %q", name)
			}
		}
		return nil
	}
	if err := check(start); err != nil {
		return nil, err
	}
	for _, s := range p.states {
		for _, tr := range s.Transitions {
			if len(tr.Values) != len(s.Select) {
				return nil, fmt.Errorf("rmt: state %q: transition arity %d != select arity %d", s.Name, len(tr.Values), len(s.Select))
			}
			if tr.Masks != nil && len(tr.Masks) != len(s.Select) {
				return nil, fmt.Errorf("rmt: state %q: mask arity mismatch", s.Name)
			}
			if err := check(tr.Next); err != nil {
				return nil, err
			}
		}
		if s.Default == "" {
			s.Default = StateAccept
		}
		if err := check(s.Default); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustParser is NewParser that panics on error, for static parse graphs.
func MustParser(start string, states ...*ParseState) *Parser {
	p, err := NewParser(start, states...)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse walks the graph over the packet bytes and fills the PHV. The PHV is
// not reset: callers pre-populate metadata fields.
func (p *Parser) Parse(buf []byte, phv *PHV) error {
	_, err := p.parse(buf, phv)
	return err
}

// parse is Parse plus a report of how many leading bytes the walk examined
// — the dependency footprint a flow cache must capture in its key. A failed
// walk conservatively reports the whole buffer (truncation errors depend on
// the total length).
func (p *Parser) parse(buf []byte, phv *PHV) (consumed int, err error) {
	state := p.start
	off := 0
	for steps := 0; state != StateAccept; steps++ {
		if steps > 32 {
			return len(buf), fmt.Errorf("rmt: parse graph did not terminate (loop at %q)", state)
		}
		s := p.states[state]
		hlen := s.HdrLen
		if s.LenFunc != nil {
			hlen, err = s.LenFunc(buf[off:])
			if err != nil {
				return len(buf), fmt.Errorf("rmt: state %q: %w", state, err)
			}
		}
		if off+hlen > len(buf) {
			return len(buf), fmt.Errorf("rmt: state %q: header needs %d bytes at offset %d, have %d", state, hlen, off, len(buf))
		}
		hdr := buf[off : off+hlen]
		for _, e := range s.Extracts {
			v, xerr := extractBE(hdr, e.Offset, e.Width)
			if xerr != nil {
				return len(buf), fmt.Errorf("rmt: state %q extract %v: %w", state, e.Field, xerr)
			}
			phv.Set(e.Field, v)
		}
		off += hlen
		state = s.next(phv)
	}
	return off, nil
}

func (s *ParseState) next(phv *PHV) string {
	for _, tr := range s.Transitions {
		match := true
		for i, f := range s.Select {
			v := phv.Get(f)
			if tr.Masks != nil {
				v &= tr.Masks[i]
			}
			if v != tr.Values[i] {
				match = false
				break
			}
		}
		if match {
			return tr.Next
		}
	}
	return s.Default
}

func extractBE(hdr []byte, off, width int) (uint64, error) {
	if width < 1 || width > 8 {
		return 0, fmt.Errorf("width %d out of range", width)
	}
	if off < 0 || off+width > len(hdr) {
		return 0, fmt.Errorf("extract [%d:%d] outside %d-byte header", off, off+width, len(hdr))
	}
	var buf [8]byte
	copy(buf[8-width:], hdr[off:off+width])
	return binary.BigEndian.Uint64(buf[:]), nil
}

// StandardParser returns the parse graph for the full protocol stack used
// in this repository: Ethernet, the PANIC chain shim, IPv4, UDP/TCP/ESP,
// the KVS application header, and on-NIC DMA messages.
func StandardParser() *Parser {
	return MustParser("ethernet",
		&ParseState{
			Name:   "ethernet",
			HdrLen: 14,
			Extracts: []Extract{
				{FieldEthDst, 0, 6}, {FieldEthSrc, 6, 6}, {FieldEthType, 12, 2},
			},
			Select: []FieldID{FieldEthType},
			Transitions: []Transition{
				{Values: []uint64{packet.EtherTypeIPv4}, Next: "ipv4"},
				{Values: []uint64{packet.EtherTypeChain}, Next: "chain"},
				{Values: []uint64{packet.EtherTypeDMA}, Next: "dma"},
			},
		},
		&ParseState{
			Name: "chain",
			LenFunc: func(hdr []byte) (int, error) {
				if len(hdr) < 6 {
					return 0, packet.ErrTruncated
				}
				return 6 + 6*int(hdr[2]), nil
			},
			Extracts: []Extract{
				{FieldChainFlags, 1, 1}, {FieldChainInner, 4, 2},
			},
			Select: []FieldID{FieldChainInner},
			Transitions: []Transition{
				{Values: []uint64{packet.EtherTypeIPv4}, Next: "ipv4"},
				{Values: []uint64{packet.EtherTypeDMA}, Next: "dma"},
			},
		},
		&ParseState{
			Name:   "ipv4",
			HdrLen: 20,
			Extracts: []Extract{
				{FieldIPTOS, 1, 1}, {FieldIPTTL, 8, 1}, {FieldIPProto, 9, 1},
				{FieldIPSrc, 12, 4}, {FieldIPDst, 16, 4},
			},
			Select: []FieldID{FieldIPProto},
			Transitions: []Transition{
				{Values: []uint64{packet.ProtoUDP}, Next: "udp"},
				{Values: []uint64{packet.ProtoTCP}, Next: "tcp"},
				{Values: []uint64{packet.ProtoESP}, Next: "esp"},
			},
		},
		&ParseState{
			Name:   "udp",
			HdrLen: 8,
			Extracts: []Extract{
				{FieldL4Src, 0, 2}, {FieldL4Dst, 2, 2},
			},
			Select: []FieldID{FieldL4Src, FieldL4Dst},
			Transitions: []Transition{
				{Values: []uint64{0, packet.KVSPort}, Masks: []uint64{0, 0xffff}, Next: "kvs"},
				{Values: []uint64{packet.KVSPort, 0}, Masks: []uint64{0xffff, 0}, Next: "kvs"},
			},
		},
		&ParseState{
			Name:   "tcp",
			HdrLen: 20,
			Extracts: []Extract{
				{FieldL4Src, 0, 2}, {FieldL4Dst, 2, 2},
			},
		},
		&ParseState{
			Name:   "esp",
			HdrLen: 8,
			Extracts: []Extract{
				{FieldESPSPI, 0, 4},
			},
		},
		&ParseState{
			Name:   "kvs",
			HdrLen: 16,
			Extracts: []Extract{
				{FieldKVSOp, 0, 1}, {FieldKVSFlags, 1, 1}, {FieldKVSTenant, 2, 2},
				{FieldKVSKey, 4, 8}, {FieldKVSValueLen, 12, 4},
			},
		},
		&ParseState{
			Name:   "dma",
			HdrLen: 16,
			Extracts: []Extract{
				{FieldDMAOp, 0, 1}, {FieldDMARequester, 2, 2},
				{FieldDMALen, 4, 4}, {FieldDMAHostAddr, 8, 8},
			},
		},
	)
}
