package rmt

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// benchProcess measures one Process-equivalent call per iteration over a
// small set of recurring flows — the loaded hot path the flow cache targets.
func benchSpecs() []msgSpec {
	specs := make([]msgSpec, 8)
	for i := range specs {
		specs[i] = msgSpec{
			tenant:  uint16(1 + i%4),
			key:     uint64(i),
			srcPort: uint16(7000 + i),
			dstIP:   packet.IP4{10, 0, 0, byte(i % 3)},
		}
	}
	return specs
}

func BenchmarkProcessUncached(b *testing.B) {
	prog := cacheProgram()
	specs := benchSpecs()
	msgs := make([]*packet.Message, len(specs))
	for i, s := range specs {
		msgs[i] = s.build()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Process(msgs[i%len(msgs)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessCached(b *testing.B) {
	prog := cacheProgram()
	cache := newFlowCache()
	specs := benchSpecs()
	msgs := make([]*packet.Message, len(specs))
	for i, s := range specs {
		msgs[i] = s.build()
		// Warm: record each flow once so the timed loop measures hits.
		if _, _, err := cache.process(prog, msgs[i], 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cache.process(prog, msgs[i%len(msgs)], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
