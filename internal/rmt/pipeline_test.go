package rmt

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// steeringProgram builds a small but realistic program: GETs from tenant 1
// go to the cache engine (addr 4) then DMA (addr 8); everything else goes
// straight to DMA with a slack from its class.
func steeringProgram() *Program {
	classify := NewTable("classify", MatchExact, []FieldID{FieldKVSOp}, 0,
		NewAction("to-dma", OpPushHop{Engine: 8, SlackConst: 1000}))
	classify.Add(Entry{
		Values: []uint64{uint64(packet.KVSGet)},
		Action: NewAction("get-chain",
			OpPushHop{Engine: 4, SlackConst: 50},
			OpPushHop{Engine: 8, SlackConst: 500},
		),
	})
	lb := NewTable("lb", MatchExact, []FieldID{FieldMetaClass}, 0,
		NewAction("hash-queue",
			OpHash{FieldMetaQueue, []FieldID{FieldIPSrc, FieldL4Src}},
			OpMod{FieldMetaQueue, 8},
		))
	return NewProgram(StandardParser(), []*Table{classify}, []*Table{lb})
}

func TestProgramProcessBuildsChain(t *testing.T) {
	prog := steeringProgram()
	m := kvsGetMsg(1, 42)
	res, err := prog.Process(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drop {
		t.Fatal("unexpected drop")
	}
	c := m.Chain()
	if c == nil {
		t.Fatal("no chain written")
	}
	if len(c.Hops) != 2 || c.Hops[0] != (packet.Hop{Engine: 4, Slack: 50}) || c.Hops[1] != (packet.Hop{Engine: 8, Slack: 500}) {
		t.Errorf("chain = %+v", c.Hops)
	}
	if res.Queue >= 8 {
		t.Errorf("queue = %d, want < 8", res.Queue)
	}
	// The chain must actually be on the wire: reparse from bytes.
	dec, err := packet.Decode(m.Pkt.Buf, m.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Has(packet.LayerTypeChain) {
		t.Error("chain not serialized into packet bytes")
	}
}

func TestProgramReplacesExistingChain(t *testing.T) {
	prog := steeringProgram()
	m := kvsGetMsg(1, 42)
	m.InsertChain(&packet.Chain{Cursor: 1, Hops: []packet.Hop{{Engine: 9, Slack: 1}, {Engine: 2, Slack: 2}}})
	if _, err := prog.Process(m, 0); err != nil {
		t.Fatal(err)
	}
	c := m.Chain()
	if c.Cursor != 0 || len(c.Hops) != 2 || c.Hops[0].Engine != 4 {
		t.Errorf("chain not replaced: %+v", c)
	}
}

func TestProgramDrop(t *testing.T) {
	drop := NewTable("acl", MatchExact, []FieldID{FieldKVSTenant}, 0, Action{})
	drop.Add(Entry{Values: []uint64{13}, Action: NewAction("deny", OpDrop{})})
	prog := NewProgram(StandardParser(), []*Table{drop})
	res, err := prog.Process(kvsGetMsg(13, 1), 0)
	if err != nil || !res.Drop {
		t.Errorf("res=%+v err=%v, want drop", res, err)
	}
	res, err = prog.Process(kvsGetMsg(12, 1), 0)
	if err != nil || res.Drop {
		t.Errorf("tenant 12 dropped")
	}
}

func TestProgramSplit(t *testing.T) {
	mk := func() []*Table { return []*Table{NewTable("t", MatchExact, []FieldID{FieldKVSOp}, 0, Action{})} }
	prog := NewProgram(StandardParser(), mk(), mk(), mk(), mk(), mk())
	parts := prog.Split(2)
	if len(parts) != 2 || parts[0].NumStages() != 3 || parts[1].NumStages() != 2 {
		t.Fatalf("split shapes: %d, %d", parts[0].NumStages(), parts[1].NumStages())
	}
	if parts[0].Regs != prog.Regs || parts[0].Parser != prog.Parser {
		t.Error("split parts must share parser and registers")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-split did not panic")
		}
	}()
	prog.Split(6)
}

func TestPipelineLatencyAndThroughput(t *testing.T) {
	prog := steeringProgram() // 2 stages
	p := NewPipeline(prog, 1, 1)
	if p.Latency() != 4 {
		t.Fatalf("latency = %d, want 4 (parse+2 stages+deparse)", p.Latency())
	}
	// Feed one message per cycle for 10 cycles; outputs appear after
	// exactly Latency cycles, one per cycle.
	var outs []uint64
	for cycle := uint64(0); cycle < 20; cycle++ {
		if res, ok := p.Tick(); ok {
			outs = append(outs, res.Msg.ID)
		}
		if cycle < 10 && p.CanAccept() {
			m := kvsGetMsg(1, cycle)
			m.ID = cycle
			p.Accept(m, cycle)
		}
	}
	if len(outs) != 10 {
		t.Fatalf("got %d outputs, want 10", len(outs))
	}
	for i, id := range outs {
		if id != uint64(i) {
			t.Fatalf("out of order: %v", outs)
		}
	}
	done, dropped, errs := p.Stats()
	if done != 10 || dropped != 0 || errs != 0 {
		t.Errorf("stats = %d/%d/%d", done, dropped, errs)
	}
}

func TestPipelineExitTiming(t *testing.T) {
	prog := steeringProgram()
	p := NewPipeline(prog, 1, 1) // latency 4
	m := kvsGetMsg(1, 1)
	// Accept during cycle 0 (after Tick), exits on the Tick of cycle 4.
	exit := -1
	for cycle := 0; cycle < 10; cycle++ {
		if _, ok := p.Tick(); ok && exit < 0 {
			exit = cycle
		}
		if cycle == 0 {
			p.Accept(m, 0)
		}
	}
	if exit != 4 {
		t.Errorf("exited at cycle %d, want 4", exit)
	}
}

func TestPipelineParseErrorCountsAsDrop(t *testing.T) {
	p := NewPipeline(steeringProgram(), 1, 1)
	bad := &packet.Message{Pkt: &packet.Packet{Buf: []byte{1, 2, 3}}}
	p.Accept(bad, 0)
	for i := 0; i < 10; i++ {
		if _, ok := p.Tick(); ok {
			t.Fatal("unparseable packet emerged from pipeline")
		}
	}
	_, dropped, errs := p.Stats()
	if dropped != 1 || errs != 1 {
		t.Errorf("dropped=%d errs=%d, want 1/1", dropped, errs)
	}
}

func TestPipelineDoubleAcceptPanics(t *testing.T) {
	p := NewPipeline(steeringProgram(), 1, 1)
	p.Accept(kvsGetMsg(1, 1), 0)
	defer func() {
		if recover() == nil {
			t.Error("double accept did not panic")
		}
	}()
	p.Accept(kvsGetMsg(1, 2), 0)
}

func TestStatefulLoadBalancing(t *testing.T) {
	// A register-based round-robin spreads consecutive packets across
	// queues — the paper's "load-balancing messages across descriptor
	// queues".
	rr := NewTable("rr", MatchExact, []FieldID{FieldMetaClass}, 0,
		NewAction("rr",
			OpSet{FieldMetaScratch0, 0},
			OpRegAdd{"rrctr", FieldMetaScratch0, 1, FieldMetaQueue},
			OpMod{FieldMetaQueue, 4},
		))
	prog := NewProgram(StandardParser(), []*Table{rr})
	prog.Regs.Define("rrctr", 1)
	seen := map[uint64]int{}
	for i := 0; i < 8; i++ {
		res, err := prog.Process(kvsGetMsg(1, uint64(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Queue]++
	}
	for q := uint64(0); q < 4; q++ {
		if seen[q] != 2 {
			t.Errorf("queue %d got %d packets, want 2 (RR): %v", q, seen[q], seen)
		}
	}
}

func TestMatchKindString(t *testing.T) {
	if MatchExact.String() != "exact" || MatchLPM.String() != "lpm" || MatchTernary.String() != "ternary" {
		t.Error("MatchKind strings wrong")
	}
}
