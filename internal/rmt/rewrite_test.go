package rmt

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// steeringFixture builds a program with chain-steering entries in every
// match kind plus a default action, all pointing at engine `old` somewhere.
func steeringFixture(old packet.Addr) *Program {
	parser := StandardParser()
	key := []FieldID{FieldMetaPort}

	exact := NewTable("exact", MatchExact, key, 0, Action{})
	exact.Add(Entry{Values: []uint64{1}, Action: NewAction("hit",
		OpPushHop{Engine: old, SlackConst: 10},
		OpPushHop{Engine: 99},
	)})

	lpm := NewTable("lpm", MatchLPM, key, 32, Action{})
	lpm.Add(Entry{Values: []uint64{PrefixOf(0x0a000000, 8, 32)}, PrefixLen: 8,
		Action: NewAction("net", OpPushHop{Engine: old})})

	tern := NewTable("tern", MatchTernary, key, 0,
		NewAction("def", OpPushHop{Engine: old, SlackConst: 7}))
	tern.Add(Entry{Values: []uint64{2}, Masks: []uint64{0xff}, Priority: 5,
		Action: NewAction("t", OpPushHop{Engine: old})})

	return NewProgram(parser, []*Table{exact}, []*Table{lpm, tern})
}

func TestRewriteEngineCoversAllMatchKinds(t *testing.T) {
	const old, repl = packet.Addr(34), packet.Addr(40)
	prog := steeringFixture(old)

	n := prog.RewriteEngine(old, repl)
	if n != 4 {
		t.Fatalf("RewriteEngine rewrote %d hops, want 4 (exact entry, lpm entry, ternary entry, ternary default)", n)
	}
	// No hops targeting old may remain anywhere.
	if left := prog.RewriteEngine(old, repl); left != 0 {
		t.Fatalf("second rewrite still found %d hops targeting old", left)
	}
	// The untouched hop survives.
	if n := prog.RewriteEngine(99, 98); n != 1 {
		t.Fatalf("unrelated hop count = %d, want 1", n)
	}
}

func TestRewriteEngineInverseRestores(t *testing.T) {
	const old, repl = packet.Addr(34), packet.Addr(40)
	prog := steeringFixture(old)

	fwd := prog.RewriteEngine(old, repl)
	back := prog.RewriteEngine(repl, old)
	if fwd != back {
		t.Fatalf("inverse rewrite count %d != forward %d", back, fwd)
	}
	if n := prog.RewriteEngine(old, repl); n != fwd {
		t.Fatalf("after restore, forward rewrite count %d, want %d", n, fwd)
	}
}

// TestRewriteEngineChangesVerdict checks the rewrite is visible in the
// datapath: the same packet classified before and after steers to the old
// and new engine respectively.
func TestRewriteEngineChangesVerdict(t *testing.T) {
	const old, repl = packet.Addr(34), packet.Addr(40)
	prog := steeringFixture(old)

	mk := func() *packet.Message {
		return &packet.Message{
			Port: 1,
			Pkt: packet.NewPacket(64,
				&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
				&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 2}},
				&packet.UDP{SrcPort: 1, DstPort: 2},
			),
		}
	}

	before := mk()
	if _, err := prog.Process(before, 0); err != nil {
		t.Fatal(err)
	}
	c := before.Chain()
	if c == nil || len(c.Hops) == 0 || c.Hops[0].Engine != old {
		t.Fatalf("pre-rewrite chain = %+v, want first hop engine %d", c, old)
	}

	prog.RewriteEngine(old, repl)

	after := mk()
	if _, err := prog.Process(after, 0); err != nil {
		t.Fatal(err)
	}
	c = after.Chain()
	if c == nil || len(c.Hops) == 0 || c.Hops[0].Engine != repl {
		t.Fatalf("post-rewrite chain = %+v, want first hop engine %d", c, repl)
	}
	// Slack annotations survive the rewrite untouched.
	if c.Hops[0].Slack != 10 {
		t.Fatalf("post-rewrite slack = %d, want 10", c.Hops[0].Slack)
	}
}
