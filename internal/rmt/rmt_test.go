package rmt

import (
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

func kvsGetMsg(tenant uint16, key uint64) *packet.Message {
	return &packet.Message{
		Pkt: packet.NewPacket(0,
			&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 9}},
			&packet.UDP{SrcPort: 7000, DstPort: packet.KVSPort},
			&packet.KVS{Op: packet.KVSGet, Tenant: tenant, Key: key},
		),
		Tenant: tenant,
		Port:   0,
	}
}

func espMsg() *packet.Message {
	return &packet.Message{
		Pkt: packet.NewPacket(128,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoESP, Src: packet.IP4{203, 0, 113, 5}, Dst: packet.IP4{10, 0, 0, 9}},
			&packet.ESP{SPI: 77, Seq: 3},
		),
	}
}

func TestPHVBasics(t *testing.T) {
	var p PHV
	if p.Valid(FieldIPSrc) || p.Get(FieldIPSrc) != 0 {
		t.Error("zero PHV should be invalid and read zero")
	}
	p.Set(FieldIPSrc, 42)
	if !p.Valid(FieldIPSrc) || p.Get(FieldIPSrc) != 42 {
		t.Error("Set/Get failed")
	}
	p.Invalidate(FieldIPSrc)
	if p.Valid(FieldIPSrc) || p.Get(FieldIPSrc) != 0 {
		t.Error("Invalidate failed")
	}
	p.Set(FieldKVSKey, 7)
	p.Reset()
	if p.Valid(FieldKVSKey) {
		t.Error("Reset failed")
	}
}

func TestFieldNames(t *testing.T) {
	if FieldEthDst.String() != "eth.dst" || FieldMetaQueue.String() != "meta.queue" {
		t.Error("field names wrong")
	}
	if !strings.Contains(FieldID(200).String(), "200") {
		t.Error("out-of-range field name wrong")
	}
}

func TestStandardParserKVS(t *testing.T) {
	m := kvsGetMsg(9, 0xabcdef)
	var phv PHV
	if err := StandardParser().Parse(m.Pkt.Buf, &phv); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		f    FieldID
		want uint64
	}{
		{FieldEthType, packet.EtherTypeIPv4},
		{FieldIPProto, packet.ProtoUDP},
		{FieldIPSrc, 0x0a000001},
		{FieldIPDst, 0x0a000009},
		{FieldL4Dst, packet.KVSPort},
		{FieldKVSOp, uint64(packet.KVSGet)},
		{FieldKVSTenant, 9},
		{FieldKVSKey, 0xabcdef},
	}
	for _, c := range checks {
		if !phv.Valid(c.f) {
			t.Errorf("%v not parsed", c.f)
		} else if got := phv.Get(c.f); got != c.want {
			t.Errorf("%v = %#x, want %#x", c.f, got, c.want)
		}
	}
	if phv.Valid(FieldESPSPI) {
		t.Error("ESP field valid on non-ESP packet")
	}
}

func TestStandardParserESP(t *testing.T) {
	var phv PHV
	if err := StandardParser().Parse(espMsg().Pkt.Buf, &phv); err != nil {
		t.Fatal(err)
	}
	if !phv.Valid(FieldESPSPI) || phv.Get(FieldESPSPI) != 77 {
		t.Errorf("esp.spi = %d valid=%v", phv.Get(FieldESPSPI), phv.Valid(FieldESPSPI))
	}
	if phv.Valid(FieldL4Dst) {
		t.Error("L4 parsed on ESP packet")
	}
}

func TestStandardParserKVSResponseBySrcPort(t *testing.T) {
	// TX-side GET responses have src=KVSPort; the udp state's two-field
	// select must still reach the kvs state.
	m := &packet.Message{Pkt: packet.NewPacket(0,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Protocol: packet.ProtoUDP},
		&packet.UDP{SrcPort: packet.KVSPort, DstPort: 7000},
		&packet.KVS{Op: packet.KVSGetResp, Tenant: 1, Key: 5, ValueLen: 100},
	)}
	var phv PHV
	if err := StandardParser().Parse(m.Pkt.Buf, &phv); err != nil {
		t.Fatal(err)
	}
	if phv.Get(FieldKVSOp) != uint64(packet.KVSGetResp) {
		t.Error("response KVS header not parsed")
	}
}

func TestStandardParserChainShim(t *testing.T) {
	m := kvsGetMsg(1, 2)
	m.InsertChain(&packet.Chain{Flags: packet.ChainFlagReinjected, Hops: []packet.Hop{{Engine: 5, Slack: 9}}})
	var phv PHV
	if err := StandardParser().Parse(m.Pkt.Buf, &phv); err != nil {
		t.Fatal(err)
	}
	if phv.Get(FieldChainFlags) != packet.ChainFlagReinjected {
		t.Errorf("chain.flags = %d", phv.Get(FieldChainFlags))
	}
	if phv.Get(FieldChainInner) != packet.EtherTypeIPv4 {
		t.Errorf("chain.inner = %#x", phv.Get(FieldChainInner))
	}
	// Inner stack still parsed through the shim.
	if phv.Get(FieldKVSKey) != 2 {
		t.Error("inner KVS not parsed through chain shim")
	}
}

func TestParserTruncatedPacket(t *testing.T) {
	m := kvsGetMsg(1, 2)
	var phv PHV
	if err := StandardParser().Parse(m.Pkt.Buf[:30], &phv); err == nil {
		t.Error("truncated packet parsed without error")
	}
}

func TestParserValidation(t *testing.T) {
	if _, err := NewParser("nope"); err == nil {
		t.Error("unknown start state accepted")
	}
	if _, err := NewParser("a",
		&ParseState{Name: "a", HdrLen: 1, Default: "missing"}); err == nil {
		t.Error("unknown default state accepted")
	}
	if _, err := NewParser("a",
		&ParseState{Name: "a", HdrLen: 1},
		&ParseState{Name: "a", HdrLen: 2}); err == nil {
		t.Error("duplicate state accepted")
	}
	if _, err := NewParser("a",
		&ParseState{Name: "a", HdrLen: 1, Select: []FieldID{FieldEthType},
			Transitions: []Transition{{Values: []uint64{1, 2}, Next: StateAccept}}}); err == nil {
		t.Error("transition arity mismatch accepted")
	}
}

func TestParserLoopDetection(t *testing.T) {
	p := MustParser("a", &ParseState{Name: "a", HdrLen: 0, Default: "a"})
	var phv PHV
	if err := p.Parse(make([]byte, 64), &phv); err == nil {
		t.Error("looping parse graph did not error")
	}
}

func TestExactTable(t *testing.T) {
	tbl := NewTable("steer", MatchExact, []FieldID{FieldKVSTenant, FieldKVSOp}, 0,
		NewAction("default", OpSet{FieldMetaQueue, 99}))
	tbl.Add(Entry{Values: []uint64{7, uint64(packet.KVSGet)}, Action: NewAction("hit", OpSet{FieldMetaQueue, 1})})
	var phv PHV
	phv.Set(FieldKVSTenant, 7)
	phv.Set(FieldKVSOp, uint64(packet.KVSGet))
	ctx := Ctx{PHV: &phv}
	a, hit := tbl.Lookup(&phv)
	a.Apply(&ctx)
	if !hit || phv.Get(FieldMetaQueue) != 1 {
		t.Errorf("hit=%v queue=%d", hit, phv.Get(FieldMetaQueue))
	}
	phv.Set(FieldKVSTenant, 8)
	a, hit = tbl.Lookup(&phv)
	a.Apply(&ctx)
	if hit || phv.Get(FieldMetaQueue) != 99 {
		t.Errorf("miss path: hit=%v queue=%d", hit, phv.Get(FieldMetaQueue))
	}
	if tbl.Entries() != 1 {
		t.Errorf("Entries = %d", tbl.Entries())
	}
}

func TestLPMTable(t *testing.T) {
	tbl := NewTable("route", MatchLPM, []FieldID{FieldIPDst}, 32, Action{})
	// 10.0.0.0/8 -> 1, 10.1.0.0/16 -> 2 (longer wins).
	tbl.Add(Entry{Values: []uint64{PrefixOf(0x0a000000, 8, 32)}, PrefixLen: 8,
		Action: NewAction("slash8", OpSet{FieldMetaScratch0, 1})})
	tbl.Add(Entry{Values: []uint64{PrefixOf(0x0a010000, 16, 32)}, PrefixLen: 16,
		Action: NewAction("slash16", OpSet{FieldMetaScratch0, 2})})
	cases := []struct {
		ip   uint64
		want uint64
		hit  bool
	}{
		{0x0a000005, 1, true},  // 10.0.0.5 -> /8
		{0x0a010005, 2, true},  // 10.1.0.5 -> /16
		{0x0b000001, 0, false}, // 11.0.0.1 -> miss
	}
	for _, c := range cases {
		var phv PHV
		phv.Set(FieldIPDst, c.ip)
		a, hit := tbl.Lookup(&phv)
		ctx := Ctx{PHV: &phv}
		a.Apply(&ctx)
		if hit != c.hit {
			t.Errorf("ip %#x: hit=%v want %v", c.ip, hit, c.hit)
		}
		if c.hit && phv.Get(FieldMetaScratch0) != c.want {
			t.Errorf("ip %#x: scratch=%d want %d", c.ip, phv.Get(FieldMetaScratch0), c.want)
		}
	}
}

func TestLPMZeroLengthPrefixIsDefaultRoute(t *testing.T) {
	tbl := NewTable("route", MatchLPM, []FieldID{FieldIPDst}, 32, Action{})
	tbl.Add(Entry{Values: []uint64{0}, PrefixLen: 0, Action: NewAction("any", OpSet{FieldMetaScratch0, 7})})
	var phv PHV
	phv.Set(FieldIPDst, 0xffffffff)
	if _, hit := tbl.Lookup(&phv); !hit {
		t.Error("0-length prefix did not match everything")
	}
}

func TestTernaryTablePriority(t *testing.T) {
	tbl := NewTable("acl", MatchTernary, []FieldID{FieldIPSrc, FieldL4Dst}, 0, Action{})
	// Low priority: any src, port 80 -> allow(1). High: src 10.0.0.0/8 wildcard port -> deny(2).
	tbl.Add(Entry{Values: []uint64{0, 80}, Masks: []uint64{0, 0xffff}, Priority: 1,
		Action: NewAction("allow", OpSet{FieldMetaScratch0, 1})})
	tbl.Add(Entry{Values: []uint64{0x0a000000, 0}, Masks: []uint64{0xff000000, 0}, Priority: 10,
		Action: NewAction("deny", OpSet{FieldMetaScratch0, 2})})
	var phv PHV
	phv.Set(FieldIPSrc, 0x0a000001)
	phv.Set(FieldL4Dst, 80)
	a, hit := tbl.Lookup(&phv)
	ctx := Ctx{PHV: &phv}
	a.Apply(&ctx)
	if !hit || phv.Get(FieldMetaScratch0) != 2 {
		t.Errorf("priority not respected: scratch=%d", phv.Get(FieldMetaScratch0))
	}
}

func TestTernaryNilMasksAreExact(t *testing.T) {
	tbl := NewTable("t", MatchTernary, []FieldID{FieldIPSrc}, 0, Action{})
	tbl.Add(Entry{Values: []uint64{5}, Action: NewAction("hit")})
	var phv PHV
	phv.Set(FieldIPSrc, 5)
	if _, hit := tbl.Lookup(&phv); !hit {
		t.Error("exact-valued ternary entry missed")
	}
	phv.Set(FieldIPSrc, 6)
	if _, hit := tbl.Lookup(&phv); hit {
		t.Error("exact-valued ternary entry hit wrong value")
	}
}

func TestTableValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"no key":    func() { NewTable("x", MatchExact, nil, 0, Action{}) },
		"lpm multi": func() { NewTable("x", MatchLPM, []FieldID{1, 2}, 32, Action{}) },
		"lpm width": func() { NewTable("x", MatchLPM, []FieldID{1}, 0, Action{}) },
		"bad arity": func() { NewTable("x", MatchExact, []FieldID{1}, 0, Action{}).Add(Entry{Values: []uint64{1, 2}}) },
		"bad prefix": func() {
			NewTable("x", MatchLPM, []FieldID{1}, 32, Action{}).Add(Entry{Values: []uint64{0}, PrefixLen: 40})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestActionPrimitives(t *testing.T) {
	regs := NewRegisterFile()
	regs.Define("ctr", 4)
	var phv PHV
	ctx := Ctx{PHV: &phv, Regs: regs}

	OpSet{FieldMetaScratch0, 10}.Apply(&ctx)
	OpAdd{FieldMetaScratch0, -3}.Apply(&ctx)
	OpCopy{FieldMetaScratch1, FieldMetaScratch0}.Apply(&ctx)
	if phv.Get(FieldMetaScratch1) != 7 {
		t.Errorf("set/add/copy chain = %d, want 7", phv.Get(FieldMetaScratch1))
	}
	OpAnd{FieldMetaScratch1, 0x3}.Apply(&ctx)
	if phv.Get(FieldMetaScratch1) != 3 {
		t.Errorf("and = %d", phv.Get(FieldMetaScratch1))
	}
	OpOr{FieldMetaScratch1, 0x8}.Apply(&ctx)
	if phv.Get(FieldMetaScratch1) != 11 {
		t.Errorf("or = %d", phv.Get(FieldMetaScratch1))
	}
	OpMod{FieldMetaScratch1, 4}.Apply(&ctx)
	if phv.Get(FieldMetaScratch1) != 3 {
		t.Errorf("mod = %d", phv.Get(FieldMetaScratch1))
	}

	// Registers: post-increment RR counter.
	phv.Set(FieldMetaScratch2, 0) // index
	for i := uint64(1); i <= 3; i++ {
		OpRegAdd{"ctr", FieldMetaScratch2, 1, FieldMetaHash}.Apply(&ctx)
		if phv.Get(FieldMetaHash) != i {
			t.Errorf("RegAdd #%d = %d", i, phv.Get(FieldMetaHash))
		}
	}
	OpRegWrite{"ctr", FieldMetaScratch2, FieldMetaScratch1}.Apply(&ctx)
	OpRegRead{"ctr", FieldMetaScratch2, FieldMetaScratch0}.Apply(&ctx)
	if phv.Get(FieldMetaScratch0) != 3 {
		t.Errorf("reg write/read = %d", phv.Get(FieldMetaScratch0))
	}
	if regs.Read("ctr", 0) != 3 {
		t.Errorf("direct Read = %d", regs.Read("ctr", 0))
	}

	// Hash determinism and spread.
	phv.Set(FieldIPSrc, 1)
	OpHash{FieldMetaHash, []FieldID{FieldIPSrc, FieldL4Src}}.Apply(&ctx)
	h1 := phv.Get(FieldMetaHash)
	OpHash{FieldMetaHash, []FieldID{FieldIPSrc, FieldL4Src}}.Apply(&ctx)
	if phv.Get(FieldMetaHash) != h1 {
		t.Error("hash not deterministic")
	}
	phv.Set(FieldIPSrc, 2)
	OpHash{FieldMetaHash, []FieldID{FieldIPSrc, FieldL4Src}}.Apply(&ctx)
	if phv.Get(FieldMetaHash) == h1 {
		t.Error("hash did not change with input")
	}

	// Chain building.
	OpPushHop{Engine: 5, SlackConst: 100}.Apply(&ctx)
	phv.Set(FieldMetaScratch0, 3)
	OpPushHopFromField{EngineFrom: FieldMetaScratch0, SlackConst: 1, SlackFrom: FieldMetaScratch1, HasSlackFrom: true}.Apply(&ctx)
	if len(ctx.Chain) != 2 || ctx.Chain[0] != (packet.Hop{Engine: 5, Slack: 100}) ||
		ctx.Chain[1] != (packet.Hop{Engine: 3, Slack: 4}) {
		t.Errorf("chain = %+v", ctx.Chain)
	}
	OpClearChain{}.Apply(&ctx)
	if len(ctx.Chain) != 0 {
		t.Error("clear chain failed")
	}
	OpDrop{}.Apply(&ctx)
	if !ctx.Drop {
		t.Error("drop flag not set")
	}
}

func TestSlackSaturation(t *testing.T) {
	var phv PHV
	ctx := Ctx{PHV: &phv}
	phv.Set(FieldMetaScratch0, ^uint64(0))
	OpPushHop{Engine: 1, SlackConst: 10, SlackFrom: FieldMetaScratch0, HasSlackFrom: true}.Apply(&ctx)
	if ctx.Chain[0].Slack != 0xffffffff {
		t.Errorf("slack did not saturate: %d", ctx.Chain[0].Slack)
	}
}

func TestRegisterFileValidation(t *testing.T) {
	r := NewRegisterFile()
	r.Define("a", 2)
	for name, fn := range map[string]func(){
		"dup":       func() { r.Define("a", 2) },
		"zero size": func() { r.Define("b", 0) },
		"undefined": func() { r.Read("nope", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Index wraps modulo size.
	r.write("a", 5, 9)
	if r.Read("a", 1) != 9 {
		t.Error("index wrap failed")
	}
}
