package rmt

import (
	"errors"
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// This file implements the per-pipeline flow cache: a megaflow-style
// exact-match cache over Program.Process. The first packet of a flow runs
// an instrumented table walk that both computes the verdict and proves (or
// disproves) that the verdict is a pure function of the cache key; later
// packets with the same key replay the recorded verdict — tenant
// classification, descriptor queue, offload chain, drop decision, and the
// program's register side effects — without touching the parser or tables.
//
// Cycle accuracy is unaffected: the cache lives inside Program.Process,
// which the timed Pipeline calls combinationally at Accept; the message
// still occupies the pipeline for the full parser+stages+deparser latency.
// Only the Go-side cost of modelling the walk is skipped.
//
// # Key and correctness
//
// The key is (len(buf), buf[:maxParseLen], port, wire length, class,
// ingress tenant, chain presence + remaining hops) — every input
// Program.Process reads except the current cycle and the deadline, which
// are handled by taint tracking below. maxParseLen is the largest byte
// offset any recorded parse walk has examined; whenever a new walk reads
// further, the prefix grows and the cache flushes, so all resident keys
// are always comparable. Two packets with equal keys therefore present
// identical bytes to the parser over every offset the recorded walk
// visited, which forces the identical walk (the walk is a deterministic
// function of the bytes it examines), identical PHV extracts, and — given
// untainted table keys — identical match results at every stage.
//
// # Taint
//
// meta.now and meta.deadline differ between packets of one flow, and
// register reads differ between visits, so the recording walk tracks a
// taint bit per PHV field (seeded with now and deadline, spread by copies,
// hashes, and register reads, cleared by constant writes). A flow is
// cacheable only if no tainted field reaches a table key, a chain hop's
// slack or engine source, a register-op operand, or the verdict fields
// (tenant, queue, chain flags). Anything else — including OpFunc escape
// hatches — records a negative entry: later packets of that flow skip the
// recording overhead and run the plain walk.
//
// # Side effects
//
// Register writes are re-executed on every hit from a recorded replay
// list: OpRegWrite stores its resolved slot and value, OpRegAdd its
// resolved slot and delta, in program order. Replaying an add (rather than
// a remembered final value) keeps counters evolving exactly as the
// uncached walk would, so register state is byte-identical cache on/off.
//
// # Invalidation
//
// Every Table mutation (Add, RewriteEngine, RewriteEngineTenant) bumps the
// table's version; the cache compares the summed versions
// (Program.Generation) on every lookup and flushes on change. Control-
// plane reroutes — failover, tenant punts, drop rules — all go through
// those mutators, so a cached decision can never outlive the tables that
// produced it.

const (
	// flowKeyPrefixCap bounds how many packet bytes a key may carry; a
	// walk that examines more records a negative entry instead. 160 covers
	// the standard parse graph even with a long chain shim header.
	flowKeyPrefixCap = 160
	// flowCacheCap bounds resident flows; insertion into a full cache
	// flushes (simple, deterministic, and sized far above the flow counts
	// the workloads generate).
	flowCacheCap = 4096
)

// errCachedParse is returned for replayed parse failures; the original
// error text is only reported the first time a flow is seen.
var errCachedParse = errors.New("rmt: parse error (cached verdict)")

// regReplay is one recorded register side effect with its array resolved
// at record time.
type regReplay struct {
	arr []uint64
	idx uint64 // pre-modulo index, as the op computed it
	val uint64 // value for writes, delta for adds
	add bool
}

// flowEntry is one cached verdict.
type flowEntry struct {
	// uncacheable marks a negative entry: the flow's verdict depends on
	// per-packet or stateful inputs, so hits run the plain walk.
	uncacheable bool
	err         bool // parse failed; replay returns errCachedParse
	drop        bool
	tenant      uint16
	flags       uint8
	queue       uint64
	hops        []packet.Hop
	regOps      []regReplay
}

// FlowCacheStats are a flow cache's counters.
type FlowCacheStats struct {
	// Hits replayed a cached verdict.
	Hits uint64
	// Misses ran the recording walk (first packet of each flow, and every
	// packet after a flush).
	Misses uint64
	// NegHits matched a negative entry and ran the plain walk.
	NegHits uint64
	// Flushes counts whole-cache invalidations (table generation change,
	// key-prefix growth, or capacity).
	Flushes uint64
}

// HitRate returns Hits / (Hits + Misses + NegHits), 0 when idle.
func (s FlowCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.NegHits
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// flowCache is the per-pipeline cache. It is not safe for concurrent use;
// each timed Pipeline owns one, matching the kernel's rule that a
// component's state is touched only by its own Eval.
type flowCache struct {
	entries     map[string]*flowEntry
	gen         uint64
	maxParseLen int
	keyBuf      []byte
	stats       FlowCacheStats

	// shadowEvery > 0 arms shadow re-execution: every shadowEvery-th hit
	// runs the instrumented full walk instead of the replay and compares
	// the freshly recorded entry against the cached one field by field. A
	// coherent cache produces byte-identical effects either way, so the
	// substitution never perturbs the simulation; a divergence means the
	// cache replayed a verdict the tables would no longer produce — the
	// invariant the monitor asserts (mismatches == 0).
	shadowEvery      uint64
	shadowChecks     uint64
	shadowMismatches uint64
	firstMismatch    string
}

func newFlowCache() *flowCache {
	return &flowCache{
		entries: make(map[string]*flowEntry),
		keyBuf:  make([]byte, 0, 256),
	}
}

func (c *flowCache) flush() {
	if len(c.entries) > 0 {
		c.entries = make(map[string]*flowEntry)
	}
	c.stats.Flushes++
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// keyMetaLen is the fixed-width metadata portion of a flow key; packet
// bytes follow it.
const keyMetaLen = 8 + 8 + 8 + 1 + 8 + 1 + 8

// buildKey assembles the flow key into the cache's reusable buffer:
// keyMetaLen bytes of metadata followed by up to prefixLen packet bytes.
// It must cover every Process input except meta.now and meta.deadline
// (those are taint-tracked instead).
func (c *flowCache) buildKey(msg *packet.Message, prefixLen int) []byte {
	buf := msg.Pkt.Buf
	k := c.keyBuf[:0]
	k = appendU64(k, uint64(len(buf)))
	k = appendU64(k, uint64(uint32(msg.Port)))
	k = appendU64(k, uint64(msg.WireLen()))
	k = append(k, byte(msg.Class))
	k = appendU64(k, uint64(msg.Tenant))
	if ch := msg.Chain(); ch != nil {
		k = append(k, 1)
		k = appendU64(k, uint64(ch.Remaining()))
	} else {
		k = append(k, 0)
		k = appendU64(k, 0)
	}
	n := len(buf)
	if n > prefixLen {
		n = prefixLen
	}
	k = append(k, buf[:n]...)
	c.keyBuf = k
	return k
}

// process is the cached equivalent of Program.Process. The bool reports
// whether the verdict was replayed from the cache.
func (c *flowCache) process(p *Program, msg *packet.Message, now uint64) (Result, bool, error) {
	if g := p.Generation(); g != c.gen {
		c.flush()
		c.gen = g
	}
	key := c.buildKey(msg, c.maxParseLen)
	if e, ok := c.entries[string(key)]; ok {
		if e.uncacheable {
			c.stats.NegHits++
			res, err := p.Process(msg, now)
			return res, false, err
		}
		c.stats.Hits++
		if c.shadowEvery > 0 && c.stats.Hits%c.shadowEvery == 0 {
			// Shadow re-execution: the full walk replaces the replay for
			// this hit, applying the same effects a coherent entry would.
			c.shadowChecks++
			res, fresh, _, err := record(p, msg, now)
			if diff := diffEntries(e, fresh); diff != "" {
				c.shadowMismatches++
				if c.firstMismatch == "" {
					c.firstMismatch = diff
				}
			}
			return res, true, err
		}
		res, err := replay(p, e, msg)
		return res, true, err
	}
	c.stats.Misses++
	// Capture the full-prefix key BEFORE the walk: processing mutates the
	// message (chain insertion rewrites the buffer), and the stored key
	// must describe the packet as the next probe will see it — at ingress.
	full := c.buildKey(msg, flowKeyPrefixCap)
	res, e, consumed, err := record(p, msg, now)
	if !e.uncacheable && consumed > c.maxParseLen {
		if consumed <= flowKeyPrefixCap {
			// The walk examined bytes beyond the current key prefix: grow
			// the prefix and flush so every resident key stays comparable.
			c.maxParseLen = consumed
			c.flush()
		} else {
			e.uncacheable = true
		}
	}
	if len(c.entries) >= flowCacheCap {
		c.flush()
	}
	n := len(full) - keyMetaLen // pristine packet bytes captured
	if n > c.maxParseLen {
		n = c.maxParseLen
	}
	c.entries[string(full[:keyMetaLen+n])] = e
	return res, false, err
}

// diffEntries compares a cached verdict against a freshly recorded one and
// returns a description of the first divergence, or "" when they agree on
// every field a replay would apply.
func diffEntries(old, fresh *flowEntry) string {
	switch {
	case old.uncacheable != fresh.uncacheable:
		return fmt.Sprintf("cacheability changed: cached %v, fresh walk %v", !old.uncacheable, !fresh.uncacheable)
	case old.err != fresh.err:
		return fmt.Sprintf("parse verdict changed: cached err=%v, fresh err=%v", old.err, fresh.err)
	case old.drop != fresh.drop:
		return fmt.Sprintf("drop verdict changed: cached %v, fresh %v", old.drop, fresh.drop)
	case old.tenant != fresh.tenant:
		return fmt.Sprintf("tenant changed: cached %d, fresh %d", old.tenant, fresh.tenant)
	case old.flags != fresh.flags:
		return fmt.Sprintf("chain flags changed: cached %#x, fresh %#x", old.flags, fresh.flags)
	case old.queue != fresh.queue:
		return fmt.Sprintf("queue changed: cached %d, fresh %d", old.queue, fresh.queue)
	case len(old.hops) != len(fresh.hops):
		return fmt.Sprintf("chain length changed: cached %d hops, fresh %d", len(old.hops), len(fresh.hops))
	case len(old.regOps) != len(fresh.regOps):
		return fmt.Sprintf("register side effects changed: cached %d ops, fresh %d", len(old.regOps), len(fresh.regOps))
	}
	for i := range old.hops {
		if old.hops[i] != fresh.hops[i] {
			return fmt.Sprintf("chain hop %d changed: cached %+v, fresh %+v", i, old.hops[i], fresh.hops[i])
		}
	}
	for i := range old.regOps {
		a, b := &old.regOps[i], &fresh.regOps[i]
		sameArr := len(a.arr) == len(b.arr) && (len(a.arr) == 0 || &a.arr[0] == &b.arr[0])
		if !sameArr || a.idx != b.idx || a.val != b.val || a.add != b.add {
			return fmt.Sprintf("register op %d changed: cached {idx:%d val:%d add:%v}, fresh {idx:%d val:%d add:%v}",
				i, a.idx, a.val, a.add, b.idx, b.val, b.add)
		}
	}
	return ""
}

// replay applies a cached verdict to msg: register side effects first (in
// recorded program order), then the message-level outputs, mirroring the
// order of the plain walk.
func replay(p *Program, e *flowEntry, msg *packet.Message) (Result, error) {
	for i := range e.regOps {
		r := &e.regOps[i]
		slot := r.idx % uint64(len(r.arr))
		if r.add {
			r.arr[slot] += r.val
		} else {
			r.arr[slot] = r.val
		}
	}
	if e.err {
		return Result{}, errCachedParse
	}
	if e.drop {
		return Result{Msg: msg, Drop: true}, nil
	}
	msg.Tenant = e.tenant
	p.deparse(msg, e.hops, e.flags)
	return Result{Msg: msg, Queue: e.queue}, nil
}

// record runs the instrumented walk: identical effects to Program.Process,
// plus taint tracking and side-effect recording. It returns the verdict,
// the entry to cache, and how many leading packet bytes the parse walk
// examined.
func record(p *Program, msg *packet.Message, now uint64) (Result, *flowEntry, int, error) {
	e := &flowEntry{}
	var phv PHV
	phv.Set(FieldMetaPort, uint64(uint32(msg.Port)))
	phv.Set(FieldMetaWireLen, uint64(msg.WireLen()))
	phv.Set(FieldMetaClass, uint64(msg.Class))
	phv.Set(FieldMetaTenant, uint64(msg.Tenant))
	phv.Set(FieldMetaNow, now)
	phv.Set(FieldMetaDeadline, msg.Deadline)
	if ch := msg.Chain(); ch != nil {
		phv.Set(FieldChainRemaining, uint64(ch.Remaining()))
	}
	consumed, err := p.Parser.parse(msg.Pkt.Buf, &phv)
	if err != nil {
		// A parse failure is a pure function of (len(buf), examined
		// bytes), both in the key, so the drop verdict itself is cacheable.
		e.err = true
		return Result{}, e, consumed, err
	}

	// taint marks PHV fields whose value may differ between packets that
	// share this flow key.
	taint := uint64(1<<FieldMetaNow | 1<<FieldMetaDeadline)
	cacheable := true
	ctx := Ctx{PHV: &phv, Regs: p.Regs}
	for _, stage := range p.Stages {
		for _, table := range stage {
			for _, f := range table.Key {
				if taint&(1<<f) != 0 {
					// The winning entry may differ between packets of
					// this flow; this packet's walk is still correct.
					cacheable = false
				}
			}
			action, _ := table.Lookup(&phv)
			for _, op := range action.Ops {
				switch o := op.(type) {
				case OpSet:
					taint &^= 1 << o.Field
				case OpCopy:
					if taint&(1<<o.Src) != 0 {
						taint |= 1 << o.Dst
					} else {
						taint &^= 1 << o.Dst
					}
				case OpAdd, OpAnd, OpOr, OpMod:
					// In-place arithmetic preserves the field's taint.
				case OpHash:
					dirty := false
					for _, s := range o.Srcs {
						if taint&(1<<s) != 0 {
							dirty = true
						}
					}
					if dirty {
						taint |= 1 << o.Dst
					} else {
						taint &^= 1 << o.Dst
					}
				case OpPushHop:
					if o.HasSlackFrom && taint&(1<<o.SlackFrom) != 0 {
						cacheable = false
					}
				case OpPushHopFromField:
					if taint&(1<<o.EngineFrom) != 0 ||
						(o.HasSlackFrom && taint&(1<<o.SlackFrom) != 0) {
						cacheable = false
					}
				case OpRegRead:
					// Register contents change between visits: the read
					// itself is side-effect free, but its result is tainted.
					taint |= 1 << o.Dst
				case OpRegWrite:
					if taint&(1<<o.IndexFrom|1<<o.Src) != 0 {
						cacheable = false
					} else {
						e.regOps = append(e.regOps, regReplay{
							arr: p.Regs.array(o.Reg),
							idx: phv.Get(o.IndexFrom),
							val: phv.Get(o.Src),
						})
					}
				case OpRegAdd:
					if taint&(1<<o.IndexFrom) != 0 {
						cacheable = false
					} else {
						e.regOps = append(e.regOps, regReplay{
							arr: p.Regs.array(o.Reg),
							idx: phv.Get(o.IndexFrom),
							val: o.Delta,
							add: true,
						})
					}
					taint |= 1 << o.Dst // post-increment value is stateful
				case OpClearChain, OpDrop:
					// Deterministic given the action choice, which the
					// table-key check above already guards.
				default:
					// OpFunc and any future op: opaque to the recorder.
					cacheable = false
				}
				op.Apply(&ctx)
			}
		}
	}
	e.uncacheable = !cacheable
	if ctx.Drop {
		e.drop = true
		return Result{Msg: msg, Drop: true}, e, consumed, nil
	}
	if taint&(1<<FieldMetaTenant|1<<FieldMetaQueue|1<<FieldMetaNewFlags) != 0 {
		e.uncacheable = true
	}
	msg.Tenant = uint16(phv.Get(FieldMetaTenant))
	flags := uint8(phv.Get(FieldMetaNewFlags))
	p.deparse(msg, ctx.Chain, flags)
	e.tenant = msg.Tenant
	e.flags = flags
	e.queue = phv.Get(FieldMetaQueue)
	if len(ctx.Chain) > 0 {
		e.hops = append([]packet.Hop(nil), ctx.Chain...)
	}
	return Result{Msg: msg, Queue: e.queue}, e, consumed, nil
}
