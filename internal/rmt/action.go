package rmt

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// Ctx is the per-packet action context threaded through the match+action
// stages: the PHV, the offload chain under construction, the drop verdict,
// and the pipeline's stateful registers.
type Ctx struct {
	PHV *PHV
	// Chain accumulates the offload chain the deparser will write into
	// the chain shim header.
	Chain []packet.Hop
	// Drop marks the packet for discarding at the end of the pipeline.
	Drop bool
	// Regs is the pipeline's stateful register file.
	Regs *RegisterFile
}

// Op is a single-cycle action primitive, the unit of programmability RMT
// hardware guarantees can complete within a stage (§2.3.3: "the actions
// that are possible at each stage of the pipeline are limited to relatively
// simple atoms to guarantee that the entire pipeline can process packets at
// line-rate").
type Op interface {
	Apply(ctx *Ctx)
}

// Action is an ordered list of primitives, executed when a table entry
// hits. The zero Action is a no-op.
type Action struct {
	Name string
	Ops  []Op
}

// Apply runs the action's primitives in order.
func (a Action) Apply(ctx *Ctx) {
	for _, op := range a.Ops {
		op.Apply(ctx)
	}
}

// NewAction builds an action from primitives.
func NewAction(name string, ops ...Op) Action { return Action{Name: name, Ops: ops} }

// OpSet writes a constant to a field.
type OpSet struct {
	Field FieldID
	Value uint64
}

// Apply implements Op.
func (o OpSet) Apply(ctx *Ctx) { ctx.PHV.Set(o.Field, o.Value) }

// OpCopy copies Src into Dst.
type OpCopy struct {
	Dst, Src FieldID
}

// Apply implements Op.
func (o OpCopy) Apply(ctx *Ctx) { ctx.PHV.Set(o.Dst, ctx.PHV.Get(o.Src)) }

// OpAdd adds a signed constant to a field (wrapping, like ALU hardware).
type OpAdd struct {
	Field FieldID
	Delta int64
}

// Apply implements Op.
func (o OpAdd) Apply(ctx *Ctx) {
	ctx.PHV.Set(o.Field, ctx.PHV.Get(o.Field)+uint64(o.Delta))
}

// OpAnd masks a field.
type OpAnd struct {
	Field FieldID
	Mask  uint64
}

// Apply implements Op.
func (o OpAnd) Apply(ctx *Ctx) { ctx.PHV.Set(o.Field, ctx.PHV.Get(o.Field)&o.Mask) }

// OpOr sets bits in a field.
type OpOr struct {
	Field FieldID
	Bits  uint64
}

// Apply implements Op.
func (o OpOr) Apply(ctx *Ctx) { ctx.PHV.Set(o.Field, ctx.PHV.Get(o.Field)|o.Bits) }

// OpMod reduces a field modulo N (descriptor-queue load balancing).
type OpMod struct {
	Field FieldID
	N     uint64
}

// Apply implements Op.
func (o OpMod) Apply(ctx *Ctx) {
	if o.N == 0 {
		panic("rmt: OpMod with N=0")
	}
	ctx.PHV.Set(o.Field, ctx.PHV.Get(o.Field)%o.N)
}

// OpHash writes a hash of the source fields into Dst (flow hashing for
// load balancing). FNV-1a over the 64-bit values, matching what a hardware
// hash unit would provide.
type OpHash struct {
	Dst  FieldID
	Srcs []FieldID
}

// Apply implements Op.
func (o OpHash) Apply(ctx *Ctx) {
	h := uint64(1469598103934665603)
	for _, f := range o.Srcs {
		v := ctx.PHV.Get(f)
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	ctx.PHV.Set(o.Dst, h)
}

// OpPushHop appends an engine to the offload chain. Slack is SlackConst
// plus the value of SlackFrom (use the zero FieldID-less form for a pure
// constant by leaving HasSlackFrom false).
type OpPushHop struct {
	Engine       packet.Addr
	SlackConst   uint32
	SlackFrom    FieldID
	HasSlackFrom bool
}

// Apply implements Op.
func (o OpPushHop) Apply(ctx *Ctx) {
	slack := o.SlackConst
	if o.HasSlackFrom {
		slack = satAdd32(slack, ctx.PHV.Get(o.SlackFrom))
	}
	ctx.Chain = append(ctx.Chain, packet.Hop{Engine: o.Engine, Slack: slack})
}

// satAdd32 adds a 64-bit value to a 32-bit slack with saturation (hardware
// slack adders saturate rather than wrap).
func satAdd32(a uint32, b uint64) uint32 {
	if b >= 0xffffffff || uint64(a)+b > 0xffffffff {
		return 0xffffffff
	}
	return a + uint32(b)
}

// OpPushHopFromField appends an engine whose address comes from a PHV
// field (e.g. a queue index computed by OpHash+OpMod mapped to a DMA
// engine address by an earlier table).
type OpPushHopFromField struct {
	EngineFrom   FieldID
	SlackConst   uint32
	SlackFrom    FieldID
	HasSlackFrom bool
}

// Apply implements Op.
func (o OpPushHopFromField) Apply(ctx *Ctx) {
	slack := o.SlackConst
	if o.HasSlackFrom {
		slack = satAdd32(slack, ctx.PHV.Get(o.SlackFrom))
	}
	ctx.Chain = append(ctx.Chain, packet.Hop{
		Engine: packet.Addr(ctx.PHV.Get(o.EngineFrom)),
		Slack:  slack,
	})
}

// OpClearChain resets the chain under construction (used on reinjection,
// when the pipeline replaces the remainder of a chain, §3.1.2).
type OpClearChain struct{}

// Apply implements Op.
func (OpClearChain) Apply(ctx *Ctx) { ctx.Chain = ctx.Chain[:0] }

// OpDrop marks the packet for dropping.
type OpDrop struct{}

// Apply implements Op.
func (OpDrop) Apply(ctx *Ctx) { ctx.Drop = true }

// OpRegRead loads Regs[Reg][index] into Dst, where index comes from
// IndexFrom modulo the register array size.
type OpRegRead struct {
	Reg       string
	IndexFrom FieldID
	Dst       FieldID
}

// Apply implements Op.
func (o OpRegRead) Apply(ctx *Ctx) {
	ctx.PHV.Set(o.Dst, ctx.Regs.read(o.Reg, ctx.PHV.Get(o.IndexFrom)))
}

// OpRegWrite stores Src into Regs[Reg][index].
type OpRegWrite struct {
	Reg       string
	IndexFrom FieldID
	Src       FieldID
}

// Apply implements Op.
func (o OpRegWrite) Apply(ctx *Ctx) {
	ctx.Regs.write(o.Reg, ctx.PHV.Get(o.IndexFrom), ctx.PHV.Get(o.Src))
}

// OpRegAdd atomically adds Delta to Regs[Reg][index] and writes the
// post-increment value to Dst — the read-modify-write atom used for
// round-robin counters and flow statistics.
type OpRegAdd struct {
	Reg       string
	IndexFrom FieldID
	Delta     uint64
	Dst       FieldID
}

// Apply implements Op.
func (o OpRegAdd) Apply(ctx *Ctx) {
	v := ctx.Regs.read(o.Reg, ctx.PHV.Get(o.IndexFrom)) + o.Delta
	ctx.Regs.write(o.Reg, ctx.PHV.Get(o.IndexFrom), v)
	ctx.PHV.Set(o.Dst, v)
}

// RegisterFile is the stateful memory of a pipeline: named arrays of
// 64-bit registers, as provided by RMT stage SRAM.
type RegisterFile struct {
	arrays map[string][]uint64
}

// NewRegisterFile creates an empty register file.
func NewRegisterFile() *RegisterFile {
	return &RegisterFile{arrays: make(map[string][]uint64)}
}

// Define allocates a named register array. Defining an existing name
// panics: programs own their register layout.
func (r *RegisterFile) Define(name string, size int) {
	if size <= 0 {
		panic(fmt.Sprintf("rmt: register array %q size %d", name, size))
	}
	if _, dup := r.arrays[name]; dup {
		panic(fmt.Sprintf("rmt: register array %q already defined", name))
	}
	r.arrays[name] = make([]uint64, size)
}

// Read returns Regs[name][index % size] (test/inspection access).
func (r *RegisterFile) Read(name string, index uint64) uint64 { return r.read(name, index) }

func (r *RegisterFile) array(name string) []uint64 {
	a, ok := r.arrays[name]
	if !ok {
		panic(fmt.Sprintf("rmt: undefined register array %q", name))
	}
	return a
}

func (r *RegisterFile) read(name string, index uint64) uint64 {
	a := r.array(name)
	return a[index%uint64(len(a))]
}

func (r *RegisterFile) write(name string, index, v uint64) {
	a := r.array(name)
	a[index%uint64(len(a))] = v
}

// OpFunc adapts a Go closure to Op, the escape hatch for model code that
// does not need the single-cycle-atom discipline (used by tests and the
// manycore baseline's software datapath).
type OpFunc func(ctx *Ctx)

// Apply implements Op.
func (f OpFunc) Apply(ctx *Ctx) { f(ctx) }
