package rmt

import (
	"fmt"
	"sort"

	"github.com/panic-nic/panic/internal/packet"
)

// MatchKind is a table's match discipline.
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// String returns the kind name.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	default:
		return fmt.Sprintf("MatchKind(%d)", int(k))
	}
}

// Entry is one table entry. Which fields are meaningful depends on the
// table's match kind:
//
//   - exact: Values
//   - lpm: Values[0] and PrefixLen (single-field key, up to 64 bits)
//   - ternary: Values, Masks, Priority (higher wins)
type Entry struct {
	Values    []uint64
	Masks     []uint64
	PrefixLen int
	Priority  int
	Action    Action
}

// Table is a match+action table.
type Table struct {
	Name    string
	Kind    MatchKind
	Key     []FieldID
	Default Action

	exact   map[string]*Entry
	lpm     []*Entry // sorted by descending prefix length
	ternary []*Entry // sorted by descending priority
	width   int      // key bit width for LPM
	version uint64   // bumped by every mutation; see Version
}

// Version returns the table's mutation counter. Every Add and every
// rewrite that changed at least one entry bumps it; flow caches compare
// summed versions (Program.Generation) to detect that a cached decision
// may be stale.
func (t *Table) Version() uint64 { return t.version }

// NewTable creates an empty table. LPM tables require exactly one key
// field; keyBits gives its width (e.g. 32 for IPv4 addresses).
func NewTable(name string, kind MatchKind, key []FieldID, keyBits int, def Action) *Table {
	if len(key) == 0 {
		panic(fmt.Sprintf("rmt: table %q has no key", name))
	}
	if kind == MatchLPM {
		if len(key) != 1 {
			panic(fmt.Sprintf("rmt: LPM table %q must have a single key field", name))
		}
		if keyBits < 1 || keyBits > 64 {
			panic(fmt.Sprintf("rmt: LPM table %q key width %d", name, keyBits))
		}
	}
	return &Table{
		Name: name, Kind: kind, Key: key, Default: def,
		exact: make(map[string]*Entry), width: keyBits,
	}
}

// Add inserts an entry. It validates arity against the table key and keeps
// the internal ordering invariants (longest prefix first, highest priority
// first).
func (t *Table) Add(e Entry) {
	if len(e.Values) != len(t.Key) {
		panic(fmt.Sprintf("rmt: table %q: entry arity %d != key arity %d", t.Name, len(e.Values), len(t.Key)))
	}
	t.version++
	switch t.Kind {
	case MatchExact:
		t.exact[exactKey(e.Values)] = &e
	case MatchLPM:
		if e.PrefixLen < 0 || e.PrefixLen > t.width {
			panic(fmt.Sprintf("rmt: table %q: prefix length %d out of [0,%d]", t.Name, e.PrefixLen, t.width))
		}
		t.lpm = append(t.lpm, &e)
		sort.SliceStable(t.lpm, func(i, j int) bool { return t.lpm[i].PrefixLen > t.lpm[j].PrefixLen })
	case MatchTernary:
		if e.Masks == nil {
			e.Masks = make([]uint64, len(e.Values))
			for i := range e.Masks {
				e.Masks[i] = ^uint64(0)
			}
		}
		if len(e.Masks) != len(t.Key) {
			panic(fmt.Sprintf("rmt: table %q: mask arity mismatch", t.Name))
		}
		t.ternary = append(t.ternary, &e)
		sort.SliceStable(t.ternary, func(i, j int) bool { return t.ternary[i].Priority > t.ternary[j].Priority })
	}
}

// Entries returns the number of installed entries.
func (t *Table) Entries() int {
	return len(t.exact) + len(t.lpm) + len(t.ternary)
}

// Clear removes every installed entry (the default action stays) and
// returns how many were removed. A non-empty table bumps the version, so
// flow caches holding decisions derived from the removed entries
// invalidate exactly as they do for Add.
func (t *Table) Clear() int {
	n := t.Entries()
	if n == 0 {
		return 0
	}
	t.version++
	t.exact = make(map[string]*Entry)
	t.lpm = nil
	t.ternary = nil
	return n
}

// Lookup matches the PHV against the table and returns the winning entry's
// action, or the default action when nothing matches. The boolean reports
// whether an installed entry (not the default) hit.
func (t *Table) Lookup(phv *PHV) (Action, bool) {
	switch t.Kind {
	case MatchExact:
		// Build the probe key in a stack buffer: indexing the map with
		// string(b) compiles to a no-copy lookup, so the served path does
		// not allocate (exactKey is kept for the insert path, where the
		// key string must outlive the call).
		var kb [64]byte
		k := kb[:0]
		for _, f := range t.Key {
			v := phv.Get(f)
			k = append(k, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
				byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
		}
		if e, ok := t.exact[string(k)]; ok {
			return e.Action, true
		}
	case MatchLPM:
		v := phv.Get(t.Key[0])
		for _, e := range t.lpm {
			if prefixMask(e.PrefixLen, t.width)&v == e.Values[0] {
				return e.Action, true
			}
		}
	case MatchTernary:
		for _, e := range t.ternary {
			hit := true
			for i, f := range t.Key {
				if phv.Get(f)&e.Masks[i] != e.Values[i]&e.Masks[i] {
					hit = false
					break
				}
			}
			if hit {
				return e.Action, true
			}
		}
	}
	return t.Default, false
}

func prefixMask(prefixLen, width int) uint64 {
	if prefixLen == 0 {
		return 0
	}
	return (^uint64(0) << (width - prefixLen)) & widthMask(width)
}

func widthMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (1 << width) - 1
}

func exactKey(vals []uint64) string {
	b := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		for i := 56; i >= 0; i -= 8 {
			b = append(b, byte(v>>i))
		}
	}
	return string(b)
}

// PrefixOf is a convenience for building LPM entries: it masks value to the
// given prefix length within width bits.
func PrefixOf(value uint64, prefixLen, width int) uint64 {
	return value & prefixMask(prefixLen, width)
}

// RewriteEngine replaces every OpPushHop targeting old with new across all
// installed entries and the default action, returning the number of hops
// rewritten. This is the control-plane primitive behind failover: steering
// chains away from a failed engine is a table rewrite, not a datapath
// change, exactly as a switch control plane would repoint a nexthop.
func (t *Table) RewriteEngine(old, new packet.Addr) int {
	n := rewriteAction(&t.Default, old, new)
	for _, e := range t.exact {
		n += rewriteAction(&e.Action, old, new)
	}
	for _, e := range t.lpm {
		n += rewriteAction(&e.Action, old, new)
	}
	for _, e := range t.ternary {
		n += rewriteAction(&e.Action, old, new)
	}
	if n > 0 {
		t.version++
	}
	return n
}

// RewriteEngineTenant is the tenant-scoped variant of RewriteEngine: it
// rewrites hops only in entries whose key pins tenantField to exactly
// tenant. An exact entry pins the field when its value at the field's key
// position equals tenant; a ternary entry additionally needs a full mask
// there. LPM tables (single-field keys on addresses) and the default
// action are never tenant-pinned and are left untouched.
func (t *Table) RewriteEngineTenant(old, new packet.Addr, tenantField FieldID, tenant uint64) int {
	pos := -1
	for i, f := range t.Key {
		if f == tenantField {
			pos = i
			break
		}
	}
	if pos < 0 {
		return 0
	}
	n := 0
	for _, e := range t.exact {
		if e.Values[pos] == tenant {
			n += rewriteAction(&e.Action, old, new)
		}
	}
	for _, e := range t.ternary {
		if e.Masks[pos] == ^uint64(0) && e.Values[pos] == tenant {
			n += rewriteAction(&e.Action, old, new)
		}
	}
	if n > 0 {
		t.version++
	}
	return n
}

func rewriteAction(a *Action, old, new packet.Addr) int {
	n := 0
	for i, op := range a.Ops {
		if ph, ok := op.(OpPushHop); ok && ph.Engine == old {
			ph.Engine = new
			a.Ops[i] = ph
			n++
		}
	}
	return n
}
