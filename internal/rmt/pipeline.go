package rmt

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// Program is everything installed into an RMT pipeline: the parse graph,
// the match+action stages (tables applied in order within a stage), and
// the stateful registers.
type Program struct {
	Parser *Parser
	Stages [][]*Table
	Regs   *RegisterFile

	// plantSkipTenantInvalidate and genSkew implement a deliberately
	// plantable invalidation bug for the chaos harness (cmd/chaos -plant):
	// when planted, the generation bumps caused by RewriteEngineTenant are
	// subtracted back out of Generation, so the flow cache never notices
	// tenant-scoped reroutes and keeps replaying stale steering. The
	// invariant monitor's shadow re-execution must catch this.
	plantSkipTenantInvalidate bool
	genSkew                   uint64
}

// PlantSkipTenantInvalidate arms the planted flow-cache invalidation bug:
// from now on, tenant-scoped rewrites no longer advance the generation the
// flow cache sees. Test/chaos harness use only.
func (p *Program) PlantSkipTenantInvalidate() { p.plantSkipTenantInvalidate = true }

// NewProgram builds a program with an empty register file.
func NewProgram(parser *Parser, stages ...[]*Table) *Program {
	return &Program{Parser: parser, Stages: stages, Regs: NewRegisterFile()}
}

// NumStages returns the number of match+action stages.
func (p *Program) NumStages() int { return len(p.Stages) }

// RewriteEngine repoints every chain hop targeting old at new across all
// stages and tables, returning the number of hops rewritten. The control
// plane uses this to fail a broken engine over to a replica (and the
// inverse rewrite to reintegrate it) without touching in-flight packets:
// messages already carrying a chain keep their old steering until they
// next traverse an RMT pipeline.
func (p *Program) RewriteEngine(old, new packet.Addr) int {
	n := 0
	for _, stage := range p.Stages {
		for _, t := range stage {
			n += t.RewriteEngine(old, new)
		}
	}
	return n
}

// RewriteEngineTenant repoints chain hops targeting old at new, but only
// in table entries whose match key pins tenantField to exactly tenant —
// the control-plane primitive behind tenant-scoped fault domains: a wedged
// tile serving several tenants' chains can have a single tenant's steering
// punted to host while every other entry (other tenants' and shared ones)
// keeps its target. Returns the number of hops rewritten.
func (p *Program) RewriteEngineTenant(old, new packet.Addr, tenantField FieldID, tenant uint64) int {
	before := p.rawGeneration()
	n := 0
	for _, stage := range p.Stages {
		for _, t := range stage {
			n += t.RewriteEngineTenant(old, new, tenantField, tenant)
		}
	}
	if p.plantSkipTenantInvalidate {
		p.genSkew += p.rawGeneration() - before
	}
	return n
}

// Generation returns the sum of every table's mutation counter across all
// stages. Any table mutation strictly increases it, so a flow cache can
// detect staleness with one comparison per lookup.
func (p *Program) Generation() uint64 {
	return p.rawGeneration() - p.genSkew
}

func (p *Program) rawGeneration() uint64 {
	var g uint64
	for _, stage := range p.Stages {
		for _, t := range stage {
			g += t.Version()
		}
	}
	return g
}

// Split partitions the program's stages into n contiguous sub-programs for
// chained RMT engines (§3.1.2: "Neighboring engines may be configured to
// independently process messages or be chained to form a longer
// pipeline"). Sub-programs share the parser and register file. The first
// i%n sub-programs get the extra stages when the count is not divisible.
func (p *Program) Split(n int) []*Program {
	if n < 1 || n > len(p.Stages) {
		panic(fmt.Sprintf("rmt: cannot split %d stages into %d parts", len(p.Stages), n))
	}
	parts := make([]*Program, n)
	per := len(p.Stages) / n
	extra := len(p.Stages) % n
	off := 0
	for i := range parts {
		take := per
		if i < extra {
			take++
		}
		parts[i] = &Program{Parser: p.Parser, Stages: p.Stages[off : off+take], Regs: p.Regs}
		off += take
	}
	return parts
}

// Result is the verdict of one pipeline traversal.
type Result struct {
	Msg *packet.Message
	// Drop means the program discarded the packet.
	Drop bool
	// Queue is the descriptor queue selected by the program (value of
	// meta.queue at deparse time).
	Queue uint64
	// Enq is the cycle the timed Pipeline accepted the message (set by
	// Accept, zero for bare Program.Process calls). Tracing reconstructs
	// per-stage spans from it: exit later than Enq + Latency means the
	// pipeline was frozen by fabric backpressure for the difference.
	Enq uint64
	// CacheHit reports that the verdict was replayed from the pipeline's
	// flow cache rather than computed by a table walk. The verdict itself
	// is identical either way; this is observability only.
	CacheHit bool
}

// Process runs one message through the program combinationally (parse →
// stages → deparse) and returns the verdict. The timed Pipeline wraps this
// with the throughput/latency model. now is the current cycle for
// slack/deadline arithmetic.
func (p *Program) Process(msg *packet.Message, now uint64) (Result, error) {
	var phv PHV
	phv.Set(FieldMetaPort, uint64(uint32(msg.Port)))
	phv.Set(FieldMetaWireLen, uint64(msg.WireLen()))
	phv.Set(FieldMetaClass, uint64(msg.Class))
	phv.Set(FieldMetaTenant, uint64(msg.Tenant))
	phv.Set(FieldMetaNow, now)
	phv.Set(FieldMetaDeadline, msg.Deadline)
	if c := msg.Chain(); c != nil {
		phv.Set(FieldChainRemaining, uint64(c.Remaining()))
	}
	if err := p.Parser.Parse(msg.Pkt.Buf, &phv); err != nil {
		return Result{}, err
	}
	ctx := Ctx{PHV: &phv, Regs: p.Regs}
	for _, stage := range p.Stages {
		for _, table := range stage {
			action, _ := table.Lookup(&phv)
			action.Apply(&ctx)
		}
	}
	if ctx.Drop {
		return Result{Msg: msg, Drop: true}, nil
	}
	// The pipeline's tenant classification is authoritative: whatever the
	// stages left in meta.tenant (the parsed KVS tenant, an ESP SPI
	// mapping, or the ingress default) becomes the message's accounting
	// tenant for scheduling, per-tenant engine stats, and fault domains.
	msg.Tenant = uint16(phv.Get(FieldMetaTenant))
	p.deparse(msg, ctx.Chain, uint8(phv.Get(FieldMetaNewFlags)))
	return Result{Msg: msg, Queue: phv.Get(FieldMetaQueue)}, nil
}

// deparse writes the action results back into the packet: the offload
// chain (and its flags) becomes the chain shim header, replacing any
// existing one. The chain slice is copied, so callers (including the flow
// cache's replay path) may retain theirs.
func (p *Program) deparse(msg *packet.Message, chain []packet.Hop, flags uint8) {
	if len(chain) == 0 {
		return
	}
	if existing := msg.Chain(); existing != nil {
		// Reuse the resident chain's hop buffer when it has capacity: a
		// message re-entering the pipeline (reinjection) already carries a
		// chain, and rewriting it must not allocate in steady state. copy
		// is overlap-safe, so chain may alias existing.Hops.
		existing.Cursor = 0
		existing.Flags = flags
		if cap(existing.Hops) >= len(chain) {
			existing.Hops = existing.Hops[:len(chain)]
		} else {
			existing.Hops = make([]packet.Hop, len(chain))
		}
		copy(existing.Hops, chain)
		msg.Pkt.Serialize()
		return
	}
	hops := make([]packet.Hop, len(chain))
	copy(hops, chain)
	msg.InsertChain(&packet.Chain{Flags: flags, Hops: hops})
}

// Pipeline is the timed model of one RMT engine's pipeline: it accepts at
// most one message per cycle and holds each for a fixed latency of
// parserCycles + stages + deparserCycles before it emerges.
type Pipeline struct {
	prog    *Program
	slots   []pipeSlot // slots[0] is the entry stage
	parserC int
	depC    int
	cache   *flowCache // nil = every message runs the full table walk
	dropped uint64
	errs    uint64
	done    uint64
}

type pipeSlot struct {
	res  Result
	full bool
}

// NewPipeline builds a timed pipeline around a program. parserCycles and
// deparserCycles default to 1 when zero.
func NewPipeline(prog *Program, parserCycles, deparserCycles int) *Pipeline {
	if parserCycles <= 0 {
		parserCycles = 1
	}
	if deparserCycles <= 0 {
		deparserCycles = 1
	}
	latency := parserCycles + prog.NumStages() + deparserCycles
	return &Pipeline{prog: prog, slots: make([]pipeSlot, latency), parserC: parserCycles, depC: deparserCycles}
}

// EnableFlowCache attaches a per-flow decision cache to the pipeline (see
// flowcache.go). Verdicts and register state are byte-identical with the
// cache on or off; only the Go-side cost of the table walk changes. The
// cache is private to this pipeline, so pipelines sharing a Program (and
// its registers) stay race-free under the parallel kernel.
func (p *Pipeline) EnableFlowCache() { p.cache = newFlowCache() }

// FlowCacheEnabled reports whether the pipeline has a flow cache.
func (p *Pipeline) FlowCacheEnabled() bool { return p.cache != nil }

// FlowCacheStats returns the flow cache's counters (zero when disabled).
func (p *Pipeline) FlowCacheStats() FlowCacheStats {
	if p.cache == nil {
		return FlowCacheStats{}
	}
	return p.cache.stats
}

// EnableShadowCheck arms flow-cache shadow re-execution: every every-th
// cache hit runs the instrumented full table walk in place of the replay
// and compares the fresh verdict against the cached one field by field
// (see flowCache.shadowEvery). A no-op when the flow cache is disabled or
// every is 0. The invariant monitor asserts ShadowCheckStats mismatches
// stay zero.
func (p *Pipeline) EnableShadowCheck(every uint64) {
	if p.cache != nil {
		p.cache.shadowEvery = every
	}
}

// ShadowCheckStats returns (checks run, mismatches found, description of
// the first mismatch). All zero when shadow checking is off.
func (p *Pipeline) ShadowCheckStats() (checks, mismatches uint64, first string) {
	if p.cache == nil {
		return 0, 0, ""
	}
	return p.cache.shadowChecks, p.cache.shadowMismatches, p.cache.firstMismatch
}

// Occupancy returns how many messages currently sit in pipeline stages —
// accepted but not yet exited. Custody accounting for the invariant
// monitor.
func (p *Pipeline) Occupancy() int {
	n := 0
	for _, s := range p.slots {
		if s.full {
			n++
		}
	}
	return n
}

// Latency returns the pipeline depth in cycles.
func (p *Pipeline) Latency() int { return len(p.slots) }

// ParserCycles returns the parser phase length in cycles.
func (p *Pipeline) ParserCycles() int { return p.parserC }

// DeparserCycles returns the deparser phase length in cycles.
func (p *Pipeline) DeparserCycles() int { return p.depC }

// CanAccept reports whether the entry stage is free this cycle.
func (p *Pipeline) CanAccept() bool { return !p.slots[0].full }

// Accept admits one message; the caller must have checked CanAccept. The
// verdict is computed immediately but only becomes visible when the
// message exits the pipeline. Parse errors count as drops (a real pipeline
// sends unparseable packets to a default action; ours discards and
// counts).
func (p *Pipeline) Accept(msg *packet.Message, now uint64) {
	if p.slots[0].full {
		panic("rmt: Pipeline.Accept when entry stage is occupied")
	}
	var res Result
	var err error
	if p.cache != nil {
		var hit bool
		res, hit, err = p.cache.process(p.prog, msg, now)
		res.CacheHit = hit
	} else {
		res, err = p.prog.Process(msg, now)
	}
	if err != nil {
		p.errs++
		res = Result{Msg: msg, Drop: true}
	}
	res.Enq = now
	p.slots[0] = pipeSlot{res: res, full: true}
}

// Tick advances the pipeline one cycle and returns the message exiting
// this cycle, if any. Dropped packets are counted and returned with
// ok == false (so tracing callers can observe the drop; the zero Result
// with ok == false means nothing exited at all).
func (p *Pipeline) Tick() (Result, bool) {
	last := len(p.slots) - 1
	out := p.slots[last]
	copy(p.slots[1:], p.slots[:last])
	p.slots[0] = pipeSlot{}
	if !out.full {
		return Result{}, false
	}
	p.done++
	if out.res.Drop {
		p.dropped++
		return out.res, false
	}
	return out.res, true
}

// Stats returns (processed, dropped, parse errors).
func (p *Pipeline) Stats() (processed, dropped, parseErrors uint64) {
	return p.done, p.dropped, p.errs
}
