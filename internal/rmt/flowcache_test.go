package rmt

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// cacheProgram builds a program exercising every cacheable op the canonical
// steering program uses: ternary classification, an exact slack stage that
// feeds OpPushHop via SlackFrom, LPM routing, and a stateful lb stage with
// OpHash+OpMod+OpRegAdd. Each call returns a fresh, identical instance so a
// cached and an uncached copy can be driven in lockstep.
func cacheProgram() *Program {
	acl := NewTable("acl", MatchTernary, []FieldID{FieldKVSTenant}, 0, Action{})
	acl.Add(Entry{Values: []uint64{13}, Masks: []uint64{^uint64(0)}, Priority: 10,
		Action: NewAction("deny", OpDrop{})})

	slack := NewTable("slack", MatchExact, []FieldID{FieldMetaClass}, 0,
		NewAction("default-slack", OpSet{FieldMetaScratch1, 1000}))
	slack.Add(Entry{Values: []uint64{uint64(packet.ClassControl)},
		Action: NewAction("tight-slack", OpSet{FieldMetaScratch1, 10})})

	route := NewTable("route", MatchLPM, []FieldID{FieldIPDst}, 32,
		NewAction("to-dma",
			OpPushHop{Engine: 8, SlackFrom: FieldMetaScratch1, HasSlackFrom: true}))
	route.Add(Entry{Values: []uint64{PrefixOf(0x0a000000, 8, 32)}, PrefixLen: 8,
		Action: NewAction("via-cache",
			OpPushHop{Engine: 4, SlackConst: 50},
			OpPushHop{Engine: 8, SlackFrom: FieldMetaScratch1, HasSlackFrom: true})})

	lb := NewTable("lb", MatchExact, []FieldID{FieldMetaScratch2}, 0,
		NewAction("hash-queue",
			OpHash{FieldMetaQueue, []FieldID{FieldIPSrc, FieldIPDst, FieldL4Src, FieldL4Dst}},
			OpMod{FieldMetaQueue, 8},
			OpRegAdd{Reg: "tenant_pkts", IndexFrom: FieldMetaTenant, Delta: 1, Dst: FieldMetaHash},
		))

	prog := NewProgram(StandardParser(), []*Table{acl}, []*Table{slack}, []*Table{route}, []*Table{lb})
	prog.Regs.Define("tenant_pkts", 64)
	return prog
}

type msgSpec struct {
	tenant   uint16
	key      uint64
	srcPort  uint16
	class    packet.Class
	deadline uint64
	dstIP    packet.IP4
	chain    bool
	truncate int // >0: cut the buffer to this many bytes (parse error)
}

func (s msgSpec) build() *packet.Message {
	m := &packet.Message{
		Pkt: packet.NewPacket(0,
			&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: s.dstIP},
			&packet.UDP{SrcPort: s.srcPort, DstPort: packet.KVSPort},
			&packet.KVS{Op: packet.KVSGet, Tenant: s.tenant, Key: s.key},
		),
		Tenant:   s.tenant,
		Class:    s.class,
		Deadline: s.deadline,
	}
	if s.chain {
		m.InsertChain(&packet.Chain{Hops: []packet.Hop{{Engine: 9, Slack: 7}, {Engine: 2, Slack: 9}}})
	}
	if s.truncate > 0 && s.truncate < len(m.Pkt.Buf) {
		m.Pkt.Buf = m.Pkt.Buf[:s.truncate]
	}
	return m
}

func randSpec(rng *rand.Rand) msgSpec {
	s := msgSpec{
		tenant:  uint16(rng.Intn(6)) + 10, // includes 13, the ACL-denied tenant
		key:     uint64(rng.Intn(4)),
		srcPort: uint16(7000 + rng.Intn(4)),
		class:   packet.Class(rng.Intn(2)),
		dstIP:   packet.IP4{10, 0, 0, byte(rng.Intn(3))},
	}
	if rng.Intn(4) == 0 {
		s.dstIP = packet.IP4{192, 168, 0, 1} // misses the LPM /8
	}
	if rng.Intn(3) == 0 {
		s.deadline = uint64(rng.Intn(100000)) // deadline is tainted, never keyed
	}
	if rng.Intn(5) == 0 {
		s.chain = true
	}
	if rng.Intn(16) == 0 {
		s.truncate = 20 // mid-IPv4 truncation: parse error
	}
	return s
}

// TestFlowCacheDifferential drives a cached and an uncached copy of the
// same program with identical randomized traffic and demands identical
// verdicts, identical message mutations (tenant, chain bytes), and
// identical register evolution after every single message.
func TestFlowCacheDifferential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		plain := cacheProgram()
		cachedProg := cacheProgram()
		cache := newFlowCache()
		for i := 0; i < 3000; i++ {
			spec := randSpec(rng)
			now := uint64(1000 + i)
			m1 := spec.build()
			m2 := spec.build()
			r1, err1 := plain.Process(m1, now)
			r2, _, err2 := cache.process(cachedProg, m2, now)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed=%d msg=%d: err %v vs %v", seed, i, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if r1.Drop != r2.Drop || r1.Queue != r2.Queue {
				t.Fatalf("seed=%d msg=%d: verdict (%v,%d) vs (%v,%d) spec=%+v",
					seed, i, r1.Drop, r1.Queue, r2.Drop, r2.Queue, spec)
			}
			if m1.Tenant != m2.Tenant {
				t.Fatalf("seed=%d msg=%d: tenant %d vs %d", seed, i, m1.Tenant, m2.Tenant)
			}
			if !bytes.Equal(m1.Pkt.Buf, m2.Pkt.Buf) {
				t.Fatalf("seed=%d msg=%d: serialized bytes diverge (spec=%+v)", seed, i, spec)
			}
			for slot := uint64(0); slot < 64; slot++ {
				if a, b := plain.Regs.Read("tenant_pkts", slot), cachedProg.Regs.Read("tenant_pkts", slot); a != b {
					t.Fatalf("seed=%d msg=%d: reg[%d] %d vs %d", seed, i, slot, a, b)
				}
			}
		}
		st := cache.stats
		if st.Hits == 0 {
			t.Fatalf("seed=%d: no cache hits over 3000 messages (misses=%d neg=%d)",
				seed, st.Misses, st.NegHits)
		}
	}
}

// TestFlowCacheInvalidation: a table mutation after a verdict is cached
// must flush it — the next packet of the flow sees the new tables.
func TestFlowCacheInvalidation(t *testing.T) {
	prog := cacheProgram()
	cache := newFlowCache()
	spec := msgSpec{tenant: 10, srcPort: 7000, dstIP: packet.IP4{10, 0, 0, 1}}

	m := spec.build()
	if _, _, err := cache.process(prog, m, 1); err != nil {
		t.Fatal(err)
	}
	if hops := m.Chain().Hops; hops[0].Engine != 4 {
		t.Fatalf("first hop = %+v, want engine 4", hops[0])
	}
	m = spec.build()
	if _, hit, _ := cache.process(prog, m, 2); !hit {
		t.Fatal("second packet of the flow should hit")
	}

	// Failover rewrite: engine 4 dies, replica lives at 5.
	if n := prog.RewriteEngine(4, 5); n == 0 {
		t.Fatal("rewrite touched nothing")
	}
	m = spec.build()
	if _, hit, _ := cache.process(prog, m, 3); hit {
		t.Fatal("hit after table rewrite: stale verdict served")
	}
	if hops := m.Chain().Hops; hops[0].Engine != 5 {
		t.Fatalf("post-rewrite first hop = %+v, want engine 5", hops[0])
	}

	// Adding a drop rule (tenant punt / ACL) must also invalidate.
	prog.Stages[0][0].Add(Entry{Values: []uint64{10}, Masks: []uint64{^uint64(0)},
		Priority: 20, Action: NewAction("deny", OpDrop{})})
	m = spec.build()
	res, hit, err := cache.process(prog, m, 4)
	if err != nil || hit || !res.Drop {
		t.Fatalf("post-ACL res=%+v hit=%v err=%v, want fresh drop", res, hit, err)
	}
}

// TestFlowCacheUncacheable: OpFunc and register-dependent outputs must
// record negative entries, never wrong verdicts.
func TestFlowCacheUncacheable(t *testing.T) {
	t.Run("opfunc", func(t *testing.T) {
		calls := 0
		tbl := NewTable("t", MatchExact, []FieldID{FieldMetaClass}, 0,
			NewAction("custom", OpFunc(func(ctx *Ctx) { calls++ })))
		prog := NewProgram(StandardParser(), []*Table{tbl})
		cache := newFlowCache()
		spec := msgSpec{tenant: 1, srcPort: 7000, dstIP: packet.IP4{10, 0, 0, 1}}
		for i := 0; i < 3; i++ {
			if _, hit, err := cache.process(prog, spec.build(), uint64(i)); hit || err != nil {
				t.Fatalf("msg %d: hit=%v err=%v, OpFunc flows must not be replayed", i, hit, err)
			}
		}
		if calls != 3 {
			t.Fatalf("OpFunc ran %d times, want 3 (once per packet)", calls)
		}
		if st := cache.stats; st.NegHits != 2 || st.Misses != 1 {
			t.Fatalf("stats = %+v, want 1 miss + 2 negative hits", st)
		}
	})
	t.Run("register-dependent-queue", func(t *testing.T) {
		// Round-robin spraying: the queue is the post-increment counter
		// value — different for every packet, so caching the verdict would
		// pin every packet of the flow to one queue.
		tbl := NewTable("rr", MatchExact, []FieldID{FieldMetaClass}, 0,
			NewAction("spray",
				OpRegAdd{Reg: "rr", IndexFrom: FieldMetaClass, Delta: 1, Dst: FieldMetaQueue},
				OpMod{FieldMetaQueue, 4},
			))
		prog := NewProgram(StandardParser(), []*Table{tbl})
		prog.Regs.Define("rr", 4)
		cache := newFlowCache()
		spec := msgSpec{tenant: 1, srcPort: 7000, dstIP: packet.IP4{10, 0, 0, 1}}
		seen := map[uint64]bool{}
		for i := 0; i < 4; i++ {
			res, hit, err := cache.process(prog, spec.build(), uint64(i))
			if hit || err != nil {
				t.Fatalf("msg %d: hit=%v err=%v", i, hit, err)
			}
			seen[res.Queue] = true
		}
		if len(seen) != 4 {
			t.Fatalf("round-robin produced %d distinct queues, want 4", len(seen))
		}
	})
}

// TestFlowCacheParseError: parse failures are cached verdicts too.
func TestFlowCacheParseError(t *testing.T) {
	prog := cacheProgram()
	cache := newFlowCache()
	spec := msgSpec{tenant: 1, srcPort: 7000, dstIP: packet.IP4{10, 0, 0, 1}, truncate: 20}
	if _, hit, err := cache.process(prog, spec.build(), 1); hit || err == nil {
		t.Fatalf("first truncated packet: hit=%v err=%v", hit, err)
	}
	if _, hit, err := cache.process(prog, spec.build(), 2); !hit || err == nil {
		t.Fatalf("second truncated packet: hit=%v err=%v, want cached error", hit, err)
	}
}

// TestFlowCachePrefixGrowth: when a flow's parse walk examines more bytes
// than any before it, the key prefix grows and the cache flushes rather
// than serving entries whose keys no longer capture the walk.
func TestFlowCachePrefixGrowth(t *testing.T) {
	prog := cacheProgram()
	cache := newFlowCache()
	short := msgSpec{tenant: 1, srcPort: 7001, dstIP: packet.IP4{10, 0, 0, 1}}
	long := msgSpec{tenant: 1, srcPort: 7001, dstIP: packet.IP4{10, 0, 0, 1}, chain: true}

	if _, _, err := cache.process(prog, short.build(), 1); err != nil {
		t.Fatal(err)
	}
	plShort := cache.maxParseLen
	if plShort == 0 {
		t.Fatal("prefix did not grow on first insert")
	}
	flushes := cache.stats.Flushes
	if _, _, err := cache.process(prog, long.build(), 2); err != nil {
		t.Fatal(err)
	}
	if cache.maxParseLen <= plShort {
		t.Fatalf("prefix %d did not grow past %d for the longer walk", cache.maxParseLen, plShort)
	}
	if cache.stats.Flushes == flushes {
		t.Fatal("no flush on prefix growth")
	}
	// Both flows must now be (re)cacheable and correct.
	m := short.build()
	if _, hit, _ := cache.process(prog, m, 3); hit {
		t.Fatal("short flow survived the flush")
	}
	m = short.build()
	if _, hit, _ := cache.process(prog, m, 4); !hit {
		t.Fatal("short flow did not re-cache under the grown prefix")
	}
}
