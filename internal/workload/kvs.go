package workload

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// KVSTenantConfig parameterizes one tenant of the paper's geodistributed
// multi-tenant key-value store (§2.2).
type KVSTenantConfig struct {
	// Tenant is the tenant ID carried in the KVS header.
	Tenant uint16
	// Class tags the tenant's traffic for the scheduler.
	Class packet.Class
	// RateGbps and FreqHz set the offered load; Poisson arrivals when
	// Poisson is true, else CBR.
	RateGbps, FreqHz float64
	Poisson          bool
	// Keys is the tenant's key-space size; ZipfS the skew (>1; larger =
	// more skewed toward hot keys).
	Keys  uint64
	ZipfS float64
	// GetRatio is the fraction of requests that are GETs (rest are
	// SETs).
	GetRatio float64
	// WANShare is the fraction of requests arriving encrypted over the
	// WAN (IPSec ESP) — only those need the IPSec engine.
	WANShare float64
	// ValueBytes is the value size for SETs and cached GET responses.
	ValueBytes uint32
	// ClientNet selects the client subnet (requests come from
	// 10.ClientNet.x.y), which the RMT TX program maps back to an
	// Ethernet port. Use the port index the stream feeds.
	ClientNet byte
	// Count bounds the stream (0 = unlimited).
	Count uint64
	Seed  uint64
}

// KVSStream generates one tenant's request traffic.
type KVSStream struct {
	base
	cfg  KVSTenantConfig
	zipf *zipf
}

// NewKVSStream builds the stream. Requests are minimum-size frames (GETs)
// or value-sized frames (SETs); the request rate is derived from the mean
// frame size so the offered load matches RateGbps.
func NewKVSStream(cfg KVSTenantConfig) *KVSStream {
	if cfg.Keys == 0 {
		panic("workload: KVS tenant with empty key space")
	}
	if cfg.GetRatio < 0 || cfg.GetRatio > 1 || cfg.WANShare < 0 || cfg.WANShare > 1 {
		panic(fmt.Sprintf("workload: ratios out of range: get=%v wan=%v", cfg.GetRatio, cfg.WANShare))
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.07 // canonical YCSB-like skew
	}
	reqBytes := 64.0
	setBytes := 64.0 + float64(cfg.ValueBytes)
	meanFrame := cfg.GetRatio*reqBytes + (1-cfg.GetRatio)*setBytes
	interval := IntervalFor(int(meanFrame), cfg.RateGbps, cfg.FreqHz)
	var arr Arrival = CBR{Interval: interval}
	if cfg.Poisson {
		arr = Poisson{Mean: interval}
	}
	rng := sim.NewRNG(cfg.Seed)
	s := &KVSStream{
		base: newBase(cfg.Seed+1, arr, cfg.Count),
		cfg:  cfg,
		zipf: newZipf(rng, cfg.ZipfS, cfg.Keys),
	}
	return s
}

// Poll implements engine.Source.
func (s *KVSStream) Poll(now uint64) *packet.Message {
	if !s.due(now) {
		return nil
	}
	key := s.zipf.next()
	isGet := s.rng.Float64() < s.cfg.GetRatio
	op := packet.KVSGet
	var payload int
	var vlen uint32
	if !isGet {
		op = packet.KVSSet
		vlen = s.cfg.ValueBytes
		payload = int(vlen)
	}
	inner := packet.NewPacket(payload,
		&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 2}, Src: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
			Src: packet.IP4{10, s.cfg.ClientNet, byte(s.cfg.Tenant >> 8), byte(s.cfg.Tenant)}, Dst: packet.IP4{10, 255, 0, 2}},
		&packet.UDP{SrcPort: 5000 + s.cfg.Tenant, DstPort: packet.KVSPort},
		&packet.KVS{Op: op, Tenant: s.cfg.Tenant, Key: key, ValueLen: vlen},
	)
	m := &packet.Message{
		ID:     s.nextID,
		Tenant: s.cfg.Tenant,
		Class:  s.cfg.Class,
		Pkt:    inner,
	}
	if s.rng.Float64() < s.cfg.WANShare {
		wrapESP(m)
	}
	return m
}

// wrapESP encapsulates a message for the WAN: the plaintext packet is
// stashed in Inner (the IPSec engine swaps it back after decryption; see
// DESIGN.md for the substitution rationale). WAN clients live in
// 203.0.0.0/8 — both the tunnel endpoints and the inner source use it, so
// the TX program can recognize that replies must be re-encrypted.
func wrapESP(m *packet.Message) {
	inner := m.Pkt
	var src, dst packet.IP4
	if ip, ok := inner.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok {
		ip.Src[0] = 203 // remote client: replies need the WAN path
		src, dst = ip.Src, ip.Dst
		inner.Serialize()
	}
	m.Inner = inner
	ciphertext := inner.WireLen() - 14 + 12
	m.Pkt = packet.NewPacket(ciphertext,
		&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 2}, Src: packet.MAC{2, 0, 0, 0, 0, 3}, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{TTL: 60, Protocol: packet.ProtoESP, Src: src, Dst: dst},
		&packet.ESP{SPI: uint32(m.Tenant) + 1, Seq: uint32(m.ID)},
	)
}

// zipf draws keys with a Zipf(q) distribution over [0, imax] by rejection
// inversion (the algorithm behind math/rand's Zipf, reimplemented over the
// repository's deterministic RNG with v = 1): key k is drawn with
// probability proportional to 1/(1+k)^q.
type zipf struct {
	rng          *sim.RNG
	imax         float64
	q            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64
	hx0minusHxm  float64
	threshold    float64
}

func newZipf(rng *sim.RNG, q float64, n uint64) *zipf {
	if q <= 1 || n == 0 {
		panic("workload: zipf requires s > 1 and a non-empty key space")
	}
	z := &zipf{rng: rng, imax: float64(n - 1), q: q}
	z.oneminusQ = 1 - q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - 1 - z.hxm // h(0.5) - exp(-q·log v), v=1
	z.threshold = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(2)))
	return z
}

func (z *zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(1+x)) * z.oneminusQinv
}

func (z *zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - 1
}

func (z *zipf) next() uint64 {
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.threshold {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+1)*z.q) {
			return uint64(k)
		}
	}
}
