// Package workload generates the synthetic traffic the experiments run:
// minimum-size line-rate streams (Table 2), the paper's multi-tenant
// geodistributed key-value-store mix (§2.2: Zipf-skewed keys, GET/SET mix,
// a WAN share that needs IPSec), and latency-sensitive vs bulk tenant
// blends for the scheduler-isolation experiments (§3.1.3).
//
// All generators implement engine.Source: the Ethernet MAC polls them each
// cycle and paces arrivals onto the NIC at line rate. Generators are
// deterministic from their seed.
package workload

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// Arrival is an inter-arrival time process, in cycles.
type Arrival interface {
	Next(rng *sim.RNG) float64
}

// CBR is a constant bit rate process.
type CBR struct{ Interval float64 }

// Next implements Arrival.
func (c CBR) Next(*sim.RNG) float64 { return c.Interval }

// Poisson is a memoryless process with the given mean inter-arrival.
type Poisson struct{ Mean float64 }

// Next implements Arrival.
func (p Poisson) Next(rng *sim.RNG) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) * p.Mean
}

// IntervalFor returns the inter-arrival time in cycles for frames of the
// given size (plus preamble/IFG overhead) at rateGbps on a clock of
// freqHz.
func IntervalFor(frameBytes int, rateGbps, freqHz float64) float64 {
	wireBits := float64((frameBytes + packet.WireOverheadBytes) * 8)
	bitsPerCycle := rateGbps * 1e9 / freqHz
	return wireBits / bitsPerCycle
}

// base holds common generator state: an arrival clock and a count limit.
type base struct {
	rng     *sim.RNG
	arrival Arrival
	nextAt  float64
	count   uint64
	limit   uint64 // 0 = unlimited
	nextID  uint64
}

func newBase(seed uint64, arrival Arrival, limit uint64) base {
	return base{rng: sim.NewRNG(seed), arrival: arrival, limit: limit}
}

// due reports whether an arrival is pending at now, and consumes it.
func (b *base) due(now uint64) bool {
	if b.limit > 0 && b.count >= b.limit {
		return false
	}
	if float64(now) < b.nextAt {
		return false
	}
	b.nextAt += b.arrival.Next(b.rng)
	if b.nextAt < float64(now) {
		// Long idle gap (or saturating load): don't accumulate an
		// unbounded backlog beyond one frame.
		b.nextAt = float64(now)
	}
	b.count++
	b.nextID++
	return true
}

// Generated returns how many messages the source has produced.
func (b *base) Generated() uint64 { return b.count }

// FixedStream emits fixed-size UDP packets — the minimum-size line-rate
// workload of Table 2.
type FixedStream struct {
	base
	frameBytes int
	tenant     uint16
	class      packet.Class
	dstIP      packet.IP4
}

// FixedStreamConfig parameterizes a FixedStream.
type FixedStreamConfig struct {
	// FrameBytes is the Ethernet frame size (64 = minimum).
	FrameBytes int
	// RateGbps and FreqHz set the arrival rate; Load scales it (1.0 =
	// line rate).
	RateGbps, FreqHz, Load float64
	// Poisson switches from CBR to Poisson arrivals.
	Poisson bool
	// Tenant and Class tag the messages.
	Tenant uint16
	Class  packet.Class
	// Count bounds the stream (0 = unlimited).
	Count uint64
	Seed  uint64
}

// NewFixedStream builds the stream.
func NewFixedStream(cfg FixedStreamConfig) *FixedStream {
	if cfg.FrameBytes < 64 {
		panic(fmt.Sprintf("workload: frame %dB below Ethernet minimum", cfg.FrameBytes))
	}
	if cfg.Load <= 0 {
		cfg.Load = 1
	}
	interval := IntervalFor(cfg.FrameBytes, cfg.RateGbps*cfg.Load, cfg.FreqHz)
	var arr Arrival = CBR{Interval: interval}
	if cfg.Poisson {
		arr = Poisson{Mean: interval}
	}
	return &FixedStream{
		base:       newBase(cfg.Seed, arr, cfg.Count),
		frameBytes: cfg.FrameBytes,
		tenant:     cfg.Tenant,
		class:      cfg.Class,
		dstIP:      packet.IP4{10, 0, 0, 2},
	}
}

// Poll implements engine.Source.
func (s *FixedStream) Poll(now uint64) *packet.Message {
	if !s.due(now) {
		return nil
	}
	hdrs := 14 + 20 + 8
	payload := s.frameBytes - hdrs
	if payload < 0 {
		payload = 0
	}
	m := &packet.Message{
		ID:     s.nextID,
		Tenant: s.tenant,
		Class:  s.class,
		Pkt: packet.NewPacket(payload,
			&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 2}, Src: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: s.dstIP},
			&packet.UDP{SrcPort: uint16(4000 + s.tenant), DstPort: 9},
		),
	}
	return m
}
