// Package workload generates the synthetic traffic the experiments run:
// minimum-size line-rate streams (Table 2), the paper's multi-tenant
// geodistributed key-value-store mix (§2.2: Zipf-skewed keys, GET/SET mix,
// a WAN share that needs IPSec), and latency-sensitive vs bulk tenant
// blends for the scheduler-isolation experiments (§3.1.3).
//
// All generators implement engine.Source: the Ethernet MAC polls them each
// cycle and paces arrivals onto the NIC at line rate. Generators are
// deterministic from their seed.
package workload

import (
	"fmt"
	"math"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// Arrival is an inter-arrival time process, in cycles.
type Arrival interface {
	Next(rng *sim.RNG) float64
}

// CBR is a constant bit rate process.
type CBR struct{ Interval float64 }

// Next implements Arrival.
func (c CBR) Next(*sim.RNG) float64 { return c.Interval }

// Poisson is a memoryless process with the given mean inter-arrival.
type Poisson struct{ Mean float64 }

// Next implements Arrival.
func (p Poisson) Next(rng *sim.RNG) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) * p.Mean
}

// IntervalFor returns the inter-arrival time in cycles for frames of the
// given size (plus preamble/IFG overhead) at rateGbps on a clock of
// freqHz.
func IntervalFor(frameBytes int, rateGbps, freqHz float64) float64 {
	wireBits := float64((frameBytes + packet.WireOverheadBytes) * 8)
	bitsPerCycle := rateGbps * 1e9 / freqHz
	return wireBits / bitsPerCycle
}

// base holds common generator state: an arrival clock and a count limit.
type base struct {
	rng     *sim.RNG
	arrival Arrival
	nextAt  float64
	count   uint64
	limit   uint64 // 0 = unlimited
	nextID  uint64
}

func newBase(seed uint64, arrival Arrival, limit uint64) base {
	return base{rng: sim.NewRNG(seed), arrival: arrival, limit: limit}
}

// due reports whether an arrival is pending at now, and consumes it.
func (b *base) due(now uint64) bool {
	if b.limit > 0 && b.count >= b.limit {
		return false
	}
	if float64(now) < b.nextAt {
		return false
	}
	b.nextAt += b.arrival.Next(b.rng)
	if b.nextAt < float64(now) {
		// Long idle gap (or saturating load): don't accumulate an
		// unbounded backlog beyond one frame.
		b.nextAt = float64(now)
	}
	b.count++
	b.nextID++
	return true
}

// Generated returns how many messages the source has produced.
func (b *base) Generated() uint64 { return b.count }

// NextArrival implements engine.ArrivalSource for every generator built on
// base: the first cycle at which due will fire is the first integer cycle
// at or past the arrival clock — exactly ceil(nextAt) — so polling cycles
// a fast-forwarding kernel skips are provably fruitless. ok is false once
// a bounded stream is exhausted.
func (b *base) NextArrival(now uint64) (uint64, bool) {
	if b.limit > 0 && b.count >= b.limit {
		return 0, false
	}
	at := uint64(math.Ceil(b.nextAt))
	if at < now {
		at = now
	}
	return at, true
}

// FixedStream emits fixed-size UDP packets — the minimum-size line-rate
// workload of Table 2.
type FixedStream struct {
	base
	frameBytes int
	tenant     uint16
	class      packet.Class
	dstIP      packet.IP4
	pool       *packet.MessagePool
}

// FixedStreamConfig parameterizes a FixedStream.
type FixedStreamConfig struct {
	// FrameBytes is the Ethernet frame size (64 = minimum).
	FrameBytes int
	// RateGbps and FreqHz set the arrival rate; Load scales it (1.0 =
	// line rate).
	RateGbps, FreqHz, Load float64
	// Poisson switches from CBR to Poisson arrivals.
	Poisson bool
	// Tenant and Class tag the messages.
	Tenant uint16
	Class  packet.Class
	// Count bounds the stream (0 = unlimited).
	Count uint64
	Seed  uint64
	// Pool, when set, recycles message shells: Poll reuses shells the
	// consumer has Put back instead of allocating. The recycled and fresh
	// paths produce byte-identical messages.
	Pool *packet.MessagePool
}

// NewFixedStream builds the stream.
func NewFixedStream(cfg FixedStreamConfig) *FixedStream {
	if cfg.FrameBytes < 64 {
		panic(fmt.Sprintf("workload: frame %dB below Ethernet minimum", cfg.FrameBytes))
	}
	if cfg.Load <= 0 {
		cfg.Load = 1
	}
	interval := IntervalFor(cfg.FrameBytes, cfg.RateGbps*cfg.Load, cfg.FreqHz)
	var arr Arrival = CBR{Interval: interval}
	if cfg.Poisson {
		arr = Poisson{Mean: interval}
	}
	return &FixedStream{
		base:       newBase(cfg.Seed, arr, cfg.Count),
		frameBytes: cfg.FrameBytes,
		tenant:     cfg.Tenant,
		class:      cfg.Class,
		dstIP:      packet.IP4{10, 0, 0, 2},
		pool:       cfg.Pool,
	}
}

// Poll implements engine.Source.
func (s *FixedStream) Poll(now uint64) *packet.Message {
	if !s.due(now) {
		return nil
	}
	hdrs := 14 + 20 + 8
	payload := s.frameBytes - hdrs
	if payload < 0 {
		payload = 0
	}
	eth := packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 2}, Src: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4}
	ip := packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: s.dstIP}
	udp := packet.UDP{SrcPort: uint16(4000 + s.tenant), DstPort: 9}
	if s.pool != nil {
		if m := s.pool.Get(); m != nil {
			// Salvage the shell's eth/ip/udp layer structs and serialization
			// buffer even when the pipeline left shims (e.g. a chain header)
			// in the stack; a shell missing any of the three falls through
			// to fresh allocation. The rebuilt message is byte-identical to
			// the fresh path, so pooling never affects simulation results.
			if m.Pkt != nil {
				var re *packet.Ethernet
				var ri *packet.IPv4
				var ru *packet.UDP
				for _, l := range m.Pkt.Layers {
					switch v := l.(type) {
					case *packet.Ethernet:
						if re == nil {
							re = v
						}
					case *packet.IPv4:
						if ri == nil {
							ri = v
						}
					case *packet.UDP:
						if ru == nil {
							ru = v
						}
					}
				}
				if re != nil && ri != nil && ru != nil {
					*re, *ri, *ru = eth, ip, udp
					m.Pkt.Layers = append(m.Pkt.Layers[:0], re, ri, ru)
					m.Pkt.PayloadLen = payload
					m.Pkt.Serialize()
					m.ID = s.nextID
					m.Tenant = s.tenant
					m.Class = s.class
					return m
				}
			}
		}
	}
	return &packet.Message{
		ID:     s.nextID,
		Tenant: s.tenant,
		Class:  s.class,
		Pkt:    packet.NewPacket(payload, &eth, &ip, &udp),
	}
}
