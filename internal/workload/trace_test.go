package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

func sampleRecords() []TraceRecord {
	return []TraceRecord{
		{Cycle: 10, Tenant: 1, Class: packet.ClassLatency, Op: packet.KVSGet, Key: 7},
		{Cycle: 10, Tenant: 2, Class: packet.ClassBulk, Op: packet.KVSSet, Key: 9, ValueLen: 512},
		{Cycle: 25, Tenant: 1, Class: packet.ClassLatency, Op: packet.KVSGet, Key: 8, WAN: true, ClientNet: 3},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTraceReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"fields":       "1 2 3\n",
		"non-numeric":  "1 2 3 x 5 6 7 8\n",
		"bad op":       "1 2 0 9 5 6 0 0\n",
		"out of order": "100 1 1 1 0 0 0 0\n50 1 1 1 0 0 0 0\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTraceReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n10 1 1 1 7 0 0 0\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestTraceSourceReplay(t *testing.T) {
	src := NewTraceSource(sampleRecords())
	if src.Remaining() != 3 {
		t.Fatal("remaining wrong")
	}
	if m := src.Poll(9); m != nil {
		t.Error("record replayed early")
	}
	m1 := src.Poll(10)
	m2 := src.Poll(10)
	if m1 == nil || m2 == nil {
		t.Fatal("same-cycle records not both replayed")
	}
	k := m1.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
	if k.Op != packet.KVSGet || k.Key != 7 || m1.Tenant != 1 {
		t.Errorf("m1 = %+v", k)
	}
	if m2.Pkt.PayloadLen != 512 {
		t.Errorf("SET payload = %d", m2.Pkt.PayloadLen)
	}
	if m := src.Poll(24); m != nil {
		t.Error("future record replayed")
	}
	m3 := src.Poll(30)
	if m3 == nil || !m3.Pkt.Has(packet.LayerTypeESP) || m3.Inner == nil {
		t.Fatalf("WAN record not wrapped: %v", m3)
	}
	if ip := m3.Inner.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ip.Src[1] != 3 {
		t.Errorf("client net = %d", ip.Src[1])
	}
	if src.Remaining() != 0 || src.Poll(100) != nil {
		t.Error("source not exhausted")
	}
}

// TestRecordReplayEquivalence: recording a live generator and replaying the
// trace produces the same packet sequence.
func TestRecordReplayEquivalence(t *testing.T) {
	mk := func() *KVSStream {
		return NewKVSStream(KVSTenantConfig{
			Tenant: 4, Class: packet.ClassLatency,
			RateGbps: 10, FreqHz: 500e6, Poisson: true,
			Keys: 128, GetRatio: 0.8, WANShare: 0.25, ValueBytes: 256,
			ClientNet: 2, Count: 60, Seed: 17,
		})
	}
	records := Record(mk(), 200_000)
	if len(records) != 60 {
		t.Fatalf("recorded %d, want 60", len(records))
	}

	// Round-trip through the text format.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	live := mk()
	replay := NewTraceSource(parsed)
	for now := uint64(0); now < 200_000; now++ {
		for {
			a := live.Poll(now)
			b := replay.Poll(now)
			if (a == nil) != (b == nil) {
				t.Fatalf("cycle %d: live=%v replay=%v", now, a, b)
			}
			if a == nil {
				break
			}
			pa, pb := a.Pkt, b.Pkt
			if a.Inner != nil {
				pa = a.Inner
			}
			if b.Inner != nil {
				pb = b.Inner
			}
			ka := pa.Layer(packet.LayerTypeKVS).(*packet.KVS)
			kb := pb.Layer(packet.LayerTypeKVS).(*packet.KVS)
			if *ka != *kb || a.Tenant != b.Tenant || (a.Inner == nil) != (b.Inner == nil) {
				t.Fatalf("cycle %d: %+v vs %+v", now, ka, kb)
			}
		}
	}
}
