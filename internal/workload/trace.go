package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/panic-nic/panic/internal/packet"
)

// TraceRecord is one request of a recorded workload trace.
type TraceRecord struct {
	// Cycle is the arrival time.
	Cycle uint64
	// Tenant, Class, Op, Key, ValueLen, and WAN describe the request as
	// KVSTenantConfig would generate it.
	Tenant   uint16
	Class    packet.Class
	Op       packet.KVSOp
	Key      uint64
	ValueLen uint32
	WAN      bool
	// ClientNet selects the client subnet, as in KVSTenantConfig.
	ClientNet byte
}

// traceFields is the column count of the text format.
const traceFields = 8

// WriteTrace writes records in the repository's plain-text trace format:
// one record per line,
//
//	cycle tenant class op key valueLen wan clientNet
//
// with a leading '#' for comment lines.
func WriteTrace(w io.Writer, records []TraceRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# cycle tenant class op key valueLen wan clientNet"); err != nil {
		return err
	}
	for _, r := range records {
		wan := 0
		if r.WAN {
			wan = 1
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %d %d %d\n",
			r.Cycle, r.Tenant, r.Class, r.Op, r.Key, r.ValueLen, wan, r.ClientNet); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the text trace format. Records must be sorted by cycle;
// out-of-order records are an error (replay is strictly chronological).
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	var records []TraceRecord
	sc := bufio.NewScanner(r)
	line := 0
	lastCycle := uint64(0)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Fields(text)
		if len(parts) != traceFields {
			return nil, fmt.Errorf("workload: trace line %d has %d fields, want %d", line, len(parts), traceFields)
		}
		vals := make([]uint64, traceFields)
		for i, p := range parts {
			v, err := strconv.ParseUint(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		rec := TraceRecord{
			Cycle:     vals[0],
			Tenant:    uint16(vals[1]),
			Class:     packet.Class(vals[2]),
			Op:        packet.KVSOp(vals[3]),
			Key:       vals[4],
			ValueLen:  uint32(vals[5]),
			WAN:       vals[6] != 0,
			ClientNet: byte(vals[7]),
		}
		if rec.Op < packet.KVSGet || rec.Op > packet.KVSSetResp {
			return nil, fmt.Errorf("workload: trace line %d: bad op %d", line, rec.Op)
		}
		if rec.Cycle < lastCycle {
			return nil, fmt.Errorf("workload: trace line %d: cycle %d before %d", line, rec.Cycle, lastCycle)
		}
		lastCycle = rec.Cycle
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return records, nil
}

// TraceSource replays a recorded trace as an engine.Source, rebuilding the
// same packets the live generator would produce.
type TraceSource struct {
	records []TraceRecord
	next    int
	id      uint64
}

// NewTraceSource builds a replay source.
func NewTraceSource(records []TraceRecord) *TraceSource {
	return &TraceSource{records: records}
}

// Remaining returns the number of unreplayed records.
func (s *TraceSource) Remaining() int { return len(s.records) - s.next }

// NextArrival implements engine.ArrivalSource: the next record's cycle
// (records are validated monotone at load time), or exhaustion.
func (s *TraceSource) NextArrival(now uint64) (uint64, bool) {
	if s.next >= len(s.records) {
		return 0, false
	}
	at := s.records[s.next].Cycle
	if at < now {
		at = now
	}
	return at, true
}

// Poll implements engine.Source.
func (s *TraceSource) Poll(now uint64) *packet.Message {
	if s.next >= len(s.records) || s.records[s.next].Cycle > now {
		return nil
	}
	r := s.records[s.next]
	s.next++
	s.id++
	payload := 0
	if r.Op == packet.KVSSet || r.Op == packet.KVSGetResp {
		payload = int(r.ValueLen)
	}
	m := &packet.Message{
		ID:     s.id,
		Tenant: r.Tenant,
		Class:  r.Class,
		Pkt: packet.NewPacket(payload,
			&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 2}, Src: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
				Src: packet.IP4{10, r.ClientNet, byte(r.Tenant >> 8), byte(r.Tenant)}, Dst: packet.IP4{10, 255, 0, 2}},
			&packet.UDP{SrcPort: 5000 + r.Tenant, DstPort: packet.KVSPort},
			&packet.KVS{Op: r.Op, Tenant: r.Tenant, Key: r.Key, ValueLen: r.ValueLen},
		),
	}
	if r.WAN {
		wrapESP(m)
	}
	return m
}

// Record captures a live source's output into trace records by draining it
// for the given number of cycles (a MAC-like poll loop).
func Record(src Source, cycles uint64) []TraceRecord {
	var records []TraceRecord
	for now := uint64(0); now < cycles; now++ {
		for {
			m := src.Poll(now)
			if m == nil {
				break
			}
			rec := TraceRecord{Cycle: now, Tenant: m.Tenant, Class: m.Class}
			pkt := m.Pkt
			if m.Inner != nil {
				rec.WAN = true
				pkt = m.Inner
			}
			if l := pkt.Layer(packet.LayerTypeKVS); l != nil {
				k := l.(*packet.KVS)
				rec.Op = k.Op
				rec.Key = k.Key
				rec.ValueLen = k.ValueLen
			} else {
				rec.Op = packet.KVSGet
			}
			if ip, ok := pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok {
				rec.ClientNet = ip.Src[1]
			}
			records = append(records, rec)
		}
	}
	return records
}
