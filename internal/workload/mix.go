package workload

import "github.com/panic-nic/panic/internal/packet"

// Source mirrors engine.Source locally to avoid an import cycle in tests;
// any generator in this package satisfies both.
type Source interface {
	Poll(now uint64) *packet.Message
}

// Merge interleaves several sources into one stream. Each Poll rotates the
// starting source so no tenant is structurally favored when multiple
// sources are due in the same cycle.
type Merge struct {
	srcs []Source
	next int
}

// NewMerge builds a merged source.
func NewMerge(srcs ...Source) *Merge {
	if len(srcs) == 0 {
		panic("workload: Merge of zero sources")
	}
	return &Merge{srcs: srcs}
}

// Poll implements engine.Source.
func (m *Merge) Poll(now uint64) *packet.Message {
	for i := 0; i < len(m.srcs); i++ {
		s := m.srcs[(m.next+i)%len(m.srcs)]
		if msg := s.Poll(now); msg != nil {
			m.next = (m.next + i + 1) % len(m.srcs)
			return msg
		}
	}
	return nil
}

// arrivalReporter mirrors engine.ArrivalSource locally (same import-cycle
// dodge as Source above).
type arrivalReporter interface {
	NextArrival(now uint64) (uint64, bool)
}

// NextArrival implements engine.ArrivalSource as the minimum over the
// children. A child that cannot report pins the merge to "due now", which
// conservatively disables fast-forward rather than risking a missed poll.
func (m *Merge) NextArrival(now uint64) (uint64, bool) {
	var best uint64
	have := false
	for _, s := range m.srcs {
		ar, ok := s.(arrivalReporter)
		if !ok {
			return now, true
		}
		a, more := ar.NextArrival(now)
		if !more {
			continue
		}
		if !have || a < best {
			best, have = a, true
		}
	}
	return best, have
}

// TenantSpec describes one tenant's stream in an N-tenant mix. The zero
// value of the KVS knobs gets sensible defaults (1024 keys, 128 B values);
// GetRatio is taken literally (0 = all SETs).
type TenantSpec struct {
	// Tenant and Class tag the stream.
	Tenant uint16
	Class  packet.Class
	// RateGbps is the tenant's offered load (Poisson arrivals).
	RateGbps float64
	// GetRatio, WANShare, ValueBytes, and Keys parameterize the KVS
	// request stream (ignored when Bulk is set).
	GetRatio   float64
	WANShare   float64
	ValueBytes uint32
	Keys       uint64
	// Bulk switches the tenant to a fixed-size UDP stream of FrameBytes
	// frames (64 when zero) instead of KVS requests.
	Bulk       bool
	FrameBytes int
}

// counted is a source that reports how many messages it has produced.
type counted interface {
	Source
	Generated() uint64
}

// TenantMix interleaves N tenants' streams with per-tenant generation
// counts, for the multi-tenant isolation experiments. Streams are seeded
// seed, seed+1, ... in spec order, so the mix is deterministic.
type TenantMix struct {
	merged *Merge
	gens   map[uint16]counted
}

// NewTenantMix builds the mix.
func NewTenantMix(freqHz float64, specs []TenantSpec, seed uint64) *TenantMix {
	if len(specs) == 0 {
		panic("workload: tenant mix of zero specs")
	}
	m := &TenantMix{gens: make(map[uint16]counted, len(specs))}
	srcs := make([]Source, 0, len(specs))
	for i, sp := range specs {
		var src counted
		if sp.Bulk {
			frame := sp.FrameBytes
			if frame == 0 {
				frame = 64
			}
			src = NewFixedStream(FixedStreamConfig{
				FrameBytes: frame,
				RateGbps:   sp.RateGbps, FreqHz: freqHz, Poisson: true,
				Tenant: sp.Tenant, Class: sp.Class,
				Seed: seed + uint64(i),
			})
		} else {
			keys := sp.Keys
			if keys == 0 {
				keys = 1024
			}
			vb := sp.ValueBytes
			if vb == 0 {
				vb = 128
			}
			src = NewKVSStream(KVSTenantConfig{
				Tenant: sp.Tenant, Class: sp.Class,
				RateGbps: sp.RateGbps, FreqHz: freqHz, Poisson: true,
				Keys: keys, GetRatio: sp.GetRatio, WANShare: sp.WANShare,
				ValueBytes: vb,
				Seed:       seed + uint64(i),
			})
		}
		if _, dup := m.gens[sp.Tenant]; dup {
			panic("workload: tenant mix with duplicate tenant ID")
		}
		m.gens[sp.Tenant] = src
		srcs = append(srcs, src)
	}
	m.merged = NewMerge(srcs...)
	return m
}

// Poll implements engine.Source.
func (m *TenantMix) Poll(now uint64) *packet.Message { return m.merged.Poll(now) }

// NextArrival implements engine.ArrivalSource.
func (m *TenantMix) NextArrival(now uint64) (uint64, bool) { return m.merged.NextArrival(now) }

// Generated returns how many messages the given tenant's stream produced
// (0 for tenants not in the mix).
func (m *TenantMix) Generated(tenant uint16) uint64 {
	if g, ok := m.gens[tenant]; ok {
		return g.Generated()
	}
	return 0
}

// NewAggressorVictimMix builds the two-tenant isolation workload: tenant 1
// is the victim (latency-class KVS GETs at a modest rate) and tenant 2 the
// aggressor (a bulk-class flood of 512 B frames at a saturating rate).
// Both streams converge on the DMA engine — the victim's cache misses and
// every aggressor frame need the host link — so when the aggressor
// oversubscribes PCIe, a standing queue forms exactly where the scheduler
// arbitrates. The victim's spec comes first, seeded with the mix seed
// itself, so its arrival process is byte-identical to a solo run built
// from the same seed and spec.
func NewAggressorVictimMix(freqHz, victimGbps, aggressorGbps float64, seed uint64) *TenantMix {
	return NewTenantMix(freqHz, []TenantSpec{
		VictimSpec(victimGbps),
		{Tenant: 2, Class: packet.ClassBulk, RateGbps: aggressorGbps, Bulk: true, FrameBytes: 512},
	}, seed)
}

// VictimSpec is the canonical victim tenant of the isolation experiments:
// tenant 1, latency class, all-GET key-value traffic at the given rate.
func VictimSpec(gbps float64) TenantSpec {
	return TenantSpec{Tenant: 1, Class: packet.ClassLatency, RateGbps: gbps, GetRatio: 1.0}
}

// IsolationMix is the §3.1.3 experiment workload: a low-rate
// latency-sensitive tenant sharing the NIC with a bulk-throughput tenant.
type IsolationMix struct {
	// Latency and Bulk are the two tenants' streams.
	Latency, Bulk Source
	merged        *Merge
}

// NewIsolationMix builds the canonical two-tenant blend. latencyGbps
// should be a small fraction of bulkGbps for the experiment to be
// interesting.
func NewIsolationMix(freqHz, latencyGbps, bulkGbps float64, bulkFrameBytes int, seed uint64) *IsolationMix {
	lat := NewKVSStream(KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: latencyGbps, FreqHz: freqHz, Poisson: true,
		Keys: 1024, GetRatio: 1.0, ValueBytes: 128,
		Seed: seed,
	})
	bulk := NewFixedStream(FixedStreamConfig{
		FrameBytes: bulkFrameBytes,
		RateGbps:   bulkGbps, FreqHz: freqHz,
		Tenant: 2, Class: packet.ClassBulk,
		Seed: seed + 1,
	})
	return &IsolationMix{Latency: lat, Bulk: bulk, merged: NewMerge(lat, bulk)}
}

// Poll implements engine.Source.
func (m *IsolationMix) Poll(now uint64) *packet.Message { return m.merged.Poll(now) }

// NextArrival implements engine.ArrivalSource.
func (m *IsolationMix) NextArrival(now uint64) (uint64, bool) { return m.merged.NextArrival(now) }
