package workload

import "github.com/panic-nic/panic/internal/packet"

// Source mirrors engine.Source locally to avoid an import cycle in tests;
// any generator in this package satisfies both.
type Source interface {
	Poll(now uint64) *packet.Message
}

// Merge interleaves several sources into one stream. Each Poll rotates the
// starting source so no tenant is structurally favored when multiple
// sources are due in the same cycle.
type Merge struct {
	srcs []Source
	next int
}

// NewMerge builds a merged source.
func NewMerge(srcs ...Source) *Merge {
	if len(srcs) == 0 {
		panic("workload: Merge of zero sources")
	}
	return &Merge{srcs: srcs}
}

// Poll implements engine.Source.
func (m *Merge) Poll(now uint64) *packet.Message {
	for i := 0; i < len(m.srcs); i++ {
		s := m.srcs[(m.next+i)%len(m.srcs)]
		if msg := s.Poll(now); msg != nil {
			m.next = (m.next + i + 1) % len(m.srcs)
			return msg
		}
	}
	return nil
}

// arrivalReporter mirrors engine.ArrivalSource locally (same import-cycle
// dodge as Source above).
type arrivalReporter interface {
	NextArrival(now uint64) (uint64, bool)
}

// NextArrival implements engine.ArrivalSource as the minimum over the
// children. A child that cannot report pins the merge to "due now", which
// conservatively disables fast-forward rather than risking a missed poll.
func (m *Merge) NextArrival(now uint64) (uint64, bool) {
	var best uint64
	have := false
	for _, s := range m.srcs {
		ar, ok := s.(arrivalReporter)
		if !ok {
			return now, true
		}
		a, more := ar.NextArrival(now)
		if !more {
			continue
		}
		if !have || a < best {
			best, have = a, true
		}
	}
	return best, have
}

// IsolationMix is the §3.1.3 experiment workload: a low-rate
// latency-sensitive tenant sharing the NIC with a bulk-throughput tenant.
type IsolationMix struct {
	// Latency and Bulk are the two tenants' streams.
	Latency, Bulk Source
	merged        *Merge
}

// NewIsolationMix builds the canonical two-tenant blend. latencyGbps
// should be a small fraction of bulkGbps for the experiment to be
// interesting.
func NewIsolationMix(freqHz, latencyGbps, bulkGbps float64, bulkFrameBytes int, seed uint64) *IsolationMix {
	lat := NewKVSStream(KVSTenantConfig{
		Tenant: 1, Class: packet.ClassLatency,
		RateGbps: latencyGbps, FreqHz: freqHz, Poisson: true,
		Keys: 1024, GetRatio: 1.0, ValueBytes: 128,
		Seed: seed,
	})
	bulk := NewFixedStream(FixedStreamConfig{
		FrameBytes: bulkFrameBytes,
		RateGbps:   bulkGbps, FreqHz: freqHz,
		Tenant: 2, Class: packet.ClassBulk,
		Seed: seed + 1,
	})
	return &IsolationMix{Latency: lat, Bulk: bulk, merged: NewMerge(lat, bulk)}
}

// Poll implements engine.Source.
func (m *IsolationMix) Poll(now uint64) *packet.Message { return m.merged.Poll(now) }

// NextArrival implements engine.ArrivalSource.
func (m *IsolationMix) NextArrival(now uint64) (uint64, bool) { return m.merged.NextArrival(now) }
