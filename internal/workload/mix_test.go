package workload

import (
	"testing"

	"github.com/panic-nic/panic/internal/packet"
)

// pollAll drains a source cycle by cycle (several polls per cycle, since a
// merge can have more than one tenant due at once) and returns the
// delivered messages in order.
func pollAll(src Source, horizon uint64) []*packet.Message {
	var out []*packet.Message
	for now := uint64(0); now < horizon; now++ {
		for {
			m := src.Poll(now)
			if m == nil {
				break
			}
			out = append(out, m)
		}
	}
	return out
}

// TestTenantMixRatioConverges offers two bulk tenants at a 4:1 rate ratio
// with identical frame sizes: the generated message counts must converge
// to the configured ratio.
func TestTenantMixRatioConverges(t *testing.T) {
	mix := NewTenantMix(500e6, []TenantSpec{
		{Tenant: 1, Class: packet.ClassBulk, RateGbps: 8, Bulk: true, FrameBytes: 512},
		{Tenant: 2, Class: packet.ClassBulk, RateGbps: 2, Bulk: true, FrameBytes: 512},
	}, 3)
	msgs := pollAll(mix, 500_000)
	n1, n2 := mix.Generated(1), mix.Generated(2)
	if uint64(len(msgs)) != n1+n2 {
		t.Fatalf("polled %d messages, generated counts say %d", len(msgs), n1+n2)
	}
	if n1 == 0 || n2 == 0 {
		t.Fatalf("generated counts = %d/%d, want both > 0", n1, n2)
	}
	ratio := float64(n1) / float64(n2)
	if ratio < 3.6 || ratio > 4.4 {
		t.Errorf("message ratio = %.2f (%d:%d), want ~4.0", ratio, n1, n2)
	}
	if mix.Generated(9) != 0 {
		t.Errorf("unknown tenant generated %d", mix.Generated(9))
	}
	// Every message carries its spec's tenant and class.
	for _, m := range msgs {
		if m.Tenant != 1 && m.Tenant != 2 {
			t.Fatalf("message tenant = %d", m.Tenant)
		}
		if m.Class != packet.ClassBulk {
			t.Fatalf("message class = %v", m.Class)
		}
	}
}

// TestTenantMixDeterministicInterleaving requires two mixes built from the
// same specs and seed to emit the identical per-tenant interleaving — the
// property the cross-kernel determinism suite builds on.
func TestTenantMixDeterministicInterleaving(t *testing.T) {
	specs := []TenantSpec{
		{Tenant: 1, Class: packet.ClassLatency, RateGbps: 3, GetRatio: 1.0},
		{Tenant: 2, Class: packet.ClassBulk, RateGbps: 6, Bulk: true, FrameBytes: 256},
	}
	build := func(seed uint64) []*packet.Message {
		return pollAll(NewTenantMix(500e6, specs, seed), 100_000)
	}
	a, b := build(7), build(7)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs generated %d and %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i].Tenant != b[i].Tenant || a[i].ID != b[i].ID || a[i].Inject != b[i].Inject {
			t.Fatalf("message %d differs: tenant %d/%d id %d/%d inject %d/%d",
				i, a[i].Tenant, b[i].Tenant, a[i].ID, b[i].ID, a[i].Inject, b[i].Inject)
		}
	}
	// A different seed must not reproduce the same interleaving.
	c := build(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Tenant != c[i].Tenant || a[i].Inject != c[i].Inject {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical interleavings")
	}
}

// TestAggressorVictimMixVictimMatchesSolo is the property the isolation
// experiment's baseline depends on: the victim's arrival process in the
// contended mix is byte-identical to a solo victim mix built from the same
// seed, so contended-vs-solo latency deltas measure contention only.
func TestAggressorVictimMixVictimMatchesSolo(t *testing.T) {
	const horizon = 200_000
	contended := pollAll(NewAggressorVictimMix(500e6, 1, 24, 21), horizon)
	solo := pollAll(NewTenantMix(500e6, []TenantSpec{VictimSpec(1)}, 21), horizon)

	var victims []*packet.Message
	for _, m := range contended {
		if m.Tenant == 1 {
			victims = append(victims, m)
		}
	}
	if len(victims) == 0 || len(victims) != len(solo) {
		t.Fatalf("victim messages: contended %d, solo %d", len(victims), len(solo))
	}
	if len(contended) == len(victims) {
		t.Fatal("mix generated no aggressor traffic")
	}
	for i := range solo {
		v, s := victims[i], solo[i]
		if v.ID != s.ID || v.Inject != s.Inject || v.WireLen() != s.WireLen() {
			t.Fatalf("victim message %d differs: id %d/%d inject %d/%d len %d/%d",
				i, v.ID, s.ID, v.Inject, s.Inject, v.WireLen(), s.WireLen())
		}
	}
}

func TestTenantMixRejectsDuplicateTenants(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate tenant IDs did not panic")
		}
	}()
	NewTenantMix(500e6, []TenantSpec{
		{Tenant: 1, RateGbps: 1, Bulk: true},
		{Tenant: 1, RateGbps: 2, Bulk: true},
	}, 1)
}
