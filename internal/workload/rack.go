package workload

import (
	"fmt"

	"github.com/panic-nic/panic/internal/packet"
)

// RackServiceIP returns the KVS service address inside NIC n's rack
// subnet. The fleet's addressing convention is 172.N.0.0/16 per NIC: the
// service listens on 172.N.0.2, and clients attached to NIC N originate
// from 172.N.x.y. The RMT rack-forward tables (core.ProgramConfig
// RackForward) route on exactly these prefixes.
func RackServiceIP(nic int) packet.IP4 {
	return packet.IP4{172, byte(nic), 0, 2}
}

// RackClientIP returns the address a tenant's client uses when attached
// to NIC n (tenant bytes keep per-tenant flows distinct, mirroring the
// 10.net scheme of plain KVS streams).
func RackClientIP(nic int, tenant uint16) packet.IP4 {
	return packet.IP4{172, byte(nic), byte(tenant >> 8), byte(tenant)}
}

// RackKVSStream wraps a KVS request stream for a multi-NIC rack: every
// request is readdressed into the rack subnets — source
// 172.<local>.<tenant>, destination 172.<home>.0.2, where home is looked
// up per request through the Homes placement function. When the tenant is
// homed on another NIC, the local NIC's rack-forward program chains the
// request out the uplink and the fleet's ToR carries it over (and the
// response back); when homed locally it is served in place. Because the
// home is consulted at generation time, a placement change (tenant
// migration at a fleet barrier) redirects the stream's very next request.
//
// The inner stream must be plaintext (WANShare 0): rack transit bypasses
// the WAN IPSec path by design.
type RackKVSStream struct {
	inner    *KVSStream
	localNIC int
	homes    func(tenant uint16) int
}

// NewRackKVSStream builds the wrapper. localNIC is the NIC the stream's
// port belongs to; homes maps a tenant to its serving NIC and must only
// change while the fleet is stopped at an epoch barrier.
func NewRackKVSStream(cfg KVSTenantConfig, localNIC int, homes func(tenant uint16) int) *RackKVSStream {
	if cfg.WANShare != 0 {
		panic(fmt.Sprintf("workload: rack stream for tenant %d with WANShare %v (rack transit is plaintext)",
			cfg.Tenant, cfg.WANShare))
	}
	if homes == nil {
		panic("workload: rack stream needs a placement function")
	}
	return &RackKVSStream{inner: NewKVSStream(cfg), localNIC: localNIC, homes: homes}
}

// Poll implements engine.Source.
func (s *RackKVSStream) Poll(now uint64) *packet.Message {
	m := s.inner.Poll(now)
	if m == nil {
		return nil
	}
	if ip, ok := m.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok {
		ip.Src = RackClientIP(s.localNIC, m.Tenant)
		ip.Dst = RackServiceIP(s.homes(m.Tenant))
		m.Pkt.Serialize()
	}
	return m
}

// NextArrival implements engine.ArrivalSource.
func (s *RackKVSStream) NextArrival(now uint64) (uint64, bool) {
	return s.inner.NextArrival(now)
}

// Generated returns how many messages the source has produced.
func (s *RackKVSStream) Generated() uint64 { return s.inner.Generated() }
