package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
)

// drain polls a source once per cycle for n cycles, like a MAC would.
func drain(s Source, cycles uint64) []*packet.Message {
	var out []*packet.Message
	for now := uint64(0); now < cycles; now++ {
		for {
			m := s.Poll(now)
			if m == nil {
				break
			}
			out = append(out, m)
		}
	}
	return out
}

func TestIntervalFor(t *testing.T) {
	// 64B frame = 84B wire = 672 bits; at 40G/500MHz = 80 bits/cycle ->
	// 8.4 cycles between frames.
	if got := IntervalFor(64, 40, 500e6); math.Abs(got-8.4) > 1e-9 {
		t.Errorf("IntervalFor = %v, want 8.4", got)
	}
}

func TestFixedStreamCBRRate(t *testing.T) {
	s := NewFixedStream(FixedStreamConfig{
		FrameBytes: 64, RateGbps: 40, FreqHz: 500e6, Tenant: 3, Seed: 1,
	})
	msgs := drain(s, 8400)
	// 8400 cycles / 8.4 = 1000 packets.
	if len(msgs) < 999 || len(msgs) > 1001 {
		t.Errorf("generated %d packets in 8400 cycles, want ~1000", len(msgs))
	}
	m := msgs[0]
	if m.Tenant != 3 || m.WireLen() != 64 {
		t.Errorf("msg = %v wire=%d", m, m.WireLen())
	}
	if !m.Pkt.Has(packet.LayerTypeUDP) {
		t.Error("missing UDP layer")
	}
}

func TestFixedStreamLoadScaling(t *testing.T) {
	half := NewFixedStream(FixedStreamConfig{
		FrameBytes: 64, RateGbps: 40, FreqHz: 500e6, Load: 0.5, Seed: 1,
	})
	msgs := drain(half, 8400)
	if len(msgs) < 495 || len(msgs) > 505 {
		t.Errorf("half load generated %d, want ~500", len(msgs))
	}
}

func TestFixedStreamCountLimit(t *testing.T) {
	s := NewFixedStream(FixedStreamConfig{
		FrameBytes: 64, RateGbps: 40, FreqHz: 500e6, Count: 7, Seed: 1,
	})
	if got := len(drain(s, 100000)); got != 7 {
		t.Errorf("count-limited stream generated %d, want 7", got)
	}
	if s.Generated() != 7 {
		t.Errorf("Generated = %d", s.Generated())
	}
}

func TestPoissonMeanRate(t *testing.T) {
	s := NewFixedStream(FixedStreamConfig{
		FrameBytes: 64, RateGbps: 40, FreqHz: 500e6, Poisson: true, Seed: 5,
	})
	msgs := drain(s, 84000)
	// Mean 10000 arrivals; Poisson sd ~100. Allow 5 sd.
	if len(msgs) < 9500 || len(msgs) > 10500 {
		t.Errorf("poisson generated %d, want ~10000", len(msgs))
	}
}

func TestKVSStreamComposition(t *testing.T) {
	s := NewKVSStream(KVSTenantConfig{
		Tenant: 7, Class: packet.ClassLatency,
		RateGbps: 10, FreqHz: 500e6,
		Keys: 1000, GetRatio: 0.9, WANShare: 0.3, ValueBytes: 512,
		Seed: 11,
	})
	msgs := drain(s, 200000)
	if len(msgs) < 100 {
		t.Fatalf("only %d messages", len(msgs))
	}
	gets, sets, wan := 0, 0, 0
	for _, m := range msgs {
		if m.Tenant != 7 || m.Class != packet.ClassLatency {
			t.Fatalf("bad metadata: %v", m)
		}
		if m.Pkt.Has(packet.LayerTypeESP) {
			wan++
			if m.Inner == nil || !m.Inner.Has(packet.LayerTypeKVS) {
				t.Fatal("WAN message lost its plaintext")
			}
			continue
		}
		k := m.Pkt.Layer(packet.LayerTypeKVS).(*packet.KVS)
		switch k.Op {
		case packet.KVSGet:
			gets++
		case packet.KVSSet:
			sets++
			if k.ValueLen != 512 || m.Pkt.PayloadLen != 512 {
				t.Fatalf("SET sizes wrong: %+v payload=%d", k, m.Pkt.PayloadLen)
			}
		}
	}
	n := float64(len(msgs))
	if f := float64(wan) / n; f < 0.25 || f > 0.35 {
		t.Errorf("WAN share = %.2f, want ~0.30", f)
	}
	if f := float64(gets) / float64(gets+sets); f < 0.85 || f > 0.95 {
		t.Errorf("GET ratio among LAN = %.2f, want ~0.9", f)
	}
}

func TestZipfSkew(t *testing.T) {
	rng := sim.NewRNG(3)
	z := newZipf(rng, 1.2, 10000)
	counts := make(map[uint64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		k := z.next()
		if k >= 10000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must dominate; the top-10 keys should hold a large share.
	if counts[0] < counts[1] {
		t.Error("key 0 not hottest")
	}
	top10 := 0
	for k := uint64(0); k < 10; k++ {
		top10 += counts[k]
	}
	if f := float64(top10) / n; f < 0.25 {
		t.Errorf("top-10 share = %.2f, want heavy skew", f)
	}
	// Ratio of p(0)/p(1) ≈ 2^1.2 ≈ 2.3.
	r := float64(counts[0]) / float64(counts[1])
	if r < 1.8 || r > 2.9 {
		t.Errorf("p(0)/p(1) = %.2f, want ~2.3", r)
	}
}

func TestZipfValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"s<=1": func() { newZipf(sim.NewRNG(1), 1.0, 10) },
		"n=0":  func() { newZipf(sim.NewRNG(1), 1.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMergeFairRotation(t *testing.T) {
	a := NewFixedStream(FixedStreamConfig{FrameBytes: 64, RateGbps: 40, FreqHz: 500e6, Tenant: 1, Seed: 1})
	b := NewFixedStream(FixedStreamConfig{FrameBytes: 64, RateGbps: 40, FreqHz: 500e6, Tenant: 2, Seed: 2})
	m := NewMerge(a, b)
	msgs := drain(m, 8400)
	byTenant := map[uint16]int{}
	for _, msg := range msgs {
		byTenant[msg.Tenant]++
	}
	if byTenant[1] < 900 || byTenant[2] < 900 {
		t.Errorf("merge starved a source: %v", byTenant)
	}
}

func TestIsolationMixClasses(t *testing.T) {
	m := NewIsolationMix(500e6, 1, 40, 1500, 3)
	msgs := drain(m, 100000)
	classes := map[packet.Class]int{}
	bytes := map[packet.Class]int{}
	for _, msg := range msgs {
		classes[msg.Class]++
		bytes[msg.Class] += msg.WireLen()
	}
	if classes[packet.ClassLatency] == 0 || classes[packet.ClassBulk] == 0 {
		t.Fatalf("missing a tenant: %v", classes)
	}
	// Bulk is 40x the offered load in bytes (1 vs 40 Gbps).
	if bytes[packet.ClassBulk] < 20*bytes[packet.ClassLatency] {
		t.Errorf("bulk should dominate byte volume: %v", bytes)
	}
}

func TestWorkloadValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"tiny frame": func() { NewFixedStream(FixedStreamConfig{FrameBytes: 32, RateGbps: 1, FreqHz: 1e9}) },
		"no keys":    func() { NewKVSStream(KVSTenantConfig{RateGbps: 1, FreqHz: 1e9}) },
		"bad ratio":  func() { NewKVSStream(KVSTenantConfig{Keys: 10, GetRatio: 2, RateGbps: 1, FreqHz: 1e9}) },
		"empty mix":  func() { NewMerge() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPropertyStreamsAreDeterministic: identical configs yield identical
// streams; different seeds diverge.
func TestPropertyStreamsAreDeterministic(t *testing.T) {
	prop := func(seed uint64, poisson bool) bool {
		mk := func(s uint64) []*packet.Message {
			return drain(NewKVSStream(KVSTenantConfig{
				Tenant: 1, RateGbps: 20, FreqHz: 500e6, Poisson: poisson,
				Keys: 100, GetRatio: 0.5, WANShare: 0.5, ValueBytes: 64,
				Seed: s, Count: 50,
			}), 100000)
		}
		a, b := mk(seed), mk(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			ka := a[i].Pkt
			kb := b[i].Pkt
			if ka.WireLen() != kb.WireLen() || ka.String() != kb.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyZipfInRange: keys always fall in [0, n).
func TestPropertyZipfInRange(t *testing.T) {
	prop := func(seed uint64, nSeed uint16, sSeed uint8) bool {
		n := uint64(nSeed)%1000 + 1
		s := 1.01 + float64(sSeed)/64.0
		z := newZipf(sim.NewRNG(seed), s, n)
		for i := 0; i < 200; i++ {
			if z.next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFixedStreamPoolIdentical drives two identical streams — one fresh,
// one recycling shells through a MessagePool — and checks every emitted
// message is byte-identical, including shells the "pipeline" reshaped with
// a chain shim before returning them.
func TestFixedStreamPoolIdentical(t *testing.T) {
	mk := func(pool *packet.MessagePool) *FixedStream {
		return NewFixedStream(FixedStreamConfig{
			FrameBytes: 128, RateGbps: 50, FreqHz: 500e6,
			Tenant: 9, Class: packet.ClassBulk, Seed: 42, Pool: pool,
		})
	}
	pool := packet.NewMessagePool()
	fresh := mk(nil)
	pooled := mk(pool)
	reuses := 0
	for cycle := uint64(0); cycle < 2000; cycle++ {
		a := fresh.Poll(cycle)
		b := pooled.Poll(cycle)
		if (a == nil) != (b == nil) {
			t.Fatalf("cycle %d: fresh=%v pooled=%v", cycle, a != nil, b != nil)
		}
		if a == nil {
			continue
		}
		if pool.Len() == 0 && cycle > 0 {
			reuses++ // b just consumed a recycled shell
		}
		if a.ID != b.ID || a.Tenant != b.Tenant || a.Class != b.Class {
			t.Fatalf("cycle %d: metadata diverged: %+v vs %+v", cycle, a, b)
		}
		if !bytes.Equal(a.Pkt.Buf, b.Pkt.Buf) || a.Pkt.PayloadLen != b.Pkt.PayloadLen {
			t.Fatalf("cycle %d: wire bytes diverged:\n fresh  %x\n pooled %x", cycle, a.Pkt.Buf, b.Pkt.Buf)
		}
		// Reshape the shell the way the NIC pipeline does (chain shim after
		// Ethernet) before recycling, so the salvage path is exercised.
		b.Pkt.Layers = []packet.Layer{
			b.Pkt.Layers[0],
			&packet.Chain{InnerType: packet.EtherTypeIPv4, Hops: []packet.Hop{{Engine: 7}}},
			b.Pkt.Layers[1],
			b.Pkt.Layers[2],
		}
		pool.Put(b)
	}
	if reuses == 0 {
		t.Fatal("pool path never reused a shell")
	}
}
