package fleet

import (
	"sort"

	"github.com/panic-nic/panic/internal/packet"
)

// uplink is the deterministic arrival source feeding one NIC's
// ToR-facing Ethernet port. The exchange barrier pushes messages with
// their absolute arrival cycles (egress cycle + ToR latency); the MAC
// polls them out in order, paced by its own line-rate token bucket.
//
// Concurrency mirrors serve.IngestSource: Poll and NextArrival run inside
// kernel cycles on the shard evaluating the port's MAC; push runs on the
// fleet goroutine strictly between epochs, when every shard is parked at
// the barrier. No two ever overlap, so the type needs no locks — and the
// arrival cycles pushed at a barrier are all in the future (the lookahead
// invariant), so reporting "exhausted" to fast-forward stays safe.
type uplink struct {
	msgs    []*packet.Message
	due     []uint64
	head    int
	emitted uint64
}

// Poll implements engine.Source.
func (u *uplink) Poll(now uint64) *packet.Message {
	if u.head >= len(u.msgs) || u.due[u.head] > now {
		return nil
	}
	m := u.msgs[u.head]
	u.msgs[u.head] = nil
	u.head++
	u.emitted++
	return m
}

// NextArrival implements engine.ArrivalSource.
func (u *uplink) NextArrival(now uint64) (uint64, bool) {
	if u.head >= len(u.msgs) {
		return 0, false
	}
	at := u.due[u.head]
	if at < now {
		at = now
	}
	return at, true
}

// pending is the queued-not-yet-polled count (the "in flight at the ToR"
// term of the conservation equation).
func (u *uplink) pending() uint64 { return uint64(len(u.msgs) - u.head) }

// push appends an arrival. Calls at one barrier must come pre-sorted by
// cycle; across barriers monotonicity is automatic (every new arrival is
// at least one full ToR latency past the epoch that emitted it).
func (u *uplink) push(m *packet.Message, at uint64) {
	u.msgs = append(u.msgs, m)
	u.due = append(u.due, at)
}

// compact reclaims the consumed prefix once it dominates the slice.
func (u *uplink) compact() {
	if u.head < 4096 || u.head*2 < len(u.msgs) {
		return
	}
	n := copy(u.msgs, u.msgs[u.head:])
	copy(u.due, u.due[u.head:])
	u.msgs = u.msgs[:n]
	u.due = u.due[:n]
	u.head = 0
}

// TorStats is the ToR cost model's conservation ledger.
type TorStats struct {
	// Forwarded counts frames picked off NIC wires by the rack taps.
	Forwarded uint64
	// Injected counts frames accepted into a destination uplink queue.
	Injected uint64
	// Dropped counts frames shed by the fabric bandwidth budget.
	Dropped uint64
	// Emitted counts frames the destination MACs have polled out.
	Emitted uint64
	// Pending counts frames sitting in uplink queues (in flight).
	Pending uint64
}

// tor models the top-of-rack switch joining the fleet: a constant
// store-and-forward latency plus an optional aggregate bandwidth budget
// per epoch. It only runs at barriers, in canonical order, so it is
// deterministic for any shard count.
type tor struct {
	latency   uint64
	budgetFn  func(epochCycles uint64) float64 // nil = unlimited, else bits per epoch
	forwarded uint64
	injected  uint64
	dropped   uint64

	batch []torArrival // scratch, reused across barriers
}

type torArrival struct {
	m   *packet.Message
	dst int
	at  uint64
}

// exchange drains the per-NIC egress buffers into the uplinks: arrival =
// egress cycle + latency, batch stable-sorted by arrival per destination
// (ties keep canonical source order: NIC 0..N-1, each buffer in append
// order). epochCycles sizes the bandwidth budget for this window.
func (t *tor) exchange(egress [][]*packet.Message, uplinks []*uplink, epochCycles uint64) {
	t.batch = t.batch[:0]
	var budget float64
	limited := t.budgetFn != nil
	if limited {
		budget = t.budgetFn(epochCycles)
	}
	for src := range egress {
		buf := egress[src]
		for i, m := range buf {
			t.forwarded++
			if limited {
				bits := float64((m.WireLen() + packet.WireOverheadBytes) * 8)
				if bits > budget {
					t.dropped++
					buf[i] = nil
					continue
				}
				budget -= bits
			}
			t.batch = append(t.batch, torArrival{m: m, dst: rackDstNIC(m), at: m.Done + t.latency})
			buf[i] = nil
		}
		egress[src] = buf[:0]
	}
	sort.SliceStable(t.batch, func(i, j int) bool { return t.batch[i].at < t.batch[j].at })
	for _, a := range t.batch {
		// Reset the per-NIC leg state: the destination MAC restamps Port,
		// Inject, and a fresh locally-unique TraceID on arrival.
		a.m.TraceID = 0
		a.m.Port = -1
		uplinks[a.dst].push(a.m, a.at)
		t.injected++
	}
	for _, u := range uplinks {
		u.compact()
	}
}

// stats sums the ledger across the switch and the uplink queues.
func (t *tor) stats(uplinks []*uplink) TorStats {
	s := TorStats{Forwarded: t.forwarded, Injected: t.injected, Dropped: t.dropped}
	for _, u := range uplinks {
		s.Emitted += u.emitted
		s.Pending += u.pending()
	}
	return s
}

// rackDstNIC extracts the destination NIC index from a rack-addressed
// frame (172.N.x.y). Callers guarantee the frame is rack-addressed (the
// tap already parsed it).
func rackDstNIC(m *packet.Message) int {
	if ip, ok := m.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4); ok && ip.Dst[0] == 172 {
		return int(ip.Dst[1])
	}
	return 0
}
