// Package fleet simulates the rack, not just the NIC: N independent PANIC
// NIC instances joined by a modeled top-of-rack switch, with tenant-to-NIC
// placement, cross-NIC request/response traffic, fleet-wide fault plans,
// and tenant migration between NICs.
//
// # Execution model
//
// Each NIC keeps its own cycle-accurate kernel. The fleet advances all of
// them in epochs of at most the ToR latency L, sharded across goroutines
// by sim.EpochSet. Inside an epoch the NICs share nothing: cross-NIC
// frames are diverted at wire egress into per-NIC buffers (single writer
// each) by core.Config.RackTap, and only the barrier moves them — through
// the ToR cost model, into the destination NIC's uplink arrival queue.
// The conservative-lookahead argument makes this exact, not approximate:
// a frame egressing at cycle c inside epoch [s, s+E) arrives at c+L >=
// s+E, i.e. never before the next epoch begins, so no shard can ever need
// a message another shard has not yet produced. Because the barrier
// processes NICs in canonical order (0..N-1, buffers in append order,
// batches stable-sorted by arrival cycle), the simulation is
// byte-identical for ANY shard count and any per-NIC kernel mode
// (sequential / parallel Eval / fast-forward).
package fleet

import (
	"fmt"
	"sort"
	"strings"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/invariant"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
	"github.com/panic-nic/panic/internal/workload"
)

// TenantSpec places one tenant's workload in the rack: its requests
// originate at NIC Client and are served by NIC Home. When the two
// differ, every request crosses the ToR (and its response crosses back);
// when equal, the tenant is purely NIC-local.
type TenantSpec struct {
	Tenant   uint16
	Home     int
	Client   int
	Class    packet.Class
	RateGbps float64
	Keys     uint64
	GetRatio float64
	// ValueBytes sizes SET payloads and cached GET responses.
	ValueBytes uint32
	// Count bounds the stream (0 = unlimited).
	Count   uint64
	Poisson bool
	// Seed drives the stream (0 derives one from the fleet seed and the
	// tenant id).
	Seed uint64
}

// Migration moves a tenant's serving home to another NIC at the first
// epoch barrier at or after Cycle. New requests from every client NIC
// re-route immediately (placement is consulted per generated request);
// requests already in flight drain at the old home, whose chain tables
// keep serving the tenant.
type Migration struct {
	Cycle  uint64
	Tenant uint16
	To     int
}

// Config parameterizes a fleet.
type Config struct {
	// NICs is the rack size (1..200; subnet 172.N/16 addresses NIC N).
	NICs int
	// TorLatency is the inter-NIC one-way latency in cycles and the
	// epoch length (the conservative lookahead). 0 means 64.
	TorLatency uint64
	// Shards is the number of goroutines NICs are sharded across (NIC i
	// runs on shard i%Shards). 0 or 1 is fully sequential. The result is
	// byte-identical for every value.
	Shards int
	// TorGbps caps the switch fabric's aggregate bandwidth (0 =
	// unlimited); frames beyond an epoch's budget are dropped and
	// counted.
	TorGbps float64
	// NIC is the per-NIC configuration template. The fleet overrides,
	// per instance: Seed (template seed + NIC id), Program rack-forward
	// routing, Tenants (every fleet tenant, so any NIC can serve a
	// migrated tenant), RackTap, FaultPlan, Invariants, and Tracer.
	NIC core.Config
	// Tenants is the rack's workload placement.
	Tenants []TenantSpec
	// Migrations is the tenant re-homing schedule.
	Migrations []Migration
	// FaultPlans maps NIC id -> fault plan (reusing internal/fault), the
	// fleet-wide fault surface.
	FaultPlans map[int]*fault.Plan
	// Trace attaches a per-NIC tracer (NIC-id span dimension) sampling
	// one message in TraceSample.
	Trace       bool
	TraceSample uint64
	// Invariants arms both the per-NIC monitors and the fleet-level ToR
	// conservation check.
	Invariants *invariant.Config
}

// Fleet is an assembled rack.
type Fleet struct {
	Cfg     Config
	NICs    []*core.NIC
	Tracers []*trace.Tracer
	// Monitor is the fleet-level invariant monitor (nil unless
	// Cfg.Invariants); it runs at every epoch barrier.
	Monitor *invariant.Monitor
	// Oplog records fleet control-plane actions (migrations), one line
	// each, in apply order.
	Oplog []string

	set        *sim.EpochSet
	tor        *tor
	uplinks    []*uplink
	egress     [][]*packet.Message
	placement  map[uint16]int
	migrations []Migration // sorted by cycle, unapplied suffix
	now        uint64
}

// New assembles the rack. It panics on configuration errors (mirroring
// core.NewNIC).
func New(cfg Config) *Fleet {
	if cfg.NICs < 1 || cfg.NICs > 200 {
		panic(fmt.Sprintf("fleet: %d NICs out of range [1,200]", cfg.NICs))
	}
	if cfg.TorLatency == 0 {
		cfg.TorLatency = 64
	}
	if cfg.NIC.FreqHz == 0 {
		cfg.NIC = core.DefaultConfig()
	}
	if cfg.NIC.Ports < 2 {
		panic("fleet: the NIC template needs >= 2 ports (client side + ToR uplink)")
	}
	uplinkPort := cfg.NIC.Ports - 1

	f := &Fleet{
		Cfg:       cfg,
		tor:       &tor{latency: cfg.TorLatency},
		placement: make(map[uint16]int, len(cfg.Tenants)),
		egress:    make([][]*packet.Message, cfg.NICs),
	}
	if cfg.TorGbps > 0 {
		freq := cfg.NIC.FreqHz
		f.tor.budgetFn = func(epochCycles uint64) float64 {
			return cfg.TorGbps * 1e9 * float64(epochCycles) / freq
		}
	}

	allTenants := make([]uint16, 0, len(cfg.Tenants))
	for _, spec := range cfg.Tenants {
		if spec.Home < 0 || spec.Home >= cfg.NICs || spec.Client < 0 || spec.Client >= cfg.NICs {
			panic(fmt.Sprintf("fleet: tenant %d placed on NIC %d/%d in a %d-NIC rack",
				spec.Tenant, spec.Home, spec.Client, cfg.NICs))
		}
		if _, dup := f.placement[spec.Tenant]; dup {
			panic(fmt.Sprintf("fleet: tenant %d specified twice", spec.Tenant))
		}
		f.placement[spec.Tenant] = spec.Home
		allTenants = append(allTenants, spec.Tenant)
	}
	sort.Slice(allTenants, func(i, j int) bool { return allTenants[i] < allTenants[j] })
	homes := func(t uint16) int { return f.placement[t] }

	f.migrations = append(f.migrations, cfg.Migrations...)
	sort.SliceStable(f.migrations, func(i, j int) bool { return f.migrations[i].Cycle < f.migrations[j].Cycle })
	for _, m := range f.migrations {
		if m.To < 0 || m.To >= cfg.NICs {
			panic(fmt.Sprintf("fleet: migration of tenant %d to NIC %d in a %d-NIC rack", m.Tenant, m.To, cfg.NICs))
		}
		if _, known := f.placement[m.Tenant]; !known {
			panic(fmt.Sprintf("fleet: migration of unknown tenant %d", m.Tenant))
		}
	}

	kernels := make([]*sim.Kernel, 0, cfg.NICs)
	for id := 0; id < cfg.NICs; id++ {
		c := cfg.NIC
		c.Seed = cfg.NIC.Seed + uint64(id)
		c.Program.RackForward = true
		c.Program.RackLocalNIC = id
		c.Program.RackUplinkPort = uplinkPort
		c.Program.RackClientPort = 0
		c.Tenants = allTenants
		c.FaultPlan = cfg.FaultPlans[id]
		c.Invariants = cfg.Invariants
		c.RackTap = f.tapFor(id)
		if cfg.Trace {
			tr := trace.New(trace.Options{FreqHz: c.FreqHz, Sample: cfg.TraceSample, NIC: id})
			c.Tracer = tr
			f.Tracers = append(f.Tracers, tr)
		}

		// Port 0 carries the NIC's attached clients (every tenant whose
		// Client is this NIC, merged in spec order); the last port is the
		// ToR uplink.
		var clients []workload.Source
		for _, spec := range cfg.Tenants {
			if spec.Client != id {
				continue
			}
			seed := spec.Seed
			if seed == 0 {
				seed = cfg.NIC.Seed*7919 + uint64(spec.Tenant)*127 + 13
			}
			clients = append(clients, workload.NewRackKVSStream(workload.KVSTenantConfig{
				Tenant: spec.Tenant, Class: spec.Class,
				RateGbps: spec.RateGbps, FreqHz: c.FreqHz, Poisson: spec.Poisson,
				Keys: spec.Keys, GetRatio: spec.GetRatio, ValueBytes: spec.ValueBytes,
				Count: spec.Count, Seed: seed,
			}, id, homes))
		}
		up := &uplink{}
		f.uplinks = append(f.uplinks, up)
		srcs := make([]engine.Source, cfg.NIC.Ports)
		if len(clients) == 1 {
			srcs[0] = clients[0]
		} else if len(clients) > 1 {
			srcs[0] = workload.NewMerge(clients...)
		}
		srcs[uplinkPort] = up

		nic := core.NewNIC(c, srcs)
		f.NICs = append(f.NICs, nic)
		kernels = append(kernels, nic.Builder.Kernel)
	}
	f.set = sim.NewEpochSet(kernels, cfg.Shards)

	if cfg.Invariants != nil {
		f.Monitor = invariant.New(*cfg.Invariants)
		f.Monitor.AddCheck("tor-conservation", func(cycle uint64) error {
			s := f.TorStats()
			if s.Forwarded != s.Injected+s.Dropped {
				return fmt.Errorf("fabric leak: forwarded=%d != injected=%d + dropped=%d",
					s.Forwarded, s.Injected, s.Dropped)
			}
			if s.Injected != s.Emitted+s.Pending {
				return fmt.Errorf("uplink leak: injected=%d != emitted=%d + pending=%d",
					s.Injected, s.Emitted, s.Pending)
			}
			return nil
		})
	}
	return f
}

// tapFor builds NIC id's egress tap: frames addressed to another NIC's
// rack subnet are diverted into this NIC's egress buffer (single writer
// during an epoch — the tap runs in the NIC's own Commit phase).
func (f *Fleet) tapFor(id int) func(*packet.Message, uint64) bool {
	return func(m *packet.Message, _ uint64) bool {
		ip, ok := m.Pkt.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
		if !ok || ip.Dst[0] != 172 {
			return false
		}
		dst := int(ip.Dst[1])
		if dst == id || dst >= len(f.NICs) {
			// Own subnet (final client delivery) or a stray address:
			// deliver locally.
			return false
		}
		f.egress[id] = append(f.egress[id], m)
		return true
	}
}

// Run advances the whole rack by cycles, stopping at every epoch barrier
// to exchange cross-NIC traffic, apply due migrations, and run the
// fleet-level invariant checks.
func (f *Fleet) Run(cycles uint64) {
	end := f.now + cycles
	for f.now < end {
		f.applyMigrations()
		epoch := f.Cfg.TorLatency
		if f.now+epoch > end {
			epoch = end - f.now
		}
		f.set.Run(epoch)
		f.now += epoch
		f.tor.exchange(f.egress, f.uplinks, epoch)
		if f.Monitor != nil {
			f.Monitor.RunNow(f.now)
		}
	}
	f.applyMigrations()
}

// applyMigrations applies every migration due at or before now. Placement
// changes only here — at a barrier, while no shard is running — so
// workload placement lookups never race and every shard count sees the
// same homes for the same epoch.
func (f *Fleet) applyMigrations() {
	for len(f.migrations) > 0 && f.migrations[0].Cycle <= f.now {
		m := f.migrations[0]
		f.migrations = f.migrations[1:]
		from := f.placement[m.Tenant]
		f.placement[m.Tenant] = m.To
		f.Oplog = append(f.Oplog,
			fmt.Sprintf("cycle=%d migrate tenant=%d home %d->%d", f.now, m.Tenant, from, m.To))
	}
}

// ScheduleMigration queues a tenant re-homing for the first barrier at or
// after cycle. Call between Run calls.
func (f *Fleet) ScheduleMigration(cycle uint64, tenant uint16, to int) error {
	if _, known := f.placement[tenant]; !known {
		return fmt.Errorf("fleet: unknown tenant %d", tenant)
	}
	if to < 0 || to >= len(f.NICs) {
		return fmt.Errorf("fleet: NIC %d out of range", to)
	}
	f.migrations = append(f.migrations, Migration{Cycle: cycle, Tenant: tenant, To: to})
	sort.SliceStable(f.migrations, func(i, j int) bool { return f.migrations[i].Cycle < f.migrations[j].Cycle })
	return nil
}

// Home returns a tenant's current serving NIC.
func (f *Fleet) Home(tenant uint16) (int, bool) {
	h, ok := f.placement[tenant]
	return h, ok
}

// Now returns the fleet clock (every NIC's kernel agrees at barriers).
func (f *Fleet) Now() uint64 { return f.now }

// TorStats returns the ToR conservation ledger.
func (f *Fleet) TorStats() TorStats { return f.tor.stats(f.uplinks) }

// Delivered sums terminal deliveries (wire + host) across the rack — the
// fleet-aggregate throughput numerator.
func (f *Fleet) Delivered() uint64 {
	var n uint64
	for _, nic := range f.NICs {
		n += nic.WireLat.Count + nic.HostLat.Count
	}
	return n
}

// Violations collects invariant violations from the fleet monitor and
// every per-NIC monitor, in canonical order.
func (f *Fleet) Violations() []invariant.Violation {
	var out []invariant.Violation
	if f.Monitor != nil {
		out = append(out, f.Monitor.Violations()...)
	}
	for _, nic := range f.NICs {
		if nic.Invar != nil {
			out = append(out, nic.Invar.Violations()...)
		}
	}
	return out
}

// Close releases the shard goroutines and every kernel's worker pool.
func (f *Fleet) Close() { f.set.Shutdown() }

// Fingerprint reduces the rack to one byte-comparable string: the ToR
// ledger, the fleet oplog, every NIC's full core fingerprint, and — when
// tracing — every NIC's exact span stream. Two runs of the same fleet
// configuration must produce identical fingerprints regardless of shard
// count or per-NIC kernel mode; the determinism matrix and the
// fleet-smoke CI job compare nothing else.
func (f *Fleet) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: nics=%d torlat=%d shards-independent now=%d\n",
		len(f.NICs), f.Cfg.TorLatency, f.now)
	s := f.TorStats()
	fmt.Fprintf(&b, "tor: forwarded=%d injected=%d emitted=%d pending=%d dropped=%d\n",
		s.Forwarded, s.Injected, s.Emitted, s.Pending, s.Dropped)
	b.WriteString("oplog:\n")
	for _, line := range f.Oplog {
		b.WriteString("  " + line + "\n")
	}
	for id, nic := range f.NICs {
		fmt.Fprintf(&b, "=== nic %d ===\n", id)
		b.WriteString(nic.Fingerprint())
		if f.Tracers != nil {
			set := f.Tracers[id].Snapshot()
			fmt.Fprintf(&b, "trace: nic=%d spans=%d dropped=%d\n", set.NIC, len(set.Spans), set.Dropped)
			if err := set.WriteChrome(&b); err != nil {
				fmt.Fprintf(&b, "trace export error: %v\n", err)
			}
		}
	}
	return b.String()
}

// Summary renders a human-readable fleet report.
func (f *Fleet) Summary() string {
	var b strings.Builder
	s := f.TorStats()
	fmt.Fprintf(&b, "fleet: %d NICs, ToR latency %d cycles, %d shards\n",
		len(f.NICs), f.Cfg.TorLatency, f.set.Shards())
	fmt.Fprintf(&b, "tor: forwarded=%d delivered=%d pending=%d dropped=%d\n",
		s.Forwarded, s.Emitted, s.Pending, s.Dropped)
	for _, line := range f.Oplog {
		b.WriteString("oplog: " + line + "\n")
	}
	for id, nic := range f.NICs {
		fmt.Fprintf(&b, "nic %d: wire=%d host=%d drops=%d\n",
			id, nic.WireLat.Count, nic.HostLat.Count, nic.Drops.Value())
	}
	fmt.Fprintf(&b, "deliveries total: %d\n", f.Delivered())
	if n := len(f.Violations()); n > 0 {
		fmt.Fprintf(&b, "INVARIANT VIOLATIONS: %d\n", n)
	}
	return b.String()
}
