package fleet

import (
	"fmt"
	"strings"
	"testing"

	"github.com/panic-nic/panic/internal/fault"
	"github.com/panic-nic/panic/internal/invariant"
	"github.com/panic-nic/panic/internal/packet"
)

// rackTenants builds a mixed placement over nics NICs: odd tenants are
// cross-NIC (client and home differ), even tenants are NIC-local, classes
// and rates alternate so scheduling actually has work to do.
func rackTenants(nics int) []TenantSpec {
	var specs []TenantSpec
	for t := uint16(1); t <= uint16(2*nics); t++ {
		client := int(t-1) % nics
		home := client
		if t%2 == 1 {
			home = (client + 1) % nics
		}
		class := packet.ClassBulk
		if t%3 == 0 {
			class = packet.ClassLatency
		}
		specs = append(specs, TenantSpec{
			Tenant: t, Home: home, Client: client, Class: class,
			RateGbps: 1.5, Keys: 64, GetRatio: 0.75, ValueBytes: 256,
			Poisson: t%2 == 0,
		})
	}
	return specs
}

func rackConfig(nics, shards int) Config {
	return Config{
		NICs:       nics,
		TorLatency: 64,
		Shards:     shards,
		Tenants:    rackTenants(nics),
		Invariants: &invariant.Config{Every: 512},
	}
}

// TestFleetCrossTraffic checks the full cross-NIC round trip: requests
// from a tenant homed away cross the ToR, are served remotely, and the
// responses cross back and land on the client NIC's wire.
func TestFleetCrossTraffic(t *testing.T) {
	f := New(rackConfig(2, 1))
	defer f.Close()
	f.Run(60_000)

	s := f.TorStats()
	if s.Forwarded == 0 {
		t.Fatal("no frames crossed the ToR despite cross-homed tenants")
	}
	if s.Emitted == 0 {
		t.Fatal("ToR forwarded frames but no destination NIC re-emitted any")
	}
	for id, nic := range f.NICs {
		if nic.WireLat.Count == 0 {
			t.Errorf("nic %d delivered nothing to its wire (responses should return to clients)", id)
		}
	}
	// Cross tenants exist on both NICs, so both directions must carry
	// traffic: requests client->home and responses home->client.
	if s.Forwarded < 2*s.Dropped {
		t.Errorf("ToR dropped most traffic with no bandwidth cap: %+v", s)
	}
	if got := f.Violations(); len(got) != 0 {
		t.Fatalf("invariant violations: %v", got)
	}
}

// TestFleetDeterminismMatrix is the tentpole acceptance test: the same
// rack — migrations, a fault plan, and tracing armed — must produce a
// byte-identical fleet fingerprint for every shard count and every
// per-NIC kernel mode, including the event-driven loop against the
// ticked oracle.
func TestFleetDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-NIC matrix runs are slow")
	}
	const nics = 4
	const horizon = 40_000

	run := func(shards, workers int, ff, ticked bool) string {
		cfg := rackConfig(nics, shards)
		cfg.NIC.Workers = workers
		cfg.NIC.FastForward = ff
		cfg.NIC.NoEventEngine = ticked
		cfg.Trace = true
		cfg.TraceSample = 64
		cfg.Migrations = []Migration{
			{Cycle: 12_000, Tenant: 1, To: 2},
			{Cycle: 24_000, Tenant: 5, To: 3},
		}
		cfg.FaultPlans = map[int]*fault.Plan{
			1: (&fault.Plan{}).Add(fault.Event{At: 8_000, Kind: fault.Wedge, Engine: 35, For: 5_000}),
		}
		f := New(cfg)
		defer f.Close()
		f.Run(horizon)
		return f.Fingerprint()
	}

	// The reference is the fully sequential 1-shard rack on the ticked
	// oracle; every event-engine combination must reproduce it exactly.
	want := run(1, 0, false, true)
	if !strings.Contains(want, "migrate tenant=1") || !strings.Contains(want, "migrate tenant=5") {
		t.Fatalf("oplog missing migrations:\n%.400s", want)
	}
	cases := []struct {
		name    string
		shards  int
		workers int
		ff      bool
		ticked  bool
	}{
		{"event-shards1", 1, 0, false, false},
		{"event-shards2", 2, 0, false, false},
		{"event-shards4", 4, 0, false, false},
		{"ticked-shards4", 4, 0, false, true},
		{"event-shards1+workers2", 1, 2, false, false},
		{"event-shards4+workers2", 4, 2, false, false},
		{"event-shards2+ff", 2, 0, true, false},
		{"ticked-shards2+ff", 2, 0, true, true},
		{"event-shards4+workers2+ff", 4, 2, true, false},
	}
	for _, c := range cases {
		got := run(c.shards, c.workers, c.ff, c.ticked)
		if got != want {
			t.Errorf("%s diverged from the sequential ticked 1-shard run:\n%s", c.name, firstDiff(want, got))
		}
	}
}

// TestFleetConservation checks the ToR ledger arithmetic explicitly and
// via the registered invariant: every frame picked off a wire is either
// dropped by the fabric, still in flight, or re-emitted at a destination.
func TestFleetConservation(t *testing.T) {
	f := New(rackConfig(3, 3))
	defer f.Close()
	f.Run(30_000)
	s := f.TorStats()
	if s.Forwarded != s.Injected+s.Dropped {
		t.Errorf("fabric leak: forwarded=%d injected=%d dropped=%d", s.Forwarded, s.Injected, s.Dropped)
	}
	if s.Injected != s.Emitted+s.Pending {
		t.Errorf("uplink leak: injected=%d emitted=%d pending=%d", s.Injected, s.Emitted, s.Pending)
	}
	if f.Monitor == nil {
		t.Fatal("fleet invariant monitor not armed")
	}
	if f.Monitor.Passes() == 0 {
		t.Error("fleet conservation check never ran")
	}
	if got := f.Violations(); len(got) != 0 {
		t.Fatalf("invariant violations: %v", got)
	}
}

// TestFleetTorBandwidthDrop forces the fabric budget below the offered
// cross-NIC load and checks frames are shed — and that the conservation
// ledger still balances, dropped frames included.
func TestFleetTorBandwidthDrop(t *testing.T) {
	cfg := rackConfig(2, 1)
	cfg.TorGbps = 0.05
	f := New(cfg)
	defer f.Close()
	f.Run(40_000)
	s := f.TorStats()
	if s.Dropped == 0 {
		t.Fatalf("0.05 Gb/s fabric shed nothing: %+v", s)
	}
	if s.Forwarded != s.Injected+s.Dropped || s.Injected != s.Emitted+s.Pending {
		t.Errorf("ledger does not balance under drops: %+v", s)
	}
	if got := f.Violations(); len(got) != 0 {
		t.Fatalf("invariant violations: %v", got)
	}
}

// TestFleetMigrationRedirects re-homes a cross tenant mid-run and checks
// the new home starts serving it (its wire and cache see the tenant) and
// the fleet records the move.
func TestFleetMigrationRedirects(t *testing.T) {
	cfg := rackConfig(2, 2)
	cfg.Migrations = []Migration{{Cycle: 10_000, Tenant: 1, To: 0}}
	f := New(cfg)
	defer f.Close()
	f.Run(50_000)

	if home, ok := f.Home(1); !ok || home != 0 {
		t.Fatalf("tenant 1 home = %d, %v; want 0, true", home, ok)
	}
	if len(f.Oplog) != 1 || !strings.Contains(f.Oplog[0], "migrate tenant=1 home 1->0") {
		t.Fatalf("oplog = %q", f.Oplog)
	}
	// After the move, tenant 1's requests (client NIC 1, previously served
	// by NIC 0) are served by NIC 1 itself: they stop crossing the ToR.
	before := f.TorStats().Forwarded
	f.Run(20_000)
	after := f.TorStats().Forwarded
	if after == before {
		t.Log("no ToR traffic after migration — other cross tenants should still flow")
	}
	if got := f.Violations(); len(got) != 0 {
		t.Fatalf("invariant violations: %v", got)
	}
}

// TestFleetScheduleMigrationValidates covers the public scheduling API's
// error paths.
func TestFleetScheduleMigrationValidates(t *testing.T) {
	f := New(rackConfig(2, 1))
	defer f.Close()
	if err := f.ScheduleMigration(100, 99, 1); err == nil {
		t.Error("unknown tenant accepted")
	}
	if err := f.ScheduleMigration(100, 1, 7); err == nil {
		t.Error("out-of-range NIC accepted")
	}
	if err := f.ScheduleMigration(100, 1, 1); err != nil {
		t.Errorf("valid migration rejected: %v", err)
	}
}

// firstDiff renders the first few differing lines between fingerprints.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	out := ""
	n := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			out += fmt.Sprintf("line %d:\n  want %q\n  got  %q\n", i+1, w, g)
			if n++; n >= 8 {
				out += "  ...\n"
				break
			}
		}
	}
	return out
}
