package packet

import (
	"encoding/binary"
	"fmt"
)

// KVSOp is a key-value-store operation code.
type KVSOp uint8

// KVS operations.
const (
	KVSGet KVSOp = iota + 1
	KVSSet
	KVSGetResp
	KVSSetResp
)

// String returns the operation name.
func (op KVSOp) String() string {
	switch op {
	case KVSGet:
		return "GET"
	case KVSSet:
		return "SET"
	case KVSGetResp:
		return "GET-RESP"
	case KVSSetResp:
		return "SET-RESP"
	default:
		return fmt.Sprintf("KVSOp(%d)", uint8(op))
	}
}

// KVS is the application header of the paper's DynamoDB-style key-value
// store example (§2.2, §3.2): multi-tenant, geodistributed, with GET
// requests that may be served from an on-NIC cache.
type KVS struct {
	Op       KVSOp
	Flags    uint8
	Tenant   uint16
	Key      uint64
	ValueLen uint32
}

// KVS flag bits.
const (
	// KVSFlagMiss is set by the NIC cache engine on a GET that missed and
	// must continue to the host CPU.
	KVSFlagMiss = 1 << 0
)

// LayerType implements Layer.
func (*KVS) LayerType() LayerType { return LayerTypeKVS }

// HeaderLen implements Layer.
func (*KVS) HeaderLen() int { return 16 }

// Marshal implements Layer.
func (k *KVS) Marshal(b []byte) []byte {
	b = append(b, uint8(k.Op), k.Flags)
	b = binary.BigEndian.AppendUint16(b, k.Tenant)
	b = binary.BigEndian.AppendUint64(b, k.Key)
	return binary.BigEndian.AppendUint32(b, k.ValueLen)
}

// Unmarshal implements Layer.
func (k *KVS) Unmarshal(b []byte) (int, error) {
	if len(b) < 16 {
		return 0, ErrTruncated
	}
	k.Op = KVSOp(b[0])
	if k.Op < KVSGet || k.Op > KVSSetResp {
		return 0, fmt.Errorf("%w: KVS op %d", ErrBadField, b[0])
	}
	k.Flags = b[1]
	k.Tenant = binary.BigEndian.Uint16(b[2:4])
	k.Key = binary.BigEndian.Uint64(b[4:12])
	k.ValueLen = binary.BigEndian.Uint32(b[12:16])
	return 16, nil
}
