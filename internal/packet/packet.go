// Package packet implements the layered message model used throughout the
// simulator, in the style of gopacket: a packet is a byte buffer plus a
// decoded stack of typed layers.
//
// Header bytes are real — the RMT parser in internal/rmt parses them bit for
// bit — while bulk payloads are virtual: a packet carries a PayloadLen
// instead of materialized payload bytes, so simulating minimum-size packets
// at hundreds of millions of packets per second stays cheap without
// changing any header-processing behaviour.
//
// In PANIC, everything that moves through the on-chip network is a message:
// Ethernet frames, DMA requests and completions, doorbells, and
// engine-to-engine requests are all encoded with the same layer model (§3.1
// of the paper: "even messages between different on-NIC engines ... can be
// treated as if they were [packets]").
package packet

import (
	"errors"
	"fmt"
	"strings"
)

// LayerType identifies a protocol layer.
type LayerType uint8

// Layer types understood by the decoder.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeChain              // PANIC chain shim header
	LayerTypeIPv4
	LayerTypeUDP
	LayerTypeTCP
	LayerTypeESP
	LayerTypeKVS
	LayerTypeDMA // on-NIC DMA request/completion message
	LayerTypePayload
)

// String returns the layer type name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeChain:
		return "Chain"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeESP:
		return "ESP"
	case LayerTypeKVS:
		return "KVS"
	case LayerTypeDMA:
		return "DMA"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", uint8(t))
	}
}

// Layer is one decoded protocol header.
type Layer interface {
	// LayerType identifies the layer.
	LayerType() LayerType
	// HeaderLen returns the serialized header length in bytes.
	HeaderLen() int
	// Marshal appends the serialized header to b.
	Marshal(b []byte) []byte
	// Unmarshal parses the header from the front of b and returns the
	// number of bytes consumed.
	Unmarshal(b []byte) (int, error)
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("packet: truncated header")
	ErrBadField    = errors.New("packet: field value out of range")
	ErrUnknownNext = errors.New("packet: unknown next-layer type")
)

// Packet is a message: real header bytes, the decoded layer stack, and a
// virtual payload length.
type Packet struct {
	// Buf holds the serialized headers (not the virtual payload).
	Buf []byte
	// Layers is the decoded header stack, outermost first.
	Layers []Layer
	// PayloadLen is the virtual payload size in bytes (bytes on the wire
	// after the last decoded header).
	PayloadLen int
}

// WireLen returns the total on-wire size in bytes: headers plus virtual
// payload. It does not include the Ethernet preamble/IFG overhead; see
// WireOverheadBytes.
func (p *Packet) WireLen() int { return len(p.Buf) + p.PayloadLen }

// WireOverheadBytes is the per-frame Ethernet overhead that occupies link
// time but is not part of the frame: 7 bytes preamble + 1 SFD + 12 IFG.
// Together with the 64-byte minimum frame this gives the canonical 84-byte
// minimum wire size used by the paper's Table 2.
const WireOverheadBytes = 20

// MinFrameBytes is the minimum Ethernet frame size (incl. FCS).
const MinFrameBytes = 64

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.Layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Has reports whether the packet contains a layer of the given type.
func (p *Packet) Has(t LayerType) bool { return p.Layer(t) != nil }

// String summarizes the layer stack, e.g. "Ethernet/IPv4/UDP/KVS(+982B)".
func (p *Packet) String() string {
	var b strings.Builder
	for i, l := range p.Layers {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(l.LayerType().String())
	}
	if p.PayloadLen > 0 {
		fmt.Fprintf(&b, "(+%dB)", p.PayloadLen)
	}
	return b.String()
}

// Serialize rebuilds Buf from Layers. Call it after mutating any layer.
// The buffer is sized up front from the declared header lengths, so the
// marshal appends never reallocate (packet construction is on the
// generator hot path).
func (p *Packet) Serialize() {
	n := 0
	for _, l := range p.Layers {
		n += l.HeaderLen()
	}
	b := p.Buf
	if cap(b) < n {
		b = make([]byte, 0, n)
	} else {
		b = b[:0]
	}
	for _, l := range p.Layers {
		b = l.Marshal(b)
	}
	p.Buf = b
}

// NewPacket builds a packet from a layer stack and a virtual payload length
// and serializes it.
func NewPacket(payloadLen int, layers ...Layer) *Packet {
	p := &Packet{Layers: layers, PayloadLen: payloadLen}
	p.Serialize()
	return p
}

// Decode parses wire bytes into a packet. wireLen is the total on-wire
// frame size; the difference between wireLen and the decoded header bytes
// becomes the virtual PayloadLen. Unknown inner protocols terminate
// decoding gracefully: the remaining bytes count as payload.
func Decode(buf []byte, wireLen int) (*Packet, error) {
	p := &Packet{Buf: buf}
	off := 0
	var next LayerType = LayerTypeEthernet
	for next != LayerTypePayload {
		l := newLayer(next)
		if l == nil {
			break // unknown: rest is payload
		}
		n, err := l.Unmarshal(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("decoding %v at offset %d: %w", next, off, err)
		}
		off += n
		p.Layers = append(p.Layers, l)
		next = nextLayer(l)
	}
	if wireLen < off {
		return nil, fmt.Errorf("%w: wireLen %d < decoded headers %d", ErrTruncated, wireLen, off)
	}
	p.Buf = buf[:off]
	p.PayloadLen = wireLen - off
	return p, nil
}

// newLayer allocates an empty layer of the given type, or nil for types the
// decoder treats as opaque payload.
func newLayer(t LayerType) Layer {
	switch t {
	case LayerTypeEthernet:
		return &Ethernet{}
	case LayerTypeChain:
		return &Chain{}
	case LayerTypeIPv4:
		return &IPv4{}
	case LayerTypeUDP:
		return &UDP{}
	case LayerTypeTCP:
		return &TCP{}
	case LayerTypeESP:
		return &ESP{}
	case LayerTypeKVS:
		return &KVS{}
	case LayerTypeDMA:
		return &DMA{}
	default:
		return nil
	}
}

// nextLayer determines the layer following l, or LayerTypePayload when the
// stack ends.
func nextLayer(l Layer) LayerType {
	switch v := l.(type) {
	case *Ethernet:
		return etherTypeToLayer(v.EtherType)
	case *Chain:
		return etherTypeToLayer(v.InnerType)
	case *IPv4:
		switch v.Protocol {
		case ProtoUDP:
			return LayerTypeUDP
		case ProtoTCP:
			return LayerTypeTCP
		case ProtoESP:
			return LayerTypeESP
		default:
			return LayerTypePayload
		}
	case *UDP:
		if v.DstPort == KVSPort || v.SrcPort == KVSPort {
			return LayerTypeKVS
		}
		return LayerTypePayload
	default:
		return LayerTypePayload
	}
}

func etherTypeToLayer(et uint16) LayerType {
	switch et {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeChain:
		return LayerTypeChain
	case EtherTypeDMA:
		return LayerTypeDMA
	default:
		return LayerTypePayload
	}
}
