package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestPropertyLayerRoundTrips: Marshal→Unmarshal is the identity for every
// header type, for arbitrary field values.
func TestPropertyLayerRoundTrips(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}

	t.Run("Ethernet", func(t *testing.T) {
		prop := func(dst, src [6]byte, et uint16) bool {
			in := &Ethernet{Dst: dst, Src: src, EtherType: et}
			var out Ethernet
			n, err := out.Unmarshal(in.Marshal(nil))
			return err == nil && n == in.HeaderLen() && out == *in
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("IPv4", func(t *testing.T) {
		prop := func(tos uint8, tl, id uint16, ttl, proto uint8, src, dst [4]byte) bool {
			in := &IPv4{TOS: tos, TotalLen: tl, ID: id, TTL: ttl, Protocol: proto, Src: src, Dst: dst}
			in.Checksum = in.ComputeChecksum()
			var out IPv4
			n, err := out.Unmarshal(in.Marshal(nil))
			return err == nil && n == 20 && out == *in
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("UDP", func(t *testing.T) {
		prop := func(sp, dp, l, ck uint16) bool {
			in := &UDP{SrcPort: sp, DstPort: dp, Length: l, Checksum: ck}
			var out UDP
			n, err := out.Unmarshal(in.Marshal(nil))
			return err == nil && n == 8 && out == *in
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("TCP", func(t *testing.T) {
		prop := func(sp, dp uint16, seq, ack uint32, flags uint8, win, ck uint16) bool {
			in := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: win, Checksum: ck}
			var out TCP
			n, err := out.Unmarshal(in.Marshal(nil))
			return err == nil && n == 20 && out == *in
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("ESP", func(t *testing.T) {
		prop := func(spi, seq uint32) bool {
			in := &ESP{SPI: spi, Seq: seq}
			var out ESP
			n, err := out.Unmarshal(in.Marshal(nil))
			return err == nil && n == 8 && out == *in
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("KVS", func(t *testing.T) {
		prop := func(op uint8, flags uint8, tenant uint16, key uint64, vl uint32) bool {
			in := &KVS{Op: KVSOp(op%4) + KVSGet, Flags: flags, Tenant: tenant, Key: key, ValueLen: vl}
			var out KVS
			n, err := out.Unmarshal(in.Marshal(nil))
			return err == nil && n == 16 && out == *in
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("DMA", func(t *testing.T) {
		prop := func(op uint8, flags uint8, req uint16, l uint32, addr uint64) bool {
			in := &DMA{Op: DMAOp(op%4) + DMARead, Flags: flags, Requester: Addr(req), Len: l, HostAddr: addr}
			var out DMA
			n, err := out.Unmarshal(in.Marshal(nil))
			return err == nil && n == 16 && out == *in
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("Chain", func(t *testing.T) {
		prop := func(cursor uint8, flags uint8, inner uint16, engines []uint16, slackSeed uint32) bool {
			if len(engines) > MaxChainHops {
				engines = engines[:MaxChainHops]
			}
			hops := make([]Hop, len(engines))
			for i, e := range engines {
				hops[i] = Hop{Engine: Addr(e), Slack: slackSeed + uint32(i)}
			}
			if len(hops) > 0 {
				cursor %= uint8(len(hops) + 1)
			} else {
				cursor = 0
			}
			in := &Chain{Cursor: cursor, Flags: flags, InnerType: inner, Hops: hops}
			b := in.Marshal(nil)
			if len(b) != in.HeaderLen() {
				return false
			}
			var out Chain
			n, err := out.Unmarshal(b)
			if err != nil || n != len(b) {
				return false
			}
			if out.Cursor != in.Cursor || out.Flags != in.Flags || out.InnerType != in.InnerType || len(out.Hops) != len(in.Hops) {
				return false
			}
			for i := range in.Hops {
				if in.Hops[i] != out.Hops[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
}

// TestPropertyDecodeSerializeIdentity: decoding a serialized packet and
// reserializing yields identical bytes (parser/deparser are inverses).
func TestPropertyDecodeSerializeIdentity(t *testing.T) {
	prop := func(tenant uint16, key uint64, payload uint16, useChain bool, hopsRaw []uint16) bool {
		p := NewPacket(int(payload)%2000,
			&Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv4},
			&IPv4{TTL: 64, Protocol: ProtoUDP, Src: IP4{10, 0, 0, 1}, Dst: IP4{10, 0, 0, 2}},
			&UDP{SrcPort: 9999, DstPort: KVSPort},
			&KVS{Op: KVSGet, Tenant: tenant, Key: key},
		)
		m := &Message{Pkt: p}
		if useChain {
			if len(hopsRaw) > 16 {
				hopsRaw = hopsRaw[:16]
			}
			hops := make([]Hop, len(hopsRaw))
			for i, h := range hopsRaw {
				hops[i] = Hop{Engine: Addr(h), Slack: uint32(i)}
			}
			m.InsertChain(&Chain{Hops: hops})
		}
		orig := append([]byte(nil), m.Pkt.Buf...)
		dec, err := Decode(m.Pkt.Buf, m.WireLen())
		if err != nil {
			return false
		}
		dec.Serialize()
		return bytes.Equal(orig, dec.Buf) && dec.WireLen() == m.WireLen()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyChecksumDetectsSingleByteErrors: the internet checksum over a
// checksummed IPv4 header is zero, and flipping any byte breaks it.
func TestPropertyChecksumDetectsSingleByteErrors(t *testing.T) {
	prop := func(tos uint8, id uint16, ttl uint8, src, dst [4]byte, pos uint8, delta uint8) bool {
		ip := &IPv4{TOS: tos, TotalLen: 40, ID: id, TTL: ttl, Protocol: ProtoUDP, Src: src, Dst: dst}
		ip.Checksum = ip.ComputeChecksum()
		hdr := ip.Marshal(nil)
		if InternetChecksum(hdr) != 0 {
			return false
		}
		if delta == 0 {
			return true
		}
		i := int(pos) % len(hdr)
		hdr[i] += delta
		// One's-complement sum: a single non-zero byte change is always
		// detected unless it flips 0x00<->0xff in a position summed with
		// its pair (classic +0/-0 aliasing); allow that rare alias.
		orig := hdr[i] - delta
		if (orig == 0x00 && hdr[i] == 0xff) || (orig == 0xff && hdr[i] == 0x00) {
			return true
		}
		return InternetChecksum(hdr) != 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
