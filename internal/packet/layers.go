package packet

import (
	"encoding/binary"
	"fmt"
)

// Well-known protocol constants.
const (
	EtherTypeIPv4  = 0x0800
	EtherTypeChain = 0x88B5 // IEEE local-experimental: PANIC chain shim
	EtherTypeDMA   = 0x88B6 // IEEE local-experimental: on-NIC DMA message

	ProtoTCP = 6
	ProtoUDP = 17
	ProtoESP = 50

	// KVSPort is the UDP port of the key-value-store application protocol
	// used by the paper's DynamoDB-style running example.
	KVSPort = 6379
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II header (no VLAN; the PANIC chain shim plays
// the tag role).
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// LayerType implements Layer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// HeaderLen implements Layer.
func (*Ethernet) HeaderLen() int { return 14 }

// Marshal implements Layer.
func (e *Ethernet) Marshal(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// Unmarshal implements Layer.
func (e *Ethernet) Unmarshal(b []byte) (int, error) {
	if len(b) < 14 {
		return 0, ErrTruncated
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	return 14, nil
}

// IP4 is an IPv4 address.
type IP4 [4]byte

// String formats the address in dotted-quad notation.
func (a IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IPv4 is an IPv4 header without options (IHL fixed at 5).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst IP4
}

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// HeaderLen implements Layer.
func (*IPv4) HeaderLen() int { return 20 }

// Marshal implements Layer.
func (ip *IPv4) Marshal(b []byte) []byte {
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, ip.TotalLen)
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, 0) // flags+fragment offset
	b = append(b, ip.TTL, ip.Protocol)
	b = binary.BigEndian.AppendUint16(b, ip.Checksum)
	b = append(b, ip.Src[:]...)
	return append(b, ip.Dst[:]...)
}

// Unmarshal implements Layer.
func (ip *IPv4) Unmarshal(b []byte) (int, error) {
	if len(b) < 20 {
		return 0, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return 0, fmt.Errorf("%w: IP version %d", ErrBadField, b[0]>>4)
	}
	if b[0]&0x0f != 5 {
		return 0, fmt.Errorf("%w: IPv4 options unsupported (IHL=%d)", ErrBadField, b[0]&0x0f)
	}
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	return 20, nil
}

// ComputeChecksum returns the correct header checksum for the current field
// values (with the checksum field itself zeroed, per RFC 791).
func (ip *IPv4) ComputeChecksum() uint16 {
	saved := ip.Checksum
	ip.Checksum = 0
	hdr := ip.Marshal(make([]byte, 0, 20))
	ip.Checksum = saved
	return InternetChecksum(hdr)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// HeaderLen implements Layer.
func (*UDP) HeaderLen() int { return 8 }

// Marshal implements Layer.
func (u *UDP) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, u.Length)
	return binary.BigEndian.AppendUint16(b, u.Checksum)
}

// Unmarshal implements Layer.
func (u *UDP) Unmarshal(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	return 8, nil
}

// TCP is a TCP header without options (data offset fixed at 5).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// HeaderLen implements Layer.
func (*TCP) HeaderLen() int { return 20 }

// Marshal implements Layer.
func (t *TCP) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, t.Flags)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = binary.BigEndian.AppendUint16(b, t.Checksum)
	return binary.BigEndian.AppendUint16(b, 0) // urgent pointer
}

// Unmarshal implements Layer.
func (t *TCP) Unmarshal(b []byte) (int, error) {
	if len(b) < 20 {
		return 0, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	if off := b[12] >> 4; off != 5 {
		return 0, fmt.Errorf("%w: TCP options unsupported (offset=%d)", ErrBadField, off)
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	return 20, nil
}

// ESP is an IPSec Encapsulating Security Payload header. Everything after
// it is opaque ciphertext, so decoding stops here; the IPSec engine
// replaces the ESP layer with the decrypted inner layers.
type ESP struct {
	SPI uint32
	Seq uint32
}

// LayerType implements Layer.
func (*ESP) LayerType() LayerType { return LayerTypeESP }

// HeaderLen implements Layer.
func (*ESP) HeaderLen() int { return 8 }

// Marshal implements Layer.
func (e *ESP) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, e.SPI)
	return binary.BigEndian.AppendUint32(b, e.Seq)
}

// Unmarshal implements Layer.
func (e *ESP) Unmarshal(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, ErrTruncated
	}
	e.SPI = binary.BigEndian.Uint32(b[0:4])
	e.Seq = binary.BigEndian.Uint32(b[4:8])
	return 8, nil
}

// InternetChecksum computes the RFC 1071 one's-complement checksum.
func InternetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
