package packet

import "sync"

// MessagePool is an opt-in free list for Message shells. Steady-state
// simulation churns one Message (plus its Packet buffer and layer stack)
// per generated frame; recycling shells at the point a message leaves the
// simulated NIC removes that allocation from the hot loop.
//
// Ownership rule: Put only a message that has fully left the simulation —
// delivered to a terminal sink with no component retaining a reference.
// Producers must treat a Get shell as uninitialized and set every field
// they care about; both the recycled and the fresh-allocation paths must
// produce byte-identical messages, so pooling never affects simulation
// results (only the allocator).
//
// The pool is mutex-guarded: under a parallel Eval phase several tiles may
// Get concurrently. Which caller wins a recycled shell is therefore
// scheduling-dependent, which is safe precisely because of the rule above.
type MessagePool struct {
	mu   sync.Mutex
	free []*Message
}

// NewMessagePool returns an empty pool.
func NewMessagePool() *MessagePool {
	return &MessagePool{free: make([]*Message, 0, 64)}
}

// Get returns a recycled shell, or nil when the pool is empty (the caller
// then allocates fresh). The shell's Pkt, when present, keeps its layer
// stack and serialization buffer for in-place header rebuilding; all other
// fields arrive zeroed.
func (p *MessagePool) Get() *Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.free)
	if n == 0 {
		return nil
	}
	m := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return m
}

// Put scrubs and recycles a message the caller owns exclusively. Identity,
// timestamps, metadata, trace, and the Inner packet are cleared; the Pkt
// keeps its buffer and layers so the next producer can rebuild headers
// without reallocating.
func (p *MessagePool) Put(m *Message) {
	if m == nil {
		return
	}
	m.ID = 0
	m.TraceID = 0
	m.Inject = 0
	m.Done = 0
	m.Deadline = 0
	m.Tenant = 0
	m.Class = 0
	m.Port = 0
	m.Trace = m.Trace[:0]
	m.Needs = nil
	m.EnqueuedAt = 0
	m.Inner = nil
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// Len returns the current free-list size (tests).
func (p *MessagePool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
