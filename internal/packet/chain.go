package packet

import (
	"encoding/binary"
	"fmt"
)

// Addr is the logical address of an engine on the PANIC on-chip network.
// The heavyweight RMT pipeline writes chains of Addrs into the chain shim
// header; each engine's lightweight lookup table and the mesh routers
// resolve Addrs to tile coordinates.
type Addr uint16

// AddrInvalid is the zero, never-assigned engine address.
const AddrInvalid Addr = 0

// Hop is one step of an offload chain: which engine to visit and the slack
// time (in cycles) the logical scheduler uses to order the message in that
// engine's priority queue (§3.1.3). Smaller slack = more urgent.
type Hop struct {
	Engine Addr
	Slack  uint32
}

// MaxChainHops bounds the chain length encodable in the shim header.
const MaxChainHops = 255

// Chain is the PANIC chain shim header inserted after the Ethernet header
// (EtherType 0x88B5). It carries the offload chain computed by the
// heavyweight RMT pipeline so that subsequent steering needs only the
// lightweight per-engine lookup tables (§3.1.2).
type Chain struct {
	// Cursor indexes the next unvisited hop.
	Cursor uint8
	// Flags carries message attributes (lossless class, reinjected, ...).
	Flags uint8
	// InnerType is the EtherType of the encapsulated header stack.
	InnerType uint16
	// Hops is the chain of engines to visit, in order.
	Hops []Hop
}

// Chain flag bits.
const (
	// ChainFlagLossless marks messages that must never be dropped
	// (descriptor DMA reads, completions); the logical scheduler may drop
	// only messages without this flag (§4.3, §6).
	ChainFlagLossless = 1 << 0
	// ChainFlagReinjected marks messages making a second pass through the
	// heavyweight RMT pipeline (e.g. decrypted IPSec traffic).
	ChainFlagReinjected = 1 << 1
)

// LayerType implements Layer.
func (*Chain) LayerType() LayerType { return LayerTypeChain }

// HeaderLen implements Layer.
func (c *Chain) HeaderLen() int { return 6 + 6*len(c.Hops) }

// Marshal implements Layer.
func (c *Chain) Marshal(b []byte) []byte {
	if len(c.Hops) > MaxChainHops {
		panic(fmt.Sprintf("packet: chain with %d hops exceeds %d", len(c.Hops), MaxChainHops))
	}
	b = append(b, c.Cursor, c.Flags, uint8(len(c.Hops)), 0)
	b = binary.BigEndian.AppendUint16(b, c.InnerType)
	for _, h := range c.Hops {
		b = binary.BigEndian.AppendUint16(b, uint16(h.Engine))
		b = binary.BigEndian.AppendUint32(b, h.Slack)
	}
	return b
}

// Unmarshal implements Layer.
func (c *Chain) Unmarshal(b []byte) (int, error) {
	if len(b) < 6 {
		return 0, ErrTruncated
	}
	c.Cursor = b[0]
	c.Flags = b[1]
	count := int(b[2])
	c.InnerType = binary.BigEndian.Uint16(b[4:6])
	need := 6 + 6*count
	if len(b) < need {
		return 0, fmt.Errorf("%w: chain of %d hops needs %d bytes, have %d", ErrTruncated, count, need, len(b))
	}
	if int(c.Cursor) > count {
		return 0, fmt.Errorf("%w: chain cursor %d > count %d", ErrBadField, c.Cursor, count)
	}
	c.Hops = make([]Hop, count)
	for i := range c.Hops {
		off := 6 + 6*i
		c.Hops[i].Engine = Addr(binary.BigEndian.Uint16(b[off : off+2]))
		c.Hops[i].Slack = binary.BigEndian.Uint32(b[off+2 : off+6])
	}
	return need, nil
}

// Current returns the next unvisited hop and reports whether one exists.
func (c *Chain) Current() (Hop, bool) {
	if int(c.Cursor) >= len(c.Hops) {
		return Hop{}, false
	}
	return c.Hops[c.Cursor], true
}

// Advance moves the cursor past the current hop and returns the hop after
// it, reporting whether one exists. Calling Advance with an exhausted chain
// panics: engines must check Current first.
func (c *Chain) Advance() (Hop, bool) {
	if int(c.Cursor) >= len(c.Hops) {
		panic("packet: Chain.Advance past end of chain")
	}
	c.Cursor++
	return c.Current()
}

// Remaining returns the number of unvisited hops.
func (c *Chain) Remaining() int { return len(c.Hops) - int(c.Cursor) }

// Lossless reports whether the message is in the lossless class.
func (c *Chain) Lossless() bool { return c.Flags&ChainFlagLossless != 0 }

// Reinjected reports whether the message already made an RMT pass.
func (c *Chain) Reinjected() bool { return c.Flags&ChainFlagReinjected != 0 }
