package packet

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func ethIPUDP(dstPort uint16, payload int) *Packet {
	return NewPacket(payload,
		&Ethernet{Dst: MAC{2, 0, 0, 0, 0, 1}, Src: MAC{2, 0, 0, 0, 0, 2}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: IP4{10, 0, 0, 1}, Dst: IP4{10, 0, 0, 2}},
		&UDP{SrcPort: 40000, DstPort: dstPort},
	)
}

func TestDecodeEthernetIPv4UDP(t *testing.T) {
	p := ethIPUDP(53, 100)
	got, err := Decode(p.Buf, p.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != 3 {
		t.Fatalf("decoded %d layers (%s), want 3", len(got.Layers), got)
	}
	if got.PayloadLen != 100 {
		t.Errorf("PayloadLen = %d, want 100", got.PayloadLen)
	}
	ip := got.Layer(LayerTypeIPv4).(*IPv4)
	if ip.Src.String() != "10.0.0.1" || ip.Dst.String() != "10.0.0.2" {
		t.Errorf("IP addrs = %v→%v", ip.Src, ip.Dst)
	}
	udp := got.Layer(LayerTypeUDP).(*UDP)
	if udp.SrcPort != 40000 || udp.DstPort != 53 {
		t.Errorf("ports = %d→%d", udp.SrcPort, udp.DstPort)
	}
	if got.String() != "Ethernet/IPv4/UDP(+100B)" {
		t.Errorf("String = %q", got.String())
	}
}

func TestDecodeKVS(t *testing.T) {
	p := NewPacket(0,
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoUDP},
		&UDP{SrcPort: 1234, DstPort: KVSPort},
		&KVS{Op: KVSGet, Tenant: 7, Key: 0xdeadbeef},
	)
	got, err := Decode(p.Buf, p.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	k, ok := got.Layer(LayerTypeKVS).(*KVS)
	if !ok {
		t.Fatalf("no KVS layer in %s", got)
	}
	if k.Op != KVSGet || k.Tenant != 7 || k.Key != 0xdeadbeef {
		t.Errorf("KVS = %+v", k)
	}
}

func TestDecodeTCP(t *testing.T) {
	p := NewPacket(512,
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoTCP},
		&TCP{SrcPort: 80, DstPort: 5555, Seq: 1, Ack: 2, Flags: TCPFlagACK | TCPFlagPSH, Window: 4096},
	)
	got, err := Decode(p.Buf, p.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	tc := got.Layer(LayerTypeTCP).(*TCP)
	if tc.Flags != TCPFlagACK|TCPFlagPSH || tc.Window != 4096 {
		t.Errorf("TCP = %+v", tc)
	}
}

func TestDecodeESPStopsAtCiphertext(t *testing.T) {
	p := NewPacket(200,
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Protocol: ProtoESP},
		&ESP{SPI: 99, Seq: 1},
	)
	got, err := Decode(p.Buf, p.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	if got.Layers[len(got.Layers)-1].LayerType() != LayerTypeESP {
		t.Errorf("last layer = %v, want ESP", got.Layers[len(got.Layers)-1].LayerType())
	}
	if got.PayloadLen != 200 {
		t.Errorf("ciphertext len = %d, want 200", got.PayloadLen)
	}
}

func TestDecodeDMAMessage(t *testing.T) {
	p := NewPacket(64,
		&Ethernet{EtherType: EtherTypeDMA},
		&DMA{Op: DMARead, Requester: 9, Len: 64, HostAddr: 0x1000},
	)
	got, err := Decode(p.Buf, p.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	d := got.Layer(LayerTypeDMA).(*DMA)
	if d.Op != DMARead || d.Requester != 9 || d.Len != 64 || d.HostAddr != 0x1000 {
		t.Errorf("DMA = %+v", d)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := ethIPUDP(53, 0)
	_, err := Decode(p.Buf[:20], 20)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeWireLenShorterThanHeaders(t *testing.T) {
	p := ethIPUDP(53, 0)
	_, err := Decode(p.Buf, 10)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeBadIPVersion(t *testing.T) {
	p := ethIPUDP(53, 0)
	p.Buf[14] = 0x65 // version 6
	_, err := Decode(p.Buf, p.WireLen())
	if !errors.Is(err, ErrBadField) {
		t.Errorf("err = %v, want ErrBadField", err)
	}
}

func TestDecodeUnknownEtherTypeIsPayload(t *testing.T) {
	p := NewPacket(50, &Ethernet{EtherType: 0x86DD}) // IPv6: opaque here
	got, err := Decode(p.Buf, p.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != 1 || got.PayloadLen != 50 {
		t.Errorf("got %s with payload %d", got, got.PayloadLen)
	}
}

func TestIPv4Checksum(t *testing.T) {
	ip := &IPv4{TOS: 0, TotalLen: 60, ID: 4711, TTL: 64, Protocol: ProtoTCP,
		Src: IP4{192, 168, 0, 1}, Dst: IP4{192, 168, 0, 199}}
	ip.Checksum = ip.ComputeChecksum()
	// A header with a correct checksum sums to zero.
	hdr := ip.Marshal(nil)
	if got := InternetChecksum(hdr); got != 0 {
		t.Errorf("checksum over checksummed header = %#x, want 0", got)
	}
	// Mutating a field must break it.
	hdr[8] = 63
	if got := InternetChecksum(hdr); got == 0 {
		t.Error("checksum did not detect mutation")
	}
}

func TestInternetChecksumRFCExample(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := InternetChecksum(b); got != 0x220d {
		t.Errorf("checksum = %#x, want 0x220d", got)
	}
}

func TestInternetChecksumOddLength(t *testing.T) {
	if got := InternetChecksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd-length checksum = %#x", got)
	}
}

func TestChainRoundTrip(t *testing.T) {
	c := &Chain{Cursor: 1, Flags: ChainFlagLossless, InnerType: EtherTypeIPv4,
		Hops: []Hop{{Engine: 3, Slack: 100}, {Engine: 7, Slack: 50}, {Engine: 2, Slack: 0}}}
	b := c.Marshal(nil)
	if len(b) != c.HeaderLen() {
		t.Fatalf("marshaled %d bytes, HeaderLen says %d", len(b), c.HeaderLen())
	}
	var got Chain
	n, err := got.Unmarshal(b)
	if err != nil || n != len(b) {
		t.Fatalf("Unmarshal: n=%d err=%v", n, err)
	}
	if got.Cursor != 1 || !got.Lossless() || got.Reinjected() || len(got.Hops) != 3 {
		t.Errorf("chain = %+v", got)
	}
	if got.Hops[1] != (Hop{Engine: 7, Slack: 50}) {
		t.Errorf("hop 1 = %+v", got.Hops[1])
	}
}

func TestChainCursorWalk(t *testing.T) {
	c := &Chain{Hops: []Hop{{Engine: 1}, {Engine: 2}}}
	h, ok := c.Current()
	if !ok || h.Engine != 1 || c.Remaining() != 2 {
		t.Fatalf("Current = %+v ok=%v remaining=%d", h, ok, c.Remaining())
	}
	h, ok = c.Advance()
	if !ok || h.Engine != 2 || c.Remaining() != 1 {
		t.Fatalf("after Advance: %+v ok=%v", h, ok)
	}
	if _, ok = c.Advance(); ok {
		t.Error("Advance at last hop reported another hop")
	}
	if _, ok := c.Current(); ok {
		t.Error("Current on exhausted chain reported a hop")
	}
	defer func() {
		if recover() == nil {
			t.Error("Advance past end did not panic")
		}
	}()
	c.Advance()
}

func TestChainBadCursorRejected(t *testing.T) {
	c := &Chain{Hops: []Hop{{Engine: 1}}}
	b := c.Marshal(nil)
	b[0] = 5 // cursor beyond count
	var got Chain
	if _, err := got.Unmarshal(b); !errors.Is(err, ErrBadField) {
		t.Errorf("err = %v, want ErrBadField", err)
	}
}

func TestInsertAndStripChain(t *testing.T) {
	m := &Message{Pkt: ethIPUDP(53, 64)}
	origLen := m.WireLen()
	c := &Chain{Hops: []Hop{{Engine: 4, Slack: 10}}}
	m.InsertChain(c)
	if !m.Pkt.Has(LayerTypeChain) {
		t.Fatal("chain not inserted")
	}
	if m.WireLen() != origLen+c.HeaderLen() {
		t.Errorf("WireLen = %d, want %d", m.WireLen(), origLen+c.HeaderLen())
	}
	// Decoding the serialized bytes must round-trip the shim.
	got, err := Decode(m.Pkt.Buf, m.WireLen())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "Ethernet/Chain/IPv4/UDP(+64B)" {
		t.Errorf("decoded stack = %s", got)
	}
	m.StripChain()
	if m.Pkt.Has(LayerTypeChain) || m.WireLen() != origLen {
		t.Errorf("strip failed: %s len=%d want %d", m.Pkt, m.WireLen(), origLen)
	}
	if m.Pkt.Layers[0].(*Ethernet).EtherType != EtherTypeIPv4 {
		t.Error("EtherType not restored")
	}
}

func TestStripChainNoChainIsNoop(t *testing.T) {
	m := &Message{Pkt: ethIPUDP(53, 0)}
	before := append([]byte(nil), m.Pkt.Buf...)
	m.StripChain()
	if !bytes.Equal(before, m.Pkt.Buf) {
		t.Error("StripChain modified chainless packet")
	}
}

func TestInsertChainTwicePanics(t *testing.T) {
	m := &Message{Pkt: ethIPUDP(53, 0)}
	m.InsertChain(&Chain{Hops: []Hop{{Engine: 1}}})
	defer func() {
		if recover() == nil {
			t.Error("double InsertChain did not panic")
		}
	}()
	m.InsertChain(&Chain{})
}

func TestMessageLossless(t *testing.T) {
	m := &Message{Pkt: ethIPUDP(53, 0), Class: ClassControl}
	if !m.Lossless() {
		t.Error("control message should be lossless")
	}
	m2 := &Message{Pkt: ethIPUDP(53, 0), Class: ClassBulk}
	if m2.Lossless() {
		t.Error("bulk message without chain should be lossy")
	}
	m2.InsertChain(&Chain{Flags: ChainFlagLossless, Hops: []Hop{{Engine: 1}}})
	if !m2.Lossless() {
		t.Error("lossless chain flag not honored")
	}
}

func TestWireConstants(t *testing.T) {
	// The canonical 84-byte minimum wire size from Table 2.
	if MinFrameBytes+WireOverheadBytes != 84 {
		t.Errorf("min wire size = %d, want 84", MinFrameBytes+WireOverheadBytes)
	}
}

func TestLayerTypeStrings(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerTypeEthernet: "Ethernet", LayerTypeChain: "Chain", LayerTypeIPv4: "IPv4",
		LayerTypeUDP: "UDP", LayerTypeTCP: "TCP", LayerTypeESP: "ESP",
		LayerTypeKVS: "KVS", LayerTypeDMA: "DMA", LayerType(99): "LayerType(99)",
	} {
		if lt.String() != want {
			t.Errorf("%d.String() = %q, want %q", lt, lt.String(), want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if KVSGet.String() != "GET" || KVSOp(99).String() != "KVSOp(99)" {
		t.Error("KVSOp strings wrong")
	}
	if DMARead.String() != "DMA-READ" || DMAOp(99).String() != "DMAOp(99)" {
		t.Error("DMAOp strings wrong")
	}
	if ClassLatency.String() != "latency" || Class(99).String() != "Class(99)" {
		t.Error("Class strings wrong")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String = %q", m.String())
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{ID: 5, Pkt: ethIPUDP(53, 10), Tenant: 3, Class: ClassLatency}
	s := m.String()
	for _, want := range []string{"msg#5", "tenant=3", "latency"} {
		if !strings.Contains(s, want) {
			t.Errorf("Message.String() = %q missing %q", s, want)
		}
	}
}
