package packet

import "fmt"

// Class is a traffic class used by workloads and the logical scheduler.
type Class uint8

// Traffic classes.
const (
	ClassBulk Class = iota
	ClassLatency
	ClassControl
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassBulk:
		return "bulk"
	case ClassLatency:
		return "latency"
	case ClassControl:
		return "control"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Message is the unit that flows through a simulated NIC: a packet plus the
// simulation metadata that a real NIC would keep in per-packet descriptor
// state (not on the wire).
type Message struct {
	// ID is unique per simulation for tracing.
	ID uint64
	// TraceID identifies the message to the tracing subsystem
	// (internal/trace). Workload IDs are per-source and collide across
	// ports, so the ingress MAC stamps a globally unique, deterministic
	// TraceID — (port+1)<<48 | per-port sequence — on every fresh
	// arrival; engines that derive new messages (DMA completions, host
	// responses, LSO segments) copy the parent's TraceID so a request
	// and everything it spawns share one trace. 0 means untraced.
	TraceID uint64
	// Pkt is the wire representation.
	Pkt *Packet
	// Inject is the cycle the message entered the NIC (or was created by
	// an engine); Done is the cycle it left (delivered to host or wire).
	Inject, Done uint64
	// Deadline, when non-zero, is the absolute cycle by which the message
	// should complete; the RMT pipeline derives slack values from it.
	Deadline uint64
	// Tenant and Class describe the originating application for
	// scheduling and accounting.
	Tenant uint16
	Class  Class
	// Port is the Ethernet port index the message arrived on (or will
	// leave from), -1 for NIC-internal messages.
	Port int
	// Trace, when enabled, records each engine visit.
	Trace []Visit
	// EnqueuedAt is scratch used by scheduling queues: the cycle the
	// message entered its current queue (a message sits in at most one
	// queue at a time).
	EnqueuedAt uint64
	// Needs lists the offload-engine names this message still requires,
	// in order. It is descriptor-side metadata used by the baseline
	// architectures of internal/baseline, which have no chain header;
	// nil means "not yet derived". PANIC itself never reads it.
	Needs []string
	// Inner carries an encapsulated plaintext packet for encrypted
	// messages: the simulator does not materialize ciphertext bytes, so
	// the IPSec engine swaps Inner in when it "decrypts" (a documented
	// substitution for real crypto, which is irrelevant to the paper's
	// scheduling and switching claims).
	Inner *Packet
}

// Visit is one step of a message's path, for tracing and tests.
type Visit struct {
	Engine Addr
	// Enqueued and Started are the cycles the message entered the
	// engine's scheduling queue and began service.
	Enqueued, Started uint64
}

// Chain returns the message's chain shim header, or nil.
func (m *Message) Chain() *Chain {
	if l := m.Pkt.Layer(LayerTypeChain); l != nil {
		return l.(*Chain)
	}
	return nil
}

// WireLen returns the message's on-wire size in bytes.
func (m *Message) WireLen() int { return m.Pkt.WireLen() }

// Lossless reports whether the message must not be dropped: control-class
// messages and messages whose chain carries the lossless flag.
func (m *Message) Lossless() bool {
	if m.Class == ClassControl {
		return true
	}
	if c := m.Chain(); c != nil {
		return c.Lossless()
	}
	return false
}

// String summarizes the message for traces.
func (m *Message) String() string {
	return fmt.Sprintf("msg#%d[%s tenant=%d %s %dB]", m.ID, m.Pkt, m.Tenant, m.Class, m.WireLen())
}

// InsertChain inserts a chain shim header directly after the Ethernet
// header, taking over the Ethernet EtherType, and reserializes the packet.
// It panics if the packet has no Ethernet layer or already has a chain.
func (m *Message) InsertChain(c *Chain) {
	if m.Pkt.Has(LayerTypeChain) {
		panic("packet: InsertChain on packet that already has a chain")
	}
	eth, ok := m.Pkt.Layers[0].(*Ethernet)
	if !ok {
		panic("packet: InsertChain on packet without Ethernet layer")
	}
	c.InnerType = eth.EtherType
	eth.EtherType = EtherTypeChain
	layers := make([]Layer, 0, len(m.Pkt.Layers)+1)
	layers = append(layers, eth, c)
	layers = append(layers, m.Pkt.Layers[1:]...)
	m.Pkt.Layers = layers
	m.Pkt.Serialize()
}

// StripChain removes the chain shim header (the deparse step when a message
// finally leaves the NIC through an Ethernet port) and reserializes. It is
// a no-op for packets without a chain.
func (m *Message) StripChain() {
	c := m.Chain()
	if c == nil {
		return
	}
	eth := m.Pkt.Layers[0].(*Ethernet)
	eth.EtherType = c.InnerType
	layers := make([]Layer, 0, len(m.Pkt.Layers)-1)
	layers = append(layers, eth)
	layers = append(layers, m.Pkt.Layers[2:]...)
	m.Pkt.Layers = layers
	m.Pkt.Serialize()
}
