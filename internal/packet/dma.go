package packet

import (
	"encoding/binary"
	"fmt"
)

// DMAOp is an on-NIC DMA message operation.
type DMAOp uint8

// DMA operations. Requests flow toward the DMA engine; completions flow
// back to the requesting engine.
const (
	DMARead DMAOp = iota + 1
	DMAWrite
	DMAReadCompl
	DMAWriteCompl
)

// String returns the operation name.
func (op DMAOp) String() string {
	switch op {
	case DMARead:
		return "DMA-READ"
	case DMAWrite:
		return "DMA-WRITE"
	case DMAReadCompl:
		return "DMA-READ-COMPL"
	case DMAWriteCompl:
		return "DMA-WRITE-COMPL"
	default:
		return fmt.Sprintf("DMAOp(%d)", uint8(op))
	}
}

// DMA is the header of an on-NIC DMA request or completion. Per §3.1 of the
// paper, descriptor reads, packet writes to host memory, and RDMA reads are
// all ordinary messages on the unified on-chip network, encoded with
// EtherType 0x88B6.
type DMA struct {
	Op    DMAOp
	Flags uint8
	// Requester is the engine awaiting the completion.
	Requester Addr
	// Len is the transfer length in bytes.
	Len uint32
	// HostAddr is the host physical address.
	HostAddr uint64
}

// LayerType implements Layer.
func (*DMA) LayerType() LayerType { return LayerTypeDMA }

// HeaderLen implements Layer.
func (*DMA) HeaderLen() int { return 16 }

// Marshal implements Layer.
func (d *DMA) Marshal(b []byte) []byte {
	b = append(b, uint8(d.Op), d.Flags)
	b = binary.BigEndian.AppendUint16(b, uint16(d.Requester))
	b = binary.BigEndian.AppendUint32(b, d.Len)
	return binary.BigEndian.AppendUint64(b, d.HostAddr)
}

// Unmarshal implements Layer.
func (d *DMA) Unmarshal(b []byte) (int, error) {
	if len(b) < 16 {
		return 0, ErrTruncated
	}
	d.Op = DMAOp(b[0])
	if d.Op < DMARead || d.Op > DMAWriteCompl {
		return 0, fmt.Errorf("%w: DMA op %d", ErrBadField, b[0])
	}
	d.Flags = b[1]
	d.Requester = Addr(binary.BigEndian.Uint16(b[2:4]))
	d.Len = binary.BigEndian.Uint32(b[4:8])
	d.HostAddr = binary.BigEndian.Uint64(b[8:16])
	return 16, nil
}
