package benchmeas

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() Report {
	return Report{
		NumCPU: 1, GOMAXPROCS: 1,
		Saturating: []WorkerResult{
			{Workers: 1, CyclesPerS: 50_000, MsgsPerS: 4000, Speedup: 1},
			{Workers: 8, CyclesPerS: 40_000, MsgsPerS: 3200, Speedup: 0.8},
		},
		EventMode: []EventModeResult{
			{Mode: "ticked", CyclesPerS: 50_000, MsgsPerS: 4000, SpeedupVsTicked: 1},
			{Mode: "event", CyclesPerS: 100_000, MsgsPerS: 8000, SpeedupVsTicked: 2},
		},
		LowLoad: []FFResult{
			{FastForward: false, CyclesPerS: 60_000},
			{FastForward: true, CyclesPerS: 900_000, Speedup: 15},
		},
		ZeroAlloc: []AllocResult{
			{Name: "tile-hot-path-untraced", AllocsPerOp: 0},
		},
	}
}

func TestCompareWithinToleranceFasterAndExtra(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	// 20% slower on one entry, faster on another, plus an extra fresh-only
	// measurement: all fine at 25% tolerance.
	fresh.Saturating[0].CyclesPerS = 40_000
	fresh.LowLoad[1].CyclesPerS = 2_000_000
	fresh.Saturating = append(fresh.Saturating, WorkerResult{Workers: 16, CyclesPerS: 1})
	if bad, _ := Compare(base, fresh, 0.25); len(bad) != 0 {
		t.Errorf("violations = %v, want none", bad)
	}
}

func TestCompareSkipsWorkerScalingOnHostMismatch(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	fresh.NumCPU = 8
	fresh.GOMAXPROCS = 8
	// Multi-worker entry tanks (a different host scales differently) and is
	// even missing at workers=8 — both must be ignored under a mismatch.
	fresh.Saturating = fresh.Saturating[:1]
	bad, notes := Compare(base, fresh, 0.25)
	if len(bad) != 0 {
		t.Errorf("violations = %v, want none under host mismatch", bad)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "host mismatch") {
		t.Errorf("notes = %v, want one host-mismatch note", notes)
	}
	// The single-worker entry is still gated.
	fresh.Saturating[0].CyclesPerS = 10_000
	bad, _ = Compare(base, fresh, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "workers=1") {
		t.Errorf("violations = %v, want one workers=1 regression", bad)
	}
}

func TestCompareFlagsThroughputRegression(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	fresh.Saturating[1].CyclesPerS = 25_000 // -37.5% vs 40k baseline
	fresh.LowLoad[1].CyclesPerS = 500_000   // -44% vs 900k baseline
	bad, _ := Compare(base, fresh, 0.25)
	if len(bad) != 2 {
		t.Fatalf("violations = %v, want 2", bad)
	}
	if !strings.Contains(bad[0], "workers=8") || !strings.Contains(bad[1], "fastforward=true") {
		t.Errorf("violations = %v", bad)
	}
}

func TestCompareGatesSaturatedEventMode(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	fresh.EventMode[1].MsgsPerS = 5000 // -37.5% vs the event baseline's 8000
	bad, _ := Compare(base, fresh, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "saturated event kernel") {
		t.Fatalf("violations = %v, want one saturated-event regression", bad)
	}
	// A dropped mode entry cannot pass the gate either.
	fresh = sampleReport()
	fresh.EventMode = fresh.EventMode[:1]
	bad, _ = Compare(base, fresh, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("violations = %v, want one missing-event-mode line", bad)
	}
}

func TestCompareHonorsSkippedWorkerSweep(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	// Same host, but the fresh run skipped the sweep (-skip-worker-sweep or
	// a single-CPU box): the absent multi-worker entries are legitimate.
	fresh.WorkerSweepSkipped = true
	fresh.Saturating = fresh.Saturating[:1]
	bad, notes := Compare(base, fresh, 0.25)
	if len(bad) != 0 {
		t.Errorf("violations = %v, want none for a recorded sweep skip", bad)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skipped the multi-worker sweep") {
		t.Errorf("notes = %v, want one sweep-skip note", notes)
	}
	// The single-worker entry stays gated.
	fresh.Saturating[0].CyclesPerS = 10_000
	bad, _ = Compare(base, fresh, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "workers=1") {
		t.Errorf("violations = %v, want one workers=1 regression", bad)
	}
}

func TestCompareFlagsNewAllocations(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	fresh.ZeroAlloc[0].AllocsPerOp = 1.5
	bad, _ := Compare(base, fresh, 0.25)
	if len(bad) != 1 || !strings.Contains(bad[0], "tile-hot-path-untraced") {
		t.Fatalf("violations = %v, want one alloc violation", bad)
	}
	// The reverse — baseline allocates, fresh doesn't — is an improvement.
	if bad, _ := Compare(fresh, base, 0.25); len(bad) != 0 {
		t.Errorf("improvement flagged: %v", bad)
	}
}

func TestCompareFlagsMissingMeasurements(t *testing.T) {
	base := sampleReport()
	fresh := sampleReport()
	fresh.Saturating = fresh.Saturating[:1]
	fresh.LowLoad = fresh.LowLoad[:1]
	fresh.ZeroAlloc = nil
	bad, _ := Compare(base, fresh, 0.25)
	if len(bad) != 3 {
		t.Fatalf("violations = %v, want 3 missing-measurement lines", bad)
	}
	for _, v := range bad {
		if !strings.Contains(v, "missing") {
			t.Errorf("violation %q does not say missing", v)
		}
	}
}

func TestReportRoundTripsThroughDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := sampleReport()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if bad, _ := Compare(want, got, 0); len(bad) != 0 {
		t.Errorf("round-tripped report fails its own gate: %v", bad)
	}
	if got.Saturating[1].CyclesPerS != want.Saturating[1].CyclesPerS {
		t.Errorf("round trip lost data: %+v", got.Saturating[1])
	}
}

func TestMeasureAllocsZeroOnHotPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc sampling is slow-ish")
	}
	for _, a := range MeasureAllocs() {
		if a.AllocsPerOp != 0 {
			t.Errorf("%s: %.2f allocs/op, want 0", a.Name, a.AllocsPerOp)
		}
	}
}
