package benchmeas

import (
	"runtime"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/rmt"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
)

// loopFabric is a single-node fabric stub: everything injected comes
// straight back out of TryEject, so one tile churns a message through its
// full hot path (eject -> enqueue -> dequeue -> service -> inject) forever
// with no allocations of its own. It mirrors the harness behind the
// engine package's zero-alloc unit test so the committed baseline and the
// unit test guard the same contract.
type loopFabric struct {
	msg *packet.Message
}

func (f *loopFabric) Nodes() int                         { return 1 }
func (f *loopFabric) CanInject(src, dst noc.NodeID) bool { return f.msg == nil }
func (f *loopFabric) Inject(_, _ noc.NodeID, m *packet.Message) {
	if f.msg != nil {
		panic("benchmeas: inject while occupied")
	}
	f.msg = m
}
func (f *loopFabric) TryEject(noc.NodeID) (*packet.Message, bool) {
	m := f.msg
	f.msg = nil
	return m, m != nil
}
func (f *loopFabric) HasEjectable(noc.NodeID) bool { return f.msg != nil }
func (f *loopFabric) FlitsFor(*packet.Message) int { return 1 }

// echoEngine bounces every message back to its own tile through a reused
// Out slice, so Process itself is allocation-free.
type echoEngine struct {
	outs []engine.Out
}

func (e *echoEngine) Name() string                         { return "echo" }
func (e *echoEngine) ServiceCycles(*packet.Message) uint64 { return 1 }
func (e *echoEngine) Process(_ *engine.Ctx, m *packet.Message) []engine.Out {
	e.outs[0] = engine.Out{Msg: m, To: 1}
	return e.outs
}

// allocTile builds the loopback harness with the given trace buffer and
// primes it past its warm-up allocations (queue heap growth, outbox
// growth) so the steady state is measurable.
func allocTile(buf *trace.Buffer, traceID uint64) (*engine.Tile, *uint64) {
	fab := &loopFabric{}
	routes := engine.NewRouteTable()
	routes.Bind(1, 0)
	cfg := engine.TileConfig{
		Addr: 1, Node: 0, QueueCap: 16, Policy: sched.Backpressure,
		Trace: buf,
	}
	tile := engine.NewTile(cfg, &echoEngine{outs: make([]engine.Out, 1)}, fab, routes, sim.NewRNG(1).Fork())
	fab.msg = &packet.Message{
		ID:      1,
		TraceID: traceID,
		Pkt: packet.NewPacket(64,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP},
			&packet.UDP{SrcPort: 1, DstPort: 2},
		),
	}
	cycle := new(uint64)
	for ; *cycle < 64; *cycle++ {
		tile.Tick(*cycle)
	}
	return tile, cycle
}

// allocsPerOp measures steady-state heap allocations per call of fn with
// the same semantics as testing.AllocsPerRun — GOMAXPROCS pinned to 1 and
// the average truncated to an integer — so the committed baseline enforces
// exactly the contract the engine package's zero-alloc unit test does.
func allocsPerOp(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // settle any first-call growth
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64((after.Mallocs - before.Mallocs) / uint64(runs))
}

// schedQueueAllocs measures the calendar queue's rotation: a resident
// population cycles through ever-increasing ranks, which is the slack
// scheduler's steady state (ranks grow with the cycle counter forever, so
// the bucket window keeps advancing).
func schedQueueAllocs() float64 {
	q := sched.NewQueue(16, sched.Backpressure)
	for i := 0; i < 8; i++ {
		q.Push(&packet.Message{ID: uint64(i)}, uint64(i))
	}
	rank := uint64(8)
	fn := func() {
		m, ok := q.Pop()
		if !ok {
			panic("benchmeas: sched queue drained")
		}
		q.Push(m, rank)
		rank++
	}
	for i := 0; i < 4096; i++ { // settle bucket and overflow-heap growth
		fn()
	}
	return allocsPerOp(4096, fn)
}

// meshPing bounces one message between two mesh nodes forever, keeping
// exactly one flit stream in flight so every tick exercises the router
// fast path (head caching, precomputed next hops) alongside 30+ idle
// routers exercising the skip-scan.
type meshPing struct {
	fab      noc.Fabric
	src, dst noc.NodeID
	msg      *packet.Message
	inflight bool
}

func (d *meshPing) Tick(uint64) {
	if m, ok := d.fab.TryEject(d.dst); ok {
		d.msg, d.inflight = m, false
	}
	if !d.inflight && d.fab.CanInject(d.src, d.dst) {
		d.fab.Inject(d.src, d.dst, d.msg)
		d.inflight = true
	}
}

// meshTickAllocs measures the mesh's per-cycle allocation rate under a
// kernel (the mesh's staged queues commit through the kernel's phases).
func meshTickAllocs() float64 {
	mesh := noc.NewMesh(noc.DefaultMeshConfig())
	k := sim.NewKernel(sim.Frequency(1e9))
	mesh.RegisterWith(k)
	k.Register(&meshPing{
		fab: mesh, src: 0, dst: 7,
		msg: &packet.Message{ID: 1, Pkt: packet.NewPacket(64,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4})},
	})
	k.Run(1024) // settle FIFO rings
	return allocsPerOp(4096, func() { k.Run(1) })
}

// flowCacheHitAllocs measures the RMT pipeline's per-message allocation
// rate on the flow-cache hit path: the same flow re-enters the canonical
// steering program, so every pass after warm-up replays the cached verdict
// and rewrites the resident chain in place.
func flowCacheHitAllocs() float64 {
	prog := core.BuildProgram(core.DefaultProgramConfig(2))
	pipe := rmt.NewPipeline(prog, 1, 1)
	pipe.EnableFlowCache()
	msg := &packet.Message{
		Tenant: 1, Port: 0,
		Pkt: packet.NewPacket(0,
			&packet.Ethernet{Dst: packet.MAC{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: packet.IP4{10, 0, 0, 1}, Dst: packet.IP4{10, 0, 0, 9}},
			&packet.UDP{SrcPort: 7000, DstPort: packet.KVSPort},
			&packet.KVS{Op: packet.KVSGet, Tenant: 1, Key: 42},
		),
	}
	cycle := uint64(0)
	run := func() {
		pipe.Accept(msg, cycle)
		for {
			cycle++
			if res, ok := pipe.Tick(); ok {
				msg = res.Msg
				return
			}
		}
	}
	// Two distinct warm-up keys: the chainless ingress packet, then the
	// steady-state packet carrying the chain the first pass wrote.
	run()
	run()
	run()
	return allocsPerOp(2048, run)
}

// MeasureAllocs samples the allocation rate of the hot paths whose cost
// contract is zero allocations per operation: the tile service loop, the
// calendar scheduling queue, the mesh router tick, and the RMT flow-cache
// hit path.
func MeasureAllocs() []AllocResult {
	cases := []struct {
		name    string
		buf     func() *trace.Buffer
		traceID uint64
	}{
		{"tile-hot-path-untraced", func() *trace.Buffer { return nil }, 5},
		{"tile-hot-path-sampled-out", func() *trace.Buffer {
			tr := trace.New(trace.Options{Sample: 2})
			return tr.Buffer("echo")
		}, 5}, // 5 % 2 != 0: the sampling filter rejects every span
	}
	out := make([]AllocResult, 0, len(cases))
	for _, c := range cases {
		tile, cycle := allocTile(c.buf(), c.traceID)
		a := allocsPerOp(512, func() {
			tile.Tick(*cycle)
			*cycle++
		})
		out = append(out, AllocResult{Name: c.name, AllocsPerOp: a})
	}
	out = append(out,
		AllocResult{Name: "sched-queue-push-pop", AllocsPerOp: schedQueueAllocs()},
		AllocResult{Name: "mesh-router-tick", AllocsPerOp: meshTickAllocs()},
		AllocResult{Name: "rmt-flowcache-hit", AllocsPerOp: flowCacheHitAllocs()},
	)
	return out
}
