package benchmeas

import (
	"runtime"

	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/noc"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/sched"
	"github.com/panic-nic/panic/internal/sim"
	"github.com/panic-nic/panic/internal/trace"
)

// loopFabric is a single-node fabric stub: everything injected comes
// straight back out of TryEject, so one tile churns a message through its
// full hot path (eject -> enqueue -> dequeue -> service -> inject) forever
// with no allocations of its own. It mirrors the harness behind the
// engine package's zero-alloc unit test so the committed baseline and the
// unit test guard the same contract.
type loopFabric struct {
	msg *packet.Message
}

func (f *loopFabric) Nodes() int                         { return 1 }
func (f *loopFabric) CanInject(src, dst noc.NodeID) bool { return f.msg == nil }
func (f *loopFabric) Inject(_, _ noc.NodeID, m *packet.Message) {
	if f.msg != nil {
		panic("benchmeas: inject while occupied")
	}
	f.msg = m
}
func (f *loopFabric) TryEject(noc.NodeID) (*packet.Message, bool) {
	m := f.msg
	f.msg = nil
	return m, m != nil
}
func (f *loopFabric) FlitsFor(*packet.Message) int { return 1 }

// echoEngine bounces every message back to its own tile through a reused
// Out slice, so Process itself is allocation-free.
type echoEngine struct {
	outs []engine.Out
}

func (e *echoEngine) Name() string                         { return "echo" }
func (e *echoEngine) ServiceCycles(*packet.Message) uint64 { return 1 }
func (e *echoEngine) Process(_ *engine.Ctx, m *packet.Message) []engine.Out {
	e.outs[0] = engine.Out{Msg: m, To: 1}
	return e.outs
}

// allocTile builds the loopback harness with the given trace buffer and
// primes it past its warm-up allocations (queue heap growth, outbox
// growth) so the steady state is measurable.
func allocTile(buf *trace.Buffer, traceID uint64) (*engine.Tile, *uint64) {
	fab := &loopFabric{}
	routes := engine.NewRouteTable()
	routes.Bind(1, 0)
	cfg := engine.TileConfig{
		Addr: 1, Node: 0, QueueCap: 16, Policy: sched.Backpressure,
		Trace: buf,
	}
	tile := engine.NewTile(cfg, &echoEngine{outs: make([]engine.Out, 1)}, fab, routes, sim.NewRNG(1).Fork())
	fab.msg = &packet.Message{
		ID:      1,
		TraceID: traceID,
		Pkt: packet.NewPacket(64,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP},
			&packet.UDP{SrcPort: 1, DstPort: 2},
		),
	}
	cycle := new(uint64)
	for ; *cycle < 64; *cycle++ {
		tile.Tick(*cycle)
	}
	return tile, cycle
}

// allocsPerOp measures steady-state heap allocations per call of fn with
// the same semantics as testing.AllocsPerRun — GOMAXPROCS pinned to 1 and
// the average truncated to an integer — so the committed baseline enforces
// exactly the contract the engine package's zero-alloc unit test does.
func allocsPerOp(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // settle any first-call growth
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64((after.Mallocs - before.Mallocs) / uint64(runs))
}

// MeasureAllocs samples the tile hot path's allocation rate with tracing
// disabled — the configurations whose cost contract is zero allocations
// per processed message.
func MeasureAllocs() []AllocResult {
	cases := []struct {
		name    string
		buf     func() *trace.Buffer
		traceID uint64
	}{
		{"tile-hot-path-untraced", func() *trace.Buffer { return nil }, 5},
		{"tile-hot-path-sampled-out", func() *trace.Buffer {
			tr := trace.New(trace.Options{Sample: 2})
			return tr.Buffer("echo")
		}, 5}, // 5 % 2 != 0: the sampling filter rejects every span
	}
	out := make([]AllocResult, 0, len(cases))
	for _, c := range cases {
		tile, cycle := allocTile(c.buf(), c.traceID)
		a := allocsPerOp(512, func() {
			tile.Tick(*cycle)
			*cycle++
		})
		out = append(out, AllocResult{Name: c.name, AllocsPerOp: a})
	}
	return out
}
