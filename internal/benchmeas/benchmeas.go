// Package benchmeas measures the simulation kernel's performance and
// compares measurement reports. It is the shared core of cmd/benchkernel
// (measure and write the committed baseline) and cmd/benchgate (measure a
// fresh run and fail on regressions against that baseline).
package benchmeas

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/fleet"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// WorkerResult is one saturating-load run at a fixed worker count.
type WorkerResult struct {
	Workers    int     `json:"workers"`
	SimCycles  uint64  `json:"sim_cycles"`
	WallSec    float64 `json:"wall_sec"`
	CyclesPerS float64 `json:"sim_cycles_per_sec"`
	MsgsPerS   float64 `json:"msgs_per_sec"`
	Speedup    float64 `json:"speedup_vs_1_worker"`
	// CacheHitRate is the RMT flow-cache hit rate over the run (0 when the
	// cache is disabled or the field predates the cache).
	CacheHitRate float64 `json:"flow_cache_hit_rate,omitempty"`
}

// AblationResult is one single-worker saturating run with a hot-path
// optimization disabled, quantifying that optimization's contribution.
// Ablations are informational: Compare never gates on them.
type AblationResult struct {
	Name       string  `json:"name"`
	CyclesPerS float64 `json:"sim_cycles_per_sec"`
	MsgsPerS   float64 `json:"msgs_per_sec"`
	// VsDefault is this run's msgs/s as a fraction of the default
	// (everything enabled) single-worker run.
	VsDefault float64 `json:"throughput_vs_default"`
}

// EventModeResult is one single-worker saturating run with the kernel
// loop pinned: the ticked oracle (every Ticker every cycle) or the
// event-driven engine (per-component wake scheduling, the default). The
// two runs execute back to back in one process on one host, so their
// ratio — SpeedupVsTicked on the event entry — isolates the event
// engine's contribution from host speed, unlike the absolute rates.
type EventModeResult struct {
	Mode            string  `json:"mode"` // "ticked" or "event"
	SimCycles       uint64  `json:"sim_cycles"`
	WallSec         float64 `json:"wall_sec"`
	CyclesPerS      float64 `json:"sim_cycles_per_sec"`
	MsgsPerS        float64 `json:"msgs_per_sec"`
	SpeedupVsTicked float64 `json:"speedup_vs_ticked"`
}

// FFResult is one low-load run with fast-forward off or on.
type FFResult struct {
	FastForward bool    `json:"fast_forward"`
	SimCycles   uint64  `json:"sim_cycles"`
	Skipped     uint64  `json:"skipped_cycles"`
	WallSec     float64 `json:"wall_sec"`
	CyclesPerS  float64 `json:"sim_cycles_per_sec"`
	Speedup     float64 `json:"speedup_vs_stepping"`
}

// FleetResult is one rack-scale run: NICs PANIC instances joined by the
// modeled ToR, advanced in epoch-synchronized shards at saturating load.
// FleetMsgsPerS is the wall-clock rate of terminal deliveries summed over
// the whole rack — the fleet-scaling headline the benchgate gates on.
type FleetResult struct {
	NICs            int     `json:"nics"`
	Shards          int     `json:"shards"`
	TorLatency      uint64  `json:"tor_latency_cycles"`
	SimCycles       uint64  `json:"sim_cycles"`
	WallSec         float64 `json:"wall_sec"`
	CyclesPerS      float64 `json:"sim_cycles_per_sec"`
	FleetMsgsPerS   float64 `json:"fleet_msgs_per_s"`
	SpeedupVs1Shard float64 `json:"speedup_vs_1_shard"`
}

// AllocResult is the steady-state allocation rate of one hot path that is
// contractually allocation-free.
type AllocResult struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the full measurement set, serialized to BENCH_kernel.json.
type Report struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	// WorkerSweepSkipped records that the multi-worker saturating entries
	// were deliberately not measured (the -skip-worker-sweep flag, or a
	// single-CPU host where parallel Eval only measures synchronization
	// overhead). Compare treats the missing entries as valid instead of
	// failing the gate.
	WorkerSweepSkipped bool              `json:"worker_sweep_skipped,omitempty"`
	Saturating         []WorkerResult    `json:"saturating_worker_sweep"`
	EventMode          []EventModeResult `json:"saturated_event_mode,omitempty"`
	Ablations          []AblationResult  `json:"ablation_single_worker,omitempty"`
	LowLoad            []FFResult        `json:"low_load_fast_forward"`
	BestFFSpeedup      float64           `json:"best_ff_speedup"`
	Fleet              []FleetResult     `json:"fleet,omitempty"`
	ZeroAlloc          []AllocResult     `json:"zero_alloc_paths,omitempty"`
}

// Config parameterizes Measure.
type Config struct {
	// Cycles is the simulated horizon of each saturating worker-sweep run.
	Cycles uint64
	// LowLoadCycles is the horizon of each fast-forward run.
	LowLoadCycles uint64
	// FleetCycles is the horizon of each rack-scale fleet run (0 skips the
	// fleet stage).
	FleetCycles uint64
	// Ablation additionally measures the saturating run with each loaded
	// hot-path optimization (RMT flow cache, bucketed scheduler queue)
	// individually disabled, quantifying each one's contribution.
	Ablation bool
	// SkipWorkerSweep restricts the saturating sweep to the single-worker
	// run. Measure also auto-skips the multi-worker entries on a
	// single-CPU host, where they could only measure synchronization
	// overhead; either way the report records the skip so the gate knows
	// the entries are absent on purpose.
	SkipWorkerSweep bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

// buildNIC assembles the canonical two-tenant benchmark NIC at the given
// fraction of line rate per source. noCache, heapQueue, and ticked are the
// hot-path ablation knobs (all false = the default fast configuration:
// flow cache on, calendar queue, event-driven kernel loop).
func buildNIC(workers int, fastForward bool, load float64, noCache, heapQueue, ticked bool) *core.NIC {
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	cfg.FastForward = fastForward
	cfg.NoFlowCache = noCache
	cfg.HeapSchedQueue = heapQueue
	cfg.NoEventEngine = ticked
	srcs := []engine.Source{
		workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 100 * load, FreqHz: cfg.FreqHz,
			Keys: 1024, GetRatio: 0.9, WANShare: 0.2, ValueBytes: 256,
			Seed: 21,
		}),
		workload.NewFixedStream(workload.FixedStreamConfig{
			FrameBytes: 256, RateGbps: 100 * load, FreqHz: cfg.FreqHz,
			Tenant: 2, Class: packet.ClassBulk, Seed: 22,
		}),
	}
	return core.NewNIC(cfg, srcs)
}

// Measure runs the full benchmark suite: the saturating worker sweep, the
// low-load fast-forward pair, and the zero-alloc hot-path checks.
func Measure(cfg Config) Report {
	rep := Report{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "parallel-Eval speedup scales with physical cores " +
			"(workers>1 on a single-core host only adds synchronization " +
			"overhead); fast-forward speedup is algorithmic and " +
			"core-count independent",
	}

	// satRun is one timed saturating run; the returned WorkerResult still
	// needs its Speedup filled in by the caller.
	satRun := func(w int, noCache, heapQueue, ticked bool) WorkerResult {
		nic := buildNIC(w, false, 0.9, noCache, heapQueue, ticked)
		nic.Run(2_000) // warm-up: fill the pipeline
		before := nic.WireLat.Count + nic.HostLat.Count
		start := time.Now()
		nic.Run(cfg.Cycles)
		wall := time.Since(start).Seconds()
		delivered := nic.WireLat.Count + nic.HostLat.Count - before
		hit := nic.FlowCacheStats().HitRate()
		nic.Close()
		return WorkerResult{
			Workers:      w,
			SimCycles:    cfg.Cycles,
			WallSec:      wall,
			CyclesPerS:   float64(cfg.Cycles) / wall,
			MsgsPerS:     float64(delivered) / wall,
			CacheHitRate: hit,
		}
	}

	sweep := []int{1, 2, 4, 8}
	if cfg.SkipWorkerSweep || runtime.NumCPU() == 1 {
		sweep = sweep[:1]
		rep.WorkerSweepSkipped = true
		if cfg.SkipWorkerSweep {
			cfg.logf("worker sweep skipped (-skip-worker-sweep): only the single-worker entry is measured\n")
		} else {
			cfg.logf("worker sweep skipped: single-CPU host, parallel Eval would only measure synchronization overhead\n")
		}
	}
	var base WorkerResult
	for _, w := range sweep {
		r := satRun(w, false, false, false)
		if w == 1 {
			base = r
		}
		r.Speedup = r.CyclesPerS / base.CyclesPerS
		rep.Saturating = append(rep.Saturating, r)
		cfg.logf("saturating workers=%d: %.0f simcycles/s, %.0f msgs/s (%.2fx, cache hit %.1f%%)\n",
			w, r.CyclesPerS, r.MsgsPerS, r.Speedup, 100*r.CacheHitRate)
	}

	// Saturated event mode: the same single-worker workload with the
	// kernel loop pinned ticked and event, interleaved best-of-3 in this
	// process — single runs on a noisy shared host drift more than the two
	// loops differ, so the pair ratio needs the same treatment the
	// invariant-overhead gate uses. The event entry's speedup_vs_ticked is
	// the event engine's isolated contribution; its absolute msgs/s is the
	// headline the gate guards.
	best := make(map[string]WorkerResult, 2)
	for trial := 0; trial < 3; trial++ {
		for _, mode := range []string{"ticked", "event"} {
			r := satRun(1, false, false, mode == "ticked")
			if b, ok := best[mode]; !ok || r.MsgsPerS > b.MsgsPerS {
				best[mode] = r
			}
		}
	}
	tickedBase := best["ticked"]
	for _, mode := range []string{"ticked", "event"} {
		r := best[mode]
		er := EventModeResult{
			Mode:            mode,
			SimCycles:       r.SimCycles,
			WallSec:         r.WallSec,
			CyclesPerS:      r.CyclesPerS,
			MsgsPerS:        r.MsgsPerS,
			SpeedupVsTicked: r.MsgsPerS / tickedBase.MsgsPerS,
		}
		rep.EventMode = append(rep.EventMode, er)
		cfg.logf("saturated %s kernel: %.0f simcycles/s, %.0f msgs/s (best of 3, %.2fx vs ticked)\n",
			mode, er.CyclesPerS, er.MsgsPerS, er.SpeedupVsTicked)
	}

	if cfg.Ablation {
		// Re-measure the default as the reference: the sweep's workers=1
		// run was the process's first (cold caches, unfaulted pages), and
		// comparing ablations against it would systematically flatter them.
		ablations := []struct {
			name                       string
			noCache, heapQueue, ticked bool
		}{
			{"default", false, false, false},
			{"no-flow-cache", true, false, false},
			{"heap-sched-queue", false, true, false},
			{"ticked-kernel", false, false, true},
			{"no-flow-cache+heap-sched-queue", true, true, false},
		}
		var ref float64
		for _, a := range ablations {
			r := satRun(1, a.noCache, a.heapQueue, a.ticked)
			if a.name == "default" {
				ref = r.MsgsPerS
			}
			ar := AblationResult{
				Name:       a.name,
				CyclesPerS: r.CyclesPerS,
				MsgsPerS:   r.MsgsPerS,
				VsDefault:  r.MsgsPerS / ref,
			}
			rep.Ablations = append(rep.Ablations, ar)
			cfg.logf("ablation %s: %.0f simcycles/s, %.0f msgs/s (%.2fx of default)\n",
				a.name, ar.CyclesPerS, ar.MsgsPerS, ar.VsDefault)
		}
	}

	var stepRate float64
	for _, ff := range []bool{false, true} {
		nic := buildNIC(0, ff, 0.001, false, false, false)
		start := time.Now()
		nic.Run(cfg.LowLoadCycles)
		wall := time.Since(start).Seconds()
		skipped := nic.Builder.Kernel.SkippedCycles()
		nic.Close()
		r := FFResult{
			FastForward: ff,
			SimCycles:   cfg.LowLoadCycles,
			Skipped:     skipped,
			WallSec:     wall,
			CyclesPerS:  float64(cfg.LowLoadCycles) / wall,
		}
		if !ff {
			stepRate = r.CyclesPerS
		}
		r.Speedup = r.CyclesPerS / stepRate
		rep.LowLoad = append(rep.LowLoad, r)
		if r.Speedup > rep.BestFFSpeedup {
			rep.BestFFSpeedup = r.Speedup
		}
		cfg.logf("low-load fastforward=%v: %.0f simcycles/s, %d skipped (%.2fx)\n",
			ff, r.CyclesPerS, skipped, r.Speedup)
	}

	if cfg.FleetCycles > 0 {
		rep.Fleet = MeasureFleet(cfg)
	}

	for _, a := range MeasureAllocs() {
		rep.ZeroAlloc = append(rep.ZeroAlloc, a)
		cfg.logf("zero-alloc path %s: %.2f allocs/op\n", a.Name, a.AllocsPerOp)
	}
	return rep
}

// buildFleet assembles the canonical rack benchmark: 4 NICs, two tenants
// per NIC (one local, one homed a NIC over so half the load crosses the
// ToR), each client port offered ~90% of line rate.
func buildFleet(shards int) *fleet.Fleet {
	const nics = 4
	nicCfg := core.DefaultConfig()
	var tenants []fleet.TenantSpec
	for i := 0; i < 2*nics; i++ {
		client := i % nics
		home := client
		if i%2 == 1 {
			home = (client + 1) % nics
		}
		tenants = append(tenants, fleet.TenantSpec{
			Tenant: uint16(i + 1), Home: home, Client: client,
			Class: packet.ClassLatency, RateGbps: 45,
			Keys: 1024, GetRatio: 0.9, ValueBytes: 256,
		})
	}
	return fleet.New(fleet.Config{
		NICs:       nics,
		TorLatency: 64,
		Shards:     shards,
		NIC:        nicCfg,
		Tenants:    tenants,
	})
}

// MeasureFleet times the canonical 4-NIC rack at 1 shard and 4 shards.
// The shard axis is the one that scales on real cores: on a multi-core
// host the 4-shard run should approach 4x the 1-shard aggregate (the
// fleet-smoke CI gate); on a single core it only measures barrier
// overhead. Results are byte-identical either way — only wall time moves.
func MeasureFleet(cfg Config) []FleetResult {
	var out []FleetResult
	var base float64
	for _, shards := range []int{1, 4} {
		f := buildFleet(shards)
		f.Run(2_000) // warm-up: fill the pipelines and the ToR queues
		before := f.Delivered()
		start := time.Now()
		f.Run(cfg.FleetCycles)
		wall := time.Since(start).Seconds()
		delivered := f.Delivered() - before
		f.Close()
		r := FleetResult{
			NICs:          4,
			Shards:        shards,
			TorLatency:    64,
			SimCycles:     cfg.FleetCycles,
			WallSec:       wall,
			CyclesPerS:    float64(cfg.FleetCycles) / wall,
			FleetMsgsPerS: float64(delivered) / wall,
		}
		if shards == 1 {
			base = r.FleetMsgsPerS
		}
		r.SpeedupVs1Shard = r.FleetMsgsPerS / base
		out = append(out, r)
		cfg.logf("fleet nics=%d shards=%d: %.0f simcycles/s, %.0f fleet msgs/s (%.2fx vs 1 shard)\n",
			r.NICs, shards, r.CyclesPerS, r.FleetMsgsPerS, r.SpeedupVs1Shard)
	}
	return out
}

// Load reads a report from disk.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}

// WriteFile serializes the report to disk in the committed-baseline format.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare checks a fresh report against a baseline and returns one line
// per violation (empty = gate passes) plus informational notes:
//
//   - a matched saturating or fast-forward entry whose simulated-cycles/s
//     throughput fell more than tolerance (a fraction, e.g. 0.25) below
//     the baseline;
//   - a matched zero-alloc path that allocated where the baseline did not;
//   - a baseline entry with no counterpart in the fresh report (a silently
//     dropped measurement cannot pass the gate).
//
// When the baseline was committed from a host with a different core count
// or GOMAXPROCS, the multi-worker saturating entries are skipped instead
// of compared — parallel speedup is a property of the host's physical
// cores, so those numbers are not comparable across machines — and a note
// says so. The same applies when either report recorded a deliberately
// skipped worker sweep (worker_sweep_skipped: the -skip-worker-sweep flag
// or a single-CPU host). The single-worker entry, the saturated
// event-mode pair, the fast-forward pair, and the zero-alloc contracts
// remain host-independent and are always gated.
//
// Entries present only in the fresh report are ignored: adding coverage is
// never a regression.
func Compare(baseline, fresh Report, tolerance float64) (bad, notes []string) {
	floor := 1 - tolerance
	hostMismatch := baseline.NumCPU != fresh.NumCPU || baseline.GOMAXPROCS != fresh.GOMAXPROCS
	if hostMismatch {
		notes = append(notes, fmt.Sprintf(
			"host mismatch: baseline measured with num_cpu=%d gomaxprocs=%d, this host has num_cpu=%d gomaxprocs=%d; "+
				"skipping multi-worker scaling comparisons (worker speedup tracks physical cores)",
			baseline.NumCPU, baseline.GOMAXPROCS, fresh.NumCPU, fresh.GOMAXPROCS))
	}
	skipMulti := hostMismatch
	if fresh.WorkerSweepSkipped && !skipMulti {
		skipMulti = true
		notes = append(notes, "fresh run skipped the multi-worker sweep; only the single-worker saturating entry is gated")
	}

	for _, b := range baseline.Saturating {
		if skipMulti && b.Workers > 1 {
			continue
		}
		found := false
		for _, f := range fresh.Saturating {
			if f.Workers != b.Workers {
				continue
			}
			found = true
			if f.CyclesPerS < b.CyclesPerS*floor {
				bad = append(bad, fmt.Sprintf(
					"saturating workers=%d: %.0f simcycles/s vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
					b.Workers, f.CyclesPerS, b.CyclesPerS,
					100*(1-f.CyclesPerS/b.CyclesPerS), 100*tolerance))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("saturating workers=%d: missing from fresh run", b.Workers))
		}
	}

	for _, b := range baseline.EventMode {
		found := false
		for _, f := range fresh.EventMode {
			if f.Mode != b.Mode {
				continue
			}
			found = true
			if f.MsgsPerS < b.MsgsPerS*floor {
				bad = append(bad, fmt.Sprintf(
					"saturated %s kernel: %.0f msgs/s vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
					b.Mode, f.MsgsPerS, b.MsgsPerS,
					100*(1-f.MsgsPerS/b.MsgsPerS), 100*tolerance))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("saturated %s kernel: missing from fresh run", b.Mode))
		}
	}

	for _, b := range baseline.LowLoad {
		found := false
		for _, f := range fresh.LowLoad {
			if f.FastForward != b.FastForward {
				continue
			}
			found = true
			if f.CyclesPerS < b.CyclesPerS*floor {
				bad = append(bad, fmt.Sprintf(
					"low-load fastforward=%v: %.0f simcycles/s vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
					b.FastForward, f.CyclesPerS, b.CyclesPerS,
					100*(1-f.CyclesPerS/b.CyclesPerS), 100*tolerance))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("low-load fastforward=%v: missing from fresh run", b.FastForward))
		}
	}

	for _, b := range baseline.Fleet {
		if hostMismatch && b.Shards > 1 {
			// Shard speedup tracks physical cores exactly like worker
			// speedup; the 1-shard fleet entry stays comparable.
			continue
		}
		found := false
		for _, f := range fresh.Fleet {
			if f.NICs != b.NICs || f.Shards != b.Shards {
				continue
			}
			found = true
			if f.FleetMsgsPerS < b.FleetMsgsPerS*floor {
				bad = append(bad, fmt.Sprintf(
					"fleet nics=%d shards=%d: %.0f fleet msgs/s vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
					b.NICs, b.Shards, f.FleetMsgsPerS, b.FleetMsgsPerS,
					100*(1-f.FleetMsgsPerS/b.FleetMsgsPerS), 100*tolerance))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("fleet nics=%d shards=%d: missing from fresh run", b.NICs, b.Shards))
		}
	}

	for _, b := range baseline.ZeroAlloc {
		found := false
		for _, f := range fresh.ZeroAlloc {
			if f.Name != b.Name {
				continue
			}
			found = true
			if b.AllocsPerOp == 0 && f.AllocsPerOp > 0 {
				bad = append(bad, fmt.Sprintf(
					"zero-alloc path %s: %.2f allocs/op (baseline 0 — the path's cost contract is allocation-free)",
					b.Name, f.AllocsPerOp))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("zero-alloc path %s: missing from fresh run", b.Name))
		}
	}
	return bad, notes
}
