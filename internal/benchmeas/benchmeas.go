// Package benchmeas measures the simulation kernel's performance and
// compares measurement reports. It is the shared core of cmd/benchkernel
// (measure and write the committed baseline) and cmd/benchgate (measure a
// fresh run and fail on regressions against that baseline).
package benchmeas

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/panic-nic/panic/internal/core"
	"github.com/panic-nic/panic/internal/engine"
	"github.com/panic-nic/panic/internal/packet"
	"github.com/panic-nic/panic/internal/workload"
)

// WorkerResult is one saturating-load run at a fixed worker count.
type WorkerResult struct {
	Workers    int     `json:"workers"`
	SimCycles  uint64  `json:"sim_cycles"`
	WallSec    float64 `json:"wall_sec"`
	CyclesPerS float64 `json:"sim_cycles_per_sec"`
	MsgsPerS   float64 `json:"msgs_per_sec"`
	Speedup    float64 `json:"speedup_vs_1_worker"`
}

// FFResult is one low-load run with fast-forward off or on.
type FFResult struct {
	FastForward bool    `json:"fast_forward"`
	SimCycles   uint64  `json:"sim_cycles"`
	Skipped     uint64  `json:"skipped_cycles"`
	WallSec     float64 `json:"wall_sec"`
	CyclesPerS  float64 `json:"sim_cycles_per_sec"`
	Speedup     float64 `json:"speedup_vs_stepping"`
}

// AllocResult is the steady-state allocation rate of one hot path that is
// contractually allocation-free.
type AllocResult struct {
	Name        string  `json:"name"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the full measurement set, serialized to BENCH_kernel.json.
type Report struct {
	NumCPU        int            `json:"num_cpu"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Note          string         `json:"note"`
	Saturating    []WorkerResult `json:"saturating_worker_sweep"`
	LowLoad       []FFResult     `json:"low_load_fast_forward"`
	BestFFSpeedup float64        `json:"best_ff_speedup"`
	ZeroAlloc     []AllocResult  `json:"zero_alloc_paths,omitempty"`
}

// Config parameterizes Measure.
type Config struct {
	// Cycles is the simulated horizon of each saturating worker-sweep run.
	Cycles uint64
	// LowLoadCycles is the horizon of each fast-forward run.
	LowLoadCycles uint64
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

// buildNIC assembles the canonical two-tenant benchmark NIC at the given
// fraction of line rate per source.
func buildNIC(workers int, fastForward bool, load float64) *core.NIC {
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	cfg.FastForward = fastForward
	srcs := []engine.Source{
		workload.NewKVSStream(workload.KVSTenantConfig{
			Tenant: 1, Class: packet.ClassLatency,
			RateGbps: 100 * load, FreqHz: cfg.FreqHz,
			Keys: 1024, GetRatio: 0.9, WANShare: 0.2, ValueBytes: 256,
			Seed: 21,
		}),
		workload.NewFixedStream(workload.FixedStreamConfig{
			FrameBytes: 256, RateGbps: 100 * load, FreqHz: cfg.FreqHz,
			Tenant: 2, Class: packet.ClassBulk, Seed: 22,
		}),
	}
	return core.NewNIC(cfg, srcs)
}

// Measure runs the full benchmark suite: the saturating worker sweep, the
// low-load fast-forward pair, and the zero-alloc hot-path checks.
func Measure(cfg Config) Report {
	rep := Report{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "parallel-Eval speedup scales with physical cores " +
			"(workers>1 on a single-core host only adds synchronization " +
			"overhead); fast-forward speedup is algorithmic and " +
			"core-count independent",
	}

	var base float64
	for _, w := range []int{1, 2, 4, 8} {
		nic := buildNIC(w, false, 0.9)
		nic.Run(2_000) // warm-up: fill the pipeline
		before := nic.WireLat.Count + nic.HostLat.Count
		start := time.Now()
		nic.Run(cfg.Cycles)
		wall := time.Since(start).Seconds()
		delivered := nic.WireLat.Count + nic.HostLat.Count - before
		nic.Close()
		r := WorkerResult{
			Workers:    w,
			SimCycles:  cfg.Cycles,
			WallSec:    wall,
			CyclesPerS: float64(cfg.Cycles) / wall,
			MsgsPerS:   float64(delivered) / wall,
		}
		if w == 1 {
			base = r.CyclesPerS
		}
		r.Speedup = r.CyclesPerS / base
		rep.Saturating = append(rep.Saturating, r)
		cfg.logf("saturating workers=%d: %.0f simcycles/s, %.0f msgs/s (%.2fx)\n",
			w, r.CyclesPerS, r.MsgsPerS, r.Speedup)
	}

	var stepRate float64
	for _, ff := range []bool{false, true} {
		nic := buildNIC(0, ff, 0.001)
		start := time.Now()
		nic.Run(cfg.LowLoadCycles)
		wall := time.Since(start).Seconds()
		skipped := nic.Builder.Kernel.SkippedCycles()
		nic.Close()
		r := FFResult{
			FastForward: ff,
			SimCycles:   cfg.LowLoadCycles,
			Skipped:     skipped,
			WallSec:     wall,
			CyclesPerS:  float64(cfg.LowLoadCycles) / wall,
		}
		if !ff {
			stepRate = r.CyclesPerS
		}
		r.Speedup = r.CyclesPerS / stepRate
		rep.LowLoad = append(rep.LowLoad, r)
		if r.Speedup > rep.BestFFSpeedup {
			rep.BestFFSpeedup = r.Speedup
		}
		cfg.logf("low-load fastforward=%v: %.0f simcycles/s, %d skipped (%.2fx)\n",
			ff, r.CyclesPerS, skipped, r.Speedup)
	}

	for _, a := range MeasureAllocs() {
		rep.ZeroAlloc = append(rep.ZeroAlloc, a)
		cfg.logf("zero-alloc path %s: %.2f allocs/op\n", a.Name, a.AllocsPerOp)
	}
	return rep
}

// Load reads a report from disk.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}

// WriteFile serializes the report to disk in the committed-baseline format.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare checks a fresh report against a baseline and returns one line
// per violation (empty = gate passes):
//
//   - a matched saturating or fast-forward entry whose simulated-cycles/s
//     throughput fell more than tolerance (a fraction, e.g. 0.25) below
//     the baseline;
//   - a matched zero-alloc path that allocated where the baseline did not;
//   - a baseline entry with no counterpart in the fresh report (a silently
//     dropped measurement cannot pass the gate).
//
// Entries present only in the fresh report are ignored: adding coverage is
// never a regression.
func Compare(baseline, fresh Report, tolerance float64) []string {
	var bad []string
	floor := 1 - tolerance

	for _, b := range baseline.Saturating {
		found := false
		for _, f := range fresh.Saturating {
			if f.Workers != b.Workers {
				continue
			}
			found = true
			if f.CyclesPerS < b.CyclesPerS*floor {
				bad = append(bad, fmt.Sprintf(
					"saturating workers=%d: %.0f simcycles/s vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
					b.Workers, f.CyclesPerS, b.CyclesPerS,
					100*(1-f.CyclesPerS/b.CyclesPerS), 100*tolerance))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("saturating workers=%d: missing from fresh run", b.Workers))
		}
	}

	for _, b := range baseline.LowLoad {
		found := false
		for _, f := range fresh.LowLoad {
			if f.FastForward != b.FastForward {
				continue
			}
			found = true
			if f.CyclesPerS < b.CyclesPerS*floor {
				bad = append(bad, fmt.Sprintf(
					"low-load fastforward=%v: %.0f simcycles/s vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
					b.FastForward, f.CyclesPerS, b.CyclesPerS,
					100*(1-f.CyclesPerS/b.CyclesPerS), 100*tolerance))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("low-load fastforward=%v: missing from fresh run", b.FastForward))
		}
	}

	for _, b := range baseline.ZeroAlloc {
		found := false
		for _, f := range fresh.ZeroAlloc {
			if f.Name != b.Name {
				continue
			}
			found = true
			if b.AllocsPerOp == 0 && f.AllocsPerOp > 0 {
				bad = append(bad, fmt.Sprintf(
					"zero-alloc path %s: %.2f allocs/op (baseline 0 — the path's cost contract is allocation-free)",
					b.Name, f.AllocsPerOp))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("zero-alloc path %s: missing from fresh run", b.Name))
		}
	}
	return bad
}
